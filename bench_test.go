package aida

// One benchmark per table and figure of the dissertation's evaluation.
// Each bench regenerates the experiment through internal/experiments and
// reports the headline quality metrics alongside the runtime, so
// `go test -bench=. -benchmem` reproduces the whole evaluation chapter.
// cmd/experiments prints the same rows in the paper's layout.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"aida/internal/experiments"
	"aida/internal/wiki"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite shares one generated world across all table benches.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Sizes{
			Seed:           42,
			Entities:       800,
			CoNLLDocs:      25,
			HardDocs:       25,
			WPDocs:         25,
			NewsDays:       5,
			NewsDocsPerDay: 8,
			MaxCandidates:  10,
			PerturbIters:   5,
		})
	})
	return suite
}

// BenchmarkTable31_DatasetProperties regenerates Table 3.1.
func BenchmarkTable31_DatasetProperties(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		st := s.Table31()
		b.ReportMetric(st.AvgMentionsPerDoc, "mentions/doc")
		b.ReportMetric(st.AvgCandidatesPerMention, "cands/mention")
	}
}

// BenchmarkTable32_CoNLLAccuracy regenerates Table 3.2 / Figure 3.3.
func BenchmarkTable32_CoNLLAccuracy(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table32()
		for _, r := range rows {
			switch r.Method {
			case "r-prior sim-k r-coh":
				b.ReportMetric(100*r.Micro, "aida-micro-%")
			case "prior":
				b.ReportMetric(100*r.Micro, "prior-micro-%")
			case "Kul CI":
				b.ReportMetric(100*r.Micro, "kulci-micro-%")
			}
		}
	}
}

// BenchmarkTable41_RelatednessGold regenerates the gold dataset of
// Table 4.1.
func BenchmarkTable41_RelatednessGold(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table41()
		b.ReportMetric(float64(len(rows)), "seeds")
	}
}

// BenchmarkTable42_SpearmanRelatedness regenerates Table 4.2.
func BenchmarkTable42_SpearmanRelatedness(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table42()
		all := rows[len(rows)-1]
		b.ReportMetric(all.Scores["KORE"], "kore-rho")
		b.ReportMetric(all.Scores["MW"], "mw-rho")
	}
}

// BenchmarkTable43_RelatednessNED regenerates Table 4.3 / Figure 4.2.
func BenchmarkTable43_RelatednessNED(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table43()
		for _, r := range rows {
			if r.Dataset == "KORE50" {
				b.ReportMetric(100*r.Micro["KORE"], "kore50-kore-%")
				b.ReportMetric(100*r.Micro["MW"], "kore50-mw-%")
			}
		}
	}
}

// BenchmarkFigure43_LinkPoorAccuracy regenerates Figure 4.3.
func BenchmarkFigure43_LinkPoorAccuracy(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		buckets := s.Figure43()
		if len(buckets) > 0 {
			first := buckets[0]
			b.ReportMetric(first.Accuracy["KORE"], "linkpoor-kore")
			b.ReportMetric(first.Accuracy["MW"], "linkpoor-mw")
		}
	}
}

// BenchmarkTable44_RelatednessEfficiency regenerates Table 4.4 and the
// series of Figures 4.4/4.5.
func BenchmarkTable44_RelatednessEfficiency(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table44()
		for _, r := range rows {
			switch r.Method {
			case "KORE":
				b.ReportMetric(r.MeanComparisons, "kore-cmp/doc")
			case "KORE-LSH-F":
				b.ReportMetric(r.MeanComparisons, "lshf-cmp/doc")
			}
		}
	}
}

// BenchmarkTable51_Confidence regenerates Table 5.1 / Figure 5.3.
func BenchmarkTable51_Confidence(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table51()
		for _, r := range rows {
			if r.Assessor == "CONF" {
				b.ReportMetric(100*r.MAP, "conf-map-%")
				b.ReportMetric(100*r.Prec95, "conf-prec95-%")
			}
			if r.Assessor == "prior" {
				b.ReportMetric(100*r.MAP, "prior-map-%")
			}
		}
	}
}

// BenchmarkTable52_EEDatasetProperties regenerates Table 5.2.
func BenchmarkTable52_EEDatasetProperties(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		st := s.Table52()
		b.ReportMetric(float64(st.MentionsNoEntity), "ee-mentions")
	}
}

// BenchmarkTable53_EEDiscovery regenerates Table 5.3.
func BenchmarkTable53_EEDiscovery(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table53()
		for _, r := range rows {
			switch r.Method {
			case "EEsim":
				b.ReportMetric(100*r.EE.Precision, "eesim-prec-%")
			case "AIDAsim":
				b.ReportMetric(100*r.EE.Precision, "aidasim-prec-%")
			}
		}
	}
}

// BenchmarkTable54_NEDEE regenerates Table 5.4.
func BenchmarkTable54_NEDEE(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows := s.Table54()
		for _, r := range rows {
			if r.Method == "AIDA-EEsim" {
				b.ReportMetric(100*r.Micro, "aida-eesim-micro-%")
			}
		}
	}
}

// BenchmarkFigure54_EEOverDays regenerates Figure 5.4.
func BenchmarkFigure54_EEOverDays(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		points := s.Figure54()
		if len(points) > 0 {
			last := points[len(points)-1]
			b.ReportMetric(last.PrecEnrich, "prec-enriched")
			b.ReportMetric(last.Prec, "prec-plain")
		}
	}
}

// BenchmarkAnnotateThroughput measures the end-to-end pipeline on a single
// document (not a paper table; an operational baseline).
func BenchmarkAnnotateThroughput(b *testing.B) {
	s := benchSuite()
	sys := New(s.World.KB, WithMaxCandidates(10))
	text := "They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson."
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys.Annotate(text)
	}
}

// batchWorkerCounts is the scaling curve the committed bench JSON records:
// 1, 2, 4 and NumCPU workers (deduplicated and sorted), so cross-machine
// runs always share the 1/2/4 points and each machine adds its own
// saturation point.
func batchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	n := runtime.GOMAXPROCS(0)
	if n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts
}

// BenchmarkAnnotateBatch tracks document-level fan-out over the shared
// scoring engine across the full worker curve {1, 2, 4, NumCPU}, cold
// engine vs warm. The warm/1-vs-4 pair is the PR's acceptance metric (≥ 2×
// throughput); the cold/warm pair isolates what cross-document memoization
// is worth.
func BenchmarkAnnotateBatch(b *testing.B) {
	s := benchSuite()
	docs := make([]string, 32)
	for i, d := range s.World.GenerateCorpus(wiki.CoNLLSpec(len(docs), 123)) {
		docs[i] = d.Text
	}
	type benchCase struct {
		name    string
		workers int
		warm    bool
	}
	var cases []benchCase
	for _, warm := range []bool{false, true} {
		mode := "cold"
		if warm {
			mode = "warm"
		}
		for _, w := range batchWorkerCounts() {
			cases = append(cases, benchCase{fmt.Sprintf("%s/workers=%d", mode, w), w, warm})
		}
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			sys := New(s.World.KB, WithMaxCandidates(10))
			if bc.warm {
				sys.AnnotateBatch(docs, bc.workers) // fill the engine caches
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.AnnotateBatch(docs, bc.workers)
				}
			} else {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sys = New(s.World.KB, WithMaxCandidates(10)) // fresh engine
					b.StartTimer()
					sys.AnnotateBatch(docs, bc.workers)
				}
			}
			b.ReportMetric(float64(len(docs))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkAnnotateDocAllocs isolates the per-document allocation budget of
// the hot path — one document, sequential, warm engine — so allocs/op in
// the committed bench JSON tracks exactly what one AnnotateDoc costs the
// heap, with no batch machinery in the numbers.
func BenchmarkAnnotateDocAllocs(b *testing.B) {
	s := benchSuite()
	docs := s.World.GenerateCorpus(wiki.CoNLLSpec(4, 123))
	sys := New(s.World.KB, WithMaxCandidates(10))
	ctx := context.Background()
	for _, d := range docs { // warm the engine caches
		if _, err := sys.AnnotateDoc(ctx, d.Text); err != nil {
			b.Fatal(err)
		}
	}
	text := docs[0].Text
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnnotateDoc(ctx, text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStart measures what an engine snapshot is worth at boot: a
// cold process pays profile construction and pair computation on its first
// corpus, a warm-started one loads the snapshot (KB fingerprint check,
// profile rebuild, pair install) and then serves mostly cache hits. The
// snapshot/load sub-benchmarks isolate the persistence round-trip itself.
func BenchmarkWarmStart(b *testing.B) {
	s := benchSuite()
	docs := make([]string, 16)
	for i, d := range s.World.GenerateCorpus(wiki.CoNLLSpec(len(docs), 321)) {
		docs[i] = d.Text
	}
	// One donor run prepares the snapshot all warm iterations load.
	donor := New(s.World.KB, WithMaxCandidates(10))
	donor.AnnotateBatch(docs, 1)
	var snap bytes.Buffer
	if err := donor.SaveEngine(&snap); err != nil {
		b.Fatal(err)
	}

	b.Run("cold-boot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := New(s.World.KB, WithMaxCandidates(10))
			sys.AnnotateBatch(docs, 1)
		}
	})
	b.Run("warm-boot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := New(s.World.KB, WithMaxCandidates(10))
			if err := sys.LoadEngine(bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
			sys.AnnotateBatch(docs, 1)
		}
	})
	b.Run("snapshot-save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := donor.SaveEngine(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := New(s.World.KB, WithMaxCandidates(10))
			if err := sys.LoadEngine(bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
