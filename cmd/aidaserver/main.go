// Command aidaserver runs the AIDA annotation pipeline as a long-running
// HTTP service: the knowledge base is loaded once, one System (and its
// warm scoring engine) is shared across all requests, and annotation
// responses are byte-identical to the in-process API at any parallelism.
//
// Usage:
//
//	aidaserver -kb kb.gob -addr :8080
//	aidaserver -gen 2000 -seed 7 -addr localhost:8080
//	aidaserver -kb kb.gob -shard-host 0/4 -addr :8081     # serve KB shard 0 of 4
//	aidaserver -shard-map fleet.json -addr :8080          # annotate over a remote fleet
//	aidaserver -gen 2000 -tenants tenants.json -addr :8080 # multi-tenant quotas
//	aidaserver -gen 2000 -domains domains.json -addr :8080 # per-domain dictionary layers
//
// Endpoints:
//
//	POST /v1/annotate        {"text": "...", "method": "..."}  one document;
//	                         ?format=html (or Accept: text/html) returns the
//	                         annotated-HTML rendering instead of JSON
//	POST /v1/annotate/batch  {"docs": [...], "parallelism": N,
//	                          "method": "..."}                 many documents;
//	                         Accept: application/x-ndjson (or ?stream=1)
//	                         streams one result line per document
//	GET  /v1/relatedness     ?kind=KORE&a=1&b=2                entity relatedness
//	GET  /v1/stats           engine+server counters (incl. per-endpoint,
//	                         per-tenant and canceled-request totals);
//	                         ?format=prometheus for the Prometheus text
//	                         exposition
//	POST /v1/admin/snapshot  persist the warm scoring engine to the
//	                         -engine-snapshot path (atomic write)
//	POST /v1/admin/kb/delta  apply a live KB delta (new entities, rows,
//	                         links) without restart; journaled when
//	                         -delta-journal is set
//	GET  /demo               static browser demo driving the annotate and
//	                         streaming endpoints (no external assets)
//	GET  /healthz            liveness (reports the serving KB generation)
//	/v1/store/*              the remote KB read surface (-shard-host mode
//	                         only): meta, entities, rows, names, idf
//
// Every request is traced: an X-Request-ID header is accepted (or minted)
// and echoed on the response, attached to the structured request log line
// and embedded in error bodies, so any one artifact of a request finds
// the others. With -tenants tenants.json the server runs multi-tenant:
// every endpoint except /healthz, /v1/stats and /demo requires a known
// API key ("Authorization: Bearer <key>" or "X-API-Key"), each tenant
// gets a token-bucket request rate and a max-concurrent quota, and
// over-quota requests are rejected with 429 + Retry-After. SIGHUP
// hot-reloads the tenants file without dropping counters.
//
// With -shard-host "i/n" the process serves shard i of an n-wide KB fleet
// to remote routers; with -shard-map fleet.json the process is such a
// router, annotating over remote shard hosts instead of a locally loaded
// KB (hedged fetches after -hedge-after, retry and replica failover on
// error or fingerprint mismatch; output is byte-identical to a local KB).
//
// With -engine-snapshot the scoring engine is made durable: an existing
// snapshot is loaded at boot (a warm start — the first request hits hot
// caches; a stale or corrupt snapshot is rejected with a log line and the
// process starts cold), and the warm engine is written back after a
// graceful drain (and every -snapshot-every interval, when set).
// -engine-max-bytes bounds the engine's interned-profile memory; over
// budget, cold profiles are evicted together with their memoized pair
// values, without ever changing annotation output.
//
// The KB itself is live: deltas POSTed to /v1/admin/kb/delta swap in a new
// copy-on-write generation atomically — in-flight documents finish on the
// generation they started with, the next request links the new entities.
// -delta-journal makes applies durable (replayed at boot; a torn tail
// frame from a crash is truncated with a warning). -graduate <interval>
// closes the emerging-entity loop: annotated documents with out-of-KB
// mentions are buffered, periodically re-run through emerging-entity
// discovery, and confidently repeated discoveries graduate into the KB
// automatically.
//
// Annotation requests are full aida.RequestSpec documents: besides "text"
// and "docs" every JSON field of the spec applies per request — "method"
// selects the disambiguation method (-method only sets the default),
// "context" supplies an interest model (keyphrases, entity ids, blend
// weight) blended into mention-entity scoring as a short-text context
// prior, and "domain" routes the request through a per-domain dictionary
// layer registered from the -domains file (a JSON array of named
// surface→entity dictionaries, composed copy-on-write over the base KB).
// Requests without context or domain are byte-identical to builds that
// predate them.
//
// Every endpoint honors request-context cancellation: when a client
// disconnects, in-flight scoring is aborted, the request is logged with
// status 499 and counted in the canceled-request counter.
//
// The process drains in-flight requests on SIGINT/SIGTERM (-drain bounds
// the wait). See docs/API.md for the full request/response reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aida"
	"aida/internal/kb/live"
	"aida/internal/server"
	"aida/internal/wiki"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		kbPath    = flag.String("kb", "", "path to a KB snapshot (gob)")
		gen       = flag.Int("gen", 0, "generate a synthetic KB with this many entities")
		seed      = flag.Int64("seed", 42, "seed for -gen")
		method    = flag.String("method", "aida", "method: aida, prior, sim, cuc, kul-ci, tagme, iw")
		shards    = flag.Int("shards", 1, "split the KB into this many shards behind a router (responses are byte-identical at any count)")
		maxCand   = flag.Int("max-candidates", 20, "candidates per mention (0 = no cap)")
		defPar    = flag.Int("j", 0, "default per-request parallelism (0 = GOMAXPROCS)")
		maxPar    = flag.Int("jmax", 0, "per-request parallelism cap (0 = GOMAXPROCS)")
		maxBody   = flag.Int64("max-body", 8<<20, "max request body bytes")
		maxBatch  = flag.Int("max-batch", 1024, "max documents per batch request")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		jsonLog   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		snapshot  = flag.String("engine-snapshot", "", "engine snapshot path: loaded at boot if present (warm start), written on graceful shutdown and POST /v1/admin/snapshot")
		maxProf   = flag.Int64("engine-max-bytes", 0, "approximate interned-profile memory budget in bytes (0 = unbounded); over budget, cold profiles and their memoized pairs are evicted")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = disabled")
		shardHost = flag.String("shard-host", "", "serve shard i of an n-wide fleet as \"i/n\": mounts the KB read surface under /v1/store/ for remote routers")
		shardMap  = flag.String("shard-map", "", "path to a shard-fleet topology file (JSON): the KB is dialed from remote shard hosts instead of loaded locally; -kb/-gen are not required")
		hedge     = flag.Duration("hedge-after", 50*time.Millisecond, "with -shard-map, race a fetch against the next replica after this latency (negative disables hedging)")
		journal   = flag.String("delta-journal", "", "append-only journal of applied KB deltas: replayed at boot, appended on every apply (live updates survive restarts)")
		graduate  = flag.Duration("graduate", 0, "run the emerging-entity graduation loop at this interval (0 = disabled): documents with out-of-KB mentions feed discovery, repeated confident discoveries join the KB live")
		snapEvery = flag.Duration("snapshot-every", 0, "with -engine-snapshot, additionally persist the warm engine at this interval (0 = only on shutdown and POST /v1/admin/snapshot)")
		tenants   = flag.String("tenants", "", "path to a tenants file (JSON): per-tenant API keys, token-bucket rates and max-concurrent quotas; hot-reloaded on SIGHUP (empty = open server, no auth)")
		domains   = flag.String("domains", "", "path to a domain dictionaries file (JSON): each named surface→entity dictionary is composed over the base KB as a per-domain layer, selectable per request via \"domain\"")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *jsonLog {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	m, err := aida.MethodByName(*method)
	if err != nil {
		logger.Error("select method", "err", err)
		os.Exit(1)
	}
	var store aida.Store
	var host *aida.StoreHost
	if *shardMap != "" {
		// Fleet-client mode: the KB lives on remote shard hosts; nothing is
		// loaded locally (dictionary keys and IDF tables are mirrored at
		// dial time, entities and candidate rows fetched on demand).
		fleet, err := aida.LoadShardMap(*shardMap)
		if err != nil {
			logger.Error("load shard map", "err", err)
			os.Exit(1)
		}
		remote, err := aida.DialFleet(context.Background(), fleet, aida.RemoteOptions{HedgeAfter: *hedge})
		if err != nil {
			logger.Error("dial shard fleet", "err", err)
			os.Exit(1)
		}
		logger.Info("dialed shard fleet", "shards", remote.NumShards(),
			"fingerprint", fmt.Sprintf("%016x", remote.Fingerprint()))
		store = remote
	} else {
		k, err := loadKB(*kbPath, *gen, *seed)
		if err != nil {
			logger.Error("load KB", "err", err)
			os.Exit(1)
		}
		store = k
		switch {
		case *shards < 1:
			logger.Error("invalid -shards", "shards", *shards)
			os.Exit(1)
		case *shards > 1:
			store = aida.ShardKB(k, *shards)
		}
	}
	if *shardHost != "" {
		var shard, width int
		if n, err := fmt.Sscanf(*shardHost, "%d/%d", &shard, &width); err != nil || n != 2 {
			logger.Error("invalid -shard-host, want \"i/n\"", "value", *shardHost)
			os.Exit(1)
		}
		host, err = aida.NewStoreHost(store, shard, width)
		if err != nil {
			logger.Error("shard host", "err", err)
			os.Exit(1)
		}
		logger.Info("hosting KB shard", "shard", shard, "shards", width, "names", host.NumNames())
	}
	sys := aida.New(store, aida.WithMethod(m), aida.WithMaxCandidates(*maxCand),
		aida.WithMaxProfileBytes(*maxProf))
	if *snapshot != "" {
		// A missing file is a normal cold boot; any other failure (corrupt
		// stream, stale fingerprint, unsupported version) is logged and the
		// engine stays usable cold — a bad snapshot must never block boot.
		if f, err := os.Open(*snapshot); err == nil {
			loadErr := sys.LoadEngine(f)
			f.Close()
			if loadErr != nil {
				logger.Warn("engine snapshot rejected, starting cold", "path", *snapshot, "err", loadErr)
			} else {
				st := sys.Scorer().Stats()
				logger.Info("engine warm-started", "path", *snapshot, "profiles", st.Profiles, "pairs", st.Pairs)
			}
		} else if !os.IsNotExist(err) {
			logger.Warn("engine snapshot unreadable, starting cold", "path", *snapshot, "err", err)
		}
	}

	var deltaJournal *live.Journal
	if *journal != "" {
		// Replay first: every delta applied in previous lives is reinstalled
		// before traffic starts, so graduated entities survive restarts. A
		// delta that no longer validates (e.g. written out of order by racing
		// appliers) is skipped with a warning rather than blocking boot.
		applied, truncated, err := live.ReplayJournal(*journal, func(d *aida.Delta) error {
			if _, aerr := sys.ApplyDelta(d); aerr != nil {
				logger.Warn("journaled delta skipped", "err", aerr)
			}
			return nil
		})
		if err != nil {
			logger.Error("replay delta journal", "path", *journal, "err", err)
			os.Exit(1)
		}
		if truncated {
			logger.Warn("delta journal had a torn tail frame (crash mid-append); truncated", "path", *journal)
		}
		if applied > 0 {
			logger.Info("delta journal replayed", "path", *journal, "deltas", applied,
				"generation", sys.Generation(), "entities", sys.Store().NumEntities())
		}
		deltaJournal, err = live.OpenJournal(*journal)
		if err != nil {
			logger.Error("open delta journal", "path", *journal, "err", err)
			os.Exit(1)
		}
		defer deltaJournal.Close()
	}

	if *domains != "" {
		// Register after the journal replay: a domain layer binds to the KB
		// generation current at registration, so replayed deltas must land
		// first for the layers to see their entities.
		dicts, err := aida.LoadDomainDictionaries(*domains)
		if err != nil {
			logger.Error("load domain dictionaries", "path", *domains, "err", err)
			os.Exit(1)
		}
		for _, d := range dicts {
			if err := sys.RegisterDomain(d); err != nil {
				logger.Error("register domain", "domain", d.Name, "err", err)
				os.Exit(1)
			}
		}
		logger.Info("domain layers registered", "path", *domains, "domains", sys.DomainNames())
	}

	var registry *server.Tenants
	if *tenants != "" {
		registry, err = server.LoadTenants(*tenants)
		if err != nil {
			logger.Error("load tenants", "path", *tenants, "err", err)
			os.Exit(1)
		}
		logger.Info("tenant quotas enabled", "path", *tenants, "tenants", len(registry.Names()))
		// SIGHUP hot-reloads the tenants file: new keys and limits apply to
		// the next request, counters and in-flight accounting carry over,
		// and a bad file leaves the serving config untouched.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if n, rerr := registry.Reload(); rerr != nil {
					logger.Error("tenants reload failed; keeping current config", "path", *tenants, "err", rerr)
				} else {
					logger.Info("tenants reloaded", "path", *tenants, "tenants", n)
				}
			}
		}()
	}

	cfg := server.Config{
		MaxBodyBytes:       *maxBody,
		MaxBatchDocs:       *maxBatch,
		MaxParallelism:     *maxPar,
		DefaultParallelism: *defPar,
		Logger:             logger,
		EngineSnapshotPath: *snapshot,
		ShardHost:          host,
		DeltaJournal:       deltaJournal,
		Tenants:            registry,
	}
	var loop *live.Loop
	if *graduate > 0 {
		loop = &live.Loop{
			System:        sys,
			Journal:       deltaJournal,
			MaxCandidates: *maxCand,
			Logger:        slog.NewLogLogger(logger.Handler(), slog.LevelInfo),
		}
		cfg.OnDocument = loop.Note
	}
	srv := server.New(sys, cfg)

	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr, logger); err != nil {
			logger.Error("pprof listen", "addr", *pprofAddr, "err", err)
			os.Exit(1)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("serving", "addr", l.Addr().String(), "entities", store.NumEntities(), "shards", store.NumShards(), "method", *method)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if loop != nil {
		logger.Info("graduation loop running", "every", *graduate)
		go loop.Run(ctx, *graduate)
	}
	if *snapEvery > 0 {
		go srv.SnapshotEvery(ctx, *snapEvery)
	}
	if err := srv.Serve(ctx, l, *drain); err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	if *snapshot != "" {
		// Graceful drain completed: persist the warm engine so the next
		// boot starts where this process left off.
		if n, err := sys.SaveEngineFile(*snapshot); err != nil {
			logger.Error("write engine snapshot", "path", *snapshot, "err", err)
		} else {
			logger.Info("engine snapshot written", "path", *snapshot, "bytes", n)
		}
	}
	logger.Info("stopped")
}

// servePprof starts the net/http/pprof handlers on their own listener and
// mux — never on the public API address, so profiling stays reachable only
// where the operator points it (typically localhost). The debug server
// lives for the life of the process; it needs no drain.
func servePprof(addr string, logger *slog.Logger) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("pprof serving", "addr", l.Addr().String())
	go func() {
		if err := http.Serve(l, mux); err != nil {
			logger.Warn("pprof server stopped", "err", err)
		}
	}()
	return nil
}

func loadKB(path string, gen int, seed int64) (*aida.KB, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return aida.LoadKB(f)
	case gen > 0:
		return wiki.Generate(wiki.Config{Seed: seed, Entities: gen}).KB, nil
	default:
		return nil, fmt.Errorf("provide -kb <file> or -gen <entities>")
	}
}
