// Command benchgen generates and persists the synthetic world used by the
// experiments: the knowledge base snapshot plus annotated corpora (the
// CoNLL-like news-wire split, the KORE50-like hard split, the WP-like
// slice, and the day-stamped news stream with emerging entities).
//
// Usage:
//
//	benchgen -out data -entities 2000 -docs 200 -seed 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aida/internal/wiki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	var (
		out      = flag.String("out", "data", "output directory")
		entities = flag.Int("entities", 2000, "number of KB entities")
		docs     = flag.Int("docs", 200, "documents per corpus")
		days     = flag.Int("days", 6, "news stream days")
		perDay   = flag.Int("perday", 15, "news documents per day")
		seed     = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	w := wiki.Generate(wiki.Config{Seed: *seed, Entities: *entities})

	kbPath := filepath.Join(*out, "kb.gob")
	f, err := os.Create(kbPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.KB.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d entities, %d dictionary names)\n", kbPath, w.KB.NumEntities(), len(w.KB.Names()))

	corpora := map[string][]wiki.Document{
		"conll.json": w.GenerateCorpus(wiki.CoNLLSpec(*docs, *seed+2)),
		"hard.json":  w.GenerateCorpus(wiki.HardSpec(*docs, *seed+3)),
		"wp.json":    w.GenerateCorpus(wiki.WPSpec(*docs, *seed+4)),
		"news.json":  w.NewsStream(wiki.DefaultNewsSpec(*days, *perDay, *seed+5)),
	}
	for name, c := range corpora {
		path := filepath.Join(*out, name)
		if err := writeJSON(path, c); err != nil {
			log.Fatal(err)
		}
		stats := w.Stats(c)
		fmt.Printf("wrote %s (%d docs, %d mentions, %d out-of-KB)\n",
			path, stats.Docs, stats.Mentions, stats.MentionsNoEntity)
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
