// Command experiments regenerates every table and figure of the
// dissertation's evaluation on the synthetic world and prints them in the
// paper's layout. With -out the same report is also written to a file
// (EXPERIMENTS.md records a snapshot of this output).
//
// Usage:
//
//	experiments -scale small
//	experiments -scale full -out report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"aida/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale = flag.String("scale", "small", "workload scale: small, medium, full")
		out   = flag.String("out", "", "also write the report to this file")
		seed  = flag.Int64("seed", 42, "world seed")
	)
	flag.Parse()

	sizes := experiments.Sizes{Seed: *seed}
	switch *scale {
	case "small":
		sizes.Entities = 800
		sizes.CoNLLDocs = 30
		sizes.HardDocs = 30
		sizes.WPDocs = 30
		sizes.NewsDays = 5
		sizes.NewsDocsPerDay = 8
	case "medium":
		// package defaults
	case "full":
		sizes.Entities = 4000
		sizes.CoNLLDocs = 150
		sizes.HardDocs = 80
		sizes.WPDocs = 120
		sizes.NewsDays = 8
		sizes.NewsDocsPerDay = 20
		sizes.PerturbIters = 16
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(w, "AIDA reproduction — experiment report (scale=%s, seed=%d)\n\n", *scale, *seed)
	s := experiments.NewSuite(sizes)
	fmt.Fprintf(w, "world: %d entities, %d dictionary names (%.1fs)\n\n",
		s.World.KB.NumEntities(), len(s.World.KB.Names()), time.Since(start).Seconds())

	section := func(name string, f func() string) {
		t0 := time.Now()
		text := f()
		fmt.Fprintf(w, "%s  [%.1fs]\n\n", text, time.Since(t0).Seconds())
	}

	section("T3.1", func() string { return experiments.FormatTable31(s.Table31()) })
	section("T3.2", func() string { return experiments.FormatTable32(s.Table32()) })
	section("T4.1", func() string { return experiments.FormatTable41(s.Table41()) })
	section("T4.2", func() string { return experiments.FormatTable42(s.Table42()) })
	section("T4.3", func() string { return experiments.FormatTable43(s.Table43()) })
	section("F4.3", func() string { return experiments.FormatFigure43(s.Figure43()) })
	section("T4.4", func() string { return experiments.FormatTable44(s.Table44()) })
	rows51 := s.Table51()
	section("T5.1", func() string { return experiments.FormatTable51(rows51) })
	section("F5.3", func() string { return experiments.FormatFigure53(rows51) })
	section("T5.2", func() string { return experiments.FormatTable52(s.Table52()) })
	section("T5.3", func() string {
		return experiments.FormatTable53("Table 5.3: emerging entity identification", s.Table53())
	})
	section("T5.4", func() string {
		return experiments.FormatTable53("Table 5.4: NED-EE as preprocessing + AIDA", s.Table54())
	})
	section("F5.4", func() string { return experiments.FormatFigure54(s.Figure54()) })

	fmt.Fprintf(w, "total runtime: %.1fs\n", time.Since(start).Seconds())
}
