// Command eedebug inspects the emerging-entity pipeline on the synthetic
// news stream: it prints every false-positive and false-negative EE
// decision of the eval day, together with the placeholder model's top
// phrases and how they match the document — the diagnostic view used to
// tune the pipeline.
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/experiments"
	"aida/internal/kb"
	"aida/internal/wiki"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "world seed")
		entities = flag.Int("entities", 800, "KB entities")
		days     = flag.Int("days", 5, "news stream days")
		perDay   = flag.Int("perday", 8, "docs per day")
		window   = flag.Int("window", 2, "harvest window (days)")
		maxShow  = flag.Int("show", 4, "examples to print per error class")
	)
	flag.Parse()

	s := experiments.NewSuite(experiments.Sizes{
		Seed: *seed, Entities: *entities,
		CoNLLDocs: 5, HardDocs: 5, WPDocs: 5,
		NewsDays: *days, NewsDocsPerDay: *perDay,
		MaxCandidates: 10, PerturbIters: 3,
	})
	world := s.World
	evalDay := *days

	pl := &emerge.Pipeline{
		KB:            world.KB,
		MaxCandidates: 10,
		HarvestWindow: -1,
		Model: emerge.ModelConfig{
			KBSize: world.KB.NumEntities(), MaxKeyphrases: 25, MinCount: 2,
		},
	}
	newsDocs := s.NewsDocs()
	var chunk []emerge.ChunkDoc
	for i := range newsDocs {
		d := &newsDocs[i]
		if d.Day < evalDay && d.Day >= evalDay-*window {
			chunk = append(chunk, emerge.ChunkDoc{Text: d.Text, Surfaces: dictSurfaces(world.KB, d)})
		}
	}
	enricher := pl.BuildEnricher(chunk)
	fmt.Printf("chunk: %d docs; enricher covers %d entities\n\n", len(chunk), enricher.Size())

	fp, fn, tp := 0, 0, 0
	for i := range newsDocs {
		d := &newsDocs[i]
		if d.Day != evalDay {
			continue
		}
		var kept []wiki.GoldMention
		var surfaces []string
		for _, gm := range d.Mentions {
			if len(world.KB.Candidates(gm.Surface)) > 0 {
				kept = append(kept, gm)
				surfaces = append(surfaces, gm.Surface)
			}
		}
		if len(kept) == 0 {
			continue
		}
		models := pl.Models(chunk, surfaces, enricher)
		p := pl.Problem(d.Text, surfaces, enricher)
		res := (&emerge.Discoverer{Method: defaultMethod()}).Discover(p, models)
		for j, gm := range kept {
			predEE := res.Emerging[j]
			goldEE := gm.Entity == kb.NoEntity
			switch {
			case predEE && !goldEE:
				fp++
				if fp <= *maxShow {
					fmt.Printf("FALSE POS %s: %q gold=%s\n", d.ID, gm.Surface, world.KB.Entity(gm.Entity).Name)
					dumpModel(models[gm.Surface], p)
				}
			case !predEE && goldEE:
				fn++
				if fn <= *maxShow {
					m, ok := models[gm.Surface]
					fmt.Printf("FALSE NEG %s: %q truth=%s model=%v pred=%s\n",
						d.ID, gm.Surface, gm.OOEName, ok, res.Output.Results[j].Label)
					if ok {
						dumpModel(m, p)
					}
				}
			case predEE && goldEE:
				tp++
			}
		}
	}
	fmt.Printf("\ntp=%d fp=%d fn=%d\n", tp, fp, fn)
}

func defaultMethod() disambig.Method {
	return disambig.NewAIDAVariant("sim", disambig.Config{UsePrior: true, PriorTest: true})
}

func dictSurfaces(k *kb.KB, d *wiki.Document) []string {
	var out []string
	for _, gm := range d.Mentions {
		if len(k.Candidates(gm.Surface)) > 0 {
			out = append(out, gm.Surface)
		}
	}
	return out
}

func dumpModel(c disambig.Candidate, p *disambig.Problem) {
	type pm struct {
		phrase string
		mi     float64
	}
	var ps []pm
	for _, kp := range c.Keyphrases {
		ps = append(ps, pm{kp.Phrase, kp.MI})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].mi > ps[j].mi })
	n := 8
	if len(ps) < n {
		n = len(ps)
	}
	doc := strings.Join(p.ContextWords, " ")
	for _, x := range ps[:n] {
		match := ""
		w := kb.PhraseWords(x.phrase)
		hits := 0
		for _, word := range w {
			if strings.Contains(doc, word) {
				hits++
			}
		}
		if hits > 0 {
			match = fmt.Sprintf("  [matches %d/%d words]", hits, len(w))
		}
		fmt.Printf("    %.3f %q%s\n", x.mi, x.phrase, match)
	}
}
