// Command aida disambiguates named entities in text against a knowledge
// base, printing one annotation per recognized mention.
//
// Usage:
//
//	aida -kb kb.gob "They performed Kashmir, written by Page and Plant."
//	echo "text" | aida -gen 2000 -seed 7
//	aida -gen 2000 -batch -j 8 < corpus.txt
//
// With -kb a snapshot written by cmd/benchgen (or (*aida.KB).Save) is used;
// with -gen a synthetic world of the given size is generated on the fly;
// with -shard-map fleet.json the KB is dialed from remote shard hosts
// (aidaserver -shard-host processes) and nothing is loaded locally.
// Mentions are recognized automatically unless -mentions supplies a
// comma-separated list of surfaces.
//
// With -batch the input (stdin or a file named by -in) is treated as
// multiple documents separated by blank lines; documents are annotated
// concurrently by -j workers over the system's shared scoring engine and
// printed in input order. Annotation runs under a signal-aware context:
// Ctrl-C cancels in-flight scoring instead of waiting for the corpus.
//
// With -context "phrase,phrase,..." the keyphrases are blended into
// mention–entity scoring as a request context prior (the short-text
// interest model; -context-weight sets the blend weight). With -domains
// domains.json and -domain <name> annotation routes through a per-domain
// dictionary layer composed over the KB. Without either flag the output
// is byte-identical to builds that predate them.
//
// With -engine-snapshot the scoring engine is durable across invocations:
// an existing snapshot for the same KB content is loaded before annotating
// (warm start) and rewritten after a successful run. -engine-max-bytes
// bounds the engine's interned-profile memory via CLOCK eviction; output is
// byte-identical with or without either flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"aida"
	"aida/internal/wiki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aida: ")
	var (
		kbPath   = flag.String("kb", "", "path to a KB snapshot (gob)")
		gen      = flag.Int("gen", 0, "generate a synthetic KB with this many entities")
		seed     = flag.Int64("seed", 42, "seed for -gen")
		mentions = flag.String("mentions", "", "comma-separated mention surfaces (skip NER)")
		method   = flag.String("method", "aida", "method: aida, prior, sim, cuc, kul-ci, tagme, iw")
		batch    = flag.Bool("batch", false, "treat input as blank-line-separated documents")
		inPath   = flag.String("in", "", "read input from this file instead of args/stdin")
		workers  = flag.Int("j", 0, "annotation parallelism for -batch (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "split the KB into this many shards behind a router (output is byte-identical at any count)")
		shardMap = flag.String("shard-map", "", "path to a shard-fleet topology file (JSON): annotate over remote shard hosts instead of a local KB; -kb/-gen are not required")
		hedge    = flag.Duration("hedge-after", 50*time.Millisecond, "with -shard-map, race a fetch against the next replica after this latency (negative disables hedging)")
		snapshot = flag.String("engine-snapshot", "", "engine snapshot path: loaded before annotating if present (warm start), rewritten after a successful run")
		maxProf  = flag.Int64("engine-max-bytes", 0, "approximate interned-profile memory budget in bytes (0 = unbounded)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
		ctxKeys  = flag.String("context", "", "comma-separated interest keyphrases, blended into scoring as a request context prior")
		ctxWt    = flag.Float64("context-weight", 0, "context blend weight in [0, 1] (0 = the default; only with -context)")
		domains  = flag.String("domains", "", "path to a domain dictionaries file (JSON): named surface→entity dictionaries composed over the KB as selectable layers")
		domain   = flag.String("domain", "", "annotate through this domain layer from -domains")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	store, err := openStore(*kbPath, *gen, *seed, *shards, *shardMap, *hedge)
	if err != nil {
		log.Fatal(err)
	}
	text, err := inputText(flag.Args(), *inPath)
	if err != nil {
		log.Fatal(err)
	}

	m, err := aida.MethodByName(*method)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sys := aida.New(store, aida.WithMethod(m), aida.WithMaxCandidates(20),
		aida.WithMaxProfileBytes(*maxProf))
	loadEngineSnapshot(sys, *snapshot)
	if *domains != "" {
		dicts, err := aida.LoadDomainDictionaries(*domains)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range dicts {
			if err := sys.RegisterDomain(d); err != nil {
				log.Fatal(err)
			}
		}
	}
	opts, err := requestOptions(*ctxKeys, *ctxWt, *domain)
	if err != nil {
		log.Fatal(err)
	}
	if *batch {
		if *mentions != "" {
			log.Fatal("-batch recognizes mentions automatically; drop -mentions")
		}
		docs := splitDocs(text)
		if len(docs) == 0 {
			log.Fatal("no documents in batch input")
		}
		for doc, err := range sys.AnnotateStream(ctx, slices.Values(docs), append(opts, aida.WithParallelism(*workers))...) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("# doc %d (%d mentions)\n", doc.Index+1, len(doc.Annotations))
			for _, a := range doc.Annotations {
				printResult(a.Mention.Text, a.Label, a.Entity, a.Score)
			}
		}
		saveEngineSnapshot(sys, *snapshot)
		return
	}
	if *mentions != "" {
		if len(opts) > 0 {
			log.Fatal("-mentions bypasses the request pipeline; drop -context/-domain")
		}
		surfaces := strings.Split(*mentions, ",")
		for i := range surfaces {
			surfaces[i] = strings.TrimSpace(surfaces[i])
		}
		out := sys.Disambiguate(text, surfaces)
		for _, r := range out.Results {
			printResult(r.Surface, r.Label, r.Entity, r.Score)
		}
		saveEngineSnapshot(sys, *snapshot)
		return
	}
	doc, err := sys.AnnotateDoc(ctx, text, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range doc.Annotations {
		printResult(a.Mention.Text, a.Label, a.Entity, a.Score)
	}
	saveEngineSnapshot(sys, *snapshot)
}

// requestOptions translates the -context/-context-weight/-domain flags
// into per-request annotate options. A weight without keyphrases is a flag
// mistake, not a request error, so it is caught here.
func requestOptions(ctxKeys string, ctxWeight float64, domain string) ([]aida.AnnotateOption, error) {
	var opts []aida.AnnotateOption
	if ctxKeys != "" {
		var phrases []string
		for _, p := range strings.Split(ctxKeys, ",") {
			if p = strings.TrimSpace(p); p != "" {
				phrases = append(phrases, p)
			}
		}
		opts = append(opts, aida.WithContext(phrases...))
		if ctxWeight != 0 {
			opts = append(opts, aida.WithContextWeight(ctxWeight))
		}
	} else if ctxWeight != 0 {
		return nil, fmt.Errorf("-context-weight needs -context")
	}
	if domain != "" {
		opts = append(opts, aida.WithDomain(domain))
	}
	return opts, nil
}

// startProfiles starts CPU profiling to cpuPath and arranges a heap
// profile write to memPath at stop, so annotation runs are attributable
// with standard pprof tooling (`go tool pprof aida cpu.out`). Either path
// may be empty. The returned stop function must run before exit for the
// profiles to be valid; error exits skip it, which only ever loses the
// profile of a failed run.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Printf("close -cpuprofile: %v", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			log.Printf("create -memprofile: %v", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Printf("write -memprofile: %v", err)
		}
	}, nil
}

// loadEngineSnapshot warm-starts the system's scoring engine from path. A
// missing file is a normal cold start; a stale or corrupt snapshot is
// reported and skipped — it must never block annotation.
func loadEngineSnapshot(sys *aida.System, path string) {
	if path == "" {
		return
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		log.Printf("engine snapshot unreadable, starting cold: %v", err)
		return
	}
	defer f.Close()
	if err := sys.LoadEngine(f); err != nil {
		log.Printf("engine snapshot rejected, starting cold: %v", err)
	}
}

// saveEngineSnapshot persists the warm engine to path (atomic temp file +
// rename via SaveEngineFile) after a successful run, so the next
// invocation over the same KB starts hot.
func saveEngineSnapshot(sys *aida.System, path string) {
	if path == "" {
		return
	}
	if _, err := sys.SaveEngineFile(path); err != nil {
		log.Printf("write engine snapshot: %v", err)
	}
}

func loadKB(path string, gen int, seed int64) (*aida.KB, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return aida.LoadKB(f)
	case gen > 0:
		return wiki.Generate(wiki.Config{Seed: seed, Entities: gen}).KB, nil
	default:
		return nil, fmt.Errorf("provide -kb <file> or -gen <entities>")
	}
}

// openStore resolves the KB source: a remote shard fleet when -shard-map
// is given, otherwise a locally loaded (and optionally router-sharded) KB.
// Output is byte-identical across all of them.
func openStore(kbPath string, gen int, seed int64, shards int, shardMap string, hedge time.Duration) (aida.Store, error) {
	if shardMap != "" {
		m, err := aida.LoadShardMap(shardMap)
		if err != nil {
			return nil, err
		}
		return aida.DialFleet(context.Background(), m, aida.RemoteOptions{HedgeAfter: hedge})
	}
	k, err := loadKB(kbPath, gen, seed)
	if err != nil {
		return nil, err
	}
	switch {
	case shards < 1:
		return nil, fmt.Errorf("-shards must be ≥ 1 (got %d)", shards)
	case shards == 1:
		return k, nil
	default:
		return aida.ShardKB(k, shards), nil
	}
}

func inputText(args []string, inPath string) (string, error) {
	if inPath != "" {
		if len(args) > 0 {
			return "", fmt.Errorf("pass text either via -in or as arguments, not both")
		}
		data, err := os.ReadFile(inPath)
		if err != nil {
			return "", err
		}
		if len(data) == 0 {
			return "", fmt.Errorf("input file %s is empty", inPath)
		}
		return string(data), nil
	}
	if len(args) > 0 {
		return strings.Join(args, " "), nil
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", err
	}
	if len(data) == 0 {
		return "", fmt.Errorf("no input text (pass as argument, -in file, or stdin)")
	}
	return string(data), nil
}

// splitDocs splits batch input into documents on blank lines.
func splitDocs(text string) []string {
	var docs []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			docs = append(docs, strings.Join(cur, "\n"))
			cur = cur[:0]
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		cur = append(cur, line)
	}
	flush()
	return docs
}

func printResult(surface, label string, e aida.EntityID, score float64) {
	if e == aida.NoEntity {
		label = "<out-of-KB>"
	}
	fmt.Printf("%-25s → %-35s (score %.4f)\n", surface, label, score)
}
