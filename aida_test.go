package aida

import (
	"bytes"
	"os"
	"testing"
)

// demoKB builds the running example of the dissertation's Chapter 3.
func demoKB() *KB {
	b := NewKBBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person")
	larry := b.AddEntity("Larry Page", "tech", "person")
	song := b.AddEntity("Kashmir (song)", "music", "work")
	region := b.AddEntity("Kashmir", "geography", "location")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person")
	gibson := b.AddEntity("Gibson Les Paul", "music", "instrument")

	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)
	b.AddName("Gibson", gibson, 10)

	music := []EntityID{jimmy, song, zep, plant, gibson}
	for _, a := range music {
		for _, c := range music {
			if a != c {
				b.AddLink(a, c)
			}
		}
	}
	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "unusual chords")
	b.AddKeyphrase(jimmy, "Gibson guitar")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(song, "performed live")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(plant, "English rock singer")
	b.AddKeyphrase(gibson, "electric guitar")
	return b.Build()
}

func TestSystemAnnotate(t *testing.T) {
	sys := New(demoKB())
	anns := sys.Annotate("They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson.")
	if len(anns) < 4 {
		t.Fatalf("want at least 4 annotations, got %d", len(anns))
	}
	byText := map[string]string{}
	for _, a := range anns {
		byText[a.Mention.Text] = a.Label
	}
	if byText["Kashmir"] != "Kashmir (song)" {
		t.Errorf("Kashmir → %q, want the song", byText["Kashmir"])
	}
	if byText["Page"] != "Jimmy Page" {
		t.Errorf("Page → %q, want Jimmy Page", byText["Page"])
	}
}

func TestSystemRecognize(t *testing.T) {
	sys := New(demoKB())
	spans := sys.Recognize("Plant sang while Page played.")
	if len(spans) != 2 {
		t.Fatalf("want 2 mentions, got %v", spans)
	}
}

func TestSystemDisambiguateExplicitMentions(t *testing.T) {
	sys := New(demoKB())
	out := sys.Disambiguate("Kashmir is a disputed territory.", []string{"Kashmir"})
	if out.Results[0].Label != "Kashmir" {
		t.Errorf("geography context should pick the region, got %q", out.Results[0].Label)
	}
}

func TestSystemWithOptions(t *testing.T) {
	sys := New(demoKB(), WithMethod(Baselines()[5]), WithMaxCandidates(1)) // prior-only
	out := sys.Disambiguate("Page spoke.", []string{"Page"})
	if out.Results[0].Label != "Larry Page" {
		t.Errorf("prior-only should pick Larry Page, got %q", out.Results[0].Label)
	}
	if got := len(sys.NewProblem("Page", []string{"Page"}).Mentions[0].Candidates); got != 1 {
		t.Errorf("candidate cap ignored: %d", got)
	}
}

func TestSystemRelatedness(t *testing.T) {
	k := demoKB()
	sys := New(k)
	jimmy, _ := k.EntityByName("Jimmy Page")
	zep, _ := k.EntityByName("Led Zeppelin")
	region, _ := k.EntityByName("Kashmir")
	// KPCS is excluded: it matches phrases atomically and the demo entities
	// share no identical phrase.
	for _, kind := range []RelatednessKind{MW, KORE, KWCS} {
		intra := sys.Relatedness(kind, jimmy, zep)
		inter := sys.Relatedness(kind, jimmy, region)
		if intra <= inter {
			t.Errorf("%v: music pair %v should beat cross-domain %v", kind, intra, inter)
		}
	}
}

func TestSystemConfidence(t *testing.T) {
	sys := New(demoKB())
	p := sys.NewProblem("Page played unusual chords.", []string{"Page"})
	out := sys.Method.Disambiguate(p)
	conf := sys.Confidence(p, out, 5, 1)
	if len(conf) != 1 || conf[0] < 0 || conf[0] > 1 {
		t.Fatalf("bad confidence: %v", conf)
	}
}

func TestSystemDiscoverEmerging(t *testing.T) {
	sys := New(demoKB())
	corpus := []string{
		"The whistleblower Snowden revealed a secret surveillance program.",
		"Officials said Snowden leaked the intelligence files.",
	}
	// "Snowden" is not in the demo KB at all: trivially emerging.
	disc := sys.DiscoverEmerging("Snowden spoke about the surveillance program.", []string{"Snowden"}, corpus)
	if !disc.Emerging[0] {
		t.Fatal("unknown name should be discovered as emerging")
	}
}

func TestSystemSurfaceExpansion(t *testing.T) {
	b := NewKBBuilder()
	rubin := b.AddEntity("Rubin Carter", "sports", "person")
	jimmy := b.AddEntity("Jimmy Carter", "politics", "person")
	b.AddName("Carter", rubin, 5)
	b.AddName("Carter", jimmy, 95)
	b.AddKeyphrase(rubin, "middleweight boxer")
	b.AddKeyphrase(jimmy, "united states president")
	k := b.Build()

	prior := Baselines()[5]
	text := "Rubin Carter fought. Carter won."
	surfaces := []string{"Rubin Carter", "Carter"}

	plain := New(k, WithMethod(prior)).Disambiguate(text, surfaces)
	expanded := New(k, WithMethod(prior), WithSurfaceExpansion()).Disambiguate(text, surfaces)
	if plain.Results[1].Label != "Jimmy Carter" {
		t.Skip("prior no longer misleads; premise gone")
	}
	if expanded.Results[1].Label != "Rubin Carter" {
		t.Fatalf("expansion should resolve Carter, got %q", expanded.Results[1].Label)
	}
}

func TestKBSaveLoadThroughFacade(t *testing.T) {
	k := demoKB()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := LoadKB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(k2)
	out := sys.Disambiguate("Page played unusual chords on his Gibson.", []string{"Page"})
	if out.Results[0].Label != "Jimmy Page" {
		t.Errorf("loaded KB misbehaves: %q", out.Results[0].Label)
	}
}

// TestSaveEngineFile covers the atomic snapshot file write, including the
// bare-filename case: the temp file must be created next to the target
// (never in the system temp dir), or the final rename could cross devices.
func TestSaveEngineFile(t *testing.T) {
	k := demoKB()
	sys := New(k)
	sys.Annotate("They performed Kashmir, written by Page and Plant.")
	t.Chdir(t.TempDir())
	n, err := sys.SaveEngineFile("engine.snap") // no directory component
	if err != nil {
		t.Fatalf("SaveEngineFile: %v", err)
	}
	fi, err := os.Stat("engine.snap")
	if err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if fi.Size() != n {
		t.Fatalf("snapshot is %d bytes, SaveEngineFile reported %d", fi.Size(), n)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after snapshot, want just the file: %v", len(entries), entries)
	}
	// The file loads back into a fresh system.
	warm := New(k)
	f, err := os.Open("engine.snap")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := warm.LoadEngine(f); err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	if st := warm.Scorer().Stats(); st.Pairs == 0 {
		t.Fatalf("loaded engine is cold: %+v", st)
	}
}
