package aida

import (
	"context"
	"iter"
	"runtime"
	"sync"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
	"aida/internal/pool"
	"aida/internal/tokenizer"
)

// Document is the result of annotating one document through the
// context-aware request API (AnnotateDoc, AnnotateCorpus, AnnotateStream).
// The always-present core is Annotations; the other fields are opt-in
// extras selected with AnnotateOptions, so the common path pays nothing
// for them.
type Document struct {
	// Index is the document's position within its corpus or stream
	// (always 0 for AnnotateDoc).
	Index int
	// Annotations are the recognized mentions with their linked entities,
	// in text order.
	Annotations []Annotation
	// Candidates holds, per mention, the materialized candidate list with
	// the method's final per-candidate scores attached (in the KB's
	// prior-sorted order). Nil unless IncludeCandidates was given.
	Candidates [][]RankedCandidate
	// Confidence holds the per-mention CONF confidence scores of
	// Chapter 5. Nil unless IncludeConfidence was given.
	Confidence []float64
	// Stats reports the disambiguation work counters. Nil unless
	// IncludeStats was given.
	Stats *Stats
}

// RankedCandidate is one scored disambiguation candidate of a mention,
// reported in Document.Candidates when IncludeCandidates is requested.
type RankedCandidate struct {
	Entity EntityID
	Label  string
	Prior  float64
	// Score is the method's final score for this candidate (0 for methods
	// that do not expose a per-candidate score vector).
	Score float64
}

// annotateOptions is a fully resolved request: the RequestSpec validated
// against the System's defaults, with the method constructed, the context
// model built, and the domain layer looked up.
type annotateOptions struct {
	method      Method
	maxCands    int
	expand      bool
	parallelism int
	withCands   bool
	confIters   int
	confSeed    int64
	withStats   bool
	requestID   string
	ctxModel    *disambig.ContextModel
	domain      *liveKB
}

// requestOptions folds the option list into one RequestSpec (catching
// duplicate-field conflicts) and resolves it against the System's
// defaults.
func (s *System) requestOptions(opts []AnnotateOption) (annotateOptions, error) {
	var spec RequestSpec
	for _, opt := range opts {
		if opt != nil {
			opt(&spec)
		}
	}
	return s.resolveSpec(&spec)
}

// resolveSpec validates a merged RequestSpec and resolves every field
// against the System's defaults. All request validation lives here — the
// Go options path and the HTTP server's JSON path produce identical
// errors because both end up in this one function.
func (s *System) resolveSpec(spec *RequestSpec) (annotateOptions, error) {
	o := annotateOptions{
		method:   s.Method,
		maxCands: s.MaxCandidates,
		expand:   s.ExpandSurfaces,
	}
	if spec.err != nil {
		return o, spec.err
	}
	switch {
	case spec.method != nil:
		o.method = spec.method
	case spec.Method != "" || spec.has(fieldMethod):
		m, err := MethodByName(spec.Method)
		if err != nil {
			return o, &InvalidRequestError{Err: err}
		}
		o.method = m
	}
	if o.method == nil {
		o.method = NewAIDAMethod()
	}
	if spec.Parallelism < 0 {
		return o, invalidRequestf("invalid parallelism %d: must be >= 0 (0 means the default)", spec.Parallelism)
	}
	o.parallelism = spec.Parallelism
	if spec.MaxCandidates != nil {
		o.maxCands = *spec.MaxCandidates
	}
	if spec.Expand != nil {
		o.expand = *spec.Expand
	}
	o.withCands = spec.Candidates
	if spec.Confidence != nil {
		o.confIters = spec.Confidence.Iterations
		if o.confIters <= 0 {
			o.confIters = 10
		}
		o.confSeed = spec.Confidence.Seed
	}
	o.withStats = spec.Stats
	o.requestID = spec.RequestID
	if c := spec.Context; c != nil {
		if len(c.Keyphrases) > MaxContextKeyphrases {
			return o, invalidRequestf("context too large: %d keyphrases exceed the limit of %d", len(c.Keyphrases), MaxContextKeyphrases)
		}
		if len(c.Entities) > MaxContextEntities {
			return o, invalidRequestf("context too large: %d entities exceed the limit of %d", len(c.Entities), MaxContextEntities)
		}
		if c.Weight < 0 || c.Weight > 1 {
			return o, invalidRequestf("invalid context weight %v: must be in [0, 1]", c.Weight)
		}
		if len(c.Keyphrases) > 0 || len(c.Entities) > 0 {
			cm := &disambig.ContextModel{Weight: c.Weight}
			for _, kp := range c.Keyphrases {
				cm.Words = append(cm.Words, tokenizer.ContentWords(kp)...)
			}
			if len(c.Entities) > 0 {
				cm.Entities = make(map[EntityID]bool, len(c.Entities))
				for _, id := range c.Entities {
					cm.Entities[id] = true
				}
			}
			o.ctxModel = cm
		}
	}
	if spec.Domain != "" {
		lv, err := s.domainLive(spec.Domain)
		if err != nil {
			return o, err
		}
		o.domain = lv
	}
	return o, nil
}

// ValidateRequest resolves a request spec against the System without
// annotating anything: nil means an equivalent AnnotateDoc call would
// accept the request; otherwise the returned error is exactly the one the
// annotate call would produce (an InvalidRequestError for client
// mistakes). The HTTP server pre-validates streaming batch requests with
// it, so a bad spec gets a clean 400 instead of failing mid-stream.
func (s *System) ValidateRequest(spec *RequestSpec) error {
	_, err := s.requestOptions(spec.Options())
	return err
}

// annotateOne runs the full pipeline for one document under the resolved
// request options. coherenceWorkers = 1 pins per-document coherence
// scoring to one goroutine (used under document-level fan-out), 0 keeps
// the method's own default; the override never changes results, only
// scheduling. ctx cancels in-flight scoring; on cancellation the partial
// output is discarded and ctx.Err() returned.
func (s *System) annotateOne(ctx context.Context, text string, o annotateOptions, coherenceWorkers int) (doc *Document, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A remote-backed KB (kb.RemoteStore) has no error returns on the Store
	// read surface: a shard whose every replica failed surfaces as a panic
	// carrying *kb.RemoteError. Convert it to a request error here — the one
	// funnel every annotation passes through — so callers (and the HTTP
	// server) see a failed request, not a crashed process. Any other panic
	// is a real bug and propagates.
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*kb.RemoteError)
			if !ok {
				panic(r)
			}
			doc, err = nil, re
		}
	}()
	// Load the serving KB generation exactly once: recognition, candidate
	// materialization and scoring below all run against this one (store,
	// engine) pair, so a concurrent ApplyDelta can never hand this document
	// a torn read — it finishes on the generation it started with. A
	// request routed into a domain (WithDomain) resolved its layer during
	// option resolution; the layer carries its own (store, engine) pair.
	lv := o.domain
	if lv == nil {
		lv = s.live.Load()
	}
	// Tokenize once: recognition and context-word extraction share the
	// same token stream (the context words of a document are a pure
	// function of its tokens, so the annotations are unchanged).
	tokens := tokenizer.Tokenize(text)
	rec := s.recognizer
	rec.Lexicon = lv.store
	mentions := rec.RecognizeTokens(text, tokens)
	surfaces := make([]string, len(mentions))
	for i, m := range mentions {
		surfaces[i] = m.Text
	}
	if o.expand {
		surfaces = disambig.ExpandSurfaces(lv.store, surfaces)
	}
	p := disambig.NewProblemFromWords(lv.store, tokenizer.ContentWordsFromTokens(tokens), surfaces, o.maxCands)
	p.Scorer = lv.engine
	p.CoherenceWorkers = coherenceWorkers
	p.Context = ctx
	p.ContextModel = o.ctxModel
	out := o.method.Disambiguate(p)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	doc = &Document{Annotations: make([]Annotation, len(mentions))}
	for i, m := range mentions {
		r := out.Results[i]
		doc.Annotations[i] = Annotation{Mention: m, Entity: r.Entity, Label: r.Label, Score: r.Score}
	}
	if o.withCands {
		doc.Candidates = rankedCandidates(p, out)
	}
	if o.confIters > 0 {
		doc.Confidence = emerge.CONF(o.method, p, out, emerge.PerturbConfig{Iterations: o.confIters, Seed: o.confSeed})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if o.withStats {
		st := out.Stats
		st.RequestID = o.requestID
		doc.Stats = &st
	}
	return doc, nil
}

// rankedCandidates pairs each mention's materialized candidates with the
// method's final score vector.
func rankedCandidates(p *disambig.Problem, out *disambig.Output) [][]RankedCandidate {
	all := make([][]RankedCandidate, len(p.Mentions))
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := out.Results[i].Scores
		rc := make([]RankedCandidate, len(m.Candidates))
		for j := range m.Candidates {
			c := &m.Candidates[j]
			rc[j] = RankedCandidate{Entity: c.Entity, Label: c.Label, Prior: c.Prior}
			if j < len(scores) {
				rc[j].Score = scores[j]
			}
		}
		all[i] = rc
	}
	return all
}

// AnnotateDoc runs the full pipeline — recognition plus disambiguation —
// on one document. ctx cancels in-flight scoring promptly (the coherence
// workers observe it); options select the method, candidate cap, surface
// expansion, coherence parallelism and opt-in extras for this request
// only. The annotations are byte-identical to the deprecated Annotate at
// any parallelism.
func (s *System) AnnotateDoc(ctx context.Context, text string, opts ...AnnotateOption) (*Document, error) {
	o, err := s.requestOptions(opts)
	if err != nil {
		return nil, err
	}
	return s.annotateOne(ctx, text, o, o.parallelism)
}

// AnnotateCorpus annotates a slice of documents concurrently with a
// bounded worker pool (WithParallelism; default GOMAXPROCS) and returns
// the documents in input order. On cancellation it stops handing out
// documents, waits for in-flight workers, and returns ctx.Err(); no
// partial result is returned. The annotations are byte-identical to a
// sequential AnnotateDoc loop — and to the deprecated AnnotateBatch — at
// any parallelism, because the shared engine memoizes only pure functions
// of the KB.
func (s *System) AnnotateCorpus(ctx context.Context, docs []string, opts ...AnnotateOption) ([]*Document, error) {
	o, err := s.requestOptions(opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Document, len(docs))
	workers := batchWorkers(o.parallelism, len(docs))
	if workers <= 1 {
		// One document at a time. An explicit parallelism is the total
		// concurrency budget, so it bounds each document's coherence pool
		// (parallelism 1 means one goroutine in total, not one document at
		// a time each fanning out to GOMAXPROCS); parallelism 0 keeps the
		// method default.
		for i, d := range docs {
			doc, err := s.annotateOne(ctx, d, o, o.parallelism)
			if err != nil {
				return nil, err
			}
			doc.Index = i
			out[i] = doc
		}
		return out, nil
	}
	// Parallelism comes from the document pool; pin each document's
	// coherence scoring to one goroutine so a P-worker corpus schedules P
	// goroutines, not P².
	err = pool.ForEachCtx(ctx, len(docs), workers, func(i int) error {
		doc, err := s.annotateOne(ctx, docs[i], o, 1)
		if err != nil {
			return err
		}
		doc.Index = i
		out[i] = doc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnnotateStream annotates an arbitrary document sequence: documents are
// fanned out to a bounded worker pool (WithParallelism; default
// GOMAXPROCS) while results are yielded strictly in input order, each as
// soon as it and all its predecessors are done. Memory stays bounded by
// the worker count rather than the corpus size, so it suits indefinite
// feeds (news streams, queue consumers); for in-memory slices
// AnnotateCorpus is simpler.
//
// Breaking out of the range loop stops the workers and the input pull
// without leaking goroutines. When ctx is canceled the stream stops
// pulling input, drains its workers, and ends by yielding (nil,
// ctx.Err()) — a nil error on every yielded pair therefore means the
// sequence was annotated completely. The yielded annotations are
// byte-identical to the deprecated AnnotateAll at any parallelism.
func (s *System) AnnotateStream(ctx context.Context, docs iter.Seq[string], opts ...AnnotateOption) iter.Seq2[*Document, error] {
	return func(yield func(*Document, error) bool) {
		o, err := s.requestOptions(opts)
		if err != nil {
			yield(nil, err)
			return
		}
		workers := batchWorkers(o.parallelism, -1)
		if workers <= 1 {
			// workers == 1 means the caller asked for parallelism 1 or
			// GOMAXPROCS is 1; either way the whole sequence runs on one
			// goroutine, so the per-document coherence pool is pinned too.
			i := 0
			for d := range docs {
				doc, err := s.annotateOne(ctx, d, o, 1)
				if err != nil {
					yield(nil, err)
					return
				}
				doc.Index = i
				if !yield(doc, nil) {
					return
				}
				i++
			}
			return
		}
		type job struct {
			i    int
			text string
		}
		type res struct {
			i   int
			doc *Document
			err error
		}
		stop := make(chan struct{})
		defer close(stop)
		jobs := make(chan job, workers)
		results := make(chan res, workers)
		go func() { // producer
			defer close(jobs)
			i := 0
			for d := range docs {
				select {
				case jobs <- job{i: i, text: d}:
					i++
				case <-stop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					doc, err := s.annotateOne(ctx, j.text, o, 1)
					if doc != nil {
						doc.Index = j.i
					}
					select {
					case results <- res{i: j.i, doc: doc, err: err}:
						if err != nil {
							return
						}
					case <-stop:
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()
		// Reorder: emit document i only after 0..i-1 have been emitted.
		// annotateOne always returns a non-nil document on success, so
		// presence in pending is enough to mark a document done.
		pending := make(map[int]*Document, workers)
		next := 0
		for r := range results {
			if r.err != nil {
				yield(nil, r.err)
				return
			}
			pending[r.i] = r.doc
			for {
				doc, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !yield(doc, nil) {
					return
				}
				next++
			}
		}
		// The producer may have stopped pulling input on cancellation
		// without any worker observing ctx (all drained jobs finished
		// first). Surface the truncation instead of ending as a success.
		if err := ctx.Err(); err != nil {
			yield(nil, err)
		}
	}
}

// batchWorkers resolves the worker count for a document fan-out; n < 0
// means the document count is unknown (streaming).
func batchWorkers(parallelism, n int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && w > n {
		w = n
	}
	return w
}

// Annotate runs the full pipeline: recognition plus disambiguation.
//
// Deprecated: use AnnotateDoc, which adds cancellation and per-request
// options. Annotate(text) is exactly AnnotateDoc(context.Background(),
// text) — the annotations are byte-identical.
func (s *System) Annotate(text string) []Annotation {
	doc, err := s.AnnotateDoc(context.Background(), text)
	if err != nil {
		return nil // unreachable: background context, no options
	}
	return doc.Annotations
}

// AnnotateBounded is Annotate with an explicit concurrency budget: at most
// parallelism goroutines score the document's coherence edges (parallelism
// ≤ 0 keeps the method's own default, GOMAXPROCS). The bound changes
// scheduling only, never results.
//
// Deprecated: use AnnotateDoc with WithParallelism, which is byte-identical.
func (s *System) AnnotateBounded(text string, parallelism int) []Annotation {
	doc, err := s.AnnotateDoc(context.Background(), text, WithParallelism(max(parallelism, 0)))
	if err != nil {
		return nil // unreachable: background context, valid options
	}
	return doc.Annotations
}

// AnnotateBatch annotates documents concurrently with a bounded worker
// pool (parallelism ≤ 0 means GOMAXPROCS) and returns the annotations in
// input order.
//
// Deprecated: use AnnotateCorpus with WithParallelism, which adds
// cancellation and per-request options and is byte-identical.
func (s *System) AnnotateBatch(docs []string, parallelism int) [][]Annotation {
	docsOut, err := s.AnnotateCorpus(context.Background(), docs, WithParallelism(max(parallelism, 0)))
	if err != nil {
		return nil // unreachable: background context, valid options
	}
	out := make([][]Annotation, len(docsOut))
	for i, d := range docsOut {
		out[i] = d.Annotations
	}
	return out
}

// AnnotateAll streams annotations for an arbitrary document sequence,
// yielding (index, annotations) pairs strictly in input order.
//
// Deprecated: use AnnotateStream with WithParallelism, which adds
// cancellation, error reporting and per-request options; the yielded
// annotations are byte-identical.
func (s *System) AnnotateAll(docs iter.Seq[string], parallelism int) iter.Seq2[int, []Annotation] {
	return func(yield func(int, []Annotation) bool) {
		for doc, err := range s.AnnotateStream(context.Background(), docs, WithParallelism(max(parallelism, 0))) {
			if err != nil {
				return // unreachable: background context, valid options
			}
			if !yield(doc.Index, doc.Annotations) {
				return
			}
		}
	}
}
