// Package aida is a from-scratch Go implementation of the entity
// discovery and disambiguation system of Johannes Hoffart's dissertation
// "Discovering and Disambiguating Named Entities in Text" (AIDA, KORE,
// NED-EE).
//
// The package links ambiguous names in natural-language text to canonical
// entities of a knowledge base, following the dissertation's three
// contributions:
//
//   - AIDA (Chapter 3): robust joint disambiguation over a mention–entity
//     coherence graph, combining an anchor-based popularity prior, a
//     keyphrase partial-match similarity, and entity–entity semantic
//     coherence, with self-adapting robustness tests.
//   - KORE (Chapter 4): keyphrase-overlap entity relatedness with two-stage
//     min-hash/LSH hashing for near-linear all-pairs computation — usable
//     for long-tail and out-of-knowledge-base entities without link
//     structure.
//   - NED-EE (Chapter 5): discovery of emerging entities by explicit
//     placeholder modeling (a global keyphrase model of the name minus the
//     in-KB model) and perturbation-based disambiguation confidence.
//
// # Quick start
//
//	b := aida.NewKBBuilder()
//	page := b.AddEntity("Jimmy Page", "music", "person")
//	b.AddName("Page", page, 30)
//	b.AddKeyphrase(page, "English rock guitarist")
//	// ... more entities, names, links, keyphrases ...
//	sys := aida.New(b.Build())
//	for _, a := range sys.Annotate("Page played his Gibson.") {
//		fmt.Println(a.Mention.Text, "→", a.Label)
//	}
//
// See the examples directory for end-to-end programs: a quickstart, an
// emerging-entity news pipeline, a relatedness comparison, and the
// strings+things+cats entity search application.
package aida
