// Package aida is a from-scratch Go implementation of the entity
// discovery and disambiguation system of Johannes Hoffart's dissertation
// "Discovering and Disambiguating Named Entities in Text" (AIDA, KORE,
// NED-EE).
//
// The package links ambiguous names in natural-language text to canonical
// entities of a knowledge base, following the dissertation's three
// contributions:
//
//   - AIDA (Chapter 3): robust joint disambiguation over a mention–entity
//     coherence graph, combining an anchor-based popularity prior, a
//     keyphrase partial-match similarity, and entity–entity semantic
//     coherence, with self-adapting robustness tests.
//   - KORE (Chapter 4): keyphrase-overlap entity relatedness with two-stage
//     min-hash/LSH hashing for near-linear all-pairs computation — usable
//     for long-tail and out-of-knowledge-base entities without link
//     structure.
//   - NED-EE (Chapter 5): discovery of emerging entities by explicit
//     placeholder modeling (a global keyphrase model of the name minus the
//     in-KB model) and perturbation-based disambiguation confidence.
//
// # Quick start
//
//	b := aida.NewKBBuilder()
//	page := b.AddEntity("Jimmy Page", "music", "person")
//	b.AddName("Page", page, 30)
//	b.AddKeyphrase(page, "English rock guitarist")
//	// ... more entities, names, links, keyphrases ...
//	sys := aida.New(b.Build())
//	doc, err := sys.AnnotateDoc(ctx, "Page played his Gibson.")
//	if err != nil { ... }
//	for _, a := range doc.Annotations {
//		fmt.Println(a.Mention.Text, "→", a.Label)
//	}
//
// # The request API
//
// All annotation goes through three context-aware methods — AnnotateDoc,
// AnnotateCorpus (a slice, input order) and AnnotateStream (any
// iter.Seq[string], yielded in input order with memory bounded by the
// worker count). Canceling the context aborts in-flight scoring promptly
// and surfaces ctx.Err(). Per-request AnnotateOptions select the method
// (UseMethod, UseMethodNamed), parallelism (WithParallelism), candidate
// cap (CapCandidates), surface expansion (SurfaceExpansion) and opt-in
// result extras (IncludeCandidates, IncludeConfidence, IncludeStats)
// without touching the System, so one warm process serves heterogeneous
// traffic:
//
//	docs, err := sys.AnnotateCorpus(ctx, texts, aida.WithParallelism(8))
//	for doc, err := range sys.AnnotateStream(ctx, feed, aida.UseMethodNamed("prior")) { ... }
//
// The original Annotate, AnnotateBounded, AnnotateBatch and AnnotateAll
// remain as deprecated wrappers with byte-identical output.
//
// # Scoring engine and deterministic concurrency
//
// Every System holds a Scorer: a long-lived, sharded, concurrency-safe
// engine bound to its KB that interns per-entity keyphrase profiles,
// memoizes pairwise relatedness for all six measure kinds across
// documents, and builds each LSH filter once. Single-document annotation,
// System.Relatedness, coherence scoring and the emerging-entity pipeline
// all draw from it, so repeated candidate entities — the common case over
// a corpus — are never re-scored.
//
// AnnotateCorpus and AnnotateStream are deterministic: the output is
// byte-identical to a sequential AnnotateDoc loop at any parallelism,
// because the engine memoizes only pure functions of the KB.
//
// The engine's state is observable: (*Scorer).Stats returns a ScorerStats
// snapshot with per-measure-kind cache hit/miss counters and the interned
// profiles' approximate memory footprint.
//
// # Sharded knowledge bases
//
// Systems are built over a Store, the read interface both knowledge-base
// implementations satisfy: the single in-memory KB and the ShardedKB
// router returned by ShardKB(k, n), which splits entities by id and
// dictionary rows by surface hash across n shards. Annotation output is
// byte-identical at any shard count — candidate priors included — a
// contract pinned by a golden-corpus conformance suite, so sharded
// deployments can be rolled out without output drift.
//
// # The annotation service
//
// Command aidaserver (cmd/aidaserver) runs the pipeline as a long-running
// HTTP service: the KB is loaded once, one System is shared across all
// requests, and JSON endpoints expose single-document and batch
// annotation (including an order-preserving NDJSON stream for large
// batches), entity relatedness, health, and engine statistics in JSON or
// Prometheus text form. Requests may select a disambiguation method per
// call, and a client disconnect cancels the request context all the way
// into the scoring workers (the abort is visible in the service's
// canceled-request counter). Because batch annotation is deterministic,
// service responses are byte-identical to the in-process API at any
// parallelism, and replicas of the same KB snapshot agree byte-for-byte.
//
// # Documentation
//
// docs/API.md is the full reference for this package's public surface and
// the HTTP endpoints; docs/ARCHITECTURE.md maps the internal packages,
// the mention–entity graph algorithm, and where the shared engine sits in
// the data flow. The examples directory holds end-to-end programs: a
// quickstart, a concurrent batch annotator, the HTTP service exercised in
// one process (annotateservice), an emerging-entity news pipeline, a
// relatedness comparison, and the strings+things+cats entity search
// application.
package aida
