module aida

go 1.24
