package aida

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeprecatedWrappersByteIdentical pins the compatibility contract of
// the API redesign: Annotate, AnnotateBounded, AnnotateBatch and
// AnnotateAll must produce exactly the annotations of the context-aware
// AnnotateDoc/AnnotateCorpus/AnnotateStream they now wrap, at any
// parallelism.
func TestDeprecatedWrappersByteIdentical(t *testing.T) {
	k, docs := batchWorld(t, 8)
	ctx := context.Background()

	for _, parallelism := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		sys := New(k, WithMaxCandidates(10))

		corpus, err := sys.AnnotateCorpus(ctx, docs, WithParallelism(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		batch := sys.AnnotateBatch(docs, parallelism)
		for i := range docs {
			if corpus[i].Index != i {
				t.Fatalf("parallelism=%d: corpus doc %d has index %d", parallelism, i, corpus[i].Index)
			}
			if !reflect.DeepEqual(corpus[i].Annotations, batch[i]) {
				t.Fatalf("parallelism=%d doc %d: AnnotateCorpus diverges from AnnotateBatch", parallelism, i)
			}
		}

		single := sys.Annotate(docs[0])
		doc, err := sys.AnnotateDoc(ctx, docs[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, doc.Annotations) {
			t.Fatalf("AnnotateDoc diverges from Annotate")
		}
		bounded := sys.AnnotateBounded(docs[0], parallelism)
		bdoc, err := sys.AnnotateDoc(ctx, docs[0], WithParallelism(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bounded, bdoc.Annotations) {
			t.Fatalf("parallelism=%d: AnnotateDoc diverges from AnnotateBounded", parallelism)
		}

		var streamed [][]Annotation
		for d, err := range sys.AnnotateStream(ctx, slices.Values(docs), WithParallelism(parallelism)) {
			if err != nil {
				t.Fatal(err)
			}
			if d.Index != len(streamed) {
				t.Fatalf("parallelism=%d: stream yielded index %d at position %d", parallelism, d.Index, len(streamed))
			}
			streamed = append(streamed, d.Annotations)
		}
		var all [][]Annotation
		for _, anns := range sys.AnnotateAll(slices.Values(docs), parallelism) {
			all = append(all, anns)
		}
		if !reflect.DeepEqual(streamed, all) {
			t.Fatalf("parallelism=%d: AnnotateStream diverges from AnnotateAll", parallelism)
		}
	}
}

// TestAnnotateCanceledBeforeStart checks that an already-canceled context
// annotates nothing: every entry point returns ctx.Err() and the engine
// shows no scoring work.
func TestAnnotateCanceledBeforeStart(t *testing.T) {
	k, docs := batchWorld(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, parallelism := range []int{1, 4} {
		sys := New(k, WithMaxCandidates(10))
		if _, err := sys.AnnotateDoc(ctx, docs[0]); !errors.Is(err, context.Canceled) {
			t.Fatalf("AnnotateDoc err = %v, want context.Canceled", err)
		}
		if got, err := sys.AnnotateCorpus(ctx, docs, WithParallelism(parallelism)); !errors.Is(err, context.Canceled) || got != nil {
			t.Fatalf("parallelism=%d: AnnotateCorpus = (%v, %v), want (nil, context.Canceled)", parallelism, got, err)
		}
		yields := 0
		for doc, err := range sys.AnnotateStream(ctx, slices.Values(docs), WithParallelism(parallelism)) {
			yields++
			if doc != nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("parallelism=%d: stream yielded (%v, %v), want (nil, context.Canceled)", parallelism, doc, err)
			}
		}
		if yields != 1 {
			t.Fatalf("parallelism=%d: canceled stream yielded %d times, want exactly the error", parallelism, yields)
		}
		if hits, misses := sys.Scorer().CacheStats(); hits+misses != 0 {
			t.Fatalf("parallelism=%d: engine did %d pair computations after cancellation", parallelism, hits+misses)
		}
	}
}

// TestAnnotateStreamMidwayCancel cancels after the first yielded document
// and checks the stream (a) ends with ctx.Err() and (b) stops pulling
// input instead of draining the whole feed.
func TestAnnotateStreamMidwayCancel(t *testing.T) {
	k, docs := batchWorld(t, 4)
	// A long feed that cycles the corpus; pulls are counted atomically
	// because the stream's producer goroutine runs the feed.
	const feedLen = 10_000
	var pulled atomic.Int64
	feed := func(yield func(string) bool) {
		for i := 0; i < feedLen; i++ {
			pulled.Add(1)
			if !yield(docs[i%len(docs)]) {
				return
			}
		}
	}

	for _, parallelism := range []int{1, 4} {
		sys := New(k, WithMaxCandidates(10))
		ctx, cancel := context.WithCancel(context.Background())
		pulled.Store(0)
		var sawErr error
		yielded := 0
		for doc, err := range sys.AnnotateStream(ctx, feed, WithParallelism(parallelism)) {
			if err != nil {
				sawErr = err
				break
			}
			_ = doc
			yielded++
			cancel()
		}
		cancel()
		if !errors.Is(sawErr, context.Canceled) {
			t.Fatalf("parallelism=%d: stream ended with %v after %d docs, want context.Canceled", parallelism, sawErr, yielded)
		}
		if n := pulled.Load(); n >= feedLen {
			t.Fatalf("parallelism=%d: canceled stream drained the whole %d-document feed", parallelism, feedLen)
		}
	}
}

// TestAnnotateStreamEarlyBreakLeaksNoGoroutines pins the stream's cleanup:
// breaking out of the range loop must wind down the producer and workers.
func TestAnnotateStreamEarlyBreakLeaksNoGoroutines(t *testing.T) {
	k, docs := batchWorld(t, 10)
	sys := New(k, WithMaxCandidates(10))
	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		n := 0
		for doc, err := range sys.AnnotateStream(context.Background(), slices.Values(docs), WithParallelism(4)) {
			if err != nil {
				t.Fatal(err)
			}
			_ = doc
			n++
			if n == 2 {
				break
			}
		}
		if n != 2 {
			t.Fatalf("round %d: early break consumed %d docs", round, n)
		}
	}

	// Workers drain asynchronously after the break; give them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after early breaks", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnnotateOptionsPerRequest checks that options change one request
// without touching the System, and that the opt-in extras are populated.
func TestAnnotateOptionsPerRequest(t *testing.T) {
	k, docs := batchWorld(t, 2)
	ctx := context.Background()
	sys := New(k, WithMaxCandidates(10))

	def, err := sys.AnnotateDoc(ctx, docs[0])
	if err != nil {
		t.Fatal(err)
	}
	if def.Candidates != nil || def.Confidence != nil || def.Stats != nil {
		t.Fatalf("extras must be opt-in; got %+v", def)
	}

	// Per-request method matches a System constructed with that method.
	prior, _ := MethodByName("prior")
	want := New(k, WithMethod(prior), WithMaxCandidates(10)).Annotate(docs[0])
	got, err := sys.AnnotateDoc(ctx, docs[0], UseMethodNamed("prior"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Annotations, want) {
		t.Fatal("UseMethodNamed(prior) diverges from a prior-method System")
	}
	// ... and the System's own method is untouched.
	after, err := sys.AnnotateDoc(ctx, docs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Annotations, def.Annotations) {
		t.Fatal("a per-request method leaked into the System")
	}

	if _, err := sys.AnnotateDoc(ctx, docs[0], UseMethodNamed("bogus")); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unknown method name: err = %v", err)
	}

	// Candidate cap: matches a System with that cap.
	capped, err := sys.AnnotateDoc(ctx, docs[0], CapCandidates(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := New(k, WithMaxCandidates(1)).Annotate(docs[0]); !reflect.DeepEqual(capped.Annotations, want) {
		t.Fatal("CapCandidates(1) diverges from a MaxCandidates(1) System")
	}

	// Extras: candidates, confidence and stats ride along on request.
	rich, err := sys.AnnotateDoc(ctx, docs[0], IncludeCandidates(), IncludeConfidence(5, 42), IncludeStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(rich.Annotations) == 0 {
		t.Fatal("test document produced no annotations")
	}
	if len(rich.Candidates) != len(rich.Annotations) || len(rich.Confidence) != len(rich.Annotations) {
		t.Fatalf("extras misaligned: %d mentions, %d candidate lists, %d confidences",
			len(rich.Annotations), len(rich.Candidates), len(rich.Confidence))
	}
	if rich.Stats == nil || rich.Stats.Comparisons == 0 {
		t.Fatalf("Stats = %+v, want populated comparison counter", rich.Stats)
	}
	for i, conf := range rich.Confidence {
		if conf < 0 || conf > 1 {
			t.Fatalf("confidence[%d] = %v out of [0,1]", i, conf)
		}
	}
	anyCand := false
	for i, cands := range rich.Candidates {
		for _, c := range cands {
			anyCand = true
			if c.Label == "" {
				t.Fatalf("mention %d: candidate with empty label: %+v", i, c)
			}
		}
	}
	if !anyCand {
		t.Fatal("no candidates reported for any mention")
	}
	// The extras never change the annotations themselves.
	if !reflect.DeepEqual(rich.Annotations, def.Annotations) {
		t.Fatal("opt-in extras changed the annotations")
	}

	// IncludeConfidence matches the standalone Confidence helper.
	p := sys.NewProblem(docs[0], surfacesOf(rich.Annotations))
	out := sys.Method.Disambiguate(p)
	if want := sys.Confidence(p, out, 5, 42); !reflect.DeepEqual(rich.Confidence, want) {
		t.Fatalf("IncludeConfidence = %v, want %v", rich.Confidence, want)
	}
}

// TestWithRequestID checks the trace-id thread into Document.Stats: the
// id rides along only with IncludeStats, and an absent id leaves the
// field empty (so the JSON stays byte-identical for untraced callers).
func TestWithRequestID(t *testing.T) {
	k, docs := batchWorld(t, 1)
	ctx := context.Background()
	sys := New(k, WithMaxCandidates(10))

	doc, err := sys.AnnotateDoc(ctx, docs[0], IncludeStats(), WithRequestID("req-42"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Stats == nil || doc.Stats.RequestID != "req-42" {
		t.Fatalf("Stats = %+v, want RequestID %q", doc.Stats, "req-42")
	}

	plain, err := sys.AnnotateDoc(ctx, docs[0], IncludeStats())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats == nil || plain.Stats.RequestID != "" {
		t.Fatalf("Stats = %+v, want empty RequestID without the option", plain.Stats)
	}

	// Without IncludeStats the id has nowhere to land and must not force
	// the stats on.
	bare, err := sys.AnnotateDoc(ctx, docs[0], WithRequestID("req-43"))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Stats != nil {
		t.Fatalf("WithRequestID alone materialized Stats: %+v", bare.Stats)
	}
}

func surfacesOf(anns []Annotation) []string {
	out := make([]string, len(anns))
	for i, a := range anns {
		out[i] = a.Mention.Text
	}
	return out
}

// TestMethodTable enumerates every selector MethodByName accepts: each
// must resolve case-insensitively, the empty string must mean "aida", and
// the baseline-backed selectors must name methods of Baselines().
func TestMethodTable(t *testing.T) {
	names := MethodNames()
	if len(names) == 0 {
		t.Fatal("MethodNames is empty")
	}
	want := []string{"aida", "cuc", "iw", "kul-ci", "prior", "sim", "tagme"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("MethodNames() = %v, want %v", names, want)
	}

	baselineNames := make(map[string]bool)
	for _, m := range Baselines() {
		baselineNames[m.Name()] = true
	}

	for _, sel := range names {
		lower, err := MethodByName(sel)
		if err != nil {
			t.Fatalf("MethodByName(%q): %v", sel, err)
		}
		for _, variant := range []string{strings.ToUpper(sel), strings.ToUpper(sel[:1]) + sel[1:]} {
			m, err := MethodByName(variant)
			if err != nil {
				t.Fatalf("MethodByName(%q): %v", variant, err)
			}
			if m.Name() != lower.Name() {
				t.Fatalf("MethodByName(%q) = %q, want %q", variant, m.Name(), lower.Name())
			}
		}
		// The shorthand selectors that defer to the baseline suite must
		// resolve to members of it.
		switch sel {
		case "prior", "sim", "cuc", "kul-ci":
			if !baselineNames[lower.Name()] {
				t.Fatalf("selector %q resolves to %q, which Baselines() does not contain", sel, lower.Name())
			}
		}
	}

	def, err := MethodByName("")
	if err != nil {
		t.Fatalf("MethodByName(\"\"): %v", err)
	}
	aidaM, _ := MethodByName("aida")
	if def.Name() != aidaM.Name() {
		t.Fatalf("empty selector = %q, want the aida default %q", def.Name(), aidaM.Name())
	}

	if _, err := MethodByName("no-such-method"); err == nil {
		t.Fatal("unknown selector must error, never fall back")
	}
}
