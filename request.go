package aida

import "fmt"

// RequestSpec is the declarative form of one annotation request: every
// per-request knob of AnnotateDoc/AnnotateCorpus/AnnotateStream as a plain
// JSON-taggable struct. The functional options (UseMethod, WithContext, …)
// are thin wrappers that each set one field of a spec; Options() goes the
// other way, turning a filled-in spec — decoded from JSON by the HTTP
// server, or built literally by a Go caller — into the option list the
// annotate entry points accept. Both routes resolve through the same
// validation, so an error surfaces with identical text whether the request
// came through the Go API or over HTTP.
//
// Merge rule: options apply field-wise, later fields overriding nothing —
// setting the same field twice (two UseMethod calls, or a spec field plus
// the matching option) is a conflict and fails the request with an
// InvalidRequestError naming the field, never a silent last-one-wins. A
// field left at its zero value (or nil pointer) keeps the System default.
type RequestSpec struct {
	// Method selects the disambiguation method by the selector names of
	// MethodByName ("aida", "prior", "sim", "cuc", "kul-ci", "tagme",
	// "iw"; empty keeps the System's method).
	Method string `json:"method,omitempty"`
	// Parallelism bounds the request's concurrency (see WithParallelism).
	// 0 means the default; negative values are rejected.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxCandidates overrides the System's candidate cap when non-nil
	// (0 removes the cap; see CapCandidates).
	MaxCandidates *int `json:"max_candidates,omitempty"`
	// Expand overrides the System's surface-expansion setting when
	// non-nil (see SurfaceExpansion).
	Expand *bool `json:"surface_expansion,omitempty"`
	// Candidates asks for the per-mention scored candidate lists
	// (IncludeCandidates).
	Candidates bool `json:"candidates,omitempty"`
	// Confidence, when non-nil, asks for per-mention CONF confidence
	// scores (IncludeConfidence).
	Confidence *ConfidenceSpec `json:"confidence,omitempty"`
	// Stats asks for the disambiguation work counters (IncludeStats).
	Stats bool `json:"stats,omitempty"`
	// Context is the request's interest model — the short-text context
	// prior (WithContext / WithContextEntities / WithUserProfile).
	Context *ContextSpec `json:"context,omitempty"`
	// Domain selects a registered per-domain dictionary layer by name
	// (WithDomain); empty means the base KB.
	Domain string `json:"domain,omitempty"`
	// RequestID labels the request with a caller-chosen trace id
	// (WithRequestID).
	RequestID string `json:"request_id,omitempty"`

	// method is the directly supplied Method value (UseMethod); it wins
	// over the Method selector and never round-trips through JSON.
	method Method
	// set tracks which fields an option has written, for conflict
	// detection; err records the first conflict.
	set specField
	err error
}

// ConfidenceSpec configures the CONF confidence assessor of a request
// (Chapter 5): the perturbation iteration count (≤ 0 falls back to 10) and
// the seed fixing the perturbation randomness.
type ConfidenceSpec struct {
	Iterations int   `json:"iterations,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
}

// ContextSpec is a request-supplied interest model for the short-text
// context prior: keyphrases (a user profile, the enclosing page, a search
// query) and/or entity ids the requester cares about, plus the blend
// weight. An empty spec (no keyphrases, no entities) is a no-op — output
// is byte-identical to a request without a context.
type ContextSpec struct {
	// Keyphrases are free-text phrases describing the request's interest
	// context; their content words are matched against candidate entity
	// keyphrases with the same cover machinery as sim-k. At most
	// MaxContextKeyphrases per request.
	Keyphrases []string `json:"keyphrases,omitempty"`
	// Entities are interest entity ids; candidates in the set (or linked
	// from it) get affinity mass. At most MaxContextEntities per request.
	Entities []EntityID `json:"entities,omitempty"`
	// Weight is the blend weight in [0, 1]; 0 means the default
	// (disambig.DefaultContextWeight). Values outside [0, 1] are
	// rejected.
	Weight float64 `json:"weight,omitempty"`
}

// UserProfile is a request-supplied interest model — the name WithUserProfile
// documents. It is exactly a ContextSpec.
type UserProfile = ContextSpec

// Request-context size caps: a context is a hint, not a second document.
// Oversized contexts are rejected with an InvalidRequestError rather than
// silently truncated.
const (
	// MaxContextKeyphrases bounds ContextSpec.Keyphrases.
	MaxContextKeyphrases = 64
	// MaxContextEntities bounds ContextSpec.Entities.
	MaxContextEntities = 256
)

// InvalidRequestError marks a request rejected during option resolution —
// an unknown method or domain, negative parallelism, an oversized or
// out-of-range context, or conflicting duplicate options. The HTTP server
// maps it to 400 with the identical message; anything else stays a server
// error.
type InvalidRequestError struct{ Err error }

func (e *InvalidRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *InvalidRequestError) Unwrap() error { return e.Err }

// invalidRequestf builds an InvalidRequestError from a format string.
func invalidRequestf(format string, args ...any) error {
	return &InvalidRequestError{Err: fmt.Errorf(format, args...)}
}

// specField is a bitmask of RequestSpec fields an option has set.
type specField uint

const (
	fieldMethod specField = 1 << iota
	fieldParallelism
	fieldMaxCandidates
	fieldExpand
	fieldCandidates
	fieldConfidence
	fieldStats
	fieldContextKeyphrases
	fieldContextEntities
	fieldContextWeight
	fieldDomain
	fieldRequestID
)

// fieldNames names each spec field as its JSON key (the name conflicts are
// reported under; docs/API.md carries the same mapping).
var fieldNames = map[specField]string{
	fieldMethod:            "method",
	fieldParallelism:       "parallelism",
	fieldMaxCandidates:     "max_candidates",
	fieldExpand:            "surface_expansion",
	fieldCandidates:        "candidates",
	fieldConfidence:        "confidence",
	fieldStats:             "stats",
	fieldContextKeyphrases: "context.keyphrases",
	fieldContextEntities:   "context.entities",
	fieldContextWeight:     "context.weight",
	fieldDomain:            "domain",
	fieldRequestID:         "request_id",
}

func (r *RequestSpec) has(f specField) bool { return r.set&f != 0 }

// mark records that an option set field f, detecting duplicates. The first
// conflict wins; resolution reports it before any other validation.
func (r *RequestSpec) mark(f specField) {
	if r.has(f) && r.err == nil {
		r.err = invalidRequestf("conflicting annotate options: %s given more than once", fieldNames[f])
	}
	r.set |= f
}

// context returns the spec's context model, allocating it on first use.
func (r *RequestSpec) context() *ContextSpec {
	if r.Context == nil {
		r.Context = &ContextSpec{}
	}
	return r.Context
}

// Options turns a filled-in spec into the option list the annotate entry
// points accept: sys.AnnotateDoc(ctx, text, spec.Options()...). Each
// present field applies as if its constructor option had been passed, so
// combining spec.Options() with further options of the same field is
// detected as a conflict like any other duplicate.
func (r *RequestSpec) Options() []AnnotateOption {
	return []AnnotateOption{func(dst *RequestSpec) { r.mergeInto(dst) }}
}

// mergeInto applies every present field of r to dst under conflict
// detection. A field is present when it is non-zero (non-nil) or was
// explicitly set by an option (its set bit).
func (r *RequestSpec) mergeInto(dst *RequestSpec) {
	if r.err != nil && dst.err == nil {
		dst.err = r.err
	}
	switch {
	case r.method != nil:
		dst.method = r.method
		dst.mark(fieldMethod)
	case r.Method != "" || r.has(fieldMethod):
		dst.Method = r.Method
		dst.mark(fieldMethod)
	}
	if r.Parallelism != 0 || r.has(fieldParallelism) {
		dst.Parallelism = r.Parallelism
		dst.mark(fieldParallelism)
	}
	if r.MaxCandidates != nil {
		n := *r.MaxCandidates
		dst.MaxCandidates = &n
		dst.mark(fieldMaxCandidates)
	}
	if r.Expand != nil {
		b := *r.Expand
		dst.Expand = &b
		dst.mark(fieldExpand)
	}
	if r.Candidates || r.has(fieldCandidates) {
		dst.Candidates = r.Candidates
		dst.mark(fieldCandidates)
	}
	if r.Confidence != nil {
		c := *r.Confidence
		dst.Confidence = &c
		dst.mark(fieldConfidence)
	}
	if r.Stats || r.has(fieldStats) {
		dst.Stats = r.Stats
		dst.mark(fieldStats)
	}
	if c := r.Context; c != nil {
		if len(c.Keyphrases) > 0 || r.has(fieldContextKeyphrases) {
			dst.context().Keyphrases = c.Keyphrases
			dst.mark(fieldContextKeyphrases)
		}
		if len(c.Entities) > 0 || r.has(fieldContextEntities) {
			dst.context().Entities = c.Entities
			dst.mark(fieldContextEntities)
		}
		if c.Weight != 0 || r.has(fieldContextWeight) {
			dst.context().Weight = c.Weight
			dst.mark(fieldContextWeight)
		}
	}
	if r.Domain != "" || r.has(fieldDomain) {
		dst.Domain = r.Domain
		dst.mark(fieldDomain)
	}
	if r.RequestID != "" || r.has(fieldRequestID) {
		dst.RequestID = r.RequestID
		dst.mark(fieldRequestID)
	}
}

// AnnotateOption configures one annotation request by setting fields of
// its RequestSpec. Options apply to a single AnnotateDoc/AnnotateCorpus/
// AnnotateStream call and never mutate the System, so concurrent requests
// with different options are safe. Request defaults come from the System
// (its Method, MaxCandidates and ExpandSurfaces settings); setting the
// same field twice is a conflict, not an override (see RequestSpec).
type AnnotateOption func(*RequestSpec)

// UseMethod selects the disambiguation method for this request only
// (default: the System's method). Methods are stateless, so any method may
// serve concurrent requests. A nil method is ignored.
func UseMethod(m Method) AnnotateOption {
	return func(o *RequestSpec) {
		if m != nil {
			o.method = m
			o.mark(fieldMethod)
		}
	}
}

// UseMethodNamed is UseMethod with the selector names of MethodByName
// ("aida", "prior", "sim", "cuc", "kul-ci", "tagme", "iw",
// case-insensitive; empty = "aida"). An unknown name surfaces as the
// request's error (an InvalidRequestError).
func UseMethodNamed(name string) AnnotateOption {
	return func(o *RequestSpec) {
		o.Method = name
		o.mark(fieldMethod)
	}
}

// WithParallelism bounds the request's concurrency: for AnnotateCorpus and
// AnnotateStream it is the document fan-out width, for AnnotateDoc it caps
// the coherence-edge worker pool. n = 0 means GOMAXPROCS; negative values
// are rejected during resolution. Parallelism changes scheduling only —
// the annotations are byte-identical at every setting.
func WithParallelism(n int) AnnotateOption {
	return func(o *RequestSpec) {
		o.Parallelism = n
		o.mark(fieldParallelism)
	}
}

// CapCandidates caps the candidates materialized per mention for this
// request (n ≤ 0 removes the cap), overriding the System's MaxCandidates.
func CapCandidates(n int) AnnotateOption {
	return func(o *RequestSpec) {
		o.MaxCandidates = &n
		o.mark(fieldMaxCandidates)
	}
}

// SurfaceExpansion enables or disables the within-document coreference
// heuristic ("Carter" → "Rubin Carter") for this request, overriding the
// System's ExpandSurfaces setting.
func SurfaceExpansion(on bool) AnnotateOption {
	return func(o *RequestSpec) {
		o.Expand = &on
		o.mark(fieldExpand)
	}
}

// IncludeCandidates asks for the per-mention scored candidate lists in
// Document.Candidates.
func IncludeCandidates() AnnotateOption {
	return func(o *RequestSpec) {
		o.Candidates = true
		o.mark(fieldCandidates)
	}
}

// IncludeConfidence asks for per-mention CONF confidence scores
// (normalized weighted degree + entity perturbation, Chapter 5) in
// Document.Confidence. iterations ≤ 0 falls back to 10; seed fixes the
// perturbation randomness so repeated requests agree.
func IncludeConfidence(iterations int, seed int64) AnnotateOption {
	return func(o *RequestSpec) {
		o.Confidence = &ConfidenceSpec{Iterations: iterations, Seed: seed}
		o.mark(fieldConfidence)
	}
}

// IncludeStats asks for the disambiguation work counters (pairwise
// comparisons, graph size) in Document.Stats.
func IncludeStats() AnnotateOption {
	return func(o *RequestSpec) {
		o.Stats = true
		o.mark(fieldStats)
	}
}

// WithRequestID labels the request with a caller-chosen trace id,
// reported back in Document.Stats.RequestID (together with IncludeStats;
// the id changes no other output). The HTTP server passes its
// X-Request-ID through here, so a slow or throttled request's work
// counters carry the same id as its log line and response headers.
func WithRequestID(id string) AnnotateOption {
	return func(o *RequestSpec) {
		o.RequestID = id
		o.mark(fieldRequestID)
	}
}

// WithContext supplies interest keyphrases for this request — the
// short-text context prior. The keyphrases' content words are matched
// against each candidate's keyphrase model (the sim-k cover machinery)
// and blended into mention–entity scoring at the context weight. Without
// a context the output is byte-identical to builds that predate the
// option. At most MaxContextKeyphrases per request.
func WithContext(keyphrases ...string) AnnotateOption {
	return func(o *RequestSpec) {
		o.context().Keyphrases = keyphrases
		o.mark(fieldContextKeyphrases)
	}
}

// WithContextEntities supplies interest entity ids for this request:
// candidates in the set score full affinity, candidates linked from it
// half. Combines with WithContext keyphrases (the two signals average).
// At most MaxContextEntities per request.
func WithContextEntities(ids ...EntityID) AnnotateOption {
	return func(o *RequestSpec) {
		o.context().Entities = ids
		o.mark(fieldContextEntities)
	}
}

// WithContextWeight sets the context blend weight in [0, 1] (0 keeps the
// default, disambig.DefaultContextWeight). It only has an effect together
// with WithContext, WithContextEntities or WithUserProfile.
func WithContextWeight(w float64) AnnotateOption {
	return func(o *RequestSpec) {
		o.context().Weight = w
		o.mark(fieldContextWeight)
	}
}

// WithUserProfile supplies a whole interest model at once — keyphrases,
// entities and weight. It is exactly WithContext + WithContextEntities
// (+ WithContextWeight when the profile sets one), so combining it with
// any of those is a conflict.
func WithUserProfile(p UserProfile) AnnotateOption {
	return func(o *RequestSpec) {
		o.context().Keyphrases = p.Keyphrases
		o.mark(fieldContextKeyphrases)
		o.context().Entities = p.Entities
		o.mark(fieldContextEntities)
		if p.Weight != 0 {
			o.context().Weight = p.Weight
			o.mark(fieldContextWeight)
		}
	}
}

// WithDomain routes this request through the named per-domain dictionary
// layer (registered with System.RegisterDomain or the server's -domains
// file): recognition, candidate generation and priors all see the domain's
// dictionary composed over the base KB. An unregistered name surfaces as
// an InvalidRequestError; the empty name means the base KB.
func WithDomain(name string) AnnotateOption {
	return func(o *RequestSpec) {
		o.Domain = name
		o.mark(fieldDomain)
	}
}
