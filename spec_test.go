package aida

import (
	"context"
	"errors"
	"testing"
)

// The request-validation error contract: every client mistake is an
// *InvalidRequestError with stable, descriptive text, and the text is
// identical whether the request came through the option constructors, a
// literal RequestSpec, or (see internal/server's mirror test, which pins
// the same strings against HTTP 400 bodies) the JSON API.

// specWorld builds a small System for validation tests.
func specWorld(t *testing.T) (*System, string) {
	t.Helper()
	k, docs := batchWorld(t, 1)
	return New(k, WithMaxCandidates(10)), docs[0]
}

func TestRequestValidationErrors(t *testing.T) {
	sys, doc := specWorld(t)
	ctx := context.Background()

	manyKeyphrases := make([]string, MaxContextKeyphrases+1)
	for i := range manyKeyphrases {
		manyKeyphrases[i] = "quantum chromodynamics"
	}
	manyEntities := make([]EntityID, MaxContextEntities+1)

	cases := []struct {
		name string
		opts []AnnotateOption
		want string
	}{
		{
			name: "unknown method",
			opts: []AnnotateOption{UseMethodNamed("bogus")},
			want: `unknown method "bogus" (want aida, cuc, iw, kul-ci, prior, sim, tagme)`,
		},
		{
			name: "negative parallelism",
			opts: []AnnotateOption{WithParallelism(-2)},
			want: "invalid parallelism -2: must be >= 0 (0 means the default)",
		},
		{
			name: "unknown domain",
			opts: []AnnotateOption{WithDomain("medicine")},
			want: `unknown domain "medicine" (no domains registered)`,
		},
		{
			name: "oversized context keyphrases",
			opts: []AnnotateOption{WithContext(manyKeyphrases...)},
			want: "context too large: 65 keyphrases exceed the limit of 64",
		},
		{
			name: "oversized context entities",
			opts: []AnnotateOption{WithContextEntities(manyEntities...)},
			want: "context too large: 257 entities exceed the limit of 256",
		},
		{
			name: "context weight out of range",
			opts: []AnnotateOption{WithContext("physics"), WithContextWeight(1.5)},
			want: "invalid context weight 1.5: must be in [0, 1]",
		},
		{
			name: "duplicate method options",
			opts: []AnnotateOption{UseMethodNamed("prior"), UseMethodNamed("sim")},
			want: "conflicting annotate options: method given more than once",
		},
		{
			name: "duplicate parallelism options",
			opts: []AnnotateOption{WithParallelism(2), WithParallelism(4)},
			want: "conflicting annotate options: parallelism given more than once",
		},
		{
			name: "user profile conflicts with context",
			opts: []AnnotateOption{
				WithContext("physics"),
				WithUserProfile(UserProfile{Keyphrases: []string{"chemistry"}}),
			},
			want: "conflicting annotate options: context.keyphrases given more than once",
		},
		{
			name: "spec options conflict with explicit option",
			opts: append(
				(&RequestSpec{Domain: "news"}).Options(),
				WithDomain("sports"),
			),
			want: "conflicting annotate options: domain given more than once",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := sys.AnnotateDoc(ctx, doc, tc.opts...)
			if err == nil {
				t.Fatalf("AnnotateDoc accepted the request, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Errorf("error = %q, want %q", err.Error(), tc.want)
			}
			var ire *InvalidRequestError
			if !errors.As(err, &ire) {
				t.Errorf("error is %T, want *InvalidRequestError", err)
			}
			// The corpus and stream entry points resolve through the same
			// funnel and must reject identically.
			if _, cerr := sys.AnnotateCorpus(ctx, []string{doc}, tc.opts...); cerr == nil || cerr.Error() != tc.want {
				t.Errorf("AnnotateCorpus error = %v, want %q", cerr, tc.want)
			}
		})
	}
}

// TestValidateRequestMatchesAnnotate pins ValidateRequest as a dry run: it
// must reproduce exactly the error AnnotateDoc would return for the same
// spec — including acceptance.
func TestValidateRequestMatchesAnnotate(t *testing.T) {
	sys, doc := specWorld(t)
	ctx := context.Background()

	specs := []*RequestSpec{
		{},
		{Method: "prior", Parallelism: 2},
		{Method: "bogus"},
		{Parallelism: -1},
		{Domain: "nope"},
		{Context: &ContextSpec{Keyphrases: []string{"jazz"}, Weight: 2}},
		{Context: &ContextSpec{Entities: make([]EntityID, MaxContextEntities+1)}},
	}
	for _, spec := range specs {
		verr := sys.ValidateRequest(spec)
		_, aerr := sys.AnnotateDoc(ctx, doc, spec.Options()...)
		switch {
		case verr == nil && aerr == nil:
		case verr == nil || aerr == nil:
			t.Errorf("spec %+v: ValidateRequest = %v but AnnotateDoc = %v", spec, verr, aerr)
		case verr.Error() != aerr.Error():
			t.Errorf("spec %+v: ValidateRequest %q != AnnotateDoc %q", spec, verr, aerr)
		}
	}
}

// TestUnknownDomainListsRegistered checks the error text upgrades to the
// sorted available-domain list once domains exist.
func TestUnknownDomainListsRegistered(t *testing.T) {
	k, docs := batchWorld(t, 1)
	sys, doc := New(k, WithMaxCandidates(10)), docs[0]
	surface := k.Names()[0]
	entity := k.Entity(k.Candidates(surface)[0].Entity).Name
	for _, name := range []string{"zoology", "astronomy"} {
		dict := DomainDictionary{Name: name, Rows: []DomainRow{{
			Surface: surface, Entity: entity, Count: 1,
		}}}
		if err := sys.RegisterDomain(dict); err != nil {
			t.Fatalf("RegisterDomain(%s): %v", name, err)
		}
	}
	_, err := sys.AnnotateDoc(context.Background(), doc, WithDomain("medicine"))
	want := `unknown domain "medicine" (available: astronomy, zoology)`
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
	if got := sys.DomainNames(); len(got) != 2 || got[0] != "astronomy" || got[1] != "zoology" {
		t.Fatalf("DomainNames() = %v, want sorted [astronomy zoology]", got)
	}
}

// TestRequestSpecOptionsEquivalence: a literal spec resolved via Options()
// behaves exactly like the equivalent constructor options.
func TestRequestSpecOptionsEquivalence(t *testing.T) {
	sys, doc := specWorld(t)
	ctx := context.Background()

	spec := &RequestSpec{
		Method:      "prior",
		Parallelism: 2,
		Candidates:  true,
		Context:     &ContextSpec{Keyphrases: []string{"championship"}, Weight: 0.5},
	}
	fromSpec, err := sys.AnnotateDoc(ctx, doc, spec.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	fromOpts, err := sys.AnnotateDoc(ctx, doc,
		UseMethodNamed("prior"), WithParallelism(2), IncludeCandidates(),
		WithContext("championship"), WithContextWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromSpec.Annotations) == 0 {
		t.Fatal("spec request annotated nothing")
	}
	if a, b := fromSpec.Annotations, fromOpts.Annotations; len(a) != len(b) {
		t.Fatalf("spec path found %d annotations, options path %d", len(a), len(b))
	} else {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("annotation %d diverges: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	if len(fromSpec.Candidates) != len(fromSpec.Annotations) {
		t.Fatalf("spec path ignored Candidates: %d lists for %d mentions",
			len(fromSpec.Candidates), len(fromSpec.Annotations))
	}

	// Options() must not mutate the source spec (it is reused per document
	// by the HTTP batch handler).
	if spec.set != 0 || spec.err != nil {
		t.Fatalf("Options() mutated the source spec: set=%b err=%v", spec.set, spec.err)
	}
	if _, err := sys.AnnotateDoc(ctx, doc, spec.Options()...); err != nil {
		t.Fatalf("spec not reusable: %v", err)
	}
}

// TestNilAndZeroOptionsAreDefaults: nil options are skipped, and a zero
// spec resolves to the System defaults (same annotations as no options).
func TestNilAndZeroOptionsAreDefaults(t *testing.T) {
	sys, doc := specWorld(t)
	ctx := context.Background()

	base, err := sys.AnnotateDoc(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	var zero RequestSpec
	got, err := sys.AnnotateDoc(ctx, doc, nil, UseMethod(nil), zero.Options()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Annotations) != len(base.Annotations) {
		t.Fatalf("zero spec changed the output: %d vs %d annotations",
			len(got.Annotations), len(base.Annotations))
	}
	for i := range base.Annotations {
		if got.Annotations[i] != base.Annotations[i] {
			t.Fatalf("annotation %d diverges under zero spec", i)
		}
	}
}
