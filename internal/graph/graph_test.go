package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoClusterGraph builds the canonical ambiguity scenario of Sec. 3.1:
// three mentions, each with a "music" candidate and a "geography"
// candidate; music candidates are mutually coherent, geography ones are
// not. Entities 0,2,4 are the coherent (correct) cluster.
func twoClusterGraph(priorForWrong float64) *Graph {
	g := New(3, 6)
	for m := 0; m < 3; m++ {
		g.AddMentionEdge(m, 2*m, 0.4)             // correct candidate
		g.AddMentionEdge(m, 2*m+1, priorForWrong) // popular wrong candidate
	}
	g.AddEntityEdge(0, 2, 0.8)
	g.AddEntityEdge(0, 4, 0.8)
	g.AddEntityEdge(2, 4, 0.8)
	return g
}

func TestSolveCoherentCluster(t *testing.T) {
	g := twoClusterGraph(0.5)
	res := Solve(g, Options{})
	want := []int{0, 2, 4}
	for m, e := range res.Assignment {
		if e != want[m] {
			t.Fatalf("assignment = %v, want %v", res.Assignment, want)
		}
	}
}

func TestSolveEveryMentionAssigned(t *testing.T) {
	g := twoClusterGraph(0.5)
	res := Solve(g, Options{})
	for m, e := range res.Assignment {
		if e < 0 {
			t.Fatalf("mention %d unassigned", m)
		}
		found := false
		for _, edge := range g.mentionEdges[m] {
			if edge.Entity == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("mention %d assigned non-candidate %d", m, e)
		}
	}
}

func TestSolveMentionWithoutCandidates(t *testing.T) {
	g := New(2, 2)
	g.AddMentionEdge(0, 0, 0.9)
	// mention 1 has no candidates
	res := Solve(g, Options{})
	if res.Assignment[0] != 0 {
		t.Errorf("mention 0 should get entity 0")
	}
	if res.Assignment[1] != -1 {
		t.Errorf("mention 1 should stay unassigned, got %d", res.Assignment[1])
	}
}

func TestSolveSingleMention(t *testing.T) {
	g := New(1, 3)
	g.AddMentionEdge(0, 0, 0.2)
	g.AddMentionEdge(0, 1, 0.9)
	g.AddMentionEdge(0, 2, 0.5)
	res := Solve(g, Options{})
	if res.Assignment[0] != 1 {
		t.Fatalf("want best-weight candidate 1, got %d", res.Assignment[0])
	}
}

func TestSolvePrefersCoherenceOverWeakPrior(t *testing.T) {
	// Wrong candidates have higher mention-entity weight, but no mutual
	// coherence; the coherent cluster must still win overall.
	g := twoClusterGraph(0.55)
	res := Solve(g, Options{})
	want := []int{0, 2, 4}
	for m := range want {
		if res.Assignment[m] != want[m] {
			t.Fatalf("coherence should win: got %v", res.Assignment)
		}
	}
}

func TestSolveDominantLocalWeight(t *testing.T) {
	// With an overwhelming mention-entity weight and no coherence at all,
	// the heavy candidate must be chosen.
	g := New(2, 4)
	g.AddMentionEdge(0, 0, 0.1)
	g.AddMentionEdge(0, 1, 5.0)
	g.AddMentionEdge(1, 2, 0.3)
	g.AddMentionEdge(1, 3, 0.1)
	res := Solve(g, Options{})
	if res.Assignment[0] != 1 || res.Assignment[1] != 2 {
		t.Fatalf("got %v, want [1 2]", res.Assignment)
	}
}

func TestPruneKeepsBestCandidates(t *testing.T) {
	// A large graph of unrelated entities: pruning must keep at least one
	// candidate per mention (the protected best).
	g := New(4, 80)
	for m := 0; m < 4; m++ {
		for c := 0; c < 20; c++ {
			w := 0.1
			if c == 0 {
				w = 0.9
			}
			g.AddMentionEdge(m, m*20+c, w)
		}
	}
	res := Solve(g, Options{PruneFactor: 1})
	for m := 0; m < 4; m++ {
		if res.Assignment[m] != m*20 {
			t.Fatalf("mention %d: got %d, want protected best %d", m, res.Assignment[m], m*20)
		}
	}
}

func TestTabooPreservesLastCandidate(t *testing.T) {
	// Entity 0 is the sole candidate of mention 0 and has tiny degree; it
	// must never be removed.
	g := New(2, 3)
	g.AddMentionEdge(0, 0, 0.01)
	g.AddMentionEdge(1, 1, 0.5)
	g.AddMentionEdge(1, 2, 0.6)
	g.AddEntityEdge(1, 2, 0.9)
	res := Solve(g, Options{})
	if res.Assignment[0] != 0 {
		t.Fatalf("sole candidate dropped: %v", res.Assignment)
	}
}

func TestLocalSearchFallback(t *testing.T) {
	// Enumeration limit forces local search; it must still produce a full
	// valid assignment.
	rng := rand.New(rand.NewSource(7))
	m, c := 6, 6
	g := New(m, m*c)
	for i := 0; i < m; i++ {
		for j := 0; j < c; j++ {
			g.AddMentionEdge(i, i*c+j, 0.1+rng.Float64())
		}
	}
	for i := 0; i < m*c; i++ {
		for j := i + 1; j < m*c; j++ {
			if rng.Float64() < 0.2 {
				g.AddEntityEdge(i, j, rng.Float64())
			}
		}
	}
	res := Solve(g, Options{MaxEnumerate: 10, LocalSearchIters: 300, Seed: 3, PruneFactor: 100})
	for i, e := range res.Assignment {
		if e < 0 || e/c != i {
			t.Fatalf("mention %d got invalid entity %d", i, e)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	g1 := twoClusterGraph(0.5)
	g2 := twoClusterGraph(0.5)
	r1 := Solve(g1, Options{Seed: 42})
	r2 := Solve(g2, Options{Seed: 42})
	for m := range r1.Assignment {
		if r1.Assignment[m] != r2.Assignment[m] {
			t.Fatal("solver is not deterministic")
		}
	}
}

func TestEntityEdgeSymmetric(t *testing.T) {
	g := New(1, 3)
	g.AddEntityEdge(0, 2, 0.7)
	if g.EntityEdge(0, 2) != 0.7 || g.EntityEdge(2, 0) != 0.7 {
		t.Fatal("entity edges must be symmetric")
	}
	g.AddEntityEdge(1, 1, 0.9)
	if g.EntityEdge(1, 1) != 0 {
		t.Fatal("self edges must be ignored")
	}
}

// Property: for random graphs, the assignment always picks candidates of
// the right mention and never assigns removed entities.
func TestSolveValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		c := 1 + rng.Intn(4)
		g := New(m, m*c)
		for i := 0; i < m; i++ {
			for j := 0; j < c; j++ {
				g.AddMentionEdge(i, i*c+j, rng.Float64())
			}
		}
		for a := 0; a < m*c; a++ {
			for b := a + 1; b < m*c; b++ {
				if rng.Float64() < 0.3 {
					g.AddEntityEdge(a, b, rng.Float64())
				}
			}
		}
		res := Solve(g, Options{Seed: seed})
		for i, e := range res.Assignment {
			if e < 0 {
				return false
			}
			if e/c != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reported total weight matches an independent recomputation.
func TestTotalWeightConsistent(t *testing.T) {
	g := twoClusterGraph(0.5)
	res := Solve(g, Options{})
	want := 0.0
	for m, e := range res.Assignment {
		want += g.MentionEdge(m, e)
	}
	for i := 0; i < len(res.Assignment); i++ {
		for j := i + 1; j < len(res.Assignment); j++ {
			if res.Assignment[i] != res.Assignment[j] {
				want += g.EntityEdge(res.Assignment[i], res.Assignment[j])
			}
		}
	}
	if diff := res.TotalWeight - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("total weight %v, recomputed %v", res.TotalWeight, want)
	}
}

func BenchmarkSolveSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Solve(twoClusterGraph(0.5), Options{})
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m, c := 15, 10
	g := New(m, m*c)
	for i := 0; i < m; i++ {
		for j := 0; j < c; j++ {
			g.AddMentionEdge(i, i*c+j, rng.Float64()*0.5)
		}
	}
	for a := 0; a < m*c; a++ {
		for b2 := a + 1; b2 < m*c; b2++ {
			if rng.Float64() < 0.05 {
				g.AddEntityEdge(a, b2, rng.Float64())
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(g, Options{Seed: int64(i)})
	}
}
