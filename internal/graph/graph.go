// Package graph implements the mention–entity coherence graph and the
// greedy dense-subgraph disambiguation algorithm of Section 3.4
// (Algorithm 1).
//
// The graph has two node classes — mentions and candidate entities — and two
// edge classes: weighted mention–entity edges (similarity/prior) and
// weighted entity–entity edges (coherence). The algorithm searches for the
// subgraph maximizing the minimum weighted degree among its entity nodes
// (normalized by size), subject to every mention keeping at least one
// candidate, and post-processes the surviving subgraph into a one-entity-
// per-mention assignment by exhaustive enumeration or weighted local search.
package graph

import (
	"math"
	"math/rand"
	"sort"
)

// Edge is a weighted mention→entity candidate edge.
type Edge struct {
	Entity int // local entity index
	Weight float64
}

// Graph is a disambiguation problem instance. Entities are addressed by
// dense local indices assigned by the caller.
type Graph struct {
	mentions int
	entities int
	// mentionEdges[m] lists the candidate edges of mention m.
	mentionEdges [][]Edge
	// entityAdj[e] maps neighbor entity → coherence weight.
	entityAdj []map[int]float64
}

// New creates a graph with the given node counts.
func New(mentions, entities int) *Graph {
	g := &Graph{
		mentions:     mentions,
		entities:     entities,
		mentionEdges: make([][]Edge, mentions),
		entityAdj:    make([]map[int]float64, entities),
	}
	return g
}

// Mentions returns the number of mention nodes.
func (g *Graph) Mentions() int { return g.mentions }

// Entities returns the number of entity nodes.
func (g *Graph) Entities() int { return g.entities }

// AddMentionEdge adds a candidate edge m→e with the given weight.
func (g *Graph) AddMentionEdge(m, e int, w float64) {
	g.mentionEdges[m] = append(g.mentionEdges[m], Edge{Entity: e, Weight: w})
}

// ReserveMentionEdges pre-sizes mention m's edge list for n AddMentionEdge
// calls, so a caller that knows its edge counts builds the graph with one
// allocation per mention instead of append doublings.
func (g *Graph) ReserveMentionEdges(m, n int) {
	if cap(g.mentionEdges[m]) < n {
		g.mentionEdges[m] = make([]Edge, len(g.mentionEdges[m]), n)
	}
}

// AddEntityEdge adds (or overwrites) the coherence edge between entities a
// and b. Zero-weight edges are dropped.
func (g *Graph) AddEntityEdge(a, b int, w float64) {
	if a == b || w == 0 {
		return
	}
	if g.entityAdj[a] == nil {
		g.entityAdj[a] = make(map[int]float64)
	}
	if g.entityAdj[b] == nil {
		g.entityAdj[b] = make(map[int]float64)
	}
	g.entityAdj[a][b] = w
	g.entityAdj[b][a] = w
}

// MentionEdge returns the weight of the m→e edge (0 if absent).
func (g *Graph) MentionEdge(m, e int) float64 {
	for _, edge := range g.mentionEdges[m] {
		if edge.Entity == e {
			return edge.Weight
		}
	}
	return 0
}

// EntityEdge returns the coherence weight between a and b (0 if absent).
func (g *Graph) EntityEdge(a, b int) float64 {
	if g.entityAdj[a] == nil {
		return 0
	}
	return g.entityAdj[a][b]
}

// Options tunes the solver. The zero value uses the dissertation defaults.
type Options struct {
	// PruneFactor k keeps k·#mentions entities in the pre-processing
	// phase (default 5, Sec. 3.4.2).
	PruneFactor int
	// MaxEnumerate bounds the number of assignments the exhaustive
	// post-processing may enumerate before switching to local search
	// (default 1<<16).
	MaxEnumerate int
	// LocalSearchIters is the iteration budget of the randomized local
	// search fallback (default 500).
	LocalSearchIters int
	// Seed makes the local search reproducible.
	Seed int64
}

func (o Options) pruneFactor() int {
	if o.PruneFactor <= 0 {
		return 5
	}
	return o.PruneFactor
}

func (o Options) maxEnumerate() int {
	if o.MaxEnumerate <= 0 {
		return 1 << 16
	}
	return o.MaxEnumerate
}

func (o Options) localSearchIters() int {
	if o.LocalSearchIters <= 0 {
		return 500
	}
	return o.LocalSearchIters
}

// Result is the solver output.
type Result struct {
	// Assignment[m] is the entity chosen for mention m, or -1 when the
	// mention has no candidates.
	Assignment []int
	// Objective is the best normalized minimum weighted degree seen.
	Objective float64
	// TotalWeight is the edge weight of the final assignment.
	TotalWeight float64
	// Kept[e] reports whether entity e survived into the best subgraph.
	Kept []bool
}

// Solve runs Algorithm 1 on the graph.
func Solve(g *Graph, opts Options) Result {
	s := newSolverState(g)
	s.prune(opts.pruneFactor())
	removalOrder, bestStep := s.greedyPeel()
	s.restoreTo(removalOrder, bestStep)
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	assignment, total := s.finalAssignment(opts.maxEnumerate(), opts.localSearchIters(), rng)
	kept := make([]bool, g.entities)
	for e := 0; e < g.entities; e++ {
		kept[e] = s.present[e]
	}
	return Result{Assignment: assignment, Objective: s.bestObjective, TotalWeight: total, Kept: kept}
}

// solverState tracks the mutable subgraph during peeling.
type solverState struct {
	g       *Graph
	present []bool // entity still in the graph
	degree  []float64
	// candCount[m] = number of remaining candidates of mention m.
	candCount []int
	// mentionsOf[e] = mentions having e as candidate (with edge weight).
	mentionsOf    [][]Edge // Edge.Entity reused as mention index here
	numPresent    int
	bestObjective float64
}

func newSolverState(g *Graph) *solverState {
	s := &solverState{
		g:          g,
		present:    make([]bool, g.entities),
		degree:     make([]float64, g.entities),
		candCount:  make([]int, g.mentions),
		mentionsOf: make([][]Edge, g.entities),
	}
	active := make([]bool, g.entities)
	for m := 0; m < g.mentions; m++ {
		for _, e := range g.mentionEdges[m] {
			active[e.Entity] = true
		}
	}
	for e := 0; e < g.entities; e++ {
		if active[e] {
			s.present[e] = true
			s.numPresent++
		}
	}
	for m := 0; m < g.mentions; m++ {
		for _, e := range g.mentionEdges[m] {
			s.candCount[m]++
			s.mentionsOf[e.Entity] = append(s.mentionsOf[e.Entity], Edge{Entity: m, Weight: e.Weight})
			s.degree[e.Entity] += e.Weight
		}
	}
	for e := 0; e < g.entities; e++ {
		if !s.present[e] {
			continue
		}
		for nb, w := range g.entityAdj[e] {
			if s.present[nb] {
				s.degree[e] += w
			}
		}
	}
	return s
}

// distance converts an edge weight in [0,1] to a path distance.
func distance(w float64) float64 {
	d := 1 - w
	if d < 0.01 {
		return 0.01
	}
	return d
}

// prune implements the pre-processing phase: keep the k·#mentions entities
// with the smallest sum of squared shortest-path distances to the mention
// set. Paths are approximated by the dominant two-hop routes (direct
// candidate edge, or coherence edge to a candidate of the target mention),
// which is exact for the dense candidate graphs AIDA builds. The best
// candidate of every mention is always retained.
func (s *solverState) prune(factor int) {
	keep := factor * s.g.mentions
	if s.numPresent <= keep {
		return
	}
	dist := make([]float64, s.g.entities)
	for e := 0; e < s.g.entities; e++ {
		if !s.present[e] {
			continue
		}
		var sum float64
		for m := 0; m < s.g.mentions; m++ {
			d := s.mentionDistance(e, m)
			sum += d * d
		}
		dist[e] = sum
	}
	type ed struct {
		e int
		d float64
	}
	order := make([]ed, 0, s.numPresent)
	for e := 0; e < s.g.entities; e++ {
		if s.present[e] {
			order = append(order, ed{e, dist[e]})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].d != order[j].d {
			return order[i].d < order[j].d
		}
		return order[i].e < order[j].e
	})
	// Protect the best candidate edge of each mention.
	protected := make(map[int]bool, s.g.mentions)
	for m := 0; m < s.g.mentions; m++ {
		best, bestW := -1, math.Inf(-1)
		for _, e := range s.g.mentionEdges[m] {
			if s.present[e.Entity] && e.Weight > bestW {
				best, bestW = e.Entity, e.Weight
			}
		}
		if best >= 0 {
			protected[best] = true
		}
	}
	kept := 0
	for _, o := range order {
		if kept < keep || protected[o.e] {
			kept++
			continue
		}
		s.removeEntity(o.e)
	}
}

// mentionDistance approximates the shortest weighted path from entity e to
// mention m.
func (s *solverState) mentionDistance(e, m int) float64 {
	best := math.Inf(1)
	for _, edge := range s.g.mentionEdges[m] {
		if !s.present[edge.Entity] {
			continue
		}
		if edge.Entity == e {
			if d := distance(edge.Weight); d < best {
				best = d
			}
			continue
		}
		coh := s.g.EntityEdge(e, edge.Entity)
		if coh > 0 {
			if d := distance(coh) + distance(edge.Weight); d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		// Disconnected: a large, finite penalty keeps the ordering stable.
		return 4
	}
	return best
}

// removeEntity deletes e from the working subgraph, updating degrees and
// candidate counts.
func (s *solverState) removeEntity(e int) {
	if !s.present[e] {
		return
	}
	s.present[e] = false
	s.numPresent--
	for _, me := range s.mentionsOf[e] {
		s.candCount[me.Entity]--
	}
	for nb, w := range s.g.entityAdj[e] {
		if s.present[nb] {
			s.degree[nb] -= w
		}
	}
}

// taboo reports whether e is the last remaining candidate of any mention.
func (s *solverState) taboo(e int) bool {
	for _, me := range s.mentionsOf[e] {
		if s.candCount[me.Entity] <= 1 {
			return true
		}
	}
	return false
}

// objective returns the normalized minimum weighted degree of the current
// entity set.
func (s *solverState) objective() float64 {
	if s.numPresent == 0 {
		return 0
	}
	minDeg := math.Inf(1)
	for e := 0; e < s.g.entities; e++ {
		if s.present[e] && s.degree[e] < minDeg {
			minDeg = s.degree[e]
		}
	}
	return minDeg / float64(s.numPresent)
}

// greedyPeel runs the main loop: repeatedly remove the non-taboo entity with
// the lowest weighted degree, tracking the step at which the objective was
// maximal. It returns the removal order and the index of the best step
// (number of removals performed when the best objective was observed).
func (s *solverState) greedyPeel() (removal []int, bestStep int) {
	s.bestObjective = s.objective()
	bestStep = 0
	for {
		// Find the non-taboo entity with minimum weighted degree.
		cand := -1
		minDeg := math.Inf(1)
		for e := 0; e < s.g.entities; e++ {
			if !s.present[e] || s.taboo(e) {
				continue
			}
			if s.degree[e] < minDeg {
				minDeg = s.degree[e]
				cand = e
			}
		}
		if cand < 0 {
			break
		}
		s.removeEntity(cand)
		removal = append(removal, cand)
		if obj := s.objective(); obj > s.bestObjective {
			s.bestObjective = obj
			bestStep = len(removal)
		}
	}
	return removal, bestStep
}

// restoreTo re-adds entities removed after the best step, reconstructing the
// best subgraph.
func (s *solverState) restoreTo(removal []int, bestStep int) {
	for i := len(removal) - 1; i >= bestStep; i-- {
		e := removal[i]
		s.present[e] = true
		s.numPresent++
		for _, me := range s.mentionsOf[e] {
			s.candCount[me.Entity]++
		}
		// Recompute the degree of e and update neighbors.
		d := 0.0
		for _, me := range s.mentionsOf[e] {
			d += me.Weight
		}
		for nb, w := range s.g.entityAdj[e] {
			if s.present[nb] && nb != e {
				d += w
				s.degree[nb] += w
			}
		}
		s.degree[e] = d
	}
}

// remainingCandidates lists the surviving candidates of mention m.
func (s *solverState) remainingCandidates(m int) []Edge {
	var out []Edge
	for _, e := range s.g.mentionEdges[m] {
		if s.present[e.Entity] {
			out = append(out, e)
		}
	}
	return out
}

// assignmentWeight computes the total edge weight of an assignment: chosen
// mention–entity edges plus coherence edges among distinct chosen entities.
func (s *solverState) assignmentWeight(assign []int) float64 {
	total := 0.0
	for m, e := range assign {
		if e < 0 {
			continue
		}
		total += s.g.MentionEdge(m, e)
	}
	for i := 0; i < len(assign); i++ {
		if assign[i] < 0 {
			continue
		}
		for j := i + 1; j < len(assign); j++ {
			if assign[j] < 0 || assign[i] == assign[j] {
				continue
			}
			total += s.g.EntityEdge(assign[i], assign[j])
		}
	}
	return total
}

// finalAssignment resolves mentions that still have several candidates,
// either exhaustively (when the combination count is feasible) or by
// weighted-degree-guided local search (Sec. 3.4.2 post-processing).
func (s *solverState) finalAssignment(maxEnum, iters int, rng *rand.Rand) ([]int, float64) {
	cands := make([][]Edge, s.g.mentions)
	combos := 1
	feasible := true
	for m := 0; m < s.g.mentions; m++ {
		cands[m] = s.remainingCandidates(m)
		if n := len(cands[m]); n > 0 {
			if combos > maxEnum/n {
				feasible = false
			} else {
				combos *= n
			}
		}
	}
	if feasible {
		return s.enumerate(cands)
	}
	return s.localSearch(cands, iters, rng)
}

// enumerate tries all combinations and returns the best.
func (s *solverState) enumerate(cands [][]Edge) ([]int, float64) {
	assign := make([]int, s.g.mentions)
	best := make([]int, s.g.mentions)
	for m := range assign {
		assign[m] = -1
		best[m] = -1
	}
	bestW := math.Inf(-1)
	var rec func(m int)
	rec = func(m int) {
		if m == s.g.mentions {
			if w := s.assignmentWeight(assign); w > bestW {
				bestW = w
				copy(best, assign)
			}
			return
		}
		if len(cands[m]) == 0 {
			assign[m] = -1
			rec(m + 1)
			return
		}
		for _, e := range cands[m] {
			assign[m] = e.Entity
			rec(m + 1)
		}
		assign[m] = -1
	}
	rec(0)
	if math.IsInf(bestW, -1) {
		bestW = 0
	}
	return best, bestW
}

// localSearch starts from the greedy assignment and improves it by
// re-drawing mentions' entities with probability proportional to their
// weighted degree, keeping the best configuration found.
func (s *solverState) localSearch(cands [][]Edge, iters int, rng *rand.Rand) ([]int, float64) {
	assign := make([]int, s.g.mentions)
	for m := range assign {
		assign[m] = -1
		bestW := math.Inf(-1)
		for _, e := range cands[m] {
			if e.Weight > bestW {
				bestW = e.Weight
				assign[m] = e.Entity
			}
		}
	}
	best := append([]int(nil), assign...)
	bestW := s.assignmentWeight(assign)
	curW := bestW
	multi := multiCandidateMentions(cands)
	if len(multi) == 0 {
		return best, bestW
	}
	for it := 0; it < iters; it++ {
		m := multi[rng.Intn(len(multi))]
		e := s.sampleByDegree(cands[m], rng)
		if e == assign[m] {
			continue
		}
		old := assign[m]
		assign[m] = e
		w := s.assignmentWeight(assign)
		if w > bestW {
			bestW = w
			copy(best, assign)
		}
		if w >= curW {
			curW = w
		} else {
			assign[m] = old
		}
	}
	return best, bestW
}

func multiCandidateMentions(cands [][]Edge) []int {
	var out []int
	for m, cs := range cands {
		if len(cs) > 1 {
			out = append(out, m)
		}
	}
	return out
}

// sampleByDegree draws a candidate with probability proportional to its
// weighted degree in the current subgraph.
func (s *solverState) sampleByDegree(cands []Edge, rng *rand.Rand) int {
	total := 0.0
	for _, e := range cands {
		total += math.Max(s.degree[e.Entity], 1e-9)
	}
	x := rng.Float64() * total
	for _, e := range cands {
		x -= math.Max(s.degree[e.Entity], 1e-9)
		if x <= 0 {
			return e.Entity
		}
	}
	return cands[len(cands)-1].Entity
}
