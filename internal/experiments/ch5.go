package experiments

import (
	"fmt"
	"strings"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/eval"
	"aida/internal/kb"
	"aida/internal/relatedness"
	"aida/internal/wiki"
)

// ConfidenceRow is one assessor row of Table 5.1.
type ConfidenceRow struct {
	Assessor string
	Prec95   float64
	Men95    int
	Prec80   float64
	Men80    int
	MAP      float64
	// Curve is the precision-recall curve of Figure 5.3.
	Curve []eval.PRPoint
}

// confidenceDocs caps the corpus used for the perturbation-heavy
// confidence experiment.
func (s *Suite) confidenceDocs() []wiki.Document {
	docs := s.conll
	if len(docs) > 25 {
		docs = docs[:25]
	}
	return docs
}

// Table51 reproduces Table 5.1 / Figure 5.3: the quality of the confidence
// assessors — popularity prior, AIDA coherence scores, the Wikifier linker
// score, and CONF (normalized weighted degree + entity perturbation).
func (s *Suite) Table51() []ConfidenceRow {
	docs := s.confidenceDocs()
	aida := disambig.NewAIDA()
	rawScore := func(p *disambig.Problem, out *disambig.Output) []float64 {
		c := make([]float64, len(out.Results))
		for i, r := range out.Results {
			c[i] = r.Score
		}
		return c
	}
	type assessor struct {
		name string
		m    disambig.Method
		conf func(p *disambig.Problem, out *disambig.Output) []float64
	}
	assessors := []assessor{
		{name: "prior", m: disambig.PriorOnly{}, conf: rawScore},
		{name: "AIDAcoh", m: aida, conf: rawScore},
		{name: "IW", m: disambig.Wikifier{}, conf: rawScore},
		{name: "CONF", m: aida, conf: func(p *disambig.Problem, out *disambig.Output) []float64 {
			return emerge.CONF(aida, p, out, emerge.PerturbConfig{
				Iterations: s.Sizes.PerturbIters, Seed: s.Sizes.Seed,
			})
		}},
	}
	var rows []ConfidenceRow
	for _, a := range assessors {
		var ranked []eval.Ranked
		for i := range docs {
			doc := &docs[i]
			p := s.problemFor(doc)
			out := a.m.Disambiguate(p)
			conf := a.conf(p, out)
			for j, gm := range doc.Mentions {
				if gm.Entity == kb.NoEntity {
					continue
				}
				ranked = append(ranked, eval.Ranked{
					Confidence: conf[j],
					Correct:    out.Results[j].Entity == gm.Entity,
				})
			}
		}
		p95, n95 := eval.PrecisionAtConfidence(ranked, 0.95)
		p80, n80 := eval.PrecisionAtConfidence(ranked, 0.80)
		rows = append(rows, ConfidenceRow{
			Assessor: a.name,
			Prec95:   p95, Men95: n95,
			Prec80: p80, Men80: n80,
			MAP:   eval.MAP(ranked),
			Curve: eval.PRCurve(ranked, 10),
		})
	}
	return rows
}

// FormatTable51 renders the confidence table; the bounded-confidence
// columns only apply to assessors producing probabilities (prior, CONF), as
// in the paper.
func FormatTable51(rows []ConfidenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5.1: confidence assessors (CoNLL-like corpus)\n")
	fmt.Fprintf(&b, "  %-10s %10s %8s %10s %8s %8s\n", "assessor", "Prec@95%", "#Men@95", "Prec@80%", "#Men@80", "MAP")
	for _, r := range rows {
		bounded := r.Assessor == "prior" || r.Assessor == "CONF"
		if bounded {
			fmt.Fprintf(&b, "  %-10s %9.2f%% %8d %9.2f%% %8d %7.2f%%\n",
				r.Assessor, 100*r.Prec95, r.Men95, 100*r.Prec80, r.Men80, 100*r.MAP)
		} else {
			fmt.Fprintf(&b, "  %-10s %10s %8s %10s %8s %7.2f%%\n",
				r.Assessor, "-", "-", "-", "-", 100*r.MAP)
		}
	}
	return b.String()
}

// FormatFigure53 renders the precision-recall curves of Figure 5.3.
func FormatFigure53(rows []ConfidenceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5.3: precision-recall of confidence-ranked mentions\n")
	fmt.Fprintf(&b, "  %-8s", "recall")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", r.Assessor)
	}
	fmt.Fprintf(&b, "\n")
	if len(rows) == 0 {
		return b.String()
	}
	for pi := range rows[0].Curve {
		fmt.Fprintf(&b, "  %-8.1f", rows[0].Curve[pi].Recall)
		for _, r := range rows {
			fmt.Fprintf(&b, " %10.3f", r.Curve[pi].Precision)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Table52 reproduces Table 5.2: the news-stream dataset properties.
func (s *Suite) Table52() wiki.CorpusStats {
	return s.World.Stats(s.labeledNews())
}

// FormatTable52 renders the news dataset properties.
func FormatTable52(st wiki.CorpusStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5.2: news-stream dataset properties (labeled days)\n")
	fmt.Fprintf(&b, "  documents                  %d\n", st.Docs)
	fmt.Fprintf(&b, "  mentions                   %d\n", st.Mentions)
	fmt.Fprintf(&b, "  mentions with emerging EE  %d\n", st.MentionsNoEntity)
	fmt.Fprintf(&b, "  mentions per article       %.1f\n", st.AvgMentionsPerDoc)
	fmt.Fprintf(&b, "  entities per mention       %.1f\n", st.AvgCandidatesPerMention)
	return b.String()
}

// labeledNews returns the last two stream days (tune day + eval day).
func (s *Suite) labeledNews() []wiki.Document {
	var out []wiki.Document
	for _, d := range s.news {
		if d.Day >= s.Sizes.NewsDays-1 {
			out = append(out, d)
		}
	}
	return out
}

// chunkFor returns the harvesting chunk: documents of the `window` days
// preceding `day`.
func (s *Suite) chunkFor(day, window int) []*wiki.Document {
	var docs []*wiki.Document
	for i := range s.news {
		d := &s.news[i]
		if d.Day < day && d.Day >= day-window {
			docs = append(docs, d)
		}
	}
	return docs
}

// eeDoc is one prepared news document for the EE experiments: only mentions
// resolvable through the dictionary are kept ("mentions that are not in the
// entity dictionary are removed, as they can be resolved trivially",
// Sec. 5.7.2).
type eeDoc struct {
	mentions []wiki.GoldMention
	problem  *disambig.Problem
	eeModels map[string]disambig.Candidate
}

// eePipeline builds the shared NED-EE pipeline with the suite's
// scale-appropriate parameters: sentence-local harvesting (evidence in the
// synthetic stream is sentence-local) and a capped placeholder model (the
// equivalent of the paper's 3000-phrase cap against a 3M-entity KB — only
// the best-associated phrases may fuel a placeholder).
func (s *Suite) eePipeline() *emerge.Pipeline {
	return &emerge.Pipeline{
		KB:            s.World.KB,
		MaxCandidates: s.Sizes.MaxCandidates,
		HarvestWindow: -1,
		Model: emerge.ModelConfig{
			KBSize:        s.World.KB.NumEntities(),
			MaxKeyphrases: 25,
			MinCount:      2,
			GammaEE:       1,
		},
	}
}

// dictSurfaces lists the mention surfaces of a document that have
// dictionary candidates.
func dictSurfaces(k *kb.KB, d *wiki.Document) []string {
	var out []string
	for _, gm := range d.Mentions {
		if len(k.Candidates(gm.Surface)) > 0 {
			out = append(out, gm.Surface)
		}
	}
	return out
}

// chunkDocs converts stream documents to pipeline chunk docs.
func (s *Suite) chunkDocs(docs []*wiki.Document) []emerge.ChunkDoc {
	out := make([]emerge.ChunkDoc, 0, len(docs))
	for _, d := range docs {
		out = append(out, emerge.ChunkDoc{Text: d.Text, Surfaces: dictSurfaces(s.World.KB, d)})
	}
	return out
}

// buildEnricher harvests keyphrases for existing entities from the chunk
// via the pipeline (Sec. 5.5.1).
func (s *Suite) buildEnricher(chunk []*wiki.Document) *emerge.Enricher {
	return s.eePipeline().BuildEnricher(s.chunkDocs(chunk))
}

// prepareEEDocs builds the problems and EE models for one stream day.
func (s *Suite) prepareEEDocs(day, window int, enricher *emerge.Enricher) []eeDoc {
	pl := s.eePipeline()
	chunk := s.chunkDocs(s.chunkFor(day, window))
	var out []eeDoc
	for i := range s.news {
		d := &s.news[i]
		if d.Day != day {
			continue
		}
		var kept []wiki.GoldMention
		for _, gm := range d.Mentions {
			if len(s.World.KB.Candidates(gm.Surface)) > 0 {
				kept = append(kept, gm)
			}
		}
		if len(kept) == 0 {
			continue
		}
		surfaces := make([]string, len(kept))
		for j, gm := range kept {
			surfaces[j] = gm.Surface
		}
		out = append(out, eeDoc{
			mentions: kept,
			problem:  pl.Problem(d.Text, surfaces, enricher),
			eeModels: pl.Models(chunk, surfaces, enricher),
		})
	}
	return out
}

// EERow is one method row of Tables 5.3/5.4.
type EERow struct {
	Method string
	Micro  float64
	Macro  float64
	EE     eval.EEMetrics
}

// eeMethodKind identifies the five compared systems.
type eeMethodKind int

const (
	eeAIDAsim eeMethodKind = iota // sim AIDA + confidence threshold
	eeAIDAcoh                     // coherence AIDA + confidence threshold
	eeIW                          // Wikifier + linker-score threshold
	eeEEsim                       // placeholder model, similarity only
	eeEEcoh                       // placeholder model, KORE coherence
)

func (k eeMethodKind) String() string {
	return [...]string{"AIDAsim", "AIDAcoh", "IW", "EEsim", "EEcoh"}[k]
}

// eePrediction is the per-mention outcome of one system on one document.
type eePrediction struct {
	labels []eval.Label
}

// runEEMethod executes one system over prepared docs and returns per-doc
// labels. For the thresholding baselines, param is the confidence
// threshold; for the EE systems, param is the γ_EE edge-weight balance of
// the placeholder candidates (Sec. 5.6).
func (s *Suite) runEEMethod(kind eeMethodKind, docs []eeDoc, param float64) []eePrediction {
	simCfg := disambig.Config{UsePrior: true, PriorTest: true}
	cohCfg := disambig.Config{UsePrior: true, PriorTest: true, UseCoherence: true,
		CoherenceTest: true, Measure: relatedness.KindMW}
	koreCfg := disambig.Config{UsePrior: true, PriorTest: true, UseCoherence: true,
		CoherenceTest: true, Measure: relatedness.KindKORE}
	var preds []eePrediction
	for i := range docs {
		d := &docs[i]
		var labels []eval.Label
		switch kind {
		case eeAIDAsim, eeAIDAcoh, eeIW:
			var m disambig.Method
			switch kind {
			case eeAIDAsim:
				m = disambig.NewAIDAVariant("sim", simCfg)
			case eeAIDAcoh:
				m = disambig.NewAIDAVariant("coh", cohCfg)
			default:
				m = disambig.Wikifier{}
			}
			out := m.Disambiguate(d.problem)
			conf := emerge.NormConfidence(out)
			labels = make([]eval.Label, len(d.mentions))
			for j, gm := range d.mentions {
				pred := out.Results[j].Entity
				if conf[j] < param {
					pred = kb.NoEntity
				}
				labels[j] = eval.Label{Gold: gm.Entity, Pred: pred}
			}
		case eeEEsim, eeEEcoh:
			cfg := simCfg
			if kind == eeEEcoh {
				cfg = koreCfg
			}
			models := d.eeModels
			if param > 0 && param != 1 {
				models = make(map[string]disambig.Candidate, len(d.eeModels))
				for surf, c := range d.eeModels {
					c.EdgeScale = param
					models[surf] = c
				}
			}
			disc := &emerge.Discoverer{Method: disambig.NewAIDAVariant("ee", cfg)}
			res := disc.Discover(d.problem, models)
			labels = make([]eval.Label, len(d.mentions))
			for j, gm := range d.mentions {
				labels[j] = eval.Label{Gold: gm.Entity, Pred: res.Output.Results[j].Entity}
			}
		}
		preds = append(preds, eePrediction{labels: labels})
	}
	return preds
}

// tuneParam grid-searches a method's hyper-parameter maximizing EE F1 on
// the tuning day (the paper estimates thresholds and the γ_EE balance on
// withheld data).
func (s *Suite) tuneParam(kind eeMethodKind, docs []eeDoc, grid []float64) float64 {
	best, bestF1 := grid[0], -1.0
	for _, t := range grid {
		preds := s.runEEMethod(kind, docs, t)
		var all [][]eval.Label
		for _, p := range preds {
			all = append(all, p.labels)
		}
		if f1 := eval.EEQuality(all).F1; f1 > bestF1 {
			bestF1 = f1
			best = t
		}
	}
	return best
}

// thresholdGrid is the confidence grid for the baselines; gammaGrid is the
// γ_EE grid for the placeholder systems.
var (
	thresholdGrid = gridRange(0.05, 0.95, 0.05)
	gammaGrid     = []float64{0.5, 1.0, 1.5, 2.0, 3.0}
)

func gridRange(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// eeExperiment computes Tables 5.3/5.4 input: per-method labels on the
// evaluation day, with thresholds tuned on the preceding day.
type eeExperiment struct {
	rows   map[eeMethodKind][]eePrediction
	docs   []eeDoc
	thresh map[eeMethodKind]float64
}

func (s *Suite) runEEExperiment() *eeExperiment {
	// Thresholds and γ_EE are estimated on a withheld day (the paper's
	// 2010-10-01 training split); evaluation covers the last two stream
	// days for stable counts.
	window := 2
	tuneDay := s.Sizes.NewsDays - 2
	tuneDocs := s.prepareEEDocs(tuneDay, window, s.buildEnricher(s.chunkFor(tuneDay, window)))
	var evalDocs []eeDoc
	for day := s.Sizes.NewsDays - 1; day <= s.Sizes.NewsDays; day++ {
		enricher := s.buildEnricher(s.chunkFor(day, window))
		evalDocs = append(evalDocs, s.prepareEEDocs(day, window, enricher)...)
	}
	exp := &eeExperiment{
		rows:   map[eeMethodKind][]eePrediction{},
		docs:   evalDocs,
		thresh: map[eeMethodKind]float64{},
	}
	for _, kind := range []eeMethodKind{eeAIDAsim, eeAIDAcoh, eeIW} {
		exp.thresh[kind] = s.tuneParam(kind, tuneDocs, thresholdGrid)
		exp.rows[kind] = s.runEEMethod(kind, evalDocs, exp.thresh[kind])
	}
	for _, kind := range []eeMethodKind{eeEEsim, eeEEcoh} {
		exp.thresh[kind] = s.tuneParam(kind, tuneDocs, gammaGrid)
		exp.rows[kind] = s.runEEMethod(kind, evalDocs, exp.thresh[kind])
	}
	return exp
}

// eeExperiment returns the cached shared EE run.
func (s *Suite) eeExperiment() *eeExperiment {
	if s.eeExp == nil {
		s.eeExp = s.runEEExperiment()
	}
	return s.eeExp
}

// Table53 reproduces Table 5.3: emerging-entity identification quality of
// the thresholding baselines against the explicit EE models.
func (s *Suite) Table53() []EERow {
	return eeRowsFrom(s.eeExperiment())
}

func eeRowsFrom(exp *eeExperiment) []EERow {
	var rows []EERow
	for _, kind := range []eeMethodKind{eeAIDAsim, eeAIDAcoh, eeIW, eeEEsim, eeEEcoh} {
		var all [][]eval.Label
		for _, p := range exp.rows[kind] {
			all = append(all, p.labels)
		}
		rows = append(rows, EERow{
			Method: kind.String(),
			Micro:  eval.MicroAccuracy(all, eval.WithEE),
			Macro:  eval.MacroAccuracy(all, eval.WithEE),
			EE:     eval.EEQuality(all),
		})
	}
	return rows
}

// Table54 reproduces Table 5.4: each system's EE decisions are used as a
// preprocessing step, the surviving mentions are re-disambiguated with the
// plain coherence AIDA, and overall NED quality is measured.
func (s *Suite) Table54() []EERow {
	exp := s.eeExperiment()
	coh := disambig.NewAIDA()
	var rows []EERow
	for _, kind := range []eeMethodKind{eeAIDAsim, eeAIDAcoh, eeIW, eeEEsim, eeEEcoh} {
		var all [][]eval.Label
		for di, pred := range exp.rows[kind] {
			d := &exp.docs[di]
			// Remove EE-marked mentions, re-run NED on the rest.
			sub := d.problem.Clone()
			var keepIdx []int
			var kept []disambig.Mention
			for j := range pred.labels {
				if pred.labels[j].Pred != kb.NoEntity {
					keepIdx = append(keepIdx, j)
					kept = append(kept, d.problem.Mentions[j])
				}
			}
			sub.Mentions = kept
			labels := append([]eval.Label(nil), pred.labels...)
			if len(kept) > 0 {
				out := coh.Disambiguate(sub)
				for pos, j := range keepIdx {
					labels[j].Pred = out.Results[pos].Entity
				}
			}
			all = append(all, labels)
		}
		rows = append(rows, EERow{
			Method: "AIDA-" + kind.String(),
			Micro:  eval.MicroAccuracy(all, eval.WithEE),
			Macro:  eval.MacroAccuracy(all, eval.WithEE),
			EE:     eval.EEQuality(all),
		})
	}
	return rows
}

// FormatTable53 renders an EE quality table (used for both 5.3 and 5.4).
func FormatTable53(title string, rows []EERow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-14s %10s %10s %10s %10s %10s\n",
		"method", "MicroAcc", "MacroAcc", "EE Prec", "EE Rec", "EE F1")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			r.Method, 100*r.Micro, 100*r.Macro,
			100*r.EE.Precision, 100*r.EE.Recall, 100*r.EE.F1)
	}
	return b.String()
}

// EEDayPoint is one x-value of Figure 5.4.
type EEDayPoint struct {
	Days       int
	Prec, Rec  float64 // placeholder model only
	PrecEnrich float64 // with harvested keyphrases for existing entities
	RecEnrich  float64
}

// Figure54 reproduces Figure 5.4: EE discovery precision/recall as the
// harvest window grows, with and without keyphrase enrichment for existing
// entities.
func (s *Suite) Figure54() []EEDayPoint {
	evalDay := s.Sizes.NewsDays
	maxWindow := s.Sizes.NewsDays - 1
	if maxWindow > 4 {
		maxWindow = 4
	}
	var out []EEDayPoint
	for w := 1; w <= maxWindow; w++ {
		point := EEDayPoint{Days: w}
		for _, enrich := range []bool{false, true} {
			var enricher *emerge.Enricher
			if enrich {
				enricher = s.buildEnricher(s.chunkFor(evalDay, w))
			}
			docs := s.prepareEEDocs(evalDay, w, enricher)
			preds := s.runEEMethod(eeEEsim, docs, 0)
			var all [][]eval.Label
			for _, p := range preds {
				all = append(all, p.labels)
			}
			q := eval.EEQuality(all)
			if enrich {
				point.PrecEnrich, point.RecEnrich = q.Precision, q.Recall
			} else {
				point.Prec, point.Rec = q.Precision, q.Recall
			}
		}
		out = append(out, point)
	}
	return out
}

// FormatFigure54 renders the harvest-window series.
func FormatFigure54(points []EEDayPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5.4: EE discovery vs harvest window (EEsim)\n")
	fmt.Fprintf(&b, "  %-6s %12s %12s %14s %14s\n", "days", "EE Prec", "EE Rec", "Prec (exist)", "Rec (exist)")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-6d %12.3f %12.3f %14.3f %14.3f\n", p.Days, p.Prec, p.Rec, p.PrecEnrich, p.RecEnrich)
	}
	return b.String()
}
