package experiments

import (
	"fmt"
	"strings"

	"aida/internal/disambig"
	"aida/internal/eval"
	"aida/internal/wiki"
)

// Table31 reproduces Table 3.1: the dataset properties of the CoNLL-like
// corpus.
func (s *Suite) Table31() wiki.CorpusStats {
	return s.World.Stats(s.conll)
}

// FormatTable31 renders the dataset properties.
func FormatTable31(st wiki.CorpusStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3.1: CoNLL-like dataset properties\n")
	fmt.Fprintf(&b, "  articles                          %d\n", st.Docs)
	fmt.Fprintf(&b, "  mentions (total)                  %d\n", st.Mentions)
	fmt.Fprintf(&b, "  mentions with no entity           %d (%.1f%%)\n",
		st.MentionsNoEntity, 100*float64(st.MentionsNoEntity)/float64(max(1, st.Mentions)))
	fmt.Fprintf(&b, "  words per article (avg.)          %.0f\n", st.AvgWordsPerDoc)
	fmt.Fprintf(&b, "  mentions per article (avg.)       %.1f\n", st.AvgMentionsPerDoc)
	fmt.Fprintf(&b, "  entities per mention (avg.)       %.1f\n", st.AvgCandidatesPerMention)
	return b.String()
}

// MethodAccuracy is one row of Table 3.2 / Figure 3.3.
type MethodAccuracy struct {
	Method string
	Macro  float64
	Micro  float64
	MAP    float64
}

// Table32 reproduces Table 3.2 / Figure 3.3: macro/micro accuracy and MAP
// of the AIDA variants and the baselines on the CoNLL-like test corpus.
func (s *Suite) Table32() []MethodAccuracy {
	var rows []MethodAccuracy
	for _, m := range disambig.Methods() {
		labels, ranked := s.runLabels(m, s.conll)
		rows = append(rows, MethodAccuracy{
			Method: m.Name(),
			Macro:  eval.MacroAccuracy(labels, eval.InKBOnly),
			Micro:  eval.MicroAccuracy(labels, eval.InKBOnly),
			MAP:    eval.MAP(ranked),
		})
	}
	return rows
}

// FormatTable32 renders the accuracy table.
func FormatTable32(rows []MethodAccuracy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3.2 / Figure 3.3: NED accuracy on the CoNLL-like corpus (%%)\n")
	fmt.Fprintf(&b, "  %-28s %8s %8s %8s\n", "method", "MacroA", "MicroA", "MAP")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %8.2f %8.2f %8.2f\n", r.Method, 100*r.Macro, 100*r.Micro, 100*r.MAP)
	}
	return b.String()
}
