package experiments

import (
	"strings"
	"testing"
)

// tinySuite keeps the test workload small; the real scale is exercised by
// the repository-level benchmarks.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(Sizes{
		Seed:           3,
		Entities:       300,
		CoNLLDocs:      6,
		HardDocs:       6,
		WPDocs:         6,
		NewsDays:       4,
		NewsDocsPerDay: 4,
		MaxCandidates:  8,
		PerturbIters:   3,
	})
}

func TestTable31(t *testing.T) {
	s := tinySuite(t)
	st := s.Table31()
	if st.Docs != 6 || st.Mentions == 0 {
		t.Fatalf("bad stats: %+v", st)
	}
	if out := FormatTable31(st); !strings.Contains(out, "Table 3.1") {
		t.Error("format missing header")
	}
}

func TestTable32(t *testing.T) {
	s := tinySuite(t)
	rows := s.Table32()
	if len(rows) != 10 {
		t.Fatalf("want 10 method rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Micro < 0 || r.Micro > 1 || r.Macro < 0 || r.Macro > 1 || r.MAP < 0 || r.MAP > 1 {
			t.Fatalf("row out of range: %+v", r)
		}
	}
	out := FormatTable32(rows)
	if !strings.Contains(out, "r-prior sim-k r-coh") {
		t.Error("format missing AIDA variant")
	}
}

func TestTable41And42(t *testing.T) {
	s := tinySuite(t)
	if rows := s.Table41(); len(rows) == 0 {
		t.Fatal("no gold rows")
	}
	rows := s.Table42()
	if len(rows) < 3 {
		t.Fatalf("want per-domain + aggregate rows, got %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Group != "all seeds" {
		t.Fatalf("last row should aggregate, got %q", last.Group)
	}
	for name, v := range last.Scores {
		if v < -1 || v > 1 {
			t.Fatalf("correlation %s out of range: %v", name, v)
		}
	}
}

func TestTable43(t *testing.T) {
	s := tinySuite(t)
	rows := s.Table43()
	if len(rows) != 3 {
		t.Fatalf("want 3 dataset rows, got %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range r.Micro {
			if v < 0 || v > 1 {
				t.Fatalf("%s micro out of range: %v", r.Dataset, v)
			}
		}
	}
	if out := FormatTable43(rows); !strings.Contains(out, "KORE50") {
		t.Error("format missing dataset")
	}
}

func TestFigure43(t *testing.T) {
	s := tinySuite(t)
	buckets := s.Figure43()
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	prev := 0
	for _, b := range buckets {
		if b.Mentions < prev {
			t.Fatal("cumulative mention counts must not decrease")
		}
		prev = b.Mentions
	}
}

func TestTable44(t *testing.T) {
	s := tinySuite(t)
	rows := s.Table44()
	if len(rows) != 4 {
		t.Fatalf("want 4 methods, got %d", len(rows))
	}
	byName := map[string]EfficiencyRow{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.MeanSeconds < 0 || r.MeanComparisons < 0 {
			t.Fatalf("negative cost: %+v", r)
		}
	}
	// The LSH-F variant must prune comparisons against exact KORE.
	if byName["KORE-LSH-F"].MeanComparisons > byName["KORE"].MeanComparisons {
		t.Errorf("LSH-F should not compare more pairs than exact KORE: %v vs %v",
			byName["KORE-LSH-F"].MeanComparisons, byName["KORE"].MeanComparisons)
	}
}

func TestTable51(t *testing.T) {
	s := tinySuite(t)
	rows := s.Table51()
	if len(rows) != 4 {
		t.Fatalf("want 4 assessors, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MAP < 0 || r.MAP > 1 {
			t.Fatalf("MAP out of range: %+v", r)
		}
		if len(r.Curve) != 10 {
			t.Fatalf("PR curve should have 10 points, got %d", len(r.Curve))
		}
	}
	if out := FormatFigure53(rows); !strings.Contains(out, "CONF") {
		t.Error("figure missing CONF")
	}
}

func TestTable52(t *testing.T) {
	s := tinySuite(t)
	st := s.Table52()
	if st.Docs == 0 || st.Mentions == 0 {
		t.Fatalf("empty labeled news: %+v", st)
	}
}

func TestTable53And54(t *testing.T) {
	s := tinySuite(t)
	rows := s.Table53()
	if len(rows) != 5 {
		t.Fatalf("want 5 systems, got %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Method] = true
		if r.EE.Precision < 0 || r.EE.Precision > 1 {
			t.Fatalf("EE precision out of range: %+v", r)
		}
	}
	for _, want := range []string{"AIDAsim", "AIDAcoh", "IW", "EEsim", "EEcoh"} {
		if !names[want] {
			t.Fatalf("missing system %s", want)
		}
	}
	rows54 := s.Table54()
	if len(rows54) != 5 {
		t.Fatalf("table 5.4 wants 5 rows, got %d", len(rows54))
	}
	if out := FormatTable53("Table 5.4", rows54); !strings.Contains(out, "AIDA-EEsim") {
		t.Error("format missing pipeline row")
	}
}

func TestFigure54(t *testing.T) {
	s := tinySuite(t)
	points := s.Figure54()
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		for _, v := range []float64{p.Prec, p.Rec, p.PrecEnrich, p.RecEnrich} {
			if v < 0 || v > 1 {
				t.Fatalf("point out of range: %+v", p)
			}
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := tinySuite(t).Table32()
	b := tinySuite(t).Table32()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
