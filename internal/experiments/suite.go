// Package experiments regenerates every table and figure of the
// dissertation's evaluation chapters on the synthetic world. Each
// TableXY/FigureXY method returns structured rows; Format helpers render
// them the way the paper prints them. cmd/experiments and the repository's
// bench_test.go are thin wrappers around this package.
package experiments

import (
	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/eval"
	"aida/internal/kb"
	"aida/internal/wiki"
)

// Sizes scales the experiment workloads. The defaults run the full suite in
// a few minutes on a laptop; the paper-scale numbers are 10–30× larger.
type Sizes struct {
	Seed           int64
	Entities       int // KB size (default 1200)
	CoNLLDocs      int // Table 3.1/3.2/5.1 corpus (default 50)
	HardDocs       int // KORE50-like split (default 40)
	WPDocs         int // WP-like split (default 50)
	NewsDays       int // news-stream length (default 6)
	NewsDocsPerDay int // stream density (default 12)
	MaxCandidates  int // candidate cap per mention (default 12)
	PerturbIters   int // perturbation rounds for CONF (default 8)
}

func (s Sizes) withDefaults() Sizes {
	if s.Entities <= 0 {
		s.Entities = 1200
	}
	if s.CoNLLDocs <= 0 {
		s.CoNLLDocs = 50
	}
	if s.HardDocs <= 0 {
		s.HardDocs = 40
	}
	if s.WPDocs <= 0 {
		s.WPDocs = 50
	}
	if s.NewsDays <= 0 {
		s.NewsDays = 6
	}
	if s.NewsDocsPerDay <= 0 {
		s.NewsDocsPerDay = 12
	}
	if s.MaxCandidates <= 0 {
		s.MaxCandidates = 12
	}
	if s.PerturbIters <= 0 {
		s.PerturbIters = 8
	}
	return s
}

// Suite holds the generated world and corpora shared by all experiments.
type Suite struct {
	Sizes Sizes
	World *wiki.World

	conll []wiki.Document
	hard  []wiki.Document
	wp    []wiki.Document
	news  []wiki.Document

	eeExp *eeExperiment // cached: shared by Table53 and Table54
}

// NewSuite generates the world and corpora.
func NewSuite(sizes Sizes) *Suite {
	sizes = sizes.withDefaults()
	w := wiki.Generate(wiki.Config{Seed: sizes.Seed + 1, Entities: sizes.Entities})
	s := &Suite{Sizes: sizes, World: w}
	s.conll = w.GenerateCorpus(wiki.CoNLLSpec(sizes.CoNLLDocs, sizes.Seed+2))
	s.hard = w.GenerateCorpus(wiki.HardSpec(sizes.HardDocs, sizes.Seed+3))
	s.wp = w.GenerateCorpus(wiki.WPSpec(sizes.WPDocs, sizes.Seed+4))
	s.news = w.NewsStream(wiki.DefaultNewsSpec(sizes.NewsDays, sizes.NewsDocsPerDay, sizes.Seed+5))
	return s
}

// NewsDocs exposes the generated news stream (diagnostics, tools).
func (s *Suite) NewsDocs() []wiki.Document { return s.news }

// problemFor builds the disambiguation problem of a document.
func (s *Suite) problemFor(doc *wiki.Document) *disambig.Problem {
	return disambig.NewProblem(s.World.KB, doc.Text, doc.Surfaces(), s.Sizes.MaxCandidates)
}

// runLabels runs a method over a corpus and returns per-document labels and
// the confidence-ranked prediction list (confidence = normalized score).
func (s *Suite) runLabels(m disambig.Method, docs []wiki.Document) ([][]eval.Label, []eval.Ranked) {
	return s.runLabelsCapped(m, docs, s.Sizes.MaxCandidates)
}

// runLabelsCapped is runLabels with an explicit per-mention candidate cap
// (0 = uncapped, for long-tail datasets).
func (s *Suite) runLabelsCapped(m disambig.Method, docs []wiki.Document, maxCands int) ([][]eval.Label, []eval.Ranked) {
	var all [][]eval.Label
	var ranked []eval.Ranked
	for i := range docs {
		doc := &docs[i]
		p := disambig.NewProblem(s.World.KB, doc.Text, doc.Surfaces(), maxCands)
		out := m.Disambiguate(p)
		conf := emerge.NormConfidence(out)
		labels := make([]eval.Label, len(doc.Mentions))
		for j, gm := range doc.Mentions {
			labels[j] = eval.Label{Gold: gm.Entity, Pred: out.Results[j].Entity}
			if gm.Entity != kb.NoEntity {
				ranked = append(ranked, eval.Ranked{
					Confidence: conf[j],
					Correct:    labels[j].Correct(),
				})
			}
		}
		all = append(all, labels)
	}
	return all, ranked
}
