package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aida/internal/disambig"
	"aida/internal/eval"
	"aida/internal/kb"
	"aida/internal/relatedness"
	"aida/internal/wiki"
)

// relatednessKinds are the measure columns of Tables 4.2/4.3.
var relatednessKinds = []relatedness.Kind{
	relatedness.KindKWCS,
	relatedness.KindKPCS,
	relatedness.KindMW,
	relatedness.KindKORE,
	relatedness.KindKORELSHG,
	relatedness.KindKORELSHF,
}

// Table41Row is one seed of the relatedness gold standard with its top and
// bottom candidates (the qualitative Table 4.1).
type Table41Row struct {
	Seed   string
	Domain string
	Best   string
	Worst  string
}

// Table41 reproduces Table 4.1: example seeds with their gold-ranked
// candidates.
func (s *Suite) Table41() []Table41Row {
	gold := s.World.RelatednessGold(wiki.DefaultGoldSpec(s.Sizes.Seed + 7))
	var rows []Table41Row
	for _, g := range gold {
		if len(g.GoldOrder) == 0 {
			continue
		}
		rows = append(rows, Table41Row{
			Seed:   s.World.KB.Entity(g.Seed).Name,
			Domain: g.Domain,
			Best:   s.World.KB.Entity(g.Candidates[g.GoldOrder[0]]).Name,
			Worst:  s.World.KB.Entity(g.Candidates[g.GoldOrder[len(g.GoldOrder)-1]]).Name,
		})
	}
	return rows
}

// FormatTable41 renders the qualitative gold examples.
func FormatTable41(rows []Table41Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4.1: relatedness gold examples (seed → most / least related)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %-34s → %s (1) ... %s (last)\n", r.Domain, r.Seed, r.Best, r.Worst)
	}
	return b.String()
}

// SpearmanRow is one row of Table 4.2: per-domain (or aggregate) Spearman
// correlations per measure.
type SpearmanRow struct {
	Group  string
	Scores map[string]float64 // measure name → correlation
}

// Table42 reproduces Table 4.2: the Spearman correlation of each measure's
// candidate ranking with the simulated crowd gold, per domain, for
// link-poor seeds, and overall.
func (s *Suite) Table42() []SpearmanRow {
	gold := s.World.RelatednessGold(wiki.DefaultGoldSpec(s.Sizes.Seed + 7))
	// One engine serves all six kinds: profiles are interned once and the
	// LSH filters are built once instead of per measure.
	engine := relatedness.NewScorer(s.World.KB)
	measures := make(map[string]*relatedness.Measure, len(relatednessKinds))
	for _, k := range relatednessKinds {
		measures[k.String()] = engine.Measure(k)
	}
	// Per-seed correlations per measure.
	type seedScore struct {
		domain   string
		linkPoor bool
		scores   map[string]float64
	}
	// Link-poor threshold: median in-link count over seeds (the paper uses
	// an absolute 500 for Wikipedia scale).
	var linkCounts []int
	for _, g := range gold {
		linkCounts = append(linkCounts, len(s.World.KB.Entity(g.Seed).InLinks))
	}
	sort.Ints(linkCounts)
	linkPoorMax := 0
	if len(linkCounts) > 0 {
		linkPoorMax = linkCounts[len(linkCounts)/2]
	}
	var perSeed []seedScore
	for _, g := range gold {
		ss := seedScore{
			domain:   g.Domain,
			linkPoor: len(s.World.KB.Entity(g.Seed).InLinks) <= linkPoorMax,
			scores:   map[string]float64{},
		}
		for name, m := range measures {
			vals := make([]float64, len(g.Candidates))
			for i, c := range g.Candidates {
				vals[i] = m.Relatedness(g.Seed, c)
			}
			ss.scores[name] = eval.SpearmanFromOrder(g.GoldOrder, vals)
		}
		perSeed = append(perSeed, ss)
	}
	avg := func(filter func(seedScore) bool) map[string]float64 {
		out := map[string]float64{}
		n := 0
		for _, ss := range perSeed {
			if !filter(ss) {
				continue
			}
			n++
			for name, v := range ss.scores {
				out[name] += v
			}
		}
		for name := range out {
			out[name] /= float64(n)
		}
		return out
	}
	var rows []SpearmanRow
	spec := wiki.DefaultGoldSpec(0)
	for _, d := range spec.Domains {
		d := d
		rows = append(rows, SpearmanRow{Group: d, Scores: avg(func(ss seedScore) bool { return ss.domain == d })})
	}
	rows = append(rows, SpearmanRow{Group: "link-poor seeds", Scores: avg(func(ss seedScore) bool { return ss.linkPoor })})
	rows = append(rows, SpearmanRow{Group: "all seeds", Scores: avg(func(seedScore) bool { return true })})
	return rows
}

// FormatTable42 renders the Spearman table.
func FormatTable42(rows []SpearmanRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4.2: Spearman correlation with the crowd gold ranking\n")
	fmt.Fprintf(&b, "  %-18s", "group")
	for _, k := range relatednessKinds {
		fmt.Fprintf(&b, " %10s", k)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s", r.Group)
		for _, k := range relatednessKinds {
			fmt.Fprintf(&b, " %10.3f", r.Scores[k.String()])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// NEDByMeasure is one dataset row of Table 4.3 / Figure 4.2.
type NEDByMeasure struct {
	Dataset string
	Micro   map[string]float64
	Macro   map[string]float64
	LinkAvg map[string]float64
}

// nedMethodFor builds the AIDA configuration used in the Chapter 4 NED
// experiments: full robustness tests with the given coherence measure. The
// WP dataset disables the prior, as in Sec. 4.6.1.
func nedMethodFor(kind relatedness.Kind, usePrior bool) disambig.Method {
	cfg := disambig.Config{
		UsePrior: usePrior, PriorTest: usePrior,
		UseCoherence: true, CoherenceTest: true,
		Measure: kind,
	}
	return disambig.NewAIDAVariant("aida-"+kind.String(), cfg)
}

// Table43 reproduces Table 4.3 / Figure 4.2: NED accuracy per relatedness
// measure on the three datasets. The hard datasets run with an uncapped
// candidate space: their point is long-tail true entities, which a
// popularity-ranked candidate cap would cut off before any relatedness
// measure could recover them (KORE50 averages 631 candidates per mention
// in the original).
func (s *Suite) Table43() []NEDByMeasure {
	datasets := []struct {
		name     string
		docs     []wiki.Document
		usePrior bool
		maxCands int
	}{
		{"CoNLL", s.conll, true, s.Sizes.MaxCandidates},
		{"WP", s.wp, false, 0},
		{"KORE50", s.hard, true, 0},
	}
	var rows []NEDByMeasure
	for _, ds := range datasets {
		row := NEDByMeasure{
			Dataset: ds.name,
			Micro:   map[string]float64{},
			Macro:   map[string]float64{},
			LinkAvg: map[string]float64{},
		}
		for _, kind := range relatednessKinds {
			m := nedMethodFor(kind, ds.usePrior)
			labels, _ := s.runLabelsCapped(m, ds.docs, ds.maxCands)
			row.Micro[kind.String()] = eval.MicroAccuracy(labels, eval.InKBOnly)
			row.Macro[kind.String()] = eval.MacroAccuracy(labels, eval.InKBOnly)
			row.LinkAvg[kind.String()] = s.linkAveragedAccuracy(ds.docs, labels)
		}
		rows = append(rows, row)
	}
	return rows
}

// linkAveragedAccuracy groups mentions by the in-link count of their true
// entity and averages the per-group accuracies (the Link Avg. rows).
func (s *Suite) linkAveragedAccuracy(docs []wiki.Document, labels [][]eval.Label) float64 {
	correct := map[int]int{}
	total := map[int]int{}
	for d := range docs {
		for j, gm := range docs[d].Mentions {
			if gm.Entity == kb.NoEntity {
				continue
			}
			links := len(s.World.KB.Entity(gm.Entity).InLinks)
			total[links]++
			if labels[d][j].Correct() {
				correct[links]++
			}
		}
	}
	if len(total) == 0 {
		return 0
	}
	var sum float64
	for links, t := range total {
		sum += float64(correct[links]) / float64(t)
	}
	return sum / float64(len(total))
}

// FormatTable43 renders the per-measure NED accuracy table.
func FormatTable43(rows []NEDByMeasure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4.3 / Figure 4.2: NED accuracy per relatedness measure (%%)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s\n", r.Dataset)
		for _, metric := range []struct {
			name string
			vals map[string]float64
		}{{"Micro Avg.", r.Micro}, {"Macro Avg.", r.Macro}, {"Link Avg.", r.LinkAvg}} {
			fmt.Fprintf(&b, "    %-12s", metric.name)
			for _, k := range relatednessKinds {
				fmt.Fprintf(&b, " %10.2f", 100*metric.vals[k.String()])
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	fmt.Fprintf(&b, "    %-12s", "(columns)")
	for _, k := range relatednessKinds {
		fmt.Fprintf(&b, " %10s", k)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// LinkBucket is one point of Figure 4.3: cumulative accuracy over mentions
// whose true entity has at most MaxLinks in-links.
type LinkBucket struct {
	MaxLinks int
	Accuracy map[string]float64
	Mentions int
}

// Figure43 reproduces Figure 4.3: cumulative average precision against the
// in-link count of the true entity on the hard (KORE50-like) dataset, for
// MW, KORE and the LSH variants.
func (s *Suite) Figure43() []LinkBucket {
	kinds := []relatedness.Kind{relatedness.KindMW, relatedness.KindKORE,
		relatedness.KindKORELSHG, relatedness.KindKORELSHF}
	// Collect per-mention correctness and true-entity link counts.
	type obs struct {
		links   int
		correct map[string]bool
	}
	var all []obs
	for _, kind := range kinds {
		m := nedMethodFor(kind, true)
		labels, _ := s.runLabelsCapped(m, s.hard, 0)
		oi := 0
		for d := range s.hard {
			for j, gm := range s.hard[d].Mentions {
				if gm.Entity == kb.NoEntity {
					continue
				}
				if kind == kinds[0] {
					all = append(all, obs{
						links:   len(s.World.KB.Entity(gm.Entity).InLinks),
						correct: map[string]bool{},
					})
				}
				all[oi].correct[kind.String()] = labels[d][j].Correct()
				oi++
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].links < all[j].links })
	// Cumulative accuracy at exponentially spaced link thresholds.
	thresholds := []int{1, 2, 4, 8, 16, 32, 64, 128}
	var out []LinkBucket
	for _, th := range thresholds {
		bucket := LinkBucket{MaxLinks: th, Accuracy: map[string]float64{}}
		counts := map[string]int{}
		n := 0
		for _, o := range all {
			if o.links > th {
				break
			}
			n++
			for _, kind := range kinds {
				if o.correct[kind.String()] {
					counts[kind.String()]++
				}
			}
		}
		if n == 0 {
			continue
		}
		bucket.Mentions = n
		for _, kind := range kinds {
			bucket.Accuracy[kind.String()] = float64(counts[kind.String()]) / float64(n)
		}
		out = append(out, bucket)
	}
	return out
}

// FormatFigure43 renders the cumulative link-poor accuracy series.
func FormatFigure43(buckets []LinkBucket) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4.3: cumulative accuracy vs in-links of the true entity (hard split)\n")
	fmt.Fprintf(&b, "  %-10s %9s %9s %12s %12s %9s\n", "≤ links", "MW", "KORE", "KORE-LSH-G", "KORE-LSH-F", "mentions")
	for _, bk := range buckets {
		fmt.Fprintf(&b, "  %-10d %9.3f %9.3f %12.3f %12.3f %9d\n",
			bk.MaxLinks, bk.Accuracy["MW"], bk.Accuracy["KORE"],
			bk.Accuracy["KORE-LSH-G"], bk.Accuracy["KORE-LSH-F"], bk.Mentions)
	}
	return b.String()
}

// EfficiencyRow is one method row of Table 4.4 (and the series behind
// Figures 4.4/4.5).
type EfficiencyRow struct {
	Method          string
	MeanComparisons float64
	StdComparisons  float64
	Q90Comparisons  float64
	MeanSeconds     float64
	StdSeconds      float64
	Q90Seconds      float64
	// PerDoc holds (candidate count, comparisons, seconds) per document,
	// sorted by candidate count — the x/y series of Figures 4.4/4.5.
	PerDoc []DocCost
}

// DocCost is the per-document cost sample.
type DocCost struct {
	Entities    int
	Comparisons int
	Seconds     float64
}

// Table44 reproduces Table 4.4 / Figures 4.4/4.5: the number of pairwise
// relatedness computations and the runtime of AIDA under MW, exact KORE and
// the two LSH-accelerated variants over the CoNLL-like collection.
func (s *Suite) Table44() []EfficiencyRow {
	kinds := []relatedness.Kind{relatedness.KindMW, relatedness.KindKORE,
		relatedness.KindKORELSHG, relatedness.KindKORELSHF}
	var rows []EfficiencyRow
	for _, kind := range kinds {
		m := nedMethodFor(kind, true)
		var comps, secs []float64
		var perDoc []DocCost
		for i := range s.conll {
			p := s.problemFor(&s.conll[i])
			start := time.Now()
			out := m.Disambiguate(p)
			el := time.Since(start).Seconds()
			comps = append(comps, float64(out.Stats.Comparisons))
			secs = append(secs, el)
			perDoc = append(perDoc, DocCost{
				Entities:    out.Stats.GraphEntities,
				Comparisons: out.Stats.Comparisons,
				Seconds:     el,
			})
		}
		sort.Slice(perDoc, func(i, j int) bool { return perDoc[i].Entities < perDoc[j].Entities })
		rows = append(rows, EfficiencyRow{
			Method:          kind.String(),
			MeanComparisons: eval.Mean(comps),
			StdComparisons:  eval.Stddev(comps),
			Q90Comparisons:  eval.Quantile(comps, 0.9),
			MeanSeconds:     eval.Mean(secs),
			StdSeconds:      eval.Stddev(secs),
			Q90Seconds:      eval.Quantile(secs, 0.9),
			PerDoc:          perDoc,
		})
	}
	return rows
}

// FormatTable44 renders the efficiency table.
func FormatTable44(rows []EfficiencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4.4 / Figures 4.4-4.5: relatedness efficiency per document\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s %12s %12s %12s %12s\n",
		"method", "cmp mean", "cmp stddev", "cmp q90", "time mean(s)", "time stddev", "time q90")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %12.0f %12.0f %12.0f %12.5f %12.5f %12.5f\n",
			r.Method, r.MeanComparisons, r.StdComparisons, r.Q90Comparisons,
			r.MeanSeconds, r.StdSeconds, r.Q90Seconds)
	}
	return b.String()
}
