// Package analytics implements the entity-based news analytics application
// of Sec. 6.2 ("Analytics with Strings, Things, and Cats"): entity
// frequency time series over a day-stamped document stream, entity
// co-occurrence statistics, and burst-based trending detection.
package analytics

import (
	"sort"

	"aida/internal/kb"
)

// EntityCount pairs an entity with a count or score.
type EntityCount struct {
	Entity kb.EntityID
	Count  int
}

// EntityScore pairs an entity with a floating score.
type EntityScore struct {
	Entity kb.EntityID
	Score  float64
}

// Analytics accumulates a disambiguated news stream. The zero value is not
// ready; use New.
type Analytics struct {
	// perDay[day][entity] = mention count
	perDay map[int]map[kb.EntityID]int
	// co[entity][other] = number of documents both occurred in
	co      map[kb.EntityID]map[kb.EntityID]int
	minDay  int
	maxDay  int
	hasDocs bool
}

// New creates an empty analytics store.
func New() *Analytics {
	return &Analytics{
		perDay: make(map[int]map[kb.EntityID]int),
		co:     make(map[kb.EntityID]map[kb.EntityID]int),
	}
}

// AddDoc records one document's disambiguated entities for a day.
// kb.NoEntity entries are ignored.
func (a *Analytics) AddDoc(day int, entities []kb.EntityID) {
	if !a.hasDocs || day < a.minDay {
		a.minDay = day
	}
	if !a.hasDocs || day > a.maxDay {
		a.maxDay = day
	}
	a.hasDocs = true
	m := a.perDay[day]
	if m == nil {
		m = make(map[kb.EntityID]int)
		a.perDay[day] = m
	}
	distinct := map[kb.EntityID]bool{}
	for _, e := range entities {
		if e == kb.NoEntity {
			continue
		}
		m[e]++
		distinct[e] = true
	}
	// Document-level co-occurrence among distinct entities.
	ids := make([]kb.EntityID, 0, len(distinct))
	for e := range distinct {
		ids = append(ids, e)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a.addCo(ids[i], ids[j])
			a.addCo(ids[j], ids[i])
		}
	}
}

func (a *Analytics) addCo(x, y kb.EntityID) {
	m := a.co[x]
	if m == nil {
		m = make(map[kb.EntityID]int)
		a.co[x] = m
	}
	m[y]++
}

// Days returns the covered day range (inclusive); ok is false when empty.
func (a *Analytics) Days() (min, max int, ok bool) {
	return a.minDay, a.maxDay, a.hasDocs
}

// Frequency returns the per-day mention counts of an entity over [from,to].
func (a *Analytics) Frequency(e kb.EntityID, from, to int) []int {
	if to < from {
		return nil
	}
	out := make([]int, to-from+1)
	for d := from; d <= to; d++ {
		if m := a.perDay[d]; m != nil {
			out[d-from] = m[e]
		}
	}
	return out
}

// CoOccurring returns the entities co-occurring with e most often, sorted
// by document co-occurrence count.
func (a *Analytics) CoOccurring(e kb.EntityID, limit int) []EntityCount {
	var out []EntityCount
	for other, c := range a.co[e] {
		out = append(out, EntityCount{Entity: other, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Entity < out[j].Entity
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Trending scores entities for a day by their burst factor: the day's count
// against the mean of the preceding window (+1 smoothing), the classic
// news-analytics trending measure.
func (a *Analytics) Trending(day, window, limit int) []EntityScore {
	today := a.perDay[day]
	if len(today) == 0 {
		return nil
	}
	var out []EntityScore
	for e, c := range today {
		var before float64
		n := 0
		for d := day - window; d < day; d++ {
			if m := a.perDay[d]; m != nil {
				before += float64(m[e])
			}
			n++
		}
		avg := 0.0
		if n > 0 {
			avg = before / float64(n)
		}
		out = append(out, EntityScore{Entity: e, Score: float64(c) / (avg + 1)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// TopEntities returns the most mentioned entities over [from,to].
func (a *Analytics) TopEntities(from, to, limit int) []EntityCount {
	total := map[kb.EntityID]int{}
	for d := from; d <= to; d++ {
		for e, c := range a.perDay[d] {
			total[e] += c
		}
	}
	var out []EntityCount
	for e, c := range total {
		out = append(out, EntityCount{Entity: e, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Entity < out[j].Entity
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
