package analytics

import (
	"testing"

	"aida/internal/kb"
)

func TestFrequencySeries(t *testing.T) {
	a := New()
	a.AddDoc(1, []kb.EntityID{1, 2})
	a.AddDoc(1, []kb.EntityID{1})
	a.AddDoc(2, []kb.EntityID{1})
	got := a.Frequency(1, 1, 3)
	want := []int{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frequency = %v, want %v", got, want)
		}
	}
}

func TestDaysRange(t *testing.T) {
	a := New()
	if _, _, ok := a.Days(); ok {
		t.Fatal("empty store should have no day range")
	}
	a.AddDoc(3, []kb.EntityID{1})
	a.AddDoc(7, []kb.EntityID{1})
	min, max, ok := a.Days()
	if !ok || min != 3 || max != 7 {
		t.Fatalf("days = %d..%d ok=%v", min, max, ok)
	}
}

func TestCoOccurring(t *testing.T) {
	a := New()
	a.AddDoc(1, []kb.EntityID{1, 2, 3})
	a.AddDoc(1, []kb.EntityID{1, 2})
	a.AddDoc(2, []kb.EntityID{1, 3})
	co := a.CoOccurring(1, 0)
	if len(co) != 2 {
		t.Fatalf("co-occurring = %v", co)
	}
	if co[0].Entity != 2 && co[0].Entity != 3 {
		t.Fatalf("unexpected entity %v", co[0])
	}
	// Entities 2 and 3 both co-occur twice with 1.
	if co[0].Count != 2 || co[1].Count != 2 {
		t.Fatalf("counts wrong: %v", co)
	}
}

func TestCoOccurrenceCountsDocumentsNotMentions(t *testing.T) {
	a := New()
	// Entity 2 appears twice in one document: still one co-occurrence.
	a.AddDoc(1, []kb.EntityID{1, 2, 2})
	co := a.CoOccurring(1, 0)
	if len(co) != 1 || co[0].Count != 1 {
		t.Fatalf("duplicate mentions inflate co-occurrence: %v", co)
	}
}

func TestTrendingDetectsBurst(t *testing.T) {
	a := New()
	// Entity 5 is quiet for days 1-3, bursts on day 4; entity 6 is steady.
	for d := 1; d <= 4; d++ {
		a.AddDoc(d, []kb.EntityID{6})
	}
	a.AddDoc(4, []kb.EntityID{5})
	a.AddDoc(4, []kb.EntityID{5})
	a.AddDoc(4, []kb.EntityID{5})
	trend := a.Trending(4, 3, 0)
	if len(trend) == 0 || trend[0].Entity != 5 {
		t.Fatalf("burst not detected: %v", trend)
	}
}

func TestTrendingEmptyDay(t *testing.T) {
	a := New()
	a.AddDoc(1, []kb.EntityID{1})
	if got := a.Trending(9, 3, 0); got != nil {
		t.Fatalf("no data day should be nil, got %v", got)
	}
}

func TestTopEntities(t *testing.T) {
	a := New()
	a.AddDoc(1, []kb.EntityID{1, 1, 2})
	a.AddDoc(2, []kb.EntityID{2, 2, 2})
	top := a.TopEntities(1, 2, 1)
	if len(top) != 1 || top[0].Entity != 2 || top[0].Count != 4 {
		t.Fatalf("top = %v", top)
	}
}

func TestNoEntitySkipped(t *testing.T) {
	a := New()
	a.AddDoc(1, []kb.EntityID{kb.NoEntity, 1})
	if got := a.Frequency(kb.NoEntity, 1, 1); got[0] != 0 {
		t.Fatal("NoEntity must not be counted")
	}
	if got := a.Frequency(1, 1, 1); got[0] != 1 {
		t.Fatal("real entity lost")
	}
}
