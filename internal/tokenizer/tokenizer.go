// Package tokenizer provides tokenization, sentence splitting and basic
// lexical normalization for the AIDA pipeline.
//
// The tokenizer is a rule-based segmenter tuned for news-wire style English
// text, which is the genre the dissertation evaluates on (CoNLL 2003
// Reuters articles). It preserves byte offsets so downstream annotations
// (mentions, keyphrase covers) can always be mapped back to the input.
package tokenizer

import (
	"strings"
	"unicode"

	"aida/internal/pool"
)

// Token is a single token with its position in the original text.
type Token struct {
	Text     string // the token surface form, exactly as in the input
	Start    int    // byte offset of the first byte
	End      int    // byte offset one past the last byte
	Sentence int    // zero-based sentence index
	Index    int    // zero-based token index within the document
}

// IsPunct reports whether the token consists only of punctuation or symbols.
func (t Token) IsPunct() bool {
	for _, r := range t.Text {
		if !unicode.IsPunct(r) && !unicode.IsSymbol(r) {
			return false
		}
	}
	return len(t.Text) > 0
}

// IsNumeric reports whether the token is composed of digits (optionally with
// separators such as "," "." "-" commonly found in scores and dates).
func (t Token) IsNumeric() bool {
	digits := 0
	for _, r := range t.Text {
		switch {
		case unicode.IsDigit(r):
			digits++
		case r == '.' || r == ',' || r == '-' || r == '/' || r == ':':
		default:
			return false
		}
	}
	return digits > 0
}

// Shape describes the capitalization shape of a token.
type Shape int

// Token shapes, in increasing order of "entity likeness".
const (
	ShapeLower Shape = iota // "guitar"
	ShapeCap                // "Kashmir"
	ShapeUpper              // "NATO"
	ShapeMixed              // "iPhone"
	ShapeOther              // digits, punctuation, ...
)

// TokenShape classifies the capitalization shape of s.
func TokenShape(s string) Shape {
	var hasUpper, hasLower, hasOther bool
	first := true
	firstUpper := false
	for _, r := range s {
		switch {
		case unicode.IsUpper(r):
			hasUpper = true
			if first {
				firstUpper = true
			}
		case unicode.IsLower(r):
			hasLower = true
		default:
			hasOther = true
		}
		first = false
	}
	switch {
	case hasOther && !hasUpper && !hasLower:
		return ShapeOther
	case hasUpper && !hasLower:
		return ShapeUpper
	case firstUpper && hasLower:
		return ShapeCap
	case hasUpper && hasLower:
		return ShapeMixed
	default:
		return ShapeLower
	}
}

// sentenceEnders terminate a sentence when followed by whitespace and an
// upper-case letter (or end of input).
func isSentenceEnder(r rune) bool {
	return r == '.' || r == '!' || r == '?'
}

// isTokenRune reports whether r may appear inside a word token.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// tokenizeScratch holds the per-call rune and byte-offset buffers of the
// tokenizer. Tokenization runs once per document on the annotate hot path,
// so these buffers are recycled through a pool instead of being
// reallocated per call.
type tokenizeScratch struct {
	runes []rune
	offs  []int
}

var tokenizeBufs = pool.Scratch[tokenizeScratch]{
	New: func() *tokenizeScratch { return &tokenizeScratch{} },
}

// Tokenize splits text into tokens with byte offsets and sentence indices.
//
// Rules: letters and digits form word tokens; intra-word apostrophes,
// hyphens and periods in abbreviations ("U.S.") are kept inside the token;
// all other punctuation becomes single-rune tokens. Sentences are split on
// ".", "!", "?" when the next non-space rune starts a new sentence.
func Tokenize(text string) []Token {
	return AppendTokens(nil, text)
}

// AppendTokens is Tokenize appending into a caller-owned slice, so a
// caller annotating a stream of documents can reuse one token buffer
// across them. Token.Text values are substrings of text (no per-token
// copies), matching the field's contract: the surface form exactly as in
// the input.
func AppendTokens(tokens []Token, text string) []Token {
	sentence := 0
	i := 0
	sc := tokenizeBufs.Get()
	runes, offs := sc.runes[:0], sc.offs[:0]
	for b, r := range text {
		runes = append(runes, r)
		offs = append(offs, b)
	}
	offs = append(offs, len(text))
	base := len(tokens)
	flushSentence := func(ri int) bool {
		// A sentence ends if the ending punctuation is followed by
		// whitespace and then an uppercase letter, a digit, or EOF.
		j := ri + 1
		for j < len(runes) && unicode.IsSpace(runes[j]) {
			j++
		}
		if j == len(runes) {
			return true
		}
		if j == ri+1 {
			return false // no whitespace after the period: "3.5"
		}
		r := runes[j]
		return unicode.IsUpper(r) || unicode.IsDigit(r) || r == '"' || r == '\''
	}
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case isTokenRune(r):
			j := i
			for j < len(runes) {
				rj := runes[j]
				if isTokenRune(rj) {
					j++
					continue
				}
				// Keep internal apostrophes ("O'Neill"), hyphens
				// ("news-wire") and abbreviation periods ("U.S.").
				if (rj == '\'' || rj == '-' || rj == '.') && j+1 < len(runes) && isTokenRune(runes[j+1]) {
					// "U.S." style: only join "." when segments are single letters.
					if rj == '.' && !isAbbrevDot(runes, i, j) {
						break
					}
					j += 2
					// include the rune after the joiner in the scan
					for j < len(runes) && isTokenRune(runes[j]) {
						j++
					}
					continue
				}
				break
			}
			// Trailing abbreviation period: "U.S." keeps its final dot.
			if j < len(runes) && runes[j] == '.' && isAbbrevRunes(runes[i:j]) {
				j++
			}
			tokens = append(tokens, Token{
				Text:     text[offs[i]:offs[j]],
				Start:    offs[i],
				End:      offs[j],
				Sentence: sentence,
				Index:    len(tokens) - base,
			})
			i = j
		default:
			tokens = append(tokens, Token{
				Text:     text[offs[i]:offs[i+1]],
				Start:    offs[i],
				End:      offs[i+1],
				Sentence: sentence,
				Index:    len(tokens) - base,
			})
			if isSentenceEnder(r) && flushSentence(i) {
				sentence++
			}
			i++
		}
	}
	sc.runes, sc.offs = runes, offs
	tokenizeBufs.Put(sc)
	return tokens
}

// isAbbrevDot reports whether the period at position j continues an
// abbreviation such as "U.S." that started at rune position start.
func isAbbrevDot(runes []rune, start, j int) bool {
	// The segment before the dot must be a single letter.
	segLen := 0
	for k := j - 1; k >= start; k-- {
		if runes[k] == '.' {
			break
		}
		segLen++
	}
	return segLen == 1 && unicode.IsLetter(runes[j-1])
}

// isAbbrevRunes reports whether the rune span looks like a dotted
// abbreviation body ("U.S", "U.N") whose trailing period belongs to the
// token.
func isAbbrevRunes(rs []rune) bool {
	dots := 0
	seg := 0
	for _, r := range rs {
		if r == '.' {
			dots++
			seg = 0
			continue
		}
		seg++
		if seg > 1 {
			return false
		}
	}
	return dots > 0
}

// Sentences groups tokens by their sentence index, preserving order.
func Sentences(tokens []Token) [][]Token {
	var out [][]Token
	for _, t := range tokens {
		for t.Sentence >= len(out) {
			out = append(out, nil)
		}
		out[t.Sentence] = append(out[t.Sentence], t)
	}
	return out
}

// Words returns the lower-cased word tokens of text, dropping punctuation.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.IsPunct() {
			continue
		}
		out = append(out, strings.ToLower(t.Text))
	}
	return out
}

// Normalize lower-cases a token for use as a dictionary or index key.
func Normalize(s string) string { return strings.ToLower(s) }
