package tokenizer

// stopwords is a compact news-English stopword list. AIDA drops stopwords
// from mention contexts before matching entity keyphrases (Sec. 3.3.4).
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"if": true, "then": true, "else": true, "when": true, "while": true,
	"at": true, "by": true, "for": true, "from": true, "in": true,
	"into": true, "of": true, "on": true, "onto": true, "to": true,
	"with": true, "without": true, "about": true, "against": true,
	"between": true, "through": true, "during": true, "before": true,
	"after": true, "above": true, "below": true, "over": true, "under": true,
	"again": true, "further": true, "once": true, "here": true, "there": true,
	"all": true, "any": true, "both": true, "each": true, "few": true,
	"more": true, "most": true, "other": true, "some": true, "such": true,
	"no": true, "nor": true, "not": true, "only": true, "own": true,
	"same": true, "so": true, "than": true, "too": true, "very": true,
	"can": true, "will": true, "just": true, "should": true, "now": true,
	"i": true, "me": true, "my": true, "we": true, "our": true, "you": true,
	"your": true, "he": true, "him": true, "his": true, "she": true,
	"her": true, "it": true, "its": true, "they": true, "them": true,
	"their": true, "what": true, "which": true, "who": true, "whom": true,
	"this": true, "that": true, "these": true, "those": true, "am": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"been": true, "being": true, "have": true, "has": true, "had": true,
	"having": true, "do": true, "does": true, "did": true, "doing": true,
	"would": true, "could": true, "ought": true, "as": true, "until": true,
	"because": true, "up": true, "down": true, "out": true, "off": true,
	"said": true, "says": true, "also": true, "one": true, "two": true,
	"new": true, "first": true, "last": true, "many": true, "much": true,
}

// IsStopword reports whether the lower-cased form of s is a stopword.
func IsStopword(s string) bool { return stopwords[Normalize(s)] }

// ContentWords filters the lower-cased word tokens of text down to
// non-stopword content words — the bag-of-words mention context of
// Section 3.3.4.
func ContentWords(text string) []string {
	words := Words(text)
	out := words[:0]
	for _, w := range words {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}

// ContentWordsFromTokens is ContentWords over an already-tokenized
// document, so callers that tokenize once per document (NER + context
// extraction) do not pay for a second tokenization pass. The result is
// identical to ContentWords on the text the tokens came from.
func ContentWordsFromTokens(tokens []Token) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if t.IsPunct() {
			continue
		}
		w := Normalize(t.Text)
		if stopwords[w] {
			continue
		}
		out = append(out, w)
	}
	return out
}
