package tokenizer

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("They performed Kashmir, written by Page and Plant.")
	want := []string{"They", "performed", "Kashmir", ",", "written", "by", "Page", "and", "Plant", "."}
	if !reflect.DeepEqual(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	in := "Page played his Gibson."
	for _, tok := range Tokenize(in) {
		if got := in[tok.Start:tok.End]; got != tok.Text {
			t.Errorf("offset mismatch: slice %q token %q", got, tok.Text)
		}
	}
}

func TestTokenizeApostropheHyphen(t *testing.T) {
	toks := Tokenize("O'Neill's news-wire report")
	want := []string{"O'Neill's", "news-wire", "report"}
	if !reflect.DeepEqual(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
}

func TestTokenizeAbbreviation(t *testing.T) {
	toks := Tokenize("The U.S. economy grew.")
	want := []string{"The", "U.S.", "economy", "grew", "."}
	if !reflect.DeepEqual(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
}

func TestSentenceSplitting(t *testing.T) {
	toks := Tokenize("Dylan released Desire. It was recorded in 1976. Critics loved it.")
	sents := Sentences(toks)
	if len(sents) != 3 {
		t.Fatalf("want 3 sentences, got %d: %v", len(sents), sents)
	}
	if sents[1][0].Text != "It" {
		t.Errorf("second sentence starts with %q", sents[1][0].Text)
	}
}

func TestSentenceNotSplitOnDecimal(t *testing.T) {
	toks := Tokenize("Growth was 3.5 percent. Inflation fell.")
	sents := Sentences(toks)
	if len(sents) != 2 {
		t.Fatalf("want 2 sentences, got %d", len(sents))
	}
}

func TestTokenShape(t *testing.T) {
	cases := []struct {
		in   string
		want Shape
	}{
		{"guitar", ShapeLower},
		{"Kashmir", ShapeCap},
		{"NATO", ShapeUpper},
		{"iPhone", ShapeMixed},
		{"1976", ShapeOther},
	}
	for _, c := range cases {
		if got := TokenShape(c.in); got != c.want {
			t.Errorf("TokenShape(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsPunctAndNumeric(t *testing.T) {
	toks := Tokenize("Karlsruhe 3 ( Reich , 29th )")
	if !toks[2].IsPunct() {
		t.Errorf("%q should be punct", toks[2].Text)
	}
	if !toks[1].IsNumeric() {
		t.Errorf("%q should be numeric", toks[1].Text)
	}
	if toks[4].IsNumeric() { // "29th" contains letters
		t.Errorf("%q should not be numeric", toks[4].Text)
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("The opener on the record is a song about the fighter.")
	want := []string{"opener", "record", "song", "fighter"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("The") {
		t.Error("The should be a stopword (case-insensitive)")
	}
	if IsStopword("guitar") {
		t.Error("guitar should not be a stopword")
	}
}

// Property: every token's offsets slice back to its text, tokens are in
// strictly increasing offset order, and sentence indices never decrease.
func TestTokenizeInvariants(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prevEnd := 0
		prevSent := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End <= tok.Start {
				return false
			}
			if tok.End > len(s) || s[tok.Start:tok.End] != tok.Text {
				return false
			}
			if tok.Sentence < prevSent {
				return false
			}
			prevEnd = tok.End
			prevSent = tok.Sentence
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenizing never loses non-space content.
func TestTokenizeCoversContent(t *testing.T) {
	f := func(words []string) bool {
		in := strings.Join(words, " ")
		toks := Tokenize(in)
		var sb strings.Builder
		for _, tok := range toks {
			sb.WriteString(tok.Text)
		}
		return sb.String() == strings.Join(strings.Fields(in), "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson. ", 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}
