package minhash

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSketchDeterministic(t *testing.T) {
	s1 := NewSketcher(8, 42)
	s2 := NewSketcher(8, 42)
	set := []uint64{1, 2, 3, 99}
	a, b := s1.Sketch(set), s2.Sketch(set)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give same sketch")
		}
	}
}

func TestSketchSeedChanges(t *testing.T) {
	a := NewSketcher(8, 1).Sketch([]uint64{1, 2, 3})
	b := NewSketcher(8, 2).Sketch([]uint64{1, 2, 3})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds should give different sketches")
	}
}

func TestSketchOrderInvariant(t *testing.T) {
	s := NewSketcher(16, 7)
	a := s.Sketch([]uint64{1, 2, 3, 4})
	b := s.Sketch([]uint64{4, 3, 2, 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sketch must be order invariant")
		}
	}
}

func TestEstimateJaccardIdentical(t *testing.T) {
	s := NewSketcher(32, 3)
	sig := s.SketchStrings([]string{"hard", "rock", "guitarist"})
	if got := EstimateJaccard(sig, sig); got != 1 {
		t.Fatalf("identical sets must estimate 1, got %v", got)
	}
}

func TestEstimateJaccardAccuracy(t *testing.T) {
	// Two sets with true Jaccard 1/3 (overlap 50 of 150 union).
	s := NewSketcher(512, 11)
	var a, b []uint64
	for i := 0; i < 100; i++ {
		a = append(a, uint64(i))
	}
	for i := 50; i < 150; i++ {
		b = append(b, uint64(i))
	}
	got := EstimateJaccard(s.Sketch(a), s.Sketch(b))
	if math.Abs(got-1.0/3.0) > 0.08 {
		t.Fatalf("estimate %v too far from 1/3", got)
	}
}

// Property: the Jaccard estimate of a set with itself is 1, and with a
// disjoint set it is (almost always) near 0.
func TestEstimateJaccardProperty(t *testing.T) {
	s := NewSketcher(64, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b []uint64
		for i := 0; i < 30; i++ {
			a = append(a, rng.Uint64())
			b = append(b, rng.Uint64())
		}
		selfSim := EstimateJaccard(s.Sketch(a), s.Sketch(a))
		crossSim := EstimateJaccard(s.Sketch(a), s.Sketch(b))
		return selfSim == 1 && crossSim < 0.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLSHGroupsSimilarItems(t *testing.T) {
	sk := NewSketcher(8, 21)
	lsh := LSH{Bands: 4, Rows: 2}
	ix := NewIndex(lsh)
	// items 0,1 share most elements; 2 is unrelated.
	ix.Add(0, sk.SketchStrings([]string{"english", "rock", "guitarist", "band"}))
	ix.Add(1, sk.SketchStrings([]string{"english", "rock", "guitarist", "tour"}))
	ix.Add(2, sk.SketchStrings([]string{"quantum", "flux", "capacitor", "warp"}))
	pairs := ix.CandidatePairs()
	has01 := false
	for _, p := range pairs {
		if p == [2]int{0, 1} {
			has01 = true
		}
	}
	if !has01 {
		t.Fatalf("similar items not grouped; pairs=%v", pairs)
	}
}

func TestLSHSeparatesDissimilarItems(t *testing.T) {
	sk := NewSketcher(64, 9)
	lsh := LSH{Bands: 16, Rows: 4}
	ix := NewIndex(lsh)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		set := make([]uint64, 20)
		for j := range set {
			set[j] = rng.Uint64()
		}
		ix.Add(i, sk.Sketch(set))
	}
	if pairs := ix.CandidatePairs(); len(pairs) > 40 {
		t.Fatalf("too many random collisions: %d pairs", len(pairs))
	}
}

func TestBucketKeysBandIndependence(t *testing.T) {
	lsh := LSH{Bands: 2, Rows: 2}
	// Same band sums but in different bands must not produce equal keys.
	sig := []uint64{1, 2, 2, 1}
	keys := lsh.BucketKeys(sig)
	if keys[0] == keys[1] {
		t.Fatal("band index must be mixed into the bucket key")
	}
}

func TestEmptySetSketch(t *testing.T) {
	s := NewSketcher(4, 2)
	sig := s.Sketch(nil)
	for _, v := range sig {
		if v != ^uint64(0) {
			t.Fatal("empty set must sketch to max values")
		}
	}
}

func TestHashStringDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("phrase-%d", i)
		h := HashString(s)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", prev, s)
		}
		seen[h] = s
	}
}

func BenchmarkSketch(b *testing.B) {
	s := NewSketcher(8, 42)
	set := make([]uint64, 100)
	for i := range set {
		set[i] = uint64(i) * 2654435761
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sketch(set)
	}
}

func BenchmarkCandidatePairs(b *testing.B) {
	sk := NewSketcher(8, 3)
	lsh := LSH{Bands: 4, Rows: 2}
	rng := rand.New(rand.NewSource(2))
	sigs := make([][]uint64, 200)
	for i := range sigs {
		set := make([]uint64, 15)
		for j := range set {
			set[j] = rng.Uint64() % 500 // force some overlap
		}
		sigs[i] = sk.Sketch(set)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIndex(lsh)
		for id, sig := range sigs {
			ix.Add(id, sig)
		}
		ix.CandidatePairs()
	}
}
