// Package minhash implements min-hash sketches and banded locality-sensitive
// hashing, the two building blocks of KORE's two-stage hashing scheme
// (Sec. 4.4.2).
//
// Stage one groups near-duplicate keyphrases: each phrase (a set of word
// ids) is sketched with a few min-hash rows and banded so that phrases with
// high Jaccard similarity collide. Stage two groups related entities: each
// entity, represented by its set of stage-one bucket ids, is sketched and
// banded again; the exact KORE measure is only computed for entity pairs
// sharing at least one bucket.
package minhash

import "sort"

// splitmix64 is a strong 64-bit mixer; combined with per-row seeds it gives
// the independent hash family required by min-hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes a string to a 64-bit id (FNV-1a, inlined to avoid
// allocation), for use as a set element in sketches.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Sketcher computes min-hash signatures of a fixed length with a fixed seed.
type Sketcher struct {
	seeds []uint64
}

// NewSketcher returns a Sketcher producing signatures of the given length.
// The seed makes the hash family reproducible.
func NewSketcher(length int, seed uint64) *Sketcher {
	s := &Sketcher{seeds: make([]uint64, length)}
	x := seed
	for i := range s.seeds {
		x = splitmix64(x + uint64(i) + 1)
		s.seeds[i] = x
	}
	return s
}

// Length returns the signature length.
func (s *Sketcher) Length() int { return len(s.seeds) }

// Sketch computes the min-hash signature of the element set. An empty set
// yields a signature of all ^uint64(0), which never collides with non-empty
// signatures in banding (bucket keys include the band index).
func (s *Sketcher) Sketch(set []uint64) []uint64 {
	sig := make([]uint64, len(s.seeds))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, el := range set {
		for i, seed := range s.seeds {
			if h := splitmix64(el ^ seed); h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// SketchStrings hashes the strings and sketches the resulting set.
func (s *Sketcher) SketchStrings(set []string) []uint64 {
	ids := make([]uint64, len(set))
	for i, el := range set {
		ids[i] = HashString(el)
	}
	return s.Sketch(ids)
}

// EstimateJaccard estimates the Jaccard similarity of the sets behind two
// equal-length signatures as the fraction of agreeing rows.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// LSH bands signatures into buckets: signatures agreeing on all rows of at
// least one band land in a common bucket. The dissertation sums the row
// hashes within a band ("combining the two ids in each band by summing up
// their ids, losing the order among them", Sec. 4.4.2), which this
// implementation follows.
type LSH struct {
	Bands int
	Rows  int
}

// BucketKeys returns one bucket key per band for the signature, which must
// have length ≥ Bands*Rows.
func (l LSH) BucketKeys(sig []uint64) []uint64 {
	keys := make([]uint64, l.Bands)
	for b := 0; b < l.Bands; b++ {
		var sum uint64
		for r := 0; r < l.Rows; r++ {
			sum += sig[b*l.Rows+r]
		}
		// Mix the band index in so identical sums in different bands
		// do not alias.
		keys[b] = splitmix64(sum ^ (uint64(b+1) * 0x9e3779b97f4a7c15))
	}
	return keys
}

// SignatureLength returns the required signature length Bands*Rows.
func (l LSH) SignatureLength() int { return l.Bands * l.Rows }

// Index groups items by their LSH buckets and enumerates candidate pairs.
type Index struct {
	lsh     LSH
	buckets map[uint64][]int
	n       int
}

// NewIndex creates an empty LSH index.
func NewIndex(lsh LSH) *Index {
	return &Index{lsh: lsh, buckets: make(map[uint64][]int)}
}

// Add inserts an item id with its signature.
func (ix *Index) Add(id int, sig []uint64) {
	for _, k := range ix.lsh.BucketKeys(sig) {
		ix.buckets[k] = append(ix.buckets[k], id)
	}
	ix.n++
}

// Len returns the number of items added.
func (ix *Index) Len() int { return ix.n }

// CandidatePairs returns the deduplicated id pairs (a < b) sharing at least
// one bucket, sorted for determinism.
func (ix *Index) CandidatePairs() [][2]int {
	seen := make(map[[2]int]bool)
	for _, ids := range ix.buckets {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}] = true
			}
		}
	}
	pairs := make([][2]int, 0, len(seen))
	for p := range seen {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// Buckets returns the bucket contents (for tests and diagnostics).
func (ix *Index) Buckets() map[uint64][]int { return ix.buckets }
