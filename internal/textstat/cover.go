package textstat

import (
	"slices"

	"aida/internal/pool"
)

// A Matcher scores partial keyphrase matches against one document, following
// Section 3.3.4: for each keyphrase it finds the shortest token window (the
// "cover") that contains a maximal number of the phrase's words, and scores
//
//	score(q) = z * (Σ_{w∈cover} weight(w) / Σ_{w∈q} weight(w))²
//
// where z = #matching-words / cover-length (Eq. 3.4). The squared factor
// penalizes phrases with missing words superlinearly.
type Matcher struct {
	positions map[string][]int // lower-cased word → sorted token positions
	length    int
}

// NewMatcher indexes the (lower-cased, stopword-filtered) document tokens.
func NewMatcher(docWords []string) *Matcher {
	m := &Matcher{positions: make(map[string][]int, len(docWords)), length: len(docWords)}
	for i, w := range docWords {
		m.positions[w] = append(m.positions[w], i)
	}
	return m
}

// Contains reports whether word occurs in the document.
func (m *Matcher) Contains(word string) bool { return len(m.positions[word]) > 0 }

// Cover describes the best partial match of one phrase.
type Cover struct {
	Matched int      // number of distinct phrase words found
	Length  int      // token length of the shortest cover window
	Words   []string // the distinct phrase words found, in phrase order
}

// occurrence pairs a document position with the phrase-word index it matches.
type occurrence struct {
	pos  int
	word int
}

// FindCover computes the shortest window containing a maximal number of
// distinct phrase words. The zero Cover (Matched==0) means no phrase word
// occurs in the document.
func (m *Matcher) FindCover(phraseWords []string) Cover {
	// Distinct phrase words that occur at all.
	type wordOcc struct {
		word string
		idx  int
		pos  []int
	}
	seen := map[string]bool{}
	var present []wordOcc
	for _, w := range phraseWords {
		if seen[w] {
			continue
		}
		seen[w] = true
		if p := m.positions[w]; len(p) > 0 {
			present = append(present, wordOcc{word: w, idx: len(present), pos: p})
		}
	}
	if len(present) == 0 {
		return Cover{}
	}
	words := make([]string, len(present))
	var occs []occurrence
	for _, wo := range present {
		words[wo.idx] = wo.word
		for _, p := range wo.pos {
			occs = append(occs, occurrence{pos: p, word: wo.idx})
		}
	}
	slices.SortFunc(occs, func(a, b occurrence) int { return a.pos - b.pos })

	// Sliding window over occurrences: find the minimal window containing
	// all present words. All `present` words occur somewhere, so a full
	// cover always exists; the cover length is minimized.
	need := len(present)
	counts := make([]int, need)
	have := 0
	best := -1
	lo := 0
	for hi := 0; hi < len(occs); hi++ {
		if counts[occs[hi].word] == 0 {
			have++
		}
		counts[occs[hi].word]++
		for have == need {
			span := occs[hi].pos - occs[lo].pos + 1
			if best < 0 || span < best {
				best = span
			}
			counts[occs[lo].word]--
			if counts[occs[lo].word] == 0 {
				have--
			}
			lo++
		}
	}
	return Cover{Matched: need, Length: best, Words: words}
}

// Weighter returns a weight for a (phrase-)word in the context of a given
// entity; AIDA uses either NPMI or keyword IDF weights (Sec. 3.3.4).
type Weighter func(word string) float64

// ScoreCover evaluates Eq. 3.4 for a phrase with the given cover.
func ScoreCover(c Cover, phraseWords []string, weight Weighter) float64 {
	if c.Matched == 0 || c.Length <= 0 {
		return 0
	}
	var matchedW, totalW float64
	seen := map[string]bool{}
	for _, w := range phraseWords {
		if seen[w] {
			continue
		}
		seen[w] = true
		totalW += weight(w)
	}
	for _, w := range c.Words {
		matchedW += weight(w)
	}
	if totalW <= 0 {
		return 0
	}
	z := float64(c.Matched) / float64(c.Length)
	frac := matchedW / totalW
	return z * frac * frac
}

// coverScratch holds the per-call buffers of ScorePhrase. Keyphrase
// scoring runs once per (candidate, keyphrase) pair — tens of thousands of
// calls per document — so the distinct-word list, occurrence list and
// window counters are recycled instead of reallocated per call.
type coverScratch struct {
	words  []string
	occs   []occurrence
	counts []int
}

var coverBufs = pool.Scratch[coverScratch]{
	New: func() *coverScratch { return &coverScratch{} },
	// Drop the string references so a pooled scratch cannot pin phrase
	// words of a finished document in memory.
	Reset: func(sc *coverScratch) {
		clear(sc.words)
		sc.words = sc.words[:0]
		sc.occs = sc.occs[:0]
		sc.counts = sc.counts[:0]
	},
}

// ScorePhrase indexes and scores a phrase against the document in one step.
// It computes exactly ScoreCover(m.FindCover(phraseWords), ...) but fuses
// the two passes over pooled scratch, with no per-call map or slice
// allocations: the dominant cost of the naive form.
func (m *Matcher) ScorePhrase(phraseWords []string, weight Weighter) float64 {
	sc := coverBufs.Get()
	words := sc.words[:0] // distinct phrase words, in phrase order
	occs := sc.occs[:0]
	need := 0
	var matchedW, totalW float64
	for _, w := range phraseWords {
		dup := false
		for _, d := range words {
			if d == w {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		words = append(words, w)
		wt := weight(w)
		totalW += wt
		if p := m.positions[w]; len(p) > 0 {
			matchedW += wt
			for _, pos := range p {
				occs = append(occs, occurrence{pos: pos, word: need})
			}
			need++
		}
	}
	if need == 0 {
		sc.words, sc.occs = words, occs
		coverBufs.Put(sc)
		return 0
	}
	// Positions are distinct across words (one token per position), so the
	// sort order is unique and matches FindCover's.
	slices.SortFunc(occs, func(a, b occurrence) int { return a.pos - b.pos })
	counts := sc.counts
	for len(counts) < need {
		counts = append(counts, 0)
	}
	counts = counts[:need]
	for i := range counts {
		counts[i] = 0
	}
	have := 0
	best := -1
	lo := 0
	for hi := 0; hi < len(occs); hi++ {
		if counts[occs[hi].word] == 0 {
			have++
		}
		counts[occs[hi].word]++
		for have == need {
			span := occs[hi].pos - occs[lo].pos + 1
			if best < 0 || span < best {
				best = span
			}
			counts[occs[lo].word]--
			if counts[occs[lo].word] == 0 {
				have--
			}
			lo++
		}
	}
	sc.words, sc.occs, sc.counts = words, occs, counts
	coverBufs.Put(sc)
	if best <= 0 || totalW <= 0 {
		return 0
	}
	z := float64(need) / float64(best)
	frac := matchedW / totalW
	return z * frac * frac
}
