// Package textstat provides the statistical weighting and partial-match
// scoring machinery of the dissertation: IDF (Eq. 3.5), normalized pointwise
// mutual information (Eq. 3.1), normalized mutual information µ (Eq. 4.1),
// and the keyphrase cover-window scoring used by AIDA's mention–entity
// similarity (Eq. 3.4, 3.6).
package textstat

import "math"

// IDF returns the inverse document frequency log2(n/df) of Eq. 3.5.
// A zero document frequency yields 0 (the term is unknown, not infinitely
// specific — unknown terms carry no evidence).
func IDF(n, df float64) float64 {
	if df <= 0 || n <= 0 {
		return 0
	}
	v := math.Log2(n / df)
	if v < 0 {
		return 0
	}
	return v
}

// NPMI computes normalized pointwise mutual information (Eq. 3.1/3.2):
//
//	npmi = pmi(e,k) / -log p(e,k),  pmi = log(p(e,k)/(p(e)p(k)))
//
// Inputs are probabilities in (0,1]. Degenerate inputs yield 0.
func NPMI(pJoint, pE, pK float64) float64 {
	if pJoint <= 0 || pE <= 0 || pK <= 0 {
		return 0
	}
	if pJoint >= 1 {
		return 1
	}
	pmi := math.Log(pJoint / (pE * pK))
	return pmi / -math.Log(pJoint)
}

// ContingencyMI computes the µ weight of Eq. 4.1 — normalized mutual
// information between two binary events — from the joint occurrence counts
// of the 2×2 contingency table:
//
//	n11: both occur, n10: only the first, n01: only the second, n00: neither.
//
// The result is in [0,1]: 1 for identical events, 0 for independent ones.
func ContingencyMI(n11, n10, n01, n00 float64) float64 {
	n := n11 + n10 + n01 + n00
	if n <= 0 {
		return 0
	}
	pe := (n11 + n10) / n
	pt := (n11 + n01) / n
	he := binaryEntropy(pe)
	ht := binaryEntropy(pt)
	if he+ht == 0 {
		return 0
	}
	het := 0.0
	for _, p := range []float64{n11 / n, n10 / n, n01 / n, n00 / n} {
		het += plogp(p)
	}
	mu := 2 * (he + ht - het) / (he + ht)
	if mu < 0 {
		return 0
	}
	if mu > 1 {
		return 1
	}
	return mu
}

func binaryEntropy(p float64) float64 { return plogp(p) + plogp(1-p) }

func plogp(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return -p * math.Log2(p)
}
