package textstat

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIDF(t *testing.T) {
	if !almost(IDF(8, 2), 2) {
		t.Errorf("IDF(8,2) = %v, want 2", IDF(8, 2))
	}
	if IDF(8, 0) != 0 {
		t.Errorf("IDF with zero df must be 0")
	}
	if IDF(4, 8) != 0 {
		t.Errorf("IDF must not go negative")
	}
}

func TestNPMIBounds(t *testing.T) {
	// Perfectly correlated events: npmi -> 1.
	if got := NPMI(0.1, 0.1, 0.1); !almost(got, 1) {
		t.Errorf("perfect correlation: got %v", got)
	}
	// Independent events: npmi == 0.
	if got := NPMI(0.25, 0.5, 0.5); !almost(got, 0) {
		t.Errorf("independence: got %v", got)
	}
	// Anti-correlated events yield negative values.
	if got := NPMI(0.01, 0.5, 0.5); got >= 0 {
		t.Errorf("anti-correlation should be negative, got %v", got)
	}
	if NPMI(0, 0.5, 0.5) != 0 {
		t.Errorf("degenerate input must be 0")
	}
}

func TestNPMIRange(t *testing.T) {
	f := func(a, b, c uint8) bool {
		pj := (float64(a%100) + 1) / 102
		pe := math.Max(pj, (float64(b%100)+1)/102)
		pk := math.Max(pj, (float64(c%100)+1)/102)
		v := NPMI(pj, pe, pk)
		return v <= 1+1e-9 && v >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContingencyMI(t *testing.T) {
	// Identical events: µ = 1.
	if got := ContingencyMI(50, 0, 0, 50); !almost(got, 1) {
		t.Errorf("identical events: got %v", got)
	}
	// Independent events: µ = 0.
	if got := ContingencyMI(25, 25, 25, 25); !almost(got, 0) {
		t.Errorf("independent events: got %v", got)
	}
	// Partial association is strictly between.
	got := ContingencyMI(40, 10, 10, 40)
	if got <= 0 || got >= 1 {
		t.Errorf("partial association out of range: %v", got)
	}
}

func TestContingencyMIRange(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		v := ContingencyMI(float64(a), float64(b), float64(c), float64(d))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func unitWeight(string) float64 { return 1 }

func TestFindCoverExact(t *testing.T) {
	m := NewMatcher([]string{"grammy", "award", "winner", "of", "prizes"})
	c := m.FindCover([]string{"grammy", "award", "winner"})
	if c.Matched != 3 || c.Length != 3 {
		t.Fatalf("got %+v, want matched=3 len=3", c)
	}
}

func TestFindCoverPaperExample(t *testing.T) {
	// "winner of many prizes including the Grammy": cover length 7 for
	// keyphrase "Grammy award winner" (2 of 3 words matched).
	doc := []string{"winner", "of", "many", "prizes", "including", "the", "grammy"}
	m := NewMatcher(doc)
	c := m.FindCover([]string{"grammy", "award", "winner"})
	if c.Matched != 2 {
		t.Fatalf("matched = %d, want 2", c.Matched)
	}
	if c.Length != 7 {
		t.Fatalf("cover length = %d, want 7", c.Length)
	}
}

func TestFindCoverShortest(t *testing.T) {
	// The words co-occur twice; the shorter window must win.
	doc := []string{"rock", "x", "x", "x", "hard", "y", "hard", "rock"}
	m := NewMatcher(doc)
	c := m.FindCover([]string{"hard", "rock"})
	if c.Length != 2 {
		t.Fatalf("cover length = %d, want 2", c.Length)
	}
}

func TestFindCoverNoMatch(t *testing.T) {
	m := NewMatcher([]string{"unrelated", "words"})
	c := m.FindCover([]string{"grammy", "award"})
	if c.Matched != 0 {
		t.Fatalf("got %+v, want no match", c)
	}
}

func TestFindCoverDuplicatePhraseWords(t *testing.T) {
	m := NewMatcher([]string{"new", "york", "new", "york"})
	c := m.FindCover([]string{"new", "york", "new"})
	if c.Matched != 2 { // distinct words only
		t.Fatalf("matched = %d, want 2", c.Matched)
	}
	if c.Length != 2 {
		t.Fatalf("length = %d, want 2", c.Length)
	}
}

func TestScoreCoverFullMatch(t *testing.T) {
	m := NewMatcher([]string{"hard", "rock"})
	got := m.ScorePhrase([]string{"hard", "rock"}, unitWeight)
	if !almost(got, 1) { // z = 2/2, frac = 1
		t.Fatalf("full adjacent match should score 1, got %v", got)
	}
}

func TestScoreCoverPartialPenalty(t *testing.T) {
	doc := []string{"winner", "of", "many", "prizes", "including", "the", "grammy"}
	m := NewMatcher(doc)
	got := m.ScorePhrase([]string{"grammy", "award", "winner"}, unitWeight)
	want := (2.0 / 7.0) * (2.0 / 3.0) * (2.0 / 3.0)
	if !almost(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestScoreCoverWeighted(t *testing.T) {
	doc := []string{"engine", "stuff"}
	m := NewMatcher(doc)
	w := func(word string) float64 {
		if word == "engine" {
			return 3
		}
		return 1
	}
	got := m.ScorePhrase([]string{"search", "engine"}, w)
	want := (1.0 / 1.0) * (3.0 / 4.0) * (3.0 / 4.0)
	if !almost(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestScoreMonotoneInMatches(t *testing.T) {
	// More matched words must never reduce the score when the cover is tight.
	full := NewMatcher([]string{"grammy", "award", "winner"})
	partial := NewMatcher([]string{"grammy", "award"})
	phrase := []string{"grammy", "award", "winner"}
	if full.ScorePhrase(phrase, unitWeight) <= partial.ScorePhrase(phrase, unitWeight) {
		t.Fatal("full match should outscore partial match")
	}
}

// Property: scores are always in [0, 1] for unit weights.
func TestScoreRange(t *testing.T) {
	f := func(doc, phrase []string) bool {
		if len(phrase) == 0 {
			return true
		}
		m := NewMatcher(doc)
		s := m.ScorePhrase(phrase, unitWeight)
		return s >= 0 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindCover(b *testing.B) {
	doc := make([]string, 0, 1000)
	for i := 0; i < 200; i++ {
		doc = append(doc, "a", "b", "c", "grammy", "award")
	}
	m := NewMatcher(doc)
	phrase := []string{"grammy", "award", "winner"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.FindCover(phrase)
	}
}
