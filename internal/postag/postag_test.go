package postag

import (
	"reflect"
	"testing"

	"aida/internal/tokenizer"
)

func tagsOf(tagged []Tagged) []Tag {
	out := make([]Tag, len(tagged))
	for i, t := range tagged {
		out[i] = t.Tag
	}
	return out
}

func TestTagBasicSentence(t *testing.T) {
	var tg Tagger
	tagged := tg.TagText("The black fighter performed in Berlin.")
	want := []Tag{Determiner, Noun, Noun, Verb, Preposition, ProperNoun, Punctuation}
	if !reflect.DeepEqual(tagsOf(tagged), want) {
		t.Fatalf("got %v want %v", tagsOf(tagged), want)
	}
}

func TestTagProperNounsMidSentence(t *testing.T) {
	var tg Tagger
	tagged := tg.TagText("They performed Kashmir with Page.")
	byText := map[string]Tag{}
	for _, tok := range tagged {
		byText[tok.Text] = tok.Tag
	}
	if byText["Kashmir"] != ProperNoun {
		t.Errorf("Kashmir tagged %v", byText["Kashmir"])
	}
	if byText["Page"] != ProperNoun {
		t.Errorf("Page tagged %v", byText["Page"])
	}
	if byText["performed"] != Verb {
		t.Errorf("performed tagged %v", byText["performed"])
	}
}

func TestTagAcronym(t *testing.T) {
	var tg Tagger
	tagged := tg.TagText("officials from NATO met")
	if tagged[2].Tag != ProperNoun {
		t.Errorf("NATO tagged %v", tagged[2].Tag)
	}
}

func TestTagNumberAndSuffixes(t *testing.T) {
	var tg Tagger
	tagged := tg.TagText("the musical group quickly released 1976 recordings")
	byText := map[string]Tag{}
	for _, tok := range tagged {
		byText[tok.Text] = tok.Tag
	}
	if byText["musical"] != Adjective {
		t.Errorf("musical tagged %v", byText["musical"])
	}
	if byText["quickly"] != Adverb {
		t.Errorf("quickly tagged %v", byText["quickly"])
	}
	if byText["1976"] != Number {
		t.Errorf("1976 tagged %v", byText["1976"])
	}
}

func TestTaggerLexiconOverride(t *testing.T) {
	tg := Tagger{Lexicon: map[string]Tag{"rock": Adjective}}
	tagged := tg.TagText("loud rock music")
	if tagged[1].Tag != Adjective {
		t.Errorf("override ignored: rock tagged %v", tagged[1].Tag)
	}
}

func TestExtractKeyphrasesProperNouns(t *testing.T) {
	var tg Tagger
	got := ExtractKeyphraseStrings(&tg, "officials at the Bank of England met Robert Plant")
	want := map[string]bool{"Bank of England": true, "Robert Plant": true}
	found := 0
	for _, p := range got {
		if want[p] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("keyphrases %v missing expected proper-noun spans", got)
	}
}

func TestExtractKeyphrasesTechnicalTerms(t *testing.T) {
	var tg Tagger
	got := ExtractKeyphraseStrings(&tg, "the secret surveillance program used a powerful search engine")
	asSet := map[string]bool{}
	for _, p := range got {
		asSet[p] = true
	}
	if !asSet["secret surveillance program"] && !asSet["surveillance program"] {
		t.Errorf("missing technical term in %v", got)
	}
	if !asSet["powerful search engine"] && !asSet["search engine"] {
		t.Errorf("missing search engine phrase in %v", got)
	}
}

func TestExtractKeyphrasesEndsInNoun(t *testing.T) {
	var tg Tagger
	tagged := tg.TagText("an economic situation")
	spans := ExtractKeyphrases(tagged)
	for _, s := range spans {
		if s[len(s)-1].Tag != Noun && s[len(s)-1].Tag != ProperNoun {
			t.Errorf("span %q does not end in a noun", PhraseText(s))
		}
	}
}

func TestExtractKeyphrasesNoCrossSentence(t *testing.T) {
	var tg Tagger
	got := ExtractKeyphraseStrings(&tg, "He met Robert. Plant sang.")
	for _, p := range got {
		if p == "Robert . Plant" || p == "Robert Plant" {
			t.Errorf("keyphrase crosses sentence boundary: %q", p)
		}
	}
}

func TestPhraseText(t *testing.T) {
	var tg Tagger
	tagged := tg.TagTokens(tokenizer.Tokenize("hard rock"))
	spans := ExtractKeyphrases(tagged)
	if len(spans) == 0 || PhraseText(spans[0]) != "hard rock" {
		t.Fatalf("got %v", spans)
	}
}

func BenchmarkTagText(b *testing.B) {
	var tg Tagger
	text := "Washington's program Prism was revealed by the whistleblower Snowden in a secret surveillance operation."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tg.TagText(text)
	}
}
