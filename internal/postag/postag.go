// Package postag implements a lightweight part-of-speech tagger and the
// part-of-speech keyphrase patterns of the dissertation's Appendix A.
//
// The dissertation uses the Stanford POS tagger to extract keyphrase
// candidates — proper-noun sequences and "technical terms" in the sense of
// Justeson & Katz [JK95] — from sentences surrounding high-confidence
// mentions (Sec. 5.5.1). This package provides an equivalent, dependency-free
// tagger: a closed-class lexicon plus suffix and shape rules, which is ample
// for the pattern extraction the pipeline needs.
package postag

import (
	"strings"

	"aida/internal/tokenizer"
)

// Tag is a coarse part-of-speech tag.
type Tag int

// Coarse tags. The keyphrase patterns only distinguish nouns, proper nouns,
// adjectives and the preposition "of"; everything else is treated as a
// boundary.
const (
	Noun Tag = iota
	ProperNoun
	Adjective
	Verb
	Adverb
	Determiner
	Preposition
	Pronoun
	Conjunction
	Number
	Punctuation
	Other
)

var tagNames = [...]string{
	"NN", "NNP", "JJ", "VB", "RB", "DT", "IN", "PRP", "CC", "CD", "PUNCT", "X",
}

// String returns the Penn-Treebank-style shorthand of the tag.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return "X"
}

// Tagged is a token together with its assigned tag.
type Tagged struct {
	tokenizer.Token
	Tag Tag
}

// closed-class word lexicon (lower-cased).
var lexicon = map[string]Tag{
	// determiners
	"a": Determiner, "an": Determiner, "the": Determiner, "this": Determiner,
	"that": Determiner, "these": Determiner, "those": Determiner,
	"his": Determiner, "her": Determiner, "its": Determiner, "their": Determiner,
	"some": Determiner, "any": Determiner, "each": Determiner, "every": Determiner,
	// prepositions / subordinating conjunctions
	"of": Preposition, "in": Preposition, "on": Preposition, "at": Preposition,
	"by": Preposition, "for": Preposition, "with": Preposition, "from": Preposition,
	"to": Preposition, "into": Preposition, "about": Preposition,
	"against": Preposition, "between": Preposition, "during": Preposition,
	"after": Preposition, "before": Preposition, "under": Preposition,
	"over": Preposition, "near": Preposition,
	// pronouns
	"i": Pronoun, "you": Pronoun, "he": Pronoun, "she": Pronoun, "it": Pronoun,
	"we": Pronoun, "they": Pronoun, "him": Pronoun, "them": Pronoun,
	"who": Pronoun, "which": Pronoun, "whom": Pronoun,
	// conjunctions
	"and": Conjunction, "or": Conjunction, "but": Conjunction, "nor": Conjunction,
	// common verbs (auxiliaries and news verbs)
	"is": Verb, "are": Verb, "was": Verb, "were": Verb, "be": Verb, "been": Verb,
	"being": Verb, "has": Verb, "have": Verb, "had": Verb, "do": Verb,
	"does": Verb, "did": Verb, "will": Verb, "would": Verb, "can": Verb,
	"could": Verb, "should": Verb, "may": Verb, "might": Verb, "must": Verb,
	"said": Verb, "says": Verb, "say": Verb, "made": Verb, "make": Verb,
	"won": Verb, "lost": Verb, "played": Verb, "plays": Verb, "play": Verb,
	"performed": Verb, "recorded": Verb, "released": Verb, "wrote": Verb,
	"written": Verb, "announced": Verb, "revealed": Verb, "signed": Verb,
	"beat": Verb, "scored": Verb, "met": Verb, "visited": Verb, "founded": Verb,
	// adverbs
	"very": Adverb, "also": Adverb, "not": Adverb, "never": Adverb,
	"now": Adverb, "then": Adverb, "here": Adverb, "there": Adverb,
	"again": Adverb, "still": Adverb, "already": Adverb,
	// frequent adjectives whose suffixes are uninformative
	"new": Adjective, "old": Adjective, "good": Adjective, "big": Adjective,
	"high": Adjective, "low": Adjective, "late": Adjective, "early": Adjective,
	"former": Adjective, "chief": Adjective, "top": Adjective,
}

// adjectiveSuffixes trigger the Adjective tag for open-class words.
var adjectiveSuffixes = []string{"al", "ous", "ive", "able", "ible", "ish", "ic", "ian", "ese", "ful", "less"}

// verbSuffixes trigger the Verb tag for open-class lower-case words.
var verbSuffixes = []string{"ing", "ize", "ise", "ated", "ates"}

// adverbSuffix marks adverbs.
const adverbSuffix = "ly"

// Tagger assigns coarse POS tags. The zero value is ready to use; Lexicon
// entries (lower-cased word → tag) may be added to override the defaults.
type Tagger struct {
	Lexicon map[string]Tag
}

// Tag tags a single token given whether it starts a sentence.
func (tg *Tagger) tagOne(tok tokenizer.Token, sentenceStart bool) Tag {
	text := tok.Text
	lower := strings.ToLower(text)
	if tok.IsPunct() {
		return Punctuation
	}
	if tok.IsNumeric() {
		return Number
	}
	if tg != nil && tg.Lexicon != nil {
		if t, ok := tg.Lexicon[lower]; ok {
			return t
		}
	}
	if t, ok := lexicon[lower]; ok {
		return t
	}
	switch tokenizer.TokenShape(text) {
	case tokenizer.ShapeUpper:
		return ProperNoun // acronyms: "NATO", "UN"
	case tokenizer.ShapeCap, tokenizer.ShapeMixed:
		if !sentenceStart {
			return ProperNoun
		}
		// Sentence-initial capitalized unknown words are usually proper
		// nouns in news-wire ("Dylan released ..."), unless they carry a
		// clear non-noun suffix.
		if hasSuffix(lower, verbSuffixes) {
			return Verb
		}
		return ProperNoun
	}
	if strings.HasSuffix(lower, adverbSuffix) && len(lower) > 4 {
		return Adverb
	}
	if hasSuffix(lower, adjectiveSuffixes) {
		return Adjective
	}
	if hasSuffix(lower, verbSuffixes) {
		return Verb
	}
	if strings.HasSuffix(lower, "ed") && len(lower) >= 4 {
		return Verb
	}
	return Noun
}

func hasSuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) && len(s) > len(suf)+1 {
			return true
		}
	}
	return false
}

// TagTokens tags a token slice (as produced by tokenizer.Tokenize).
func (tg *Tagger) TagTokens(tokens []tokenizer.Token) []Tagged {
	out := make([]Tagged, len(tokens))
	prevSentence := -1
	for i, tok := range tokens {
		start := tok.Sentence != prevSentence
		out[i] = Tagged{Token: tok, Tag: tg.tagOne(tok, start)}
		prevSentence = tok.Sentence
	}
	return out
}

// TagText tokenizes and tags text in one step.
func (tg *Tagger) TagText(text string) []Tagged {
	return tg.TagTokens(tokenizer.Tokenize(text))
}

// Keyphrase extraction patterns (Appendix A).
//
// Two pattern families are extracted, mirroring the dissertation:
//
//   - proper-noun sequences: NNP+ (optionally joined by "of": "Bank of
//     England"), capturing names of people, organizations and places;
//   - technical terms in the Justeson & Katz sense: (JJ|NN)* NN, e.g.
//     "surveillance program", "hard rock", "search engine".
//
// Single stopword-only or single-determiner phrases are never produced.

// ExtractKeyphrases returns the keyphrase candidate token spans in tagged,
// as slices of the underlying tokens.
func ExtractKeyphrases(tagged []Tagged) [][]Tagged {
	var out [][]Tagged
	i := 0
	for i < len(tagged) {
		t := tagged[i]
		switch t.Tag {
		case ProperNoun:
			j := i + 1
			for j < len(tagged) {
				if tagged[j].Tag == ProperNoun && tagged[j].Sentence == t.Sentence {
					j++
					continue
				}
				// allow one "of" joining two proper noun groups
				if tagged[j].Tag == Preposition && strings.EqualFold(tagged[j].Text, "of") &&
					j+1 < len(tagged) && tagged[j+1].Tag == ProperNoun && tagged[j+1].Sentence == t.Sentence {
					j += 2
					continue
				}
				break
			}
			out = append(out, tagged[i:j])
			i = j
		case Adjective, Noun:
			j := i
			nouns := 0
			for j < len(tagged) && tagged[j].Sentence == t.Sentence &&
				(tagged[j].Tag == Adjective || tagged[j].Tag == Noun) {
				if tagged[j].Tag == Noun {
					nouns++
				}
				j++
			}
			// must end in a noun per [JK95]; trim trailing adjectives
			end := j
			for end > i && tagged[end-1].Tag != Noun {
				end--
			}
			if nouns > 0 && end > i {
				span := tagged[i:end]
				if !allStopwords(span) {
					out = append(out, span)
				}
			}
			i = j
		default:
			i++
		}
	}
	return out
}

func allStopwords(span []Tagged) bool {
	for _, t := range span {
		if !tokenizer.IsStopword(t.Text) {
			return false
		}
	}
	return true
}

// PhraseText renders a keyphrase span as its space-joined surface form.
func PhraseText(span []Tagged) string {
	parts := make([]string, len(span))
	for i, t := range span {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// ExtractKeyphraseStrings tags text and returns the surface forms of all
// extracted keyphrase candidates.
func ExtractKeyphraseStrings(tg *Tagger, text string) []string {
	spans := ExtractKeyphrases(tg.TagTokens(tokenizer.Tokenize(text)))
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = PhraseText(s)
	}
	return out
}
