// Package search implements the entity-centric search application of
// Sec. 6.1 ("Searching for Strings, Things, and Cats"): an inverted index
// over words (strings), disambiguated entities (things) and their semantic
// types (cats), with combined queries and prefix auto-completion of entity
// names.
package search

import (
	"math"
	"sort"
	"strings"

	"aida/internal/kb"
	"aida/internal/tokenizer"
)

// Annotation marks a disambiguated entity occurrence in a document.
type Annotation struct {
	Entity  kb.EntityID
	Surface string
}

// Hit is one ranked search result.
type Hit struct {
	DocID string
	Score float64
}

// Query combines the three search dimensions. All parts are conjunctive
// across dimensions and disjunctive within (standard STICS semantics).
type Query struct {
	Words    []string      // strings
	Entities []kb.EntityID // things
	Types    []string      // cats: expands to all entities of the type
}

// Index is the strings+things+cats inverted index. Create with NewIndex,
// then AddDocument; queries are safe once indexing is done.
type Index struct {
	kb       kb.Store
	wordDocs map[string]map[string]int      // word → doc → tf
	entDocs  map[kb.EntityID]map[string]int // entity → doc → tf
	docLen   map[string]int
	// typeEntities expands a type to its entities.
	typeEntities map[string][]kb.EntityID
	numDocs      int
}

// NewIndex creates an empty index over the given KB (single or sharded).
func NewIndex(k kb.Store) *Index {
	ix := &Index{
		kb:           k,
		wordDocs:     make(map[string]map[string]int),
		entDocs:      make(map[kb.EntityID]map[string]int),
		docLen:       make(map[string]int),
		typeEntities: make(map[string][]kb.EntityID),
	}
	for id := 0; id < k.NumEntities(); id++ {
		e := k.Entity(kb.EntityID(id))
		for _, t := range e.Types {
			ix.typeEntities[t] = append(ix.typeEntities[t], e.ID)
		}
	}
	return ix
}

// AddDocument indexes a document's words and entity annotations.
func (ix *Index) AddDocument(docID, text string, annotations []Annotation) {
	words := tokenizer.ContentWords(text)
	for _, w := range words {
		m := ix.wordDocs[w]
		if m == nil {
			m = make(map[string]int)
			ix.wordDocs[w] = m
		}
		m[docID]++
	}
	for _, a := range annotations {
		if a.Entity == kb.NoEntity {
			continue
		}
		m := ix.entDocs[a.Entity]
		if m == nil {
			m = make(map[string]int)
			ix.entDocs[a.Entity] = m
		}
		m[docID]++
	}
	ix.docLen[docID] = len(words)
	ix.numDocs++
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// idf of a posting list.
func (ix *Index) idf(df int) float64 {
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(ix.numDocs)/float64(df))
}

// Search ranks documents by the tf-idf sum over all query dimensions.
// Documents must match at least one term per non-empty dimension.
func (ix *Index) Search(q Query, limit int) []Hit {
	scores := map[string]float64{}
	wordMatch := map[string]bool{}
	entMatch := map[string]bool{}

	for _, w := range q.Words {
		postings := ix.wordDocs[tokenizer.Normalize(w)]
		idf := ix.idf(len(postings))
		for doc, tf := range postings {
			scores[doc] += float64(tf) * idf
			wordMatch[doc] = true
		}
	}
	ents := append([]kb.EntityID(nil), q.Entities...)
	for _, t := range q.Types {
		ents = append(ents, ix.typeEntities[t]...)
	}
	for _, e := range ents {
		postings := ix.entDocs[e]
		idf := ix.idf(len(postings))
		for doc, tf := range postings {
			// Entity matches are exact semantic evidence: weighted above
			// plain word matches.
			scores[doc] += 2 * float64(tf) * idf
			entMatch[doc] = true
		}
	}

	var hits []Hit
	for doc, s := range scores {
		if len(q.Words) > 0 && !wordMatch[doc] {
			continue
		}
		if (len(q.Entities) > 0 || len(q.Types) > 0) && !entMatch[doc] {
			continue
		}
		// Light length normalization.
		norm := 1 + math.Log(1+float64(ix.docLen[doc]))
		hits = append(hits, Hit{DocID: doc, Score: s / norm})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Complete suggests entities whose canonical name has the given prefix,
// ordered by how often they occur in the indexed collection (the
// auto-completion of Sec. 6.1.2).
func (ix *Index) Complete(prefix string, limit int) []kb.EntityID {
	p := strings.ToLower(prefix)
	type cand struct {
		id   kb.EntityID
		freq int
	}
	var cands []cand
	for id := 0; id < ix.kb.NumEntities(); id++ {
		e := ix.kb.Entity(kb.EntityID(id))
		if strings.HasPrefix(strings.ToLower(e.Name), p) {
			freq := 0
			for _, tf := range ix.entDocs[e.ID] {
				freq += tf
			}
			cands = append(cands, cand{e.ID, freq})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].freq != cands[j].freq {
			return cands[i].freq > cands[j].freq
		}
		return cands[i].id < cands[j].id
	})
	if limit > 0 && len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]kb.EntityID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}
