package search

import (
	"testing"

	"aida/internal/kb"
)

func buildSearchKB() (*kb.KB, kb.EntityID, kb.EntityID, kb.EntityID) {
	b := kb.NewBuilder()
	dylan := b.AddEntity("Bob Dylan", "music", "person", "musician")
	page := b.AddEntity("Jimmy Page", "music", "person", "musician")
	carter := b.AddEntity("Jimmy Carter", "politics", "person", "politician")
	b.AddKeyphrase(dylan, "folk singer")
	b.AddKeyphrase(page, "rock guitarist")
	b.AddKeyphrase(carter, "united states president")
	return b.Build(), dylan, page, carter
}

func TestSearchByWord(t *testing.T) {
	k, dylan, _, _ := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("d1", "Dylan released a folk record in 1976.", []Annotation{{Entity: dylan, Surface: "Dylan"}})
	ix.AddDocument("d2", "The game ended in a draw.", nil)
	hits := ix.Search(Query{Words: []string{"folk"}}, 0)
	if len(hits) != 1 || hits[0].DocID != "d1" {
		t.Fatalf("got %v", hits)
	}
}

func TestSearchByEntity(t *testing.T) {
	k, dylan, page, _ := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("d1", "Dylan played in Newport.", []Annotation{{Entity: dylan, Surface: "Dylan"}})
	ix.AddDocument("d2", "Page played his guitar.", []Annotation{{Entity: page, Surface: "Page"}})
	hits := ix.Search(Query{Entities: []kb.EntityID{page}}, 0)
	if len(hits) != 1 || hits[0].DocID != "d2" {
		t.Fatalf("entity query failed: %v", hits)
	}
}

func TestSearchByType(t *testing.T) {
	k, dylan, page, carter := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("d1", "Dylan sang.", []Annotation{{Entity: dylan}})
	ix.AddDocument("d2", "Page played.", []Annotation{{Entity: page}})
	ix.AddDocument("d3", "Carter spoke.", []Annotation{{Entity: carter}})
	hits := ix.Search(Query{Types: []string{"musician"}}, 0)
	if len(hits) != 2 {
		t.Fatalf("type query should hit 2 docs, got %v", hits)
	}
	hits = ix.Search(Query{Types: []string{"politician"}}, 0)
	if len(hits) != 1 || hits[0].DocID != "d3" {
		t.Fatalf("politician query: %v", hits)
	}
}

func TestSearchConjunctiveDimensions(t *testing.T) {
	k, dylan, page, _ := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("d1", "Dylan sang a folk song.", []Annotation{{Entity: dylan}})
	ix.AddDocument("d2", "Page wrote a folk tune.", []Annotation{{Entity: page}})
	// Word "folk" matches both; entity narrows to d1.
	hits := ix.Search(Query{Words: []string{"folk"}, Entities: []kb.EntityID{dylan}}, 0)
	if len(hits) != 1 || hits[0].DocID != "d1" {
		t.Fatalf("conjunctive query: %v", hits)
	}
}

func TestSearchRankingPrefersFrequency(t *testing.T) {
	k, dylan, _, _ := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("often", "folk folk folk music.", []Annotation{{Entity: dylan}})
	ix.AddDocument("once", "folk is nice overall really.", nil)
	hits := ix.Search(Query{Words: []string{"folk"}}, 0)
	if len(hits) != 2 || hits[0].DocID != "often" {
		t.Fatalf("tf ranking wrong: %v", hits)
	}
}

func TestSearchLimit(t *testing.T) {
	k, dylan, _, _ := buildSearchKB()
	ix := NewIndex(k)
	for i := 0; i < 5; i++ {
		ix.AddDocument(string(rune('a'+i)), "folk music", []Annotation{{Entity: dylan}})
	}
	if hits := ix.Search(Query{Words: []string{"folk"}}, 3); len(hits) != 3 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
}

func TestComplete(t *testing.T) {
	k, dylan, page, _ := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("d1", "text", []Annotation{{Entity: page}, {Entity: page}})
	ix.AddDocument("d2", "text", []Annotation{{Entity: dylan}})
	got := ix.Complete("Jimmy", 10)
	if len(got) != 2 {
		t.Fatalf("want both Jimmys, got %v", got)
	}
	// Jimmy Page occurs more often and must rank first.
	if got[0] != page {
		t.Fatalf("frequency ordering wrong: %v", got)
	}
	if got := ix.Complete("Bob", 10); len(got) != 1 || got[0] != dylan {
		t.Fatalf("prefix Bob: %v", got)
	}
	if got := ix.Complete("Zzz", 10); len(got) != 0 {
		t.Fatalf("unknown prefix should be empty: %v", got)
	}
}

func TestNoEntityAnnotationIgnored(t *testing.T) {
	k, _, _, _ := buildSearchKB()
	ix := NewIndex(k)
	ix.AddDocument("d1", "text", []Annotation{{Entity: kb.NoEntity, Surface: "Unknown"}})
	if hits := ix.Search(Query{Types: []string{"person"}}, 0); len(hits) != 0 {
		t.Fatalf("OOE annotations must not be indexed: %v", hits)
	}
}
