package pool

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}
