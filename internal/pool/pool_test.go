package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var counts [n]atomic.Int32
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachCtxCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var counts [n]atomic.Int32
		err := ForEachCtx(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestForEachCtxCanceled checks that a pre-canceled context stops the
// fan-out before any (sequential) or almost any (parallel) work runs, and
// that ctx.Err() is returned.
func TestForEachCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := ForEachCtx(ctx, 1000, workers, func(int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if c := calls.Load(); c != 0 {
			t.Fatalf("workers=%d: %d fn calls ran after cancellation", workers, c)
		}
	}
}

// TestForEachCtxMidwayCancel cancels from inside fn and checks the
// remaining indices are never started.
func TestForEachCtxMidwayCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		err := ForEachCtx(ctx, 1000, workers, func(int) error {
			if calls.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Workers that already pulled an index may finish it, but the bulk
		// of the range must never start.
		if c := calls.Load(); int(c) >= 1000 {
			t.Fatalf("workers=%d: all %d indices ran despite cancellation", workers, c)
		}
	}
}

// TestForEachCtxFirstError checks that a fn error stops the fan-out and is
// returned.
func TestForEachCtxFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := ForEachCtx(context.Background(), 1000, workers, func(i int) error {
			if calls.Add(1) == 2 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if c := calls.Load(); int(c) >= 1000 {
			t.Fatalf("workers=%d: all %d indices ran despite error", workers, c)
		}
	}
}
