// Package pool provides the bounded index fan-out primitive shared by the
// batch-annotation, coherence-scoring and chunk-harvesting paths.
package pool

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have completed. workers ≤ 1 (or n ≤ 1) runs
// inline. Indices are handed out through a shared counter, so workers
// steal work instead of idling behind a slow stripe; fn must therefore be
// safe for concurrent invocation with distinct indices.
func ForEach(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
