// Package pool provides the bounded index fan-out primitive shared by the
// batch-annotation, coherence-scoring and chunk-harvesting paths, plus the
// typed scratch pool that backs the annotate hot path's per-document
// buffer reuse.
package pool

import (
	"context"
	"sync"
	"sync/atomic"
)

// Scratch is a typed free list of *T built on sync.Pool: the idiom every
// per-document scratch buffer on the annotate hot path shares. New builds
// a fresh value on an empty pool; Reset (optional) is applied on Put so a
// recycled value can never leak one document's state into the next — the
// pooling packages reset eagerly at the recycle point, which keeps the Get
// path allocation- and branch-free.
type Scratch[T any] struct {
	// New constructs a fresh value when the pool is empty (required).
	New func() *T
	// Reset clears a value before it is recycled (nil = no clearing).
	Reset func(*T)

	once sync.Once
	p    sync.Pool
}

// Get returns a cleared scratch value, reusing a recycled one when
// available.
func (s *Scratch[T]) Get() *T {
	s.once.Do(func() { s.p.New = func() any { return s.New() } })
	return s.p.Get().(*T)
}

// Put resets v and makes it available for reuse. v must not be used after
// Put returns.
func (s *Scratch[T]) Put(v *T) {
	if v == nil {
		return
	}
	if s.Reset != nil {
		s.Reset(v)
	}
	s.once.Do(func() { s.p.New = func() any { return s.New() } })
	s.p.Put(v)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have completed. workers ≤ 1 (or n ≤ 1) runs
// inline. Indices are handed out through a shared counter, so workers
// steal work instead of idling behind a slow stripe; fn must therefore be
// safe for concurrent invocation with distinct indices.
func ForEach(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cooperative cancellation and error
// propagation: before each fn call the context is consulted, and once ctx
// is done or any fn call returns a non-nil error, no further index is
// handed out. It returns the first error observed (ctx.Err() for a
// cancellation), or nil when every fn call completed. In-flight fn calls
// are never interrupted — fn itself decides whether to observe ctx — so on
// return all started work has finished and it is safe to read anything fn
// wrote.
func ForEachCtx(ctx context.Context, n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
