package ner

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func surfaces(ms []Mention) []string { return MentionSurfaces(ms) }

func TestRecognizeShapeOnly(t *testing.T) {
	var r Recognizer
	ms := r.Recognize("They performed Kashmir, written by Page and Plant.")
	want := []string{"Kashmir", "Page", "Plant"}
	if !reflect.DeepEqual(surfaces(ms), want) {
		t.Fatalf("got %v want %v", surfaces(ms), want)
	}
}

func TestRecognizeMultiToken(t *testing.T) {
	var r Recognizer
	ms := r.Recognize("He met Robert Plant in New York yesterday.")
	want := []string{"Robert Plant", "New York"}
	if !reflect.DeepEqual(surfaces(ms), want) {
		t.Fatalf("got %v want %v", surfaces(ms), want)
	}
}

func TestRecognizeJoiner(t *testing.T) {
	var r Recognizer
	ms := r.Recognize("officials at the Bank of England intervened")
	want := []string{"Bank of England"}
	if !reflect.DeepEqual(surfaces(ms), want) {
		t.Fatalf("got %v want %v", surfaces(ms), want)
	}
}

func TestRecognizeAcronym(t *testing.T) {
	var r Recognizer
	ms := r.Recognize("the NSA and the FBI traded files")
	want := []string{"NSA", "FBI"}
	if !reflect.DeepEqual(surfaces(ms), want) {
		t.Fatalf("got %v want %v", surfaces(ms), want)
	}
}

func TestRecognizeOffsets(t *testing.T) {
	var r Recognizer
	text := "Japan began the defence of their Asian Cup title against Syria."
	for _, m := range r.Recognize(text) {
		if text[m.Start:m.End] != m.Text {
			t.Errorf("offsets of %q do not match slice %q", m.Text, text[m.Start:m.End])
		}
	}
}

func TestLexiconLongestMatch(t *testing.T) {
	lex := LexiconFunc(func(n string) bool {
		switch n {
		case "NEWPORT FOLK FESTIVAL", "NEWPORT":
			return true
		}
		return false
	})
	r := Recognizer{Lexicon: lex}
	ms := r.Recognize("Dylan played at the Newport Folk Festival there.")
	found := false
	for _, m := range ms {
		if m.Text == "Newport Folk Festival" {
			found = true
		}
		if m.Text == "Newport" {
			t.Errorf("shorter match preferred over longest")
		}
	}
	if !found {
		t.Fatalf("longest dictionary match not found in %v", surfaces(ms))
	}
}

func TestCaseSensitiveShortNames(t *testing.T) {
	if Normalized("US") != "US" {
		t.Errorf("short names must stay case-sensitive")
	}
	if Normalized("us") != "us" {
		t.Errorf("short names must stay case-sensitive")
	}
	if Normalized("Apple") != "APPLE" {
		t.Errorf("long names are upper-cased, got %q", Normalized("Apple"))
	}
}

func TestSentenceInitialStopword(t *testing.T) {
	var r Recognizer
	ms := r.Recognize("The game ended. Most fans left early.")
	for _, m := range ms {
		if m.Text == "The" || m.Text == "Most" {
			t.Errorf("sentence-initial stopword %q recognized as mention", m.Text)
		}
	}
}

func TestIsAcronym(t *testing.T) {
	cases := map[string]bool{"USA": true, "UN": true, "Apple": false, "A": false, "us": false}
	for in, want := range cases {
		if got := IsAcronym(in); got != want {
			t.Errorf("IsAcronym(%q) = %v want %v", in, got, want)
		}
	}
}

func TestMaxTokens(t *testing.T) {
	r := Recognizer{MaxTokens: 2}
	ms := r.Recognize("the International Business Machines Corporation building")
	for _, m := range ms {
		if n := len(strings.Fields(m.Text)); n > 2 {
			t.Errorf("mention %q exceeds MaxTokens", m.Text)
		}
	}
}

// Property: mentions never overlap, are in order, and slice back correctly.
func TestRecognizeInvariants(t *testing.T) {
	var r Recognizer
	f := func(words []string) bool {
		text := strings.Join(words, " ")
		prevEnd := -1
		for _, m := range r.Recognize(text) {
			if m.Start < prevEnd || m.End <= m.Start {
				return false
			}
			if m.End > len(text) || text[m.Start:m.End] != m.Text {
				return false
			}
			prevEnd = m.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecognize(b *testing.B) {
	var r Recognizer
	text := strings.Repeat("Italy recalled Marcello Cuttitta for their friendly against Scotland at Murrayfield. ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Recognize(text)
	}
}
