// Package ner implements a named entity recognizer producing the mention
// spans that the disambiguation stage consumes.
//
// The dissertation uses the Stanford NER tagger as a black-box preprocessing
// step (Sec. 3.3.1); all its experiments assume mention spans are given.
// This package is a faithful functional stand-in: a dictionary- and
// shape-driven BIO recognizer. It marks maximal capitalized token sequences
// and all-upper-case acronyms as mentions, preferring longest matches
// against a name dictionary when one is supplied, and applying the
// dissertation's case rules: names of three or fewer characters match
// case-sensitively (to separate "US" from "us"), longer mentions are matched
// case-insensitively (Sec. 3.3.2).
package ner

import (
	"strings"
	"unicode"

	"aida/internal/tokenizer"
)

// Mention is a recognized entity name occurrence in a document.
type Mention struct {
	Text       string // surface form as it appears in the text
	Start, End int    // byte offsets into the document
	TokenStart int    // index of the first token of the mention
	TokenEnd   int    // index one past the last token
	Sentence   int    // sentence index of the mention
}

// Normalized returns the dictionary lookup key for the mention: surface form
// as-is for names of up to three characters, upper-cased otherwise
// (Sec. 3.3.2).
func Normalized(surface string) string {
	if len([]rune(surface)) <= 3 {
		return surface
	}
	return strings.ToUpper(surface)
}

// Lexicon answers whether a (multi-token) name is known. A nil Lexicon
// disables dictionary lookups and the recognizer falls back to shape rules
// alone.
type Lexicon interface {
	// HasName reports whether the normalized name is in the dictionary.
	HasName(normalized string) bool
}

// LexiconFunc adapts a function to the Lexicon interface.
type LexiconFunc func(string) bool

// HasName implements Lexicon.
func (f LexiconFunc) HasName(n string) bool { return f(n) }

// Recognizer finds entity mentions in text. The zero value works with shape
// rules only; set Lexicon to prefer dictionary-confirmed spans.
type Recognizer struct {
	Lexicon Lexicon
	// MaxTokens bounds the length of a mention in tokens (default 5).
	MaxTokens int
}

func (r *Recognizer) maxTokens() int {
	if r.MaxTokens <= 0 {
		return 5
	}
	return r.MaxTokens
}

// isNameToken reports whether the token can be part of an entity name.
func isNameToken(t tokenizer.Token, sentenceStart bool) bool {
	switch tokenizer.TokenShape(t.Text) {
	case tokenizer.ShapeUpper:
		// Acronyms ("USA", "FBI") qualify; single letters do not.
		return len([]rune(t.Text)) >= 2
	case tokenizer.ShapeCap, tokenizer.ShapeMixed:
		return true
	}
	return false
}

// nameJoiner tokens may appear inside a multi-token name.
func isNameJoiner(t tokenizer.Token) bool {
	switch strings.ToLower(t.Text) {
	case "of", "de", "von", "van", "al":
		return true
	}
	return false
}

// Recognize returns the mentions of text, in document order.
func (r *Recognizer) Recognize(text string) []Mention {
	return r.RecognizeTokens(text, tokenizer.Tokenize(text))
}

// RecognizeTokens is Recognize on a pre-tokenized document.
func (r *Recognizer) RecognizeTokens(text string, tokens []tokenizer.Token) []Mention {
	var mentions []Mention
	prevSentence := -1
	i := 0
	for i < len(tokens) {
		t := tokens[i]
		sentenceStart := t.Sentence != prevSentence
		prevSentence = t.Sentence
		if !isNameToken(t, sentenceStart) {
			i++
			continue
		}
		// Extend to the longest plausible name span within the sentence.
		limit := i + r.maxTokens()
		j := i + 1
		for j < len(tokens) && j < limit && tokens[j].Sentence == t.Sentence {
			if isNameToken(tokens[j], false) {
				j++
				continue
			}
			if isNameJoiner(tokens[j]) && j+1 < len(tokens) && j+1 < limit &&
				tokens[j+1].Sentence == t.Sentence && isNameToken(tokens[j+1], false) {
				j += 2
				continue
			}
			break
		}
		// Prefer the longest dictionary-confirmed sub-span starting at i.
		end := r.bestSpan(text, tokens, i, j, sentenceStart)
		if end < 0 {
			i++
			continue
		}
		first, last := tokens[i], tokens[end-1]
		mentions = append(mentions, Mention{
			Text:       text[first.Start:last.End],
			Start:      first.Start,
			End:        last.End,
			TokenStart: i,
			TokenEnd:   end,
			Sentence:   first.Sentence,
		})
		i = end
	}
	return mentions
}

// bestSpan picks the end (exclusive token index) of the mention starting at
// token i, or -1 if the span should be rejected.
func (r *Recognizer) bestSpan(text string, tokens []tokenizer.Token, i, j int, sentenceStart bool) int {
	if r.Lexicon != nil {
		for end := j; end > i; end-- {
			surface := text[tokens[i].Start:tokens[end-1].End]
			if r.Lexicon.HasName(Normalized(surface)) {
				return end
			}
		}
		// Unknown name: keep shape-based span unless it is a
		// sentence-initial single common-looking word, which is usually an
		// ordinary capitalized word, not a name.
		if sentenceStart && j == i+1 && tokenizer.TokenShape(tokens[i].Text) == tokenizer.ShapeCap &&
			tokenizer.IsStopword(tokens[i].Text) {
			return -1
		}
		return j
	}
	if sentenceStart && j == i+1 && tokenizer.IsStopword(tokens[i].Text) {
		return -1
	}
	return j
}

// MentionSurfaces extracts the surface strings of mentions.
func MentionSurfaces(mentions []Mention) []string {
	out := make([]string, len(mentions))
	for i, m := range mentions {
		out[i] = m.Text
	}
	return out
}

// IsAcronym reports whether a surface form is an all-upper-case acronym.
func IsAcronym(s string) bool {
	n := 0
	for _, r := range s {
		if !unicode.IsUpper(r) {
			return false
		}
		n++
	}
	return n >= 2
}
