package wiki

import (
	"math"
	"math/rand"
	"sort"

	"aida/internal/kb"
)

// SeedGold is one seed entity with its crowd-aggregated candidate ranking
// (the KORE entity-relatedness dataset of Sec. 4.5.1).
type SeedGold struct {
	Seed       kb.EntityID
	Domain     string
	Candidates []kb.EntityID
	// GoldOrder lists candidate indices from most to least related
	// according to the aggregated judgments.
	GoldOrder []int
}

// GoldSpec shapes the simulated crowdsourcing study.
type GoldSpec struct {
	Seed           int64
	SeedsPerDomain int // seeds drawn from each domain (paper: 5 per domain)
	Candidates     int // candidates per seed (paper: 20)
	Judges         int // judges per pairwise comparison (paper: 5)
	// JudgeNoise ∈ [0, 0.5): probability a judge inverts an otherwise
	// clear comparison. 0.2 reproduces the paper's reported annotator
	// disagreement levels.
	JudgeNoise float64
	Domains    []string
}

// DefaultGoldSpec mirrors the paper's study: 4 domains × 5 seeds × 20
// candidates, 5 judges per comparison.
func DefaultGoldSpec(seed int64) GoldSpec {
	return GoldSpec{
		Seed:           seed,
		SeedsPerDomain: 5,
		Candidates:     20,
		Judges:         5,
		JudgeNoise:     0.2,
		Domains:        []string{"tech", "entertainment", "music", "sports"},
	}
}

// RelatednessGold simulates the crowdsourced construction of the KORE
// relatedness dataset: for each seed entity, candidates spanning the
// relatedness spectrum are drawn, all pairwise comparisons are judged by
// noisy judges against the latent TrueRelatedness, and the candidates are
// ranked by aggregated wins (the Coppersmith-style aggregation of
// Sec. 4.5.1).
func (w *World) RelatednessGold(spec GoldSpec) []SeedGold {
	rng := rand.New(rand.NewSource(spec.Seed))
	var out []SeedGold
	for _, domain := range spec.Domains {
		seeds := w.PopularEntities(domain, spec.SeedsPerDomain)
		for _, seed := range seeds {
			cands := w.goldCandidates(rng, seed, spec.Candidates)
			if len(cands) < 2 {
				continue
			}
			order := w.judgeRanking(rng, seed, cands, spec)
			out = append(out, SeedGold{
				Seed: seed, Domain: domain,
				Candidates: cands, GoldOrder: order,
			})
		}
	}
	return out
}

// goldCandidates picks candidates across the relatedness spectrum: cluster
// mates (highly related), same-domain entities (medium), random entities
// (remote) — so the gold ranking is "clearly distinguishable" as in the
// paper's construction.
func (w *World) goldCandidates(rng *rand.Rand, seed kb.EntityID, n int) []kb.EntityID {
	m := w.meta[seed]
	pick := map[kb.EntityID]bool{seed: true}
	var out []kb.EntityID
	add := func(id kb.EntityID) {
		if !pick[id] && len(out) < n {
			pick[id] = true
			out = append(out, id)
		}
	}
	members := w.clusters[m.Cluster].Members
	for _, id := range rng.Perm(len(members)) {
		if len(out) >= n/3 {
			break
		}
		add(members[id])
	}
	domainIDs := w.PopularEntities(m.Domain, 100)
	for _, i := range rng.Perm(len(domainIDs)) {
		if len(out) >= 2*n/3 {
			break
		}
		add(domainIDs[i])
	}
	for len(out) < n {
		add(w.meta[rng.Intn(len(w.meta))].ID)
	}
	return out
}

// judgeRanking runs the simulated pairwise crowd study and aggregates.
func (w *World) judgeRanking(rng *rand.Rand, seed kb.EntityID, cands []kb.EntityID, spec GoldSpec) []int {
	n := len(cands)
	wins := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ri := w.TrueRelatedness(seed, cands[i])
			rj := w.TrueRelatedness(seed, cands[j])
			// Judge vote: the probability of preferring i grows with the
			// relatedness gap (logistic response), flipped by noise.
			pI := 1 / (1 + math.Exp(-(ri-rj)*8))
			votesI := 0
			for v := 0; v < spec.Judges; v++ {
				vote := rng.Float64() < pI
				if rng.Float64() < spec.JudgeNoise {
					vote = !vote
				}
				if vote {
					votesI++
				}
			}
			conf := float64(votesI) / float64(spec.Judges)
			wins[i] += conf
			wins[j] += 1 - conf
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return wins[order[a]] > wins[order[b]] })
	return order
}
