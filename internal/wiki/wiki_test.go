package wiki

import (
	"strings"
	"testing"

	"aida/internal/kb"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 42, Entities: 400, OOEEntities: 40})
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(Config{Seed: 7, Entities: 150})
	w2 := Generate(Config{Seed: 7, Entities: 150})
	if w1.KB.NumEntities() != w2.KB.NumEntities() {
		t.Fatal("entity counts differ across identical seeds")
	}
	for i := 0; i < w1.KB.NumEntities(); i++ {
		if w1.KB.Entity(kb.EntityID(i)).Name != w2.KB.Entity(kb.EntityID(i)).Name {
			t.Fatal("entity names differ across identical seeds")
		}
	}
	d1 := w1.GenerateCorpus(CoNLLSpec(3, 1))
	d2 := w2.GenerateCorpus(CoNLLSpec(3, 1))
	for i := range d1 {
		if d1[i].Text != d2[i].Text {
			t.Fatal("documents differ across identical seeds")
		}
	}
}

func TestGenerateKBShape(t *testing.T) {
	w := testWorld(t)
	if w.KB.NumEntities() != 400 {
		t.Fatalf("want 400 entities, got %d", w.KB.NumEntities())
	}
	// Every entity has keyphrases and a domain.
	for _, e := range w.KB.Entities() {
		if len(e.Keyphrases) == 0 {
			t.Fatalf("entity %s has no keyphrases", e.Name)
		}
		if e.Domain == "" {
			t.Fatalf("entity %s has no domain", e.Name)
		}
	}
}

func TestAmbiguityExists(t *testing.T) {
	w := testWorld(t)
	ambiguous := 0
	for _, name := range w.KB.Names() {
		if len(w.KB.Candidates(name)) > 1 {
			ambiguous++
		}
	}
	if ambiguous < 20 {
		t.Fatalf("world has too little ambiguity: %d ambiguous names", ambiguous)
	}
}

func TestPopularityZipf(t *testing.T) {
	w := testWorld(t)
	_, p0, _ := w.Meta(0)
	_, pLast, _ := w.Meta(kb.EntityID(w.KB.NumEntities() - 1))
	if p0 <= pLast {
		t.Fatal("popularity should decrease with rank")
	}
	if p0/pLast < 50 {
		t.Fatalf("popularity skew too flat: head=%v tail=%v", p0, pLast)
	}
}

func TestClusterCoherence(t *testing.T) {
	w := testWorld(t)
	// Same-cluster entities must be more related than cross-domain ones.
	var a, b, c kb.EntityID = -1, -1, -1
	_, _, clusterA := w.Meta(0)
	domA, _, _ := w.Meta(0)
	a = 0
	for i := 1; i < w.KB.NumEntities(); i++ {
		id := kb.EntityID(i)
		dom, _, cl := w.Meta(id)
		if b < 0 && cl == clusterA && id != a {
			b = id
		}
		if c < 0 && dom != domA {
			c = id
		}
	}
	if b < 0 || c < 0 {
		t.Skip("world too small for cluster test")
	}
	if w.TrueRelatedness(a, b) <= w.TrueRelatedness(a, c) {
		t.Fatalf("cluster mate %v not more related than cross-domain %v",
			w.TrueRelatedness(a, b), w.TrueRelatedness(a, c))
	}
}

func TestTrueRelatednessSymmetricBounded(t *testing.T) {
	w := testWorld(t)
	for i := 0; i < 50; i++ {
		a := kb.EntityID(i % w.KB.NumEntities())
		b := kb.EntityID((i * 7) % w.KB.NumEntities())
		ra, rb := w.TrueRelatedness(a, b), w.TrueRelatedness(b, a)
		if ra != rb {
			t.Fatalf("relatedness asymmetric: %v vs %v", ra, rb)
		}
		if ra < 0 || ra > 1 {
			t.Fatalf("relatedness out of range: %v", ra)
		}
	}
	if w.TrueRelatedness(3, 3) != 1 {
		t.Fatal("self relatedness must be 1")
	}
}

func TestCoNLLCorpusShape(t *testing.T) {
	w := testWorld(t)
	docs := w.GenerateCorpus(CoNLLSpec(30, 9))
	if len(docs) != 30 {
		t.Fatalf("want 30 docs, got %d", len(docs))
	}
	stats := w.Stats(docs)
	if stats.AvgMentionsPerDoc < 10 || stats.AvgMentionsPerDoc > 35 {
		t.Errorf("mentions per doc out of CoNLL range: %v", stats.AvgMentionsPerDoc)
	}
	frac := float64(stats.MentionsNoEntity) / float64(stats.Mentions)
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("OOE fraction %v not near the configured 20%%", frac)
	}
	// Every in-KB gold mention must be resolvable through the dictionary.
	for _, d := range docs {
		for _, m := range d.Mentions {
			if m.Entity == kb.NoEntity {
				continue
			}
			found := false
			for _, c := range w.KB.Candidates(m.Surface) {
				if c.Entity == m.Entity {
					found = true
				}
			}
			if !found {
				t.Fatalf("gold mention %q → %d unreachable via dictionary", m.Surface, m.Entity)
			}
		}
	}
}

func TestSurfacesHaveNoParentheticals(t *testing.T) {
	// Running text never writes "Kashmir (song)"; the display surface is
	// the base name, which the dictionary resolves.
	w := testWorld(t)
	docs := w.GenerateCorpus(CoNLLSpec(10, 17))
	for _, d := range docs {
		for _, m := range d.Mentions {
			if strings.Contains(m.Surface, " (") {
				t.Fatalf("parenthetical surface leaked into text: %q", m.Surface)
			}
		}
	}
}

func TestJargonWordsUnique(t *testing.T) {
	seen := map[string]int{}
	for _, base := range []int{jargonClusterBase, jargonOOEBase, jargonEventBase, jargonEntityBase} {
		for i := 0; i < 300; i++ {
			w := jargonWord(base + i)
			if prev, dup := seen[w]; dup && prev != base+i {
				t.Fatalf("jargon collision: index %d and %d both map to %q", prev, base+i, w)
			}
			seen[w] = base + i
		}
	}
}

func TestMentionSurfaceInText(t *testing.T) {
	w := testWorld(t)
	docs := w.GenerateCorpus(CoNLLSpec(5, 3))
	for _, d := range docs {
		for _, m := range d.Mentions {
			if !strings.Contains(d.Text, m.Surface) {
				t.Fatalf("surface %q missing from text", m.Surface)
			}
		}
	}
}

func TestHardCorpusIsHard(t *testing.T) {
	w := testWorld(t)
	hard := w.GenerateCorpus(HardSpec(20, 5))
	stats := w.Stats(hard)
	if stats.AvgMentionsPerDoc > 5 {
		t.Errorf("hard split should have few mentions per doc, got %v", stats.AvgMentionsPerDoc)
	}
	easy := w.GenerateCorpus(CoNLLSpec(20, 5))
	estats := w.Stats(easy)
	if stats.AvgWordsPerDoc >= estats.AvgWordsPerDoc {
		t.Errorf("hard split should be shorter: %v vs %v", stats.AvgWordsPerDoc, estats.AvgWordsPerDoc)
	}
}

func TestNewsStreamDays(t *testing.T) {
	w := testWorld(t)
	docs := w.NewsStream(DefaultNewsSpec(4, 6, 11))
	if len(docs) != 24 {
		t.Fatalf("want 24 docs, got %d", len(docs))
	}
	seenEE := false
	for _, d := range docs {
		if d.Day < 1 || d.Day > 4 {
			t.Fatalf("bad day %d", d.Day)
		}
		for _, m := range d.Mentions {
			if m.Entity == kb.NoEntity {
				seenEE = true
				if m.OOEName == "" {
					t.Fatal("OOE mention without identity")
				}
			}
		}
	}
	if !seenEE {
		t.Fatal("news stream contains no emerging entities")
	}
}

func TestOOEBirthDayRespected(t *testing.T) {
	w := testWorld(t)
	byName := map[string]int{}
	for _, o := range w.OOE {
		byName[o.Name] = o.BirthDay
	}
	docs := w.NewsStream(DefaultNewsSpec(5, 5, 13))
	for _, d := range docs {
		for _, m := range d.Mentions {
			if m.OOEName == "" {
				continue
			}
			if birth, ok := byName[m.OOEName]; !ok || birth > d.Day {
				t.Fatalf("emerging entity %q appears on day %d before birth %d", m.OOEName, d.Day, birth)
			}
		}
	}
}

func TestOOECollisions(t *testing.T) {
	w := testWorld(t)
	colliding := 0
	for _, o := range w.OOE {
		if o.CollidesWithKB {
			colliding++
			if !w.KB.HasName(kb.NormalizeName(o.Surface)) {
				t.Fatalf("OOE %q marked colliding but name unknown to KB", o.Surface)
			}
		}
		if len(o.Keyphrases) == 0 {
			t.Fatalf("OOE %q has no keyphrases", o.Name)
		}
	}
	if colliding == 0 {
		t.Fatal("no OOE entity collides with the KB — the hard case is missing")
	}
}

func TestRelatednessGold(t *testing.T) {
	w := testWorld(t)
	spec := DefaultGoldSpec(3)
	spec.SeedsPerDomain = 2
	spec.Candidates = 10
	gold := w.RelatednessGold(spec)
	if len(gold) == 0 {
		t.Fatal("no gold seeds generated")
	}
	for _, g := range gold {
		if len(g.GoldOrder) != len(g.Candidates) {
			t.Fatalf("gold order length mismatch")
		}
		seen := map[int]bool{}
		for _, idx := range g.GoldOrder {
			if idx < 0 || idx >= len(g.Candidates) || seen[idx] {
				t.Fatalf("gold order is not a permutation: %v", g.GoldOrder)
			}
			seen[idx] = true
		}
	}
}

func TestGoldRankingCorrelatesWithTruth(t *testing.T) {
	// With 5 judges and moderate noise, the aggregated ranking must put
	// highly related candidates ahead of remote ones most of the time.
	w := testWorld(t)
	spec := DefaultGoldSpec(5)
	spec.SeedsPerDomain = 2
	gold := w.RelatednessGold(spec)
	better := 0
	total := 0
	for _, g := range gold {
		first := g.Candidates[g.GoldOrder[0]]
		last := g.Candidates[g.GoldOrder[len(g.GoldOrder)-1]]
		if w.TrueRelatedness(g.Seed, first) > w.TrueRelatedness(g.Seed, last) {
			better++
		}
		total++
	}
	if float64(better) < 0.8*float64(total) {
		t.Fatalf("aggregated ranking too noisy: %d/%d correct extremes", better, total)
	}
}

func TestStatsCounts(t *testing.T) {
	w := testWorld(t)
	docs := w.GenerateCorpus(CoNLLSpec(10, 21))
	s := w.Stats(docs)
	if s.Docs != 10 || s.Mentions == 0 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.AvgCandidatesPerMention <= 1 {
		t.Errorf("expected ambiguity in corpus, got avg candidates %v", s.AvgCandidatesPerMention)
	}
}

func BenchmarkGenerateWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: int64(i), Entities: 400})
	}
}

func BenchmarkGenerateCorpus(b *testing.B) {
	w := Generate(Config{Seed: 1, Entities: 400})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.GenerateCorpus(CoNLLSpec(10, int64(i)))
	}
}
