package wiki

import (
	"fmt"
	"math/rand"
	"strings"

	"aida/internal/kb"
)

// NewsSpec shapes a generated news stream (the GigaWord substitute of
// Sec. 5.7.2).
type NewsSpec struct {
	Days       int
	DocsPerDay int
	Seed       int64
	// EERate is the fraction of mentions referring to emerging entities
	// (entities born on or before the document's day).
	EERate float64
	// EventPhrasesPerDay is the number of fresh event phrases attached to
	// existing entities each day; these are harvestable evidence for the
	// in-KB keyphrase enrichment of Sec. 5.5.1.
	EventPhrasesPerDay int
}

// DefaultNewsSpec mirrors the AIDA-EE GigaWord corpus shape (Table 5.2).
func DefaultNewsSpec(days, docsPerDay int, seed int64) NewsSpec {
	return NewsSpec{
		Days: days, DocsPerDay: docsPerDay, Seed: seed,
		EERate:             0.15,
		EventPhrasesPerDay: 40,
	}
}

// NewsStream generates a day-stamped article stream. Emerging entities
// appear from their birth day onward under ambiguous names; existing
// entities additionally co-occur with fresh day-specific event phrases that
// are not in the KB.
func (w *World) NewsStream(spec NewsSpec) []Document {
	rng := rand.New(rand.NewSource(spec.Seed))
	// Day-specific event phrases for existing entities.
	events := w.eventPhrases(rng, spec)
	var docs []Document
	for day := 1; day <= spec.Days; day++ {
		// OOE entities born by this day.
		var pool []int
		for i := range w.OOE {
			if w.OOE[i].BirthDay <= day {
				pool = append(pool, i)
			}
		}
		for d := 0; d < spec.DocsPerDay; d++ {
			cs := CorpusSpec{
				MinMentions: 8, MaxMentions: 20,
				OOERate:              spec.EERate,
				AmbiguousSurfaceRate: 0.6,
				ContextRichness:      6,
				Clusters:             2,
			}
			id := fmt.Sprintf("news-%d-%d", day, d)
			doc := w.composeDoc(rng, cs, id, day, pool)
			// Blend in the day's event phrases for the in-KB mentions.
			doc.Text = w.addEventContext(rng, doc, events, day)
			docs = append(docs, doc)
		}
	}
	return docs
}

// eventPhrases precomputes per-day fresh phrases per entity.
func (w *World) eventPhrases(rng *rand.Rand, spec NewsSpec) map[int]map[kb.EntityID][]string {
	out := make(map[int]map[kb.EntityID][]string, spec.Days)
	for day := 1; day <= spec.Days; day++ {
		m := make(map[kb.EntityID][]string)
		for i := 0; i < spec.EventPhrasesPerDay; i++ {
			ent := w.meta[rng.Intn(len(w.meta))].ID
			domain := w.meta[ent].Domain
			words := domainWords[domain]
			// Fresh event vocabulary, unknown to the KB: this is the
			// evidence that in-KB keyphrase enrichment must claim before
			// it leaks into emerging-entity placeholders.
			fresh := jargonWord(jargonEventBase + day*spec.EventPhrasesPerDay + i)
			phrase := fmt.Sprintf("%s %s %s",
				adjectivePool[rng.Intn(len(adjectivePool))],
				fresh, words[rng.Intn(len(words))])
			m[ent] = append(m[ent], phrase)
		}
		out[day] = m
	}
	return out
}

// addEventContext appends, per mentioned entity with day events, one extra
// sentence carrying the entity's surface next to its fresh event phrases —
// the way real news repeats a name alongside the new facts about it. These
// phrases are unknown to the KB: without in-KB keyphrase enrichment they
// leak into the emerging-entity placeholder models (the instability that
// Figure 5.4 shows enrichment fixing).
func (w *World) addEventContext(rng *rand.Rand, doc Document, events map[int]map[kb.EntityID][]string, day int) string {
	dayEvents := events[day]
	if dayEvents == nil {
		return doc.Text
	}
	var extra []string
	seen := map[kb.EntityID]bool{}
	for _, m := range doc.Mentions {
		if m.Entity == kb.NoEntity || seen[m.Entity] {
			continue
		}
		seen[m.Entity] = true
		if ps := dayEvents[m.Entity]; len(ps) > 0 {
			extra = append(extra, m.Surface+" "+strings.Join(ps, " ")+". ")
		}
	}
	if len(extra) == 0 {
		return doc.Text
	}
	return doc.Text + strings.Join(extra, "")
}

// OOEBySurface indexes the OOE population by ambiguous surface.
func (w *World) OOEBySurface() map[string][]*OOEEntity {
	out := make(map[string][]*OOEEntity)
	for i := range w.OOE {
		o := &w.OOE[i]
		out[o.Surface] = append(out[o.Surface], o)
	}
	return out
}
