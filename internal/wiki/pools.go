package wiki

// Word pools for the synthetic world. Deliberately sized so that surname,
// place and work-title collisions arise at rates comparable to the name
// ambiguity AIDA faces on Wikipedia-derived dictionaries: the surname pool
// is much smaller than the number of generated persons, and work titles are
// drawn from the same pool as place names (the "Kashmir" effect).

var givenNames = []string{
	"James", "Maria", "Robert", "Elena", "Thomas", "Ana", "Viktor", "Laura",
	"Pedro", "Ingrid", "Akira", "Fatima", "Dmitri", "Chloe", "Rafael",
	"Yuki", "Omar", "Greta", "Marco", "Priya", "Sven", "Nadia", "Carlos",
	"Astrid", "Hugo", "Mei", "Jonas", "Leila", "Felix", "Tara",
}

var surnames = []string{
	"Carter", "Dylan", "Page", "Plant", "Reich", "Novak", "Okafor", "Silva",
	"Marlow", "Keller", "Ivanov", "Haas", "Moreau", "Tanaka", "Lindgren",
	"Costa", "Weber", "Duran", "Falk", "Mercer", "Quinn", "Sato", "Vance",
	"Holm", "Petrov", "Ardila", "Brandt", "Calloway", "Drummond", "Eklund",
	"Ferrand", "Gruber", "Hollis", "Iwata", "Jansen",
}

var placeNames = []string{
	"Kashmir", "Aveiro", "Brunswick", "Caldera", "Dunmore", "Eldoria",
	"Farrow", "Grenholm", "Harlan", "Isfjord", "Jubilee", "Kestrel",
	"Lorimer", "Medina", "Norwood", "Ostia", "Pinehurst", "Quarry",
	"Redgate", "Solvang", "Tremont", "Umbria", "Valmont", "Westbrook",
	"Yarrow", "Zephyr", "Alderton", "Birchwood", "Corinth", "Delmar",
}

var orgWords = []string{
	"Dynamics", "Systems", "Holdings", "Industries", "Partners", "Capital",
	"Networks", "Logistics", "Biotech", "Analytics", "Motors", "Energy",
	"Robotics", "Mining", "Shipping", "Aerospace", "Pharma", "Textiles",
}

var orgPrefixes = []string{
	"Apex", "Borealis", "Cobalt", "Crestline", "Meridian", "Northfield",
	"Oakline", "Pinnacle", "Quanta", "Sterling", "Vertex", "Zenith",
	"Atlas", "Corona", "Helix", "Ionis", "Krypton", "Lumen",
}

var teamWords = []string{
	"United", "Rovers", "Wanderers", "Athletic", "Dynamo", "Rangers",
	"Falcons", "Mariners", "Wolves", "Comets",
}

// Domain vocabulary used for keyphrases and context filler.
var domainWords = map[string][]string{
	"music": {
		"guitarist", "album", "song", "tour", "band", "concert", "singer",
		"record", "chords", "studio", "acoustic", "drummer", "vocals",
		"bassist", "melody", "lyrics", "stage", "encore", "riff", "ballad",
	},
	"sports": {
		"match", "season", "goal", "striker", "coach", "league", "stadium",
		"defender", "tournament", "transfer", "penalty", "midfielder",
		"championship", "fixture", "squad", "keeper", "title", "friendly",
		"cup", "derby",
	},
	"politics": {
		"minister", "parliament", "election", "treaty", "summit", "policy",
		"senator", "cabinet", "reform", "coalition", "ambassador", "vote",
		"legislation", "diplomat", "campaign", "referendum", "sanctions",
		"delegation", "congress", "bill",
	},
	"business": {
		"merger", "shares", "quarterly", "revenue", "startup", "investor",
		"acquisition", "market", "profit", "dividend", "earnings", "stock",
		"valuation", "venture", "portfolio", "stake", "ipo", "forecast",
		"chairman", "executive",
	},
	"tech": {
		"software", "algorithm", "platform", "startup", "processor",
		"database", "encryption", "browser", "server", "protocol", "cloud",
		"compiler", "interface", "network", "silicon", "chipset", "kernel",
		"api", "framework", "device",
	},
	"geography": {
		"valley", "river", "mountain", "province", "border", "region",
		"coast", "plateau", "glacier", "harbor", "peninsula", "delta",
		"highlands", "basin", "territory", "canyon", "lagoon", "steppe",
		"archipelago", "fjord",
	},
	"science": {
		"quantum", "particle", "genome", "telescope", "laboratory",
		"experiment", "theorem", "enzyme", "neutrino", "catalyst",
		"molecule", "reactor", "spectrum", "antibody", "isotope", "fossil",
		"climate", "synthesis", "orbital", "plasma",
	},
	"entertainment": {
		"film", "director", "premiere", "actress", "screenplay", "festival",
		"drama", "comedy", "producer", "trailer", "casting", "cinema",
		"sequel", "documentary", "studio", "script", "award", "critics",
		"boxoffice", "scene",
	},
}

// fillerWords pad document sentences with non-evidence tokens.
var fillerWords = []string{
	"yesterday", "reported", "officials", "statement", "sources",
	"according", "announced", "expected", "following", "recent",
	"meanwhile", "despite", "however", "several", "continued", "later",
	"earlier", "decision", "plans", "weekend", "monday", "friday",
	"confirmed", "spokesman", "press", "interview", "talks", "meeting",
}

// adjectivePool builds entity-unique keyphrases.
var adjectivePool = []string{
	"veteran", "legendary", "rising", "acclaimed", "controversial",
	"influential", "outspoken", "reclusive", "prolific", "celebrated",
	"embattled", "seasoned", "maverick", "pioneering", "renowned",
}

// Domains lists the topical domains of the synthetic world.
func Domains() []string {
	return []string{"music", "sports", "politics", "business", "tech", "geography", "science", "entertainment"}
}

// Jargon words give clusters, entities, emerging entities and news events
// distinctive vocabulary, the way real keyphrases carry rare terms
// ("Murrayfield", "Chun Kuk Do"). They are composed deterministically from
// syllable tables so the pool is large (thousands) without hand-writing it.
var (
	jargonOnsets = []string{
		"bar", "cor", "del", "fen", "gor", "hul", "jin", "kel", "lor", "mar",
		"nev", "ost", "pral", "quin", "rud", "sel", "tor", "ulm", "ver", "wex",
	}
	jargonCodas = []string{
		"ace", "bury", "dale", "fax", "gate", "holm", "ine", "kov", "lund",
		"mont", "nor", "ova", "pex", "quist", "rath", "sen", "tide", "urn",
		"vale", "wick",
	}
	jargonMids = []string{"a", "e", "i", "o", "u", "ar", "en", "il", "or", "un"}
)

// jargonWord maps an index to a unique pseudo-word. Indices below 400 use
// onset+coda; up to 4000 add a mid syllable; beyond that a numeric suffix
// keeps words unique.
func jargonWord(i int) string {
	if i < 0 {
		i = -i
	}
	w := jargonOnsets[i%len(jargonOnsets)] + jargonCodas[(i/20)%len(jargonCodas)]
	if k := (i / 400) % 10; i >= 400 {
		w += jargonMids[k]
	}
	if i >= 4000 {
		w += string(rune('a' + (i/4000)%26))
	}
	return w
}

// Jargon index ranges per use, kept disjoint so vocabularies never alias.
const (
	jargonClusterBase = 0     // 4 words per cluster
	jargonOOEBase     = 2000  // 3 words per emerging entity
	jargonEventBase   = 8000  // 1 word per day-event phrase
	jargonEntityBase  = 20000 // 2 words per KB entity
)
