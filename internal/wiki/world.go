// Package wiki generates the synthetic Wikipedia-like world that replaces
// the dissertation's proprietary data assets (Wikipedia 2010 dump, YAGO2,
// CoNLL-YAGO annotations, the KORE crowdsourcing gold, and the GigaWord
// news stream). See DESIGN.md for the substitution rationale.
//
// The generator is fully deterministic given a Config.Seed. It produces:
//
//   - a knowledge base with Zipfian entity popularity, ambiguous name
//     dictionaries, topically clustered link structure, and per-entity
//     keyphrases (World.KB);
//   - annotated evaluation corpora mirroring the geometry of CoNLL-YAGO,
//     KORE50 and the WP slice (docs.go);
//   - a day-stamped news stream containing emerging entities absent from
//     the KB (news.go);
//   - a simulated crowdsourced relatedness gold standard (gold.go).
package wiki

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"aida/internal/kb"
)

// Config parameterizes the synthetic world.
type Config struct {
	Seed     int64
	Entities int // total entities in the KB (default 2000)
	// ClustersPerDomain controls topical granularity (default 6).
	ClustersPerDomain int
	// ZipfExponent shapes the popularity distribution (default 1.05).
	ZipfExponent float64
	// DictionaryNoise is the probability of a wrong name→entity entry
	// ("bad dictionary" artifacts of Sec. 3.6.4; default 0.01).
	DictionaryNoise float64
	// OOEEntities is the number of out-of-KB entities generated for the
	// emerging-entity experiments (default Entities/10).
	OOEEntities int
}

func (c Config) withDefaults() Config {
	if c.Entities <= 0 {
		c.Entities = 2000
	}
	if c.ClustersPerDomain <= 0 {
		c.ClustersPerDomain = 6
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.05
	}
	if c.DictionaryNoise < 0 {
		c.DictionaryNoise = 0
	} else if c.DictionaryNoise == 0 {
		c.DictionaryNoise = 0.01
	}
	if c.OOEEntities <= 0 {
		c.OOEEntities = c.Entities / 10
	}
	return c
}

// entityKind is the entity class generated.
type entityKind int

const (
	kindPerson entityKind = iota
	kindOrg
	kindPlace
	kindWork // songs, albums, films: titles collide with place names
	kindTeam
)

// entityMeta is generator-side bookkeeping for one KB entity.
type entityMeta struct {
	ID         kb.EntityID
	Kind       entityKind
	Domain     string
	Cluster    int // global cluster index
	Cluster2   int // secondary cluster or -1
	Popularity float64
	Names      []string // dictionary surfaces (canonical first)
}

// OOEEntity is an out-of-knowledge-base entity for the Chapter 5
// experiments. It shares a surface with KB entities (the hard case) or
// carries a fresh name, and owns a keyphrase model the KB knows nothing
// about.
type OOEEntity struct {
	Name       string // identity key, e.g. "Sandy (hurricane)"
	Surface    string // the ambiguous name it appears under
	Domain     string
	BirthDay   int // first news-stream day it can appear
	Keyphrases []string
	// CollidesWithKB reports whether Surface is also a KB dictionary name.
	CollidesWithKB bool
}

// cluster is one topical group of entities.
type cluster struct {
	Domain  string
	Phrases []string // signature keyphrases
	Members []kb.EntityID
}

// World is the generated universe.
type World struct {
	Config   Config
	KB       *kb.KB
	OOE      []OOEEntity
	meta     []entityMeta
	clusters []cluster
	rng      *rand.Rand
}

// Generate builds a world from the configuration.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg, rng: rng}

	domains := Domains()
	// Build clusters with signature phrases. Each cluster owns four rare
	// jargon words; most signature phrases anchor on one of them, so
	// clusters of the same domain share vocabulary but remain separable —
	// the structure real keyphrases have.
	for _, d := range domains {
		words := domainWords[d]
		for ci := 0; ci < cfg.ClustersPerDomain; ci++ {
			gi := len(w.clusters)
			jargon := clusterJargon(gi)
			phrases := make([]string, 0, 8)
			for pi := 0; pi < 8; pi++ {
				phrases = append(phrases, clusterPhrase(rng, words, jargon))
			}
			w.clusters = append(w.clusters, cluster{Domain: d, Phrases: phrases})
		}
	}

	b := kb.NewBuilder()
	usedNames := map[string]int{}
	// Create entities with Zipfian popularity by rank.
	for i := 0; i < cfg.Entities; i++ {
		domain := domains[rng.Intn(len(domains))]
		kind := kindFor(rng, domain)
		name, names := w.makeNames(rng, kind, domain, usedNames)
		id := b.AddEntity(name, domain, typeFor(kind))
		pop := 1.0 / math.Pow(float64(i+1), cfg.ZipfExponent)
		ci := w.clusterOf(rng, domain)
		c2 := -1
		if rng.Float64() < 0.2 {
			c2 = w.clusterOf(rng, domain)
		}
		meta := entityMeta{
			ID: id, Kind: kind, Domain: domain,
			Cluster: ci, Cluster2: c2,
			Popularity: pop, Names: append([]string{name}, names...),
		}
		w.meta = append(w.meta, meta)
		w.clusters[ci].Members = append(w.clusters[ci].Members, id)
		if c2 >= 0 {
			w.clusters[c2].Members = append(w.clusters[c2].Members, id)
		}
	}

	// Dictionary: anchor counts proportional to popularity. The canonical
	// name gets the bulk; aliases (surnames, acronyms, short names) get a
	// popularity-scaled share, creating the ambiguity the experiments
	// need.
	for i := range w.meta {
		m := &w.meta[i]
		base := int(math.Ceil(m.Popularity * 1000))
		if base < 1 {
			base = 1
		}
		b.AddName(m.Names[0], m.ID, base)
		for _, alias := range m.Names[1:] {
			cnt := base / 2
			if cnt < 1 {
				cnt = 1
			}
			b.AddName(alias, m.ID, cnt)
		}
		// Bad-dictionary noise: rarely attach a wrong alias.
		if w.rng.Float64() < w.Config.DictionaryNoise {
			other := w.meta[w.rng.Intn(len(w.meta))]
			b.AddName(other.Names[len(other.Names)-1], m.ID, 1)
		}
	}

	// Links: dense within clusters, with in-links concentrated on popular
	// entities, mirroring Wikipedia's skew — "entities with ≤50 incoming
	// links make up more than 80% of Wikipedia" (Sec. 4.6.2). Long-tail
	// entities keep few or no in-links while retaining keyphrases, which
	// is exactly the regime KORE targets.
	for i := range w.meta {
		m := &w.meta[i]
		members := w.clusters[m.Cluster].Members
		out := 1 + int(m.Popularity*30) + rng.Intn(3)
		for l := 0; l < out && len(members) > 1; l++ {
			dst := w.samplePopular(rng, members)
			if dst != m.ID {
				b.AddLink(m.ID, dst)
			}
		}
		if rng.Float64() < 0.08 { // rare cross-cluster link
			dst := w.meta[rng.Intn(len(w.meta))].ID
			if dst != m.ID {
				b.AddLink(m.ID, dst)
			}
		}
	}

	// Keyphrases: cluster signature phrases, domain phrases, entity-unique
	// phrases, and names of cluster neighbors (the link-anchor harvest of
	// Sec. 3.3.4). Long-tail entities keep a usable keyphrase set even
	// when they have almost no links — the KORE premise.
	for i := range w.meta {
		m := &w.meta[i]
		cl := &w.clusters[m.Cluster]
		clJargon := clusterJargon(m.Cluster)
		ownJargon := []string{
			jargonWord(jargonEntityBase + 2*i),
			jargonWord(jargonEntityBase + 2*i + 1),
		}
		num := 4 + int(m.Popularity*20) + rng.Intn(4)
		for p := 0; p < num; p++ {
			switch {
			case p < 2:
				// Entity-unique phrases ("Chun Kuk Do" style): rare words
				// only this entity carries.
				word := domainWords[m.Domain][rng.Intn(len(domainWords[m.Domain]))]
				b.AddKeyphrase(m.ID, ownJargon[p]+" "+word)
			case p-2 < len(cl.Phrases) && p < num*3/5:
				b.AddKeyphrase(m.ID, cl.Phrases[p-2])
			case rng.Float64() < 0.5:
				b.AddKeyphrase(m.ID, clusterPhrase(rng, domainWords[m.Domain], clJargon))
			default:
				adj := adjectivePool[rng.Intn(len(adjectivePool))]
				word := domainWords[m.Domain][rng.Intn(len(domainWords[m.Domain]))]
				b.AddKeyphrase(m.ID, adj+" "+word)
			}
		}
		if len(cl.Members) > 1 {
			nb := cl.Members[rng.Intn(len(cl.Members))]
			if nb != m.ID {
				b.AddKeyphrase(m.ID, w.meta[nb].Names[0])
			}
		}
	}

	w.KB = b.Build()
	w.generateOOE()
	return w
}

// samplePopular draws a cluster member with probability proportional to
// its popularity, concentrating in-links on the head of the distribution.
func (w *World) samplePopular(rng *rand.Rand, members []kb.EntityID) kb.EntityID {
	var total float64
	for _, id := range members {
		total += w.meta[id].Popularity
	}
	x := rng.Float64() * total
	for _, id := range members {
		x -= w.meta[id].Popularity
		if x <= 0 {
			return id
		}
	}
	return members[len(members)-1]
}

// clusterOf picks a cluster index of the given domain.
func (w *World) clusterOf(rng *rand.Rand, domain string) int {
	var idx []int
	for i, c := range w.clusters {
		if c.Domain == domain {
			idx = append(idx, i)
		}
	}
	return idx[rng.Intn(len(idx))]
}

func kindFor(rng *rand.Rand, domain string) entityKind {
	switch domain {
	case "geography":
		return kindPlace
	case "music", "entertainment":
		if rng.Float64() < 0.4 {
			return kindWork
		}
		return kindPerson
	case "sports":
		if rng.Float64() < 0.3 {
			return kindTeam
		}
		return kindPerson
	case "business", "tech":
		if rng.Float64() < 0.5 {
			return kindOrg
		}
		return kindPerson
	default:
		return kindPerson
	}
}

func typeFor(k entityKind) string {
	switch k {
	case kindPerson:
		return "person"
	case kindOrg:
		return "organization"
	case kindPlace:
		return "location"
	case kindWork:
		return "work"
	case kindTeam:
		return "team"
	}
	return "entity"
}

// makeNames builds a unique canonical name plus ambiguous aliases.
func (w *World) makeNames(rng *rand.Rand, kind entityKind, domain string, used map[string]int) (string, []string) {
	for attempt := 0; ; attempt++ {
		var canonical string
		var aliases []string
		switch kind {
		case kindPerson:
			given := givenNames[rng.Intn(len(givenNames))]
			sur := surnames[rng.Intn(len(surnames))]
			canonical = given + " " + sur
			aliases = []string{sur}
		case kindOrg:
			pre := orgPrefixes[rng.Intn(len(orgPrefixes))]
			suf := orgWords[rng.Intn(len(orgWords))]
			canonical = pre + " " + suf
			aliases = []string{pre, acronym(canonical)}
		case kindPlace:
			canonical = placeNames[rng.Intn(len(placeNames))]
			aliases = nil
		case kindWork:
			canonical = placeNames[rng.Intn(len(placeNames))]
			aliases = nil
		case kindTeam:
			city := placeNames[rng.Intn(len(placeNames))]
			canonical = city + " " + teamWords[rng.Intn(len(teamWords))]
			aliases = []string{city}
		}
		// Canonical names must be unique: disambiguate Wikipedia-style.
		if n := used[canonical]; n > 0 {
			alias := canonical
			canonical = fmt.Sprintf("%s (%s %d)", canonical, domain, n)
			aliases = append(aliases, alias)
		} else if kind == kindWork {
			// Works share surfaces with places: "Kashmir (song)".
			alias := canonical
			canonical = fmt.Sprintf("%s (%s)", canonical, workNoun(domain))
			aliases = append(aliases, alias)
		}
		used[strings.TrimSpace(strings.Split(canonical, " (")[0])]++
		return canonical, dedupStrings(aliases, canonical)
	}
}

func workNoun(domain string) string {
	if domain == "music" {
		return "song"
	}
	return "film"
}

func acronym(name string) string {
	var sb strings.Builder
	for _, f := range strings.Fields(name) {
		sb.WriteByte(f[0])
	}
	return sb.String()
}

func dedupStrings(aliases []string, canonical string) []string {
	seen := map[string]bool{canonical: true}
	out := aliases[:0]
	for _, a := range aliases {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// clusterJargon returns a cluster's four dedicated rare words.
func clusterJargon(clusterIdx int) []string {
	out := make([]string, 4)
	for j := range out {
		out[j] = jargonWord(jargonClusterBase + 4*clusterIdx + j)
	}
	return out
}

// clusterPhrase builds a 2–3 word phrase from a domain vocabulary,
// anchored on a rare jargon word most of the time.
func clusterPhrase(rng *rand.Rand, words []string, jargon []string) string {
	n := 2 + rng.Intn(2)
	parts := make([]string, 0, n)
	seen := map[string]bool{}
	if len(jargon) > 0 && rng.Float64() < 0.7 {
		j := jargon[rng.Intn(len(jargon))]
		seen[j] = true
		parts = append(parts, j)
	}
	for len(parts) < n {
		w := words[rng.Intn(len(words))]
		if !seen[w] {
			seen[w] = true
			parts = append(parts, w)
		}
	}
	return strings.Join(parts, " ")
}

// Meta exposes generator-side truth about an entity (popularity, clusters)
// for evaluation slicing.
func (w *World) Meta(id kb.EntityID) (domain string, popularity float64, clusterID int) {
	m := w.meta[id]
	return m.Domain, m.Popularity, m.Cluster
}

// TrueRelatedness is the latent ground-truth relatedness used for document
// coherence and the simulated crowd judgments: high for cluster mates,
// medium for same-domain entities, near zero across domains, with a small
// deterministic jitter so rankings are total orders.
func (w *World) TrueRelatedness(a, b kb.EntityID) float64 {
	if a == b {
		return 1
	}
	ma, mb := w.meta[a], w.meta[b]
	base := 0.05
	switch {
	case ma.Cluster == mb.Cluster ||
		(ma.Cluster2 >= 0 && ma.Cluster2 == mb.Cluster) ||
		(mb.Cluster2 >= 0 && mb.Cluster2 == ma.Cluster):
		base = 0.85
	case ma.Domain == mb.Domain:
		base = 0.35
	}
	// Deterministic jitter from the pair identity.
	h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9
	if b < a {
		h = uint64(b)*0x9e3779b97f4a7c15 ^ uint64(a)*0xbf58476d1ce4e5b9
	}
	jitter := float64(h%1000)/1000*0.1 - 0.05
	v := base + jitter
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// PopularEntities returns the ids of the n most popular entities of a
// domain (ties by id).
func (w *World) PopularEntities(domain string, n int) []kb.EntityID {
	type ep struct {
		id  kb.EntityID
		pop float64
	}
	var all []ep
	for _, m := range w.meta {
		if m.Domain == domain {
			all = append(all, ep{m.ID, m.Popularity})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pop != all[j].pop {
			return all[i].pop > all[j].pop
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]kb.EntityID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].id
	}
	return out
}

// generateOOE creates the out-of-KB entity population.
func (w *World) generateOOE() {
	cfg := w.Config
	names := w.KB.Names()
	for i := 0; i < cfg.OOEEntities; i++ {
		domain := Domains()[w.rng.Intn(len(Domains()))]
		collide := w.rng.Float64() < 0.6
		var surface string
		if collide && len(names) > 0 {
			// Reuse an existing ambiguous dictionary surface.
			surface = w.pickCollidingSurface()
		} else {
			surface = fmt.Sprintf("%s %s", givenNames[w.rng.Intn(len(givenNames))],
				placeNames[w.rng.Intn(len(placeNames))])
			collide = w.KB.HasName(kb.NormalizeName(surface))
		}
		// The emerging entity's own keyphrase model: fresh vocabulary the
		// KB has never seen (new events bring new words — "storm surge",
		// "whistleblower"), mixed with its domain's common words.
		fresh := []string{
			jargonWord(jargonOOEBase + 3*i),
			jargonWord(jargonOOEBase + 3*i + 1),
			jargonWord(jargonOOEBase + 3*i + 2),
		}
		phrases := make([]string, 0, 9)
		words := domainWords[domain]
		for p := 0; p < 8; p++ {
			phrases = append(phrases, clusterPhrase(w.rng, words, fresh))
		}
		phrases = append(phrases,
			adjectivePool[w.rng.Intn(len(adjectivePool))]+" "+fresh[w.rng.Intn(len(fresh))])
		w.OOE = append(w.OOE, OOEEntity{
			Name:           fmt.Sprintf("%s (emerging %d)", surface, i),
			Surface:        surface,
			Domain:         domain,
			BirthDay:       1 + w.rng.Intn(5),
			Keyphrases:     phrases,
			CollidesWithKB: collide,
		})
	}
}

// pickCollidingSurface selects a surface of a random KB entity (prefer a
// short ambiguous alias when available).
func (w *World) pickCollidingSurface() string {
	m := w.meta[w.rng.Intn(len(w.meta))]
	if len(m.Names) > 1 {
		return m.Names[1+w.rng.Intn(len(m.Names)-1)]
	}
	return m.Names[0]
}
