package wiki

import (
	"fmt"
	"math/rand"
	"strings"

	"aida/internal/kb"
)

// GoldMention is a mention with its ground-truth annotation.
type GoldMention struct {
	Surface string
	// Entity is the true entity, or kb.NoEntity for out-of-KB mentions.
	Entity kb.EntityID
	// OOEName identifies the emerging entity for OOE mentions (TAC-style
	// NIL clustering key); empty for in-KB mentions.
	OOEName string
}

// Document is an annotated synthetic document.
type Document struct {
	ID       string
	Day      int // news-stream day (0 for timeless corpora)
	Text     string
	Mentions []GoldMention
}

// Surfaces returns the mention surfaces in document order.
func (d *Document) Surfaces() []string {
	out := make([]string, len(d.Mentions))
	for i, m := range d.Mentions {
		out[i] = m.Surface
	}
	return out
}

// CorpusSpec shapes a generated corpus.
type CorpusSpec struct {
	Docs                     int
	Seed                     int64
	MinMentions, MaxMentions int
	// OOERate is the fraction of mentions whose entity is out-of-KB
	// (CoNLL-YAGO has ≈20%, Table 3.1).
	OOERate float64
	// AmbiguousSurfaceRate is the probability of referring to an entity by
	// a short ambiguous alias instead of its canonical name.
	AmbiguousSurfaceRate float64
	// LongTailBias > 0 skews entity selection toward unpopular entities
	// (used for the KORE50-style hard split).
	LongTailBias float64
	// ContextRichness is the number of keyphrase-derived context words
	// emitted per mention (higher = easier for similarity).
	ContextRichness int
	// ConfusionRate is the probability that a context phrase is drawn
	// from a *different* candidate entity of the same surface — the
	// misleading-context effect (metonymy, topic drift) that defeats
	// purely local similarity and makes coherence necessary (Sec. 3.1).
	ConfusionRate float64
	// Clusters is the number of topical clusters blended per document;
	// 1 yields maximally coherent documents.
	Clusters int
}

// CoNLLSpec mirrors the geometry of the CoNLL-YAGO corpus (Table 3.1):
// news-wire articles averaging ≈25 mentions with ≈20% out-of-KB mentions.
func CoNLLSpec(docs int, seed int64) CorpusSpec {
	return CorpusSpec{
		Docs: docs, Seed: seed,
		MinMentions: 12, MaxMentions: 32,
		OOERate:              0.2,
		AmbiguousSurfaceRate: 0.45,
		ContextRichness:      4,
		ConfusionRate:        0.35,
		Clusters:             2,
	}
}

// HardSpec mirrors KORE50 (Sec. 4.6.1): very short contexts, ≈3 highly
// ambiguous mentions per sentence, long-tail true entities.
func HardSpec(docs int, seed int64) CorpusSpec {
	return CorpusSpec{
		Docs: docs, Seed: seed,
		MinMentions: 3, MaxMentions: 4,
		OOERate:              0,
		AmbiguousSurfaceRate: 1.0,
		LongTailBias:         1.5,
		ContextRichness:      2,
		ConfusionRate:        0.25,
		Clusters:             1,
	}
}

// WPSpec mirrors the WP heavy-metal slice (Sec. 4.6.1): single-cluster
// sentences with family-name-only person mentions.
func WPSpec(docs int, seed int64) CorpusSpec {
	return CorpusSpec{
		Docs: docs, Seed: seed,
		MinMentions: 4, MaxMentions: 7,
		OOERate:              0,
		AmbiguousSurfaceRate: 1.0,
		ContextRichness:      4,
		ConfusionRate:        0.25,
		Clusters:             1,
	}
}

// GenerateCorpus produces an annotated corpus per the spec.
func (w *World) GenerateCorpus(spec CorpusSpec) []Document {
	rng := rand.New(rand.NewSource(spec.Seed))
	docs := make([]Document, 0, spec.Docs)
	for d := 0; d < spec.Docs; d++ {
		docs = append(docs, w.composeDoc(rng, spec, fmt.Sprintf("doc-%d", d), 0, nil))
	}
	return docs
}

// composeDoc builds one document: it picks coherent clusters, samples
// entities, and emits sentences of keyphrase-derived context around the
// mention surfaces. ooePool, when non-nil, supplies the emerging entities
// eligible for OOE mentions (news stream); otherwise OOE mentions draw from
// the world's OOE population.
func (w *World) composeDoc(rng *rand.Rand, spec CorpusSpec, id string, day int, ooePool []int) Document {
	nClusters := spec.Clusters
	if nClusters <= 0 {
		nClusters = 1
	}
	// Pick a domain, then clusters within it: documents are coherent.
	domain := Domains()[rng.Intn(len(Domains()))]
	clusterIdx := w.domainClusters(domain)
	chosen := make([]int, 0, nClusters)
	for len(chosen) < nClusters {
		chosen = append(chosen, clusterIdx[rng.Intn(len(clusterIdx))])
	}

	nMentions := spec.MinMentions
	if spec.MaxMentions > spec.MinMentions {
		nMentions += rng.Intn(spec.MaxMentions - spec.MinMentions + 1)
	}

	var sb strings.Builder
	var mentions []GoldMention
	for mi := 0; mi < nMentions; mi++ {
		if rng.Float64() < spec.OOERate && (ooePool != nil || len(w.OOE) > 0) {
			gm, sentence := w.ooeMention(rng, spec, day, ooePool)
			if gm.Surface != "" {
				mentions = append(mentions, gm)
				sb.WriteString(sentence)
				continue
			}
		}
		cl := chosen[rng.Intn(len(chosen))]
		ent := w.sampleMember(rng, cl, spec.LongTailBias)
		gm, sentence := w.entityMention(rng, spec, ent)
		mentions = append(mentions, gm)
		sb.WriteString(sentence)
	}
	return Document{ID: id, Day: day, Text: sb.String(), Mentions: mentions}
}

// domainClusters lists cluster indices of a domain.
func (w *World) domainClusters(domain string) []int {
	var idx []int
	for i, c := range w.clusters {
		if c.Domain == domain && len(c.Members) > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 { // degenerate tiny worlds: fall back to any cluster
		for i, c := range w.clusters {
			if len(c.Members) > 0 {
				idx = append(idx, i)
			}
		}
	}
	return idx
}

// sampleMember draws a cluster member; bias > 0 skews toward the long tail
// (low popularity).
func (w *World) sampleMember(rng *rand.Rand, cl int, bias float64) kb.EntityID {
	members := w.clusters[cl].Members
	if len(members) == 1 {
		return members[0]
	}
	if bias <= 0 {
		// Popularity-weighted sampling.
		var total float64
		for _, id := range members {
			total += w.meta[id].Popularity
		}
		x := rng.Float64() * total
		for _, id := range members {
			x -= w.meta[id].Popularity
			if x <= 0 {
				return id
			}
		}
		return members[len(members)-1]
	}
	// Inverse-popularity sampling for the hard split.
	var total float64
	for _, id := range members {
		total += 1 / (w.meta[id].Popularity + 1e-6)
	}
	x := rng.Float64() * total
	for _, id := range members {
		x -= 1 / (w.meta[id].Popularity + 1e-6)
		if x <= 0 {
			return id
		}
	}
	return members[len(members)-1]
}

// entityMention emits the gold mention and a sentence for an in-KB entity.
// With probability ConfusionRate a context phrase is sampled from another
// candidate of the same surface instead of the true entity, simulating the
// misleading local contexts (metonymy, topic mixing) that defeat local
// similarity.
func (w *World) entityMention(rng *rand.Rand, spec CorpusSpec, ent kb.EntityID) (GoldMention, string) {
	m := &w.meta[ent]
	surface := w.displaySurface(m.Names[0])
	if len(m.Names) > 1 && rng.Float64() < spec.AmbiguousSurfaceRate {
		surface = m.Names[1+rng.Intn(len(m.Names)-1)]
	}
	kps := w.KB.Entity(ent).Keyphrases
	confusers := w.confuserPhrases(surface, ent)
	ctx := w.contextWords(rng, spec.ContextRichness, func() string {
		if len(confusers) > 0 && rng.Float64() < spec.ConfusionRate {
			return confusers[rng.Intn(len(confusers))]
		}
		if len(kps) == 0 {
			return fillerWords[rng.Intn(len(fillerWords))]
		}
		return kps[rng.Intn(len(kps))].Phrase
	})
	return GoldMention{Surface: surface, Entity: ent}, sentence(rng, surface, ctx)
}

// displaySurface renders a canonical name the way running text writes it:
// without the Wikipedia-style parenthetical disambiguator ("Kashmir (song)"
// appears as "Kashmir"). Falls back to the canonical form when the base
// name is not a dictionary entry.
func (w *World) displaySurface(canonical string) string {
	base, _, found := strings.Cut(canonical, " (")
	if !found {
		return canonical
	}
	if w.KB.HasName(kb.NormalizeName(base)) {
		return base
	}
	return canonical
}

// confuserPhrases gathers keyphrases of the other candidate entities of a
// surface (the misleading evidence pool).
func (w *World) confuserPhrases(surface string, ent kb.EntityID) []string {
	var out []string
	for _, c := range w.KB.Candidates(surface) {
		if c.Entity == ent {
			continue
		}
		for _, kp := range w.KB.Entity(c.Entity).Keyphrases {
			out = append(out, kp.Phrase)
		}
	}
	return out
}

// ooeMention emits a gold mention for an out-of-KB entity. ooePool, when
// non-nil, restricts eligible OOE indices (news stream day gating).
func (w *World) ooeMention(rng *rand.Rand, spec CorpusSpec, day int, ooePool []int) (GoldMention, string) {
	var pool []int
	if ooePool != nil {
		pool = ooePool
	} else {
		pool = make([]int, len(w.OOE))
		for i := range w.OOE {
			pool[i] = i
		}
	}
	if len(pool) == 0 {
		return GoldMention{}, ""
	}
	o := &w.OOE[pool[rng.Intn(len(pool))]]
	ctx := w.contextWords(rng, spec.ContextRichness, func() string {
		return o.Keyphrases[rng.Intn(len(o.Keyphrases))]
	})
	gm := GoldMention{Surface: o.Surface, Entity: kb.NoEntity, OOEName: o.Name}
	return gm, sentence(rng, o.Surface, ctx)
}

// contextWords draws n context phrases via next() and mixes in filler.
func (w *World) contextWords(rng *rand.Rand, n int, next func() string) []string {
	if n <= 0 {
		n = 3
	}
	out := make([]string, 0, n+2)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			out = append(out, fillerWords[rng.Intn(len(fillerWords))])
		} else {
			out = append(out, next())
		}
	}
	return out
}

// sentence renders one sentence with the mention surface embedded in its
// context phrases. Phrases are comma-separated so that phrase boundaries
// survive part-of-speech keyphrase extraction, as they do in real prose.
func sentence(rng *rand.Rand, surface string, ctx []string) string {
	cut := 0
	if len(ctx) > 0 {
		cut = rng.Intn(len(ctx) + 1)
	}
	parts := make([]string, 0, len(ctx)+2)
	parts = append(parts, ctx[:cut]...)
	parts = append(parts, surface)
	parts = append(parts, ctx[cut:]...)
	return strings.Join(parts, ", ") + ". "
}

// CorpusStats summarizes a corpus the way Table 3.1 does.
type CorpusStats struct {
	Docs                    int
	Mentions                int
	MentionsNoEntity        int
	AvgWordsPerDoc          float64
	AvgMentionsPerDoc       float64
	AvgCandidatesPerMention float64
}

// Stats computes Table 3.1-style properties of a corpus against the KB.
func (w *World) Stats(docs []Document) CorpusStats {
	var s CorpusStats
	s.Docs = len(docs)
	var words, cands, withCands int
	for i := range docs {
		d := &docs[i]
		words += len(strings.Fields(d.Text))
		s.Mentions += len(d.Mentions)
		for _, m := range d.Mentions {
			if m.Entity == kb.NoEntity {
				s.MentionsNoEntity++
			}
			if cs := w.KB.Candidates(m.Surface); len(cs) > 0 {
				cands += len(cs)
				withCands++
			}
		}
	}
	if s.Docs > 0 {
		s.AvgWordsPerDoc = float64(words) / float64(s.Docs)
		s.AvgMentionsPerDoc = float64(s.Mentions) / float64(s.Docs)
	}
	if withCands > 0 {
		s.AvgCandidatesPerMention = float64(cands) / float64(withCands)
	}
	return s
}
