// Package nec implements lightweight named entity classification
// (Sec. 2.4.4): predicting a mention's coarse semantic type (person,
// organization, location, ...) from its context, trained from the
// knowledge base's own type-keyword co-occurrences — the fine-grained type
// systems of Yosef et al. [YBH+12] reduced to the signal NED can use as a
// candidate filter.
package nec

import (
	"math"
	"sort"

	"aida/internal/disambig"
	"aida/internal/kb"
)

// Classifier scores semantic types against mention contexts. Build with
// Train; safe for concurrent use afterwards.
type Classifier struct {
	types []string
	// centroid[type][word] = tf-idf weight of the word in the type's
	// aggregated keyphrase vocabulary.
	centroid map[string]map[string]float64
	norm     map[string]float64
	idf      func(string) float64
}

// Train builds a classifier from the KB: each entity's keyphrase words
// count toward all of the entity's types, mirroring how Wikipedia links
// serve as distant supervision for type classifiers. Entity ids are dense,
// so the id walk covers every shard of a sharded store in id order.
func Train(k kb.Store) *Classifier {
	counts := map[string]map[string]float64{}
	for id := 0; id < k.NumEntities(); id++ {
		e := k.Entity(kb.EntityID(id))
		for _, typ := range e.Types {
			m := counts[typ]
			if m == nil {
				m = map[string]float64{}
				counts[typ] = m
			}
			for _, kp := range e.Keyphrases {
				for _, w := range kp.Words {
					m[w]++
				}
			}
		}
	}
	c := &Classifier{
		centroid: make(map[string]map[string]float64, len(counts)),
		norm:     make(map[string]float64, len(counts)),
		idf:      k.WordIDF,
	}
	for typ, m := range counts {
		c.types = append(c.types, typ)
		vec := make(map[string]float64, len(m))
		var norm float64
		for w, cnt := range m {
			v := math.Log1p(cnt) * idfOf(k.WordIDF, w)
			vec[w] = v
			norm += v * v
		}
		c.centroid[typ] = vec
		c.norm[typ] = math.Sqrt(norm)
	}
	sort.Strings(c.types)
	return c
}

func idfOf(idf func(string) float64, w string) float64 {
	if v := idf(w); v > 0 {
		return v
	}
	return 0.1
}

// Types lists the trained types, sorted.
func (c *Classifier) Types() []string { return c.types }

// Scores returns the cosine similarity of the context to each type
// centroid.
func (c *Classifier) Scores(contextWords []string) map[string]float64 {
	tf := map[string]float64{}
	for _, w := range contextWords {
		tf[w]++
	}
	words := make([]string, 0, len(tf))
	var ctxNorm float64
	for w, f := range tf {
		words = append(words, w)
		v := f * idfOf(c.idf, w)
		ctxNorm += v * v
	}
	sort.Strings(words)
	ctxNorm = math.Sqrt(ctxNorm)
	out := make(map[string]float64, len(c.types))
	for _, typ := range c.types {
		vec := c.centroid[typ]
		var dot float64
		for _, w := range words {
			if cv, ok := vec[w]; ok {
				dot += tf[w] * idfOf(c.idf, w) * cv
			}
		}
		if ctxNorm > 0 && c.norm[typ] > 0 {
			out[typ] = dot / (ctxNorm * c.norm[typ])
		}
	}
	return out
}

// Best returns the highest-scoring type (ties break alphabetically) and
// its score; empty when the classifier has no types.
func (c *Classifier) Best(contextWords []string) (string, float64) {
	scores := c.Scores(contextWords)
	best, bestV := "", -1.0
	for _, typ := range c.types {
		if v := scores[typ]; v > bestV {
			best, bestV = typ, v
		}
	}
	if bestV < 0 {
		return "", 0
	}
	return best, bestV
}

// FilterCandidates demotes candidates whose entity types disagree with the
// predicted context type: when at least one candidate matches the type,
// non-matching candidates are removed. Placeholder (out-of-KB) candidates
// are always kept — type filtering must never suppress emerging entities.
// margin is the minimum winning score for the filter to engage at all
// (low-confidence type predictions should not prune).
func (c *Classifier) FilterCandidates(p *disambig.Problem, margin float64) {
	typ, score := c.Best(p.ContextWords)
	if typ == "" || score < margin {
		return
	}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		var kept []disambig.Candidate
		anyMatch := false
		for _, cand := range m.Candidates {
			if cand.Entity == kb.NoEntity || hasType(cand, typ) {
				if cand.Entity != kb.NoEntity {
					anyMatch = true
				}
				kept = append(kept, cand)
			}
		}
		if anyMatch {
			m.Candidates = kept
		}
	}
}

// hasType checks the candidate's KB types. Candidates carry no type list
// directly; the label's entity does, so the caller must have built the
// problem from a KB. The helper is resilient to placeholder candidates.
func hasType(c disambig.Candidate, typ string) bool {
	for _, t := range c.Types {
		if t == typ {
			return true
		}
	}
	return false
}
