package nec

import (
	"testing"

	"aida/internal/disambig"
	"aida/internal/kb"
)

func buildTypedKB() *kb.KB {
	b := kb.NewBuilder()
	boxer := b.AddEntity("Rubin Carter", "sports", "person", "boxer")
	president := b.AddEntity("Jimmy Carter", "politics", "person", "politician")
	city := b.AddEntity("Carterville", "geography", "location")
	b.AddName("Carter", boxer, 10)
	b.AddName("Carter", president, 80)
	b.AddName("Carter", city, 10)
	b.AddKeyphrase(boxer, "middleweight boxing champion")
	b.AddKeyphrase(boxer, "heavyweight fight")
	b.AddKeyphrase(boxer, "boxing ring")
	b.AddKeyphrase(president, "united states president")
	b.AddKeyphrase(president, "presidential election campaign")
	b.AddKeyphrase(president, "white house")
	b.AddKeyphrase(city, "small rural town")
	b.AddKeyphrase(city, "county seat")
	return b.Build()
}

func TestClassifierTypes(t *testing.T) {
	c := Train(buildTypedKB())
	types := c.Types()
	want := map[string]bool{"person": true, "boxer": true, "politician": true, "location": true}
	for _, typ := range types {
		if !want[typ] {
			t.Fatalf("unexpected type %q", typ)
		}
	}
	if len(types) != len(want) {
		t.Fatalf("types = %v", types)
	}
}

func TestClassifierBest(t *testing.T) {
	c := Train(buildTypedKB())
	typ, score := c.Best([]string{"boxing", "champion", "fight"})
	if typ != "boxer" {
		t.Fatalf("boxing context classified as %q (%.3f)", typ, score)
	}
	typ, _ = c.Best([]string{"presidential", "election", "white", "house"})
	if typ != "politician" {
		t.Fatalf("politics context classified as %q", typ)
	}
	typ, _ = c.Best([]string{"rural", "town", "county"})
	if typ != "location" {
		t.Fatalf("geo context classified as %q", typ)
	}
}

func TestClassifierScoresBounded(t *testing.T) {
	c := Train(buildTypedKB())
	for _, v := range c.Scores([]string{"boxing", "united", "town"}) {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("score out of range: %v", v)
		}
	}
}

func TestFilterCandidates(t *testing.T) {
	k := buildTypedKB()
	p := disambig.NewProblem(k, "The boxing champion Carter won the heavyweight fight.", []string{"Carter"}, 0)
	c := Train(k)
	if got := len(p.Mentions[0].Candidates); got != 3 {
		t.Fatalf("precondition: want 3 candidates, got %d", got)
	}
	c.FilterCandidates(p, 0.05)
	for _, cand := range p.Mentions[0].Candidates {
		if cand.Label == "Carterville" {
			t.Fatal("location candidate should be filtered in boxing context")
		}
	}
	if len(p.Mentions[0].Candidates) == 0 {
		t.Fatal("filter must keep matching candidates")
	}
}

func TestFilterKeepsPlaceholders(t *testing.T) {
	k := buildTypedKB()
	p := disambig.NewProblem(k, "The boxing champion Carter won.", []string{"Carter"}, 0)
	p.Mentions[0].Candidates = append(p.Mentions[0].Candidates, disambig.Candidate{
		Entity: kb.NoEntity, Label: "Carter_EE",
	})
	Train(k).FilterCandidates(p, 0.05)
	found := false
	for _, cand := range p.Mentions[0].Candidates {
		if cand.Label == "Carter_EE" {
			found = true
		}
	}
	if !found {
		t.Fatal("placeholder candidates must survive type filtering")
	}
}

func TestFilterRespectsMargin(t *testing.T) {
	k := buildTypedKB()
	p := disambig.NewProblem(k, "Carter appeared.", []string{"Carter"}, 0)
	before := len(p.Mentions[0].Candidates)
	Train(k).FilterCandidates(p, 0.99) // no context reaches this margin
	if len(p.Mentions[0].Candidates) != before {
		t.Fatal("low-confidence predictions must not prune")
	}
}

func TestFilterImprovesDisambiguation(t *testing.T) {
	k := buildTypedKB()
	text := "Carter won the middleweight boxing title in the ring."
	p := disambig.NewProblem(k, text, []string{"Carter"}, 0)
	Train(k).FilterCandidates(p, 0.05)
	out := disambig.NewAIDAVariant("sim", disambig.Config{}).Disambiguate(p)
	if out.Results[0].Label != "Rubin Carter" {
		t.Fatalf("typed+filtered context should pick the boxer, got %q", out.Results[0].Label)
	}
}
