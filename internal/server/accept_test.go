package server

import (
	"net/http/httptest"
	"testing"
)

func TestNegotiateAccept(t *testing.T) {
	offers := []string{"application/json", "text/plain"}
	for _, tc := range []struct {
		header string
		want   string
	}{
		// Empty/absent header accepts everything: the server's first
		// (default) offer wins.
		{"", "application/json"},
		// Exact types.
		{"text/plain", "text/plain"},
		{"application/json", "application/json"},
		// The bug this parser fixes: mentioning text/plain at a lower
		// preference must not win over the preferred type.
		{"application/json, text/plain;q=0.1", "application/json"},
		{"text/plain;q=0.9, application/json;q=0.1", "text/plain"},
		// Wildcards match at their q, specific ranges take precedence.
		{"*/*", "application/json"},
		{"text/*", "text/plain"},
		{"text/*;q=0.5, application/json;q=0.4", "text/plain"},
		{"*/*;q=0.1, text/plain", "text/plain"},
		// q=0 is an explicit exclusion; an offer no range matches is
		// unacceptable too, so a bare exclusion leaves nothing (the
		// handlers then fall back to their JSON default).
		{"text/plain;q=0", ""},
		{"text/plain;q=0, */*", "application/json"},
		{"*/*;q=0", ""},
		{"application/json;q=0, text/plain;q=0", ""},
		// Parameters other than q are ignored for matching.
		{"text/plain;version=0.0.4", "text/plain"},
		{"text/plain; charset=utf-8; q=0.8, application/json;q=0.2", "text/plain"},
		// Equal q: the range the client listed earlier wins.
		{"text/plain, application/json", "text/plain"},
		{"application/json, text/plain", "application/json"},
		// Unknown types leave only the matched offer.
		{"application/xml, text/plain;q=0.3", "text/plain"},
		// Nothing matches: no acceptable offer.
		{"application/xml", ""},
		// Malformed ranges are skipped; fully malformed headers behave
		// like an absent header.
		{"garbage", "application/json"},
		{"garbage, text/plain", "text/plain"},
		{"text/plain;q=bogus", ""}, // unparseable q excludes the range
		{"text/plain;q=bogus, application/xml", ""},
		// q is clamped into [0,1].
		{"text/plain;q=9, application/json", "text/plain"},
	} {
		if got := negotiateAccept(tc.header, offers...); got != tc.want {
			t.Errorf("negotiateAccept(%q) = %q, want %q", tc.header, got, tc.want)
		}
	}
}

func TestWantsPrometheus(t *testing.T) {
	for _, tc := range []struct {
		query, accept string
		want          bool
	}{
		{"", "", false},
		{"", "text/plain", true},
		// The misrouting bug: a multi-type header that merely mentions
		// text/plain must not select the exposition.
		{"", "application/json, text/plain;q=0.1", false},
		{"", "text/plain;q=0.9, application/json;q=0.1", true},
		{"", "*/*", false},
		{"", "text/*", true},
		{"", "text/plain;version=0.0.4", true},
		{"", "application/openmetrics-text", false},
		// Query params override the header in both directions.
		{"format=prometheus", "application/json", true},
		{"format=json", "text/plain", false},
	} {
		r := httptest.NewRequest("GET", "/v1/stats?"+tc.query, nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		if got := wantsPrometheus(r); got != tc.want {
			t.Errorf("wantsPrometheus(query=%q, accept=%q) = %v, want %v", tc.query, tc.accept, got, tc.want)
		}
	}
}

func TestWantsNDJSON(t *testing.T) {
	for _, tc := range []struct {
		query, accept string
		want          bool
	}{
		{"", "", false},
		{"", "application/x-ndjson", true},
		// The q=0 bug: an explicit opt-out used to *enable* streaming.
		{"", "application/x-ndjson;q=0", false},
		{"", "application/json, application/x-ndjson;q=0.5", false},
		{"", "application/x-ndjson, application/json;q=0.5", true},
		{"", "text/html, application/x-ndjson", true},
		// Client listing both at equal preference gets the server
		// default (the buffered JSON array).
		{"", "application/json, application/x-ndjson", false},
		{"stream=1", "", true},
		{"stream=true", "", true},
		{"stream=ndjson", "", true},
		{"stream=0", "application/x-ndjson", true}, // not an opt-out value; header decides
	} {
		r := httptest.NewRequest("POST", "/v1/annotate/batch?"+tc.query, nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		if got := wantsNDJSON(r); got != tc.want {
			t.Errorf("wantsNDJSON(query=%q, accept=%q) = %v, want %v", tc.query, tc.accept, got, tc.want)
		}
	}
}

func TestWantsHTML(t *testing.T) {
	for _, tc := range []struct {
		query, accept string
		want          bool
	}{
		{"", "", false},
		{"", "text/html", true},
		{"", "text/html;q=0", false},
		{"", "application/json, text/html;q=0.5", false},
		// A browser's default Accept header prefers HTML.
		{"", "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8", true},
		{"format=html", "application/json", true},
		{"format=json", "text/html", false},
	} {
		r := httptest.NewRequest("POST", "/v1/annotate?"+tc.query, nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		if got := wantsHTML(r); got != tc.want {
			t.Errorf("wantsHTML(query=%q, accept=%q) = %v, want %v", tc.query, tc.accept, got, tc.want)
		}
	}
}
