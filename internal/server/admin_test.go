package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"aida"
)

// TestAdminSnapshotWritesLoadableEngine drives the full warm-start loop
// through the HTTP surface: traffic warms the engine, POST
// /v1/admin/snapshot persists it, and a fresh system that loads the file
// answers byte-identically to the serving one.
func TestAdminSnapshotWritesLoadableEngine(t *testing.T) {
	k, docs := testWorld(t, 6)
	path := filepath.Join(t.TempDir(), "engine.snap")
	sys, ts := newTestServer(t, k, Config{EngineSnapshotPath: path})

	// Warm the engine: annotate traffic plus relatedness lookups (the
	// latter intern KORE profiles).
	resp := postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	readAll(t, resp)
	for i := 1; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/v1/relatedness?kind=KORE&a=0&b=" + itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
	}

	resp, err := http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var sr snapshotResponse
	if err := json.Unmarshal(readAll(t, resp), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Path != path {
		t.Errorf("snapshot path %q, want %q", sr.Path, path)
	}
	if sr.Profiles == 0 || sr.Pairs == 0 || sr.Bytes == 0 {
		t.Errorf("snapshot response reports empty engine: %+v", sr)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if fi.Size() != sr.Bytes {
		t.Errorf("snapshot file is %d bytes, response said %d", fi.Size(), sr.Bytes)
	}

	// A fresh process loads the file and answers identically.
	warm := aida.New(k, aida.WithMaxCandidates(10))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := warm.LoadEngine(f); err != nil {
		t.Fatalf("LoadEngine from admin snapshot: %v", err)
	}
	if st := warm.Scorer().Stats(); st.Profiles == 0 || st.Pairs == 0 {
		t.Fatalf("loaded engine is cold: %+v", st)
	}
	for _, doc := range docs {
		if got, want := expectedWire(t, warm, doc), expectedWire(t, sys, doc); !bytes.Equal(got, want) {
			t.Fatalf("warm-started annotations diverge from serving system\n got: %s\nwant: %s", got, want)
		}
	}

	// The endpoint is counted like every other routed path.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.RequestsByEndpoint["/v1/admin/snapshot"] != 1 {
		t.Errorf("snapshot endpoint counter: %+v", st.Server.RequestsByEndpoint)
	}
}

// TestAdminSnapshotUnconfigured: a server started without a snapshot path
// answers 409, with no file side effects.
func TestAdminSnapshotUnconfigured(t *testing.T) {
	k, _ := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{})
	resp, err := http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	var er errorResponse
	if err := json.Unmarshal(readAll(t, resp), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" {
		t.Error("409 body carries no error message")
	}
}

// TestAdminSnapshotUnwritablePath: a failing write surfaces as a 500 with
// the error, and no half-written file appears at the target.
func TestAdminSnapshotUnwritablePath(t *testing.T) {
	k, _ := testWorld(t, 1)
	path := filepath.Join(t.TempDir(), "no-such-dir", "engine.snap")
	_, ts := newTestServer(t, k, Config{EngineSnapshotPath: path})
	resp, err := http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusInternalServerError)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed snapshot left a file at %s", path)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
