package server

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"aida"
	"aida/internal/kb"
	"aida/internal/kb/live"
)

// testDelta builds a valid one-entity delta against k: a new entity whose
// keyphrase features are borrowed from an existing one (so all vocabulary
// already carries base IDF weights), linked both ways to it, with a
// dictionary row for the new name.
func testDelta(k aida.Store) *kb.Delta {
	src := k.Entity(5)
	base := kb.EntityID(k.NumEntities())
	ne := kb.NewEntity{Name: "Zorvex Dynamics", Domain: "emerging", Types: []string{"emerging"}}
	n := len(src.Keyphrases)
	if n > 4 {
		n = 4
	}
	ne.Keyphrases = append(ne.Keyphrases, src.Keyphrases[:n]...)
	return &kb.Delta{
		BaseEntities: k.NumEntities(),
		Entities:     []kb.NewEntity{ne},
		Links:        []kb.LinkAddition{{Src: base, Dst: 5}, {Src: 5, Dst: base}},
		Rows:         []kb.RowAddition{{Surface: "Zorvex Dynamics", Entity: base, Count: 3}},
	}
}

// TestDeltaEndpoint exercises the live-update surface end to end: apply
// over HTTP, immediate linkability of the new entity, rejection of a
// stale delta, generation counters in healthz/stats/metrics, and journal
// replay reproducing the serving store.
func TestDeltaEndpoint(t *testing.T) {
	k, _ := testWorld(t, 1)
	journalPath := filepath.Join(t.TempDir(), "deltas.journal")
	j, err := live.OpenJournal(journalPath)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	sys, ts := newTestServer(t, k, Config{DeltaJournal: j})

	d := testDelta(k)
	resp := postJSON(t, ts.URL+"/v1/admin/kb/delta", d)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var dr deltaResponse
	if err := json.Unmarshal(readAll(t, resp), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Generation != 1 || dr.Entities != 1 || dr.Rows != 1 || dr.Links != 2 || !dr.Journaled {
		t.Fatalf("unexpected delta response: %+v", dr)
	}
	if dr.KBEntities != k.NumEntities()+1 {
		t.Fatalf("KBEntities = %d, want %d", dr.KBEntities, k.NumEntities()+1)
	}

	// The very next annotation request links the new entity by name.
	wantID, ok := sys.Store().EntityByName("Zorvex Dynamics")
	if !ok {
		t.Fatal("applied entity not resolvable by name")
	}
	resp = postJSON(t, ts.URL+"/v1/annotate", annotateRequest{
		Text: "Quarterly reports about Zorvex Dynamics circulated widely today.",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("annotate status %d", resp.StatusCode)
	}
	var got struct {
		Annotations []Annotation `json:"annotations"`
	}
	if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	linked := false
	for _, a := range got.Annotations {
		if strings.Contains(a.Text, "Zorvex Dynamics") && a.Entity == wantID {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("new entity not linked over HTTP; annotations: %+v", got.Annotations)
	}

	// A delta built against generation 0 no longer validates.
	resp = postJSON(t, ts.URL+"/v1/admin/kb/delta", d)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale delta status %d, want 400", resp.StatusCode)
	}
	if body := string(readAll(t, resp)); !strings.Contains(body, "delta rejected") {
		t.Fatalf("stale delta body: %s", body)
	}

	// healthz reports the serving generation.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.Unmarshal(readAll(t, hresp), &h); err != nil {
		t.Fatal(err)
	}
	if h.Generation != 1 || h.Entities != k.NumEntities()+1 {
		t.Fatalf("healthz = %+v", h)
	}

	// /v1/stats carries the generation counters and per-endpoint latency.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(readAll(t, sresp), &st); err != nil {
		t.Fatal(err)
	}
	if st.KB.Generation != 1 || st.KB.DeltaApplies != 1 || st.KB.DeltaEntities != 1 || st.KB.DeltaRows != 1 {
		t.Fatalf("stats KB counters: %+v", st.KB)
	}
	ls, ok := st.Server.LatencyByEndpoint["/v1/annotate"]
	if !ok || ls.Count < 1 {
		t.Fatalf("latency_by_endpoint missing annotate traffic: %+v", st.Server.LatencyByEndpoint)
	}
	if ls.Buckets["+Inf"] != ls.Count {
		t.Fatalf("histogram not cumulative: +Inf bucket %d != count %d", ls.Buckets["+Inf"], ls.Count)
	}
	if _, ok := st.Server.LatencyByEndpoint["/v1/store"]; ok {
		t.Error("zero-traffic endpoint present in latency_by_endpoint")
	}

	// The Prometheus rendering exposes the same counters.
	presp, err := http.Get(ts.URL + "/v1/stats?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, presp))
	for _, want := range []string{
		"aida_kb_generation 1",
		"aida_kb_delta_applies_total 1",
		"aida_kb_delta_entities_total 1",
		"aida_kb_delta_rows_total 1",
		`aida_server_request_seconds_bucket{endpoint="/v1/annotate",le="+Inf"}`,
		`aida_server_request_seconds_count{endpoint="/v1/annotate"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Replaying the journal into a fresh system reproduces the serving
	// store exactly.
	sys2 := aida.New(k)
	n, truncated, err := live.ReplayJournal(journalPath, func(d *kb.Delta) error {
		_, err := sys2.ApplyDelta(d)
		return err
	})
	if err != nil || truncated || n != 1 {
		t.Fatalf("ReplayJournal = (%d, %v, %v), want (1, false, nil)", n, truncated, err)
	}
	if sys2.Store().Fingerprint() != sys.Store().Fingerprint() {
		t.Fatal("journal replay did not reproduce the serving fingerprint")
	}
}

// TestDeltaEndpointRejectsMalformed pins the failure modes: a body that is
// not JSON and a delta that fails validation are both 400s, and neither
// moves the generation.
func TestDeltaEndpointRejectsMalformed(t *testing.T) {
	k, _ := testWorld(t, 1)
	sys, ts := newTestServer(t, k, Config{})

	resp, err := http.Post(ts.URL+"/v1/admin/kb/delta", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)

	bad := testDelta(k)
	bad.Entities[0].Name = k.Entity(0).Name // collides with the base
	resp = postJSON(t, ts.URL+"/v1/admin/kb/delta", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid delta status %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)

	if got := sys.Generation(); got != 0 {
		t.Fatalf("generation moved to %d on rejected deltas", got)
	}
}

// TestOnDocumentHook verifies the annotate endpoints feed the graduation
// loop's Note hook with the document text and its annotations.
func TestOnDocumentHook(t *testing.T) {
	k, docs := testWorld(t, 2)
	var mu sync.Mutex
	var texts []string
	var counts []int
	hook := func(text string, anns []aida.Annotation) {
		mu.Lock()
		defer mu.Unlock()
		texts = append(texts, text)
		counts = append(counts, len(anns))
	}
	_, ts := newTestServer(t, k, Config{OnDocument: hook})

	resp := postJSON(t, ts.URL+"/v1/annotate", annotateRequest{Text: docs[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	readAll(t, resp)
	mu.Lock()
	if len(texts) != 1 || texts[0] != docs[0] || counts[0] == 0 {
		t.Fatalf("hook saw texts=%d counts=%v", len(texts), counts)
	}
	mu.Unlock()

	resp = postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	readAll(t, resp)
	mu.Lock()
	defer mu.Unlock()
	if len(texts) != 1+len(docs) {
		t.Fatalf("hook saw %d documents after batch, want %d", len(texts), 1+len(docs))
	}
}
