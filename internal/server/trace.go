package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// Request tracing: every request gets an id — the client's X-Request-ID
// when it sends a usable one, a fresh random id otherwise — that is
// echoed on the response header, attached to the structured request log
// line, embedded in every error body and threaded through the request
// context into the annotation pipeline (aida.WithRequestID stamps it into
// Document.Stats). A throttled, failed or slow request is therefore
// attributable end to end from any one of its artifacts.

// requestIDHeader is the trace header, accepted and echoed verbatim.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client ids so a hostile header cannot
// bloat logs or metrics payloads.
const maxRequestIDLen = 128

type requestIDKey struct{}

// requestID returns the trace id of the request's context ("" outside the
// traced middleware, e.g. in direct handler unit tests).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// traced is the outermost middleware: it resolves the request's trace id,
// sets the response header immediately — so even a 401/429 short-circuit
// from the tenant layer carries it — and stores it in the request context
// for the log line and the annotation pipeline.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// sanitizeRequestID accepts a client-supplied id only when it is short and
// printable ASCII; anything else ("" included) makes the server mint its
// own. Control bytes are rejected so an id can never break a log line or
// an exposition label.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// newRequestID mints a 16-hex-char random id. crypto/rand never fails on
// the supported platforms; if it somehow does, Read panics, which is the
// right call for a broken entropy source.
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
