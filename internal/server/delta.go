package server

import (
	"context"
	"net/http"
	"time"

	"aida/internal/kb"
)

// deltaResponse is the body of a successful POST /v1/admin/kb/delta.
type deltaResponse struct {
	// Generation is the KB generation now serving.
	Generation uint64 `json:"generation"`
	// Entities/Rows/Links count the delta's additions; Touched is how
	// many pre-existing entities had their link sets extended.
	Entities int `json:"entities"`
	Rows     int `json:"rows"`
	Links    int `json:"links"`
	Touched  int `json:"touched"`
	// KBEntities is the repository size after the apply.
	KBEntities int `json:"kb_entities"`
	// Journaled reports whether the delta was durably recorded (always
	// false when the server runs without -delta-journal; false with a
	// logged error when the append failed — the apply itself stands).
	Journaled bool `json:"journaled"`
}

// handleDeltaApply installs a live KB delta into the serving system: the
// body is the kb.Delta wire form, validation failures are 400s, and a
// successful apply swaps the serving generation atomically — the very next
// annotation request can link the new entities by name. Apply and journal
// append are paired under a lock so the journal records applies in order.
func (s *Server) handleDeltaApply(w http.ResponseWriter, r *http.Request) {
	if s.clientGone(w, r) {
		return
	}
	var d kb.Delta
	if !s.decodeBody(w, r, &d) {
		return
	}
	s.applyMu.Lock()
	receipt, err := s.sys.ApplyDelta(&d)
	journaled := false
	var jerr error
	if err == nil && s.cfg.DeltaJournal != nil {
		if jerr = s.cfg.DeltaJournal.Append(&d); jerr == nil {
			journaled = true
		}
	}
	s.applyMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, "delta rejected: "+err.Error())
		return
	}
	if jerr != nil {
		// The generation already swapped; losing the journal entry costs
		// replay durability, not serving correctness. Surface it loudly.
		s.log.Error("delta journal append failed", "err", jerr)
	}
	s.log.Info("kb delta applied",
		"generation", receipt.Generation,
		"entities", receipt.Entities,
		"rows", receipt.Rows,
		"links", receipt.Links,
		"touched", receipt.Touched,
		"kb_entities", receipt.KBEntities,
		"journaled", journaled,
	)
	writeJSON(w, http.StatusOK, deltaResponse{
		Generation: receipt.Generation,
		Entities:   receipt.Entities,
		Rows:       receipt.Rows,
		Links:      receipt.Links,
		Touched:    receipt.Touched,
		KBEntities: receipt.KBEntities,
		Journaled:  journaled,
	})
}

// SnapshotEvery persists the warm scoring engine to the configured
// snapshot path every interval until ctx is canceled (the -snapshot-every
// flag of cmd/aidaserver). It is a no-op when the server has no snapshot
// path or the interval is not positive, so callers can start it
// unconditionally. Write failures are logged and do not stop the loop.
func (s *Server) SnapshotEvery(ctx context.Context, every time.Duration) {
	if s.cfg.EngineSnapshotPath == "" || every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n, err := s.sys.SaveEngineFile(s.cfg.EngineSnapshotPath)
			if err != nil {
				s.log.Error("periodic engine snapshot failed", "path", s.cfg.EngineSnapshotPath, "err", err)
				continue
			}
			s.log.Info("periodic engine snapshot written", "path", s.cfg.EngineSnapshotPath, "bytes", n)
		}
	}
}
