package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// tenantedServer builds a test server whose registry holds the given
// tenants.
func tenantedServer(t testing.TB, docs int, cfgs []TenantConfig) (ts string, texts []string) {
	t.Helper()
	k, texts := testWorld(t, docs)
	reg, err := NewTenants(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	_, srv := newTestServer(t, k, Config{Tenants: reg})
	return srv.URL, texts
}

// annotateAs posts one annotate request authenticated as the given API
// key (empty = no credentials) and returns the response.
func annotateAs(t testing.TB, url, key, text string) *http.Response {
	t.Helper()
	body := mustJSON(t, annotateRequest{Text: text})
	req, err := http.NewRequest("POST", url+"/v1/annotate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTenantAuth(t *testing.T) {
	url, docs := tenantedServer(t, 1, []TenantConfig{
		{Name: "alpha", Key: "ka"},
	})

	t.Run("no key", func(t *testing.T) {
		resp := annotateAs(t, url, "", docs[0])
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("status %d, want 401 (body %s)", resp.StatusCode, body)
		}
		if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
			t.Errorf("WWW-Authenticate = %q", got)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" || e.RequestID == "" {
			t.Errorf("401 body %s should carry error and request_id", body)
		}
	})
	t.Run("wrong key", func(t *testing.T) {
		resp := annotateAs(t, url, "bogus", docs[0])
		readAll(t, resp)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("status %d, want 401", resp.StatusCode)
		}
	})
	t.Run("x-api-key", func(t *testing.T) {
		resp := annotateAs(t, url, "ka", docs[0])
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
	})
	t.Run("bearer", func(t *testing.T) {
		req, _ := http.NewRequest("POST", url+"/v1/annotate",
			bytes.NewReader(mustJSON(t, annotateRequest{Text: docs[0]})))
		req.Header.Set("Authorization", "Bearer ka")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
	})
	t.Run("open endpoints", func(t *testing.T) {
		for _, path := range []string{"/healthz", "/v1/stats", "/demo"} {
			resp, err := http.Get(url + path)
			if err != nil {
				t.Fatal(err)
			}
			readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s without key: status %d, want 200", path, resp.StatusCode)
			}
		}
	})
}

// TestTenantQuotaExactAdmission is the -race admission test of the
// multi-tenant layer: N concurrent clients per tenant race into buckets
// of different sizes, and each tenant must observe exactly its own
// limit — burst admitted, the rest rejected with 429 + Retry-After —
// with the counters in both /v1/stats and the Prometheus exposition
// agreeing per tenant.
func TestTenantQuotaExactAdmission(t *testing.T) {
	// Refill is negligible on the test's timescale (one token per ~17
	// minutes), so admissions come out of the initial burst only.
	const trickle = 0.001
	url, docs := tenantedServer(t, 1, []TenantConfig{
		{Name: "alpha", Key: "ka", RatePerSec: trickle, Burst: 1},
		{Name: "beta", Key: "kb", RatePerSec: trickle, Burst: 3},
	})

	const clientsPerTenant = 6
	type outcome struct {
		tenant     string
		status     int
		retryAfter string
		err        error
	}
	results := make(chan outcome, 2*clientsPerTenant)
	body := mustJSON(t, annotateRequest{Text: docs[0]})
	var wg sync.WaitGroup
	for _, key := range []string{"ka", "kb"} {
		for c := 0; c < clientsPerTenant; c++ {
			wg.Add(1)
			// No t.Fatal below: FailNow must not be called off the test
			// goroutine, so failures travel through the results channel.
			go func(key string) {
				defer wg.Done()
				req, err := http.NewRequest("POST", url+"/v1/annotate", bytes.NewReader(body))
				if err != nil {
					results <- outcome{tenant: key, err: err}
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-API-Key", key)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					results <- outcome{tenant: key, err: err}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results <- outcome{key, resp.StatusCode, resp.Header.Get("Retry-After"), nil}
			}(key)
		}
	}
	wg.Wait()
	close(results)

	admitted := map[string]int{}
	throttled := map[string]int{}
	for r := range results {
		if r.err != nil {
			t.Fatalf("tenant %s: %v", r.tenant, r.err)
		}
		switch r.status {
		case http.StatusOK:
			admitted[r.tenant]++
		case http.StatusTooManyRequests:
			throttled[r.tenant]++
			secs, err := strconv.Atoi(r.retryAfter)
			if err != nil || secs < 1 {
				t.Errorf("tenant %s: 429 Retry-After = %q, want a positive integer", r.tenant, r.retryAfter)
			}
		default:
			t.Errorf("tenant %s: unexpected status %d", r.tenant, r.status)
		}
	}
	// Exactly the burst admitted, per tenant: 1 for alpha, 3 for beta.
	if admitted["ka"] != 1 || throttled["ka"] != clientsPerTenant-1 {
		t.Errorf("alpha: %d admitted / %d throttled, want 1 / %d", admitted["ka"], throttled["ka"], clientsPerTenant-1)
	}
	if admitted["kb"] != 3 || throttled["kb"] != clientsPerTenant-3 {
		t.Errorf("beta: %d admitted / %d throttled, want 3 / %d", admitted["kb"], throttled["kb"], clientsPerTenant-3)
	}

	// The same numbers must surface in the stats JSON...
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]TenantStats{
		"alpha": {Requests: clientsPerTenant, Throttled: clientsPerTenant - 1, RatePerSec: trickle, Burst: 1},
		"beta":  {Requests: clientsPerTenant, Throttled: clientsPerTenant - 3, RatePerSec: trickle, Burst: 3},
	} {
		got, ok := st.Server.Tenants[name]
		if !ok {
			t.Fatalf("stats missing tenant %q: %+v", name, st.Server.Tenants)
		}
		if got.Requests != want.Requests || got.Throttled != want.Throttled ||
			got.InFlight != 0 || got.RatePerSec != want.RatePerSec || got.Burst != want.Burst {
			t.Errorf("tenant %q stats = %+v, want %+v", name, got, want)
		}
	}

	// ...and in the Prometheus exposition, with tenant labels.
	promResp, err := http.Get(url + "/v1/stats?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readAll(t, promResp))
	for _, line := range []string{
		fmt.Sprintf(`aida_server_tenant_requests_total{tenant="alpha"} %d`, clientsPerTenant),
		fmt.Sprintf(`aida_server_tenant_requests_total{tenant="beta"} %d`, clientsPerTenant),
		fmt.Sprintf(`aida_server_tenant_throttled_total{tenant="alpha"} %d`, clientsPerTenant-1),
		fmt.Sprintf(`aida_server_tenant_throttled_total{tenant="beta"} %d`, clientsPerTenant-3),
		`aida_server_tenant_in_flight{tenant="alpha"} 0`,
	} {
		if !strings.Contains(prom, line) {
			t.Errorf("prometheus output missing %q", line)
		}
	}
}

// TestTenantRetryAfterReflectsBucket pins the Retry-After arithmetic: an
// empty bucket refilling at 0.001 tokens/s is ~1000 seconds from the next
// token, and the header must say so (rounded up, never 0).
func TestTenantRetryAfterReflectsBucket(t *testing.T) {
	url, docs := tenantedServer(t, 1, []TenantConfig{
		{Name: "alpha", Key: "ka", RatePerSec: 0.001, Burst: 1},
	})
	if resp := annotateAs(t, url, "ka", docs[0]); resp.StatusCode != http.StatusOK {
		readAll(t, resp)
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
	resp := annotateAs(t, url, "ka", docs[0])
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", resp.Header.Get("Retry-After"))
	}
	// ceil((1 - ε) / 0.001) — at most 1000, and well above 900 unless the
	// test machine stalled for over a minute between the two requests.
	if secs < 900 || secs > 1000 {
		t.Errorf("Retry-After = %d, want ~1000 (empty bucket at 0.001 tokens/s)", secs)
	}

	if secs := retryAfterSeconds(0); secs != 1 {
		t.Errorf("retryAfterSeconds(0) = %d, want floor of 1", secs)
	}
	if secs := retryAfterSeconds(1100 * time.Millisecond); secs != 2 {
		t.Errorf("retryAfterSeconds(1.1s) = %d, want 2 (rounded up)", secs)
	}
}

func TestTenantMaxConcurrent(t *testing.T) {
	reg, err := NewTenants([]TenantConfig{{Name: "alpha", Key: "ka", MaxConcurrent: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tn := reg.lookup("ka")
	if tn == nil {
		t.Fatal("lookup failed")
	}
	now := time.Now()
	if ok, _ := tn.admit(now); !ok {
		t.Fatal("first request should hold the only slot")
	}
	ok, retry := tn.admit(now)
	if ok {
		t.Fatal("second concurrent request admitted past max_concurrent=1")
	}
	if retry < time.Second {
		t.Errorf("concurrency rejection suggested Retry-After %v, want >= 1s", retry)
	}
	if st := reg.Stats()["alpha"]; st.InFlight != 1 || st.Throttled != 1 {
		t.Errorf("mid-flight stats = %+v, want in_flight 1, throttled 1", st)
	}
	tn.release()
	if ok, _ := tn.admit(now); !ok {
		t.Fatal("slot not reusable after release")
	}
	tn.release()
	if st := reg.Stats()["alpha"]; st.InFlight != 0 {
		t.Errorf("in_flight = %d after all releases", st.InFlight)
	}
}

func TestTenantConfigValidation(t *testing.T) {
	for name, cfgs := range map[string][]TenantConfig{
		"empty name":    {{Key: "k"}},
		"empty key":     {{Name: "a"}},
		"negative rate": {{Name: "a", Key: "k", RatePerSec: -1}},
		"dup name":      {{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}},
		"dup key":       {{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},
	} {
		if _, err := NewTenants(cfgs); err == nil {
			t.Errorf("%s: NewTenants accepted invalid config", name)
		}
	}

	// Burst defaulting: ceil(rate), minimum 1.
	reg, err := NewTenants([]TenantConfig{
		{Name: "a", Key: "k1", RatePerSec: 2.5},
		{Name: "b", Key: "k2", RatePerSec: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := reg.Stats(); st["a"].Burst != 3 || st["b"].Burst != 1 {
		t.Errorf("burst defaults = %d, %d, want 3, 1", st["a"].Burst, st["b"].Burst)
	}
}

// TestTenantsReload exercises the SIGHUP path: a reload re-keys a tenant,
// adds another, keeps the old tenant's counters, and a broken file never
// replaces the serving table.
func TestTenantsReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeFile := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(`{"tenants": [{"name": "alpha", "key": "ka"}]}`)
	reg, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	k, docs := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{Tenants: reg})

	for i := 0; i < 2; i++ {
		resp := annotateAs(t, ts.URL, "ka", docs[0])
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	// Re-key alpha, add beta.
	writeFile(`{"tenants": [
		{"name": "alpha", "key": "ka2"},
		{"name": "beta", "key": "kb"}
	]}`)
	n, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reload reported %d tenants, want 2", n)
	}
	if resp := annotateAs(t, ts.URL, "ka", docs[0]); resp.StatusCode != http.StatusUnauthorized {
		readAll(t, resp)
		t.Errorf("old key after re-key: status %d, want 401", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
	if resp := annotateAs(t, ts.URL, "ka2", docs[0]); resp.StatusCode != http.StatusOK {
		readAll(t, resp)
		t.Errorf("new key: status %d, want 200", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
	// Counters survived the reload: 2 before + 1 after.
	if st := reg.Stats(); st["alpha"].Requests != 3 {
		t.Errorf("alpha requests = %d after reload, want 3 (counters must survive)", st["alpha"].Requests)
	} else if _, ok := st["beta"]; !ok {
		t.Error("beta missing after reload")
	}

	// A broken push must not take the limits down.
	writeFile(`{"tenants": [{"name": "", "key": "nope"}]}`)
	if _, err := reg.Reload(); err == nil {
		t.Fatal("reload of an invalid file should fail")
	}
	if resp := annotateAs(t, ts.URL, "ka2", docs[0]); resp.StatusCode != http.StatusOK {
		readAll(t, resp)
		t.Errorf("serving table changed after failed reload: status %d", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
}
