package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"aida"
)

// TestAnnotateValidationErrorParity pins the cross-layer error contract of
// the request-spec API: a bad request rejected over HTTP carries a 400
// with EXACTLY the error text the Go API produces for the same spec —
// asserted both against the literal strings (mirroring spec_test.go in the
// root package) and live against sys.ValidateRequest.
func TestAnnotateValidationErrorParity(t *testing.T) {
	k, docs := testWorld(t, 1)
	sys, ts := newTestServer(t, k, Config{})

	manyKeyphrases := make([]string, aida.MaxContextKeyphrases+1)
	for i := range manyKeyphrases {
		manyKeyphrases[i] = "quantum chromodynamics"
	}
	manyEntities := make([]aida.EntityID, aida.MaxContextEntities+1)

	cases := []struct {
		name string
		spec aida.RequestSpec
		want string
	}{
		{
			name: "unknown method",
			spec: aida.RequestSpec{Method: "bogus"},
			want: `unknown method "bogus" (want aida, cuc, iw, kul-ci, prior, sim, tagme)`,
		},
		{
			name: "negative parallelism",
			spec: aida.RequestSpec{Parallelism: -2},
			want: "invalid parallelism -2: must be >= 0 (0 means the default)",
		},
		{
			name: "unknown domain",
			spec: aida.RequestSpec{Domain: "medicine"},
			want: `unknown domain "medicine" (no domains registered)`,
		},
		{
			name: "oversized context keyphrases",
			spec: aida.RequestSpec{Context: &aida.ContextSpec{Keyphrases: manyKeyphrases}},
			want: "context too large: 65 keyphrases exceed the limit of 64",
		},
		{
			name: "oversized context entities",
			spec: aida.RequestSpec{Context: &aida.ContextSpec{Entities: manyEntities}},
			want: "context too large: 257 entities exceed the limit of 256",
		},
		{
			name: "context weight out of range",
			spec: aida.RequestSpec{Context: &aida.ContextSpec{Keyphrases: []string{"physics"}, Weight: 1.5}},
			want: "invalid context weight 1.5: must be in [0, 1]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The Go layer's verdict for the identical spec.
			goErr := sys.ValidateRequest(&tc.spec)
			if goErr == nil || goErr.Error() != tc.want {
				t.Fatalf("ValidateRequest = %v, want %q", goErr, tc.want)
			}

			endpoints := []struct {
				name string
				url  string
				body any
			}{
				{"annotate", ts.URL + "/v1/annotate", annotateRequest{Text: docs[0], RequestSpec: tc.spec}},
				{"batch", ts.URL + "/v1/annotate/batch", batchRequest{Docs: docs, RequestSpec: tc.spec}},
				// The streaming batch path commits its 200 before the first
				// document, so it must pre-validate and 400 just the same.
				{"batch stream", ts.URL + "/v1/annotate/batch?stream=1", batchRequest{Docs: docs, RequestSpec: tc.spec}},
			}
			for _, ep := range endpoints {
				resp := postJSON(t, ep.url, ep.body)
				body := readAll(t, resp)
				if resp.StatusCode != http.StatusBadRequest {
					t.Errorf("%s: status %d (body %s), want 400", ep.name, resp.StatusCode, body)
					continue
				}
				var er struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(body, &er); err != nil {
					t.Errorf("%s: non-JSON error body %q: %v", ep.name, body, err)
					continue
				}
				if er.Error != goErr.Error() {
					t.Errorf("%s: HTTP error %q != Go error %q", ep.name, er.Error, goErr)
				}
			}
		})
	}
}

// TestBatchRejectsPerMentionExtras pins the batch endpoint's shape guard:
// candidates, confidence and stats only exist on /v1/annotate.
func TestBatchRejectsPerMentionExtras(t *testing.T) {
	k, docs := testWorld(t, 2)
	_, ts := newTestServer(t, k, Config{})
	want := "batch responses carry annotations only: request candidates, confidence or stats via /v1/annotate"

	for _, spec := range []aida.RequestSpec{
		{Candidates: true},
		{Confidence: &aida.ConfidenceSpec{Iterations: 3}},
		{Stats: true},
	} {
		resp := postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs, RequestSpec: spec})
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d (body %s), want 400", spec, resp.StatusCode, body)
		}
		var er struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &er); err != nil || er.Error != want {
			t.Fatalf("spec %+v: error body %s, want %q", spec, body, want)
		}
	}
}

// TestAnnotateDomainAndContextOverHTTP drives the happy path of the new
// request fields end to end: a domain layer and a context prior change the
// chosen entities over HTTP exactly as they do in-process.
func TestAnnotateDomainAndContextOverHTTP(t *testing.T) {
	k, docs := testWorld(t, 1)
	sys, ts := newTestServer(t, k, Config{})

	surface := k.Names()[0]
	entity := k.Entity(k.Candidates(surface)[0].Entity).Name
	if err := sys.RegisterDomain(aida.DomainDictionary{
		Name: "news",
		Rows: []aida.DomainRow{{Surface: surface, Entity: entity, Count: 1}},
	}); err != nil {
		t.Fatal(err)
	}

	for _, spec := range []aida.RequestSpec{
		{Domain: "news"},
		{Context: &aida.ContextSpec{Keyphrases: []string{"championship season"}, Weight: 0.4}},
	} {
		resp := postJSON(t, ts.URL+"/v1/annotate", annotateRequest{Text: docs[0], RequestSpec: spec})
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spec %+v: status %d (body %s)", spec, resp.StatusCode, body)
		}
		doc, err := sys.AnnotateDoc(t.Context(), docs[0], spec.Options()...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(wireAnnotations(doc.Annotations))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Annotations json.RawMessage `json:"annotations"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("spec %+v: bad response body %s: %v", spec, body, err)
		}
		if string(got.Annotations) != string(want) {
			t.Errorf("spec %+v: HTTP annotations diverge from in-process:\n http: %s\n go:   %s",
				spec, got.Annotations, want)
		}
	}
}
