package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aida"
	"aida/internal/wiki"
)

// testWorld generates a synthetic KB plus a document corpus, mirroring the
// batch tests of the root package.
func testWorld(t testing.TB, docs int) (*aida.KB, []string) {
	t.Helper()
	w := wiki.Generate(wiki.Config{Seed: 17, Entities: 300})
	corpus := w.GenerateCorpus(wiki.CoNLLSpec(docs, 23))
	texts := make([]string, len(corpus))
	for i, d := range corpus {
		texts[i] = d.Text
	}
	return w.KB, texts
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer builds a Server plus httptest front-end over a fresh
// System for the given KB store (a plain KB or a sharded router).
func newTestServer(t testing.TB, k aida.Store, cfg Config) (*aida.System, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	sys := aida.New(k, aida.WithMaxCandidates(10))
	ts := httptest.NewServer(New(sys, cfg).Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// expectedWire marshals the in-process annotations of one document exactly
// as the server encodes them.
func expectedWire(t testing.TB, sys *aida.System, doc string) []byte {
	t.Helper()
	b, err := json.Marshal(wireAnnotations(sys.Annotate(doc)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnnotateEndpoint(t *testing.T) {
	k, docs := testWorld(t, 2)
	_, ts := newTestServer(t, k, Config{})
	resp := postJSON(t, ts.URL+"/v1/annotate", annotateRequest{Text: docs[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got struct {
		Annotations json.RawMessage `json:"annotations"`
	}
	if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	// A separate in-process system must produce the same bytes: the
	// response is a pure function of the KB.
	want := expectedWire(t, aida.New(k, aida.WithMaxCandidates(10)), docs[0])
	if !bytes.Equal(got.Annotations, want) {
		t.Errorf("HTTP annotations diverge from in-process output:\n got %s\nwant %s", got.Annotations, want)
	}
	if len(want) <= len("[]") {
		t.Fatal("test document produced no annotations; corpus spec too small")
	}
}

// TestBatchByteIdenticalToSequential is the headline service guarantee:
// the batch endpoint at any parallelism returns, per document, exactly the
// bytes of a sequential in-process Annotate loop.
func TestBatchByteIdenticalToSequential(t *testing.T) {
	k, docs := testWorld(t, 8)
	_, ts := newTestServer(t, k, Config{})

	seq := aida.New(k, aida.WithMaxCandidates(10))
	want := make([][]byte, len(docs))
	for i, d := range docs {
		want[i] = expectedWire(t, seq, d)
	}

	for _, parallelism := range []int{1, 4} {
		resp := postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs, RequestSpec: aida.RequestSpec{Parallelism: parallelism}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallelism=%d: status %d", parallelism, resp.StatusCode)
		}
		var got struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(docs) {
			t.Fatalf("parallelism=%d: %d results for %d docs", parallelism, len(got.Results), len(docs))
		}
		for i, raw := range got.Results {
			if !bytes.Equal(raw, want[i]) {
				t.Errorf("parallelism=%d doc %d: batch bytes diverge from sequential:\n got %s\nwant %s",
					parallelism, i, raw, want[i])
			}
		}
	}
}

// TestBatchNDJSONStreams checks the streaming variant: one line per
// document, in input order, annotations byte-identical to the JSON batch.
func TestBatchNDJSONStreams(t *testing.T) {
	k, docs := testWorld(t, 6)
	_, ts := newTestServer(t, k, Config{})

	seq := aida.New(k, aida.WithMaxCandidates(10))
	body, _ := json.Marshal(batchRequest{Docs: docs, RequestSpec: aida.RequestSpec{Parallelism: 3}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/annotate/batch", bytes.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var line struct {
			Index       int             `json:"index"`
			Annotations json.RawMessage `json:"annotations"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if line.Index != n {
			t.Fatalf("line %d has index %d; stream must be in input order", n, line.Index)
		}
		if want := expectedWire(t, seq, docs[n]); !bytes.Equal(line.Annotations, want) {
			t.Errorf("doc %d: NDJSON bytes diverge from in-process output", n)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(docs) {
		t.Fatalf("stream had %d lines for %d docs", n, len(docs))
	}
}

func TestRelatednessEndpoint(t *testing.T) {
	k, _ := testWorld(t, 1)
	sys, ts := newTestServer(t, k, Config{})
	for _, kind := range []aida.RelatednessKind{aida.MW, aida.KWCS, aida.KPCS, aida.KORE, aida.KORELSHG, aida.KORELSHF} {
		url := fmt.Sprintf("%s/v1/relatedness?kind=%s&a=0&b=1", ts.URL, kind)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d", kind, resp.StatusCode)
		}
		var got relatednessResponse
		if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
			t.Fatal(err)
		}
		if want := sys.Relatedness(kind, 0, 1); got.Relatedness != want {
			t.Errorf("%v: HTTP %v != in-process %v", kind, got.Relatedness, want)
		}
		if got.Kind != kind.String() {
			t.Errorf("kind echoed as %q, want %q", got.Kind, kind)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	k, _ := testWorld(t, 2)
	_, ts := newTestServer(t, k, Config{MaxBodyBytes: 512, MaxBatchDocs: 2})

	checkError := func(t *testing.T, resp *http.Response, wantStatus int) {
		t.Helper()
		body := readAll(t, resp)
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("error body %q is not {\"error\": ...}", body)
		}
	}

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/annotate", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		checkError(t, resp, http.StatusBadRequest)
	})
	t.Run("oversized body", func(t *testing.T) {
		big := annotateRequest{Text: strings.Repeat("x", 4096)}
		checkError(t, postJSON(t, ts.URL+"/v1/annotate", big), http.StatusRequestEntityTooLarge)
	})
	t.Run("oversized batch", func(t *testing.T) {
		req := batchRequest{Docs: []string{"a", "b", "c"}}
		checkError(t, postJSON(t, ts.URL+"/v1/annotate/batch", req), http.StatusRequestEntityTooLarge)
	})
	t.Run("empty batch", func(t *testing.T) {
		checkError(t, postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{}), http.StatusBadRequest)
	})
	t.Run("bad kind", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/relatedness?kind=bogus&a=0&b=1")
		if err != nil {
			t.Fatal(err)
		}
		checkError(t, resp, http.StatusBadRequest)
	})
	t.Run("entity out of range", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/relatedness?kind=MW&a=0&b=999999")
		if err != nil {
			t.Fatal(err)
		}
		checkError(t, resp, http.StatusBadRequest)
	})
	t.Run("missing entity", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/relatedness?kind=MW&a=0")
		if err != nil {
			t.Fatal(err)
		}
		checkError(t, resp, http.StatusBadRequest)
	})
	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/annotate")
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/annotate: status %d, want 405", resp.StatusCode)
		}
	})
}

func TestStatsEndpoint(t *testing.T) {
	k, docs := testWorld(t, 4)
	_, ts := newTestServer(t, k, Config{})
	// Drive traffic so every counter moves: a batch fills the MW pair
	// cache (AIDA coherence), a KORE relatedness lookup interns profiles.
	readAll(t, postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs, RequestSpec: aida.RequestSpec{Parallelism: 2}}))
	if r, err := http.Get(ts.URL + "/v1/relatedness?kind=KORE&a=0&b=1"); err == nil {
		readAll(t, r)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.Requests < 1 || st.Server.Documents != int64(len(docs)) {
		t.Errorf("server counters: %+v", st.Server)
	}
	if st.Server.RequestsByEndpoint["/v1/annotate/batch"] != 1 {
		t.Errorf("per-endpoint counters: %+v", st.Server.RequestsByEndpoint)
	}
	if got := len(st.Server.RequestsByEndpoint); got != len(endpoints) {
		t.Errorf("%d endpoint counters reported, want %d", got, len(endpoints))
	}
	if st.Server.Canceled != 0 {
		t.Errorf("canceled = %d with no disconnects", st.Server.Canceled)
	}
	if st.KB.Entities != k.NumEntities() {
		t.Errorf("kb entities = %d, want %d", st.KB.Entities, k.NumEntities())
	}
	if st.Engine.Misses == 0 || st.Engine.Profiles == 0 || st.Engine.ProfileBytes == 0 {
		t.Errorf("engine stats should reflect annotation traffic: %+v", st.Engine)
	}
	if len(st.Engine.ByKind) == 0 {
		t.Error("per-kind stats missing")
	}

	promResp, err := http.Get(ts.URL + "/v1/stats?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readAll(t, promResp))
	for _, metric := range []string{
		"aida_server_requests_total",
		"aida_server_documents_total",
		"aida_server_requests_canceled_total",
		`aida_server_endpoint_requests_total{endpoint="/v1/annotate/batch"} 1`,
		`aida_server_endpoint_requests_total{endpoint="/healthz"}`,
		"aida_kb_entities",
		"aida_engine_profiles",
		"aida_engine_profile_bytes",
		"aida_engine_pairs_cached",
		"aida_engine_max_profile_bytes",
		"aida_engine_evictions_total",
		"aida_engine_pairs_evicted_total",
		// The tenant families are always present (values only under a
		// tenanted config), so dashboards can predeclare them.
		"aida_server_tenant_requests_total",
		"aida_server_tenant_throttled_total",
		"aida_server_tenant_in_flight",
		`aida_engine_kind_hits_total{kind="MW"}`,
		`aida_engine_kind_hits_total{kind="KORE"}`,
		`aida_engine_kind_misses_total{kind="MW"}`,
		`aida_engine_kind_misses_total{kind="KORE-LSH-F"}`,
	} {
		if !strings.Contains(prom, metric) {
			t.Errorf("prometheus output missing %s", metric)
		}
	}
}

func TestHealthz(t *testing.T) {
	k, _ := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(readAll(t, resp), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Entities != k.NumEntities() {
		t.Errorf("health = %+v", h)
	}
}

// TestPerRequestMethod checks the "method" request field: the response
// must match an in-process system running that method, the default stays
// the server's method, and unknown names are a 400.
func TestPerRequestMethod(t *testing.T) {
	k, docs := testWorld(t, 3)
	_, ts := newTestServer(t, k, Config{})

	prior, err := aida.MethodByName("prior")
	if err != nil {
		t.Fatal(err)
	}
	priorSys := aida.New(k, aida.WithMethod(prior), aida.WithMaxCandidates(10))
	for _, doc := range docs {
		resp := postJSON(t, ts.URL+"/v1/annotate", annotateRequest{Text: doc, RequestSpec: aida.RequestSpec{Method: "PRIOR"}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var got struct {
			Annotations json.RawMessage `json:"annotations"`
		}
		if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
			t.Fatal(err)
		}
		if want := expectedWire(t, priorSys, doc); !bytes.Equal(got.Annotations, want) {
			t.Errorf("method=PRIOR diverges from an in-process prior system:\n got %s\nwant %s", got.Annotations, want)
		}
	}

	// The per-request override must not stick to the shared system.
	resp := postJSON(t, ts.URL+"/v1/annotate", annotateRequest{Text: docs[0]})
	var got struct {
		Annotations json.RawMessage `json:"annotations"`
	}
	if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	if want := expectedWire(t, aida.New(k, aida.WithMaxCandidates(10)), docs[0]); !bytes.Equal(got.Annotations, want) {
		t.Error("default method changed after a per-request override")
	}

	// Batch accepts the same field.
	bresp := postJSON(t, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs[:1], RequestSpec: aida.RequestSpec{Method: "prior"}})
	var bgot struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(readAll(t, bresp), &bgot); err != nil {
		t.Fatal(err)
	}
	if want := expectedWire(t, priorSys, docs[0]); len(bgot.Results) != 1 || !bytes.Equal(bgot.Results[0], want) {
		t.Error("batch method=prior diverges from an in-process prior system")
	}

	for _, body := range []any{
		annotateRequest{Text: docs[0], RequestSpec: aida.RequestSpec{Method: "bogus"}},
		batchRequest{Docs: docs[:1], RequestSpec: aida.RequestSpec{Method: "bogus"}},
	} {
		url := ts.URL + "/v1/annotate"
		if _, ok := body.(batchRequest); ok {
			url += "/batch"
		}
		resp := postJSON(t, url, body)
		if b := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("unknown method: status %d (body %s), want 400", resp.StatusCode, b)
		}
	}
}

// TestCanceledContextAbortsEveryEndpoint drives each /v1/* endpoint (and
// /healthz) with an already-canceled request context: every handler must
// abort without writing a response body and the canceled-request counter
// must move once per request. This is the deterministic half of the
// client-disconnect verification; TestClientDisconnectCancelsBatch covers
// the real-socket half.
func TestCanceledContextAbortsEveryEndpoint(t *testing.T) {
	k, docs := testWorld(t, 2)
	sys := aida.New(k, aida.WithMaxCandidates(10))
	srv := New(sys, Config{Logger: quietLogger()})
	h := srv.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	requests := []*http.Request{
		httptest.NewRequest("POST", "/v1/annotate", bytes.NewReader(mustJSON(t, annotateRequest{Text: docs[0]}))),
		httptest.NewRequest("POST", "/v1/annotate/batch", bytes.NewReader(mustJSON(t, batchRequest{Docs: docs}))),
		httptest.NewRequest("POST", "/v1/annotate/batch?stream=1", bytes.NewReader(mustJSON(t, batchRequest{Docs: docs}))),
		httptest.NewRequest("GET", "/v1/relatedness?kind=MW&a=0&b=1", nil),
		httptest.NewRequest("GET", "/v1/stats", nil),
		httptest.NewRequest("GET", "/healthz", nil),
	}
	for i, req := range requests {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req.WithContext(ctx))
		if got := srv.canceled.Load(); got != int64(i+1) {
			t.Fatalf("%s %s: canceled counter = %d, want %d", req.Method, req.URL, got, i+1)
		}
	}
	if docsDone := srv.documents.Load(); docsDone != 0 {
		t.Errorf("%d documents annotated despite canceled contexts", docsDone)
	}

	// The canceled path must be visible in both stats renderings.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.Canceled != int64(len(requests)) {
		t.Errorf("stats canceled = %d, want %d", st.Server.Canceled, len(requests))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats?format=prometheus", nil))
	if want := fmt.Sprintf("aida_server_requests_canceled_total %d", len(requests)); !strings.Contains(rec.Body.String(), want) {
		t.Errorf("prometheus output missing %q", want)
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClientDisconnectCancelsBatch is the real-socket disconnect test: a
// client starts a large NDJSON batch, reads one line and hangs up. The
// server must observe the vanished client through the request context,
// abort the in-flight scoring, and count the cancellation.
func TestClientDisconnectCancelsBatch(t *testing.T) {
	k, docs := testWorld(t, 4)
	_, ts := newTestServer(t, k, Config{MaxBatchDocs: 4096})

	// A batch big enough that it cannot complete while we hang up.
	big := make([]string, 2000)
	for i := range big {
		big[i] = docs[i%len(docs)]
	}
	body := mustJSON(t, batchRequest{Docs: big, RequestSpec: aida.RequestSpec{Parallelism: 1}})
	req, err := http.NewRequest("POST", ts.URL+"/v1/annotate/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read one streamed line, then hang up mid-batch.
	buf := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The server notices the disconnect on its next write or ctx check;
	// poll the stats endpoint until the cancellation is recorded.
	deadline := time.Now().Add(10 * time.Second)
	for {
		statsResp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st statsResponse
		if err := json.Unmarshal(readAll(t, statsResp), &st); err != nil {
			t.Fatal(err)
		}
		if st.Server.Canceled >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never moved after client disconnect; stats = %+v", st.Server)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentBatchRequests hammers the shared engine through the HTTP
// layer from many clients at once; under -race this is the service-level
// race test, and every response must still match the sequential bytes.
func TestConcurrentBatchRequests(t *testing.T) {
	k, docs := testWorld(t, 6)
	_, ts := newTestServer(t, k, Config{})

	seq := aida.New(k, aida.WithMaxCandidates(10))
	want := make([][]byte, len(docs))
	for i, d := range docs {
		want[i] = expectedWire(t, seq, d)
	}

	body, err := json.Marshal(batchRequest{Docs: docs, RequestSpec: aida.RequestSpec{Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	// Only t.Fatal-free code below: FailNow must not be called from a
	// non-test goroutine, so all failures go through the errs channel.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/annotate/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- fmt.Sprintf("client %d: %v", c, err)
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- fmt.Sprintf("client %d: %v", c, err)
				return
			}
			var got struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(data, &got); err != nil {
				errs <- fmt.Sprintf("client %d: %v", c, err)
				return
			}
			for i, raw := range got.Results {
				if !bytes.Equal(raw, want[i]) {
					errs <- fmt.Sprintf("client %d doc %d: bytes diverge", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// BenchmarkServerAnnotate tracks the HTTP overhead and batch scaling over
// a warm engine: one document per request vs the batch endpoint.
func BenchmarkServerAnnotate(b *testing.B) {
	k, docs := testWorld(b, 16)
	_, ts := newTestServer(b, k, Config{})
	warm := func() {
		readAll(b, postJSON(b, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs}))
	}

	b.Run("single", func(b *testing.B) {
		warm()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			readAll(b, postJSON(b, ts.URL+"/v1/annotate", annotateRequest{Text: docs[i%len(docs)]}))
		}
	})
	b.Run("batch", func(b *testing.B) {
		warm()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			readAll(b, postJSON(b, ts.URL+"/v1/annotate/batch", batchRequest{Docs: docs}))
		}
	})
}
