package server

import (
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBuckets are the request-duration histogram bounds in seconds
// (Prometheus-style upper bounds; the implicit +Inf bucket is last).
var latencyBuckets = [numLatencyBuckets]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

const numLatencyBuckets = 13

// latencyHist is one endpoint's request-duration histogram: lock-free
// atomic bucket counters plus a microsecond sum, observed once per request
// in the logging middleware.
type latencyHist struct {
	counts    [numLatencyBuckets + 1]atomic.Int64 // per-bucket (last = +Inf)
	sumMicros atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < numLatencyBuckets && secs > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumMicros.Add(d.Microseconds())
}

// latencyStats is the JSON rendering of one endpoint's histogram in
// GET /v1/stats: total observations, summed seconds, mean milliseconds,
// and the cumulative bucket counts keyed by their upper bound.
type latencyStats struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	MeanMillis float64 `json:"mean_ms"`
	// Buckets maps the upper bound (seconds, as formatted by strconv;
	// "+Inf" last) to the cumulative observation count at or under it.
	Buckets map[string]int64 `json:"buckets"`
}

// snapshot renders the histogram. Counters are read without a barrier
// across buckets; a request landing mid-snapshot can skew one count by
// one, which is fine for monitoring.
func (h *latencyHist) snapshot() latencyStats {
	st := latencyStats{Buckets: make(map[string]int64, numLatencyBuckets+1)}
	cum := int64(0)
	for i := 0; i <= numLatencyBuckets; i++ {
		cum += h.counts[i].Load()
		st.Buckets[bucketLabel(i)] = cum
	}
	st.Count = cum
	st.SumSeconds = float64(h.sumMicros.Load()) / 1e6
	if st.Count > 0 {
		st.MeanMillis = st.SumSeconds / float64(st.Count) * 1000
	}
	return st
}

// bucketLabel formats bucket i's upper bound the way Prometheus labels le
// ("+Inf" for the overflow bucket).
func bucketLabel(i int) string {
	if i >= numLatencyBuckets {
		return "+Inf"
	}
	return strconv.FormatFloat(latencyBuckets[i], 'g', -1, 64)
}
