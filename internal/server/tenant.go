package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Multi-tenant admission control: tenants are named API keys with a
// token-bucket request rate and a max-concurrent-request quota, loaded
// from a JSON file (the -tenants flag of cmd/aidaserver) and
// hot-reloadable on SIGHUP. With no registry configured the server stays
// open, exactly as before; with one, every non-exempt endpoint requires a
// known key and an over-quota request is rejected with 429 + Retry-After
// before any annotation work is scheduled. Quotas shape admission only —
// an admitted request's response bytes are identical with or without them.

// TenantConfig is one tenant's entry in the tenants file.
type TenantConfig struct {
	// Name identifies the tenant in stats, logs and Prometheus labels.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-API-Key: <key>".
	Key string `json:"key"`
	// RatePerSec refills the tenant's token bucket, in requests per
	// second (fractional rates are fine: 0.1 = one request per 10s).
	// 0 leaves the rate unlimited.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity — how many requests may arrive
	// back-to-back before the rate applies. Defaults to ceil(RatePerSec),
	// minimum 1.
	Burst int `json:"burst"`
	// MaxConcurrent caps the tenant's simultaneously in-flight requests
	// (streaming batches hold their slot until the stream ends). 0 leaves
	// concurrency unlimited.
	MaxConcurrent int `json:"max_concurrent"`
}

// tenantsFile is the on-disk shape of the -tenants config.
type tenantsFile struct {
	Tenants []TenantConfig `json:"tenants"`
}

// tenant is one tenant's runtime state: its current config, a token
// bucket, and monotonic counters. Counters and in-flight state survive
// hot reloads; the bucket is re-seeded when the tenant's limits change.
type tenant struct {
	mu     sync.Mutex // guards cfg, tokens, last
	cfg    TenantConfig
	tokens float64   // tokens currently in the bucket
	last   time.Time // last refill instant

	inFlight  atomic.Int64
	requests  atomic.Int64 // admission attempts (admitted + throttled)
	throttled atomic.Int64 // rejected with 429
}

// admit runs the tenant's admission checks in quota order — concurrency
// first (it is the cheaper check and releasing is unconditional on the
// rate path), then the token bucket. On refusal it reports the suggested
// Retry-After. release must be called exactly once iff ok.
func (t *tenant) admit(now time.Time) (ok bool, retryAfter time.Duration) {
	t.requests.Add(1)
	t.mu.Lock()
	max := t.cfg.MaxConcurrent
	t.mu.Unlock()
	if max > 0 && t.inFlight.Add(1) > int64(max) {
		t.inFlight.Add(-1)
		t.throttled.Add(1)
		// No token was spent; retry as soon as a slot frees. One second is
		// the finest granularity Retry-After offers.
		return false, time.Second
	}
	if wait, ok := t.takeToken(now); !ok {
		if max > 0 {
			t.inFlight.Add(-1)
		}
		t.throttled.Add(1)
		return false, wait
	}
	if max <= 0 {
		t.inFlight.Add(1)
	}
	return true, 0
}

// release returns the tenant's concurrency slot after an admitted request
// finishes.
func (t *tenant) release() { t.inFlight.Add(-1) }

// takeToken refills the bucket for the elapsed time and spends one token.
// When the bucket is empty it reports how long until the next token.
func (t *tenant) takeToken(now time.Time) (wait time.Duration, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.RatePerSec <= 0 {
		return 0, true
	}
	burst := float64(t.cfg.Burst)
	if elapsed := now.Sub(t.last).Seconds(); elapsed > 0 {
		t.tokens = math.Min(burst, t.tokens+elapsed*t.cfg.RatePerSec)
	}
	// Monotonic clocks can read the same instant twice; never move last
	// backwards.
	if now.After(t.last) {
		t.last = now
	}
	if t.tokens >= 1 {
		t.tokens--
		return 0, true
	}
	return time.Duration((1 - t.tokens) / t.cfg.RatePerSec * float64(time.Second)), false
}

// snapshotStats reads the tenant's counters and effective limits.
func (t *tenant) snapshotStats() TenantStats {
	t.mu.Lock()
	cfg := t.cfg
	t.mu.Unlock()
	return TenantStats{
		Requests:      t.requests.Load(),
		Throttled:     t.throttled.Load(),
		InFlight:      t.inFlight.Load(),
		RatePerSec:    cfg.RatePerSec,
		Burst:         cfg.Burst,
		MaxConcurrent: cfg.MaxConcurrent,
	}
}

// TenantStats is one tenant's row in GET /v1/stats: monotonic admission
// counters plus the currently effective limits (so a hot reload is
// observable without reading the file).
type TenantStats struct {
	Requests      int64   `json:"requests"`
	Throttled     int64   `json:"throttled"`
	InFlight      int64   `json:"in_flight"`
	RatePerSec    float64 `json:"rate_per_sec"`
	Burst         int     `json:"burst"`
	MaxConcurrent int     `json:"max_concurrent"`
}

// tenantTable is one immutable generation of the registry: lookup by key,
// plus the stable name order for stats and metrics.
type tenantTable struct {
	byKey  map[string]*tenant
	names  []string // sorted
	byName map[string]*tenant
}

// Tenants is the hot-reloadable tenant registry. Lookups are lock-free
// (an atomic pointer to the current table); Reload builds a new table and
// swaps it in, carrying over the runtime state of tenants that keep their
// name so counters and in-flight accounting survive the reload.
type Tenants struct {
	path     string
	reloadMu sync.Mutex // serializes Reload; lookups never take it
	table    atomic.Pointer[tenantTable]
}

// LoadTenants reads a tenants file and returns the registry bound to that
// path; Reload re-reads the same path (cmd/aidaserver wires it to SIGHUP).
func LoadTenants(path string) (*Tenants, error) {
	t := &Tenants{path: path}
	if _, err := t.Reload(); err != nil {
		return nil, err
	}
	return t, nil
}

// NewTenants builds a registry directly from configs (no file, no Reload
// path) — the embedding and testing entry point.
func NewTenants(cfgs []TenantConfig) (*Tenants, error) {
	t := &Tenants{}
	table, err := t.build(cfgs)
	if err != nil {
		return nil, err
	}
	t.table.Store(table)
	return t, nil
}

// Reload re-reads the registry's file and atomically swaps the new config
// in. On any error — unreadable file, malformed JSON, invalid tenant —
// the serving table is left untouched, so a bad push cannot take the
// limits down. It returns the number of tenants now serving.
func (t *Tenants) Reload() (int, error) {
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	if t.path == "" {
		return 0, fmt.Errorf("tenant registry not backed by a file")
	}
	raw, err := os.ReadFile(t.path)
	if err != nil {
		return 0, fmt.Errorf("read tenants file: %w", err)
	}
	var file tenantsFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return 0, fmt.Errorf("parse tenants file %s: %w", t.path, err)
	}
	table, err := t.build(file.Tenants)
	if err != nil {
		return 0, fmt.Errorf("tenants file %s: %w", t.path, err)
	}
	t.table.Store(table)
	return len(table.names), nil
}

// build validates configs into a fresh table, reusing the runtime state
// of same-named tenants from the current table. A renamed tenant starts
// fresh; a re-keyed or re-limited tenant keeps its counters but has its
// bucket re-seeded full at the new burst.
func (t *Tenants) build(cfgs []TenantConfig) (*tenantTable, error) {
	table := &tenantTable{
		byKey:  make(map[string]*tenant, len(cfgs)),
		byName: make(map[string]*tenant, len(cfgs)),
	}
	prev := t.table.Load()
	for i, cfg := range cfgs {
		if cfg.Name == "" {
			return nil, fmt.Errorf("tenant %d: empty name", i)
		}
		if cfg.Key == "" {
			return nil, fmt.Errorf("tenant %q: empty key", cfg.Name)
		}
		if cfg.RatePerSec < 0 || cfg.Burst < 0 || cfg.MaxConcurrent < 0 {
			return nil, fmt.Errorf("tenant %q: negative limit", cfg.Name)
		}
		if _, dup := table.byName[cfg.Name]; dup {
			return nil, fmt.Errorf("duplicate tenant name %q", cfg.Name)
		}
		if _, dup := table.byKey[cfg.Key]; dup {
			return nil, fmt.Errorf("tenant %q: key already assigned", cfg.Name)
		}
		if cfg.Burst == 0 && cfg.RatePerSec > 0 {
			cfg.Burst = int(math.Ceil(cfg.RatePerSec))
		}
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
		tn := &tenant{}
		if prev != nil {
			if old, ok := prev.byName[cfg.Name]; ok {
				tn = old
			}
		}
		tn.mu.Lock()
		tn.cfg = cfg
		// A full bucket at the new burst: a reload must never owe the
		// tenant a cold start, and carrying fractional tokens across a
		// limit change has no meaningful semantics.
		tn.tokens = float64(cfg.Burst)
		tn.last = time.Now()
		tn.mu.Unlock()
		table.byKey[cfg.Key] = tn
		table.byName[cfg.Name] = tn
		table.names = append(table.names, cfg.Name)
	}
	sort.Strings(table.names)
	return table, nil
}

// lookup resolves an API key to its tenant (nil if unknown).
func (t *Tenants) lookup(key string) *tenant {
	if key == "" {
		return nil
	}
	table := t.table.Load()
	if table == nil {
		return nil
	}
	return table.byKey[key]
}

// Stats snapshots every tenant's counters, keyed by tenant name.
func (t *Tenants) Stats() map[string]TenantStats {
	table := t.table.Load()
	if table == nil {
		return nil
	}
	out := make(map[string]TenantStats, len(table.names))
	for _, name := range table.names {
		out[name] = table.byName[name].snapshotStats()
	}
	return out
}

// Names returns the tenant names in stable (sorted) order, for the
// Prometheus exposition.
func (t *Tenants) Names() []string {
	table := t.table.Load()
	if table == nil {
		return nil
	}
	return table.names
}

// apiKey extracts the presented API key: "Authorization: Bearer <key>"
// wins, "X-API-Key: <key>" is the curl-friendly fallback.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return r.Header.Get("X-API-Key")
}

// openEndpoint reports whether a path stays reachable without an API key
// even on a tenanted server: liveness probes, the observability scrape
// and the demo page are operator surfaces, not tenant traffic. (The demo
// page itself is static; the annotation calls it makes are tenant
// traffic and need a key.)
func openEndpoint(path string) bool {
	return path == "/healthz" || path == "/v1/stats" || path == "/demo"
}

// tenanted is the admission middleware. Without a registry it is a
// no-op, preserving the open-server behavior; with one it authenticates
// the key, applies the tenant's quotas, and attributes the request to the
// tenant in the request log via the returned name.
func (s *Server) tenanted(next http.Handler) http.Handler {
	reg := s.cfg.Tenants
	if reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if openEndpoint(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		tn := reg.lookup(apiKey(r))
		if tn == nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="aida"`)
			writeError(w, http.StatusUnauthorized, "unknown or missing API key")
			return
		}
		tn.mu.Lock()
		name := tn.cfg.Name
		tn.mu.Unlock()
		if lw, ok := w.(*loggingWriter); ok {
			lw.tenant = name
		}
		ok, retryAfter := tn.admit(time.Now())
		if !ok {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over quota; retry after the Retry-After delay", name))
			return
		}
		defer tn.release()
		next.ServeHTTP(w, r)
	})
}

// retryAfterSeconds renders a wait as whole Retry-After seconds, rounding
// up so the client never retries into a still-empty bucket, with a floor
// of 1 (0 would invite a tight retry loop).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
