package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestPromLabelEscaping pins the exposition-format escaping rules: exactly
// backslash, double quote and newline are escaped, and non-ASCII values
// stay raw UTF-8 (the old %q rendering emitted invalid \uXXXX sequences).
func TestPromLabelEscaping(t *testing.T) {
	for _, tc := range []struct{ value, want string }{
		{`plain`, `l="plain"`},
		{`has "quotes"`, `l="has \"quotes\""`},
		{`back\slash`, `l="back\\slash"`},
		{"new\nline", `l="new\nline"`},
		{`all "three\` + "\n", `l="all \"three\\\n"`},
		// Non-ASCII must pass through raw, not as a \uXXXX escape.
		{"café", `l="café"`},
		{"日本", `l="日本"`},
	} {
		if got := promLabel("l", tc.value); got != tc.want {
			t.Errorf("promLabel(%q) = %s, want %s", tc.value, got, tc.want)
		}
	}
}

// TestMetricsNonASCIITenantLabel runs a non-ASCII tenant name through the
// full exposition: the label must appear as raw UTF-8 with no Go-style
// escape sequences anywhere in the scrape.
func TestMetricsNonASCIITenantLabel(t *testing.T) {
	k, _ := testWorld(t, 1)
	reg, err := NewTenants([]TenantConfig{{Name: "café-tenant", Key: "kc"}})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, k, Config{Tenants: reg})
	resp, err := http.Get(ts.URL + "/v1/stats?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readAll(t, resp))
	if !strings.Contains(prom, `aida_server_tenant_requests_total{tenant="café-tenant"} 0`) {
		t.Errorf("tenant label not raw UTF-8:\n%s", prom)
	}
	if strings.Contains(prom, `\u`) {
		t.Errorf("Go-style \\u escape leaked into the exposition:\n%s", prom)
	}
}
