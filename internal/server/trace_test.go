package server

import (
	"bytes"

	"aida"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded log sink: the request log line is written
// after the handler returns, concurrently with the client reading the
// response, so the test must not read the buffer bare.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	k, docs := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{})

	post := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/annotate",
			bytes.NewReader(mustJSON(t, annotateRequest{Text: docs[0]})))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(requestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("client id echoed", func(t *testing.T) {
		resp := post("trace-me-42")
		readAll(t, resp)
		if got := resp.Header.Get(requestIDHeader); got != "trace-me-42" {
			t.Errorf("X-Request-ID = %q, want the client's id echoed", got)
		}
	})
	t.Run("generated when absent", func(t *testing.T) {
		resp := post("")
		readAll(t, resp)
		if got := resp.Header.Get(requestIDHeader); !hexID.MatchString(got) {
			t.Errorf("X-Request-ID = %q, want a generated 16-hex-char id", got)
		}
	})
	t.Run("unusable ids replaced", func(t *testing.T) {
		for _, bad := range []string{"has space", "tab\tchar", strings.Repeat("x", maxRequestIDLen+1), "non-ascii-é"} {
			resp := post(bad)
			readAll(t, resp)
			if got := resp.Header.Get(requestIDHeader); !hexID.MatchString(got) {
				t.Errorf("client id %q: response id = %q, want a fresh generated id", bad, got)
			}
		}
	})
	t.Run("error body carries id", func(t *testing.T) {
		req, err := http.NewRequest("POST", ts.URL+"/v1/annotate", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(requestIDHeader, "err-trace-7")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.RequestID != "err-trace-7" {
			t.Errorf("error body request_id = %q, want %q (body %s)", e.RequestID, "err-trace-7", body)
		}
	})
}

// TestRequestIDInLogLine is the attribution guarantee: the response's
// X-Request-ID matches the request_id attribute of the structured log
// line, and on a tenanted server the line also names the tenant.
func TestRequestIDInLogLine(t *testing.T) {
	k, docs := testWorld(t, 1)
	reg, err := NewTenants([]TenantConfig{{Name: "alpha", Key: "ka"}})
	if err != nil {
		t.Fatal(err)
	}
	var logs syncBuffer
	_, ts := newTestServer(t, k, Config{
		Tenants: reg,
		Logger:  slog.New(slog.NewTextHandler(&logs, nil)),
	})

	req, err := http.NewRequest("POST", ts.URL+"/v1/annotate",
		bytes.NewReader(mustJSON(t, annotateRequest{Text: docs[0]})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestIDHeader, "log-trace-9")
	req.Header.Set("X-API-Key", "ka")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get(requestIDHeader); got != "log-trace-9" {
		t.Fatalf("response id = %q", got)
	}

	// The log line lands after the handler returns — possibly after the
	// client has the response — so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := logs.String()
		var line string
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, "msg=request") && strings.Contains(l, "path=/v1/annotate") {
				line = l
				break
			}
		}
		if line != "" {
			if !strings.Contains(line, "request_id=log-trace-9") {
				t.Fatalf("log line lacks the response's request id: %s", line)
			}
			if !strings.Contains(line, "tenant=alpha") {
				t.Fatalf("log line lacks the tenant attribution: %s", line)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no request log line appeared; logs:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRequestIDInStats checks the deepest thread of the trace: a request
// asking for stats gets the disambiguation counters stamped with its own
// trace id.
func TestRequestIDInStats(t *testing.T) {
	k, docs := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{})

	req, err := http.NewRequest("POST", ts.URL+"/v1/annotate",
		bytes.NewReader(mustJSON(t, annotateRequest{Text: docs[0], RequestSpec: aida.RequestSpec{Stats: true}})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestIDHeader, "stats-trace-3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, body)
	}
	var got annotateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Stats == nil {
		t.Fatalf("response has no stats despite \"stats\": true (body %s)", body)
	}
	if got.Stats.RequestID != "stats-trace-3" {
		t.Errorf("stats request_id = %q, want %q", got.Stats.RequestID, "stats-trace-3")
	}
	if got.Stats.Comparisons <= 0 {
		t.Errorf("stats comparisons = %d, want > 0", got.Stats.Comparisons)
	}

	// Without the flag the field must stay absent, keeping the response
	// bytes identical to pre-stats servers.
	plain := postJSON(t, ts.URL+"/v1/annotate", annotateRequest{Text: docs[0]})
	if b := readAll(t, plain); bytes.Contains(b, []byte(`"stats"`)) {
		t.Errorf("response leaks a stats field without opting in: %s", b)
	}
}
