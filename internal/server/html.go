package server

import (
	"bytes"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strings"

	"aida"
)

// Annotated-HTML output: ?format=html (or Accept: text/html) on
// POST /v1/annotate returns the document as an embeddable HTML fragment —
// every linked mention wrapped in a colored <span> whose <a> points at
// the entity's Wikipedia article and whose title attribute carries the
// candidate ranking, in the style of the ProtagonistTagger-like in-text
// tag demos. All document text and KB-derived strings are HTML-escaped,
// and the rendering is a pure function of the annotation result, so the
// fragment is byte-stable across runs and replicas.

// entityPalette are the span background colors, assigned per entity id
// (id mod len), so one entity keeps its color across mentions and
// requests. The values are pale enough to keep black text readable.
var entityPalette = [...]string{
	"#cfe8fc", "#d2f5d2", "#fde2cf", "#eadcf9", "#fcd9e4",
	"#d9f2f0", "#faf0c8", "#e2e8f0",
}

// wikipediaURL builds the entity link the way the exemplar demos do:
// spaces become underscores, the rest is path-escaped.
func wikipediaURL(label string) string {
	return "https://en.wikipedia.org/wiki/" + url.PathEscape(strings.ReplaceAll(label, " ", "_"))
}

// spanTitle renders the hover text of one mention: the winning entity
// with its score, then the remaining top candidates with theirs.
func spanTitle(a aida.Annotation, candidates []aida.RankedCandidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (score %.3f)", a.Label, a.Score)
	const maxAlternatives = 4
	shown := 0
	for _, c := range candidates {
		if c.Entity == a.Entity {
			continue
		}
		if shown == 0 {
			b.WriteString(" — also:")
		}
		fmt.Fprintf(&b, " %s %.3f", c.Label, c.Score)
		if shown++; shown == maxAlternatives {
			break
		}
	}
	return b.String()
}

// renderAnnotatedHTML writes the document as one HTML fragment into buf:
// plain text segments escaped, linked mentions wrapped in colored spans,
// out-of-KB mentions marked but not linked. candidates may be nil (the
// titles then carry only the winning entity).
func renderAnnotatedHTML(buf *bytes.Buffer, text string, doc *aida.Document) {
	buf.WriteString(`<div class="aida-doc">`)
	pos := 0
	for i, a := range doc.Annotations {
		m := a.Mention
		if m.Start < pos || m.End > len(text) {
			continue // overlapping or out-of-range span; keep the text intact
		}
		buf.WriteString(html.EscapeString(text[pos:m.Start]))
		pos = m.End
		mention := html.EscapeString(text[m.Start:m.End])
		if a.Entity == aida.NoEntity {
			buf.WriteString(`<span class="aida-oov" title="out of knowledge base">`)
			buf.WriteString(mention)
			buf.WriteString(`</span>`)
			continue
		}
		var cands []aida.RankedCandidate
		if i < len(doc.Candidates) {
			cands = doc.Candidates[i]
		}
		fmt.Fprintf(buf,
			`<span class="aida-entity" style="background:%s" data-entity="%d"><a href="%s" title="%s">%s</a></span>`,
			entityPalette[int(a.Entity)%len(entityPalette)],
			a.Entity,
			html.EscapeString(wikipediaURL(a.Label)),
			html.EscapeString(spanTitle(a, cands)),
			mention,
		)
	}
	buf.WriteString(html.EscapeString(text[pos:]))
	buf.WriteString("</div>\n")
}

// wantsHTML reports whether the client asked for the annotated-HTML
// rendering of /v1/annotate, via ?format=html or an Accept header
// preferring text/html; ?format=json forces JSON regardless of Accept.
func wantsHTML(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "html":
		return true
	case "json":
		return false
	}
	return negotiateAccept(r.Header.Get("Accept"), "application/json", "text/html") == "text/html"
}

func (s *Server) handleDemo(w http.ResponseWriter, r *http.Request) {
	if s.clientGone(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(demoPage))
}

// demoPage is the static browser demo served at GET /demo. It drives the
// real API from the page's JavaScript: single-document annotation (both
// the JSON and the annotated-HTML rendering) and the streaming NDJSON
// batch endpoint, with an optional API key for tenanted servers. No
// external assets, so it works on an air-gapped deployment.
const demoPage = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>AIDA — entity annotation demo</title>
<style>
  body { font: 15px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 52rem; padding: 0 1rem; color: #1a202c; }
  h1 { font-size: 1.4rem; }
  textarea { width: 100%; min-height: 7rem; font: inherit; padding: .5rem; box-sizing: border-box; }
  input[type=text] { font: inherit; padding: .25rem .5rem; width: 16rem; }
  button { font: inherit; padding: .4rem .9rem; margin: .5rem .5rem 0 0; cursor: pointer; }
  .aida-doc { line-height: 1.9; border: 1px solid #e2e8f0; border-radius: 6px; padding: 1rem; margin-top: 1rem; }
  .aida-entity { padding: 1px 4px; border-radius: 4px; }
  .aida-entity a { color: inherit; text-decoration: none; border-bottom: 1px dotted #4a5568; }
  .aida-oov { border-bottom: 1px dashed #a0aec0; }
  pre { background: #f7fafc; border: 1px solid #e2e8f0; border-radius: 6px; padding: 1rem; overflow-x: auto; white-space: pre-wrap; }
  .err { color: #c53030; }
  label { color: #4a5568; font-size: .9rem; }
</style>
</head>
<body>
<h1>AIDA entity annotation demo</h1>
<p>Paste text, annotate it, and hover the highlighted mentions for the
candidate ranking; each mention links to its entity. The stream button
sends the text line-by-line through the NDJSON batch endpoint.</p>
<label>API key (only needed on a tenanted server):
<input type="text" id="key" placeholder="tenant API key"></label>
<textarea id="text">Page and Plant wrote Kashmir while Bonham kept time.</textarea>
<div>
  <button id="annotate">Annotate (HTML)</button>
  <button id="json">Annotate (JSON)</button>
  <button id="stream">Stream lines (NDJSON)</button>
</div>
<div id="out"></div>
<script>
"use strict";
const out = document.getElementById("out");
function headers(json) {
  const h = {"Content-Type": "application/json"};
  const key = document.getElementById("key").value.trim();
  if (key) h["X-API-Key"] = key;
  return h;
}
function fail(resp, body) {
  const id = resp.headers.get("X-Request-ID") || "?";
  out.innerHTML = '<pre class="err"></pre>';
  out.firstChild.textContent = "HTTP " + resp.status + " (request " + id + "): " + body;
}
async function annotate(format) {
  const resp = await fetch("/v1/annotate?format=" + format, {
    method: "POST",
    headers: headers(),
    body: JSON.stringify({text: document.getElementById("text").value}),
  });
  const body = await resp.text();
  if (!resp.ok) { fail(resp, body); return; }
  if (format === "html") {
    out.innerHTML = body;
  } else {
    out.innerHTML = "<pre></pre>";
    out.firstChild.textContent = JSON.stringify(JSON.parse(body), null, 2);
  }
}
async function stream() {
  const docs = document.getElementById("text").value.split("\n").filter(l => l.trim());
  const resp = await fetch("/v1/annotate/batch?stream=1", {
    method: "POST",
    headers: headers(),
    body: JSON.stringify({docs}),
  });
  if (!resp.ok) { fail(resp, await resp.text()); return; }
  out.innerHTML = "<pre></pre>";
  const pre = out.firstChild;
  const reader = resp.body.getReader();
  const dec = new TextDecoder();
  for (;;) {
    const {done, value} = await reader.read();
    if (done) break;
    pre.textContent += dec.decode(value, {stream: true});
  }
}
document.getElementById("annotate").onclick = () => annotate("html").catch(e => { out.textContent = e; });
document.getElementById("json").onclick = () => annotate("json").catch(e => { out.textContent = e; });
document.getElementById("stream").onclick = () => stream().catch(e => { out.textContent = e; });
</script>
</body>
</html>
`
