package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"aida"
)

// TestAnnotateHTMLEscapesScript is the ISSUE's escaping test: document
// text containing a <script> tag must come back inert — escaped text
// inside the fragment, never live markup.
func TestAnnotateHTMLEscapesScript(t *testing.T) {
	k, docs := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{})

	text := docs[0] + ` <script>alert("xss")</script>`
	resp := postJSON(t, ts.URL+"/v1/annotate?format=html", annotateRequest{Text: text})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	out := string(body)
	if strings.Contains(out, "<script") {
		t.Errorf("script tag survived escaping:\n%s", out)
	}
	if !strings.Contains(out, "&lt;script&gt;alert(&#34;xss&#34;)&lt;/script&gt;") {
		t.Errorf("escaped script text missing:\n%s", out)
	}
	if !strings.HasPrefix(out, `<div class="aida-doc">`) {
		t.Errorf("fragment does not open with the document div:\n%s", out)
	}
	// The test corpus links real entities: colored spans with Wikipedia
	// hrefs and candidate-ranking titles must be present.
	for _, want := range []string{
		`class="aida-entity"`,
		`style="background:#`,
		`href="https://en.wikipedia.org/wiki/`,
		`title="`,
		`data-entity="`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML output missing %q:\n%s", want, out)
		}
	}
}

// TestAnnotateHTMLByteStable pins the acceptance criterion that the HTML
// rendering is a pure function of the annotation result: two identical
// requests return identical bytes.
func TestAnnotateHTMLByteStable(t *testing.T) {
	k, docs := testWorld(t, 2)
	_, ts := newTestServer(t, k, Config{})

	get := func() []byte {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/annotate?format=html", annotateRequest{Text: docs[0]})
		b := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return b
	}
	first := get()
	if second := get(); !bytes.Equal(first, second) {
		t.Errorf("HTML output not byte-stable across runs:\n1st: %s\n2nd: %s", first, second)
	}

	// The Accept-header route must produce the same bytes as ?format=html.
	req, err := http.NewRequest("POST", ts.URL+"/v1/annotate",
		bytes.NewReader(mustJSON(t, annotateRequest{Text: docs[0]})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/html")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if b := readAll(t, resp); !bytes.Equal(first, b) {
		t.Errorf("Accept: text/html bytes differ from ?format=html bytes")
	}
}

// TestRenderAnnotatedHTMLEscapesKBStrings drives the renderer directly
// with hostile KB-derived strings: labels and mention text must be
// escaped in the link, the title and the span body alike.
func TestRenderAnnotatedHTMLEscapesKBStrings(t *testing.T) {
	text := `see X&Y today`
	doc := &aida.Document{
		Annotations: []aida.Annotation{{
			Mention: aida.MentionSpan{Text: "X&Y", Start: 4, End: 7},
			Entity:  3,
			Label:   `A<B>"C`,
			Score:   0.5,
		}},
		Candidates: [][]aida.RankedCandidate{{
			{Entity: 3, Label: `A<B>"C`, Score: 0.5},
			{Entity: 9, Label: `D&E`, Score: 0.25},
		}},
	}
	var buf bytes.Buffer
	renderAnnotatedHTML(&buf, text, doc)
	out := buf.String()
	for _, raw := range []string{`A<B>`, `"C`, "X&Y"} {
		if strings.Contains(out, raw) {
			t.Errorf("unescaped KB string %q in output:\n%s", raw, out)
		}
	}
	for _, want := range []string{
		"X&amp;Y",             // mention text
		"A&lt;B&gt;&#34;C",    // label in the title
		"also: D&amp;E 0.250", // alternative candidate in the title
		`data-entity="3"`,
		"/wiki/A%3CB%3E%22C", // path-escaped link
		"see ",               // leading text survives
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// An out-of-KB mention is marked but never linked.
	oov := &aida.Document{Annotations: []aida.Annotation{{
		Mention: aida.MentionSpan{Text: "Zzz", Start: 0, End: 3},
		Entity:  aida.NoEntity,
	}}}
	buf.Reset()
	renderAnnotatedHTML(&buf, "Zzz rocks", oov)
	if out := buf.String(); !strings.Contains(out, `class="aida-oov"`) || strings.Contains(out, "<a ") {
		t.Errorf("OOV rendering wrong:\n%s", out)
	}
}

func TestDemoPage(t *testing.T) {
	k, _ := testWorld(t, 1)
	_, ts := newTestServer(t, k, Config{})
	resp, err := http.Get(ts.URL + "/demo")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"<!doctype html>", "/v1/annotate", "/v1/annotate/batch?stream=1", "X-API-Key"} {
		if !strings.Contains(body, want) {
			t.Errorf("demo page missing %q", want)
		}
	}
}
