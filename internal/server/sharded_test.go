package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"aida"
)

// TestShardedServerByteIdentical pins the HTTP contract across the KB
// back-ends: a server over a 4-shard router must answer the annotate and
// batch endpoints with the exact bytes of a server over the unsharded KB.
// This is the stable surface that lets a fleet swap in sharded processes
// behind a load balancer without clients noticing.
func TestShardedServerByteIdentical(t *testing.T) {
	k, docs := testWorld(t, 6)
	_, plain := newTestServer(t, k, Config{})
	_, sharded := newTestServer(t, aida.ShardKB(k, 4), Config{})

	readBody := func(url string, body any) string {
		resp := postJSON(t, url, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d from %s", resp.StatusCode, url)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	single := annotateRequest{Text: docs[0]}
	if got, want := readBody(sharded.URL+"/v1/annotate", single), readBody(plain.URL+"/v1/annotate", single); got != want {
		t.Errorf("sharded /v1/annotate diverges:\n got %s\nwant %s", got, want)
	}
	batch := batchRequest{Docs: docs, RequestSpec: aida.RequestSpec{Parallelism: 4}}
	if got, want := readBody(sharded.URL+"/v1/annotate/batch", batch), readBody(plain.URL+"/v1/annotate/batch", batch); got != want {
		t.Errorf("sharded /v1/annotate/batch diverges:\n got %s\nwant %s", got, want)
	}
}

// TestStatsReportShards pins the /v1/stats shards field on both back-ends
// and its Prometheus exposition.
func TestStatsReportShards(t *testing.T) {
	k, _ := testWorld(t, 1)
	cases := []struct {
		name  string
		store aida.Store
		want  int
	}{
		{"unsharded", k, 1},
		{"sharded-4", aida.ShardKB(k, 4), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.store, Config{})
			resp0, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			defer resp0.Body.Close()
			var st statsResponse
			if err := json.NewDecoder(resp0.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.KB.Shards != tc.want {
				t.Errorf("stats kb.shards = %d, want %d", st.KB.Shards, tc.want)
			}
			if st.KB.Entities != tc.store.NumEntities() {
				t.Errorf("stats kb.entities = %d, want %d", st.KB.Entities, tc.store.NumEntities())
			}
			resp, err := http.Get(ts.URL + "/v1/stats?format=prometheus")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			text, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			wantLine := "aida_kb_shards " + strconv.Itoa(tc.want)
			if !strings.Contains(string(text), wantLine) {
				t.Errorf("Prometheus exposition missing %q", wantLine)
			}
		})
	}
}
