package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"time"

	"aida"
	"aida/internal/kb"
	"aida/internal/pool"
)

// Annotation is the wire form of one aida.Annotation. Entity is -1 when
// the mention is out-of-KB (aida.NoEntity).
type Annotation struct {
	Text   string        `json:"text"`
	Start  int           `json:"start"`
	End    int           `json:"end"`
	Entity aida.EntityID `json:"entity"`
	Label  string        `json:"label"`
	Score  float64       `json:"score"`
}

// wireAnnotations converts pipeline output to the wire form. Both the
// single and the batch endpoint go through here, which is what makes
// batch responses byte-identical to N single responses.
func wireAnnotations(anns []aida.Annotation) []Annotation {
	return appendWireAnnotations(make([]Annotation, 0, len(anns)), anns)
}

// appendWireAnnotations is wireAnnotations into a caller-owned slice, so
// the NDJSON stream can reuse one wire buffer across lines.
func appendWireAnnotations(dst []Annotation, anns []aida.Annotation) []Annotation {
	for _, a := range anns {
		dst = append(dst, Annotation{
			Text:   a.Mention.Text,
			Start:  a.Mention.Start,
			End:    a.Mention.End,
			Entity: a.Entity,
			Label:  a.Label,
			Score:  a.Score,
		})
	}
	return dst
}

// annotateRequest is the body of POST /v1/annotate: the document text plus
// the embedded aida.RequestSpec — every per-request knob (method,
// parallelism, candidate cap, includes, context, domain, request id)
// decodes straight into the spec under the JSON names documented in
// docs/API.md, with no per-field parsing in the handler. Validation
// happens in the aida package's option resolution, so an invalid field
// fails with exactly the error text a Go caller would see.
type annotateRequest struct {
	Text string `json:"text"`
	aida.RequestSpec
}

type annotateResponse struct {
	Annotations []Annotation `json:"annotations"`
	// Candidates holds, per mention, the scored candidate list (the
	// "candidates" request field; also implied by ?format=html).
	Candidates [][]wireCandidate `json:"candidates,omitempty"`
	// Confidence holds the per-mention CONF confidence scores (the
	// "confidence" request field).
	Confidence []float64      `json:"confidence,omitempty"`
	Stats      *annotateStats `json:"stats,omitempty"`
}

// wireCandidate is the wire form of one aida.RankedCandidate.
type wireCandidate struct {
	Entity aida.EntityID `json:"entity"`
	Label  string        `json:"label"`
	Prior  float64       `json:"prior"`
	Score  float64       `json:"score"`
}

// annotateStats is the wire form of aida.Stats plus the trace id, so a
// logged slow request and its response are attributable to each other.
type annotateStats struct {
	Comparisons   int    `json:"comparisons"`
	GraphEntities int    `json:"graph_entities"`
	RequestID     string `json:"request_id,omitempty"`
}

// writeAnnotateError maps an annotation error onto the wire: request
// mistakes (aida.InvalidRequestError — unknown method or domain, negative
// parallelism, oversized context, conflicting options) are the client's
// 400 with the resolution error's exact text, cancellations are accounted
// as 499, anything else is a 500.
func (s *Server) writeAnnotateError(w http.ResponseWriter, r *http.Request, err error) {
	var bad *aida.InvalidRequestError
	if errors.As(err, &bad) {
		writeError(w, http.StatusBadRequest, bad.Error())
		return
	}
	if !s.noteCanceled(w, r, err) {
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// The parallelism clamp applies to single documents too: the
	// coherence pool is the only intra-document fan-out, so bounding it
	// honors the operator's MaxParallelism under concurrent requests.
	// Negative values pass through to resolution and fail with 400.
	req.Parallelism = s.clampParallelism(req.Parallelism)
	asHTML := wantsHTML(r)
	if asHTML {
		// The HTML span titles carry the candidate ranking.
		req.Candidates = true
	}
	if req.Stats {
		// The work counters are stamped with the trace id the middleware
		// assigned, overriding any body-supplied id: response headers,
		// log line and stats must agree.
		req.RequestID = requestID(r.Context())
	}
	doc, err := s.sys.AnnotateDoc(r.Context(), req.Text, req.RequestSpec.Options()...)
	if err != nil {
		s.writeAnnotateError(w, r, err)
		return
	}
	s.documents.Add(1)
	if s.cfg.OnDocument != nil {
		s.cfg.OnDocument(req.Text, doc.Annotations)
	}
	if asHTML {
		var buf bytes.Buffer
		renderAnnotatedHTML(&buf, req.Text, doc)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(buf.Bytes())
		return
	}
	resp := annotateResponse{Annotations: wireAnnotations(doc.Annotations)}
	if doc.Candidates != nil {
		resp.Candidates = make([][]wireCandidate, len(doc.Candidates))
		for i, cands := range doc.Candidates {
			wc := make([]wireCandidate, len(cands))
			for j, c := range cands {
				wc[j] = wireCandidate{Entity: c.Entity, Label: c.Label, Prior: c.Prior, Score: c.Score}
			}
			resp.Candidates[i] = wc
		}
	}
	resp.Confidence = doc.Confidence
	if doc.Stats != nil {
		resp.Stats = &annotateStats{
			Comparisons:   doc.Stats.Comparisons,
			GraphEntities: doc.Stats.GraphEntities,
			RequestID:     doc.Stats.RequestID,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest is the body of POST /v1/annotate/batch: the documents plus
// the embedded aida.RequestSpec, decoded exactly like /v1/annotate. Batch
// responses carry annotations only, so the per-mention include fields
// (candidates, confidence, stats) are rejected with 400.
type batchRequest struct {
	Docs []string `json:"docs"`
	aida.RequestSpec
}

type batchResponse struct {
	Results [][]Annotation `json:"results"`
}

// batchLine is one NDJSON stream element: the annotations of document
// Index. Lines are emitted strictly in input order.
type batchLine struct {
	Index       int          `json:"index"`
	Annotations []Annotation `json:"annotations"`
}

// ndjsonScratch is the per-stream encode state: one line buffer and one
// wire-annotation slice, recycled across lines and across requests.
type ndjsonScratch struct {
	buf  bytes.Buffer
	wire []Annotation
}

var ndjsonBufs = pool.Scratch[ndjsonScratch]{
	New: func() *ndjsonScratch { return &ndjsonScratch{} },
	// Drop string references so a pooled scratch cannot pin a finished
	// response's text in memory.
	Reset: func(sc *ndjsonScratch) {
		sc.buf.Reset()
		clear(sc.wire)
		sc.wire = sc.wire[:0]
	},
}

func (s *Server) handleAnnotateBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: docs must contain at least one document")
		return
	}
	if len(req.Docs) > s.cfg.MaxBatchDocs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d documents exceeds the limit of %d", len(req.Docs), s.cfg.MaxBatchDocs))
		return
	}
	if req.Candidates || req.Confidence != nil || req.Stats {
		writeError(w, http.StatusBadRequest,
			"batch responses carry annotations only: request candidates, confidence or stats via /v1/annotate")
		return
	}
	req.Parallelism = s.clampParallelism(req.Parallelism)
	// Pre-validate before any write: the NDJSON branch commits a 200
	// header when the stream starts, so a bad method, domain or context
	// must be caught here to get its proper 400.
	if err := s.sys.ValidateRequest(&req.RequestSpec); err != nil {
		s.writeAnnotateError(w, r, err)
		return
	}
	opts := req.RequestSpec.Options()

	if wantsNDJSON(r) {
		// Stream one line per document as soon as it and its
		// predecessors are annotated; memory stays bounded by the worker
		// count instead of the batch size. A client disconnect cancels
		// r.Context(), which aborts the in-flight scoring workers.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		// Encode each line into a pooled scratch buffer and reuse one wire
		// slice across lines, so a long stream's per-line heap cost is the
		// line bytes written, not fresh encoder and annotation buffers.
		sc := ndjsonBufs.Get()
		defer ndjsonBufs.Put(sc)
		enc := json.NewEncoder(&sc.buf)
		for doc, err := range s.sys.AnnotateStream(r.Context(), slices.Values(req.Docs), opts...) {
			if err != nil {
				s.noteCanceled(w, r, err)
				return
			}
			s.documents.Add(1)
			if s.cfg.OnDocument != nil {
				s.cfg.OnDocument(req.Docs[doc.Index], doc.Annotations)
			}
			sc.buf.Reset()
			sc.wire = appendWireAnnotations(sc.wire[:0], doc.Annotations)
			if err := enc.Encode(batchLine{Index: doc.Index, Annotations: sc.wire}); err != nil {
				return // marshal failure; nothing sensible to stream
			}
			if _, err := w.Write(sc.buf.Bytes()); err != nil {
				// Client went away mid-stream; the stream's workers stop
				// with us. Count the disconnect if the context confirms it.
				if cerr := r.Context().Err(); cerr != nil {
					s.noteCanceled(w, r, cerr)
				}
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}

	docs, err := s.sys.AnnotateCorpus(r.Context(), req.Docs, opts...)
	if err != nil {
		s.writeAnnotateError(w, r, err)
		return
	}
	results := make([][]Annotation, len(docs))
	for i, doc := range docs {
		results[i] = wireAnnotations(doc.Annotations)
		if s.cfg.OnDocument != nil {
			s.cfg.OnDocument(req.Docs[i], doc.Annotations)
		}
	}
	s.documents.Add(int64(len(req.Docs)))
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// wantsNDJSON reports whether the client asked for a streaming NDJSON
// batch response, via ?stream=1 or an Accept header preferring
// application/x-ndjson over application/json. The media ranges are
// negotiated with their q-values — "application/x-ndjson;q=0" is an
// explicit opt-out, and a header that merely mentions the type among
// preferred others does not force streaming.
func wantsNDJSON(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true", "ndjson":
		return true
	}
	return negotiateAccept(r.Header.Get("Accept"),
		"application/json", "application/x-ndjson") == "application/x-ndjson"
}

type relatednessResponse struct {
	Kind        string        `json:"kind"`
	A           aida.EntityID `json:"a"`
	B           aida.EntityID `json:"b"`
	Relatedness float64       `json:"relatedness"`
}

// clientGone reports whether the request was already abandoned by its
// client (the request context is canceled). The cheap endpoints check it
// on entry so an aborted request is counted as canceled instead of being
// served into the void; the annotation endpoints get the same check from
// AnnotateDoc/AnnotateCorpus/AnnotateStream.
func (s *Server) clientGone(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		s.noteCanceled(w, r, err)
		return true
	}
	return false
}

func (s *Server) handleRelatedness(w http.ResponseWriter, r *http.Request) {
	if s.clientGone(w, r) {
		return
	}
	q := r.URL.Query()
	kind, err := aida.ParseRelatednessKind(q.Get("kind"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	a, err := s.entityParam(q.Get("a"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "a: "+err.Error())
		return
	}
	b, err := s.entityParam(q.Get("b"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "b: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, relatednessResponse{
		Kind:        kind.String(),
		A:           a,
		B:           b,
		Relatedness: s.sys.Relatedness(kind, a, b),
	})
}

// entityParam parses an entity id query parameter and range-checks it
// against the serving KB generation (graduated entities are addressable
// as soon as their delta applies).
func (s *Server) entityParam(raw string) (aida.EntityID, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing entity id")
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid entity id %q", raw)
	}
	if n := s.sys.Store().NumEntities(); id < 0 || id >= n {
		return 0, fmt.Errorf("entity id %d out of range [0,%d)", id, n)
	}
	return aida.EntityID(id), nil
}

// statsResponse is the JSON shape of GET /v1/stats.
type statsResponse struct {
	Server serverStats      `json:"server"`
	Engine aida.ScorerStats `json:"engine"`
	KB     kbStats          `json:"kb"`
}

type serverStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Documents     int64   `json:"documents"`
	// Canceled counts requests abandoned mid-flight because the client
	// disconnected (the new cancellation path).
	Canceled int64 `json:"canceled"`
	// RequestsByEndpoint breaks Requests down per routed path (unrouted
	// paths — 404s — are only in the total).
	RequestsByEndpoint map[string]int64 `json:"requests_by_endpoint"`
	// LatencyByEndpoint is the request-duration histogram per routed
	// path (endpoints with no traffic yet are omitted).
	LatencyByEndpoint map[string]latencyStats `json:"latency_by_endpoint"`
	// Tenants holds the per-tenant admission counters and effective
	// limits, keyed by tenant name (omitted on an open server).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

type kbStats struct {
	Entities int `json:"entities"`
	// Shards is the knowledge base's shard count: 1 for a single KB,
	// N for a ShardedKB router (the -shards flag of cmd/aidaserver).
	Shards int `json:"shards"`
	// RemoteShards is the width of the remote shard fleet behind this
	// server (the -shard-map flag of cmd/aidaserver); 0 when the KB is
	// hosted in-process.
	RemoteShards int `json:"remote_shards"`
	// RemoteRequests/Hedges/Retries/Failovers are the remote store's fetch
	// counters: logical store operations sent to the fleet, speculative
	// duplicates launched past the hedge threshold, error-triggered
	// re-attempts, and operations served by a non-primary endpoint after
	// the primary failed. All 0 when the KB is hosted in-process.
	RemoteRequests  int64 `json:"remote_requests"`
	RemoteHedges    int64 `json:"remote_hedges"`
	RemoteRetries   int64 `json:"remote_retries"`
	RemoteFailovers int64 `json:"remote_failovers"`
	// Generation is the serving KB generation (0 = as loaded; +1 per
	// applied live delta), and the Delta counters total what live
	// updates added since boot. See aida.KBLiveStats.
	Generation    uint64 `json:"generation"`
	DeltaApplies  uint64 `json:"delta_applies"`
	DeltaEntities uint64 `json:"delta_entities"`
	DeltaRows     uint64 `json:"delta_rows"`
}

func (s *Server) statsSnapshot() statsResponse {
	byEndpoint := make(map[string]int64, len(endpoints))
	byLatency := make(map[string]latencyStats, len(endpoints))
	for _, e := range endpoints {
		byEndpoint[e] = s.byEndpoint[e].Load()
		if ls := s.byLatency[e].snapshot(); ls.Count > 0 {
			byLatency[e] = ls
		}
	}
	// One consistent generation snapshot: the store, engine and live
	// counters reported below all describe the same generation even if a
	// delta applies mid-request.
	lv := s.sys.Live()
	kbs := kbStats{
		Entities:      lv.Store.NumEntities(),
		Shards:        lv.Store.NumShards(),
		Generation:    lv.Stats.Generation,
		DeltaApplies:  lv.Stats.DeltaApplies,
		DeltaEntities: lv.Stats.DeltaEntities,
		DeltaRows:     lv.Stats.DeltaRows,
	}
	if r, ok := s.sys.KB.(*kb.RemoteStore); ok {
		rs := r.Stats()
		kbs.RemoteShards = rs.Shards
		kbs.RemoteRequests = rs.Requests
		kbs.RemoteHedges = rs.Hedges
		kbs.RemoteRetries = rs.Retries
		kbs.RemoteFailovers = rs.Failovers
	}
	srv := serverStats{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Requests:           s.requests.Load(),
		Documents:          s.documents.Load(),
		Canceled:           s.canceled.Load(),
		RequestsByEndpoint: byEndpoint,
		LatencyByEndpoint:  byLatency,
	}
	if s.cfg.Tenants != nil {
		srv.Tenants = s.cfg.Tenants.Stats()
	}
	return statsResponse{
		Server: srv,
		Engine: lv.Engine.Stats(),
		KB:     kbs,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.clientGone(w, r) {
		return
	}
	if wantsPrometheus(r) {
		s.writeMetrics(w)
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// wantsPrometheus reports whether the client asked for the Prometheus text
// exposition, via ?format=prometheus or an Accept header preferring
// text/plain over application/json; ?format=json forces JSON. A header
// that merely mentions text/plain at a lower preference — e.g.
// "application/json, text/plain;q=0.1" — gets JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	return negotiateAccept(r.Header.Get("Accept"),
		"application/json", "text/plain") == "text/plain"
}

// snapshotResponse is the body of a successful POST /v1/admin/snapshot.
type snapshotResponse struct {
	Path string `json:"path"`
	// Bytes is the size of the written snapshot file.
	Bytes int64 `json:"bytes"`
	// Profiles and Pairs report the engine state that was captured.
	Profiles int `json:"profiles"`
	Pairs    int `json:"pairs"`
}

// handleSnapshot persists the warm scoring engine to the configured
// snapshot path, atomically (temp file + rename), so a restarting process
// can -engine-snapshot it back in and skip the cold start. 409 when the
// server was started without a snapshot path.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.clientGone(w, r) {
		return
	}
	if s.cfg.EngineSnapshotPath == "" {
		writeError(w, http.StatusConflict, "no engine snapshot path configured (start the server with -engine-snapshot)")
		return
	}
	n, err := s.sys.SaveEngineFile(s.cfg.EngineSnapshotPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "write engine snapshot: "+err.Error())
		return
	}
	st := s.sys.Scorer().Stats()
	s.log.Info("engine snapshot written", "path", s.cfg.EngineSnapshotPath, "bytes", n,
		"profiles", st.Profiles, "pairs", st.Pairs)
	writeJSON(w, http.StatusOK, snapshotResponse{
		Path:     s.cfg.EngineSnapshotPath,
		Bytes:    n,
		Profiles: st.Profiles,
		Pairs:    st.Pairs,
	})
}

type healthResponse struct {
	Status   string `json:"status"`
	Entities int    `json:"entities"`
	// Generation is the serving KB generation (0 = as loaded).
	Generation uint64 `json:"generation"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.clientGone(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Entities:   s.sys.Store().NumEntities(),
		Generation: s.sys.Generation(),
	})
}
