package server

import (
	"strconv"
	"strings"
)

// This file is the one Accept-header parser shared by every content
// negotiator in the package (wantsNDJSON, wantsPrometheus, wantsHTML).
// Before it existed each negotiator did a strings.Contains on the raw
// header, which misrouted any multi-type header that merely mentioned the
// probed type — "Accept: application/json, text/plain;q=0.1" was treated
// as a Prometheus scrape, and "application/x-ndjson;q=0" *enabled*
// streaming. Media ranges are parsed with their q-values and matched by
// RFC 7231 specificity instead.

// mediaRange is one parsed element of an Accept header.
type mediaRange struct {
	typ, sub string  // lower-cased; "*" for wildcards
	q        float64 // quality factor in [0,1]; 0 means "not acceptable"
	pos      int     // position in the header, for client-preference ties
}

// parseAccept parses an Accept header into its media ranges. Malformed
// ranges are skipped rather than failing the request: Accept is advisory,
// and a garbled range should not 400 an otherwise fine call.
func parseAccept(header string) []mediaRange {
	if header == "" {
		return nil
	}
	var out []mediaRange
	for i, part := range strings.Split(header, ",") {
		fields := strings.Split(part, ";")
		mt := strings.ToLower(strings.TrimSpace(fields[0]))
		typ, sub, ok := strings.Cut(mt, "/")
		if !ok || typ == "" || sub == "" {
			continue
		}
		r := mediaRange{typ: typ, sub: sub, q: 1, pos: i}
		for _, param := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(param), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
				continue
			}
			q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				// Unparseable q-value: drop the range, not the request.
				r.q = 0
				break
			}
			r.q = min(max(q, 0), 1)
			break // first q parameter ends the matchable section
		}
		out = append(out, r)
	}
	return out
}

// specificity ranks how precisely a range names a concrete type: exact
// type/subtype beats type/*, which beats */*. Anything else cannot match.
func (r mediaRange) specificity(typ, sub string) int {
	switch {
	case r.typ == typ && r.sub == sub:
		return 3
	case r.typ == typ && r.sub == "*":
		return 2
	case r.typ == "*" && r.sub == "*":
		return 1
	default:
		return 0
	}
}

// negotiateAccept picks which of the offered concrete media types (e.g.
// "application/json", "text/plain") the client prefers, per RFC 7231:
// each offer takes the q-value of its most specific matching range, the
// highest q wins, and ties break first toward the range the client listed
// earlier, then toward the earlier offer (the server's preference — so
// callers list their default first). An empty or absent header accepts
// everything, yielding the first offer; a header that matches no offer
// (or only at q=0) yields "".
func negotiateAccept(header string, offers ...string) string {
	ranges := parseAccept(header)
	if len(ranges) == 0 {
		if len(offers) == 0 {
			return ""
		}
		return offers[0]
	}
	best, bestQ, bestPos := "", 0.0, 0
	for _, offer := range offers {
		typ, sub, _ := strings.Cut(offer, "/")
		spec, q, pos := 0, 0.0, 0
		for _, r := range ranges {
			if s := r.specificity(typ, sub); s > spec {
				spec, q, pos = s, r.q, r.pos
			}
		}
		if spec == 0 || q == 0 {
			continue // not acceptable
		}
		if q > bestQ || (q == bestQ && pos < bestPos) {
			best, bestQ, bestPos = offer, q, pos
		}
	}
	return best
}
