package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"aida/internal/kb"
	"aida/internal/kbtest"
)

// TestRemoteBackedServer pins the full production topology: an annotation
// front-end whose KB is a remote shard fleet must answer /v1/annotate with
// exactly the bytes a local-KB server produces, and /v1/stats must expose
// the fleet's fetch counters.
func TestRemoteBackedServer(t *testing.T) {
	k, docs := testWorld(t, 3)
	fleet := kbtest.StartFleet(t, k, 2, 2)
	remote := fleet.Dial(t, kb.RemoteOptions{})

	localSys, localTS := newTestServer(t, k, Config{})
	_, remoteTS := newTestServer(t, remote, Config{})

	for _, doc := range docs {
		want := readAll(t, postJSON(t, localTS.URL+"/v1/annotate", annotateRequest{Text: doc}))
		got := readAll(t, postJSON(t, remoteTS.URL+"/v1/annotate", annotateRequest{Text: doc}))
		if !bytes.Equal(got, want) {
			t.Fatalf("remote-backed /v1/annotate diverges from local:\n got %s\nwant %s", got, want)
		}
	}
	_ = localSys

	resp, err := http.Get(remoteTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.KB.RemoteShards != 2 {
		t.Fatalf("kb.remote_shards = %d, want 2", st.KB.RemoteShards)
	}
	if st.KB.RemoteRequests == 0 {
		t.Fatal("kb.remote_requests = 0 after annotating through the fleet")
	}

	// A local-KB server reports no fleet.
	resp, err = http.Get(localTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.KB.RemoteShards != 0 || st.KB.RemoteRequests != 0 {
		t.Fatalf("local server reports remote KB stats: %+v", st.KB)
	}
}

// TestRemoteBackedServerFaultCounters asserts the Prometheus exposition of
// the fleet counters: with every shard's primary dead, annotation still
// answers correct bytes and the retry/failover counter families move.
func TestRemoteBackedServerFaultCounters(t *testing.T) {
	k, docs := testWorld(t, 2)
	fleet := kbtest.StartFleet(t, k, 2, 2)
	remote := fleet.Dial(t, kb.RemoteOptions{})
	fleet.SetAll(func(_, rep int) bool { return rep == 0 }, kbtest.Faults{ErrorEvery: 1})

	localSys, _ := newTestServer(t, k, Config{})
	_, remoteTS := newTestServer(t, remote, Config{})

	want := expectedWire(t, localSys, docs[0])
	resp := postJSON(t, remoteTS.URL+"/v1/annotate", annotateRequest{Text: docs[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with dead primaries (replicas should mask)", resp.StatusCode)
	}
	var got struct {
		Annotations json.RawMessage `json:"annotations"`
	}
	if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got.Annotations), want) {
		t.Fatalf("annotations diverge under failover:\n got %s\nwant %s", got.Annotations, want)
	}

	metricsResp, err := http.Get(remoteTS.URL + "/v1/stats?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, metricsResp))
	for _, family := range []string{
		"aida_kb_remote_shards",
		"aida_kb_remote_requests_total",
		"aida_kb_remote_hedges_total",
		"aida_kb_remote_retries_total",
		"aida_kb_remote_failovers_total",
	} {
		if !strings.Contains(metrics, "# TYPE "+family+" ") || !strings.Contains(metrics, "\n"+family+" ") {
			t.Fatalf("metrics exposition lacks the %s family:\n%s", family, metrics)
		}
	}
	for _, moving := range []string{"aida_kb_remote_retries_total 0\n", "aida_kb_remote_failovers_total 0\n"} {
		if strings.Contains(metrics, moving) {
			t.Fatalf("counter %q did not move with dead primaries:\n%s", strings.TrimSuffix(moving, " 0\n"), metrics)
		}
	}
}

// TestShardHostMode pins the serving side: a server configured as a shard
// host mounts the KB read surface under /v1/store/, stamps the content
// fingerprint on responses, and counts the traffic under the /v1/store
// endpoint group.
func TestShardHostMode(t *testing.T) {
	k, _ := testWorld(t, 1)
	host, err := kb.NewStoreHost(k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, k, Config{ShardHost: host})

	resp, err := http.Get(ts.URL + kb.StorePathPrefix + "/meta")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/store/meta: status %d", resp.StatusCode)
	}
	if fp := resp.Header.Get(kb.FingerprintHeader); fp == "" {
		t.Fatal("store response lacks the fingerprint header")
	}

	// And the fleet dials it like any shard host.
	m := kb.ShardMap{Shards: []kb.ShardEndpoints{{Primary: ts.URL}}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := kb.DialFleet(t.Context(), m, kb.RemoteOptions{})
	if err != nil {
		t.Fatalf("DialFleet against the serving front-end: %v", err)
	}
	if r.Fingerprint() != k.Fingerprint() {
		t.Fatalf("fleet fingerprint %016x, want %016x", r.Fingerprint(), k.Fingerprint())
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.Unmarshal(readAll(t, statsResp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Server.RequestsByEndpoint["/v1/store"] == 0 {
		t.Fatalf("store traffic not counted under /v1/store: %+v", st.Server.RequestsByEndpoint)
	}

	// Without a ShardHost the store surface is absent.
	_, plain := newTestServer(t, k, Config{})
	resp, err = http.Get(plain.URL + kb.StorePathPrefix + "/meta")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/store/meta without shard-host mode: status %d, want 404", resp.StatusCode)
	}
}
