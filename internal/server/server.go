// Package server implements the long-running HTTP annotation service: one
// process loads the knowledge base once, holds one aida.System (and thus
// one warm scoring engine), and serves JSON annotation, relatedness and
// observability endpoints. Responses are byte-identical to the in-process
// Annotate output for the same KB at any parallelism, so replicas behind a
// load balancer agree byte-for-byte.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /v1/annotate        annotate one document (JSON or ?format=html)
//	POST /v1/annotate/batch  annotate many documents (JSON array or NDJSON stream)
//	GET  /v1/relatedness     entity-entity relatedness under one measure
//	GET  /v1/stats           engine + server counters (JSON or Prometheus text)
//	POST /v1/admin/snapshot  persist the warm scoring engine to disk
//	POST /v1/admin/kb/delta  apply a live KB delta without restart
//	GET  /demo               static browser demo driving the API
//	GET  /healthz            liveness
//
// Requests are traced (X-Request-ID accepted or generated, echoed on the
// response, logged, embedded in error bodies) and, when a tenant registry
// is configured, admission-controlled per tenant (API-key auth,
// token-bucket rates, max-concurrent quotas, 429 + Retry-After).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"strings"

	"aida"
	"aida/internal/kb"
	"aida/internal/kb/live"
)

// Config bounds and wires a Server. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// MaxBodyBytes caps the request body size (default 8 MiB). Larger
	// bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxBatchDocs caps the number of documents per batch request
	// (default 1024). Larger batches are rejected with 413.
	MaxBatchDocs int
	// MaxParallelism caps the per-request annotation parallelism
	// (default GOMAXPROCS). Requests asking for more are clamped, never
	// rejected: parallelism affects scheduling only, not results.
	MaxParallelism int
	// DefaultParallelism is used when a batch request does not specify
	// parallelism (default MaxParallelism).
	DefaultParallelism int
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
	// EngineSnapshotPath is where POST /v1/admin/snapshot persists the
	// scoring engine (the -engine-snapshot flag of cmd/aidaserver). Empty
	// disables the endpoint (it answers 409).
	EngineSnapshotPath string
	// ShardHost, when set, mounts the remote KB read surface under
	// /v1/store/ (the -shard-host flag of cmd/aidaserver): this process
	// serves its shard of the KB to remote routers alongside — or instead
	// of — annotation traffic.
	ShardHost *kb.StoreHost
	// DeltaJournal, when set, records every delta applied through
	// POST /v1/admin/kb/delta so a restarted process can replay it (the
	// -delta-journal flag of cmd/aidaserver). Journal failures are
	// reported in the response but never roll back an applied delta.
	DeltaJournal *live.Journal
	// OnDocument, when set, observes every successfully annotated
	// document (text plus annotations) after its response is accounted.
	// The graduation loop's Note hook plugs in here; it must be fast and
	// must not retain the text beyond its own bookkeeping.
	OnDocument func(text string, anns []aida.Annotation)
	// Tenants, when set, turns on multi-tenant admission control (the
	// -tenants flag of cmd/aidaserver): every endpoint except /healthz,
	// /v1/stats and /demo requires a known API key, and each tenant's
	// token-bucket rate and max-concurrent quotas are enforced with 429 +
	// Retry-After before any annotation work is scheduled. Nil keeps the
	// server open, exactly as before.
	Tenants *Tenants
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchDocs <= 0 {
		c.MaxBatchDocs = 1024
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultParallelism <= 0 || c.DefaultParallelism > c.MaxParallelism {
		c.DefaultParallelism = c.MaxParallelism
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// endpoints are the routed paths, in the order counters are reported. The
// store endpoints (shard-host mode) are counted together under their
// prefix — they are one logical surface with per-operation subpaths.
var endpoints = []string{
	"/v1/annotate",
	"/v1/annotate/batch",
	"/v1/relatedness",
	"/v1/stats",
	"/v1/admin/snapshot",
	"/v1/admin/kb/delta",
	"/v1/store",
	"/demo",
	"/healthz",
}

// statusClientClosedRequest is the (nginx-convention) status logged when a
// request is abandoned because the client went away; nothing is written to
// the wire, as there is no client left to read it.
const statusClientClosedRequest = 499

// Server is the HTTP front-end over one shared aida.System. All state it
// adds on top of the system is monotonic counters, so a Server is safe for
// concurrent use by construction.
type Server struct {
	sys   *aida.System
	cfg   Config
	log   *slog.Logger
	start time.Time

	requests   atomic.Int64 // HTTP requests served (any endpoint)
	documents  atomic.Int64 // documents annotated
	canceled   atomic.Int64 // requests abandoned because the client disconnected
	byEndpoint map[string]*atomic.Int64
	byLatency  map[string]*latencyHist

	// applyMu pairs a delta apply with its journal append, so the journal
	// records applies in the order they happened.
	applyMu sync.Mutex
}

// New wraps a system in a Server. The system's scoring engine is shared
// across all requests, so the service gets warmer with traffic.
func New(sys *aida.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{sys: sys, cfg: cfg, log: cfg.Logger, start: time.Now(),
		byEndpoint: make(map[string]*atomic.Int64, len(endpoints)),
		byLatency:  make(map[string]*latencyHist, len(endpoints))}
	for _, e := range endpoints {
		s.byEndpoint[e] = new(atomic.Int64)
		s.byLatency[e] = new(latencyHist)
	}
	return s
}

// noteCanceled records a request abandoned mid-flight because its context
// was canceled (client disconnect or shutdown): the cancellation counter
// moves and the access log shows status 499. It reports whether err was in
// fact a cancellation; any other error is left to the caller.
func (s *Server) noteCanceled(w http.ResponseWriter, r *http.Request, err error) bool {
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	s.canceled.Add(1)
	s.log.Info("request canceled", "path", r.URL.Path, "err", err)
	if lw, ok := w.(*loggingWriter); ok {
		lw.status = statusClientClosedRequest
	}
	return true
}

// Handler returns the service's routing handler with the middleware
// chain applied, outermost first: trace (X-Request-ID) → request
// logging/counting → tenant auth + quotas → route. Tracing sits outside
// logging and admission so a throttled or rejected request still carries
// its id on the response, in its error body and on the log line.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/annotate", s.handleAnnotate)
	mux.HandleFunc("POST /v1/annotate/batch", s.handleAnnotateBatch)
	mux.HandleFunc("GET /v1/relatedness", s.handleRelatedness)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/admin/kb/delta", s.handleDeltaApply)
	mux.HandleFunc("GET /demo", s.handleDemo)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.ShardHost != nil {
		mux.Handle(kb.StorePathPrefix+"/", s.cfg.ShardHost.Handler())
	}
	return s.traced(s.logged(s.tenanted(mux)))
}

// Serve accepts connections on l until ctx is cancelled, then drains
// in-flight requests for at most drain before forcing connections closed.
// It returns nil on a clean (cancelled and drained) exit.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "drain", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// Drain timed out: force lingering connections (e.g. a slow
		// NDJSON stream) closed so embedders don't leak them.
		hs.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// logged wraps next with request counting (total and per endpoint) and
// structured access logging.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		path := r.URL.Path
		if strings.HasPrefix(path, kb.StorePathPrefix+"/") {
			path = kb.StorePathPrefix
		}
		if c := s.byEndpoint[path]; c != nil {
			c.Add(1)
		}
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(lw, r)
		if h := s.byLatency[path]; h != nil {
			h.observe(time.Since(t0))
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", lw.status,
			"bytes", lw.bytes,
			"duration_ms", float64(time.Since(t0).Microseconds()) / 1000,
			"remote", r.RemoteAddr,
			"request_id", requestID(r.Context()),
		}
		if lw.tenant != "" {
			attrs = append(attrs, "tenant", lw.tenant)
		}
		s.log.Info("request", attrs...)
	})
}

// loggingWriter records the status and byte count of a response, plus the
// tenant the admission layer attributed the request to. Flush is
// forwarded so NDJSON streaming works through the middleware.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	tenant string
}

func (w *loggingWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *loggingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// errorResponse is the body of every non-2xx response. RequestID repeats
// the response's X-Request-ID so a pasted error body alone is enough to
// find the request's log line.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError writes the JSON error body. The trace id is read back from
// the response header the traced middleware set, so every call site gets
// attribution without threading the request through.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg, RequestID: w.Header().Get(requestIDHeader)})
}

// decodeBody decodes a JSON request body under the configured size cap.
// It writes the error response itself and reports whether decoding
// succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

// clampParallelism resolves a requested per-request parallelism against
// the configured default and cap. Negative values pass through untouched:
// they are a client error the option resolution rejects with 400, not a
// "use the default" request.
func (s *Server) clampParallelism(requested int) int {
	p := requested
	if p == 0 {
		p = s.cfg.DefaultParallelism
	}
	if p > s.cfg.MaxParallelism {
		p = s.cfg.MaxParallelism
	}
	return p
}
