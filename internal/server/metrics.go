package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promLabelEscaper escapes a label value for the Prometheus text
// exposition. The format defines exactly three escapes — backslash,
// double quote and newline; %q is wrong here because it emits Go-style
// \uXXXX sequences for non-ASCII values (exposition label values are
// raw UTF-8), which matters as soon as tenant names become label values.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabel renders one label="value" pair with exposition-format
// escaping applied to the value.
func promLabel(name, value string) string {
	return name + `="` + promLabelEscaper.Replace(value) + `"`
}

// writeMetrics renders the stats snapshot in the Prometheus text
// exposition format (hand-rolled: the format is three line shapes, not
// worth a dependency).
func (s *Server) writeMetrics(w http.ResponseWriter) {
	st := s.statsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	writeMetric(w, "aida_server_uptime_seconds", "gauge",
		"Seconds since the server started.", st.Server.UptimeSeconds)
	writeMetric(w, "aida_server_requests_total", "counter",
		"HTTP requests served across all endpoints.", float64(st.Server.Requests))
	writeMetric(w, "aida_server_documents_total", "counter",
		"Documents annotated by the annotate endpoints.", float64(st.Server.Documents))
	writeMetric(w, "aida_server_requests_canceled_total", "counter",
		"Requests abandoned mid-flight because the client disconnected.", float64(st.Server.Canceled))
	header(w, "aida_server_endpoint_requests_total", "counter",
		"HTTP requests served, by routed endpoint.")
	for _, e := range endpoints {
		fmt.Fprintf(w, "aida_server_endpoint_requests_total{%s} %d\n", promLabel("endpoint", e), st.Server.RequestsByEndpoint[e])
	}
	header(w, "aida_server_tenant_requests_total", "counter",
		"Admission attempts per tenant (admitted plus throttled).")
	tenants := s.cfg.Tenants
	if tenants != nil {
		for _, name := range tenants.Names() {
			fmt.Fprintf(w, "aida_server_tenant_requests_total{%s} %d\n",
				promLabel("tenant", name), st.Server.Tenants[name].Requests)
		}
	}
	header(w, "aida_server_tenant_throttled_total", "counter",
		"Requests rejected with 429 because the tenant was over quota.")
	if tenants != nil {
		for _, name := range tenants.Names() {
			fmt.Fprintf(w, "aida_server_tenant_throttled_total{%s} %d\n",
				promLabel("tenant", name), st.Server.Tenants[name].Throttled)
		}
	}
	header(w, "aida_server_tenant_in_flight", "gauge",
		"Requests currently in flight per tenant.")
	if tenants != nil {
		for _, name := range tenants.Names() {
			fmt.Fprintf(w, "aida_server_tenant_in_flight{%s} %d\n",
				promLabel("tenant", name), st.Server.Tenants[name].InFlight)
		}
	}
	header(w, "aida_server_request_seconds", "histogram",
		"Request duration, by routed endpoint.")
	for _, e := range endpoints {
		ls, ok := st.Server.LatencyByEndpoint[e]
		if !ok {
			continue
		}
		for i := 0; i <= numLatencyBuckets; i++ {
			le := bucketLabel(i)
			fmt.Fprintf(w, "aida_server_request_seconds_bucket{%s,%s} %d\n",
				promLabel("endpoint", e), promLabel("le", le), ls.Buckets[le])
		}
		fmt.Fprintf(w, "aida_server_request_seconds_sum{%s} %g\n", promLabel("endpoint", e), ls.SumSeconds)
		fmt.Fprintf(w, "aida_server_request_seconds_count{%s} %d\n", promLabel("endpoint", e), ls.Count)
	}
	writeMetric(w, "aida_kb_entities", "gauge",
		"Entities in the loaded knowledge base.", float64(st.KB.Entities))
	writeMetric(w, "aida_kb_generation", "gauge",
		"Serving knowledge-base generation (0 = as loaded, +1 per applied live delta).", float64(st.KB.Generation))
	writeMetric(w, "aida_kb_delta_applies_total", "counter",
		"Live KB deltas applied since boot.", float64(st.KB.DeltaApplies))
	writeMetric(w, "aida_kb_delta_entities_total", "counter",
		"Entities added by live KB deltas since boot.", float64(st.KB.DeltaEntities))
	writeMetric(w, "aida_kb_delta_rows_total", "counter",
		"Dictionary rows added by live KB deltas since boot.", float64(st.KB.DeltaRows))
	writeMetric(w, "aida_kb_shards", "gauge",
		"Shards backing the knowledge base (1 = unsharded).", float64(st.KB.Shards))
	writeMetric(w, "aida_kb_remote_shards", "gauge",
		"Width of the remote shard fleet behind this server (0 = KB hosted in-process).", float64(st.KB.RemoteShards))
	writeMetric(w, "aida_kb_remote_requests_total", "counter",
		"Logical KB store operations sent to the remote shard fleet.", float64(st.KB.RemoteRequests))
	writeMetric(w, "aida_kb_remote_hedges_total", "counter",
		"Speculative duplicate fetches launched past the hedge latency threshold.", float64(st.KB.RemoteHedges))
	writeMetric(w, "aida_kb_remote_retries_total", "counter",
		"Remote fetch attempts relaunched on another replica after an error or fingerprint mismatch.", float64(st.KB.RemoteRetries))
	writeMetric(w, "aida_kb_remote_failovers_total", "counter",
		"Remote operations ultimately served by a non-primary replica after the primary failed.", float64(st.KB.RemoteFailovers))
	writeMetric(w, "aida_engine_profiles", "gauge",
		"Entity keyphrase profiles interned by the scoring engine.", float64(st.Engine.Profiles))
	writeMetric(w, "aida_engine_profile_bytes", "gauge",
		"Approximate heap footprint of the interned profiles.", float64(st.Engine.ProfileBytes))
	writeMetric(w, "aida_engine_pairs_cached", "gauge",
		"Memoized entity-pair relatedness values across all measure kinds.", float64(st.Engine.Pairs))
	writeMetric(w, "aida_engine_max_profile_bytes", "gauge",
		"Configured interned-profile memory budget (0 = unbounded).", float64(st.Engine.MaxProfileBytes))
	writeMetric(w, "aida_engine_evictions_total", "counter",
		"Interned profiles evicted to honor the profile-memory budget.", float64(st.Engine.Evictions))
	writeMetric(w, "aida_engine_pairs_evicted_total", "counter",
		"Memoized pair values dropped because one of their entities was evicted.", float64(st.Engine.PairsEvicted))

	header(w, "aida_engine_kind_hits_total", "counter",
		"Pair-cache hits by measure kind.")
	for _, ks := range st.Engine.ByKind {
		fmt.Fprintf(w, "aida_engine_kind_hits_total{%s} %d\n", promLabel("kind", ks.Name), ks.Hits)
	}
	header(w, "aida_engine_kind_misses_total", "counter",
		"Pair-cache misses (computed values) by measure kind.")
	for _, ks := range st.Engine.ByKind {
		fmt.Fprintf(w, "aida_engine_kind_misses_total{%s} %d\n", promLabel("kind", ks.Name), ks.Misses)
	}
}

func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeMetric(w io.Writer, name, typ, help string, v float64) {
	header(w, name, typ, help)
	fmt.Fprintf(w, "%s %g\n", name, v)
}
