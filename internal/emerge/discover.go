package emerge

import (
	"aida/internal/disambig"
	"aida/internal/kb"
)

// Discoverer implements Algorithm 3: a general emerging-entity discovery
// wrapper around any keyphrase-based NED method. Mentions below the lower
// confidence threshold are declared emerging; mentions above the upper
// threshold are fixed; the remaining mentions are re-disambiguated with an
// explicit EE placeholder candidate added to their candidate space.
type Discoverer struct {
	Method disambig.Method
	// Lower/Upper are the confidence thresholds t_l/t_u. The defaults
	// (0, 1) reduce Algorithm 3 to its pure-placeholder special case:
	// NED runs once on the EE-extended problem.
	Lower, Upper float64
	// Confidence assesses the first-stage output; nil uses NormConfidence.
	Confidence func(m disambig.Method, p *disambig.Problem, out *disambig.Output) []float64
}

// Discovery is the outcome of Discoverer.Discover.
type Discovery struct {
	Output *disambig.Output
	// Emerging[i] reports whether mention i was mapped to an emerging
	// entity (either its EE placeholder won, or it had no candidates).
	Emerging []bool
	// Models are the placeholder candidates the discovery ran with, by
	// mention surface (the eeModels argument of Discover). Surfaces
	// without global evidence have no entry. Downstream consumers — the
	// live-KB graduation loop — read the harvested keyphrase features of
	// an emerging mention from here.
	Models map[string]disambig.Candidate
}

// IsEE reports whether a result row denotes an emerging entity: no KB
// candidate chosen, or the chosen candidate is a placeholder.
func IsEE(r disambig.Result) bool {
	return r.Entity == kb.NoEntity
}

// Discover runs Algorithm 3. eeModels maps a mention surface to its
// placeholder candidate (from BuildEEModel); mentions without a model get
// no placeholder and can only become EE by having no candidates or by
// thresholding.
func (d *Discoverer) Discover(p *disambig.Problem, eeModels map[string]disambig.Candidate) *Discovery {
	lower, upper := d.Lower, d.Upper
	if upper <= 0 {
		upper = 1
	}
	emerging := make([]bool, len(p.Mentions))
	fixed := make(map[int]disambig.Result)

	work := p.Clone()
	if lower > 0 || upper < 1 {
		// Stage 1: plain NED + confidence thresholds.
		base := d.Method.Disambiguate(p)
		conf := NormConfidence(base)
		if d.Confidence != nil {
			conf = d.Confidence(d.Method, p, base)
		}
		for i, r := range base.Results {
			switch {
			case r.CandidateIndex < 0:
				emerging[i] = true
				fixed[i] = r
			case conf[i] <= lower:
				emerging[i] = true
				ee := r
				ee.CandidateIndex = -1
				ee.Entity = kb.NoEntity
				ee.Label = r.Surface + "_EE"
				fixed[i] = ee
			case conf[i] >= upper:
				fixed[i] = r
				work.Mentions[i].Candidates = []disambig.Candidate{p.Mentions[i].Candidates[r.CandidateIndex]}
			}
		}
	}

	// Stage 2: extend the unresolved mentions with EE placeholders.
	for i := range work.Mentions {
		if _, done := fixed[i]; done {
			continue
		}
		if ee, ok := eeModels[work.Mentions[i].Surface]; ok {
			work.Mentions[i].Candidates = append(work.Mentions[i].Candidates, ee)
		}
	}
	out := d.Method.Disambiguate(work)

	// Merge: fixed mentions keep their stage-1 results; placeholder wins
	// become EE.
	final := &disambig.Output{Results: make([]disambig.Result, len(p.Mentions)), Stats: out.Stats}
	for i := range p.Mentions {
		if r, done := fixed[i]; done {
			final.Results[i] = r
			continue
		}
		r := out.Results[i]
		if r.CandidateIndex >= 0 && work.Mentions[i].Candidates[r.CandidateIndex].Entity == kb.NoEntity {
			emerging[i] = true
			r.Entity = kb.NoEntity
			// CandidateIndex refers to the extended candidate list, which
			// the caller does not see; mark as placeholder.
			r.CandidateIndex = -1
		} else if r.CandidateIndex < 0 {
			emerging[i] = true
		}
		final.Results[i] = r
	}
	return &Discovery{Output: final, Emerging: emerging, Models: eeModels}
}
