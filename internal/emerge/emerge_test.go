package emerge

import (
	"math"
	"strings"
	"testing"

	"aida/internal/disambig"
	"aida/internal/kb"
)

// buildEEKB creates the Prism/Snowden scenario of Sec. 5.1.1: the KB knows
// a town called Snowden and a band called Prism, but not the whistleblower
// or the surveillance program.
func buildEEKB() *kb.KB {
	b := kb.NewBuilder()
	town := b.AddEntity("Snowden, WA", "geography", "location")
	band := b.AddEntity("Prism (band)", "music", "band")
	state := b.AddEntity("Washington (state)", "geography", "location")
	gov := b.AddEntity("US Government", "politics", "organization")
	b.AddName("Snowden", town, 10)
	b.AddName("Prism", band, 10)
	b.AddName("Washington", state, 6)
	b.AddName("Washington", gov, 4)
	b.AddLink(town, state)
	b.AddLink(state, town)
	b.AddKeyphrase(town, "Washington town")
	b.AddKeyphrase(town, "rural county")
	b.AddKeyphrase(band, "rock band")
	b.AddKeyphrase(band, "studio album")
	b.AddKeyphrase(state, "pacific northwest")
	b.AddKeyphrase(state, "Washington town")
	b.AddKeyphrase(gov, "federal agency")
	b.AddKeyphrase(gov, "intelligence officials")
	return b.Build()
}

func eeProblem(k *kb.KB) *disambig.Problem {
	text := "Washington's program Prism was revealed by the whistleblower Snowden after intelligence officials confirmed the secret surveillance program."
	return disambig.NewProblem(k, text, []string{"Washington", "Prism", "Snowden"}, 0)
}

func simMethod() disambig.Method {
	return disambig.NewAIDAVariant("sim", disambig.Config{})
}

func TestNormConfidence(t *testing.T) {
	out := &disambig.Output{Results: []disambig.Result{
		{CandidateIndex: 0, Scores: []float64{3, 1}},
		{CandidateIndex: -1},
		{CandidateIndex: 1, Scores: []float64{0, 0}},
	}}
	conf := NormConfidence(out)
	if math.Abs(conf[0]-0.75) > 1e-9 {
		t.Errorf("conf[0] = %v, want 0.75", conf[0])
	}
	if conf[1] != 0 {
		t.Errorf("unassigned mention must have 0 confidence")
	}
	if math.Abs(conf[2]-0.5) > 1e-9 {
		t.Errorf("zero-evidence mention should split mass, got %v", conf[2])
	}
}

func TestMentionPerturbationStableMention(t *testing.T) {
	k := buildEEKB()
	p := eeProblem(k)
	m := simMethod()
	base := m.Disambiguate(p)
	conf := MentionPerturbation(m, p, base, PerturbConfig{Iterations: 15, Seed: 1})
	for i, c := range conf {
		if c < 0 || c > 1 {
			t.Fatalf("confidence %d out of range: %v", i, c)
		}
	}
	// "Prism" has a single candidate: its choice never changes under
	// mention dropping.
	if conf[1] < 0.99 {
		t.Errorf("single-candidate mention should be fully stable, got %v", conf[1])
	}
}

func TestEntityPerturbationRange(t *testing.T) {
	k := buildEEKB()
	p := eeProblem(k)
	m := simMethod()
	base := m.Disambiguate(p)
	conf := EntityPerturbation(m, p, base, PerturbConfig{Iterations: 15, Seed: 2})
	for i, c := range conf {
		if c < 0 || c > 1 {
			t.Fatalf("confidence %d out of range: %v", i, c)
		}
	}
}

func TestCONFCombination(t *testing.T) {
	k := buildEEKB()
	p := eeProblem(k)
	m := simMethod()
	base := m.Disambiguate(p)
	conf := CONF(m, p, base, PerturbConfig{Iterations: 10, Seed: 3})
	norm := NormConfidence(base)
	pert := EntityPerturbation(m, p, base, PerturbConfig{Iterations: 10, Seed: 3})
	for i := range conf {
		want := 0.5*norm[i] + 0.5*pert[i]
		if math.Abs(conf[i]-want) > 1e-9 {
			t.Fatalf("CONF[%d] = %v, want %v", i, conf[i], want)
		}
	}
}

func TestHarvesterFindsKeyphrases(t *testing.T) {
	var h Harvester
	docs := []string{
		"The whistleblower Snowden revealed a secret surveillance program. Snowden fled the country.",
		"Officials confirmed Snowden leaked the intelligence files.",
	}
	hv := h.HarvestDocs(docs, []string{"Snowden"})
	if hv.Occurrences["Snowden"] != 3 {
		t.Fatalf("want 3 occurrences, got %d", hv.Occurrences["Snowden"])
	}
	counts := hv.Counts["Snowden"]
	found := false
	for p := range counts {
		if strings.Contains(strings.ToLower(p), "surveillance") {
			found = true
		}
		if strings.EqualFold(p, "Snowden") {
			t.Error("the name itself must not be its own keyphrase")
		}
	}
	if !found {
		t.Fatalf("surveillance phrase not harvested: %v", counts)
	}
}

func TestHarvesterMultiTokenName(t *testing.T) {
	var h Harvester
	docs := []string{"Edward Snowden spoke about the surveillance program yesterday."}
	hv := h.HarvestDocs(docs, []string{"Edward Snowden"})
	if hv.Occurrences["Edward Snowden"] != 1 {
		t.Fatalf("multi-token name not found: %v", hv.Occurrences)
	}
}

func TestHarvestMerge(t *testing.T) {
	var h Harvester
	a := h.HarvestDocs([]string{"Snowden revealed the surveillance program."}, []string{"Snowden"})
	b := h.HarvestDocs([]string{"Snowden fled after the surveillance program leak."}, []string{"Snowden"})
	docs := a.Docs + b.Docs
	a.Merge(b)
	if a.Docs != docs {
		t.Errorf("doc count not merged")
	}
	if a.Occurrences["Snowden"] != 2 {
		t.Errorf("occurrences not merged: %d", a.Occurrences["Snowden"])
	}
}

func TestBuildEEModelDifference(t *testing.T) {
	k := buildEEKB()
	var h Harvester
	docs := []string{
		"The whistleblower Snowden revealed the secret surveillance program to the press.",
		"Snowden leaked intelligence files describing the surveillance program. The rural county of Snowden stayed quiet.",
	}
	hv := h.HarvestDocs(docs, []string{"Snowden"})
	cands := disambig.MaterializeCandidates(k, "Snowden", 0)
	ee := BuildEEModel("Snowden", hv, cands, ModelConfig{KBSize: k.NumEntities()})
	if ee.Entity != kb.NoEntity || ee.Label != "Snowden_EE" {
		t.Fatalf("bad placeholder identity: %+v", ee)
	}
	if len(ee.Keyphrases) == 0 {
		t.Fatal("EE model has no keyphrases")
	}
	// The global-minus-KB difference must keep the fresh phrases and tend
	// to drop the KB candidate's own phrases.
	hasSurveillance := false
	for _, kp := range ee.Keyphrases {
		if strings.Contains(strings.ToLower(kp.Phrase), "surveillance") {
			hasSurveillance = true
		}
		if kp.MI <= 0 || kp.MI > 1 {
			t.Errorf("phrase %q has bad weight %v", kp.Phrase, kp.MI)
		}
	}
	if !hasSurveillance {
		t.Fatalf("surveillance evidence missing from EE model: %+v", ee.Keyphrases)
	}
}

func TestBuildEEModelSubtractsKBPhrases(t *testing.T) {
	k := buildEEKB()
	cands := disambig.MaterializeCandidates(k, "Snowden", 0)
	hv := &Harvest{
		Counts: map[string]map[string]int{
			"Snowden": {"rural county": 1, "surveillance program": 1},
		},
		Occurrences: map[string]int{"Snowden": 2},
		Docs:        1,
	}
	ee := BuildEEModel("Snowden", hv, cands, ModelConfig{KBSize: k.NumEntities()})
	for _, kp := range ee.Keyphrases {
		if strings.EqualFold(kp.Phrase, "rural county") {
			t.Error("phrase present in the in-KB model must be subtracted at equal counts")
		}
	}
}

func TestDiscoverPlaceholderWins(t *testing.T) {
	k := buildEEKB()
	var h Harvester
	chunk := []string{
		"The whistleblower Snowden revealed the secret surveillance program.",
		"Snowden leaked files about the surveillance program and fled.",
		"Prism is the secret surveillance program run by intelligence officials.",
		"The program Prism collects data, the whistleblower said.",
	}
	hv := h.HarvestDocs(chunk, []string{"Snowden", "Prism"})
	models := map[string]disambig.Candidate{}
	for _, name := range []string{"Snowden", "Prism"} {
		cands := disambig.MaterializeCandidates(k, name, 0)
		models[name] = BuildEEModel(name, hv, cands, ModelConfig{KBSize: k.NumEntities(), GammaEE: 1})
	}
	d := &Discoverer{Method: simMethod()}
	p := eeProblem(k)
	disc := d.Discover(p, models)
	if !disc.Emerging[1] {
		t.Errorf("Prism should be discovered as emerging: %+v", disc.Output.Results[1])
	}
	if !disc.Emerging[2] {
		t.Errorf("Snowden should be discovered as emerging: %+v", disc.Output.Results[2])
	}
	if disc.Emerging[0] {
		t.Errorf("Washington is in the KB and should not be emerging")
	}
	for _, r := range disc.Output.Results {
		if r.Entity == kb.NoEntity && r.CandidateIndex >= 0 {
			t.Error("EE results must not leak extended candidate indices")
		}
	}
}

func TestDiscoverKeepsKBEntityOnKBEvidence(t *testing.T) {
	k := buildEEKB()
	// Context matching the town: the placeholder must lose.
	p := disambig.NewProblem(k, "The rural county town of Snowden in the pacific northwest held a fair.",
		[]string{"Snowden"}, 0)
	ee := disambig.Candidate{
		Entity: kb.NoEntity, Label: "Snowden_EE", EdgeScale: 1,
		Keyphrases: []kb.Keyphrase{{Phrase: "surveillance program", Words: []string{"surveillance", "program"}, MI: 1}},
	}
	d := &Discoverer{Method: simMethod()}
	disc := d.Discover(p, map[string]disambig.Candidate{"Snowden": ee})
	if disc.Emerging[0] {
		t.Fatalf("town context should map to the KB town, got %+v", disc.Output.Results[0])
	}
	if disc.Output.Results[0].Label != "Snowden, WA" {
		t.Fatalf("wrong entity: %q", disc.Output.Results[0].Label)
	}
}

func TestDiscoverThresholds(t *testing.T) {
	k := buildEEKB()
	p := eeProblem(k)
	d := &Discoverer{Method: simMethod(), Lower: 1.0, Upper: 2}
	// With the maximal lower threshold every mention becomes EE even
	// without placeholder models.
	disc := d.Discover(p, nil)
	for i := range disc.Emerging {
		if !disc.Emerging[i] {
			t.Errorf("mention %d should be forced to EE by the threshold", i)
		}
	}
}

func TestEnricher(t *testing.T) {
	k := buildEEKB()
	town, _ := k.EntityByName("Snowden, WA")
	e := NewEnricher()
	e.Add(town, map[string]int{"county fair": 3, "harvest festival": 1})
	if e.Size() != 1 {
		t.Fatalf("size = %d", e.Size())
	}
	p := disambig.NewProblem(k, "Snowden hosted the county fair.", []string{"Snowden"}, 0)
	before := len(p.Mentions[0].Candidates[0].Keyphrases)
	e.Enrich(p)
	after := len(p.Mentions[0].Candidates[0].Keyphrases)
	if after != before+2 {
		t.Fatalf("enrichment did not add phrases: %d → %d", before, after)
	}
	// Duplicate adds are ignored.
	e.Add(town, map[string]int{"county fair": 5})
	p2 := disambig.NewProblem(k, "Snowden hosted the county fair.", []string{"Snowden"}, 0)
	e.Enrich(p2)
	if len(p2.Mentions[0].Candidates[0].Keyphrases) != after {
		t.Fatal("duplicate phrases must not accumulate")
	}
}

func TestEnricherImprovesDisambiguation(t *testing.T) {
	k := buildEEKB()
	town, _ := k.EntityByName("Snowden, WA")
	// Without enrichment the fair context carries no evidence for the town.
	text := "Snowden hosted the county fair and the harvest festival."
	p := disambig.NewProblem(k, text, []string{"Snowden"}, 0)
	ee := disambig.Candidate{
		Entity: kb.NoEntity, Label: "Snowden_EE", EdgeScale: 1,
		Keyphrases: []kb.Keyphrase{{Phrase: "county fair", Words: []string{"county", "fair"}, MI: 0.4}},
	}
	p.Mentions[0].Candidates = append(p.Mentions[0].Candidates, ee)
	e := NewEnricher()
	e.Add(town, map[string]int{"county fair": 3, "harvest festival": 2})
	e.Enrich(p)
	out := simMethod().Disambiguate(p)
	if out.Results[0].Label != "Snowden, WA" {
		t.Fatalf("enriched town should beat the placeholder, got %q", out.Results[0].Label)
	}
}

func TestHighConfidenceMentions(t *testing.T) {
	out := &disambig.Output{Results: []disambig.Result{
		{Entity: 1}, {Entity: kb.NoEntity}, {Entity: 2},
	}}
	idx := HighConfidenceMentions(out, []float64{0.99, 0.99, 0.5}, 0.95)
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("got %v, want [0]", idx)
	}
}

func BenchmarkBuildEEModel(b *testing.B) {
	k := buildEEKB()
	var h Harvester
	hv := h.HarvestDocs([]string{
		"The whistleblower Snowden revealed the secret surveillance program to the press.",
		"Snowden leaked intelligence files describing the surveillance program.",
	}, []string{"Snowden"})
	cands := disambig.MaterializeCandidates(k, "Snowden", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildEEModel("Snowden", hv, cands, ModelConfig{KBSize: k.NumEntities()})
	}
}

func BenchmarkEntityPerturbation(b *testing.B) {
	k := buildEEKB()
	p := eeProblem(k)
	m := simMethod()
	base := m.Disambiguate(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EntityPerturbation(m, p, base, PerturbConfig{Iterations: 5, Seed: int64(i)})
	}
}
