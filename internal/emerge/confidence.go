// Package emerge implements NED-EE, the emerging-entity discovery of
// Chapter 5: disambiguation-confidence assessment by score normalization
// and input perturbation (Sec. 5.4), the explicit keyphrase model of
// out-of-KB entities built by model difference (Sec. 5.5), and the
// discovery algorithm that adds placeholder candidates to the NED problem
// (Sec. 5.6, Algorithm 3).
package emerge

import (
	"math/rand"

	"aida/internal/disambig"
	"aida/internal/kb"
)

// NormConfidence computes the normalized-score confidence of Sec. 5.4.1 for
// each mention: the chosen candidate's share of the total score mass.
// Mentions without a chosen candidate get confidence 0.
func NormConfidence(out *disambig.Output) []float64 {
	conf := make([]float64, len(out.Results))
	for i, r := range out.Results {
		if r.CandidateIndex < 0 || len(r.Scores) == 0 {
			continue
		}
		var sum float64
		for _, s := range r.Scores {
			if s > 0 {
				sum += s
			}
		}
		if sum <= 0 {
			// All-zero scores: the method had no evidence; split mass
			// uniformly.
			conf[i] = 1 / float64(len(r.Scores))
			continue
		}
		s := r.Scores[r.CandidateIndex]
		if s < 0 {
			s = 0
		}
		conf[i] = s / sum
	}
	return conf
}

// PerturbConfig tunes the perturbation-based assessors.
type PerturbConfig struct {
	// Iterations is the number of perturbed NED runs (default 20; the
	// dissertation uses up to 500 — quality saturates much earlier).
	Iterations int
	// KeepProb is the probability of keeping each mention in a
	// mention-perturbation round (default 0.7).
	KeepProb float64
	// ForceFrac is the fraction of mentions force-mapped to alternate
	// entities in an entity-perturbation round (default 0.2).
	ForceFrac float64
	Seed      int64
}

func (c PerturbConfig) withDefaults() PerturbConfig {
	if c.Iterations <= 0 {
		c.Iterations = 20
	}
	if c.KeepProb <= 0 || c.KeepProb >= 1 {
		c.KeepProb = 0.7
	}
	if c.ForceFrac <= 0 || c.ForceFrac >= 1 {
		c.ForceFrac = 0.2
	}
	return c
}

// MentionPerturbation estimates confidence by dropping random mention
// subsets and re-running NED (Sec. 5.4.2): the confidence of a mention is
// the fraction of rounds in which its initial entity survived.
func MentionPerturbation(m disambig.Method, p *disambig.Problem, base *disambig.Output, cfg PerturbConfig) []float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 0x5ee))
	n := len(p.Mentions)
	kept := make([]int, n)   // k_i: rounds the mention was present
	stable := make([]int, n) // c_i: rounds the initial entity was re-chosen
	for it := 0; it < cfg.Iterations; it++ {
		var idx []int
		for i := 0; i < n; i++ {
			if rng.Float64() < cfg.KeepProb {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		sub := &disambig.Problem{
			ContextWords:  p.ContextWords,
			WordIDF:       p.WordIDF,
			TotalEntities: p.TotalEntities,
		}
		for _, i := range idx {
			sub.Mentions = append(sub.Mentions, p.Mentions[i])
		}
		out := m.Disambiguate(sub)
		for pos, i := range idx {
			kept[i]++
			if out.Results[pos].Entity == base.Results[i].Entity &&
				out.Results[pos].Label == base.Results[i].Label {
				stable[i]++
			}
		}
	}
	conf := make([]float64, n)
	for i := 0; i < n; i++ {
		if kept[i] > 0 {
			conf[i] = float64(stable[i]) / float64(kept[i])
		}
	}
	return conf
}

// EntityPerturbation estimates confidence by force-mapping random mentions
// to alternate candidates and checking whether the remaining mentions keep
// their initial entities (Sec. 5.4.3).
func EntityPerturbation(m disambig.Method, p *disambig.Problem, base *disambig.Output, cfg PerturbConfig) []float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 0xe47))
	n := len(p.Mentions)
	kept := make([]int, n)
	stable := make([]int, n)
	for it := 0; it < cfg.Iterations; it++ {
		forced := make([]bool, n)
		var forcedIdx []int
		for i := 0; i < n; i++ {
			if len(p.Mentions[i].Candidates) > 1 && rng.Float64() < cfg.ForceFrac {
				forced[i] = true
				forcedIdx = append(forcedIdx, i)
			}
		}
		if len(forcedIdx) == n {
			continue
		}
		sub := p.Clone()
		// Force-map in ascending mention order: sampleAlternate consumes
		// rng draws, so the iteration order is part of the deterministic
		// seeded behavior (a map walk here would randomize CONF between
		// runs — caught by the golden-corpus conformance suite).
		for _, i := range forcedIdx {
			// Force-map to an alternate candidate drawn in proportion to
			// the method's scores (uniform when scores are unavailable).
			alt := sampleAlternate(rng, base.Results[i], len(p.Mentions[i].Candidates))
			sub.Mentions[i].Candidates = []disambig.Candidate{p.Mentions[i].Candidates[alt]}
		}
		out := m.Disambiguate(sub)
		for i := 0; i < n; i++ {
			if forced[i] {
				continue
			}
			kept[i]++
			if out.Results[i].Entity == base.Results[i].Entity &&
				out.Results[i].Label == base.Results[i].Label {
				stable[i]++
			}
		}
	}
	conf := make([]float64, n)
	for i := 0; i < n; i++ {
		if kept[i] > 0 {
			conf[i] = float64(stable[i]) / float64(kept[i])
		}
	}
	return conf
}

// sampleAlternate draws a candidate index different from the chosen one,
// with probability proportional to the method's scores.
func sampleAlternate(rng *rand.Rand, r disambig.Result, numCands int) int {
	if numCands <= 1 {
		return 0
	}
	var total float64
	for i, s := range r.Scores {
		if i != r.CandidateIndex && s > 0 {
			total += s
		}
	}
	if len(r.Scores) != numCands || total <= 0 {
		// Uniform fallback.
		alt := rng.Intn(numCands - 1)
		if r.CandidateIndex >= 0 && alt >= r.CandidateIndex {
			alt++
		}
		return alt
	}
	x := rng.Float64() * total
	for i, s := range r.Scores {
		if i == r.CandidateIndex || s <= 0 {
			continue
		}
		x -= s
		if x <= 0 {
			return i
		}
	}
	for i := numCands - 1; i >= 0; i-- {
		if i != r.CandidateIndex {
			return i
		}
	}
	return 0
}

// CONF is the dissertation's best assessor (Sec. 5.7.1): the equal-weight
// combination of the normalized weighted-degree score and entity
// perturbation.
func CONF(m disambig.Method, p *disambig.Problem, base *disambig.Output, cfg PerturbConfig) []float64 {
	norm := NormConfidence(base)
	pert := EntityPerturbation(m, p, base, cfg)
	out := make([]float64, len(norm))
	for i := range out {
		out[i] = 0.5*norm[i] + 0.5*pert[i]
	}
	return out
}

// HighConfidenceMentions returns the indices whose confidence is ≥ the
// threshold and whose result maps to a KB entity.
func HighConfidenceMentions(out *disambig.Output, conf []float64, threshold float64) []int {
	var idx []int
	for i, r := range out.Results {
		if r.Entity != kb.NoEntity && conf[i] >= threshold {
			idx = append(idx, i)
		}
	}
	return idx
}
