package emerge

import (
	"context"
	"reflect"
	"testing"

	"aida/internal/relatedness"
)

// parallelPipeline is testPipeline with worker pools and a shared engine.
func parallelPipeline(workers int) *Pipeline {
	pl := testPipeline()
	pl.Parallelism = workers
	pl.Scorer = relatedness.NewScorer(pl.KB)
	return pl
}

// TestPipelineParallelMatchesSequential pins the parallel chunk-harvesting
// and enrichment paths to the sequential ones: identical enricher state,
// placeholder models and end-to-end discoveries at any worker count.
func TestPipelineParallelMatchesSequential(t *testing.T) {
	chunk := pipelineChunk()
	text := "Snowden spoke about the surveillance program and the leaked files."
	surfaces := []string{"Snowden"}

	seqPl := testPipeline()
	seqEnricher := seqPl.BuildEnricher(chunk)
	seqModels := seqPl.Models(chunk, surfaces, seqEnricher)
	seqDisc := seqPl.Run(text, surfaces, chunk, seqEnricher)

	for _, workers := range []int{2, 8} {
		pl := parallelPipeline(workers)
		enricher := pl.BuildEnricher(chunk)
		if !reflect.DeepEqual(seqEnricher, enricher) {
			t.Fatalf("workers=%d: enricher diverges from sequential build", workers)
		}
		models := pl.Models(chunk, surfaces, enricher)
		if !reflect.DeepEqual(seqModels, models) {
			t.Fatalf("workers=%d: placeholder models diverge from sequential build", workers)
		}
		disc := pl.Run(text, surfaces, chunk, enricher)
		if !reflect.DeepEqual(seqDisc, disc) {
			t.Fatalf("workers=%d: discovery diverges from sequential run", workers)
		}
	}
}

// TestPipelineCanceledContext pins the cancellation contract: a canceled
// Pipeline.Context must stop the harvesting/enrichment fan-outs without
// panicking or attributing evidence — even when chunk documents carry
// surfaces with no dictionary candidates (the truncated-output shape that
// once produced CandidateIndex 0 on an empty candidate list).
func TestPipelineCanceledContext(t *testing.T) {
	chunk := append(pipelineChunk(), ChunkDoc{
		Text:     "Zorblatt Qux spoke about the surveillance program.",
		Surfaces: []string{"Zorblatt Qux"}, // out-of-dictionary surface
	})
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		pl := parallelPipeline(workers)
		pl.Context = ctx
		enricher := pl.BuildEnricher(chunk)
		if n := enricher.Size(); n != 0 {
			t.Fatalf("workers=%d: canceled enricher attributed evidence to %d entities", workers, n)
		}
		if models := pl.Models(chunk, []string{"Snowden"}, enricher); len(models) != 0 {
			t.Fatalf("workers=%d: canceled Models built %d placeholders", workers, len(models))
		}
	}
}

// TestHarvestDocsParallelMatchesSequential checks the raw harvest counts.
func TestHarvestDocsParallelMatchesSequential(t *testing.T) {
	docs := make([]string, 0, 9)
	for i := 0; i < 3; i++ {
		for _, d := range pipelineChunk() {
			docs = append(docs, d.Text)
		}
	}
	names := []string{"Snowden"}
	h := Harvester{Window: -1}
	want := h.HarvestDocs(docs, names)
	for _, workers := range []int{2, 4, 16} {
		got := h.HarvestDocsParallel(context.Background(), docs, names, workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: parallel harvest diverges from sequential", workers)
		}
	}
}
