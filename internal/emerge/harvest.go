package emerge

import (
	"context"
	"strings"

	"aida/internal/ner"
	"aida/internal/pool"
	"aida/internal/postag"
	"aida/internal/tokenizer"
)

// Harvest is a name → keyphrase → occurrence-count table mined from a
// document chunk (Sec. 5.5.1): for every occurrence of a tracked name, the
// keyphrases of the surrounding sentence window are counted.
type Harvest struct {
	// Counts[name][phrase] = co-occurrence count.
	Counts map[string]map[string]int
	// Occurrences[name] = number of name occurrences seen.
	Occurrences map[string]int
	// Docs is the number of documents scanned (the EE collection size of
	// Algorithm 2's balance parameter α).
	Docs int
}

// Harvester mines keyphrases around name occurrences. The zero value is
// ready to use.
type Harvester struct {
	// Window is the number of sentences kept on each side of a name
	// occurrence: 0 (unset) means the dissertation's default of 5
	// (Sec. 5.5.1); a negative value restricts harvesting to the
	// occurrence's own sentence, appropriate for corpora whose evidence
	// is sentence-local.
	Window int
	// Lexicon, when set (typically the KB), suppresses occurrences that
	// are embedded in a longer dictionary name: harvesting "Silva" must
	// not fire inside "Ingrid Silva", whose context belongs to a
	// different entity.
	Lexicon ner.Lexicon
	// SentenceFilter, when set, accepts or rejects individual occurrences
	// based on the content words of the occurrence's sentence. The
	// keyphrase enrichment of Sec. 5.5.1 uses it to harvest only
	// sentences carrying verbatim evidence for the disambiguated entity.
	SentenceFilter func(name string, sentenceWords []string) bool
	Tagger         postag.Tagger
}

func (h *Harvester) window() int {
	if h.Window == 0 {
		return 5
	}
	if h.Window < 0 {
		return 0
	}
	return h.Window
}

// nameMatcher is the pre-processed tracked-name table shared across the
// documents of one harvest (normalized surface → original name).
type nameMatcher struct {
	nameKey       map[string]string
	maxNameTokens int
}

func newNameMatcher(names []string) nameMatcher {
	nm := nameMatcher{nameKey: make(map[string]string, len(names)), maxNameTokens: 1}
	for _, n := range names {
		nm.nameKey[tokenizer.Normalize(n)] = n
		if k := len(strings.Fields(n)); k > nm.maxNameTokens {
			nm.maxNameTokens = k
		}
	}
	return nm
}

func newHarvest(docs int) *Harvest {
	return &Harvest{
		Counts:      make(map[string]map[string]int),
		Occurrences: make(map[string]int),
		Docs:        docs,
	}
}

// HarvestDocs scans the documents for the tracked names (matched by the
// dictionary normalization rules) and returns the keyphrase counts.
func (h *Harvester) HarvestDocs(docs []string, names []string) *Harvest {
	out := newHarvest(len(docs))
	nm := newNameMatcher(names)
	for _, doc := range docs {
		h.harvestDoc(doc, nm.nameKey, nm.maxNameTokens, out)
	}
	return out
}

func (h *Harvester) harvestDoc(doc string, nameKey map[string]string, maxNameTokens int, out *Harvest) {
	toks := tokenizer.Tokenize(doc)
	if len(toks) == 0 {
		return
	}
	// Keyphrases per sentence, extracted once.
	tagged := h.Tagger.TagTokens(toks)
	phrasesBySentence := map[int][]string{}
	numSentences := 0
	for _, span := range postag.ExtractKeyphrases(tagged) {
		s := span[0].Sentence
		phrasesBySentence[s] = append(phrasesBySentence[s], postag.PhraseText(span))
	}
	for _, t := range toks {
		if t.Sentence+1 > numSentences {
			numSentences = t.Sentence + 1
		}
	}
	// Content words per sentence, for the occurrence filter.
	var wordsBySentence map[int][]string
	if h.SentenceFilter != nil {
		wordsBySentence = map[int][]string{}
		for _, t := range toks {
			if t.IsPunct() {
				continue
			}
			w := tokenizer.Normalize(t.Text)
			if !tokenizer.IsStopword(w) {
				wordsBySentence[t.Sentence] = append(wordsBySentence[t.Sentence], w)
			}
		}
	}
	// Scan for name occurrences (longest match first).
	for i := 0; i < len(toks); i++ {
		for l := maxNameTokens; l >= 1; l-- {
			if i+l > len(toks) {
				continue
			}
			last := toks[i+l-1]
			if last.Sentence != toks[i].Sentence {
				continue
			}
			surface := doc[toks[i].Start:last.End]
			name, ok := nameKey[tokenizer.Normalize(surface)]
			if !ok {
				continue
			}
			if h.embedded(doc, toks, i, l) {
				break
			}
			if h.SentenceFilter != nil && !h.SentenceFilter(name, wordsBySentence[toks[i].Sentence]) {
				i += l - 1
				break
			}
			out.Occurrences[name]++
			h.countWindow(name, toks[i].Sentence, numSentences, phrasesBySentence, surface, out)
			i += l - 1
			break
		}
	}
}

// embedded reports whether the matched span [i, i+l) extends to a longer
// known dictionary name on either side, in which case the occurrence
// belongs to that longer name.
func (h *Harvester) embedded(doc string, toks []tokenizer.Token, i, l int) bool {
	if h.Lexicon == nil {
		return false
	}
	last := toks[i+l-1]
	if i > 0 && toks[i-1].Sentence == toks[i].Sentence && !toks[i-1].IsPunct() {
		if h.Lexicon.HasName(ner.Normalized(doc[toks[i-1].Start:last.End])) {
			return true
		}
	}
	if i+l < len(toks) && toks[i+l].Sentence == last.Sentence && !toks[i+l].IsPunct() {
		if h.Lexicon.HasName(ner.Normalized(doc[toks[i].Start:toks[i+l].End])) {
			return true
		}
	}
	return false
}

// countWindow counts all keyphrases within the sentence window, excluding
// phrases equal to the name itself.
func (h *Harvester) countWindow(name string, sentence, numSentences int, phrases map[int][]string, surface string, out *Harvest) {
	w := h.window()
	lo, hi := sentence-w, sentence+w
	if lo < 0 {
		lo = 0
	}
	if hi >= numSentences {
		hi = numSentences - 1
	}
	m := out.Counts[name]
	if m == nil {
		m = make(map[string]int)
		out.Counts[name] = m
	}
	for s := lo; s <= hi; s++ {
		for _, p := range phrases[s] {
			if strings.EqualFold(p, surface) || strings.EqualFold(p, name) {
				continue
			}
			m[p]++
		}
	}
}

// HarvestDocsParallel is HarvestDocs with documents scanned by up to
// workers goroutines. The tracked-name table is built once and shared;
// per-document counts are merged in document order, so the result is
// identical to the sequential scan (counts are additive and the harvester
// itself is read-only during scanning). A canceled ctx stops the scan
// early; the partial harvest must then be discarded by the caller.
func (h *Harvester) HarvestDocsParallel(ctx context.Context, docs []string, names []string, workers int) *Harvest {
	if workers <= 1 || len(docs) < 2 {
		return h.HarvestDocs(docs, names)
	}
	nm := newNameMatcher(names)
	parts := make([]*Harvest, len(docs))
	pool.ForEachCtx(ctx, len(docs), workers, func(i int) error {
		part := newHarvest(1)
		h.harvestDoc(docs[i], nm.nameKey, nm.maxNameTokens, part)
		parts[i] = part
		return nil
	})
	out := newHarvest(0)
	for _, p := range parts {
		out.Merge(p)
	}
	return out
}

// Merge adds another harvest's counts into h (for sliding news windows).
func (hv *Harvest) Merge(other *Harvest) {
	if other == nil {
		return
	}
	hv.Docs += other.Docs
	for name, counts := range other.Counts {
		m := hv.Counts[name]
		if m == nil {
			m = make(map[string]int)
			hv.Counts[name] = m
		}
		for p, c := range counts {
			m[p] += c
		}
	}
	for name, c := range other.Occurrences {
		hv.Occurrences[name] += c
	}
}
