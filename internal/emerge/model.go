package emerge

import (
	"math"
	"sort"

	"aida/internal/disambig"
	"aida/internal/kb"
)

// ModelConfig tunes the EE keyphrase model construction (Algorithm 2).
type ModelConfig struct {
	// KBSize is the number of entities in the knowledge base (the KB
	// collection size of the balance parameter α).
	KBSize int
	// MaxKeyphrases caps the placeholder's keyphrase set (default 3000,
	// Sec. 5.7.2), keeping popular names from drowning the graph.
	MaxKeyphrases int
	// GammaEE balances placeholder edge weights against KB-entity edge
	// weights (Sec. 5.6). The dissertation tunes it on withheld data
	// (0.04–0.06 for its raw news-count weights); since this
	// implementation normalizes EE phrase weights to the KB scale, the
	// neutral default is 1. Set below 1 to make placeholders more
	// conservative.
	GammaEE float64
	// MinCount drops phrases observed fewer times (default 1).
	MinCount int
}

func (c ModelConfig) withDefaults() ModelConfig {
	if c.MaxKeyphrases <= 0 {
		c.MaxKeyphrases = 3000
	}
	if c.GammaEE <= 0 {
		c.GammaEE = 1
	}
	if c.MinCount <= 0 {
		c.MinCount = 1
	}
	return c
}

// BuildEEModel constructs the placeholder candidate for an ambiguous name
// by model difference (Sec. 5.5.2): the global keyphrase model of the name,
// harvested from a news chunk, minus the in-KB model of all candidate
// entities for the name. The remaining phrases — weighted by their adjusted
// counts — describe the entity that is NOT in the knowledge base.
//
// The dissertation subtracts balanced co-occurrence counts (d = α(b−c));
// its KB-side counts come from Wikipedia keyphrase statistics that have no
// equivalent here, so the subtraction is exact set difference: any phrase
// carried by a candidate entity (including keyphrases harvested for
// existing entities per Sec. 5.5.1 — pass enriched candidates for that) is
// removed from the placeholder model. This preserves the mechanism that
// matters: known evidence can never count for the unknown entity.
func BuildEEModel(name string, hv *Harvest, kbCands []disambig.Candidate, cfg ModelConfig) disambig.Candidate {
	cfg = cfg.withDefaults()
	counts := hv.Counts[name]
	// Balance parameter α = KB collection size / EE collection size.
	alpha := 1.0
	if hv.Docs > 0 && cfg.KBSize > 0 {
		alpha = float64(cfg.KBSize) / float64(hv.Docs)
	}
	// The in-KB model: every phrase any candidate entity carries, indexed
	// by word for overlap lookups. Subtraction matches on word overlap
	// rather than exact strings because extraction spans vary in real
	// prose ("rural county town" must be claimed by the KB phrase
	// "rural county").
	kbByWord := map[string][][]string{}
	for i := range kbCands {
		for _, kp := range kbCands[i].Keyphrases {
			words := dedupWords(kp.Words)
			for _, w := range words {
				kbByWord[w] = append(kbByWord[w], words)
			}
		}
	}
	inKB := func(phrase string) bool {
		words := dedupWords(kb.PhraseWords(phrase))
		if len(words) == 0 {
			return true
		}
		for _, w := range words {
			for _, cand := range kbByWord[w] {
				if wordJaccard(words, cand) >= 0.5 {
					return true
				}
			}
		}
		return false
	}
	// Phrase IDF over the harvest collection (Algorithm 2 step 5): a
	// phrase co-occurring with many different names is generic news
	// vocabulary, not evidence for this name's unknown entity.
	nameDF := map[string]int{}
	for _, perName := range hv.Counts {
		for p := range perName {
			nameDF[normPhrase(p)]++
		}
	}
	numNames := len(hv.Counts)
	type weighted struct {
		phrase string
		d      float64
	}
	var ws []weighted
	var maxD float64
	for p, b := range counts {
		if b < cfg.MinCount || inKB(p) {
			continue
		}
		idf := math.Log2(1 + float64(numNames)/float64(nameDF[normPhrase(p)]))
		d := alpha * float64(b) * idf
		if d <= 0 {
			continue
		}
		ws = append(ws, weighted{phrase: p, d: d})
		if d > maxD {
			maxD = d
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].d != ws[j].d {
			return ws[i].d > ws[j].d
		}
		return ws[i].phrase < ws[j].phrase
	})
	if len(ws) > cfg.MaxKeyphrases {
		ws = ws[:cfg.MaxKeyphrases]
	}
	// Word-level name document frequencies, for keyword weights: a word
	// co-occurring with most names (generic news vocabulary) must not
	// count as placeholder evidence.
	wordNameDF := map[string]int{}
	for _, perName := range hv.Counts {
		seen := map[string]bool{}
		for p := range perName {
			for _, word := range kb.PhraseWords(p) {
				if !seen[word] {
					seen[word] = true
					wordNameDF[word]++
				}
			}
		}
	}
	maxWordIDF := math.Log2(1 + float64(numNames))
	cand := disambig.Candidate{
		Entity:      kb.NoEntity,
		Label:       name + "_EE",
		KeywordNPMI: make(map[string]float64),
		EdgeScale:   cfg.GammaEE,
	}
	for _, w := range ws {
		mi := w.d / maxD
		words := kb.PhraseWords(w.phrase)
		cand.Keyphrases = append(cand.Keyphrases, kb.Keyphrase{
			Phrase: w.phrase,
			Words:  words,
			MI:     mi,
		})
		for _, word := range words {
			wIDF := math.Log2(1+float64(numNames)/float64(wordNameDF[word])) / maxWordIDF
			if v := mi * wIDF; v > cand.KeywordNPMI[word] {
				cand.KeywordNPMI[word] = v
			}
		}
	}
	return cand
}

func normPhrase(p string) string {
	words := kb.PhraseWords(p)
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// dedupWords returns the sorted distinct words of a phrase.
func dedupWords(words []string) []string {
	out := append([]string(nil), words...)
	sort.Strings(out)
	j := 0
	for i, w := range out {
		if i == 0 || w != out[j-1] {
			out[j] = w
			j++
		}
	}
	return out[:j]
}

// wordJaccard computes the Jaccard similarity of two sorted word sets.
func wordJaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Enricher accumulates harvested keyphrases for existing KB entities from
// high-confidence disambiguations (Sec. 5.5.1) and injects them into future
// problems, adapting the entity representation to the corpus.
type Enricher struct {
	// extra[e] are the harvested keyphrases (deduplicated).
	extra map[kb.EntityID][]kb.Keyphrase
	seen  map[kb.EntityID]map[string]bool
	// MaxPerEntity caps the harvested set per entity (default 200).
	MaxPerEntity int
}

// NewEnricher returns an empty enricher.
func NewEnricher() *Enricher {
	return &Enricher{
		extra:        make(map[kb.EntityID][]kb.Keyphrase),
		seen:         make(map[kb.EntityID]map[string]bool),
		MaxPerEntity: 200,
	}
}

// Add records harvested phrases for an entity; weights are normalized
// counts relative to the strongest phrase in the batch.
func (e *Enricher) Add(id kb.EntityID, phrases map[string]int) {
	if len(phrases) == 0 {
		return
	}
	maxC := 0
	for _, c := range phrases {
		if c > maxC {
			maxC = c
		}
	}
	s := e.seen[id]
	if s == nil {
		s = make(map[string]bool)
		e.seen[id] = s
	}
	type pc struct {
		p string
		c int
	}
	var ordered []pc
	for p, c := range phrases {
		ordered = append(ordered, pc{p, c})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].c != ordered[j].c {
			return ordered[i].c > ordered[j].c
		}
		return ordered[i].p < ordered[j].p
	})
	for _, x := range ordered {
		if len(e.extra[id]) >= e.MaxPerEntity {
			break
		}
		key := normPhrase(x.p)
		if key == "" || s[key] {
			continue
		}
		s[key] = true
		e.extra[id] = append(e.extra[id], kb.Keyphrase{
			Phrase: x.p,
			Words:  kb.PhraseWords(x.p),
			MI:     float64(x.c) / float64(maxC),
		})
	}
}

// HarvestContribution is the outcome of harvesting one document for its
// high-confidence disambiguations, not yet folded into an Enricher: the
// per-name keyphrase counts and the entity each name resolved to. Keeping
// collection separate from accumulation lets documents be harvested by
// parallel workers while Enricher.Add runs serially in document order, so
// the enriched state is identical to a sequential pass.
type HarvestContribution struct {
	Names    []string // sorted high-confidence surfaces with counts
	Entities map[string]kb.EntityID
	Harvest  *Harvest
}

// CollectHighConfidence mines keyphrases around the mentions that a NED run
// resolved with confidence ≥ threshold, returning the contribution without
// mutating any enricher. Nil means the document had no high-confidence
// in-KB mention.
func CollectHighConfidence(h *Harvester, docText string, out *disambig.Output, conf []float64, threshold float64) *HarvestContribution {
	// Group high-confidence mentions by surface, then harvest once.
	bySurface := map[string]kb.EntityID{}
	for i, r := range out.Results {
		if r.Entity == kb.NoEntity || conf[i] < threshold {
			continue
		}
		bySurface[r.Surface] = r.Entity
	}
	if len(bySurface) == 0 {
		return nil
	}
	names := make([]string, 0, len(bySurface))
	for s := range bySurface {
		names = append(names, s)
	}
	sort.Strings(names)
	return &HarvestContribution{
		Names:    names,
		Entities: bySurface,
		Harvest:  h.HarvestDocs([]string{docText}, names),
	}
}

// Apply folds a contribution into the enricher.
func (e *Enricher) Apply(c *HarvestContribution) {
	if c == nil {
		return
	}
	for _, name := range c.Names {
		if counts := c.Harvest.Counts[name]; len(counts) > 0 {
			e.Add(c.Entities[name], counts)
		}
	}
}

// HarvestHighConfidence mines keyphrases around the mentions that a NED run
// resolved with confidence ≥ threshold and attributes them to the chosen
// entities.
func (e *Enricher) HarvestHighConfidence(h *Harvester, docText string, out *disambig.Output, conf []float64, threshold float64) {
	e.Apply(CollectHighConfidence(h, docText, out, conf, threshold))
}

// Enrich appends the harvested keyphrases to matching candidates of the
// problem. Candidate structs are copied, so the KB stays untouched.
func (e *Enricher) Enrich(p *disambig.Problem) {
	for i := range p.Mentions {
		e.EnrichCandidates(p.Mentions[i].Candidates)
	}
}

// EnrichCandidates appends the harvested keyphrases to the matching
// candidates in place.
func (e *Enricher) EnrichCandidates(cands []disambig.Candidate) {
	for j := range cands {
		c := &cands[j]
		if c.Entity == kb.NoEntity {
			continue
		}
		if extra := e.extra[c.Entity]; len(extra) > 0 {
			merged := make([]kb.Keyphrase, 0, len(c.Keyphrases)+len(extra))
			merged = append(merged, c.Keyphrases...)
			merged = append(merged, extra...)
			c.Keyphrases = merged
		}
	}
}

// Size returns the number of entities with harvested phrases.
func (e *Enricher) Size() int { return len(e.extra) }
