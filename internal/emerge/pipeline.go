package emerge

import (
	"context"

	"aida/internal/disambig"
	"aida/internal/kb"
	"aida/internal/pool"
	"aida/internal/relatedness"
)

// ChunkDoc is one document of the harvesting chunk (the recent news the
// placeholder models are mined from).
type ChunkDoc struct {
	Text     string
	Surfaces []string // recognized mention surfaces with dictionary candidates
}

// Pipeline wires the NED-EE components (Sec. 5.3) into the end-to-end
// news-stream workflow: keyphrase harvesting over a recent chunk, in-KB
// keyphrase enrichment from high-confidence disambiguations, placeholder
// model construction by model difference, and discovery via Algorithm 3.
type Pipeline struct {
	// KB is the knowledge base store the pipeline harvests against: a
	// single *kb.KB or a sharded router, with identical results.
	KB kb.Store
	// Method disambiguates the extended problems (default: r-prior sim-k).
	Method disambig.Method
	// HarvestMethod disambiguates chunk documents for enrichment
	// (default: same family as Method).
	HarvestMethod disambig.Method
	// Model tunes placeholder construction.
	Model ModelConfig
	// MaxCandidates caps dictionary candidates per mention (0 = no cap).
	MaxCandidates int
	// HarvestWindow is the sentence window of the harvester (0 = the
	// dissertation's ±5; negative = same sentence only).
	HarvestWindow int
	// MinCover gates enrichment: a sentence contributes evidence for a
	// disambiguated entity only if it covers one of the entity's known
	// keyphrases at least this well (default 0.9). Zero-evidence
	// "confident" assignments must never enrich (see Sec. 5.7.3 on
	// keyphrases for existing entities).
	MinCover float64
	// MinConfidence is the harvesting confidence threshold (default 0.95).
	MinConfidence float64
	// Parallelism bounds the worker pools of chunk harvesting and
	// enrichment (≤ 1 = sequential). Per-document work runs concurrently;
	// accumulation stays in document order, so results are identical at
	// any setting.
	Parallelism int
	// Scorer optionally shares a long-lived relatedness engine across the
	// pipeline's disambiguation problems (see disambig.Problem.Scorer).
	Scorer *relatedness.Scorer
	// Context carries request cancellation into the pipeline's parallel
	// phases (chunk harvesting, enrichment) and the disambiguation
	// problems it builds. When it is canceled the phases stop promptly
	// and the pipeline's results are partial; callers that set it must
	// check Context.Err() before using any result. Nil means never
	// canceled.
	Context context.Context
}

// ctx is the nil-safe accessor for Pipeline.Context.
func (pl *Pipeline) ctx() context.Context {
	if pl.Context == nil {
		return context.Background()
	}
	return pl.Context
}

func (pl *Pipeline) method() disambig.Method {
	if pl.Method != nil {
		return pl.Method
	}
	return disambig.NewAIDAVariant("ee-sim", disambig.Config{UsePrior: true, PriorTest: true})
}

func (pl *Pipeline) harvestMethod() disambig.Method {
	if pl.HarvestMethod != nil {
		return pl.HarvestMethod
	}
	return pl.method()
}

func (pl *Pipeline) minCover() float64 {
	if pl.MinCover <= 0 {
		return 0.9
	}
	return pl.MinCover
}

func (pl *Pipeline) minConfidence() float64 {
	if pl.MinConfidence <= 0 {
		return 0.95
	}
	return pl.MinConfidence
}

func (pl *Pipeline) harvester() Harvester {
	return Harvester{Window: pl.HarvestWindow, Lexicon: pl.KB}
}

// BuildEnricher mines keyphrases for existing entities from the chunk
// (Sec. 5.5.1): each document is disambiguated, and sentences around
// high-confidence mentions that carry verbatim keyphrase evidence for the
// chosen entity are harvested and attributed to it. Documents are
// processed by up to Parallelism workers; contributions are folded in
// document order, so the enricher is identical to a sequential build.
func (pl *Pipeline) BuildEnricher(chunk []ChunkDoc) *Enricher {
	m := pl.harvestMethod()
	contribs := make([]*HarvestContribution, len(chunk))
	pl.eachDoc(len(chunk), func(i int) {
		contribs[i] = pl.harvestChunkDoc(m, chunk[i])
	})
	enricher := NewEnricher()
	for _, c := range contribs {
		enricher.Apply(c)
	}
	return enricher
}

// harvestChunkDoc disambiguates one chunk document and collects its
// high-confidence keyphrase contribution (nil when there is none).
func (pl *Pipeline) harvestChunkDoc(m disambig.Method, d ChunkDoc) *HarvestContribution {
	if len(d.Surfaces) == 0 {
		return nil
	}
	p := disambig.NewProblem(pl.KB, d.Text, d.Surfaces, pl.MaxCandidates)
	p.Scorer = pl.Scorer
	p.Context = pl.Context
	if pl.Parallelism > 1 {
		// Fan-out happens at the document level; don't compound it with
		// per-document coherence pools.
		p.CoherenceWorkers = 1
	}
	out := m.Disambiguate(p)
	if pl.ctx().Err() != nil {
		// Canceled mid-disambiguation: the output is truncated, so no
		// evidence may be attributed from it.
		return nil
	}
	conf := NormConfidence(out)
	chosen := map[string]*disambig.Candidate{}
	for j, r := range out.Results {
		if r.CandidateIndex >= 0 {
			chosen[r.Surface] = &p.Mentions[j].Candidates[r.CandidateIndex]
		}
	}
	h := pl.harvester()
	h.SentenceFilter = func(name string, sentenceWords []string) bool {
		c := chosen[name]
		if c == nil {
			return false
		}
		sub := &disambig.Problem{ContextWords: sentenceWords, WordIDF: p.WordIDF}
		return disambig.BestPhraseCover(sub, c) >= pl.minCover()
	}
	return CollectHighConfidence(&h, d.Text, out, conf, pl.minConfidence())
}

// eachDoc runs fn(i) for i in [0, n) on up to Parallelism workers,
// stopping early (with unprocessed documents skipped) when the pipeline's
// context is canceled.
func (pl *Pipeline) eachDoc(n int, fn func(int)) {
	pool.ForEachCtx(pl.ctx(), n, pl.Parallelism, func(i int) error {
		fn(i)
		return nil
	})
}

// Models harvests the chunk for the given surfaces and builds one
// placeholder candidate per surface that has any global evidence. The
// enricher (may be nil) supplies harvested keyphrases for existing
// entities, which are subtracted from the placeholder models.
func (pl *Pipeline) Models(chunk []ChunkDoc, surfaces []string, enricher *Enricher) map[string]disambig.Candidate {
	if pl.ctx().Err() != nil {
		// Canceled: build no placeholders rather than models from a
		// partial harvest (the sequential harvest path cannot observe
		// the context mid-scan).
		return nil
	}
	texts := make([]string, len(chunk))
	for i, d := range chunk {
		texts[i] = d.Text
	}
	h := pl.harvester()
	hv := h.HarvestDocsParallel(pl.ctx(), texts, surfaces, pl.Parallelism)
	cfg := pl.Model
	if cfg.KBSize == 0 {
		cfg.KBSize = pl.KB.NumEntities()
	}
	models := make(map[string]disambig.Candidate)
	for _, surf := range surfaces {
		if _, done := models[surf]; done {
			continue
		}
		if len(hv.Counts[surf]) == 0 {
			continue
		}
		cands := disambig.MaterializeCandidates(pl.KB, surf, 0)
		if enricher != nil {
			enricher.EnrichCandidates(cands)
		}
		models[surf] = BuildEEModel(surf, hv, cands, cfg)
	}
	return models
}

// Problem builds the (optionally enriched) disambiguation problem for a
// document. Enrichment replaces candidate keyphrase slices, which the
// coherence scorer detects, so enriched candidates are scored per-problem
// while untouched ones still use the shared engine.
func (pl *Pipeline) Problem(text string, surfaces []string, enricher *Enricher) *disambig.Problem {
	p := disambig.NewProblem(pl.KB, text, surfaces, pl.MaxCandidates)
	p.Scorer = pl.Scorer
	p.Context = pl.Context
	if enricher != nil {
		enricher.Enrich(p)
	}
	return p
}

// Run executes the full per-document flow: enriched problem, placeholder
// models, Algorithm 3.
func (pl *Pipeline) Run(text string, surfaces []string, chunk []ChunkDoc, enricher *Enricher) *Discovery {
	p := pl.Problem(text, surfaces, enricher)
	models := pl.Models(chunk, surfaces, enricher)
	d := &Discoverer{Method: pl.method()}
	return d.Discover(p, models)
}
