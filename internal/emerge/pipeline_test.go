package emerge

import (
	"strings"
	"testing"

	"aida/internal/disambig"
	"aida/internal/kb"
)

// pipelineChunk is a small news chunk: the town of Snowden appears in
// normal gazette copy, while the whistleblower (out-of-KB) appears in
// surveillance stories.
func pipelineChunk() []ChunkDoc {
	return []ChunkDoc{
		{Text: "The rural county town of Snowden held its fair. Snowden, a Washington town, expects visitors.",
			Surfaces: []string{"Snowden", "Snowden"}},
		{Text: "The whistleblower Snowden revealed the secret surveillance program.",
			Surfaces: []string{"Snowden"}},
		{Text: "Snowden leaked intelligence files describing the surveillance program.",
			Surfaces: []string{"Snowden"}},
	}
}

func testPipeline() *Pipeline {
	return &Pipeline{
		KB:            buildEEKB(),
		HarvestWindow: -1,
		Model:         ModelConfig{MinCount: 1},
	}
}

func TestPipelineModels(t *testing.T) {
	pl := testPipeline()
	models := pl.Models(pipelineChunk(), []string{"Snowden"}, nil)
	ee, ok := models["Snowden"]
	if !ok {
		t.Fatal("no placeholder model built")
	}
	if ee.Entity != kb.NoEntity {
		t.Fatal("placeholder must be out-of-KB")
	}
	hasSurveillance := false
	for _, kp := range ee.Keyphrases {
		lower := strings.ToLower(kp.Phrase)
		if strings.Contains(lower, "surveillance") {
			hasSurveillance = true
		}
		if strings.Contains(lower, "rural county") {
			t.Errorf("in-KB phrase %q must be subtracted", kp.Phrase)
		}
	}
	if !hasSurveillance {
		t.Fatalf("fresh evidence missing: %+v", ee.Keyphrases)
	}
}

func TestPipelineRunSeparatesEEFromKB(t *testing.T) {
	pl := testPipeline()
	chunk := pipelineChunk()
	// Emerging-entity context: the placeholder must win.
	disc := pl.Run("Snowden spoke about the surveillance program and the leaked files.",
		[]string{"Snowden"}, chunk, nil)
	if !disc.Emerging[0] {
		t.Fatalf("surveillance context should be emerging, got %+v", disc.Output.Results[0])
	}
	// Town context: the KB entity must win.
	disc2 := pl.Run("The rural county town of Snowden in the pacific northwest held a fair.",
		[]string{"Snowden"}, chunk, nil)
	if disc2.Emerging[0] {
		t.Fatalf("town context should stay in-KB, got %+v", disc2.Output.Results[0])
	}
	if disc2.Output.Results[0].Label != "Snowden, WA" {
		t.Fatalf("wrong town entity: %q", disc2.Output.Results[0].Label)
	}
}

func TestPipelineEnricherRequiresVerbatimEvidence(t *testing.T) {
	pl := testPipeline()
	// Chunk doc where the town is mentioned with its verbatim keyphrase
	// plus a fresh phrase; the fresh phrase should be attributed.
	chunk := []ChunkDoc{{
		Text:     "Snowden, the rural county, launched the riverside parade.",
		Surfaces: []string{"Snowden"},
	}}
	enricher := pl.BuildEnricher(chunk)
	if enricher.Size() == 0 {
		t.Fatal("verbatim evidence should enable harvesting")
	}
	// A chunk doc with no verbatim keyphrase evidence must not enrich.
	chunkNoEvidence := []ChunkDoc{{
		Text:     "Snowden organized the riverside parade downtown.",
		Surfaces: []string{"Snowden"},
	}}
	if e := pl.BuildEnricher(chunkNoEvidence); e.Size() != 0 {
		t.Fatal("zero-evidence mention must not enrich")
	}
}

func TestPipelineEnrichedSubtraction(t *testing.T) {
	pl := testPipeline()
	// The town co-occurs with a fresh phrase AND verbatim evidence in the
	// chunk; with enrichment, that fresh phrase is claimed for the town
	// and subtracted from the placeholder model.
	chunk := []ChunkDoc{
		{Text: "Snowden, the rural county, hosted the riverside parade with pride.",
			Surfaces: []string{"Snowden"}},
		{Text: "Snowden, the rural county, hosted the riverside parade again.",
			Surfaces: []string{"Snowden"}},
	}
	enricher := pl.BuildEnricher(chunk)
	withEnrich := pl.Models(chunk, []string{"Snowden"}, enricher)
	without := pl.Models(chunk, []string{"Snowden"}, nil)
	contains := func(models map[string]disambig.Candidate, phrase string) bool {
		for _, kp := range models["Snowden"].Keyphrases {
			if strings.Contains(strings.ToLower(kp.Phrase), phrase) {
				return true
			}
		}
		return false
	}
	if !contains(without, "riverside") {
		t.Skip("fresh phrase was not harvested at all; nothing to compare")
	}
	if contains(withEnrich, "riverside") {
		t.Fatal("enrichment should subtract the claimed phrase from the placeholder")
	}
}

func TestPipelineDefaults(t *testing.T) {
	pl := &Pipeline{KB: buildEEKB()}
	if pl.minCover() != 0.9 || pl.minConfidence() != 0.95 {
		t.Fatalf("defaults wrong: %v %v", pl.minCover(), pl.minConfidence())
	}
	if pl.method() == nil || pl.harvestMethod() == nil {
		t.Fatal("default methods missing")
	}
	p := pl.Problem("Snowden spoke.", []string{"Snowden"}, nil)
	if len(p.Mentions) != 1 {
		t.Fatal("problem construction broken")
	}
}
