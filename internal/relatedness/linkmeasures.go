package relatedness

import "aida/internal/kb"

// Additional link-based relatedness measures from the relatedness survey
// the dissertation discusses (Sec. 2.2.3, Ceccarelli et al. [CLO+13]):
// Jaccard similarity on in-link sets and the conditional probability of
// observing one entity's in-links given the other's. The survey found
// these to individually outperform Milne–Witten on some tasks; they are
// provided for completeness and for the ablation benchmarks.

// JaccardLinks computes |Ie ∩ If| / |Ie ∪ If| over in-link sets.
func JaccardLinks(inA, inB []kb.EntityID) float64 {
	inter := kb.IntersectSortedSize(inA, inB)
	union := len(inA) + len(inB) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ConditionalLinks computes P(f|e) ≈ |Ie ∩ If| / |Ie|: how likely a page
// linking to e also links to f. Asymmetric by definition; Symmetrized
// callers should average both directions.
func ConditionalLinks(inE, inF []kb.EntityID) float64 {
	if len(inE) == 0 {
		return 0
	}
	return float64(kb.IntersectSortedSize(inE, inF)) / float64(len(inE))
}

// SymmetricConditional averages the two conditional directions.
func SymmetricConditional(inA, inB []kb.EntityID) float64 {
	return (ConditionalLinks(inA, inB) + ConditionalLinks(inB, inA)) / 2
}

// DirectLink reports whether the two entities link to each other directly
// (in either direction) — the simplest relatedness signal of the survey.
func DirectLink(a, b *kb.Entity) bool {
	return containsSorted(a.OutLinks, b.ID) || containsSorted(b.OutLinks, a.ID)
}

func containsSorted(ids []kb.EntityID, x kb.EntityID) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ids[mid] < x:
			lo = mid + 1
		case ids[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// CombinedLinkMeasure blends the link measures with learned-to-rank-style
// fixed weights (the [CLO+13] combination idea in closed form): MW carries
// most weight, Jaccard and the symmetric conditional refine the long tail.
func CombinedLinkMeasure(a, b *kb.Entity, n int) float64 {
	v := 0.5*MW(a.InLinks, b.InLinks, n) +
		0.25*JaccardLinks(a.InLinks, b.InLinks) +
		0.25*SymmetricConditional(a.InLinks, b.InLinks)
	if DirectLink(a, b) && v < 1 {
		// A direct link is strong evidence of relatedness on its own.
		v += 0.1 * (1 - v)
	}
	if v > 1 {
		return 1
	}
	return v
}
