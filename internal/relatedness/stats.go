package relatedness

import "unsafe"

// KindStats are one measure kind's pair-cache counters since engine
// creation. LSH kinds share KORE's cache rows (their exact values are
// identical), but traffic is counted under the kind the caller asked for.
type KindStats struct {
	Kind   Kind   `json:"-"`
	Name   string `json:"kind"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

// HitRate is Hits/(Hits+Misses), or 0 before any traffic.
func (k KindStats) HitRate() float64 {
	total := k.Hits + k.Misses
	if total == 0 {
		return 0
	}
	return float64(k.Hits) / float64(total)
}

// Stats is a point-in-time snapshot of a Scorer's caches: how many entity
// profiles have been interned (and their approximate heap footprint), how
// many pair values are memoized, and per-measure-kind hit/miss counters.
// Each value is read atomically but the snapshot as a whole is not (under
// concurrent traffic the counters and map sizes can be skewed by in-flight
// operations) — fine for observability, not for accounting.
type Stats struct {
	// Profiles is the number of interned entity keyphrase profiles.
	Profiles int `json:"profiles"`
	// ProfileBytes approximates the heap footprint of the interned
	// profiles (see Profile.ApproxBytes).
	ProfileBytes int64 `json:"profile_bytes"`
	// Pairs is the number of memoized pair values across all kinds.
	Pairs int `json:"pairs"`
	// Hits and Misses are pair-cache totals across all kinds.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// MaxProfileBytes is the configured profile-memory budget (0 =
	// unbounded; see Scorer.SetMaxProfileBytes).
	MaxProfileBytes int64 `json:"max_profile_bytes"`
	// Evictions counts profiles evicted to honor MaxProfileBytes, and
	// PairsEvicted the memoized pairs dropped because one of their
	// entities was evicted. Eviction changes only these counters (and
	// future hit/miss traffic), never a computed value.
	Evictions    int64 `json:"evictions"`
	PairsEvicted int64 `json:"pairs_evicted"`
	// ByKind holds one entry per measure kind, in Kind order.
	ByKind []KindStats `json:"by_kind"`
}

// HitRate is the overall pair-cache hit rate, or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the engine's cache state. Safe for concurrent use; cost
// is proportional to the shard count, not the cache size.
func (s *Scorer) Stats() Stats {
	var st Stats
	st.MaxProfileBytes = s.maxProfileBytes.Load()
	st.PairsEvicted = s.pairsEvicted.Load()
	for i := range s.profiles {
		sh := &s.profiles[i]
		sh.mu.RLock()
		st.Profiles += len(sh.m)
		st.ProfileBytes += sh.bytes
		st.Evictions += sh.evictions
		sh.mu.RUnlock()
	}
	st.ByKind = make([]KindStats, numKinds)
	for k := range st.ByKind {
		st.ByKind[k].Kind = Kind(k)
		st.ByKind[k].Name = Kind(k).String()
	}
	for i := range s.pairs {
		sh := &s.pairs[i]
		sh.mu.RLock()
		st.Pairs += len(sh.m)
		sh.mu.RUnlock()
		for k := range st.ByKind {
			h, m := sh.hits[k].Load(), sh.misses[k].Load()
			st.ByKind[k].Hits += h
			st.ByKind[k].Misses += m
			st.Hits += h
			st.Misses += m
		}
	}
	return st
}

// ProfilesByKBShard reports the interned-profile count per KB shard, in
// shard order (a single entry over an unsharded KB). The intern tables are
// physically grouped by KB shard, so this is a stripe-group walk, not a
// full-table scan per shard.
func (s *Scorer) ProfilesByKBShard() []int {
	out := make([]int, s.kbShards)
	for i := range s.profiles {
		sh := &s.profiles[i]
		sh.mu.RLock()
		out[i/s.stripes] += len(sh.m)
		sh.mu.RUnlock()
	}
	return out
}

// Fixed per-element overheads of the ApproxBytes estimate. Map overhead is
// a rule of thumb (bucket array, tophash bytes, padding) rather than an
// exact runtime figure.
const (
	bytesPerString   = int64(unsafe.Sizeof("")) // header; content added per byte
	bytesPerMapEntry = 48
)

// ApproxBytes estimates the heap footprint of the profile: struct and
// slice headers, phrase word strings, and the word→phrase index. It is an
// estimate for observability (capacity planning, eviction thresholds), not
// an exact allocation count; string contents shared with the KB's
// keyphrase storage are attributed to the profile.
func (p *Profile) ApproxBytes() int64 {
	b := int64(unsafe.Sizeof(*p))
	for i := range p.phrases {
		ph := &p.phrases[i]
		b += int64(unsafe.Sizeof(*ph))
		for _, w := range ph.words {
			b += bytesPerString + int64(len(w))
		}
	}
	for w, ix := range p.wordToPhrases {
		b += bytesPerMapEntry + bytesPerString + int64(len(w)) + int64(len(ix))*int64(unsafe.Sizeof(int(0)))
	}
	return b
}
