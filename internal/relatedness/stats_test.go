package relatedness

import (
	"testing"

	"aida/internal/kb"
)

// TestScorerStatsPerKind drives known traffic per kind and checks the
// per-kind hit/miss attribution, profile accounting and totals.
func TestScorerStatsPerKind(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	s := NewScorer(k)

	if st := s.Stats(); st.Profiles != 0 || st.ProfileBytes != 0 || st.Pairs != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("fresh engine should report zero stats, got %+v", st)
	}

	a, b := ents[0], ents[1]
	s.Relatedness(KindMW, a, b)   // miss
	s.Relatedness(KindMW, a, b)   // hit
	s.Relatedness(KindMW, a, b)   // hit
	s.Relatedness(KindKORE, a, b) // miss (own cache row)

	st := s.Stats()
	byKind := make(map[Kind]KindStats, len(st.ByKind))
	for _, ks := range st.ByKind {
		byKind[ks.Kind] = ks
	}
	if got := byKind[KindMW]; got.Hits != 2 || got.Misses != 1 {
		t.Errorf("MW counters = %d hits/%d misses, want 2/1", got.Hits, got.Misses)
	}
	if got := byKind[KindKORE]; got.Hits != 0 || got.Misses != 1 {
		t.Errorf("KORE counters = %d hits/%d misses, want 0/1", got.Hits, got.Misses)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("totals = %d hits/%d misses, want 2/2", st.Hits, st.Misses)
	}
	if st.Pairs != 2 {
		t.Errorf("Pairs = %d, want 2 (one MW row, one KORE row)", st.Pairs)
	}
	if got, want := byKind[KindMW].HitRate(), 2.0/3.0; got != want {
		t.Errorf("MW hit rate = %v, want %v", got, want)
	}

	// KORE computed profiles for a and b; their footprint must be counted.
	if st.Profiles != 2 {
		t.Errorf("Profiles = %d, want 2", st.Profiles)
	}
	wantBytes := s.Profile(a).ApproxBytes() + s.Profile(b).ApproxBytes()
	if st.ProfileBytes != wantBytes {
		t.Errorf("ProfileBytes = %d, want %d", st.ProfileBytes, wantBytes)
	}
}

// TestScorerStatsLSHTrafficAttributed checks that LSH kinds share KORE's
// cache rows (second kind hits the first kind's value) while traffic stays
// attributed to the requested kind.
func TestScorerStatsLSHTrafficAttributed(t *testing.T) {
	k, music, _ := buildClusterKB()
	s := NewScorer(k)
	a, b := music[0], music[1]
	s.Relatedness(KindKORE, a, b)     // miss, fills the shared row
	s.Relatedness(KindKORELSHG, a, b) // hit on the shared row
	st := s.Stats()
	for _, ks := range st.ByKind {
		switch ks.Kind {
		case KindKORE:
			if ks.Hits != 0 || ks.Misses != 1 {
				t.Errorf("KORE = %d/%d, want 0 hits/1 miss", ks.Hits, ks.Misses)
			}
		case KindKORELSHG:
			if ks.Hits != 1 || ks.Misses != 0 {
				t.Errorf("KORE-LSH-G = %d/%d, want 1 hit/0 misses", ks.Hits, ks.Misses)
			}
		}
	}
	if st.Pairs != 1 {
		t.Errorf("Pairs = %d, want 1 shared row", st.Pairs)
	}
	hits, misses := s.CacheStats()
	if hits != st.Hits || misses != st.Misses {
		t.Errorf("CacheStats (%d,%d) disagrees with Stats totals (%d,%d)", hits, misses, st.Hits, st.Misses)
	}
}

func TestParseKind(t *testing.T) {
	for k := Kind(0); int(k) < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := ParseKind("kore-lsh-f"); err != nil || got != KindKORELSHF {
		t.Errorf("ParseKind is not case-insensitive: %v, %v", got, err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
	if !KindKORE.Valid() || Kind(-1).Valid() || Kind(numKinds).Valid() {
		t.Error("Kind.Valid bounds are wrong")
	}
}

func TestProfileApproxBytesGrows(t *testing.T) {
	small := NewProfile([]kb.Keyphrase{{Phrase: "rock", Words: []string{"rock"}, MI: 1}}, UnitWeighter)
	big := NewProfile([]kb.Keyphrase{
		{Phrase: "english rock guitarist", Words: []string{"english", "rock", "guitarist"}, MI: 1},
		{Phrase: "unusual chords", Words: []string{"unusual", "chords"}, MI: 1},
	}, UnitWeighter)
	if small.ApproxBytes() <= 0 {
		t.Fatal("ApproxBytes must be positive for a non-empty profile")
	}
	if big.ApproxBytes() <= small.ApproxBytes() {
		t.Errorf("bigger profile should report more bytes: %d vs %d", big.ApproxBytes(), small.ApproxBytes())
	}
}
