// Package relatedness implements the semantic entity-relatedness measures of
// Chapter 4: the link-based Milne–Witten measure (MW, Eq. 3.7), the
// keyterm-cosine baselines KWCS and KPCS (Sec. 4.3.2), and the keyphrase
// overlap relatedness KORE (Sec. 4.3.3) with its two-stage min-hash/LSH
// approximations KORE^LSH-G and KORE^LSH-F (Sec. 4.4).
//
// All measures return values in [0,1]; higher means more related.
//
// The long-lived entry point is the Scorer: a sharded, concurrency-safe
// engine bound to one KB that interns entity Profiles, memoizes pair
// values for all kinds across documents, builds each LSH filter once, and
// reports its cache state via Stats. Measure is a thin per-kind view of a
// Scorer; the free functions (MW, KORE, KeywordCosine, ...) are the
// stateless primitives underneath, useful for ad-hoc keyphrase sets that
// are not KB entities.
package relatedness

import (
	"math"
	"sort"

	"aida/internal/kb"
	"aida/internal/pool"
)

// Weighter assigns a weight to a keyword; KORE uses the global keyword IDF
// (Sec. 4.5.2: "MI weights for keyphrases and IDF weights for keywords
// works best").
type Weighter func(word string) float64

// UnitWeighter weights every keyword 1; useful for tests and for keyphrase
// sets without corpus statistics.
func UnitWeighter(string) float64 { return 1 }

// MW computes the Milne–Witten relatedness (Eq. 3.7) from the in-link sets
// of two entities and the collection size n:
//
//	MW(e,f) = 1 - (log max(|Ie|,|If|) - log |Ie∩If|) / (log n - log min(|Ie|,|If|))
//
// clamped to [0,1]; entities without common in-links are unrelated.
func MW(inA, inB []kb.EntityID, n int) float64 {
	inter := kb.IntersectSortedSize(inA, inB)
	if inter == 0 || n <= 1 {
		return 0
	}
	la, lb := float64(len(inA)), float64(len(inB))
	if la == 0 || lb == 0 {
		return 0
	}
	maxL, minL := math.Max(la, lb), math.Min(la, lb)
	den := math.Log(float64(n)) - math.Log(minL)
	if den <= 0 {
		return 1
	}
	v := 1 - (math.Log(maxL)-math.Log(float64(inter)))/den
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// phraseData is a keyphrase pre-processed for overlap computation.
type phraseData struct {
	words     []string // sorted distinct content words
	weightSum float64  // Σ weight(w) over words
	mi        float64  // phrase weight ϕ (µ MI)
}

// Profile is an entity's keyphrase set pre-processed for the pairwise
// measures. Building a Profile is O(total words); comparing two profiles
// touches only phrases sharing at least one word.
type Profile struct {
	phrases       []phraseData
	wordToPhrases map[string][]int
	miSum         float64
	weight        Weighter
}

// NewProfile pre-processes a keyphrase set under the given keyword weighter.
func NewProfile(phrases []kb.Keyphrase, weight Weighter) *Profile {
	p := &Profile{
		phrases:       make([]phraseData, 0, len(phrases)),
		wordToPhrases: make(map[string][]int),
		weight:        weight,
	}
	for _, ph := range phrases {
		words := dedupSorted(ph.Words)
		if len(words) == 0 {
			continue
		}
		var sum float64
		for _, w := range words {
			sum += weight(w)
		}
		mi := ph.MI
		if mi <= 0 {
			// Phrases with vanishing MI still identify the entity weakly;
			// keep a small floor so profiles of link-poor entities are
			// not empty.
			mi = 1e-3
		}
		idx := len(p.phrases)
		p.phrases = append(p.phrases, phraseData{words: words, weightSum: sum, mi: mi})
		for _, w := range words {
			p.wordToPhrases[w] = append(p.wordToPhrases[w], idx)
		}
		p.miSum += mi
	}
	return p
}

// Len returns the number of phrases in the profile.
func (p *Profile) Len() int { return len(p.phrases) }

func dedupSorted(words []string) []string {
	out := append([]string(nil), words...)
	sort.Strings(out)
	j := 0
	for i, w := range out {
		if i == 0 || w != out[j-1] {
			out[j] = w
			j++
		}
	}
	return out[:j]
}

// phraseOverlap computes PO(p,q) of Eq. 4.3 with shared global word weights:
// the weighted Jaccard similarity of the two word sets.
func phraseOverlap(a, b *phraseData, weight Weighter) float64 {
	var inter float64
	i, j := 0, 0
	for i < len(a.words) && j < len(b.words) {
		switch {
		case a.words[i] < b.words[j]:
			i++
		case a.words[i] > b.words[j]:
			j++
		default:
			inter += weight(a.words[i])
			i++
			j++
		}
	}
	union := a.weightSum + b.weightSum - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// koreScratch is the per-call phrase-pair dedup table of KOREProfiles: a
// stamp array over b's phrase indices, so "seen this pair" is one array
// read instead of a per-call map. cur is bumped per a-phrase; a slot is
// seen iff its stamp equals cur, so no clearing between phrases is needed.
type koreScratch struct {
	stamp []uint32
	cur   uint32
}

var koreBufs = pool.Scratch[koreScratch]{
	New: func() *koreScratch { return &koreScratch{} },
}

// KOREProfiles computes the keyphrase overlap relatedness (Eq. 4.4) of two
// profiles:
//
//	KORE(e,f) = Σ_{p,q} PO(p,q)² · min(ϕe(p), ϕf(q)) / (Σ ϕe + Σ ϕf)
func KOREProfiles(a, b *Profile) float64 {
	den := a.miSum + b.miSum
	if den <= 0 {
		return 0
	}
	// Enumerate phrase pairs sharing at least one word, each pair once.
	var num float64
	sc := koreBufs.Get()
	if len(sc.stamp) < len(b.phrases) {
		sc.stamp = make([]uint32, len(b.phrases))
		sc.cur = 0
	}
	for pi := range a.phrases {
		pa := &a.phrases[pi]
		sc.cur++
		if sc.cur == 0 { // stamp wrapped: reset the table once
			clear(sc.stamp)
			sc.cur = 1
		}
		for _, w := range pa.words {
			for _, qi := range b.wordToPhrases[w] {
				if sc.stamp[qi] == sc.cur {
					continue
				}
				sc.stamp[qi] = sc.cur
				qb := &b.phrases[qi]
				po := phraseOverlap(pa, qb, a.weight)
				if po <= 0 {
					continue
				}
				num += po * po * math.Min(pa.mi, qb.mi)
			}
		}
	}
	koreBufs.Put(sc)
	v := num / den
	if v > 1 {
		v = 1
	}
	return v
}

// KORE computes keyphrase overlap relatedness on raw keyphrase sets.
func KORE(a, b []kb.Keyphrase, weight Weighter) float64 {
	return KOREProfiles(NewProfile(a, weight), NewProfile(b, weight))
}

// KeywordCosine computes the KWCS baseline (Sec. 4.3.2): cosine similarity
// of keyword vectors. Keyword weights take the phrase weights into account
// by multiplying the keyword weight with the mean MI of the phrases the word
// appears in.
func KeywordCosine(a, b []kb.Keyphrase, weight Weighter) float64 {
	return cosine(keywordVector(a, weight), keywordVector(b, weight))
}

func keywordVector(phrases []kb.Keyphrase, weight Weighter) map[string]float64 {
	sum := map[string]float64{}
	cnt := map[string]int{}
	for _, p := range phrases {
		mi := p.MI
		if mi <= 0 {
			mi = 1e-3
		}
		for _, w := range dedupSorted(p.Words) {
			sum[w] += mi
			cnt[w]++
		}
	}
	vec := make(map[string]float64, len(sum))
	for w, s := range sum {
		vec[w] = weight(w) * s / float64(cnt[w])
	}
	return vec
}

// KeyphraseCosine computes the KPCS baseline: cosine similarity of whole-
// phrase vectors under MI weights (phrases are atomic units; no partial
// matching).
func KeyphraseCosine(a, b []kb.Keyphrase) float64 {
	return cosine(phraseVector(a), phraseVector(b))
}

func phraseVector(phrases []kb.Keyphrase) map[string]float64 {
	vec := make(map[string]float64, len(phrases))
	for _, p := range phrases {
		mi := p.MI
		if mi <= 0 {
			mi = 1e-3
		}
		key := joinWords(p.Words)
		if key == "" {
			continue
		}
		if mi > vec[key] {
			vec[key] = mi
		}
	}
	return vec
}

func joinWords(words []string) string {
	ws := dedupSorted(words)
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// cosine computes the cosine similarity of two sparse vectors. It iterates
// the smaller map directly for the dot product instead of materializing and
// sorting both key sets (the former hot-path cost: two string slices plus
// two string sorts per pairwise call). Partial sums are accumulated in
// ascending value order, so the result is bit-for-bit deterministic
// regardless of map iteration order. Note the accumulation order differs
// from the pre-refactor sorted-key order, so individual values may differ
// from the old implementation in the last ulp (exactly equal whenever the
// additions are exact); each implementation is self-deterministic.
func cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	buf := make([]float64, 0, len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			buf = append(buf, va*vb)
		}
	}
	dot := orderedSum(buf)
	if dot == 0 {
		return 0
	}
	buf = buf[:0]
	for _, va := range a {
		buf = append(buf, va*va)
	}
	na := orderedSum(buf)
	buf = buf[:0]
	for _, vb := range b {
		buf = append(buf, vb*vb)
	}
	nb := orderedSum(buf)
	if na == 0 || nb == 0 {
		return 0
	}
	v := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if v > 1 {
		v = 1
	}
	return v
}

// orderedSum sums the values in ascending order, making the accumulated
// float64 independent of the (randomized) map iteration order that
// produced them. The slice is sorted in place.
func orderedSum(xs []float64) float64 {
	sort.Float64s(xs)
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
