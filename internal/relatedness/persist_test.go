package relatedness

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"aida/internal/kb"
)

// allKinds are the measure kinds the persistence tests sweep.
var allKinds = []Kind{KindMW, KindKWCS, KindKPCS, KindKORE, KindKORELSHG, KindKORELSHF}

// warmScorer fills an engine with every pairwise value of the cluster KB
// under every kind and returns the entity set.
func warmScorer(s *Scorer) []kb.EntityID {
	_, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	for _, kind := range allKinds {
		for i := range ents {
			for j := i + 1; j < len(ents); j++ {
				s.Relatedness(kind, ents[i], ents[j])
			}
		}
	}
	return ents
}

// TestEngineSnapshotRoundTrip pins the warm-start contract: Save → Load
// reproduces the cache state (same interned profiles, same memoized pairs),
// the restored engine serves pure cache hits for previously computed pairs,
// and every value matches the donor bit for bit.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	k, _, _ := buildClusterKB()
	donor := NewScorer(k)
	ents := warmScorer(donor)
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	loaded, err := LoadScorer(bytes.NewReader(buf.Bytes()), k)
	if err != nil {
		t.Fatalf("LoadScorer: %v", err)
	}
	ds, ls := donor.Stats(), loaded.Stats()
	if ls.Profiles != ds.Profiles || ls.Pairs != ds.Pairs {
		t.Fatalf("restored cache shape (profiles=%d pairs=%d) != donor (profiles=%d pairs=%d)",
			ls.Profiles, ls.Pairs, ds.Profiles, ds.Pairs)
	}
	if ls.ProfileBytes != ds.ProfileBytes {
		t.Fatalf("restored profile bytes %d != donor %d", ls.ProfileBytes, ds.ProfileBytes)
	}
	if ls.Hits != 0 || ls.Misses != 0 {
		t.Fatalf("freshly restored engine should have zero traffic counters, got hits=%d misses=%d", ls.Hits, ls.Misses)
	}
	for _, kind := range allKinds {
		for i := range ents {
			for j := i + 1; j < len(ents); j++ {
				if got, want := loaded.Relatedness(kind, ents[i], ents[j]), donor.Relatedness(kind, ents[i], ents[j]); got != want {
					t.Fatalf("%v(%d,%d) = %v after restore, donor %v", kind, ents[i], ents[j], got, want)
				}
			}
		}
	}
	// Every value above must have come out of the restored cache.
	if hits, misses := loaded.CacheStats(); misses != 0 || hits == 0 {
		t.Fatalf("warm-started engine recomputed values: hits=%d misses=%d", hits, misses)
	}
}

// TestEngineSnapshotCrossShardLayout pins snapshot portability across shard
// layouts: the fingerprint covers content, not layout, so an unsharded
// process's snapshot warm-starts a sharded one (and vice versa), with
// profiles re-interned into the loading engine's own per-KB-shard groups.
func TestEngineSnapshotCrossShardLayout(t *testing.T) {
	k, _, _ := buildClusterKB()
	donor := NewScorer(k)
	ents := warmScorer(donor)
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	sharded := kb.Shard(k, 4)
	loaded, err := LoadScorer(bytes.NewReader(buf.Bytes()), sharded)
	if err != nil {
		t.Fatalf("LoadScorer onto 4-shard router: %v", err)
	}
	perShard := loaded.ProfilesByKBShard()
	if len(perShard) != 4 {
		t.Fatalf("ProfilesByKBShard groups = %d, want 4", len(perShard))
	}
	total := 0
	for _, n := range perShard {
		total += n
	}
	if want := donor.Stats().Profiles; total != want {
		t.Fatalf("restored profiles across shards = %d, want %d", total, want)
	}
	for _, kind := range allKinds {
		for i := range ents {
			for j := i + 1; j < len(ents); j++ {
				if got, want := loaded.Relatedness(kind, ents[i], ents[j]), donor.Relatedness(kind, ents[i], ents[j]); got != want {
					t.Fatalf("%v(%d,%d) diverges across shard layouts: %v vs %v", kind, ents[i], ents[j], got, want)
				}
			}
		}
	}
	if _, misses := loaded.CacheStats(); misses != 0 {
		t.Fatalf("cross-layout warm start recomputed %d values", misses)
	}
}

// differentKB builds a KB whose content differs from the cluster KB, so its
// fingerprint must differ.
func differentKB() *kb.KB {
	b := kb.NewBuilder()
	a := b.AddEntity("Alpha", "misc")
	c := b.AddEntity("Beta", "misc")
	b.AddKeyphrase(a, "completely different phrase")
	b.AddKeyphrase(c, "another different phrase")
	b.AddLink(a, c)
	return b.Build()
}

// corrupt returns a scorer snapshot with its header re-encoded under the
// given mutation, followed by the original body bytes.
func corruptHeader(t *testing.T, full []byte, mutate func(*snapshotHeader)) []byte {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(full))
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		t.Fatalf("decode header of valid snapshot: %v", err)
	}
	var body snapshotBody
	if err := dec.Decode(&body); err != nil {
		t.Fatalf("decode body of valid snapshot: %v", err)
	}
	mutate(&h)
	var out bytes.Buffer
	enc := gob.NewEncoder(&out)
	if err := enc.Encode(h); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestEngineSnapshotErrors covers every rejection path: truncated streams,
// garbage, wrong magic, unsupported version and a KB-fingerprint mismatch
// must each return a descriptive error and leave the engine untouched and
// usable cold.
func TestEngineSnapshotErrors(t *testing.T) {
	k, music, physics := buildClusterKB()
	donor := NewScorer(k)
	warmScorer(donor)
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	full := buf.Bytes()

	// A snapshot of a different repository, for the fingerprint case.
	other := NewScorer(differentKB())
	other.Relatedness(KindKORE, 0, 1)
	var otherBuf bytes.Buffer
	if err := other.Save(&otherBuf); err != nil {
		t.Fatalf("Save other: %v", err)
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty", nil, "read header"},
		{"garbage", []byte("not a gob stream at all"), "read header"},
		{"truncated-header", full[:3], "read header"},
		{"truncated-body", full[:len(full)-len(full)/4], "read body"},
		{"bad-magic", corruptHeader(t, full, func(h *snapshotHeader) { h.Magic = "something-else" }), "bad magic"},
		{"wrong-version", corruptHeader(t, full, func(h *snapshotHeader) { h.Version = snapshotVersion + 7 }), "unsupported format version"},
		{"stale-fingerprint", otherBuf.Bytes(), "fingerprint mismatch"},
		{"entity-out-of-range", corruptHeader(t, full, func(h *snapshotHeader) {}), ""}, // placeholder; replaced below
	}
	// Out-of-range entity ids: splice a body with an absurd id under a
	// valid header.
	cases[len(cases)-1].data = corruptBody(t, full, func(b *snapshotBody) {
		b.Profiles[0] = append(b.Profiles[0], kb.EntityID(1<<20))
	})
	cases[len(cases)-1].wantErr = "out of range"

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScorer(k)
			err := s.Restore(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("Restore(%s) succeeded, want error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Restore(%s) error %q does not mention %q", tc.name, err, tc.wantErr)
			}
			// The failed restore must leave the engine empty and fully
			// usable cold: same values as a never-touched engine.
			if st := s.Stats(); st.Profiles != 0 || st.Pairs != 0 {
				t.Fatalf("failed restore left state behind: %+v", st)
			}
			fresh := NewScorer(k)
			for _, kind := range allKinds {
				if got, want := s.Relatedness(kind, music[0], physics[0]), fresh.Relatedness(kind, music[0], physics[0]); got != want {
					t.Fatalf("engine unusable after failed restore: %v(%d,%d) = %v, want %v", kind, music[0], physics[0], got, want)
				}
			}
		})
	}
}

// corruptBody re-encodes a snapshot with its body mutated under the
// original (valid) header.
func corruptBody(t *testing.T, full []byte, mutate func(*snapshotBody)) []byte {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(full))
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		t.Fatal(err)
	}
	var body snapshotBody
	if err := dec.Decode(&body); err != nil {
		t.Fatal(err)
	}
	mutate(&body)
	var out bytes.Buffer
	enc := gob.NewEncoder(&out)
	if err := enc.Encode(h); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestEngineSnapshotInvalidPairRecords rejects pair records with invalid
// kinds or unordered/out-of-range entities.
func TestEngineSnapshotInvalidPairRecords(t *testing.T) {
	k, _, _ := buildClusterKB()
	donor := NewScorer(k)
	warmScorer(donor)
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := []struct {
		name    string
		mutate  func(*snapshotBody)
		wantErr string
	}{
		{"lsh-kind", func(b *snapshotBody) { b.Pairs[0].Kind = KindKORELSHF }, "invalid pair-cache kind"},
		{"unknown-kind", func(b *snapshotBody) { b.Pairs[0].Kind = Kind(99) }, "invalid pair-cache kind"},
		{"unordered", func(b *snapshotBody) { b.Pairs[0].A, b.Pairs[0].B = b.Pairs[0].B, b.Pairs[0].A }, "invalid pair"},
		{"self-pair", func(b *snapshotBody) { b.Pairs[0].B = b.Pairs[0].A }, "invalid pair"},
		{"out-of-range", func(b *snapshotBody) { b.Pairs[0].B = 1 << 20 }, "invalid pair"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScorer(k)
			err := s.Restore(bytes.NewReader(corruptBody(t, full, tc.mutate)))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Restore = %v, want error mentioning %q", err, tc.wantErr)
			}
			if st := s.Stats(); st.Profiles != 0 || st.Pairs != 0 {
				t.Fatalf("failed restore left state behind: %+v", st)
			}
		})
	}
}

// TestEngineSaveToFailingWriter covers the Save error path.
func TestEngineSaveToFailingWriter(t *testing.T) {
	k, _, _ := buildClusterKB()
	s := NewScorer(k)
	if err := s.Save(failingWriter{}); err == nil {
		t.Fatal("Save to failing writer succeeded, want error")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errRefused
}

type refusedError struct{}

func (refusedError) Error() string { return "write refused" }

var errRefused = refusedError{}
