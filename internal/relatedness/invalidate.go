package relatedness

import (
	"aida/internal/kb"
)

// CloneFor derives the scoring engine of a new KB generation from this
// one: a fresh Scorer bound to store, warm-started with every cached value
// a live update cannot have invalidated. It is the engine half of
// aida.System.ApplyDelta — the store swap installs a new generation, and
// CloneFor keeps the engine's accumulated heat instead of paying a full
// cold start per delta.
//
// What survives, and why it is safe:
//
//   - Interned profiles of entities NOT in touched: a profile is a pure
//     function of the entity's keyphrases and the global word-IDF weighter.
//     A delta leaves untouched entities' keyphrases shared with the base
//     and only extends the IDF tables where the base had no weight, so
//     these profiles are bit-identical under the new store.
//   - Memoized pairs where neither endpoint is touched: KWCS, KPCS and
//     KORE values depend only on the two entities' keyphrase features.
//   - MW pairs additionally depend on |E| (the Milne–Witten normalizer),
//     so when the generation changed the entity count every MW value is
//     stale and the whole MW cache row is dropped, touched or not.
//
// What is dropped: profiles and all pair rows of touched entities (their
// link sets changed — the same dependent-pair sweep the eviction machinery
// performs, see dropPairsOf), the MW row under entity-count change, and
// the LSH filters (rebuilt lazily over the new store so added entities are
// indexed). Cache hit/miss/eviction counters start at zero on the clone —
// a generation swap reads as a restart in the engine's observability.
//
// The source engine stays valid and serves in-flight documents of the old
// generation; CloneFor only read-locks it.
func (s *Scorer) CloneFor(store kb.Store, touched []kb.EntityID, entityCountChanged bool) *Scorer {
	ns := NewScorer(store)
	gone := make(map[kb.EntityID]bool, len(touched))
	for _, e := range touched {
		gone[e] = true
	}
	// Re-intern surviving profiles through the new engine's table layout
	// (the store swap may change the shard geometry). The *Profile values
	// are shared — profiles are immutable.
	for i := range s.profiles {
		sh := &s.profiles[i]
		sh.mu.RLock()
		for e, ent := range sh.m {
			if gone[e] {
				continue
			}
			nsh := ns.profileTable(e)
			ne := &profileEntry{p: ent.p, bytes: ent.bytes}
			ne.ref.Store(true) // one CLOCK round of grace, like a fresh intern
			nsh.m[e] = ne
			nsh.ring = append(nsh.ring, e)
			nsh.bytes += ne.bytes
		}
		sh.mu.RUnlock()
	}
	for i := range s.pairs {
		sh := &s.pairs[i]
		sh.mu.RLock()
		for key, v := range sh.m {
			if gone[key.a] || gone[key.b] {
				continue
			}
			if entityCountChanged && key.kind == KindMW {
				continue
			}
			// pairKey.shard is a pure function of the key, so the entry
			// lands in the same shard index of the new engine.
			ns.pairs[i].m[key] = v
		}
		sh.mu.RUnlock()
	}
	// Carry the budget over and enforce it: the copied profiles may exceed
	// a stripe's slice under a new layout.
	ns.SetMaxProfileBytes(s.maxProfileBytes.Load())
	return ns
}
