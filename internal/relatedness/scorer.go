package relatedness

import (
	"sync"
	"sync/atomic"

	"aida/internal/kb"
)

// scorerShards is the shard count of the Scorer's pair cache, and the
// total lock-stripe budget of its profile intern tables. Sharding keeps
// lock contention negligible when many documents are scored concurrently;
// 64 shards comfortably cover the worker counts of commodity machines.
const scorerShards = 64

// pairKey identifies one memoized relatedness value: a measure kind and an
// ordered entity pair (a < b).
type pairKey struct {
	kind Kind
	a, b kb.EntityID
}

func (k pairKey) shard() uint64 {
	h := uint64(k.a)*0x9e3779b97f4a7c15 ^ uint64(k.b)*0xc2b2ae3d27d4eb4f ^ uint64(k.kind)
	return (h ^ h>>29) % scorerShards
}

// profileEntry is one interned profile plus the bookkeeping the CLOCK
// eviction policy needs: its accounted footprint and a reference bit set on
// every cache hit (atomically, so the read-locked fast path can set it).
type profileEntry struct {
	p     *Profile
	bytes int64
	ref   atomic.Bool
}

type profileShard struct {
	mu sync.RWMutex
	m  map[kb.EntityID]*profileEntry
	// bytes is the approximate heap footprint of the interned profiles of
	// this shard (guarded by mu, updated on insert and eviction).
	bytes int64
	// ring and hand implement the CLOCK sweep: ring holds the shard's
	// interned entity ids in insertion order (always exactly the keys of
	// m), hand is the next sweep position. Guarded by mu.
	ring []kb.EntityID
	hand int
	// evictions counts profiles evicted from this shard (guarded by mu).
	evictions int64
}

// evictLocked sweeps the CLOCK hand until the shard's accounted bytes fit
// the budget, giving referenced entries a second chance. Caller holds mu.
// It returns the evicted entity ids so the caller can drop their dependent
// memoized pairs after releasing the lock. Two full passes bound the walk:
// the first at worst clears every reference bit, the second then evicts.
func (sh *profileShard) evictLocked(budget int64) []kb.EntityID {
	if budget <= 0 || sh.bytes <= budget {
		return nil
	}
	var evicted []kb.EntityID
	for steps := 2 * len(sh.ring); steps > 0 && sh.bytes > budget && len(sh.ring) > 0; steps-- {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		ent := sh.m[e]
		if ent.ref.Load() {
			ent.ref.Store(false)
			sh.hand++
			continue
		}
		delete(sh.m, e)
		sh.bytes -= ent.bytes
		sh.evictions++
		evicted = append(evicted, e)
		sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
	}
	return evicted
}

type pairShard struct {
	mu sync.RWMutex
	m  map[pairKey]float64
	// hits/misses live per shard — and per requested measure kind — so the
	// cache-hit fast path touches no shared cache line; CacheStats and
	// Stats sum them. LSH kinds share KORE's cache rows but keep their own
	// counters, so per-kind traffic stays attributable.
	hits, misses [numKinds]atomic.Int64
}

// Scorer is a long-lived scoring engine bound to one knowledge base. It
// serves all six relatedness kinds, interns per-entity keyphrase profiles,
// memoizes pairwise scores across documents, and builds each LSH filter at
// most once per KB. All methods are safe for concurrent use; every returned
// value is a pure function of the KB, so results are identical whether the
// caches are cold or warm, sequential or hammered from many goroutines.
//
// A Scorer is the cross-request state that one-shot Measure construction
// used to rebuild per call: share a single Scorer per KB process-wide and
// derive per-kind views with Measure.
//
// The profile intern tables are aligned with the store's KB shards: one
// group of lock-striped tables per KB shard, so a process hosting only hot
// shards interns (and accounts) profiles per shard, and dropping a shard's
// profiles is a contiguous operation. For an unsharded KB this degenerates
// to the flat 64-stripe layout.
type Scorer struct {
	kb     kb.Store
	weight Weighter

	// kbShards and stripes shape the profile tables: profiles holds
	// kbShards × stripes entries, entity e living in group
	// kb.EntityShard(e, kbShards) at stripe (e / kbShards) % stripes.
	kbShards int
	stripes  int
	profiles []profileShard

	// maxProfileBytes is the approximate global budget for interned
	// profiles (0 = unbounded); each profile stripe gets an equal slice.
	// pairsEvicted counts memoized pairs dropped because one of their
	// entities was evicted.
	maxProfileBytes atomic.Int64
	pairsEvicted    atomic.Int64

	pairs [scorerShards]pairShard

	// filters holds the lazily built LSH filters, indexed by lshIndex.
	filters [2]struct {
		once sync.Once
		f    *LSHFilter
	}
}

// NewScorer creates a scoring engine over the knowledge base (a single KB
// or a sharded router; every value it computes is identical either way).
func NewScorer(k kb.Store) *Scorer {
	s := &Scorer{kb: k, kbShards: 1}
	if k != nil {
		if n := k.NumShards(); n > 1 {
			s.kbShards = n
		}
	}
	s.stripes = scorerShards / s.kbShards
	if s.stripes < 1 {
		s.stripes = 1
	}
	s.weight = func(w string) float64 {
		v := k.WordIDF(w)
		if v <= 0 {
			return 0.1 // unknown words carry minimal evidence
		}
		return v
	}
	s.profiles = make([]profileShard, s.kbShards*s.stripes)
	for i := range s.profiles {
		s.profiles[i].m = make(map[kb.EntityID]*profileEntry)
	}
	for i := range s.pairs {
		s.pairs[i].m = make(map[pairKey]float64)
	}
	return s
}

// KB returns the bound knowledge base store.
func (s *Scorer) KB() kb.Store { return s.kb }

// Weighter returns the engine's global keyword-IDF weighter.
func (s *Scorer) Weighter() Weighter { return s.weight }

// profileTable returns the intern table stripe owning entity e: the
// stripe group of e's KB shard, striped within the group by the entity's
// rank on that shard.
func (s *Scorer) profileTable(e kb.EntityID) *profileShard {
	group := kb.EntityShard(e, s.kbShards)
	stripe := (uint64(e) / uint64(s.kbShards)) % uint64(s.stripes)
	return &s.profiles[group*s.stripes+int(stripe)]
}

// Profile returns the interned keyphrase profile of a KB entity, building
// it on first use. Duplicate builds under concurrency are possible but
// harmless (profiles are immutable); exactly one copy is retained. When a
// MaxProfileBytes budget is set, interning a profile may evict cold ones
// (and their dependent memoized pairs) — never changing any value, only
// what is cached.
func (s *Scorer) Profile(e kb.EntityID) *Profile {
	sh := s.profileTable(e)
	sh.mu.RLock()
	if ent, ok := sh.m[e]; ok {
		ent.ref.Store(true)
		sh.mu.RUnlock()
		return ent.p
	}
	sh.mu.RUnlock()
	built := NewProfile(s.kb.Entity(e).Keyphrases, s.weight)
	return s.intern(sh, e, built)
}

// intern inserts a freshly built profile (first writer wins), enforces the
// stripe's eviction budget, and drops the evicted entities' memoized pairs.
func (s *Scorer) intern(sh *profileShard, e kb.EntityID, built *Profile) *Profile {
	sh.mu.Lock()
	if ent, ok := sh.m[e]; ok {
		ent.ref.Store(true)
		sh.mu.Unlock()
		return ent.p
	}
	ent := &profileEntry{p: built, bytes: built.ApproxBytes()}
	ent.ref.Store(true) // a fresh entry gets one CLOCK round of grace
	sh.m[e] = ent
	sh.ring = append(sh.ring, e)
	sh.bytes += ent.bytes
	evicted := sh.evictLocked(s.stripeBudget())
	sh.mu.Unlock()
	s.dropPairsOf(evicted)
	return built
}

// SetMaxProfileBytes bounds the approximate heap footprint of the interned
// profiles (0 restores the default: unbounded). The budget is divided
// evenly across the profile stripes; exceeding it evicts cold profiles
// CLOCK-wise together with their dependent memoized pairs. Shrinking the
// budget evicts immediately. Eviction never changes any computed value —
// evicted state is recomputed on demand — only the work counters.
func (s *Scorer) SetMaxProfileBytes(n int64) {
	if n < 0 {
		n = 0
	}
	s.maxProfileBytes.Store(n)
	budget := s.stripeBudget()
	for i := range s.profiles {
		sh := &s.profiles[i]
		sh.mu.Lock()
		evicted := sh.evictLocked(budget)
		sh.mu.Unlock()
		s.dropPairsOf(evicted)
	}
}

// MaxProfileBytes returns the configured profile-memory budget (0 =
// unbounded).
func (s *Scorer) MaxProfileBytes() int64 { return s.maxProfileBytes.Load() }

// stripeBudget is the per-stripe slice of the global profile budget (0 =
// unbounded). A budget smaller than the stripe count still evicts (every
// stripe keeps at most one small profile's worth of slack).
func (s *Scorer) stripeBudget() int64 {
	limit := s.maxProfileBytes.Load()
	if limit <= 0 {
		return 0
	}
	b := limit / int64(len(s.profiles))
	if b < 1 {
		b = 1
	}
	return b
}

// dropPairsOf removes every memoized pair involving an evicted entity, for
// all measure kinds: an evicted entity's cached state leaves the engine
// entirely. Values are pure functions of the KB, so a later request simply
// recomputes them (a miss, never a different answer).
//
// The sweep walks the full pair cache (all shards, one write lock each): a
// deliberate trade-off that keeps the hot path free of any per-entity pair
// index. Eviction is the slow path — with a sane budget it fires rarely,
// and under sustained thrash the sweep itself keeps the pair maps small.
// If a workload ever needs a budget far below its working set, a
// per-entity key index is the upgrade path.
func (s *Scorer) dropPairsOf(evicted []kb.EntityID) {
	if len(evicted) == 0 {
		return
	}
	gone := make(map[kb.EntityID]bool, len(evicted))
	for _, e := range evicted {
		gone[e] = true
	}
	var dropped int64
	for i := range s.pairs {
		sh := &s.pairs[i]
		sh.mu.Lock()
		for key := range sh.m {
			if gone[key.a] || gone[key.b] {
				delete(sh.m, key)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		s.pairsEvicted.Add(dropped)
	}
}

// Relatedness computes the relatedness of two entities under the given
// kind, memoizing the value across calls and documents. For LSH kinds this
// is the exact KORE value (pair filtering is exposed via Pairs).
func (s *Scorer) Relatedness(kind Kind, a, b kb.EntityID) float64 {
	if a == b {
		return 1
	}
	if a > b {
		a, b = b, a
	}
	key := pairKey{kind: pairCacheKind(kind), a: a, b: b}
	ctr := counterKind(kind)
	sh := &s.pairs[key.shard()]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits[ctr].Add(1)
		return v
	}
	sh.misses[ctr].Add(1)
	v = s.compute(kind, a, b)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// pairCacheKind collapses kinds that share the same exact value onto one
// cache row: KORE's LSH variants, and out-of-range kinds, which compute
// treats as KORE.
func pairCacheKind(kind Kind) Kind {
	if kind.IsLSH() || !kind.Valid() {
		return KindKORE
	}
	return kind
}

// counterKind maps a requested kind onto its hit/miss counter slot. Valid
// kinds keep their own counters even when they share a cache row;
// out-of-range kinds are accounted as KORE, matching their cache row.
func counterKind(kind Kind) Kind {
	if !kind.Valid() {
		return KindKORE
	}
	return kind
}

// compute evaluates one pair without touching the pair cache.
func (s *Scorer) compute(kind Kind, a, b kb.EntityID) float64 {
	switch kind {
	case KindMW:
		return MW(s.kb.Entity(a).InLinks, s.kb.Entity(b).InLinks, s.kb.NumEntities())
	case KindKWCS:
		return KeywordCosine(s.kb.Entity(a).Keyphrases, s.kb.Entity(b).Keyphrases, s.weight)
	case KindKPCS:
		return KeyphraseCosine(s.kb.Entity(a).Keyphrases, s.kb.Entity(b).Keyphrases)
	default: // KORE and its LSH variants
		return KOREProfiles(s.Profile(a), s.Profile(b))
	}
}

// lshIndex maps an LSH kind to its filter slot.
func lshIndex(kind Kind) int {
	if kind == KindKORELSHF {
		return 1
	}
	return 0
}

// Filter returns the shared LSH filter for an LSH kind, building it on
// first use (once per KB and kind). Non-LSH kinds have no filter and
// return nil.
func (s *Scorer) Filter(kind Kind) *LSHFilter {
	if !kind.IsLSH() {
		return nil
	}
	slot := &s.filters[lshIndex(kind)]
	slot.once.Do(func() { slot.f = NewLSHFilter(s.kb, kind) })
	return slot.f
}

// Pairs returns the entity pairs whose relatedness should be computed for
// the given candidate set: all pairs for exact kinds, only pairs sharing a
// stage-two LSH bucket for the LSH kinds (Sec. 4.4.2).
func (s *Scorer) Pairs(kind Kind, entities []kb.EntityID) [][2]kb.EntityID {
	if f := s.Filter(kind); f != nil {
		return f.Pairs(entities)
	}
	var out [][2]kb.EntityID
	for i := 0; i < len(entities); i++ {
		for j := i + 1; j < len(entities); j++ {
			out = append(out, [2]kb.EntityID{entities[i], entities[j]})
		}
	}
	return out
}

// Measure derives a per-kind view sharing this engine's caches.
func (s *Scorer) Measure(kind Kind) *Measure {
	return &Measure{Kind: kind, KB: s.kb, scorer: s}
}

// CacheStats reports the total pair-cache hit and miss counts since
// creation, summed across all measure kinds. Stats carries the full
// per-kind breakdown; CacheStats remains as the cheap two-number view.
func (s *Scorer) CacheStats() (hits, misses int64) {
	for i := range s.pairs {
		for k := 0; k < numKinds; k++ {
			hits += s.pairs[i].hits[k].Load()
			misses += s.pairs[i].misses[k].Load()
		}
	}
	return hits, misses
}
