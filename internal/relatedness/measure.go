package relatedness

import (
	"fmt"
	"sync"

	"aida/internal/kb"
)

// Kind selects one of the implemented relatedness measures.
type Kind int

// The measures evaluated in Chapter 4 (Tables 4.2/4.3).
const (
	KindMW       Kind = iota // Milne–Witten in-link overlap
	KindKWCS                 // keyword cosine
	KindKPCS                 // keyphrase cosine
	KindKORE                 // exact keyphrase overlap relatedness
	KindKORELSHG             // KORE with recall-oriented LSH pre-clustering
	KindKORELSHF             // KORE with precision-oriented LSH pre-clustering
)

// String returns the measure name as used in the dissertation's tables.
func (k Kind) String() string {
	switch k {
	case KindMW:
		return "MW"
	case KindKWCS:
		return "KWCS"
	case KindKPCS:
		return "KPCS"
	case KindKORE:
		return "KORE"
	case KindKORELSHG:
		return "KORE-LSH-G"
	case KindKORELSHF:
		return "KORE-LSH-F"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLSH reports whether the measure pre-filters pairs with LSH.
func (k Kind) IsLSH() bool { return k == KindKORELSHG || k == KindKORELSHF }

// Measure is a relatedness measure bound to a knowledge base, with cached
// per-entity profiles. It is safe for concurrent use.
type Measure struct {
	Kind Kind
	KB   *kb.KB

	mu       sync.Mutex
	profiles map[kb.EntityID]*Profile
	filter   *LSHFilter
}

// NewMeasure binds a measure kind to a knowledge base.
func NewMeasure(kind Kind, k *kb.KB) *Measure {
	m := &Measure{Kind: kind, KB: k, profiles: make(map[kb.EntityID]*Profile)}
	if kind.IsLSH() {
		m.filter = NewLSHFilter(k, kind)
	}
	return m
}

// weighter returns the global keyword-IDF weighter of the bound KB.
func (m *Measure) weighter() Weighter {
	return func(w string) float64 {
		v := m.KB.WordIDF(w)
		if v <= 0 {
			return 0.1 // unknown words carry minimal evidence
		}
		return v
	}
}

// profile returns the cached keyphrase profile of an entity.
func (m *Measure) profile(e kb.EntityID) *Profile {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.profiles[e]; ok {
		return p
	}
	p := NewProfile(m.KB.Entity(e).Keyphrases, m.weighter())
	m.profiles[e] = p
	return p
}

// Relatedness computes the relatedness of two entities under the bound
// measure kind. For LSH kinds this is the exact KORE value (the pair
// filtering is exposed separately via Pairs).
func (m *Measure) Relatedness(a, b kb.EntityID) float64 {
	if a == b {
		return 1
	}
	switch m.Kind {
	case KindMW:
		return MW(m.KB.Entity(a).InLinks, m.KB.Entity(b).InLinks, m.KB.NumEntities())
	case KindKWCS:
		return KeywordCosine(m.KB.Entity(a).Keyphrases, m.KB.Entity(b).Keyphrases, m.weighter())
	case KindKPCS:
		return KeyphraseCosine(m.KB.Entity(a).Keyphrases, m.KB.Entity(b).Keyphrases)
	default: // KORE and its LSH variants
		return KOREProfiles(m.profile(a), m.profile(b))
	}
}

// Pairs returns the entity pairs whose relatedness should be computed for
// the given candidate set. Exact measures return all pairs; LSH variants
// return only pairs sharing at least one stage-two bucket (Sec. 4.4.2).
func (m *Measure) Pairs(entities []kb.EntityID) [][2]kb.EntityID {
	if m.filter != nil {
		return m.filter.Pairs(entities)
	}
	var out [][2]kb.EntityID
	for i := 0; i < len(entities); i++ {
		for j := i + 1; j < len(entities); j++ {
			out = append(out, [2]kb.EntityID{entities[i], entities[j]})
		}
	}
	return out
}
