package relatedness

import (
	"fmt"
	"strings"

	"aida/internal/kb"
)

// Kind selects one of the implemented relatedness measures.
type Kind int

// The measures evaluated in Chapter 4 (Tables 4.2/4.3).
const (
	KindMW       Kind = iota // Milne–Witten in-link overlap
	KindKWCS                 // keyword cosine
	KindKPCS                 // keyphrase cosine
	KindKORE                 // exact keyphrase overlap relatedness
	KindKORELSHG             // KORE with recall-oriented LSH pre-clustering
	KindKORELSHF             // KORE with precision-oriented LSH pre-clustering
)

// String returns the measure name as used in the dissertation's tables.
func (k Kind) String() string {
	switch k {
	case KindMW:
		return "MW"
	case KindKWCS:
		return "KWCS"
	case KindKPCS:
		return "KPCS"
	case KindKORE:
		return "KORE"
	case KindKORELSHG:
		return "KORE-LSH-G"
	case KindKORELSHF:
		return "KORE-LSH-F"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// numKinds is the number of defined measure kinds (per-kind stats arrays
// are indexed by Kind).
const numKinds = int(KindKORELSHF) + 1

// IsLSH reports whether the measure pre-filters pairs with LSH.
func (k Kind) IsLSH() bool { return k == KindKORELSHG || k == KindKORELSHF }

// Valid reports whether k is one of the defined measure kinds.
func (k Kind) Valid() bool { return k >= 0 && int(k) < numKinds }

// ParseKind resolves a measure name as printed by Kind.String ("MW",
// "KWCS", "KPCS", "KORE", "KORE-LSH-G", "KORE-LSH-F"), case-insensitively.
func ParseKind(name string) (Kind, error) {
	for k := Kind(0); int(k) < numKinds; k++ {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown relatedness kind %q", name)
}

// Measure is a per-kind view of a Scorer: a relatedness measure bound to a
// knowledge base, sharing the engine's interned profiles, memoized pair
// values and LSH filters. It is safe for concurrent use.
type Measure struct {
	Kind Kind
	KB   kb.Store

	scorer *Scorer
}

// NewMeasure binds a measure kind to a knowledge base over a fresh engine.
// Callers that evaluate several kinds (or many documents) should share one
// Scorer and derive views with (*Scorer).Measure instead.
func NewMeasure(kind Kind, k kb.Store) *Measure {
	return NewScorer(k).Measure(kind)
}

// Scorer returns the engine backing this view.
func (m *Measure) Scorer() *Scorer { return m.scorer }

// Relatedness computes the relatedness of two entities under the bound
// measure kind. For LSH kinds this is the exact KORE value (the pair
// filtering is exposed separately via Pairs).
func (m *Measure) Relatedness(a, b kb.EntityID) float64 {
	return m.scorer.Relatedness(m.Kind, a, b)
}

// Pairs returns the entity pairs whose relatedness should be computed for
// the given candidate set. Exact measures return all pairs; LSH variants
// return only pairs sharing at least one stage-two bucket (Sec. 4.4.2).
func (m *Measure) Pairs(entities []kb.EntityID) [][2]kb.EntityID {
	return m.scorer.Pairs(m.Kind, entities)
}
