package relatedness

import (
	"testing"
	"testing/quick"

	"aida/internal/kb"
)

func TestJaccardLinks(t *testing.T) {
	a := []kb.EntityID{1, 2, 3, 4}
	b := []kb.EntityID{3, 4, 5, 6}
	if got := JaccardLinks(a, b); !almostEq(got, 2.0/6.0) {
		t.Fatalf("got %v want 1/3", got)
	}
	if got := JaccardLinks(a, a); !almostEq(got, 1) {
		t.Fatalf("self jaccard = %v", got)
	}
	if got := JaccardLinks(nil, nil); got != 0 {
		t.Fatalf("empty jaccard = %v", got)
	}
}

func TestConditionalLinks(t *testing.T) {
	e := []kb.EntityID{1, 2, 3, 4}
	f := []kb.EntityID{3, 4}
	if got := ConditionalLinks(e, f); !almostEq(got, 0.5) {
		t.Fatalf("P(f|e) = %v want 0.5", got)
	}
	if got := ConditionalLinks(f, e); !almostEq(got, 1.0) {
		t.Fatalf("P(e|f) = %v want 1", got)
	}
	sym := SymmetricConditional(e, f)
	if !almostEq(sym, 0.75) {
		t.Fatalf("symmetric = %v want 0.75", sym)
	}
}

func TestConditionalLinksBounds(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := idsOf(xs)
		b := idsOf(ys)
		v := ConditionalLinks(a, b)
		s := SymmetricConditional(a, b)
		return v >= 0 && v <= 1 && s >= 0 && s <= 1 &&
			almostEq(s, SymmetricConditional(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectLinkAndCombined(t *testing.T) {
	k, music, physics := buildClusterKB()
	a := k.Entity(music[0])
	b := k.Entity(music[1])
	c := k.Entity(physics[0])
	if !DirectLink(a, b) {
		t.Fatal("cluster mates are fully interlinked")
	}
	if DirectLink(a, c) {
		t.Fatal("cross-cluster entities are not linked")
	}
	intra := CombinedLinkMeasure(a, b, k.NumEntities())
	inter := CombinedLinkMeasure(a, c, k.NumEntities())
	if intra <= inter {
		t.Fatalf("combined measure ordering violated: %v vs %v", intra, inter)
	}
	if intra < 0 || intra > 1 || inter < 0 || inter > 1 {
		t.Fatalf("combined measure out of range: %v %v", intra, inter)
	}
}

func TestContainsSorted(t *testing.T) {
	ids := []kb.EntityID{1, 3, 5, 9}
	for _, x := range ids {
		if !containsSorted(ids, x) {
			t.Fatalf("%d should be found", x)
		}
	}
	for _, x := range []kb.EntityID{0, 2, 4, 10} {
		if containsSorted(ids, x) {
			t.Fatalf("%d should not be found", x)
		}
	}
	if containsSorted(nil, 1) {
		t.Fatal("empty slice contains nothing")
	}
}
