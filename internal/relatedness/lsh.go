package relatedness

import (
	"sort"
	"sync"

	"aida/internal/kb"
	"aida/internal/minhash"
)

// Two-stage hashing parameters (Sec. 4.4.2).
//
// Stage one groups near-duplicate keyphrases: each phrase's word set is
// sketched with 4 min-hash rows, banded into 2 bands of 2 rows; each phrase
// is represented by its 2 bucket ids. Stage two groups related entities:
// each entity's set of phrase-bucket ids is sketched and banded —
// KORE^LSH-G with 200 bands × 1 row (recall-oriented), KORE^LSH-F with
// 1000 bands × 2 rows (precision-oriented, prunes more pairs).
const (
	stage1SketchLen = 4
	stage1Bands     = 2
	stage1Rows      = 2

	lshGBands = 200
	lshGRows  = 1
	lshFBands = 1000
	lshFRows  = 2

	stage1Seed = 0x5eed1
	stage2Seed = 0x5eed2
)

// LSHFilter prunes entity pairs for KORE using the two-stage hashing
// scheme: stage-one phrase bucketing plus stage-two entity sketching, with
// process-wide sketch memoization.
type LSHFilter struct {
	kb      kb.Store
	stage1  *minhash.Sketcher
	stage1l minhash.LSH
	stage2  *minhash.Sketcher
	stage2l minhash.LSH
}

// NewLSHFilter creates a filter for the given KORE LSH variant
// (KindKORELSHG or KindKORELSHF). The kb may be nil when only PairsOfSets
// is used.
func NewLSHFilter(k kb.Store, kind Kind) *LSHFilter {
	bands, rows := lshGBands, lshGRows
	if kind == KindKORELSHF {
		bands, rows = lshFBands, lshFRows
	}
	return &LSHFilter{
		kb:      k,
		stage1:  minhash.NewSketcher(stage1SketchLen, stage1Seed),
		stage1l: minhash.LSH{Bands: stage1Bands, Rows: stage1Rows},
		stage2:  minhash.NewSketcher(bands*rows, stage2Seed),
		stage2l: minhash.LSH{Bands: bands, Rows: rows},
	}
}

// PhraseBuckets computes the stage-one bucket ids for a keyphrase set
// (2 per phrase). Exposed so emerging-entity placeholders, which are not in
// the KB, can participate in the same scheme.
func PhraseBuckets(stage1 *minhash.Sketcher, lsh minhash.LSH, phrases []kb.Keyphrase) []uint64 {
	set := make(map[uint64]bool)
	for _, p := range phrases {
		if len(p.Words) == 0 {
			continue
		}
		sig := stage1.SketchStrings(p.Words)
		for _, k := range lsh.BucketKeys(sig) {
			set[k] = true
		}
	}
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Pairs returns the pairs of the candidate set sharing at least one
// stage-two bucket; only these pairs' exact KORE values are computed.
func (f *LSHFilter) Pairs(entities []kb.EntityID) [][2]kb.EntityID {
	ix := minhash.NewIndex(f.stage2l)
	for i, e := range entities {
		ix.Add(i, f.sketchOfSet(f.kb.Entity(e).Keyphrases))
	}
	idxPairs := ix.CandidatePairs()
	out := make([][2]kb.EntityID, 0, len(idxPairs))
	for _, p := range idxPairs {
		a, b := entities[p[0]], entities[p[1]]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]kb.EntityID{a, b})
	}
	return out
}

// PairsOfSets is the stage-two filter over ad-hoc keyphrase sets (used for
// emerging-entity placeholders and per-document candidate sets): returns
// index pairs into the given slice. Stage-two sketches are memoized
// process-wide, keyed by the phrase-set content hash, so repeated
// disambiguation of the same candidate entities (the common case over a
// corpus) pays the sketching cost only once.
func (f *LSHFilter) PairsOfSets(sets [][]kb.Keyphrase) [][2]int {
	ix := minhash.NewIndex(f.stage2l)
	for i, phrases := range sets {
		ix.Add(i, f.sketchOfSet(phrases))
	}
	return ix.CandidatePairs()
}

// sketchCache memoizes stage-two sketches across filters with identical
// parameters. Keys hash the full phrase-set content plus the LSH geometry,
// so distinct keyphrase sets can never alias (up to 64-bit collisions).
var sketchCache sync.Map // uint64 → []uint64

func (f *LSHFilter) sketchOfSet(phrases []kb.Keyphrase) []uint64 {
	key := uint64(f.stage2l.Bands)<<32 ^ uint64(f.stage2l.Rows)
	for _, p := range phrases {
		key = key*1099511628211 ^ minhash.HashString(p.Phrase)
	}
	if v, ok := sketchCache.Load(key); ok {
		return v.([]uint64)
	}
	sig := f.stage2.Sketch(PhraseBuckets(f.stage1, f.stage1l, phrases))
	sketchCache.Store(key, sig)
	return sig
}
