package relatedness

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"aida/internal/kb"
)

// Engine snapshots make the Scorer durable: Save persists which profiles
// are interned and every memoized pair value, Restore (or LoadScorer)
// rebuilds that state into a fresh process so it serves its first request
// with a hot engine. The format is versioned gob:
//
//	header: magic, format version, KB fingerprint, KB shard count
//	body:   interned entity ids grouped by the writer's KB shard,
//	        memoized pairs as sorted (kind, a, b, value) records
//
// Invalidation rules: a snapshot is only as good as the KB it was computed
// from, so Restore rejects a header whose fingerprint differs from the
// loading Store's (stale snapshot, different repository content). The
// fingerprint is shard-layout-independent, so a snapshot written by an
// unsharded process warm-starts a sharded one (and vice versa): profiles
// are re-interned through the loading engine's own shard layout. Profiles
// themselves are not serialized — they are pure functions of the KB, so the
// snapshot records *which* entities were interned and rebuilds the rest,
// keeping snapshots small and byte-identity trivial.
//
// Restore is all-or-nothing: every record is decoded and validated before
// the engine is touched, so a truncated, corrupt, mis-versioned or stale
// stream returns an error and leaves the Scorer exactly as it was (usable
// cold).
const (
	snapshotMagic   = "aida-engine-snapshot"
	snapshotVersion = 1
)

// snapshotHeader is decoded (and validated) before the body, so version and
// fingerprint mismatches fail fast without parsing potentially large or
// incompatible payloads.
type snapshotHeader struct {
	Magic         string
	Version       int
	KBFingerprint uint64
	KBShards      int
}

// pairRecord is one memoized pair value. Kind is the canonical cache kind
// (LSH variants share KORE's rows and are never written).
type pairRecord struct {
	Kind Kind
	A, B kb.EntityID
	V    float64
}

// snapshotBody carries the cache contents. Profiles holds the interned
// entity ids grouped by the writer's KB shard (each group ascending), so a
// per-shard subset can be extracted without decoding profiles themselves;
// Pairs is sorted by (kind, a, b). Both orders make snapshot bytes
// deterministic for a given cache state.
type snapshotBody struct {
	Profiles [][]kb.EntityID
	Pairs    []pairRecord
}

// Save writes the engine's cache state — interned profile ids grouped per
// KB shard, and all memoized pair values — as a versioned snapshot bound to
// the KB's fingerprint. Safe for concurrent use with scoring traffic; the
// snapshot is a consistent-enough cut for warm-starting (entries inserted
// mid-save may or may not be included, and every value is pure, so any cut
// is correct).
func (s *Scorer) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	err := enc.Encode(snapshotHeader{
		Magic:         snapshotMagic,
		Version:       snapshotVersion,
		KBFingerprint: s.kb.Fingerprint(),
		KBShards:      s.kbShards,
	})
	if err != nil {
		return fmt.Errorf("engine snapshot: write header: %w", err)
	}
	body := snapshotBody{Profiles: make([][]kb.EntityID, s.kbShards)}
	for i := range s.profiles {
		sh := &s.profiles[i]
		group := i / s.stripes
		sh.mu.RLock()
		for e := range sh.m {
			body.Profiles[group] = append(body.Profiles[group], e)
		}
		sh.mu.RUnlock()
	}
	for _, group := range body.Profiles {
		sort.Slice(group, func(i, j int) bool { return group[i] < group[j] })
	}
	for i := range s.pairs {
		sh := &s.pairs[i]
		sh.mu.RLock()
		for key, v := range sh.m {
			body.Pairs = append(body.Pairs, pairRecord{Kind: key.kind, A: key.a, B: key.b, V: v})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(body.Pairs, func(i, j int) bool {
		a, b := body.Pairs[i], body.Pairs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	if err := enc.Encode(body); err != nil {
		return fmt.Errorf("engine snapshot: write body: %w", err)
	}
	return nil
}

// Restore loads a snapshot written by Save into this engine, merging it
// with whatever is already cached (existing entries win; every value is
// pure, so merge order cannot change results). The stream is fully decoded
// and validated first — magic, format version, KB fingerprint, entity-id
// ranges — and any failure returns a descriptive error with the Scorer
// untouched and usable cold. A configured MaxProfileBytes budget is
// enforced after the merge.
func (s *Scorer) Restore(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("engine snapshot: read header: %w", err)
	}
	if h.Magic != snapshotMagic {
		return fmt.Errorf("engine snapshot: bad magic %q (not an engine snapshot)", h.Magic)
	}
	if h.Version != snapshotVersion {
		return fmt.Errorf("engine snapshot: unsupported format version %d (this build reads version %d)", h.Version, snapshotVersion)
	}
	if fp := s.kb.Fingerprint(); h.KBFingerprint != fp {
		return fmt.Errorf("engine snapshot: KB fingerprint mismatch: snapshot %016x, loaded KB %016x (stale snapshot for different repository content)", h.KBFingerprint, fp)
	}
	var body snapshotBody
	if err := dec.Decode(&body); err != nil {
		return fmt.Errorf("engine snapshot: read body: %w", err)
	}
	n := s.kb.NumEntities()
	for _, group := range body.Profiles {
		for _, e := range group {
			if e < 0 || int(e) >= n {
				return fmt.Errorf("engine snapshot: profile entity id %d out of range [0,%d)", e, n)
			}
		}
	}
	for _, p := range body.Pairs {
		if !p.Kind.Valid() || p.Kind.IsLSH() {
			return fmt.Errorf("engine snapshot: invalid pair-cache kind %d", int(p.Kind))
		}
		if p.A < 0 || int(p.A) >= n || p.B < 0 || int(p.B) >= n || p.A >= p.B {
			return fmt.Errorf("engine snapshot: invalid pair (%d, %d) for repository of %d entities", p.A, p.B, n)
		}
	}

	// Validation passed: install. Profiles are rebuilt from the KB (pure)
	// and re-interned through the loading engine's own shard layout, so the
	// per-KB-shard grouping holds whatever shard count wrote the snapshot.
	for _, group := range body.Profiles {
		for _, e := range group {
			s.Profile(e)
		}
	}
	for _, p := range body.Pairs {
		key := pairKey{kind: p.Kind, a: p.A, b: p.B}
		sh := &s.pairs[key.shard()]
		sh.mu.Lock()
		if _, ok := sh.m[key]; !ok {
			sh.m[key] = p.V
		}
		sh.mu.Unlock()
	}
	return nil
}

// LoadScorer reads a snapshot written by (*Scorer).Save and returns a warm
// engine bound to store. The snapshot must have been computed from the same
// repository content (the KB fingerprint is checked; shard layout may
// differ). On error the returned engine is nil; construct a cold one with
// NewScorer instead.
func LoadScorer(r io.Reader, store kb.Store) (*Scorer, error) {
	s := NewScorer(store)
	if err := s.Restore(r); err != nil {
		return nil, err
	}
	return s, nil
}
