package relatedness

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"aida/internal/kb"
)

// TestScorerMatchesFreshMeasures pins the engine's memoized values to the
// values a one-shot measure computes, for every kind and pair of the
// cluster KB, cold and warm.
func TestScorerMatchesFreshMeasures(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	s := NewScorer(k)
	kinds := []Kind{KindMW, KindKWCS, KindKPCS, KindKORE, KindKORELSHG, KindKORELSHF}
	for pass := 0; pass < 2; pass++ { // pass 0 cold, pass 1 warm
		for _, kind := range kinds {
			fresh := NewMeasure(kind, k)
			for i := range ents {
				for j := range ents {
					got := s.Relatedness(kind, ents[i], ents[j])
					want := fresh.Relatedness(ents[i], ents[j])
					if got != want {
						t.Fatalf("pass %d %v(%d,%d) = %v, fresh measure %v", pass, kind, ents[i], ents[j], got, want)
					}
				}
			}
		}
	}
	if hits, _ := s.CacheStats(); hits == 0 {
		t.Error("warm pass should report cache hits")
	}
}

// TestScorerConcurrentDeterministic hammers one engine from many
// goroutines and checks every observed value against a sequential engine.
// Run under -race this doubles as the shared-scorer race test.
func TestScorerConcurrentDeterministic(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	kinds := []Kind{KindMW, KindKWCS, KindKPCS, KindKORE, KindKORELSHF}
	want := make(map[pairKey]float64)
	ref := NewScorer(k)
	for _, kind := range kinds {
		for i := range ents {
			for j := i + 1; j < len(ents); j++ {
				want[pairKey{pairCacheKind(kind), ents[i], ents[j]}] = ref.Relatedness(kind, ents[i], ents[j])
			}
		}
	}

	s := NewScorer(k)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 300; it++ {
				kind := kinds[rng.Intn(len(kinds))]
				a, b := ents[rng.Intn(len(ents))], ents[rng.Intn(len(ents))]
				got := s.Relatedness(kind, a, b)
				if a == b {
					if got != 1 {
						errs <- "self relatedness != 1"
					}
					continue
				}
				x, y := a, b
				if x > y {
					x, y = y, x
				}
				if got != want[pairKey{pairCacheKind(kind), x, y}] {
					errs <- "concurrent value diverged from sequential"
				}
				if kind.IsLSH() {
					s.Pairs(kind, ents) // exercise shared filter concurrently
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestScorerSharedFilterPairsStable checks that the once-per-KB LSH filter
// yields the same pair set as per-call construction.
func TestScorerSharedFilterPairsStable(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	s := NewScorer(k)
	for _, kind := range []Kind{KindKORELSHG, KindKORELSHF} {
		got := s.Pairs(kind, ents)
		want := NewMeasure(kind, k).Pairs(ents)
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs from shared filter, %d from fresh", kind, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d differs", kind, i)
			}
		}
	}
}

// cosineSortedKeys is the pre-refactor implementation: sums in sorted key
// order over materialized key slices. Kept as the reference the optimized
// cosine is pinned against.
func cosineSortedKeys(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	keys := func(m map[string]float64) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	var dot, na, nb float64
	for _, k := range keys(a) {
		va := a[k]
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, k := range keys(b) {
		vb := b[k]
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	v := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if v > 1 {
		v = 1
	}
	return v
}

// TestCosineMatchesReference pins the optimized cosine bit-for-bit against
// the old sorted-key implementation on vectors whose values are dyadic
// rationals (every accumulation order yields the exact same float there —
// the strongest bit-level pin reordered summation admits), to 1-ulp-scale
// agreement on arbitrary random vectors, and to bit-stable self-determinism
// across repeated calls (the property batch annotation relies on).
func TestCosineMatchesReference(t *testing.T) {
	dyadic := []map[string]float64{
		{},
		{"a": 1},
		{"a": 1, "b": 2, "c": 0.5},
		{"b": 0.25, "c": 4, "d": 8, "e": 0.125},
		{"a": 3, "c": 1.5, "e": 0.75, "f": 2, "g": 16},
	}
	for i, a := range dyadic {
		for j, b := range dyadic {
			got, want := cosine(a, b), cosineSortedKeys(a, b)
			if got != want {
				t.Errorf("dyadic %d×%d: cosine=%v reference=%v", i, j, got, want)
			}
		}
	}

	rng := rand.New(rand.NewSource(99))
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for trial := 0; trial < 200; trial++ {
		a, b := map[string]float64{}, map[string]float64{}
		for _, w := range words {
			if rng.Float64() < 0.7 {
				a[w] = rng.Float64() * 5
			}
			if rng.Float64() < 0.7 {
				b[w] = rng.Float64() * 5
			}
		}
		got, want := cosine(a, b), cosineSortedKeys(a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: cosine=%v reference=%v", trial, got, want)
		}
		// The optimized cosine must be self-deterministic: identical bits
		// on every call despite randomized map iteration order.
		for rep := 0; rep < 8; rep++ {
			if again := cosine(a, b); again != got {
				t.Fatalf("trial %d: non-deterministic cosine: %v vs %v", trial, again, got)
			}
		}
	}
}

func BenchmarkCosine(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	va, vb := map[string]float64{}, map[string]float64{}
	for i := 0; i < 40; i++ {
		va[string(rune('a'+i%26))+string(rune('a'+i/26))] = rng.Float64()
	}
	for i := 20; i < 70; i++ {
		vb[string(rune('a'+i%26))+string(rune('a'+i/26))] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cosine(va, vb)
	}
}
