package relatedness

import (
	"math/rand"
	"sync"
	"testing"

	"aida/internal/kb"
)

// TestEvictionPreservesValuesAndBoundsMemory is the determinism contract
// of the eviction layer: a budgeted engine returns bit-identical values to
// an unbounded one (evicted state is recomputed, never approximated), while
// its accounted profile bytes stay within the budget and the eviction
// counters move.
func TestEvictionPreservesValuesAndBoundsMemory(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	ref := NewScorer(k)
	warmScorer(ref)
	budget := ref.Stats().ProfileBytes / 3
	if budget <= 0 {
		t.Fatal("reference engine interned no profile bytes")
	}

	s := NewScorer(k)
	s.SetMaxProfileBytes(budget)
	if got := s.MaxProfileBytes(); got != budget {
		t.Fatalf("MaxProfileBytes = %d, want %d", got, budget)
	}
	for pass := 0; pass < 2; pass++ {
		for _, kind := range allKinds {
			for i := range ents {
				for j := i + 1; j < len(ents); j++ {
					got := s.Relatedness(kind, ents[i], ents[j])
					want := ref.Relatedness(kind, ents[i], ents[j])
					if got != want {
						t.Fatalf("pass %d: %v(%d,%d) = %v under eviction, want %v", pass, kind, ents[i], ents[j], got, want)
					}
				}
			}
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget of %d bytes (of %d total) triggered no evictions: %+v", budget, ref.Stats().ProfileBytes, st)
	}
	if st.ProfileBytes > budget {
		t.Fatalf("accounted profile bytes %d exceed budget %d", st.ProfileBytes, budget)
	}
	if st.MaxProfileBytes != budget {
		t.Fatalf("Stats.MaxProfileBytes = %d, want %d", st.MaxProfileBytes, budget)
	}
}

// TestEvictionDropsDependentPairs pins that evicting a profile also drops
// the memoized pairs involving that entity: under an extreme budget every
// re-intern of an entity sweeps its earlier pair values, and the
// PairsEvicted counter records it.
func TestEvictionDropsDependentPairs(t *testing.T) {
	k, music, physics := buildClusterKB()
	s := NewScorer(k)
	s.SetMaxProfileBytes(1)
	a, b, c := music[0], music[1], physics[0]
	s.Relatedness(KindKORE, a, b) // caches (a,b); a and b are evicted during compute
	s.Relatedness(KindKORE, a, c) // re-interning a evicts it again → (a,b) swept
	st := s.Stats()
	if st.PairsEvicted == 0 {
		t.Fatalf("re-eviction dropped no dependent pairs: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("extreme budget evicted no profiles: %+v", st)
	}
	// The values themselves never change.
	fresh := NewScorer(k)
	if got, want := s.Relatedness(KindKORE, a, b), fresh.Relatedness(KindKORE, a, b); got != want {
		t.Fatalf("KORE(%d,%d) = %v after pair eviction, want %v", a, b, got, want)
	}
}

// TestSetMaxProfileBytesShrinksImmediately: lowering the budget on a warm
// engine evicts on the spot, not on the next insert.
func TestSetMaxProfileBytesShrinksImmediately(t *testing.T) {
	k, _, _ := buildClusterKB()
	s := NewScorer(k)
	warmScorer(s)
	before := s.Stats()
	if before.Profiles == 0 || before.ProfileBytes == 0 {
		t.Fatalf("warm engine has no profiles: %+v", before)
	}
	budget := before.ProfileBytes / 4
	s.SetMaxProfileBytes(budget)
	after := s.Stats()
	if after.ProfileBytes > budget {
		t.Fatalf("shrink left %d accounted bytes over the %d budget", after.ProfileBytes, budget)
	}
	if after.Evictions == 0 {
		t.Fatalf("shrink evicted nothing: %+v", after)
	}
	// Back to unbounded: nothing further is evicted.
	s.SetMaxProfileBytes(0)
	if got := s.Stats().Evictions; got != after.Evictions {
		t.Fatalf("clearing the budget evicted more profiles (%d → %d)", after.Evictions, got)
	}
}

// TestEvictionConcurrentDeterministic hammers a tightly budgeted engine
// from many goroutines: every observed value must match the sequential
// unbounded engine. Under -race this is the eviction layer's concurrency
// test (CLOCK sweeps racing lookups, pair sweeps racing memoization).
func TestEvictionConcurrentDeterministic(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	kinds := []Kind{KindMW, KindKWCS, KindKPCS, KindKORE, KindKORELSHF}
	want := make(map[pairKey]float64)
	ref := NewScorer(k)
	for _, kind := range kinds {
		for i := range ents {
			for j := i + 1; j < len(ents); j++ {
				want[pairKey{pairCacheKind(kind), ents[i], ents[j]}] = ref.Relatedness(kind, ents[i], ents[j])
			}
		}
	}

	s := NewScorer(k)
	s.SetMaxProfileBytes(ref.Stats().ProfileBytes / 4)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 300; it++ {
				kind := kinds[rng.Intn(len(kinds))]
				a, b := ents[rng.Intn(len(ents))], ents[rng.Intn(len(ents))]
				if a == b {
					continue
				}
				got := s.Relatedness(kind, a, b)
				x, y := a, b
				if x > y {
					x, y = y, x
				}
				if got != want[pairKey{pairCacheKind(kind), x, y}] {
					errs <- "value diverged under concurrent eviction"
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if s.Stats().Evictions == 0 {
		t.Error("tight budget triggered no evictions under concurrent load")
	}
}
