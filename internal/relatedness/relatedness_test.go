package relatedness

import (
	"math"
	"testing"
	"testing/quick"

	"aida/internal/kb"
)

func kp(phrase string, mi float64) kb.Keyphrase {
	return kb.Keyphrase{Phrase: phrase, Words: kb.PhraseWords(phrase), MI: mi}
}

func TestMWBasics(t *testing.T) {
	n := 1000
	a := []kb.EntityID{1, 2, 3, 4, 5}
	b := []kb.EntityID{3, 4, 5, 6, 7}
	c := []kb.EntityID{100, 200}
	if got := MW(a, a, n); !almostEq(got, 1) {
		t.Errorf("self relatedness = %v, want 1", got)
	}
	if got := MW(a, c, n); got != 0 {
		t.Errorf("disjoint in-links must be 0, got %v", got)
	}
	ab := MW(a, b, n)
	if ab <= 0 || ab >= 1 {
		t.Errorf("partial overlap out of (0,1): %v", ab)
	}
}

func TestMWMoreOverlapMoreRelated(t *testing.T) {
	n := 1000
	a := []kb.EntityID{1, 2, 3, 4, 5, 6, 7, 8}
	high := []kb.EntityID{1, 2, 3, 4, 5, 6, 9, 10}
	low := []kb.EntityID{1, 2, 11, 12, 13, 14, 15, 16}
	if MW(a, high, n) <= MW(a, low, n) {
		t.Error("more in-link overlap must mean higher MW")
	}
}

func TestMWSymmetric(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := idsOf(xs)
		b := idsOf(ys)
		return almostEq(MW(a, b, 500), MW(b, a, 500))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func idsOf(xs []uint8) []kb.EntityID {
	seen := map[kb.EntityID]bool{}
	var out []kb.EntityID
	for _, x := range xs {
		id := kb.EntityID(x)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	// sort
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestKOREIdenticalSets(t *testing.T) {
	set := []kb.Keyphrase{kp("English rock guitarist", 0.9), kp("hard rock", 0.5)}
	got := KORE(set, set, UnitWeighter)
	if got <= 0.4 {
		t.Errorf("identical keyphrase sets should be highly related, got %v", got)
	}
}

func TestKOREDisjointSets(t *testing.T) {
	a := []kb.Keyphrase{kp("English rock guitarist", 0.9)}
	b := []kb.Keyphrase{kp("quantum flux capacitor", 0.9)}
	if got := KORE(a, b, UnitWeighter); got != 0 {
		t.Errorf("disjoint sets must be 0, got %v", got)
	}
}

func TestKOREPartialOverlapOrdering(t *testing.T) {
	// "English rock guitarist" should be closer to "English guitarist"
	// than to "German president" (Sec. 4.3.3 motivating example).
	base := []kb.Keyphrase{kp("English rock guitarist", 0.8)}
	near := []kb.Keyphrase{kp("English guitarist", 0.8)}
	far := []kb.Keyphrase{kp("German president", 0.8)}
	if KORE(base, near, UnitWeighter) <= KORE(base, far, UnitWeighter) {
		t.Error("partial overlap ordering violated")
	}
}

func TestKORESymmetric(t *testing.T) {
	a := []kb.Keyphrase{kp("English rock guitarist", 0.7), kp("Gibson guitar", 0.9)}
	b := []kb.Keyphrase{kp("hard rock band", 0.6), kp("rock guitarist", 0.4)}
	if !almostEq(KORE(a, b, UnitWeighter), KORE(b, a, UnitWeighter)) {
		t.Error("KORE must be symmetric")
	}
}

func TestKORESquaredPenalty(t *testing.T) {
	// A one-of-three-word overlap contributes PO² ≈ (1/5)² of the weight,
	// strictly less than proportionally.
	a := []kb.Keyphrase{kp("alpha beta gamma", 1)}
	partial := []kb.Keyphrase{kp("alpha delta epsilon", 1)}
	got := KORE(a, partial, UnitWeighter)
	po := 1.0 / 5.0 // |∩|=1, |∪|=5
	want := po * po * 1.0 / 2.0
	if !almostEq(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestKOREWeighting(t *testing.T) {
	// Overlap on a high-IDF word should count more than on a low-IDF word.
	w := func(word string) float64 {
		if word == "rare" {
			return 5
		}
		return 1
	}
	a := []kb.Keyphrase{kp("rare common", 1)}
	bRare := []kb.Keyphrase{kp("rare other", 1)}
	bCommon := []kb.Keyphrase{kp("common other", 1)}
	if KORE(a, bRare, w) <= KORE(a, bCommon, w) {
		t.Error("high-weight word overlap must dominate")
	}
}

func TestKeywordCosine(t *testing.T) {
	a := []kb.Keyphrase{kp("English rock guitarist", 0.8)}
	b := []kb.Keyphrase{kp("rock guitarist", 0.8)}
	c := []kb.Keyphrase{kp("quantum flux", 0.8)}
	if KeywordCosine(a, a, UnitWeighter) < 0.999 {
		t.Error("self cosine must be 1")
	}
	if KeywordCosine(a, b, UnitWeighter) <= KeywordCosine(a, c, UnitWeighter) {
		t.Error("cosine ordering violated")
	}
}

func TestKeyphraseCosineAtomic(t *testing.T) {
	// KPCS treats phrases atomically: a partial word overlap scores 0.
	a := []kb.Keyphrase{kp("English rock guitarist", 0.8)}
	b := []kb.Keyphrase{kp("English guitarist", 0.8)}
	if got := KeyphraseCosine(a, b); got != 0 {
		t.Errorf("KPCS partial overlap should be 0, got %v", got)
	}
	if got := KeyphraseCosine(a, a); !almostEq(got, 1) {
		t.Errorf("KPCS self similarity should be 1, got %v", got)
	}
}

// buildClusterKB creates a KB with two topical clusters to test the bound
// Measure and the LSH filter end to end.
func buildClusterKB() (*kb.KB, []kb.EntityID, []kb.EntityID) {
	b := kb.NewBuilder()
	var music, physics []kb.EntityID
	musicPhrases := []string{"rock guitarist", "hard rock band", "studio album", "electric guitar", "rock tour"}
	physicsPhrases := []string{"quantum theory", "particle physics", "nobel prize physics", "quantum field", "particle collider"}
	for i := 0; i < 8; i++ {
		m := b.AddEntity("Musician "+string(rune('A'+i)), "music", "person")
		p := b.AddEntity("Physicist "+string(rune('A'+i)), "science", "person")
		music = append(music, m)
		physics = append(physics, p)
		for j := 0; j < 3; j++ {
			b.AddKeyphrase(m, musicPhrases[(i+j)%len(musicPhrases)])
			b.AddKeyphrase(p, physicsPhrases[(i+j)%len(physicsPhrases)])
		}
	}
	// Dense intra-cluster links.
	for i := range music {
		for j := range music {
			if i != j {
				b.AddLink(music[i], music[j])
				b.AddLink(physics[i], physics[j])
			}
		}
	}
	return b.Build(), music, physics
}

func TestMeasureClusterSeparation(t *testing.T) {
	k, music, physics := buildClusterKB()
	for _, kind := range []Kind{KindMW, KindKWCS, KindKPCS, KindKORE} {
		m := NewMeasure(kind, k)
		intra := m.Relatedness(music[0], music[1])
		inter := m.Relatedness(music[0], physics[0])
		if intra <= inter {
			t.Errorf("%v: intra-cluster %v not above inter-cluster %v", kind, intra, inter)
		}
	}
}

func TestMeasureSelfRelatedness(t *testing.T) {
	k, music, _ := buildClusterKB()
	for _, kind := range []Kind{KindMW, KindKWCS, KindKPCS, KindKORE} {
		m := NewMeasure(kind, k)
		if got := m.Relatedness(music[0], music[0]); got != 1 {
			t.Errorf("%v: self relatedness = %v", kind, got)
		}
	}
}

func TestExactPairsComplete(t *testing.T) {
	k, music, physics := buildClusterKB()
	m := NewMeasure(KindKORE, k)
	ents := append(append([]kb.EntityID{}, music...), physics...)
	pairs := m.Pairs(ents)
	want := len(ents) * (len(ents) - 1) / 2
	if len(pairs) != want {
		t.Fatalf("exact measure must enumerate all %d pairs, got %d", want, len(pairs))
	}
}

func TestLSHFilterKeepsClusterPairs(t *testing.T) {
	k, music, physics := buildClusterKB()
	m := NewMeasure(KindKORELSHG, k)
	ents := append(append([]kb.EntityID{}, music...), physics...)
	pairs := m.Pairs(ents)
	inCluster := 0
	for _, p := range pairs {
		da := k.Entity(p[0]).Domain
		db := k.Entity(p[1]).Domain
		if da == db {
			inCluster++
		}
	}
	if inCluster == 0 {
		t.Fatal("LSH-G dropped all intra-cluster pairs")
	}
}

func TestLSHFilterPrunes(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	exact := NewMeasure(KindKORE, k)
	fast := NewMeasure(KindKORELSHF, k)
	if len(fast.Pairs(ents)) >= len(exact.Pairs(ents)) {
		t.Error("LSH-F should prune at least some pairs")
	}
}

func TestLSHPairsDeterministic(t *testing.T) {
	k, music, physics := buildClusterKB()
	ents := append(append([]kb.EntityID{}, music...), physics...)
	m1 := NewMeasure(KindKORELSHG, k)
	m2 := NewMeasure(KindKORELSHG, k)
	p1 := m1.Pairs(ents)
	p2 := m2.Pairs(ents)
	if len(p1) != len(p2) {
		t.Fatalf("non-deterministic pair counts: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestKindString(t *testing.T) {
	if KindKORELSHG.String() != "KORE-LSH-G" || KindMW.String() != "MW" {
		t.Error("kind names wrong")
	}
	if !KindKORELSHF.IsLSH() || KindKORE.IsLSH() {
		t.Error("IsLSH wrong")
	}
}

func BenchmarkKORE(b *testing.B) {
	k, music, _ := buildClusterKB()
	m := NewMeasure(KindKORE, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Relatedness(music[0], music[1])
	}
}

func BenchmarkMW(b *testing.B) {
	k, music, _ := buildClusterKB()
	m := NewMeasure(KindMW, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Relatedness(music[0], music[1])
	}
}

func BenchmarkLSHPairs(b *testing.B) {
	k, music, physics := buildClusterKB()
	m := NewMeasure(KindKORELSHF, k)
	ents := append(append([]kb.EntityID{}, music...), physics...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Pairs(ents)
	}
}
