package kb

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Remote KB hosting, server side. A StoreHost serves one shard's slice of
// a Store's read surface over HTTP so a fleet of processes can together
// hold a KB too big for one machine. The protocol carries raw dictionary
// rows (entity + anchor count), never priors: the remote router
// materializes candidates through the same candidatesFrom arithmetic as
// the in-process KB, which is what keeps fleet output byte-identical.
//
// Every response carries the serving store's content fingerprint in the
// X-Aida-Kb-Fingerprint header; routers reject responses whose hash does
// not match the fleet's (a replica serving different KB content must never
// contribute bytes to an annotation).
//
// The wire format is gob: float64 values (IDF tables, keyphrase weights)
// round-trip bit-exactly, mirroring the KB's own snapshot encoding.

// StorePathPrefix is the URL prefix the store endpoints live under, on
// both the shard host and the dialing router.
const StorePathPrefix = "/v1/store"

// FingerprintHeader carries the serving store's content hash (16 hex
// digits) on every store response.
const FingerprintHeader = "X-Aida-Kb-Fingerprint"

// gobContentType is the media type of the gob request/response bodies.
const gobContentType = "application/x-gob"

// maxHostBatch bounds the ids/surfaces accepted per batched request; a
// router never needs more per round trip, so anything larger is a bug.
const maxHostBatch = 1 << 16

// IDFTabler is the optional Store extension a shard host requires: the
// global IDF side tables, enumerable so they can be replicated to remote
// routers at dial time (exactly how ShardedKB replicates them in-process).
type IDFTabler interface {
	IDFTables() (phrase, word map[string]float64)
}

// IDFTables returns the KB's global IDF side tables. The returned maps are
// shared and must not be modified.
func (k *KB) IDFTables() (phrase, word map[string]float64) {
	return k.phraseIDF, k.wordIDF
}

// IDFTables returns the router-replicated global IDF side tables. The
// returned maps are shared and must not be modified.
func (s *ShardedKB) IDFTables() (phrase, word map[string]float64) {
	return s.phraseIDF, s.wordIDF
}

// HostFaulter is an optional Store extension consulted by StoreHost before
// serving each operation. A non-nil error fails the request with status
// 500; implementations may also sleep (latency, hangs) before returning.
// The production stores never implement it — it exists so conformance
// harnesses (internal/kbtest.FaultStore) can inject faults into a real
// shard host without a second HTTP stack.
type HostFaulter interface {
	HostFault(ctx context.Context, op string) error
}

// NameRow is one dictionary row on the wire: a surface refers to Entity
// with Count anchor occurrences. Rows are ordered by ascending entity id —
// the dictionary's own layout — and the router recomputes priors from the
// counts, so remote candidates are byte-identical to local ones.
type NameRow struct {
	Entity EntityID
	Count  int
}

// candidatesFromRows materializes candidates from wire rows with the exact
// arithmetic of the unsharded KB (same integer total, same divisions, same
// comparator — see candidatesFrom).
func candidatesFromRows(rows []NameRow) []Candidate {
	if len(rows) == 0 {
		return nil
	}
	entries := make([]nameEntry, len(rows))
	for i, r := range rows {
		entries[i] = nameEntry{Entity: r.Entity, Count: r.Count}
	}
	return candidatesFrom(entries)
}

// Wire shapes of the store protocol (gob-encoded).

type wireMeta struct {
	Fingerprint uint64
	NumEntities int
	Shard       int // shard index this host serves
	Shards      int // fleet width
}

type wireIDsRequest struct{ IDs []EntityID }

type wireEntities struct{ Entities []Entity }

type wireSurfacesRequest struct{ Surfaces []string }

type wireRows struct{ Rows [][]NameRow }

type wireNames struct {
	Names []string
	More  bool
}

type wireIDF struct{ Phrase, Word map[string]float64 }

type wireEntityByName struct {
	ID EntityID
	OK bool
}

// StoreHost serves shard `shard` of a fleet of `shards` processes from any
// Store holding the repository content. Ownership is enforced, not
// assumed: requests for entities or dictionary rows the shard does not own
// are rejected, so a mis-wired shard map fails loudly instead of serving
// misrouted data.
type StoreHost struct {
	store  Store
	shard  int
	shards int
	names  []string // sorted dictionary keys owned by this shard
	idfP   map[string]float64
	idfW   map[string]float64
}

// NewStoreHost wraps a store as shard `shard` of `shards`. The store must
// implement IDFTabler (both in-process stores do) so routers can replicate
// the global IDF tables.
func NewStoreHost(s Store, shard, shards int) (*StoreHost, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("kb: invalid shard host position %d/%d", shard, shards)
	}
	tab, ok := s.(IDFTabler)
	if !ok {
		return nil, fmt.Errorf("kb: store %T cannot host shards: it does not expose IDF tables", s)
	}
	h := &StoreHost{store: s, shard: shard, shards: shards}
	h.idfP, h.idfW = tab.IDFTables()
	for _, name := range s.Names() {
		if NameShard(name, shards) == shard {
			h.names = append(h.names, name)
		}
	}
	return h, nil
}

// Shard returns the (index, fleet width) position this host serves.
func (h *StoreHost) Shard() (shard, shards int) { return h.shard, h.shards }

// NumNames reports how many dictionary rows this shard owns (for logs and
// placement planning).
func (h *StoreHost) NumNames() int { return len(h.names) }

// Handler returns the HTTP handler of the store read surface, rooted at
// StorePathPrefix. Mount it on any mux that forwards /v1/store/* intact.
func (h *StoreHost) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+StorePathPrefix+"/meta", h.op("meta", h.handleMeta))
	mux.HandleFunc("POST "+StorePathPrefix+"/entities", h.op("entities", h.handleEntities))
	mux.HandleFunc("GET "+StorePathPrefix+"/entity-by-name", h.op("entity-by-name", h.handleEntityByName))
	mux.HandleFunc("POST "+StorePathPrefix+"/rows", h.op("rows", h.handleRows))
	mux.HandleFunc("GET "+StorePathPrefix+"/names", h.op("names", h.handleNames))
	mux.HandleFunc("GET "+StorePathPrefix+"/idf", h.op("idf", h.handleIDF))
	return mux
}

// op wraps a store endpoint with the fault hook (conformance harnesses
// inject latency, hangs and transient errors here) and the fingerprint
// header every response must carry.
func (h *StoreHost) op(name string, fn func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if f, ok := h.store.(HostFaulter); ok {
			if err := f.HostFault(r.Context(), name); err != nil {
				http.Error(w, "store fault: "+err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set(FingerprintHeader, strconv.FormatUint(h.store.Fingerprint(), 16))
		fn(w, r)
	}
}

// respond gob-encodes out as the response body. Encoding into a buffer
// first keeps a marshal failure a clean 500 instead of a torn body.
func (h *StoreHost) respond(w http.ResponseWriter, out any) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", gobContentType)
	w.Write(buf.Bytes())
}

// decode reads a gob request body under the batch cap.
func decode[T any](w http.ResponseWriter, r *http.Request, v *T) bool {
	if err := gob.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(v); err != nil {
		http.Error(w, "malformed request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (h *StoreHost) handleMeta(w http.ResponseWriter, r *http.Request) {
	h.respond(w, wireMeta{
		Fingerprint: h.store.Fingerprint(),
		NumEntities: h.store.NumEntities(),
		Shard:       h.shard,
		Shards:      h.shards,
	})
}

func (h *StoreHost) handleEntities(w http.ResponseWriter, r *http.Request) {
	var req wireIDsRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) > maxHostBatch {
		http.Error(w, fmt.Sprintf("batch of %d ids exceeds the limit of %d", len(req.IDs), maxHostBatch), http.StatusBadRequest)
		return
	}
	out := wireEntities{Entities: make([]Entity, len(req.IDs))}
	for i, id := range req.IDs {
		if id < 0 || int(id) >= h.store.NumEntities() {
			http.Error(w, fmt.Sprintf("entity id %d out of range [0,%d)", id, h.store.NumEntities()), http.StatusBadRequest)
			return
		}
		if EntityShard(id, h.shards) != h.shard {
			http.Error(w, fmt.Sprintf("entity %d belongs to shard %d, not %d (misrouted request)",
				id, EntityShard(id, h.shards), h.shard), http.StatusBadRequest)
			return
		}
		out.Entities[i] = *h.store.Entity(id)
	}
	h.respond(w, out)
}

func (h *StoreHost) handleEntityByName(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	id, ok := h.store.EntityByName(name)
	// Claim only entities this shard owns; the router fans out in shard
	// order, so exactly the owning host answers — the same semantics as
	// ShardedKB.EntityByName.
	if ok && EntityShard(id, h.shards) != h.shard {
		ok = false
	}
	if !ok {
		id = 0
	}
	h.respond(w, wireEntityByName{ID: id, OK: ok})
}

func (h *StoreHost) handleRows(w http.ResponseWriter, r *http.Request) {
	var req wireSurfacesRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Surfaces) > maxHostBatch {
		http.Error(w, fmt.Sprintf("batch of %d surfaces exceeds the limit of %d", len(req.Surfaces), maxHostBatch), http.StatusBadRequest)
		return
	}
	out := wireRows{Rows: make([][]NameRow, len(req.Surfaces))}
	for i, key := range req.Surfaces {
		if NameShard(key, h.shards) != h.shard {
			http.Error(w, fmt.Sprintf("surface %q belongs to shard %d, not %d (misrouted request)",
				key, NameShard(key, h.shards), h.shard), http.StatusBadRequest)
			return
		}
		out.Rows[i] = h.rows(key)
	}
	h.respond(w, out)
}

// rows reconstructs the raw dictionary row of a normalized surface from
// the store's candidate surface (counts are preserved verbatim; priors are
// derived, so they never travel). Rows are ordered by ascending entity id,
// the dictionary's own layout.
func (h *StoreHost) rows(key string) []NameRow {
	cands := h.store.Candidates(key)
	if len(cands) == 0 {
		return nil
	}
	rows := make([]NameRow, len(cands))
	for i, c := range cands {
		rows[i] = NameRow{Entity: c.Entity, Count: c.Count}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Entity < rows[j].Entity })
	return rows
}

func (h *StoreHost) handleNames(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := maxHostBatch
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("invalid limit %q", raw), http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	// Resume strictly after the cursor; names are sorted, so the cursor is
	// just the last name of the previous page.
	start := sort.SearchStrings(h.names, q.Get("after"))
	if after := q.Get("after"); start < len(h.names) && h.names[start] == after {
		start++
	}
	end := start + limit
	if end > len(h.names) {
		end = len(h.names)
	}
	h.respond(w, wireNames{Names: h.names[start:end], More: end < len(h.names)})
}

func (h *StoreHost) handleIDF(w http.ResponseWriter, r *http.Request) {
	h.respond(w, wireIDF{Phrase: h.idfP, Word: h.idfW})
}
