// Package kb implements the knowledge base substrate of the dissertation
// (Sec. 2.3): an entity repository E, a name–entity dictionary D harvested
// from titles, redirects, disambiguation pages and link anchors, a link
// graph between entities, and per-entity keyphrase features F with the
// statistical weights AIDA and KORE consume (keyword NPMI per Eq. 3.1–3.3,
// keyphrase µ per Eq. 4.1, global IDF per Eq. 3.5, anchor-based popularity
// prior per Sec. 3.3.3).
//
// A KB is built once with a Builder and is immutable and safe for concurrent
// reads afterwards.
package kb

import (
	"fmt"
	"sort"
	"strings"

	"aida/internal/ner"
	"aida/internal/textstat"
	"aida/internal/tokenizer"
)

// EntityID identifies an entity in the repository.
type EntityID int32

// NoEntity marks a mention whose true entity is out of the knowledge base
// (the OOE / emerging-entity label).
const NoEntity EntityID = -1

// Keyphrase is a salient phrase describing an entity, with its weights.
// The JSON tags define its wire form inside a Delta (the live-update
// endpoint); the in-process pipeline never serializes it as JSON.
type Keyphrase struct {
	Phrase string   `json:"phrase"`          // surface form, e.g. "English rock guitarist"
	Words  []string `json:"words,omitempty"` // lower-cased content words of the phrase
	MI     float64  `json:"mi"`              // µ weight of the phrase w.r.t. the entity (Eq. 4.1)
	IDF    float64  `json:"idf"`             // global phrase IDF (Eq. 3.5)
}

// Entity is one canonical entity of the repository.
type Entity struct {
	ID         EntityID
	Name       string   // canonical name, unique within the KB
	Domain     string   // topical domain, e.g. "music" (YAGO-like class)
	Types      []string // semantic types
	InLinks    []EntityID
	OutLinks   []EntityID
	Keyphrases []Keyphrase
	// KeywordNPMI holds the entity-specific keyword weights of Eq. 3.1;
	// keywords with non-positive NPMI are absent (they are discarded for
	// NED, Sec. 3.3.4).
	KeywordNPMI map[string]float64
}

// nameEntry is one dictionary row: this name refers to this entity with the
// given anchor-occurrence count.
type nameEntry struct {
	Entity EntityID
	Count  int
}

// Candidate is a dictionary lookup result with its popularity prior.
type Candidate struct {
	Entity EntityID
	Prior  float64 // P(entity | name), from anchor counts
	Count  int
}

// KB is the immutable knowledge base.
type KB struct {
	entities  []Entity
	byName    map[string]EntityID    // canonical name → id
	dict      map[string][]nameEntry // normalized surface → entries
	cands     map[string][]Candidate // normalized surface → materialized candidates
	phraseIDF map[string]float64
	wordIDF   map[string]float64

	fp fingerprintOnce // lazily computed content hash
}

// NumEntities returns |E|.
func (k *KB) NumEntities() int { return len(k.entities) }

// Entity returns the entity with the given id. It panics on ids outside the
// repository; NoEntity is not a valid argument.
func (k *KB) Entity(id EntityID) *Entity { return &k.entities[id] }

// Entities returns a read-only view of the repository.
func (k *KB) Entities() []Entity { return k.entities }

// EntityByName looks up an entity by its canonical name.
func (k *KB) EntityByName(name string) (EntityID, bool) {
	id, ok := k.byName[name]
	return id, ok
}

// NormalizeName maps a surface form to its dictionary key, following the
// case rules of Sec. 3.3.2 (names of ≤3 characters stay case-sensitive).
func NormalizeName(surface string) string { return ner.Normalized(surface) }

// HasName implements ner.Lexicon.
func (k *KB) HasName(normalized string) bool {
	_, ok := k.dict[normalized]
	return ok
}

// Candidates returns the candidate entities for a surface form, sorted by
// descending prior (ties broken by id for determinism). A nil slice means
// the dictionary has no entry and the mention trivially refers to an OOE.
// The returned slice is shared and must not be modified: priors are
// materialized once at construction time (via candidatesFrom, so the bytes
// match the historical per-call computation), which takes the dictionary
// lookup off the annotate hot path's allocation budget.
func (k *KB) Candidates(surface string) []Candidate {
	return k.cands[NormalizeName(surface)]
}

// sortCandidates orders candidates by descending prior, ties by ascending
// id — the canonical candidate order of every Store implementation.
func sortCandidates(out []Candidate) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prior != out[j].Prior {
			return out[i].Prior > out[j].Prior
		}
		return out[i].Entity < out[j].Entity
	})
}

// Prior returns P(entity|surface) from the anchor dictionary, or 0 when the
// pair is unknown.
func (k *KB) Prior(surface string, e EntityID) float64 {
	for _, c := range k.Candidates(surface) {
		if c.Entity == e {
			return c.Prior
		}
	}
	return 0
}

// Names returns all dictionary keys (normalized names), sorted.
func (k *KB) Names() []string {
	out := make([]string, 0, len(k.dict))
	for n := range k.dict {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PhraseIDF returns the global IDF of a keyphrase (Eq. 3.5).
func (k *KB) PhraseIDF(phrase string) float64 { return lowerIDF(k.phraseIDF, phrase) }

// WordIDF returns the global IDF of a keyword.
func (k *KB) WordIDF(word string) float64 { return lowerIDF(k.wordIDF, word) }

// lowerIDF is the shared lower-cased IDF table lookup of every Store
// implementation.
func lowerIDF(table map[string]float64, key string) float64 {
	return table[strings.ToLower(key)]
}

// KeywordWeight returns the NPMI weight of word for entity e, or 0 when
// the entity has no specific weight (callers that want the Sec. 3.3.4
// global-IDF weighting use WordIDF as the fallback themselves).
func (k *KB) KeywordWeight(e EntityID, word string) float64 {
	ent := &k.entities[e]
	if w, ok := ent.KeywordNPMI[word]; ok {
		return w
	}
	return 0
}

// IntersectSortedSize counts the common elements of two sorted id slices.
func IntersectSortedSize(a, b []EntityID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// PhraseWords lower-cases and stopword-filters the words of a phrase; this
// is the canonical phrase→word mapping used for all keyphrase features.
func PhraseWords(phrase string) []string {
	return tokenizer.ContentWords(phrase)
}

// Builder assembles a KB.
type Builder struct {
	entities []Entity
	byName   map[string]EntityID
	dict     map[string]map[EntityID]int
	phrases  map[EntityID][]string
	links    map[EntityID][]EntityID // out-links
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		byName:  make(map[string]EntityID),
		dict:    make(map[string]map[EntityID]int),
		phrases: make(map[EntityID][]string),
		links:   make(map[EntityID][]EntityID),
	}
}

// AddEntity registers a new entity with its canonical name (which also
// becomes a dictionary entry) and returns its id.
func (b *Builder) AddEntity(name, domain string, types ...string) EntityID {
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("kb: duplicate entity name %q", name))
	}
	id := EntityID(len(b.entities))
	b.entities = append(b.entities, Entity{ID: id, Name: name, Domain: domain, Types: types})
	b.byName[name] = id
	b.AddName(name, id, 1)
	return id
}

// AddName adds a dictionary entry: surface → entity, observed count times
// (anchor occurrences). Counts accumulate across calls.
func (b *Builder) AddName(surface string, e EntityID, count int) {
	key := NormalizeName(surface)
	m := b.dict[key]
	if m == nil {
		m = make(map[EntityID]int)
		b.dict[key] = m
	}
	m[e] += count
}

// AddLink records a directed link between entities (Wikipedia-style).
func (b *Builder) AddLink(src, dst EntityID) {
	if src == dst {
		return
	}
	b.links[src] = append(b.links[src], dst)
}

// AddKeyphrase attaches a keyphrase to an entity. Duplicates are merged at
// Build time.
func (b *Builder) AddKeyphrase(e EntityID, phrase string) {
	b.phrases[e] = append(b.phrases[e], phrase)
}

// Build computes link sets, IDF and MI weights, and freezes the KB.
func (b *Builder) Build() *KB {
	n := len(b.entities)
	k := &KB{
		entities:  b.entities,
		byName:    b.byName,
		dict:      make(map[string][]nameEntry, len(b.dict)),
		phraseIDF: make(map[string]float64),
		wordIDF:   make(map[string]float64),
	}
	for key, m := range b.dict {
		entries := make([]nameEntry, 0, len(m))
		for e, c := range m {
			entries = append(entries, nameEntry{Entity: e, Count: c})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Entity < entries[j].Entity })
		k.dict[key] = entries
	}
	k.cands = precomputeCandidates(k.dict)

	// Link sets.
	inLinks := make(map[EntityID][]EntityID)
	for src, dsts := range b.links {
		dsts = dedupIDs(dsts)
		k.entities[src].OutLinks = dsts
		for _, d := range dsts {
			inLinks[d] = append(inLinks[d], src)
		}
	}
	for id := range k.entities {
		k.entities[id].InLinks = dedupIDs(inLinks[EntityID(id)])
	}

	// Per-entity keyphrase sets (deduplicated, lower-case keyed).
	entPhrases := make([][]string, n)
	phraseDocs := make(map[string][]EntityID) // lower phrase → entities having it
	wordDocs := make(map[string][]EntityID)   // word → entities having it in any phrase
	for id := 0; id < n; id++ {
		seen := map[string]bool{}
		seenWord := map[string]bool{}
		for _, p := range b.phrases[EntityID(id)] {
			lp := strings.ToLower(p)
			if seen[lp] {
				continue
			}
			seen[lp] = true
			entPhrases[id] = append(entPhrases[id], p)
			phraseDocs[lp] = append(phraseDocs[lp], EntityID(id))
			for _, w := range PhraseWords(p) {
				if !seenWord[w] {
					seenWord[w] = true
					wordDocs[w] = append(wordDocs[w], EntityID(id))
				}
			}
		}
	}

	// Global IDF weights.
	for lp, docs := range phraseDocs {
		k.phraseIDF[lp] = textstat.IDF(float64(n), float64(len(docs)))
	}
	for w, docs := range wordDocs {
		k.wordIDF[w] = textstat.IDF(float64(n), float64(len(docs)))
	}

	// Entity-specific weights via the superdocument model (Sec. 3.3.4,
	// 4.3.1): the superdocument of e is e plus all entities linking to e.
	fN := float64(n)
	for id := 0; id < n; id++ {
		ent := &k.entities[id]
		super := superdoc(EntityID(id), ent.InLinks)
		pe := float64(len(super)) / fN
		ent.KeywordNPMI = make(map[string]float64)
		words := map[string]bool{}
		for _, p := range entPhrases[id] {
			lp := strings.ToLower(p)
			pw := PhraseWords(p)
			// µ weight for the phrase from the 2×2 contingency table of
			// "doc is in superdoc(e)" × "doc has phrase".
			docs := phraseDocs[lp]
			n11 := float64(IntersectSortedSize(docs, super))
			n10 := float64(len(super)) - n11
			n01 := float64(len(docs)) - n11
			n00 := fN - n11 - n10 - n01
			ent.Keyphrases = append(ent.Keyphrases, Keyphrase{
				Phrase: p,
				Words:  pw,
				MI:     textstat.ContingencyMI(n11, n10, n01, n00),
				IDF:    k.phraseIDF[lp],
			})
			for _, w := range pw {
				words[w] = true
			}
		}
		for w := range words {
			docs := wordDocs[w]
			joint := float64(IntersectSortedSize(docs, super)) / fN
			pk := float64(len(docs)) / fN
			if npmi := textstat.NPMI(joint, pe, pk); npmi > 0 {
				ent.KeywordNPMI[w] = npmi
			}
		}
	}
	return k
}

// superdoc returns {e} ∪ IN(e) as a sorted slice.
func superdoc(e EntityID, in []EntityID) []EntityID {
	out := make([]EntityID, 0, len(in)+1)
	out = append(out, in...)
	out = append(out, e)
	return dedupIDs(out)
}

func dedupIDs(ids []EntityID) []EntityID {
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
