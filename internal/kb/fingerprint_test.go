package kb

import (
	"bytes"
	"testing"
)

// TestFingerprintShardLayoutIndependent pins the portability contract of
// engine snapshots: the fingerprint hashes repository content through the
// Store read surface, so the unsharded KB and every router over it agree.
func TestFingerprintShardLayoutIndependent(t *testing.T) {
	k := buildShardKB(t)
	want := k.Fingerprint()
	if want == 0 {
		t.Fatal("fingerprint of a non-empty KB is 0")
	}
	for _, n := range []int{1, 2, 3, 4, 8} {
		if got := Shard(k, n).Fingerprint(); got != want {
			t.Fatalf("Shard(k, %d).Fingerprint() = %016x, want %016x", n, got, want)
		}
	}
	// Memoized: repeated calls agree.
	if again := k.Fingerprint(); again != want {
		t.Fatalf("fingerprint not stable: %016x vs %016x", again, want)
	}
}

// TestFingerprintSurvivesPersistRoundTrip: a loaded snapshot carries the
// same content, so it must carry the same fingerprint.
func TestFingerprintSurvivesPersistRoundTrip(t *testing.T) {
	k := buildShardKB(t)
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Fingerprint(), k.Fingerprint(); got != want {
		t.Fatalf("fingerprint after Save/Load = %016x, want %016x", got, want)
	}
}

// TestFingerprintDistinguishesContent: repositories differing in any
// scored ingredient — an extra link, a different keyphrase, a renamed
// entity, an extra dictionary row — fingerprint differently.
func TestFingerprintDistinguishesContent(t *testing.T) {
	base := func() *Builder {
		b := NewBuilder()
		a := b.AddEntity("Alpha", "music", "person")
		c := b.AddEntity("Beta", "science", "person")
		b.AddKeyphrase(a, "rock guitarist")
		b.AddKeyphrase(c, "quantum theory")
		b.AddLink(a, c)
		return b
	}
	ref := base().Build().Fingerprint()

	variants := map[string]func() *KB{
		"extra-link": func() *KB {
			b := base()
			b.AddLink(1, 0)
			return b.Build()
		},
		"extra-phrase": func() *KB {
			b := base()
			b.AddKeyphrase(0, "studio album")
			return b.Build()
		},
		"extra-entity": func() *KB {
			b := base()
			b.AddEntity("Gamma", "misc")
			return b.Build()
		},
		"extra-name": func() *KB {
			b := base()
			b.AddName("The Alpha", 0, 3)
			return b.Build()
		},
		"different-count": func() *KB {
			b := base()
			b.AddName("Alpha", 1, 2) // shifts priors on an existing row
			return b.Build()
		},
	}
	for name, build := range variants {
		if got := build().Fingerprint(); got == ref {
			t.Errorf("%s: fingerprint collides with the base repository (%016x)", name, got)
		}
	}
	// Rebuilding identical content reproduces the fingerprint.
	if got := base().Build().Fingerprint(); got != ref {
		t.Fatalf("identical content fingerprints differ: %016x vs %016x", got, ref)
	}
}
