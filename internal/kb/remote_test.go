package kb

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startFleet boots one httptest server per shard×replica, each serving the
// KB through a real StoreHost handler, optionally wrapped by per-endpoint
// middleware (index 0 is the primary). It returns the shard map of the
// fleet; servers close with the test.
func startFleet(t testing.TB, k Store, shards, replicas int, wrap func(shard, replica int, h http.Handler) http.Handler) ShardMap {
	t.Helper()
	var m ShardMap
	for shard := 0; shard < shards; shard++ {
		host, err := NewStoreHost(k, shard, shards)
		if err != nil {
			t.Fatalf("NewStoreHost(%d/%d): %v", shard, shards, err)
		}
		var eps ShardEndpoints
		for rep := 0; rep < replicas; rep++ {
			h := http.Handler(host.Handler())
			if wrap != nil {
				h = wrap(shard, rep, h)
			}
			srv := httptest.NewServer(h)
			t.Cleanup(srv.Close)
			if rep == 0 {
				eps.Primary = srv.URL
			} else {
				eps.Replicas = append(eps.Replicas, srv.URL)
			}
		}
		m.Shards = append(m.Shards, eps)
	}
	return m
}

// dialFleet dials with test-friendly defaults (no hedging, no backoff so
// failures are deterministic and fast unless a test opts in).
func dialFleet(t testing.TB, m ShardMap, opts RemoteOptions) *RemoteStore {
	t.Helper()
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = -1
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = -1
	}
	r, err := DialFleet(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	return r
}

// normEntity deep-copies an entity with empty slices/maps lowered to nil:
// gob does not distinguish nil from empty, and neither does any consumer,
// so conformance compares the canonical form.
func normEntity(e *Entity) Entity {
	out := *e
	if len(out.Types) == 0 {
		out.Types = nil
	}
	if len(out.InLinks) == 0 {
		out.InLinks = nil
	}
	if len(out.OutLinks) == 0 {
		out.OutLinks = nil
	}
	if len(out.Keyphrases) == 0 {
		out.Keyphrases = nil
	}
	if len(out.KeywordNPMI) == 0 {
		out.KeywordNPMI = nil
	}
	return out
}

func TestRemoteStoreConformance(t *testing.T) {
	k := buildShardKB(t)
	for _, shards := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			m := startFleet(t, k, shards, 1, nil)
			r := dialFleet(t, m, RemoteOptions{})

			if got := r.NumShards(); got != shards {
				t.Fatalf("NumShards = %d, want %d", got, shards)
			}
			if got := r.NumEntities(); got != k.NumEntities() {
				t.Fatalf("NumEntities = %d, want %d", got, k.NumEntities())
			}
			if got := r.Fingerprint(); got != k.Fingerprint() {
				t.Fatalf("Fingerprint = %016x, want %016x", got, k.Fingerprint())
			}
			if got, want := r.Names(), k.Names(); !reflect.DeepEqual(got, want) {
				t.Fatalf("Names diverge:\n got %v\nwant %v", got, want)
			}
			for _, name := range k.Names() {
				if !r.HasName(name) {
					t.Fatalf("HasName(%q) = false on the remote store", name)
				}
				want := k.Candidates(name)
				got := r.Candidates(name)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Candidates(%q) diverge:\n got %+v\nwant %+v", name, got, want)
				}
				for _, c := range want {
					if got, want := r.Prior(name, c.Entity), k.Prior(name, c.Entity); got != want {
						t.Fatalf("Prior(%q, %d) = %v, want %v", name, c.Entity, got, want)
					}
				}
			}
			if r.HasName("no such surface") || r.Candidates("no such surface") != nil {
				t.Fatal("remote store invents candidates for an unknown surface")
			}
			for id := 0; id < k.NumEntities(); id++ {
				want := normEntity(k.Entity(EntityID(id)))
				got := normEntity(r.Entity(EntityID(id)))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Entity(%d) diverges:\n got %+v\nwant %+v", id, got, want)
				}
				gotID, ok := r.EntityByName(want.Name)
				if !ok || gotID != EntityID(id) {
					t.Fatalf("EntityByName(%q) = (%d, %v), want (%d, true)", want.Name, gotID, ok, id)
				}
				for word := range want.KeywordNPMI {
					if got, want := r.KeywordWeight(EntityID(id), word), k.KeywordWeight(EntityID(id), word); got != want {
						t.Fatalf("KeywordWeight(%d, %q) = %v, want %v", id, word, got, want)
					}
				}
			}
			if _, ok := r.EntityByName("No Such Entity"); ok {
				t.Fatal("EntityByName invents an entity")
			}
			for _, e := range []*Entity{k.Entity(0), k.Entity(7)} {
				for _, kp := range e.Keyphrases {
					if got, want := r.PhraseIDF(kp.Phrase), k.PhraseIDF(kp.Phrase); got != want {
						t.Fatalf("PhraseIDF(%q) = %v, want %v", kp.Phrase, got, want)
					}
					for _, w := range kp.Words {
						if got, want := r.WordIDF(w), k.WordIDF(w); got != want {
							t.Fatalf("WordIDF(%q) = %v, want %v", w, got, want)
						}
					}
				}
			}
		})
	}
}

func TestRemoteCandidatesBulk(t *testing.T) {
	k := buildShardKB(t)
	m := startFleet(t, k, 3, 1, nil)
	r := dialFleet(t, m, RemoteOptions{})

	surfaces := append(k.Names(), "no such surface", "Jordan", "Jordan") // misses and duplicates
	lists := r.CandidatesBulk(surfaces)
	if len(lists) != len(surfaces) {
		t.Fatalf("CandidatesBulk returned %d lists for %d surfaces", len(lists), len(surfaces))
	}
	for i, s := range surfaces {
		if want := k.Candidates(s); !reflect.DeepEqual(lists[i], want) {
			t.Fatalf("bulk list %d (%q) diverges:\n got %+v\nwant %+v", i, s, lists[i], want)
		}
	}

	// The gather phase must have pre-fetched every candidate entity: problem
	// materialization after a bulk call costs no further round trips.
	st := r.Stats()
	for _, list := range lists {
		for _, c := range list {
			r.Entity(c.Entity)
		}
	}
	if got := r.Stats().Requests; got != st.Requests {
		t.Fatalf("Entity lookups after CandidatesBulk cost %d extra requests", got-st.Requests)
	}
	// And the row cache answers repeat bulk calls locally.
	r.CandidatesBulk(surfaces)
	if got := r.Stats().Requests; got != st.Requests {
		t.Fatalf("repeat CandidatesBulk cost %d extra requests", got-st.Requests)
	}
}

func TestRemoteHedging(t *testing.T) {
	k := buildShardKB(t)
	var slow atomic.Bool
	m := startFleet(t, k, 1, 2, func(shard, rep int, h http.Handler) http.Handler {
		if rep != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow.Load() {
				select {
				case <-time.After(2 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	})
	r := dialFleet(t, m, RemoteOptions{HedgeAfter: 5 * time.Millisecond})

	slow.Store(true) // primary now stalls; the hedge must win
	start := time.Now()
	got := r.Candidates("Jordan")
	if want := k.Candidates("Jordan"); !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged Candidates diverge:\n got %+v\nwant %+v", got, want)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged request took %v; the replica should have answered long before the primary", elapsed)
	}
	if st := r.Stats(); st.Hedges < 1 {
		t.Fatalf("Stats.Hedges = %d, want >= 1", st.Hedges)
	}
}

func TestRemoteRetryFailover(t *testing.T) {
	k := buildShardKB(t)
	var failPrimary atomic.Bool
	m := startFleet(t, k, 2, 2, func(shard, rep int, h http.Handler) http.Handler {
		if rep != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if failPrimary.Load() {
				http.Error(w, "injected transient error", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	r := dialFleet(t, m, RemoteOptions{})

	failPrimary.Store(true)
	for _, name := range k.Names() {
		if got, want := r.Candidates(name), k.Candidates(name); !reflect.DeepEqual(got, want) {
			t.Fatalf("failover Candidates(%q) diverge:\n got %+v\nwant %+v", name, got, want)
		}
	}
	for id := 0; id < k.NumEntities(); id++ {
		if got, want := normEntity(r.Entity(EntityID(id))), normEntity(k.Entity(EntityID(id))); !reflect.DeepEqual(got, want) {
			t.Fatalf("failover Entity(%d) diverges", id)
		}
	}
	st := r.Stats()
	if st.Retries < 1 || st.Failovers < 1 {
		t.Fatalf("Stats = %+v, want retries and failovers >= 1 with a failing primary", st)
	}
}

func TestRemoteAllReplicasFailPanics(t *testing.T) {
	k := buildShardKB(t)
	var fail atomic.Bool
	m := startFleet(t, k, 1, 2, func(shard, rep int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if fail.Load() {
				http.Error(w, "injected outage", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	r := dialFleet(t, m, RemoteOptions{})
	fail.Store(true)

	defer func() {
		re, ok := recover().(*RemoteError)
		if !ok {
			t.Fatalf("want a *RemoteError panic, got %v", re)
		}
		if re.Op != "rows" || len(re.Errs) != 2 {
			t.Fatalf("RemoteError = %+v, want op rows with 2 endpoint errors", re)
		}
		if msg := re.Error(); !strings.Contains(msg, "injected outage") || !strings.Contains(msg, "all 2 endpoint(s)") {
			t.Fatalf("RemoteError message %q lacks the endpoint detail", msg)
		}
	}()
	r.Candidates("Jordan")
	t.Fatal("Candidates succeeded with every replica down")
}

// buildOtherKB is a KB with different content (and therefore a different
// fingerprint) from buildShardKB.
func buildOtherKB(t testing.TB) *KB {
	t.Helper()
	b := NewBuilder()
	id := b.AddEntity("Impostor", "misc", "thing")
	b.AddName("Jordan", id, 1)
	b.AddKeyphrase(id, "not the real repository")
	return b.Build()
}

func TestDialRejectsFingerprintMismatch(t *testing.T) {
	k, other := buildShardKB(t), buildOtherKB(t)
	// Shard 1's host serves a different repository.
	good := startFleet(t, k, 2, 1, nil)
	host, err := NewStoreHost(other, 1, 2)
	if err != nil {
		t.Fatalf("NewStoreHost: %v", err)
	}
	srv := httptest.NewServer(host.Handler())
	defer srv.Close()
	good.Shards[1].Primary = srv.URL

	_, err = DialFleet(context.Background(), good, RemoteOptions{})
	if err == nil {
		t.Fatal("DialFleet accepted a fleet serving two different repositories")
	}
	for _, want := range []string{"fingerprint", "shard 1", srv.URL} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("dial error %q does not name %q", err, want)
		}
	}
}

func TestDialRejectsExpectFingerprintMismatch(t *testing.T) {
	k := buildShardKB(t)
	m := startFleet(t, k, 1, 1, nil)
	_, err := DialFleet(context.Background(), m, RemoteOptions{ExpectFingerprint: k.Fingerprint() + 1})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("DialFleet = %v, want a fingerprint rejection", err)
	}
	if r, err := DialFleet(context.Background(), m, RemoteOptions{ExpectFingerprint: k.Fingerprint()}); err != nil {
		t.Fatalf("DialFleet with the matching fingerprint: %v", err)
	} else if r.Fingerprint() != k.Fingerprint() {
		t.Fatalf("Fingerprint = %016x, want %016x", r.Fingerprint(), k.Fingerprint())
	}
}

func TestDialRejectsMisWiredShardMap(t *testing.T) {
	k := buildShardKB(t)
	m := startFleet(t, k, 2, 1, nil)
	m.Shards[0], m.Shards[1] = m.Shards[1], m.Shards[0] // swapped positions
	_, err := DialFleet(context.Background(), m, RemoteOptions{})
	if err == nil || !strings.Contains(err.Error(), "mis-wired") {
		t.Fatalf("DialFleet = %v, want a mis-wired shard map rejection", err)
	}
}

func TestFailoverRejectsStaleFingerprint(t *testing.T) {
	k := buildShardKB(t)
	var stale atomic.Bool
	staleWrap := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if stale.Load() {
				// Serve correct content under a wrong fingerprint, as a
				// replica restarted onto different KB content would.
				w.Header().Set(FingerprintHeader, "deadbeefdeadbeef")
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, r)
				for key, vals := range rec.Header() {
					if key == FingerprintHeader {
						continue
					}
					w.Header()[key] = vals
				}
				w.WriteHeader(rec.Code)
				w.Write(rec.Body.Bytes())
				return
			}
			h.ServeHTTP(w, r)
		})
	}

	t.Run("replica-fails-over", func(t *testing.T) {
		m := startFleet(t, k, 1, 2, func(shard, rep int, h http.Handler) http.Handler {
			if rep == 0 {
				return staleWrap(h)
			}
			return h
		})
		r := dialFleet(t, m, RemoteOptions{})
		stale.Store(true)
		defer stale.Store(false)
		if got, want := r.Candidates("Jordan"), k.Candidates("Jordan"); !reflect.DeepEqual(got, want) {
			t.Fatalf("Candidates diverge with a stale primary:\n got %+v\nwant %+v", got, want)
		}
		if st := r.Stats(); st.Retries < 1 || st.Failovers < 1 {
			t.Fatalf("Stats = %+v, want the stale primary retried and failed over", st)
		}
	})

	t.Run("all-stale-panics", func(t *testing.T) {
		m := startFleet(t, k, 1, 2, func(shard, rep int, h http.Handler) http.Handler {
			return staleWrap(h)
		})
		r := dialFleet(t, m, RemoteOptions{})
		stale.Store(true)
		defer stale.Store(false)
		defer func() {
			re, ok := recover().(*RemoteError)
			if !ok {
				t.Fatalf("want a *RemoteError panic, got %v", re)
			}
			if msg := re.Error(); !strings.Contains(msg, "fingerprint") || !strings.Contains(msg, "deadbeefdeadbeef") {
				t.Fatalf("RemoteError message %q does not describe the fingerprint mismatch", msg)
			}
		}()
		r.Candidates("Jordan")
		t.Fatal("Candidates accepted responses with a foreign fingerprint")
	})
}

func TestDialNamesPagination(t *testing.T) {
	k := buildShardKB(t)
	m := startFleet(t, k, 2, 1, nil)
	r := dialFleet(t, m, RemoteOptions{NamesPageSize: 2})
	if got, want := r.Names(), k.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paginated Names diverge:\n got %v\nwant %v", got, want)
	}
}

func TestStoreHostRejectsMisroutedRequests(t *testing.T) {
	k := buildShardKB(t)
	host, err := NewStoreHost(k, 0, 2)
	if err != nil {
		t.Fatalf("NewStoreHost: %v", err)
	}
	srv := httptest.NewServer(host.Handler())
	defer srv.Close()

	// A remote store wired to believe this host serves both shards will
	// send it entities and rows it does not own; the host must refuse.
	m := ShardMap{Shards: []ShardEndpoints{
		{Primary: srv.URL},
		{Primary: srv.URL},
	}}
	if _, err := DialFleet(context.Background(), m, RemoteOptions{}); err == nil {
		t.Fatal("DialFleet accepted one shard-0 host claiming both shards")
	} else if !strings.Contains(err.Error(), "serves shard 0/2, want 1/2") {
		t.Fatalf("dial error %q does not describe the shard position mismatch", err)
	}
}

// noIDF hides the IDFTabler extension of the wrapped store.
type noIDF struct{ Store }

func TestNewStoreHostErrors(t *testing.T) {
	k := buildShardKB(t)
	if _, err := NewStoreHost(k, 2, 2); err == nil {
		t.Fatal("NewStoreHost accepted shard position 2/2")
	}
	if _, err := NewStoreHost(k, 0, 0); err == nil {
		t.Fatal("NewStoreHost accepted a zero-width fleet")
	}
	if _, err := NewStoreHost(noIDF{k}, 0, 1); err == nil || !strings.Contains(err.Error(), "IDF") {
		t.Fatalf("NewStoreHost(noIDF) = %v, want an IDF-tables error", err)
	}
}

func TestStoreHostOwnedNamesPartition(t *testing.T) {
	k := buildShardKB(t)
	const shards = 3
	total := 0
	for shard := 0; shard < shards; shard++ {
		h, err := NewStoreHost(k, shard, shards)
		if err != nil {
			t.Fatalf("NewStoreHost(%d/%d): %v", shard, shards, err)
		}
		if s, n := h.Shard(); s != shard || n != shards {
			t.Fatalf("Shard() = %d/%d, want %d/%d", s, n, shard, shards)
		}
		total += h.NumNames()
	}
	if want := len(k.Names()); total != want {
		t.Fatalf("shard hosts own %d names in total, want %d (a partition)", total, want)
	}
}
