package kb

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sportsDict flips the dominant sense of the ambiguous "Page" surface
// (Larry Page 60 vs Jimmy Page 40 in buildMusicKB) toward the musician.
func sportsDict() DomainDictionary {
	return DomainDictionary{
		Name: "music",
		Rows: []DomainRow{{Surface: "Page", Entity: "Jimmy Page", Count: 200}},
	}
}

func TestDomainLayerReweightsPriors(t *testing.T) {
	k := buildMusicKB()
	layer, err := NewDomainLayer(k, sportsDict())
	if err != nil {
		t.Fatal(err)
	}
	if layer.Name() != "music" {
		t.Fatalf("Name() = %q", layer.Name())
	}

	// In the layer, Jimmy Page carries 40+200 of 300 total mass and leads.
	cands := layer.Candidates("Page")
	if len(cands) != 2 {
		t.Fatalf("layer Candidates(Page) = %v, want 2", cands)
	}
	if layer.Entity(cands[0].Entity).Name != "Jimmy Page" {
		t.Fatalf("domain head sense = %s, want Jimmy Page", layer.Entity(cands[0].Entity).Name)
	}
	if want := 240.0 / 300.0; math.Abs(cands[0].Prior-want) > 1e-9 {
		t.Fatalf("domain prior = %v, want %v", cands[0].Prior, want)
	}

	// The base store is untouched, and untouched surfaces pass through.
	if base := k.Candidates("Page"); k.Entity(base[0].Entity).Name != "Larry Page" {
		t.Fatal("domain layer mutated the base store")
	}
	if got, want := layer.Candidates("Kashmir"), k.Candidates("Kashmir"); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("untouched surface diverges: %v vs %v", got, want)
	}

	// A rows-only layer adds no entities: the engine-sharing fast path
	// (System.RegisterDomain clones by Touched/Added) depends on this.
	if layer.Added() != 0 {
		t.Fatalf("Added() = %d, want 0 for a rows-only layer", layer.Added())
	}
	if len(layer.Touched()) != 0 {
		t.Fatalf("Touched() = %v, want none for a rows-only layer", layer.Touched())
	}
}

func TestNewDomainLayerValidation(t *testing.T) {
	k := buildMusicKB()
	cases := []struct {
		name string
		dict DomainDictionary
		want string
	}{
		{"no name", DomainDictionary{Rows: sportsDict().Rows}, "kb: domain dictionary has no name"},
		{"no rows", DomainDictionary{Name: "empty"}, `kb: domain "empty" has no rows`},
		{
			"unknown entity",
			DomainDictionary{Name: "bad", Rows: []DomainRow{{Surface: "Page", Entity: "Nobody", Count: 1}}},
			`kb: domain "bad" row 0: unknown entity "Nobody"`,
		},
		{
			"non-positive count",
			DomainDictionary{Name: "bad", Rows: []DomainRow{{Surface: "Page", Entity: "Jimmy Page", Count: 0}}},
			`kb: domain "bad"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDomainLayer(k, tc.dict)
			if err == nil || !strings.HasPrefix(err.Error(), tc.want) {
				t.Fatalf("error = %v, want prefix %q", err, tc.want)
			}
		})
	}
}

func TestParseDomainDictionaries(t *testing.T) {
	bare := `[{"name": "a", "rows": [{"surface": "X", "entity": "E", "count": 3}]}]`
	wrapped := `{"domains": [{"name": "a", "rows": [{"surface": "X", "entity": "E", "count": 3}]}]}`
	for _, src := range []string{bare, wrapped} {
		dicts, err := ParseDomainDictionaries([]byte(src))
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		if len(dicts) != 1 || dicts[0].Name != "a" || len(dicts[0].Rows) != 1 ||
			dicts[0].Rows[0] != (DomainRow{Surface: "X", Entity: "E", Count: 3}) {
			t.Fatalf("parse %s = %+v", src, dicts)
		}
	}

	bad := []struct {
		name string
		src  string
		want string
	}{
		{"garbage", `{{`, "kb: parse domains"},
		{"empty array", `[]`, "kb: domains file defines no domains"},
		{"empty object", `{}`, "kb: domains file defines no domains"},
		{"unnamed", `[{"rows": []}]`, "kb: domain 0 has no name"},
		{"duplicate", `[{"name": "a"}, {"name": "a"}]`, `kb: domain "a" defined twice`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDomainDictionaries([]byte(tc.src))
			if err == nil || !strings.HasPrefix(err.Error(), tc.want) {
				t.Fatalf("error = %v, want prefix %q", err, tc.want)
			}
		})
	}
}

func TestLoadDomainDictionaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "domains.json")
	if err := os.WriteFile(path, []byte(`[{"name": "news", "rows": [{"surface": "Page", "entity": "Jimmy Page", "count": 9}]}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	dicts, err := LoadDomainDictionaries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(dicts) != 1 || dicts[0].Name != "news" {
		t.Fatalf("loaded %+v", dicts)
	}
	if _, err := LoadDomainDictionaries(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
