package kb

// Store is the read interface of the knowledge base: everything the
// annotation pipeline (recognition, candidate materialization, scoring,
// harvesting, serving) needs from the KB substrate. The single-process
// *KB, the ShardedKB router, the RemoteStore fleet client and the
// copy-on-write Overlay all satisfy it, and every implementation must
// return byte-identical results for the same underlying repository — the
// golden-corpus conformance suite in internal/kbtest pins this.
//
// All methods must be safe for concurrent use. Every implementation is
// immutable after construction; live KB updates never mutate a Store in
// place. Instead, each update produces a NEW Store (an Overlay over the
// old one, or a Rebuild) and the serving layer swaps the generations
// atomically (see aida.System.ApplyDelta). Consequences of that contract:
//
//   - Slices returned by Names(), Candidates() and Entity() stay valid and
//     constant forever — but they describe the generation they were read
//     from. State derived from a Store at construction time (a StoreHost's
//     name mirror, a RemoteStore's dialed dictionary, nec.Train statistics,
//     an engine's profiles and LSH filters) is bound to that generation and
//     must be rebuilt — or swapped alongside — when a new generation is
//     installed; it must never be cached across an apply and replayed
//     against the new store.
//   - Fingerprint() identifies the generation's content: applying a delta
//     that changes logical content yields a different fingerprint, so
//     generation mismatches (a stale engine snapshot, a fleet host serving
//     older content) fail closed instead of silently mixing generations.
type Store interface {
	// NumEntities returns |E|. Entity ids are dense in [0, NumEntities()),
	// so iterating ids covers the whole repository on any implementation.
	NumEntities() int
	// Entity returns the entity with the given id. It panics on ids
	// outside the repository; NoEntity is not a valid argument.
	Entity(id EntityID) *Entity
	// EntityByName looks up an entity by its canonical name.
	EntityByName(name string) (EntityID, bool)
	// HasName implements ner.Lexicon over the normalized dictionary keys.
	HasName(normalized string) bool
	// Candidates returns the candidate entities for a surface form, sorted
	// by descending prior (ties broken by ascending id). A nil slice means
	// the dictionary has no entry. The returned slice is shared across
	// calls and must not be modified by the caller.
	Candidates(surface string) []Candidate
	// Prior returns P(entity|surface), or 0 when the pair is unknown.
	Prior(surface string, e EntityID) float64
	// Names returns all dictionary keys (normalized names), sorted.
	Names() []string
	// PhraseIDF returns the global IDF of a keyphrase (Eq. 3.5).
	PhraseIDF(phrase string) float64
	// WordIDF returns the global IDF of a keyword.
	WordIDF(word string) float64
	// KeywordWeight returns the NPMI weight of word for entity e (0 when
	// the entity has no specific weight).
	KeywordWeight(e EntityID, word string) float64
	// NumShards reports how many shards back this store (1 for a plain
	// *KB). Entity e lives on shard EntityShard(e, NumShards()).
	NumShards() int
	// Fingerprint returns a deterministic hash of the repository content.
	// It is shard-layout-independent: the unsharded KB and every router
	// over it return the same value, so state derived from the KB (engine
	// snapshots) can be validated against any Store serving that content.
	Fingerprint() uint64
}

// BulkCandidateStore is an optional Store extension for stores where a
// candidate lookup may cost a round trip (RemoteStore). CandidatesBulk
// materializes the candidate lists of many surfaces at once — batched per
// shard instead of one fetch per surface — and returns them positionally
// aligned with the input. Each list is byte-identical to what
// Candidates(surfaces[i]) returns (nil for out-of-dictionary surfaces),
// and the same sharing rules apply: the slices must not be modified.
type BulkCandidateStore interface {
	Store
	CandidatesBulk(surfaces []string) [][]Candidate
}

// Compile-time conformance of the in-process implementations (Overlay and
// RemoteStore declare theirs next to their definitions).
var (
	_ Store = (*KB)(nil)
	_ Store = (*ShardedKB)(nil)
)

// NumShards implements Store: a plain KB is one shard.
func (k *KB) NumShards() int { return 1 }

// candidatesFrom materializes Candidate structs from raw dictionary rows,
// recomputing priors over the full entry set and sorting by descending
// prior with ties broken by ascending id. Both the single KB and the
// sharded router build their results through this one function, which is
// what makes their outputs byte-identical (same summation order, same
// float divisions, same comparator). It runs once per dictionary key at
// construction time (see precomputeCandidates), never on the lookup path.
func candidatesFrom(entries []nameEntry) []Candidate {
	if len(entries) == 0 {
		return nil
	}
	total := 0
	for _, e := range entries {
		total += e.Count
	}
	out := make([]Candidate, len(entries))
	for i, e := range entries {
		prior := 0.0
		if total > 0 {
			prior = float64(e.Count) / float64(total)
		}
		out[i] = Candidate{Entity: e.Entity, Prior: prior, Count: e.Count}
	}
	sortCandidates(out)
	return out
}

// precomputeCandidates materializes the candidate slice of every
// dictionary key up front. Candidates() then returns the shared immutable
// slice, so a surface lookup during annotation allocates nothing.
func precomputeCandidates(dict map[string][]nameEntry) map[string][]Candidate {
	out := make(map[string][]Candidate, len(dict))
	for key, entries := range dict {
		out[key] = candidatesFrom(entries)
	}
	return out
}
