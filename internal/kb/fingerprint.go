package kb

import (
	"math"
	"sort"
	"sync"
)

// Fingerprinting gives every Store a deterministic content hash so derived
// state persisted next to the KB (notably engine snapshots, see
// internal/relatedness) can be checked against the KB it was computed from:
// a snapshot carrying a different fingerprint was built from different
// repository content and must be rejected as stale.
//
// The hash walks the *logical* content through the Store read surface only
// — entities in id order, dictionary rows in sorted-name order, candidate
// priors bit-for-bit — so the unsharded KB and every router over it agree
// on the fingerprint (the conformance contract of Store makes their read
// surfaces byte-identical). Shard count, map layout and build order never
// influence the value.

// fnvHasher accumulates the 64-bit FNV-1a fingerprint over the canonical
// content walk.
type fnvHasher uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (h *fnvHasher) byte(b byte) {
	*h = (*h ^ fnvHasher(b)) * fnvPrime64
}

func (h *fnvHasher) uint64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnvHasher) int(v int) { h.uint64(uint64(int64(v))) }

func (h *fnvHasher) float(v float64) { h.uint64(math.Float64bits(v)) }

// str hashes the length before the bytes so concatenations can't collide
// ("ab","c" vs "a","bc").
func (h *fnvHasher) str(s string) {
	h.int(len(s))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *fnvHasher) ids(ids []EntityID) {
	h.int(len(ids))
	for _, id := range ids {
		h.uint64(uint64(int64(id)))
	}
}

// fingerprintOf computes the canonical content hash of a Store. Cost is one
// full walk of the repository and dictionary — the same order as loading or
// saving a KB snapshot, so callers cache the value per Store.
func fingerprintOf(s Store) uint64 {
	h := fnvHasher(fnvOffset64)
	n := s.NumEntities()
	h.int(n)
	for id := 0; id < n; id++ {
		e := s.Entity(EntityID(id))
		h.str(e.Name)
		h.str(e.Domain)
		h.int(len(e.Types))
		for _, t := range e.Types {
			h.str(t)
		}
		h.ids(e.InLinks)
		h.ids(e.OutLinks)
		h.int(len(e.Keyphrases))
		for i := range e.Keyphrases {
			kp := &e.Keyphrases[i]
			h.str(kp.Phrase)
			h.int(len(kp.Words))
			for _, w := range kp.Words {
				h.str(w)
				// The keyword IDF weights feed directly into profile
				// construction and KORE; hash them where they are consumed.
				h.float(s.WordIDF(w))
			}
			h.float(kp.MI)
			h.float(kp.IDF)
			h.float(s.PhraseIDF(kp.Phrase))
		}
		words := make([]string, 0, len(e.KeywordNPMI))
		for w := range e.KeywordNPMI {
			words = append(words, w)
		}
		sort.Strings(words)
		h.int(len(words))
		for _, w := range words {
			h.str(w)
			h.float(e.KeywordNPMI[w])
		}
	}
	names := s.Names()
	h.int(len(names))
	for _, name := range names {
		h.str(name)
		cands := s.Candidates(name)
		h.int(len(cands))
		for _, c := range cands {
			h.uint64(uint64(int64(c.Entity)))
			h.int(c.Count)
			h.float(c.Prior)
		}
	}
	return uint64(h)
}

// fingerprintOnce memoizes the walk per Store instance (Stores are
// immutable after construction, so the value never goes stale).
type fingerprintOnce struct {
	once sync.Once
	v    uint64
}

func (f *fingerprintOnce) of(s Store) uint64 {
	f.once.Do(func() { f.v = fingerprintOf(s) })
	return f.v
}

// Fingerprint returns the KB's deterministic content hash. Two KBs with the
// same logical content (entities, links, keyphrase weights, dictionary rows
// and global IDF statistics) have the same fingerprint regardless of how
// they were built or loaded.
func (k *KB) Fingerprint() uint64 { return k.fp.of(k) }

// Fingerprint returns the content hash of the routed repository. It equals
// the fingerprint of the KB the router was built from at any shard count:
// the hash is computed over the Store read surface, which the conformance
// suite pins byte-identical across implementations.
func (s *ShardedKB) Fingerprint() uint64 { return s.fp.of(s) }
