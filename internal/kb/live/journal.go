package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"aida/internal/kb"
)

// journalMagic identifies a delta journal file; the trailing byte is the
// format version. Each applied delta follows as one frame: a big-endian
// uint32 length prefix and an independently gob-encoded kb.Delta.
// Frames are self-contained (a fresh gob encoder per frame) so the file
// can be appended to across process restarts — a single gob stream could
// not be reopened for appending.
var journalMagic = []byte("AIDADLT\x01")

// Journal is an append-only log of applied KB deltas. A server opens it
// on boot (replaying the recorded deltas first, see ReplayJournal),
// appends every delta it applies, and thereby makes live updates survive
// restarts. Append is safe for concurrent use.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (or creates) the journal at path for appending. An
// existing file's header is validated and its frames scanned; a torn tail
// frame — the mark of a crash mid-append — is truncated away so the next
// Append starts at a clean frame boundary. A file with a foreign header
// is refused rather than overwritten.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	end, _, _, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: truncating journal tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append records one applied delta. The frame is written with a single
// Write call after encoding, so a crash leaves at most one torn tail
// frame, which the next OpenJournal truncates.
func (j *Journal) Append(d *kb.Delta) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return fmt.Errorf("live: encoding delta: %w", err)
	}
	frame := make([]byte, 4+buf.Len())
	binary.BigEndian.PutUint32(frame, uint32(buf.Len()))
	copy(frame[4:], buf.Bytes())
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("live: appending delta frame: %w", err)
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReplayJournal reads the journal at path and calls apply for each
// recorded delta in order. A missing file is an empty journal (0, false,
// nil). A torn tail frame stops the replay and is reported via truncated;
// everything before it is applied. An apply error stops the replay and is
// returned with the count of deltas applied so far.
func ReplayJournal(path string, apply func(*kb.Delta) error) (applied int, truncated bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	_, deltas, truncated, err := scanJournal(f)
	if err != nil {
		return 0, false, err
	}
	for _, d := range deltas {
		if err := apply(d); err != nil {
			return applied, truncated, err
		}
		applied++
	}
	return applied, truncated, nil
}

// scanJournal validates the header (writing one into an empty file opened
// read-write) and decodes frames until the end of file or a torn tail.
// It returns the offset of the last clean frame boundary, the decoded
// deltas, and whether a torn tail was skipped.
func scanJournal(f *os.File) (end int64, deltas []*kb.Delta, truncated bool, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, nil, false, err
	}
	if info.Size() == 0 {
		// A brand-new journal: stamp the header if the handle is
		// writable; a read-only scan of an empty file is just empty.
		if n, werr := f.WriteAt(journalMagic, 0); werr == nil && n == len(journalMagic) {
			return int64(len(journalMagic)), nil, false, nil
		}
		return 0, nil, false, nil
	}
	header := make([]byte, len(journalMagic))
	if _, err := f.ReadAt(header, 0); err != nil || !bytes.Equal(header, journalMagic) {
		return 0, nil, false, fmt.Errorf("live: %s is not a delta journal (bad header)", f.Name())
	}
	off := int64(len(journalMagic))
	for off < info.Size() {
		var lenBuf [4]byte
		if _, err := f.ReadAt(lenBuf[:], off); err != nil {
			return off, deltas, true, nil // torn length prefix
		}
		n := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if off+4+n > info.Size() {
			return off, deltas, true, nil // torn frame body
		}
		body := make([]byte, n)
		if _, err := f.ReadAt(body, off+4); err != nil {
			return off, deltas, true, nil
		}
		var d kb.Delta
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&d); err != nil {
			// A frame that does not decode is corruption at rest, not a
			// torn append; refuse rather than silently dropping applied
			// history (later frames would be misaligned anyway).
			return off, deltas, false, fmt.Errorf("live: journal frame at offset %d is corrupt: %w", off, err)
		}
		deltas = append(deltas, &d)
		off += 4 + n
	}
	return off, deltas, false, nil
}
