package live

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"aida"
	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
	"aida/internal/textstat"
)

// testKB builds a tiny music-domain repository: three entities with
// cross-links and a shared "hard rock" keyphrase, so graduation tests can
// exercise both base-vocabulary reuse and fresh-vocabulary IDF minting.
func testKB() *kb.KB {
	b := kb.NewBuilder()
	jp := b.AddEntity("Jimmy Page", "music", "person")
	lz := b.AddEntity("Led Zeppelin", "music", "band")
	rp := b.AddEntity("Robert Plant", "music", "person")
	b.AddName("Page", jp, 10)
	b.AddName("Zeppelin", lz, 5)
	b.AddName("Plant", rp, 5)
	b.AddLink(jp, lz)
	b.AddLink(lz, jp)
	b.AddLink(rp, lz)
	b.AddLink(lz, rp)
	b.AddKeyphrase(jp, "English rock guitarist")
	b.AddKeyphrase(jp, "hard rock")
	b.AddKeyphrase(lz, "hard rock")
	b.AddKeyphrase(lz, "English rock band")
	b.AddKeyphrase(rp, "rock vocalist")
	return b.Build()
}

// discovery fabricates a single-mention emerging discovery whose
// placeholder model carries the given keyphrases.
func discovery(surface string, phrases ...string) *emerge.Discovery {
	model := disambig.Candidate{Entity: kb.NoEntity, Label: surface + "_EE"}
	for _, p := range phrases {
		model.Keyphrases = append(model.Keyphrases, kb.Keyphrase{
			Phrase: p, Words: kb.PhraseWords(p), MI: 1, IDF: 1,
		})
	}
	return &emerge.Discovery{
		Output: &disambig.Output{Results: []disambig.Result{
			{Surface: surface, CandidateIndex: -1, Entity: kb.NoEntity},
		}},
		Emerging: []bool{true},
		Models:   map[string]disambig.Candidate{surface: model},
	}
}

func TestGraduatorThresholds(t *testing.T) {
	base := testKB()
	g := NewGraduator(Config{MinOccurrences: 3, MinKeyphrases: 2})
	obs := discovery("Novatrix Sound", "hard rock", "synthwave pioneers")

	for i := 0; i < 2; i++ {
		g.Observe(obs, nil)
		if d := g.Graduate(base); d != nil {
			t.Fatalf("graduated after %d observations, want threshold 3", i+1)
		}
	}
	if got := g.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
	g.Observe(obs, nil)
	d := g.Graduate(base)
	if d == nil {
		t.Fatal("no delta after reaching MinOccurrences")
	}
	if g.Pending() != 0 {
		t.Fatalf("Pending() = %d after graduation, want 0 (drained)", g.Pending())
	}
	if len(d.Entities) != 1 || d.Entities[0].Name != "Novatrix Sound" {
		t.Fatalf("unexpected entities: %+v", d.Entities)
	}
	if d.Entities[0].Domain != "emerging" || len(d.Entities[0].Types) != 1 || d.Entities[0].Types[0] != "emerging" {
		t.Fatalf("graduated entity not labeled emerging: %+v", d.Entities[0])
	}
	wantRow := kb.RowAddition{Surface: "Novatrix Sound", Entity: kb.EntityID(base.NumEntities()), Count: 3}
	if len(d.Rows) != 1 || d.Rows[0] != wantRow {
		t.Fatalf("rows = %+v, want [%+v]", d.Rows, wantRow)
	}

	// Vocabulary the base already weights keeps its IDF; fresh vocabulary
	// gets the minimum-evidence weight and a matching delta IDF entry.
	newIDF := textstat.IDF(float64(base.NumEntities()+1), 1)
	for _, kp := range d.Entities[0].Keyphrases {
		switch kp.Phrase {
		case "hard rock":
			if want := base.PhraseIDF("hard rock"); kp.IDF != want {
				t.Errorf("base phrase IDF = %g, want %g", kp.IDF, want)
			}
		case "synthwave pioneers":
			if kp.IDF != newIDF {
				t.Errorf("fresh phrase IDF = %g, want %g", kp.IDF, newIDF)
			}
		}
	}
	if got := d.PhraseIDF["synthwave pioneers"]; got != newIDF {
		t.Errorf("delta PhraseIDF[synthwave pioneers] = %g, want %g", got, newIDF)
	}
	if _, extended := d.PhraseIDF["hard rock"]; extended {
		t.Error("delta must not extend IDF for vocabulary the base already weights")
	}
	for _, w := range []string{"synthwave", "pioneers"} {
		if got := d.WordIDF[w]; got != newIDF {
			t.Errorf("delta WordIDF[%s] = %g, want %g", w, got, newIDF)
		}
	}

	// The delta is installable: the overlay resolves the new name.
	ov, err := kb.NewOverlay(base, d)
	if err != nil {
		t.Fatalf("NewOverlay over graduated delta: %v", err)
	}
	if _, ok := ov.EntityByName("Novatrix Sound"); !ok {
		t.Error("graduated entity not resolvable in overlay")
	}
}

func TestGraduatorGates(t *testing.T) {
	base := testKB()

	t.Run("non-emerging skipped", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 1, MinKeyphrases: 1})
		d := discovery("Novatrix", "synth lab")
		d.Emerging[0] = false
		g.Observe(d, nil)
		if g.Pending() != 0 {
			t.Fatal("non-emerging mention accumulated evidence")
		}
	})
	t.Run("confidence gate", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 1, MinKeyphrases: 1, MinConfidence: 0.5})
		d := discovery("Novatrix", "synth lab")
		g.Observe(d, []float64{0.1})
		if g.Pending() != 0 {
			t.Fatal("low-confidence observation accumulated evidence")
		}
		g.Observe(d, []float64{0.9})
		if g.Pending() != 1 {
			t.Fatal("confident observation was dropped")
		}
	})
	t.Run("keyphrase floor", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 1}) // default MinKeyphrases 3
		g.Observe(discovery("Novatrix", "synth lab"), nil)
		if g.Pending() != 0 {
			t.Fatal("model below MinKeyphrases accumulated evidence")
		}
	})
	t.Run("in-KB model skipped", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 1, MinKeyphrases: 1})
		d := discovery("Novatrix", "synth lab")
		m := d.Models["Novatrix"]
		m.Entity = 1 // not a placeholder
		d.Models["Novatrix"] = m
		g.Observe(d, nil)
		if g.Pending() != 0 {
			t.Fatal("in-KB model accumulated evidence")
		}
	})
	t.Run("missing model skipped", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 1, MinKeyphrases: 1})
		d := discovery("Novatrix", "synth lab")
		delete(d.Models, "Novatrix")
		g.Observe(d, nil)
		if g.Pending() != 0 {
			t.Fatal("mention without a model accumulated evidence")
		}
	})
	t.Run("max pending bound", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 2, MinKeyphrases: 1, MaxPending: 1})
		g.Observe(discovery("Alpha Works", "synth lab"), nil)
		g.Observe(discovery("Beta Works", "drum clinic"), nil)
		if got := g.Pending(); got != 1 {
			t.Fatalf("Pending() = %d, want 1 (MaxPending bound)", got)
		}
		// A tracked surface still accumulates at the bound.
		g.Observe(discovery("Alpha Works", "synth lab"), nil)
		if d := g.Graduate(testKB()); d == nil || d.Entities[0].Name != "Alpha Works" {
			t.Fatalf("tracked surface did not graduate at the bound: %+v", d)
		}
	})
	t.Run("name collision suffixed", func(t *testing.T) {
		g := NewGraduator(Config{MinOccurrences: 1, MinKeyphrases: 1})
		g.Observe(discovery("Jimmy Page", "session guitarist"), nil)
		d := g.Graduate(base)
		if d == nil || len(d.Entities) != 1 {
			t.Fatalf("unexpected delta: %+v", d)
		}
		if got, want := d.Entities[0].Name, "Jimmy Page (emerging)"; got != want {
			t.Fatalf("colliding name graduated as %q, want %q", got, want)
		}
		if err := d.Validate(base); err != nil {
			t.Fatalf("suffixed delta does not validate: %v", err)
		}
	})
}

func journalDeltas() []*kb.Delta {
	return []*kb.Delta{
		{BaseEntities: 3, Entities: []kb.NewEntity{{Name: "Novatrix Sound", Domain: "emerging"}},
			Rows: []kb.RowAddition{{Surface: "Novatrix", Entity: 3, Count: 4}}},
		{BaseEntities: 4, Links: []kb.LinkAddition{{Src: 3, Dst: 0}},
			PhraseIDF: map[string]float64{"synthwave pioneers": 2.5}},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	want := journalDeltas()
	for _, d := range want {
		if err := j.Append(d); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var got []*kb.Delta
	applied, truncated, err := ReplayJournal(path, func(d *kb.Delta) error {
		got = append(got, d)
		return nil
	})
	if err != nil || truncated || applied != len(want) {
		t.Fatalf("ReplayJournal = (%d, %v, %v), want (%d, false, nil)", applied, truncated, err, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed deltas differ:\n got %+v\nwant %+v", got, want)
	}

	// Reopening appends after the existing frames — the file format stays
	// replayable across restarts.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := j2.Append(want[0]); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	j2.Close()
	applied, _, err = ReplayJournal(path, func(*kb.Delta) error { return nil })
	if err != nil || applied != 3 {
		t.Fatalf("replay after reopen = (%d, %v), want (3, nil)", applied, err)
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	d := journalDeltas()[0]
	if err := j.Append(d); err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Close()

	// Simulate a crash mid-append: a length prefix promising more bytes
	// than the file holds.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	applied, truncated, err := ReplayJournal(path, func(*kb.Delta) error { return nil })
	if err != nil || !truncated || applied != 1 {
		t.Fatalf("ReplayJournal over torn tail = (%d, %v, %v), want (1, true, nil)", applied, truncated, err)
	}

	// Reopening truncates the torn tail; a fresh append lands cleanly.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if err := j2.Append(d); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	j2.Close()
	applied, truncated, err = ReplayJournal(path, func(*kb.Delta) error { return nil })
	if err != nil || truncated || applied != 2 {
		t.Fatalf("replay after repair = (%d, %v, %v), want (2, false, nil)", applied, truncated, err)
	}
}

func TestJournalMissingFile(t *testing.T) {
	applied, truncated, err := ReplayJournal(filepath.Join(t.TempDir(), "absent.journal"), func(*kb.Delta) error {
		t.Fatal("apply called for a missing journal")
		return nil
	})
	if applied != 0 || truncated || err != nil {
		t.Fatalf("ReplayJournal(missing) = (%d, %v, %v), want (0, false, nil)", applied, truncated, err)
	}
}

func TestJournalBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Error("OpenJournal accepted a foreign file")
	}
	if _, _, err := ReplayJournal(path, func(*kb.Delta) error { return nil }); err == nil {
		t.Error("ReplayJournal accepted a foreign file")
	}
}

func TestJournalCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deltas.journal")
	frame := []byte{0x00, 0x00, 0x00, 0x04, 0xde, 0xad, 0xbe, 0xef}
	if err := os.WriteFile(path, append(append([]byte{}, journalMagic...), frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayJournal(path, func(*kb.Delta) error { return nil }); err == nil {
		t.Error("ReplayJournal accepted a frame that does not decode")
	}
}

func TestLoopNote(t *testing.T) {
	l := &Loop{MaxDocs: 2}
	span := func(s string) aida.MentionSpan { return aida.MentionSpan{Text: s} }

	// Fully linked documents carry no emerging evidence.
	l.Note("Jimmy Page founded Led Zeppelin.", []aida.Annotation{
		{Mention: span("Jimmy Page"), Entity: 0},
		{Mention: span("Led Zeppelin"), Entity: 1},
	})
	if l.Buffered() != 0 {
		t.Fatalf("linked document buffered; Buffered() = %d", l.Buffered())
	}

	ee := func(s string) []aida.Annotation {
		return []aida.Annotation{{Mention: span(s), Entity: aida.NoEntity}}
	}
	l.Note("a", ee("Alpha Works"))
	l.Note("b", ee("Beta Works"))
	l.Note("c", ee("Gamma Works"))
	if got := l.Buffered(); got != 2 {
		t.Fatalf("Buffered() = %d, want 2 (MaxDocs ring)", got)
	}
}

// TestLoopRunOnceGraduates drives the full apply path: pre-accumulated
// evidence graduates, the delta installs a new generation on the serving
// System, the journal records it, and replaying the journal into a fresh
// System reproduces the exact same store.
func TestLoopRunOnceGraduates(t *testing.T) {
	sys := aida.New(testKB())
	g := NewGraduator(Config{MinOccurrences: 1, MinKeyphrases: 1})
	g.Observe(discovery("Novatrix Sound", "hard rock", "synthwave pioneers"), nil)

	path := filepath.Join(t.TempDir(), "deltas.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()

	l := &Loop{System: sys, Graduator: g, Journal: j}
	receipt, applied, err := l.RunOnce(context.Background())
	if err != nil || !applied {
		t.Fatalf("RunOnce = (%+v, %v, %v), want an apply", receipt, applied, err)
	}
	if receipt.Generation != 1 || receipt.Entities != 1 {
		t.Fatalf("unexpected receipt: %+v", receipt)
	}
	if got := sys.Generation(); got != 1 {
		t.Fatalf("Generation() = %d, want 1", got)
	}
	if _, ok := sys.Store().EntityByName("Novatrix Sound"); !ok {
		t.Fatal("graduated entity not resolvable on the serving store")
	}

	// Nothing pending → the next pass is a no-op.
	if _, applied, err := l.RunOnce(context.Background()); err != nil || applied {
		t.Fatalf("second RunOnce = (%v, %v), want no-op", applied, err)
	}

	// Replay rebuilds the exact serving store on a fresh System.
	sys2 := aida.New(testKB())
	n, truncated, err := ReplayJournal(path, func(d *kb.Delta) error {
		_, err := sys2.ApplyDelta(d)
		return err
	})
	if err != nil || truncated || n != 1 {
		t.Fatalf("ReplayJournal = (%d, %v, %v), want (1, false, nil)", n, truncated, err)
	}
	if sys2.Store().Fingerprint() != sys.Store().Fingerprint() {
		t.Fatal("journal replay did not reproduce the serving store fingerprint")
	}
}

// TestLoopRunOnceDrainsBuffer runs the real discovery pipeline over a
// buffered document with an out-of-KB mention: one observation is below
// the default graduation threshold, so nothing applies, but the buffer is
// consumed and the System stays on generation 0.
func TestLoopRunOnceDrainsBuffer(t *testing.T) {
	sys := aida.New(testKB())
	l := &Loop{System: sys}
	l.Note("Novatrix Sound toured with Led Zeppelin while Jimmy Page produced the record.",
		[]aida.Annotation{
			{Mention: aida.MentionSpan{Text: "Novatrix Sound"}, Entity: aida.NoEntity},
			{Mention: aida.MentionSpan{Text: "Led Zeppelin"}, Entity: 1},
			{Mention: aida.MentionSpan{Text: "Jimmy Page"}, Entity: 0},
		})
	if l.Buffered() != 1 {
		t.Fatalf("Buffered() = %d, want 1", l.Buffered())
	}
	if _, applied, err := l.RunOnce(context.Background()); err != nil || applied {
		t.Fatalf("RunOnce = (%v, %v), want drained no-op", applied, err)
	}
	if l.Buffered() != 0 {
		t.Fatalf("Buffered() = %d after RunOnce, want 0", l.Buffered())
	}
	if got := sys.Generation(); got != 0 {
		t.Fatalf("Generation() = %d, want 0 (single observation below threshold)", got)
	}
}
