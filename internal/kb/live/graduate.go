// Package live closes the emerging-entity feedback loop of the live KB:
// it accumulates confident emerging-entity discoveries (emerge.Discovery)
// across documents, graduates the ones with enough independent evidence
// into kb.Delta facts, and persists applied deltas in a replayable journal
// so a restarted server recovers every graduated entity.
//
// The package sits between internal/emerge (which finds out-of-KB
// entities per document) and aida.System.ApplyDelta (which installs KB
// generations): a Graduator turns repeated per-document observations into
// one Delta, a Journal makes applies durable, and a Loop wires both to a
// serving System on a timer.
package live

import (
	"sort"
	"sync"

	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
	"aida/internal/textstat"
)

// Config gates graduation: how much independent evidence an emerging
// surface needs before it becomes a KB entity.
type Config struct {
	// MinOccurrences is the number of emerging observations a surface
	// needs across documents before it graduates (default 3). One
	// low-confidence document must never mint an entity.
	MinOccurrences int
	// MinKeyphrases is the minimum harvested-model size (default 3): a
	// placeholder with fewer keyphrases has too little context to be a
	// useful repository entry.
	MinKeyphrases int
	// MinConfidence drops observations whose discovery confidence is
	// below the threshold (default 0 = keep all; emerging placeholders
	// win with modest confidence by construction).
	MinConfidence float64
	// MaxPending bounds the tracked surface set (default 1024). At the
	// bound, observations of unseen surfaces are dropped — memory stays
	// bounded under adversarial input.
	MaxPending int
	// Domain and Types label graduated entities (defaults "emerging" and
	// ["emerging"]), so downstream consumers can tell graduated entries
	// from curated ones.
	Domain string
	Types  []string
}

func (c Config) withDefaults() Config {
	if c.MinOccurrences <= 0 {
		c.MinOccurrences = 3
	}
	if c.MinKeyphrases <= 0 {
		c.MinKeyphrases = 3
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.Domain == "" {
		c.Domain = "emerging"
	}
	if c.Types == nil {
		c.Types = []string{"emerging"}
	}
	return c
}

// candidateEntity is one surface's accumulated evidence: how many
// documents declared it emerging, and the richest placeholder model seen.
type candidateEntity struct {
	occurrences int
	model       disambig.Candidate
}

// Graduator accumulates emerging-entity observations across documents and
// graduates surfaces that cross the evidence thresholds into a kb.Delta.
// All methods are safe for concurrent use.
type Graduator struct {
	cfg Config

	mu      sync.Mutex
	pending map[string]*candidateEntity
}

// NewGraduator returns an empty graduator with the given gates (zero
// fields take the documented defaults).
func NewGraduator(cfg Config) *Graduator {
	return &Graduator{cfg: cfg.withDefaults(), pending: make(map[string]*candidateEntity)}
}

// Pending reports how many surfaces are accumulating evidence.
func (g *Graduator) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// Observe folds one discovery result into the pending evidence: every
// mention declared emerging whose confidence clears MinConfidence and
// whose placeholder model carries at least MinKeyphrases keyphrases counts
// as one occurrence of its surface. conf may be nil (no confidence gate).
// Mentions without a harvested model are skipped — an emerging verdict
// with no global evidence is not graduation material.
func (g *Graduator) Observe(d *emerge.Discovery, conf []float64) {
	if d == nil || d.Output == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, r := range d.Output.Results {
		if i >= len(d.Emerging) || !d.Emerging[i] {
			continue
		}
		if conf != nil && i < len(conf) && conf[i] < g.cfg.MinConfidence {
			continue
		}
		model, ok := d.Models[r.Surface]
		if !ok || model.Entity != kb.NoEntity || len(model.Keyphrases) < g.cfg.MinKeyphrases {
			continue
		}
		ce := g.pending[r.Surface]
		if ce == nil {
			if len(g.pending) >= g.cfg.MaxPending {
				continue
			}
			ce = &candidateEntity{}
			g.pending[r.Surface] = ce
		}
		ce.occurrences++
		// Keep the richest model seen: later chunks may harvest more
		// evidence for the same unknown entity.
		if len(model.Keyphrases) >= len(ce.model.Keyphrases) {
			ce.model = model
		}
	}
}

// Graduate drains every surface whose occurrence count reached
// MinOccurrences and returns them as one kb.Delta against base (nil when
// nothing is ready). Graduated surfaces leave the pending set whether or
// not the caller applies the delta.
//
// The delta carries precomputed facts, consistent with the base's frozen
// statistics: keyphrase and keyword IDFs reuse the base weight where one
// exists and otherwise get the minimum-evidence weight IDF(N', 1) — the
// weight of a term seen in one pseudo-document of the grown repository —
// recorded in the delta's IDF extensions so overlay and rebuild agree.
func (g *Graduator) Graduate(base kb.Store) *kb.Delta {
	ready := g.takeReady()
	if len(ready) == 0 {
		return nil
	}
	baseN := base.NumEntities()
	d := &kb.Delta{BaseEntities: baseN}
	// The IDF weight for vocabulary the repository has never seen: one
	// occurrence in a repository grown by the graduating batch.
	newIDF := textstat.IDF(float64(baseN+len(ready)), 1)
	taken := make(map[string]bool, len(ready))
	for _, r := range ready {
		name := r.surface
		if _, dup := base.EntityByName(name); dup || taken[name] {
			name += " (emerging)"
		}
		if _, dup := base.EntityByName(name); dup || taken[name] {
			continue // even the suffixed name collides; keep the KB consistent and drop
		}
		taken[name] = true
		id := kb.EntityID(d.BaseEntities + len(d.Entities))
		ne := kb.NewEntity{
			Name:        name,
			Domain:      g.cfg.Domain,
			Types:       append([]string(nil), g.cfg.Types...),
			KeywordNPMI: make(map[string]float64, len(r.model.KeywordNPMI)),
		}
		for w, v := range r.model.KeywordNPMI {
			ne.KeywordNPMI[w] = v
		}
		for _, kp := range r.model.Keyphrases {
			idf := base.PhraseIDF(kp.Phrase)
			if idf == 0 {
				idf = newIDF
				if d.PhraseIDF == nil {
					d.PhraseIDF = make(map[string]float64)
				}
				d.PhraseIDF[kp.Phrase] = newIDF
			}
			kp.IDF = idf
			ne.Keyphrases = append(ne.Keyphrases, kp)
			for _, w := range kp.Words {
				if base.WordIDF(w) == 0 {
					if d.WordIDF == nil {
						d.WordIDF = make(map[string]float64)
					}
					d.WordIDF[w] = newIDF
				}
			}
		}
		d.Entities = append(d.Entities, ne)
		// The observed surface becomes a dictionary row weighted by the
		// evidence count (the canonical name additionally carries the
		// implicit count-1 row every new entity gets).
		d.Rows = append(d.Rows, kb.RowAddition{Surface: r.surface, Entity: id, Count: r.occurrences})
	}
	if d.IsEmpty() {
		return nil
	}
	return d
}

type readySurface struct {
	surface     string
	occurrences int
	model       disambig.Candidate
}

// takeReady removes and returns the graduation-ready surfaces, sorted for
// deterministic delta construction.
func (g *Graduator) takeReady() []readySurface {
	g.mu.Lock()
	defer g.mu.Unlock()
	var ready []readySurface
	for s, ce := range g.pending {
		if ce.occurrences >= g.cfg.MinOccurrences {
			ready = append(ready, readySurface{surface: s, occurrences: ce.occurrences, model: ce.model})
			delete(g.pending, s)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].surface < ready[j].surface })
	return ready
}
