package live

import (
	"context"
	"log"
	"sync"
	"time"

	"aida"
	"aida/internal/disambig"
	"aida/internal/emerge"
	"aida/internal/kb"
)

// noteDoc is one buffered document awaiting discovery: its text and the
// deduplicated mention surfaces the annotation run recognized.
type noteDoc struct {
	text     string
	surfaces []string
}

// Loop drives the graduation feedback cycle against a serving System:
// annotated documents containing out-of-KB mentions are buffered (Note),
// periodically re-run through the emerging-entity discovery pipeline
// against the serving KB generation, confident discoveries accumulate in
// a Graduator, and graduated entities are installed via ApplyDelta and
// journaled. The very next annotation request after an apply can link the
// graduated entity by name.
type Loop struct {
	// System is the serving system deltas are applied to.
	System *aida.System
	// Graduator accumulates evidence (nil = a fresh default Graduator).
	Graduator *Graduator
	// Journal, when set, records every applied delta for replay on boot.
	Journal *Journal
	// Method disambiguates the EE-extended problems (nil = the emerge
	// pipeline's default, a prior-backed similarity variant).
	Method disambig.Method
	// MaxCandidates caps dictionary candidates per mention (0 = no cap).
	MaxCandidates int
	// Parallelism bounds the discovery pipeline's harvest workers.
	Parallelism int
	// MaxDocs bounds the buffered document window (default 64); beyond
	// it the oldest documents are dropped.
	MaxDocs int
	// Logger receives progress lines (nil = silent).
	Logger *log.Logger

	mu   sync.Mutex
	docs []noteDoc
}

func (l *Loop) graduator() *Graduator {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Graduator == nil {
		l.Graduator = NewGraduator(Config{})
	}
	return l.Graduator
}

func (l *Loop) maxDocs() int {
	if l.MaxDocs <= 0 {
		return 64
	}
	return l.MaxDocs
}

func (l *Loop) logf(format string, args ...any) {
	if l.Logger != nil {
		l.Logger.Printf(format, args...)
	}
}

// Note offers one annotated document to the loop. Only documents with at
// least one out-of-KB mention (Entity == NoEntity) are buffered — linked
// documents carry no emerging evidence. Safe for concurrent use; intended
// as the server's OnDocument hook.
func (l *Loop) Note(text string, anns []aida.Annotation) {
	hasEE := false
	seen := make(map[string]bool, len(anns))
	surfaces := make([]string, 0, len(anns))
	for _, a := range anns {
		if a.Entity == kb.NoEntity {
			hasEE = true
		}
		if s := a.Mention.Text; !seen[s] {
			seen[s] = true
			surfaces = append(surfaces, s)
		}
	}
	if !hasEE || len(surfaces) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.docs = append(l.docs, noteDoc{text: text, surfaces: surfaces})
	if over := len(l.docs) - l.maxDocs(); over > 0 {
		l.docs = append(l.docs[:0:0], l.docs[over:]...)
	}
}

// Buffered reports how many documents await the next RunOnce.
func (l *Loop) Buffered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.docs)
}

// RunOnce drains the buffered documents, runs emerging-entity discovery
// over them as one harvesting chunk against the serving KB generation,
// folds the results into the Graduator, and — when surfaces graduated —
// applies the resulting delta to the System and journals it. It returns
// the apply receipt and whether a delta was applied.
//
// Concurrent appliers (the admin delta endpoint) are safe: ApplyDelta
// validates the delta against the generation actually serving, so a
// racing apply surfaces as a rejected delta, never a corrupted store. The
// drained evidence is consumed either way.
func (l *Loop) RunOnce(ctx context.Context) (aida.DeltaReceipt, bool, error) {
	l.mu.Lock()
	docs := l.docs
	l.docs = nil
	l.mu.Unlock()

	g := l.graduator()
	if len(docs) > 0 {
		lv := l.System.Live()
		pl := &emerge.Pipeline{
			KB:            lv.Store,
			Method:        l.Method,
			MaxCandidates: l.MaxCandidates,
			Parallelism:   l.Parallelism,
			Scorer:        lv.Engine,
			Context:       ctx,
		}
		chunk := make([]emerge.ChunkDoc, len(docs))
		surfaceSet := make(map[string]bool)
		var allSurfaces []string
		for i, d := range docs {
			chunk[i] = emerge.ChunkDoc{Text: d.text, Surfaces: d.surfaces}
			for _, s := range d.surfaces {
				if !surfaceSet[s] {
					surfaceSet[s] = true
					allSurfaces = append(allSurfaces, s)
				}
			}
		}
		// Harvest the whole window once; each document is then discovered
		// against the shared placeholder models.
		models := pl.Models(chunk, allSurfaces, nil)
		if ctx.Err() != nil {
			return aida.DeltaReceipt{}, false, ctx.Err()
		}
		disc := &emerge.Discoverer{Method: pl.Method}
		if disc.Method == nil {
			disc.Method = disambig.NewAIDAVariant("ee-sim", disambig.Config{UsePrior: true, PriorTest: true})
		}
		for _, d := range docs {
			if ctx.Err() != nil {
				return aida.DeltaReceipt{}, false, ctx.Err()
			}
			p := pl.Problem(d.text, d.surfaces, nil)
			out := disc.Discover(p, models)
			g.Observe(out, emerge.NormConfidence(out.Output))
		}
	}

	delta := g.Graduate(l.System.Store())
	if delta == nil {
		return aida.DeltaReceipt{}, false, nil
	}
	receipt, err := l.System.ApplyDelta(delta)
	if err != nil {
		return aida.DeltaReceipt{}, false, err
	}
	l.logf("live: graduated %d entities (%d rows) -> generation %d, %d KB entities",
		receipt.Entities, receipt.Rows, receipt.Generation, receipt.KBEntities)
	if l.Journal != nil {
		if jerr := l.Journal.Append(delta); jerr != nil {
			// The apply already happened; a journal failure costs
			// durability, not correctness. Log and keep serving.
			l.logf("live: journal append failed: %v", jerr)
		}
	}
	return receipt, true, nil
}

// Run calls RunOnce every interval until ctx is canceled. Errors are
// logged and do not stop the loop.
func (l *Loop) Run(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, _, err := l.RunOnce(ctx); err != nil && ctx.Err() == nil {
				l.logf("live: graduation pass failed: %v", err)
			}
		}
	}
}
