package kb

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseShardMap(t *testing.T) {
	m, err := ParseShardMap([]byte(`{
		"shards": [
			{"primary": "http://kb0:8080", "replicas": ["https://kb0b:8443"]},
			{"primary": "http://kb1:8080"}
		]
	}`))
	if err != nil {
		t.Fatalf("ParseShardMap: %v", err)
	}
	if m.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", m.NumShards())
	}
	if got, want := m.Endpoints(0), []string{"http://kb0:8080", "https://kb0b:8443"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Endpoints(0) = %v, want %v", got, want)
	}
	if got, want := m.Endpoints(1), []string{"http://kb1:8080"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Endpoints(1) = %v, want %v", got, want)
	}
}

func TestShardMapValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"not json", `{`, "parse shard map"},
		{"empty", `{}`, "no shards"},
		{"no primary", `{"shards":[{"replicas":["http://kb0:8080"]}]}`, "no primary"},
		{"relative url", `{"shards":[{"primary":"kb0:8080"}]}`, "absolute http(s) URL"},
		{"bad scheme", `{"shards":[{"primary":"ftp://kb0:8080"}]}`, "absolute http(s) URL"},
		{"bad replica", `{"shards":[{"primary":"http://kb0:8080","replicas":["nope"]}]}`, "absolute http(s) URL"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseShardMap([]byte(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseShardMap = %v, want an error containing %q", err, tc.want)
			}
		})
	}
}

func TestLoadShardMap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(`{"shards":[{"primary":"http://kb0:8080"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadShardMap(path)
	if err != nil {
		t.Fatalf("LoadShardMap: %v", err)
	}
	if m.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", m.NumShards())
	}
	if _, err := LoadShardMap(filepath.Join(t.TempDir(), "missing.json")); err == nil || !strings.Contains(err.Error(), "read shard map") {
		t.Fatalf("LoadShardMap(missing) = %v, want a read error", err)
	}
}
