package kb

import (
	"encoding/json"
	"fmt"
	"os"
)

// Per-domain dictionary layers (ProtagonistTagger-style, ROADMAP item 1):
// a DomainLayer composes a domain-specific surface→entity dictionary over
// any base Store, so a request annotated "in" a domain (literary texts,
// sports wires, a tenant's vertical) sees domain-appropriate priors — "The
// Bulls" meaning the team, not the animal — without rebuilding or forking
// the knowledge base. The layer reuses the copy-on-write Overlay machinery:
// a dictionary is lowered to a rows-only Delta, so every conformance
// guarantee the live-update suite pins (priors rematerialized through
// candidatesFrom, byte-identical to a full rebuild) carries over for free.

// DomainRow is one surface→entity count assertion of a domain dictionary.
// Entity names the target by its canonical KB name — dictionaries are
// authored against names, not generation-specific ids.
type DomainRow struct {
	Surface string `json:"surface"`
	Entity  string `json:"entity"`
	// Count is the anchor-count mass added to the row; it folds into the
	// base counts, so a large count makes the entity the domain's dominant
	// sense of the surface. Must be positive.
	Count int `json:"count"`
}

// DomainDictionary is one named per-domain surface→entity dictionary, the
// unit of the server's -domains domains.json file.
type DomainDictionary struct {
	Name string      `json:"name"`
	Rows []DomainRow `json:"rows"`
}

// DomainLayer is a base Store with one domain dictionary composed over it.
// It is a full Store (it embeds an Overlay built from a rows-only Delta):
// dictionary rows the domain touches carry merged counts with priors
// recomputed exactly as a rebuild would; every other read passes through
// to the base. Like every Store it is immutable after construction.
type DomainLayer struct {
	*Overlay
	name string
}

// Name returns the domain's registry name (the WithDomain selector).
func (l *DomainLayer) Name() string { return l.name }

// NewDomainLayer resolves a domain dictionary against the base store and
// composes it as a copy-on-write layer. Rows must name existing entities
// (a domain dictionary re-weights senses, it does not create entities) and
// carry positive counts.
func NewDomainLayer(base Store, dict DomainDictionary) (*DomainLayer, error) {
	if dict.Name == "" {
		return nil, fmt.Errorf("kb: domain dictionary has no name")
	}
	if len(dict.Rows) == 0 {
		return nil, fmt.Errorf("kb: domain %q has no rows", dict.Name)
	}
	d := &Delta{BaseEntities: base.NumEntities(), Rows: make([]RowAddition, len(dict.Rows))}
	for i, r := range dict.Rows {
		id, ok := base.EntityByName(r.Entity)
		if !ok {
			return nil, fmt.Errorf("kb: domain %q row %d: unknown entity %q", dict.Name, i, r.Entity)
		}
		d.Rows[i] = RowAddition{Surface: r.Surface, Entity: id, Count: r.Count}
	}
	ov, err := NewOverlay(base, d)
	if err != nil {
		return nil, fmt.Errorf("kb: domain %q: %w", dict.Name, err)
	}
	return &DomainLayer{Overlay: ov, name: dict.Name}, nil
}

// domainsFile is the JSON shape of a -domains file: either a bare array of
// dictionaries or an object with a "domains" key.
type domainsFile struct {
	Domains []DomainDictionary `json:"domains"`
}

// ParseDomainDictionaries decodes a domains.json payload: a bare array
// `[{"name": ..., "rows": [...]}, ...]` or an object `{"domains": [...]}`.
// Names must be non-empty and unique; row validation against a store
// happens in NewDomainLayer.
func ParseDomainDictionaries(data []byte) ([]DomainDictionary, error) {
	var dicts []DomainDictionary
	if err := json.Unmarshal(data, &dicts); err != nil {
		var f domainsFile
		if err2 := json.Unmarshal(data, &f); err2 != nil {
			return nil, fmt.Errorf("kb: parse domains: %w", err)
		}
		dicts = f.Domains
	}
	if len(dicts) == 0 {
		return nil, fmt.Errorf("kb: domains file defines no domains")
	}
	seen := make(map[string]bool, len(dicts))
	for i, d := range dicts {
		if d.Name == "" {
			return nil, fmt.Errorf("kb: domain %d has no name", i)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("kb: domain %q defined twice", d.Name)
		}
		seen[d.Name] = true
	}
	return dicts, nil
}

// LoadDomainDictionaries reads and validates a domains.json file (the
// -domains flag of cmd/aidaserver and cmd/aida).
func LoadDomainDictionaries(path string) ([]DomainDictionary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dicts, err := ParseDomainDictionaries(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return dicts, nil
}
