package kb

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Remote KB hosting, client side. A RemoteStore is a kb.Store over a fleet
// of shard hosts (StoreHost processes), routed with the same placement
// functions as the in-process ShardedKB: entity e lives on shard
// EntityShard(e, N), the dictionary row of a surface on NameShard(surface,
// N). Dictionary membership (the recognition hot path) and the global IDF
// tables are mirrored locally at dial time — the remote analogue of the
// router-replicated side data — while entities and candidate rows are
// fetched on demand, batched per shard (scatter-gather), and cached
// forever: the KB is immutable, so a fetched value never goes stale.
//
// Every fetch is hedged and fault-tolerant: a request that has not
// answered within HedgeAfter is raced against the next replica, an error
// or fingerprint mismatch fails over to the next replica with backoff, and
// only when every endpoint of a shard has failed does the operation give
// up. Candidates are materialized from raw rows through candidatesFrom,
// so a fleet's annotation output is byte-identical to the local KB's.
//
// Store has no error returns, so a shard whose every replica is down
// surfaces as a panic carrying *RemoteError; aida.System converts that
// panic into a request error at the annotation boundary.

// RemoteOptions tune a DialFleet connection. The zero value is usable.
type RemoteOptions struct {
	// Client performs the HTTP requests. Default: a dedicated client with
	// keep-alive connection pooling and HTTP/2 enabled where the transport
	// negotiates it (ForceAttemptHTTP2).
	Client *http.Client
	// HedgeAfter is how long a request may go unanswered before it is
	// raced against the next replica (default 50ms; < 0 disables hedging).
	HedgeAfter time.Duration
	// RetryBackoff is the base delay before retrying on another endpoint
	// after an error; it doubles per retry (default 10ms; < 0 disables).
	RetryBackoff time.Duration
	// AttemptTimeout bounds each individual endpoint attempt (default 10s).
	AttemptTimeout time.Duration
	// ExpectFingerprint, when non-zero, is the KB content hash the fleet
	// must serve; a host reporting any other hash is a dial error. Zero
	// learns the fingerprint from the fleet (all hosts must still agree).
	ExpectFingerprint uint64
	// NamesPageSize bounds the dictionary-mirror pages fetched at dial
	// (default 8192; tests shrink it to exercise pagination).
	NamesPageSize int
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
			ForceAttemptHTTP2:   true,
		}}
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 50 * time.Millisecond
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 10 * time.Second
	}
	if o.NamesPageSize <= 0 {
		o.NamesPageSize = 8192
	}
	return o
}

// RemoteStats is a snapshot of a RemoteStore's fetch counters, reported on
// /v1/stats and as Prometheus counters by the serving front-end.
type RemoteStats struct {
	// Shards is the fleet width.
	Shards int `json:"shards"`
	// Requests counts logical store operations sent to the fleet.
	Requests int64 `json:"requests"`
	// Hedges counts speculative duplicate attempts launched because an
	// endpoint exceeded the hedge latency threshold.
	Hedges int64 `json:"hedges"`
	// Retries counts attempts relaunched on another endpoint after an
	// error or fingerprint mismatch.
	Retries int64 `json:"retries"`
	// Failovers counts operations ultimately served by a non-primary
	// endpoint after the primary failed.
	Failovers int64 `json:"failovers"`
	// CachedEntities and CachedRows size the immutable read-through caches.
	CachedEntities int `json:"cached_entities"`
	CachedRows     int `json:"cached_rows"`
}

// RemoteError is the terminal failure of one store operation: every
// endpoint of the shard failed (network error, HTTP error or fingerprint
// mismatch). Store methods panic with it — the pipeline recovers it into a
// request error at the aida.System boundary.
type RemoteError struct {
	Op    string
	Shard int
	Errs  []error
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("kb: remote %s on shard %d failed on all %d endpoint(s): %v",
		e.Op, e.Shard, len(e.Errs), errors.Join(e.Errs...))
}

func (e *RemoteError) Unwrap() []error { return e.Errs }

// RemoteStore is a Store served by a fleet of shard hosts. Immutable KB
// content is cached locally after first fetch; all methods are safe for
// concurrent use.
type RemoteStore struct {
	opts RemoteOptions
	eps  [][]string // per shard, primary first

	fp          uint64
	numEntities int

	names   []string // sorted dictionary mirror
	nameSet map[string]struct{}
	idfP    map[string]float64
	idfW    map[string]float64

	mu       sync.RWMutex
	entities map[EntityID]*Entity
	cands    map[string][]Candidate
	byName   map[string]EntityID

	requests, hedges, retries, failovers atomic.Int64
}

// Compile-time conformance: a RemoteStore is a Store with batched
// candidate materialization.
var _ BulkCandidateStore = (*RemoteStore)(nil)

// DialFleet connects to the shard fleet named by the map: it validates the
// topology (every endpoint reachable, reporting the right shard position
// and one agreed-on content fingerprint), then mirrors the dictionary key
// set and the global IDF tables so recognition and context weighting run
// locally. A fingerprint disagreement anywhere in the fleet — or with
// ExpectFingerprint — is a dial error naming the offending endpoint.
func DialFleet(ctx context.Context, m ShardMap, opts RemoteOptions) (*RemoteStore, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	r := &RemoteStore{
		opts:     o,
		eps:      make([][]string, m.NumShards()),
		entities: make(map[EntityID]*Entity),
		cands:    make(map[string][]Candidate),
		byName:   make(map[string]EntityID),
	}
	for i := range r.eps {
		r.eps[i] = m.Endpoints(i)
	}

	// Verify every endpoint of every shard before trusting any of them:
	// the whole fleet must serve one repository, at the right positions.
	want := o.ExpectFingerprint
	for shard, eps := range r.eps {
		for _, ep := range eps {
			meta, err := r.fetchMeta(ctx, ep)
			if err != nil {
				return nil, fmt.Errorf("kb: dial shard %d endpoint %s: %v", shard, ep, err)
			}
			if meta.Shards != len(r.eps) || meta.Shard != shard {
				return nil, fmt.Errorf("kb: dial shard %d endpoint %s: host serves shard %d/%d, want %d/%d (mis-wired shard map?)",
					shard, ep, meta.Shard, meta.Shards, shard, len(r.eps))
			}
			if want == 0 {
				want = meta.Fingerprint
			}
			if meta.Fingerprint != want {
				return nil, fmt.Errorf("kb: dial shard %d endpoint %s: KB fingerprint %016x does not match the fleet's %016x — the host serves different repository content",
					shard, ep, meta.Fingerprint, want)
			}
			if shard == 0 && ep == eps[0] {
				r.numEntities = meta.NumEntities
			}
			if meta.NumEntities != r.numEntities {
				return nil, fmt.Errorf("kb: dial shard %d endpoint %s: %d entities, fleet has %d",
					shard, ep, meta.NumEntities, r.numEntities)
			}
		}
	}
	r.fp = want

	var idf wireIDF
	if err := r.do(ctx, "idf", 0, http.MethodGet, "/idf", nil, nil, &idf); err != nil {
		return nil, fmt.Errorf("kb: dial: replicate IDF tables: %v", err)
	}
	r.idfP, r.idfW = idf.Phrase, idf.Word

	// Mirror the dictionary key set: HasName is the recognition hot path
	// and must never cost a round trip.
	r.nameSet = make(map[string]struct{})
	for shard := range r.eps {
		after := ""
		for {
			var page wireNames
			q := url.Values{"after": {after}, "limit": {strconv.Itoa(o.NamesPageSize)}}
			if err := r.do(ctx, "names", shard, http.MethodGet, "/names", q, nil, &page); err != nil {
				return nil, fmt.Errorf("kb: dial: mirror dictionary of shard %d: %v", shard, err)
			}
			for _, n := range page.Names {
				r.nameSet[n] = struct{}{}
			}
			r.names = append(r.names, page.Names...)
			if !page.More {
				break
			}
			after = page.Names[len(page.Names)-1]
		}
	}
	sort.Strings(r.names)
	return r, nil
}

// fetchMeta reads one endpoint's meta directly (no hedging: dial must see
// every endpoint individually).
func (r *RemoteStore) fetchMeta(ctx context.Context, ep string) (wireMeta, error) {
	var meta wireMeta
	data, err := r.attempt(ctx, ep, http.MethodGet, "/meta", nil, nil, false)
	if err != nil {
		return meta, err
	}
	return meta, gob.NewDecoder(bytes.NewReader(data)).Decode(&meta)
}

// Stats returns a snapshot of the fetch counters and cache sizes.
func (r *RemoteStore) Stats() RemoteStats {
	r.mu.RLock()
	ents, rows := len(r.entities), len(r.cands)
	r.mu.RUnlock()
	return RemoteStats{
		Shards:         len(r.eps),
		Requests:       r.requests.Load(),
		Hedges:         r.hedges.Load(),
		Retries:        r.retries.Load(),
		Failovers:      r.failovers.Load(),
		CachedEntities: ents,
		CachedRows:     rows,
	}
}

// do performs one hedged, fault-tolerant store operation against shard's
// endpoint list and gob-decodes the winning response into out.
func (r *RemoteStore) do(ctx context.Context, op string, shard int, method, path string, query url.Values, reqBody any, out any) error {
	r.requests.Add(1)
	eps := r.eps[shard]
	var body []byte
	if reqBody != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(reqBody); err != nil {
			return fmt.Errorf("kb: encode %s request: %v", op, err)
		}
		body = buf.Bytes()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels losing attempts once a winner returns

	type attemptResult struct {
		idx  int
		data []byte
		err  error
	}
	results := make(chan attemptResult, len(eps))
	next := 0
	launch := func() {
		i := next
		next++
		go func() {
			data, err := r.attempt(ctx, eps[i], method, path, query, body, true)
			results <- attemptResult{idx: i, data: data, err: err}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	var hedgeT *time.Timer
	if r.opts.HedgeAfter > 0 && len(eps) > 1 {
		hedgeT = time.NewTimer(r.opts.HedgeAfter)
		defer hedgeT.Stop()
		hedgeC = hedgeT.C
	}
	var errs []error
	primaryFailed := false
	outstanding := 1
	backoff := r.opts.RetryBackoff
	for {
		select {
		case res := <-results:
			if res.err == nil {
				if res.idx > 0 && primaryFailed {
					r.failovers.Add(1)
				}
				return gob.NewDecoder(bytes.NewReader(res.data)).Decode(out)
			}
			if res.idx == 0 {
				primaryFailed = true
			}
			outstanding--
			errs = append(errs, fmt.Errorf("%s: %w", eps[res.idx], res.err))
			if next < len(eps) {
				r.retries.Add(1)
				if backoff > 0 {
					time.Sleep(backoff)
					backoff *= 2
				}
				launch()
				outstanding++
			} else if outstanding == 0 {
				return &RemoteError{Op: op, Shard: shard, Errs: errs}
			}
		case <-hedgeC:
			if next < len(eps) {
				r.hedges.Add(1)
				launch()
				outstanding++
				hedgeT.Reset(r.opts.HedgeAfter)
			} else {
				hedgeC = nil
			}
		}
	}
}

// attempt performs one HTTP exchange with one endpoint, validating status
// and (when checkFP) the response's KB fingerprint header against the
// fleet's. It returns the raw body so hedged duplicates decode nothing.
func (r *RemoteStore) attempt(ctx context.Context, ep, method, path string, query url.Values, body []byte, checkFP bool) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
	defer cancel()
	u := ep + StorePathPrefix + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", gobContentType)
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if checkFP {
		got, err := strconv.ParseUint(resp.Header.Get(FingerprintHeader), 16, 64)
		if err != nil || got != r.fp {
			return nil, fmt.Errorf("KB fingerprint %s does not match the fleet's %016x — replica serves different repository content",
				resp.Header.Get(FingerprintHeader), r.fp)
		}
	}
	return io.ReadAll(resp.Body)
}

// must panics with the operation's RemoteError; Store's read surface has
// no error returns, and a fleet with every replica of a shard down cannot
// answer correctly. aida.System recovers the panic into a request error.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// NumEntities returns |E| (from the fleet meta).
func (r *RemoteStore) NumEntities() int { return r.numEntities }

// NumShards returns the fleet width.
func (r *RemoteStore) NumShards() int { return len(r.eps) }

// Fingerprint returns the fleet's agreed-on content hash (verified against
// every response).
func (r *RemoteStore) Fingerprint() uint64 { return r.fp }

// HasName answers from the local dictionary mirror; recognition never
// costs a round trip.
func (r *RemoteStore) HasName(normalized string) bool {
	_, ok := r.nameSet[normalized]
	return ok
}

// Names returns all dictionary keys, sorted (a copy of the dial-time
// mirror).
func (r *RemoteStore) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// PhraseIDF returns the global IDF of a keyphrase (dial-replicated).
func (r *RemoteStore) PhraseIDF(phrase string) float64 { return lowerIDF(r.idfP, phrase) }

// WordIDF returns the global IDF of a keyword (dial-replicated).
func (r *RemoteStore) WordIDF(word string) float64 { return lowerIDF(r.idfW, word) }

// Entity returns the entity with the given id, fetching it from its owning
// shard on first use. It panics on ids outside the repository, matching
// (*KB).Entity.
func (r *RemoteStore) Entity(id EntityID) *Entity {
	if id < 0 || int(id) >= r.numEntities {
		panic(fmt.Sprintf("kb: entity id %d out of range [0,%d)", id, r.numEntities))
	}
	r.mu.RLock()
	e := r.entities[id]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	must(r.fetchEntities(context.Background(), map[int][]EntityID{EntityShard(id, len(r.eps)): {id}}))
	r.mu.RLock()
	e = r.entities[id]
	r.mu.RUnlock()
	return e
}

// fetchEntities scatters one batched fetch per shard and installs the
// results in the entity cache.
func (r *RemoteStore) fetchEntities(ctx context.Context, byShard map[int][]EntityID) error {
	return r.scatter(ctx, byShard, func(shard int, ids []EntityID) error {
		var resp wireEntities
		if err := r.do(ctx, "entities", shard, http.MethodPost, "/entities", nil, wireIDsRequest{IDs: ids}, &resp); err != nil {
			return err
		}
		if len(resp.Entities) != len(ids) {
			return &RemoteError{Op: "entities", Shard: shard,
				Errs: []error{fmt.Errorf("got %d entities for %d ids", len(resp.Entities), len(ids))}}
		}
		r.mu.Lock()
		for i := range resp.Entities {
			if _, ok := r.entities[ids[i]]; !ok {
				r.entities[ids[i]] = &resp.Entities[i]
			}
		}
		r.mu.Unlock()
		return nil
	})
}

// scatter runs one fetch per shard concurrently and returns the first
// error (the KB is immutable, so duplicate installs are benign).
func (r *RemoteStore) scatter(ctx context.Context, byShard map[int][]EntityID, fetch func(shard int, ids []EntityID) error) error {
	if len(byShard) == 0 {
		return nil
	}
	if len(byShard) == 1 {
		for shard, ids := range byShard {
			return fetch(shard, ids)
		}
	}
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for shard, ids := range byShard {
		wg.Add(1)
		go func(shard int, ids []EntityID) {
			defer wg.Done()
			if err := fetch(shard, ids); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(shard, ids)
	}
	wg.Wait()
	return firstErr
}

// EntityByName looks up an entity by canonical name, fanning out to shards
// in shard order exactly like ShardedKB (canonical names are globally
// unique, so at most one shard answers). Hits are cached.
func (r *RemoteStore) EntityByName(name string) (EntityID, bool) {
	r.mu.RLock()
	id, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		return id, true
	}
	for shard := range r.eps {
		var resp wireEntityByName
		must(r.do(context.Background(), "entity-by-name", shard, http.MethodGet, "/entity-by-name",
			url.Values{"name": {name}}, nil, &resp))
		if resp.OK {
			r.mu.Lock()
			r.byName[name] = resp.ID
			r.mu.Unlock()
			return resp.ID, true
		}
	}
	return 0, false
}

// Candidates returns the candidate entities for a surface form, fetching
// the dictionary row from its owning shard on first use. The returned
// slice is shared across calls and must not be modified.
func (r *RemoteStore) Candidates(surface string) []Candidate {
	key := NormalizeName(surface)
	if _, ok := r.nameSet[key]; !ok {
		return nil // dictionary mirror: a miss needs no round trip
	}
	r.mu.RLock()
	c, ok := r.cands[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	must(r.fetchRows(context.Background(), map[int][]string{NameShard(key, len(r.eps)): {key}}))
	r.mu.RLock()
	c = r.cands[key]
	r.mu.RUnlock()
	return c
}

// fetchRows scatters one batched row fetch per shard, materializes the
// candidates through the same arithmetic as the local KB, and installs
// them in the row cache.
func (r *RemoteStore) fetchRows(ctx context.Context, byShard map[int][]string) error {
	if len(byShard) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for shard, keys := range byShard {
		wg.Add(1)
		go func(shard int, keys []string) {
			defer wg.Done()
			var resp wireRows
			err := r.do(ctx, "rows", shard, http.MethodPost, "/rows", nil, wireSurfacesRequest{Surfaces: keys}, &resp)
			if err == nil && len(resp.Rows) != len(keys) {
				err = &RemoteError{Op: "rows", Shard: shard,
					Errs: []error{fmt.Errorf("got %d rows for %d surfaces", len(resp.Rows), len(keys))}}
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			r.mu.Lock()
			for i, key := range keys {
				if _, ok := r.cands[key]; !ok {
					r.cands[key] = candidatesFromRows(resp.Rows[i])
				}
			}
			r.mu.Unlock()
		}(shard, keys)
	}
	wg.Wait()
	return firstErr
}

// Prior returns P(entity|surface), or 0 when the pair is unknown.
func (r *RemoteStore) Prior(surface string, e EntityID) float64 {
	for _, c := range r.Candidates(surface) {
		if c.Entity == e {
			return c.Prior
		}
	}
	return 0
}

// KeywordWeight returns the NPMI weight of word for entity e, served from
// the (cached) owning entity.
func (r *RemoteStore) KeywordWeight(e EntityID, word string) float64 {
	if w, ok := r.Entity(e).KeywordNPMI[word]; ok {
		return w
	}
	return 0
}

// CandidatesBulk materializes the candidate lists of many surfaces with at
// most two scatter-gather rounds over the fleet: one batched row fetch per
// shard owning an uncached dictionary row, then one batched entity fetch
// per shard owning an uncached candidate entity. The lists are positionally
// aligned with surfaces and byte-identical to per-surface Candidates calls;
// after it returns, every candidate's Entity is a local cache hit, so
// problem materialization costs no further round trips.
func (r *RemoteStore) CandidatesBulk(surfaces []string) [][]Candidate {
	lists := make([][]Candidate, len(surfaces))
	keys := make([]string, len(surfaces))
	needRows := make(map[int][]string)
	queued := make(map[string]struct{})
	r.mu.RLock()
	for i, s := range surfaces {
		key := NormalizeName(s)
		keys[i] = key
		if _, ok := r.nameSet[key]; !ok {
			continue
		}
		if c, ok := r.cands[key]; ok {
			lists[i] = c
			continue
		}
		if _, dup := queued[key]; dup {
			continue
		}
		queued[key] = struct{}{}
		shard := NameShard(key, len(r.eps))
		needRows[shard] = append(needRows[shard], key)
	}
	r.mu.RUnlock()

	must(r.fetchRows(context.Background(), needRows))

	needEnts := make(map[int][]EntityID)
	queuedEnt := make(map[EntityID]struct{})
	r.mu.RLock()
	for i, key := range keys {
		if lists[i] == nil {
			lists[i] = r.cands[key] // nil for out-of-dictionary surfaces
		}
		for _, c := range lists[i] {
			if _, ok := r.entities[c.Entity]; ok {
				continue
			}
			if _, dup := queuedEnt[c.Entity]; dup {
				continue
			}
			queuedEnt[c.Entity] = struct{}{}
			shard := EntityShard(c.Entity, len(r.eps))
			needEnts[shard] = append(needEnts[shard], c.Entity)
		}
	}
	r.mu.RUnlock()

	must(r.fetchEntities(context.Background(), needEnts))
	return lists
}
