package kb

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// buildMusicKB constructs a small hand-written KB used across the tests.
func buildMusicKB() *KB {
	b := NewBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person", "musician")
	larry := b.AddEntity("Larry Page", "tech", "person", "businessperson")
	kashmirSong := b.AddEntity("Kashmir (song)", "music", "song")
	kashmirRegion := b.AddEntity("Kashmir", "geography", "region")
	ledzep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person", "musician")

	b.AddName("Page", jimmy, 40)
	b.AddName("Page", larry, 60)
	b.AddName("Kashmir", kashmirRegion, 91)
	b.AddName("Kashmir", kashmirSong, 5)
	b.AddName("Plant", plant, 10)
	b.AddName("Zeppelin", ledzep, 30)

	b.AddLink(jimmy, ledzep)
	b.AddLink(plant, ledzep)
	b.AddLink(jimmy, kashmirSong)
	b.AddLink(plant, kashmirSong)
	b.AddLink(ledzep, kashmirSong)
	b.AddLink(ledzep, jimmy)
	b.AddLink(ledzep, plant)

	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "Led Zeppelin")
	b.AddKeyphrase(jimmy, "Gibson guitar")
	b.AddKeyphrase(jimmy, "hard rock")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(larry, "Stanford")
	b.AddKeyphrase(kashmirSong, "Led Zeppelin")
	b.AddKeyphrase(kashmirSong, "hard rock")
	b.AddKeyphrase(kashmirSong, "Physical Graffiti")
	b.AddKeyphrase(kashmirRegion, "Himalaya mountains")
	b.AddKeyphrase(kashmirRegion, "disputed territory")
	b.AddKeyphrase(ledzep, "English rock band")
	b.AddKeyphrase(ledzep, "hard rock")
	b.AddKeyphrase(plant, "English rock singer")
	b.AddKeyphrase(plant, "Led Zeppelin")
	return b.Build()
}

func TestCandidatesSortedByPrior(t *testing.T) {
	k := buildMusicKB()
	cands := k.Candidates("Page")
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	if k.Entity(cands[0].Entity).Name != "Larry Page" {
		t.Errorf("highest-prior candidate should be Larry Page, got %s", k.Entity(cands[0].Entity).Name)
	}
	if math.Abs(cands[0].Prior-0.6) > 1e-9 || math.Abs(cands[1].Prior-0.4) > 1e-9 {
		t.Errorf("priors wrong: %v", cands)
	}
}

func TestPriorsSumToOne(t *testing.T) {
	k := buildMusicKB()
	for _, name := range []string{"Page", "Kashmir", "Plant"} {
		sum := 0.0
		for _, c := range k.Candidates(name) {
			sum += c.Prior
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("priors for %q sum to %v", name, sum)
		}
	}
}

func TestCandidatesCaseRules(t *testing.T) {
	k := buildMusicKB()
	if got := k.Candidates("PAGE"); len(got) != 2 {
		t.Errorf("long names should match case-insensitively, got %v", got)
	}
	if got := k.Candidates("page"); len(got) != 2 {
		t.Errorf("long names should match case-insensitively, got %v", got)
	}
}

func TestUnknownName(t *testing.T) {
	k := buildMusicKB()
	if got := k.Candidates("Snowden"); got != nil {
		t.Errorf("unknown name should yield nil, got %v", got)
	}
	if k.HasName(NormalizeName("Snowden")) {
		t.Error("HasName should be false for unknown names")
	}
}

func TestLinksSymmetry(t *testing.T) {
	k := buildMusicKB()
	jimmy, _ := k.EntityByName("Jimmy Page")
	ledzep, _ := k.EntityByName("Led Zeppelin")
	found := false
	for _, in := range k.Entity(ledzep).InLinks {
		if in == jimmy {
			found = true
		}
	}
	if !found {
		t.Error("Jimmy Page should be an in-link of Led Zeppelin")
	}
	// In/out links are sorted and deduplicated.
	for _, e := range k.Entities() {
		if !sortedUnique(e.InLinks) || !sortedUnique(e.OutLinks) {
			t.Errorf("links of %s not sorted/unique", e.Name)
		}
	}
}

func sortedUnique(ids []EntityID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

func TestKeyphraseWeights(t *testing.T) {
	k := buildMusicKB()
	jimmy, _ := k.EntityByName("Jimmy Page")
	ent := k.Entity(jimmy)
	if len(ent.Keyphrases) != 4 {
		t.Fatalf("want 4 keyphrases, got %d", len(ent.Keyphrases))
	}
	var gibsonMI, hardRockMI float64
	for _, p := range ent.Keyphrases {
		switch p.Phrase {
		case "Gibson guitar":
			gibsonMI = p.MI
		case "hard rock":
			hardRockMI = p.MI
		}
		if p.MI < 0 || p.MI > 1 {
			t.Errorf("MI weight of %q out of range: %v", p.Phrase, p.MI)
		}
		if p.IDF < 0 {
			t.Errorf("IDF of %q negative", p.Phrase)
		}
	}
	// "Gibson guitar" is unique to Jimmy Page and "hard rock" is shared
	// with his own cluster; both must be positive signals for him.
	if gibsonMI <= 0 || hardRockMI <= 0 {
		t.Errorf("MI weights should be positive: gibson=%v hardrock=%v", gibsonMI, hardRockMI)
	}
}

func TestKeyphraseIDFOrdering(t *testing.T) {
	k := buildMusicKB()
	// "Physical Graffiti" appears for 1 entity, "hard rock" for 3: the
	// rarer phrase must have strictly higher IDF.
	if k.PhraseIDF("physical graffiti") <= k.PhraseIDF("hard rock") {
		t.Errorf("IDF ordering violated: rare=%v frequent=%v",
			k.PhraseIDF("physical graffiti"), k.PhraseIDF("hard rock"))
	}
}

func TestKeywordNPMIDiscardsNonPositive(t *testing.T) {
	k := buildMusicKB()
	for _, e := range k.Entities() {
		for w, v := range e.KeywordNPMI {
			if v <= 0 {
				t.Errorf("entity %s keeps non-positive NPMI for %q: %v", e.Name, w, v)
			}
		}
	}
}

func TestKeywordWeightFallback(t *testing.T) {
	k := buildMusicKB()
	jimmy, _ := k.EntityByName("Jimmy Page")
	if w := k.KeywordWeight(jimmy, "guitarist"); w <= 0 {
		t.Errorf("keyword of own keyphrase should have positive weight, got %v", w)
	}
	if w := k.KeywordWeight(jimmy, "nonexistentword"); w != 0 {
		t.Errorf("unknown keyword should have zero weight, got %v", w)
	}
}

func TestPhraseWordsFiltersStopwords(t *testing.T) {
	got := PhraseWords("Bank of England")
	want := []string{"bank", "england"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIntersectSortedSize(t *testing.T) {
	a := []EntityID{1, 3, 5, 7}
	b := []EntityID{2, 3, 4, 5, 9}
	if got := IntersectSortedSize(a, b); got != 2 {
		t.Fatalf("got %d want 2", got)
	}
	if got := IntersectSortedSize(nil, b); got != 0 {
		t.Fatalf("empty intersection: got %d", got)
	}
}

func TestIntersectSortedSizeProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		am := map[EntityID]bool{}
		bm := map[EntityID]bool{}
		var a, b []EntityID
		for _, x := range xs {
			am[EntityID(x)] = true
		}
		for _, y := range ys {
			bm[EntityID(y)] = true
		}
		for id := range am {
			a = append(a, id)
		}
		for id := range bm {
			b = append(b, id)
		}
		a, b = dedupIDs(a), dedupIDs(b)
		want := 0
		for id := range am {
			if bm[id] {
				want++
			}
		}
		return IntersectSortedSize(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEntityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate canonical name")
		}
	}()
	b := NewBuilder()
	b.AddEntity("Jimmy Page", "music")
	b.AddEntity("Jimmy Page", "music")
}

func TestSaveLoadRoundTrip(t *testing.T) {
	k := buildMusicKB()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k2.NumEntities() != k.NumEntities() {
		t.Fatalf("entity count changed: %d vs %d", k2.NumEntities(), k.NumEntities())
	}
	if !reflect.DeepEqual(k.Candidates("Page"), k2.Candidates("Page")) {
		t.Error("candidates changed after round trip")
	}
	jimmy, ok := k2.EntityByName("Jimmy Page")
	if !ok {
		t.Fatal("byName index not rebuilt")
	}
	if !reflect.DeepEqual(k.Entity(jimmy).Keyphrases, k2.Entity(jimmy).Keyphrases) {
		t.Error("keyphrases changed after round trip")
	}
	if k.PhraseIDF("hard rock") != k2.PhraseIDF("hard rock") {
		t.Error("IDF changed after round trip")
	}
}

func TestSelfLinkIgnored(t *testing.T) {
	b := NewBuilder()
	e := b.AddEntity("Solo", "misc")
	b.AddLink(e, e)
	k := b.Build()
	if len(k.Entity(e).OutLinks) != 0 {
		t.Error("self links must be ignored")
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildMusicKB()
	}
}

func BenchmarkCandidates(b *testing.B) {
	k := buildMusicKB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Candidates("Kashmir")
	}
}
