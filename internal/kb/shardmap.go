package kb

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
)

// ShardMap is the fleet topology a remote router dials: one entry per
// shard, each naming a primary endpoint and optional replicas serving the
// same shard content. Entry i must be the host serving shard i of
// len(Shards) (DialFleet verifies this against each host's meta, so a
// mis-ordered map is a dial error, never silent misrouting).
//
// The JSON form (the -shard-map file of cmd/aidaserver and cmd/aida):
//
//	{
//	  "shards": [
//	    {"primary": "http://kb0:8080", "replicas": ["http://kb0b:8080"]},
//	    {"primary": "http://kb1:8080"}
//	  ]
//	}
type ShardMap struct {
	Shards []ShardEndpoints `json:"shards"`
}

// ShardEndpoints lists the hosts serving one shard: the primary first,
// then failover/hedging replicas in preference order.
type ShardEndpoints struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// NumShards returns the fleet width.
func (m ShardMap) NumShards() int { return len(m.Shards) }

// Endpoints returns shard i's endpoint base URLs, primary first.
func (m ShardMap) Endpoints(i int) []string {
	e := m.Shards[i]
	out := make([]string, 0, 1+len(e.Replicas))
	out = append(out, e.Primary)
	out = append(out, e.Replicas...)
	return out
}

// Validate checks the map is dialable: at least one shard, every endpoint
// a parseable absolute http(s) URL, no empty primaries.
func (m ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("kb: shard map has no shards")
	}
	for i, sh := range m.Shards {
		if sh.Primary == "" {
			return fmt.Errorf("kb: shard %d has no primary endpoint", i)
		}
		for _, ep := range m.Endpoints(i) {
			u, err := url.Parse(ep)
			if err != nil {
				return fmt.Errorf("kb: shard %d endpoint %q: %v", i, ep, err)
			}
			if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return fmt.Errorf("kb: shard %d endpoint %q: want an absolute http(s) URL", i, ep)
			}
		}
	}
	return nil
}

// ParseShardMap decodes a shard map from its JSON form and validates it.
func ParseShardMap(data []byte) (ShardMap, error) {
	var m ShardMap
	if err := json.Unmarshal(data, &m); err != nil {
		return ShardMap{}, fmt.Errorf("kb: parse shard map: %v", err)
	}
	if err := m.Validate(); err != nil {
		return ShardMap{}, err
	}
	return m, nil
}

// LoadShardMap reads and validates a shard-map file (the -shard-map flag).
func LoadShardMap(path string) (ShardMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ShardMap{}, fmt.Errorf("kb: read shard map: %v", err)
	}
	return ParseShardMap(data)
}
