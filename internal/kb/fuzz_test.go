package kb

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"unicode/utf8"
)

// FuzzNormalizeName checks the case rules of Sec. 3.3.2: names of ≤ 3
// characters stay case-sensitive (short names like "MJ" vs "mj" carry
// case signal), longer names are case-folded; and normalization is
// idempotent, which the dictionary relies on (keys are normalized once at
// build time and once per lookup).
func FuzzNormalizeName(f *testing.F) {
	// Seed from the dictionary corpus plus the boundary shapes.
	k := fuzzKB()
	for _, name := range k.Names() {
		f.Add(name)
	}
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "MJ", "mj", "Jordan", "Äbç", "日本語х", "  x  "} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, surface string) {
		got := NormalizeName(surface)
		if utf8.RuneCountInString(surface) <= 3 {
			if got != surface {
				t.Fatalf("NormalizeName(%q) = %q; names of ≤ 3 runes must stay case-sensitive", surface, got)
			}
		} else if want := strings.ToUpper(surface); got != want {
			t.Fatalf("NormalizeName(%q) = %q, want case-folded %q", surface, got, want)
		}
		if again := NormalizeName(got); again != got {
			t.Fatalf("NormalizeName not idempotent: %q → %q → %q", surface, got, again)
		}
	})
}

// fuzzStores builds the fuzz corpus KB and its sharded views once per
// process (fuzz iterations must not pay KB construction).
var fuzzStores = sync.OnceValue(func() []Store {
	k := fuzzKB()
	return []Store{k, Shard(k, 2), Shard(k, 4), Shard(k, 7)}
})

func fuzzKB() *KB {
	b := NewBuilder()
	ids := make([]EntityID, 0, 24)
	for _, e := range []struct {
		name, domain string
	}{
		{"Jordan Henderson", "sports"}, {"Jordan (country)", "geography"},
		{"Michael Jordan", "sports"}, {"Paris", "geography"},
		{"Paris Hilton", "entertainment"}, {"Springfield (Illinois)", "geography"},
		{"Springfield (Massachusetts)", "geography"}, {"Kashmir (song)", "music"},
		{"Kashmir", "geography"}, {"Led Zeppelin", "music"},
		{"MJ (album)", "music"}, {"Amman", "geography"},
	} {
		ids = append(ids, b.AddEntity(e.name, e.domain))
	}
	// Heavily ambiguous rows with skewed counts (Zipf-ish), including an
	// exact-tie row that exercises the id tiebreak.
	b.AddName("Jordan", ids[0], 40)
	b.AddName("Jordan", ids[1], 90)
	b.AddName("Jordan", ids[2], 160)
	b.AddName("Paris", ids[4], 35)
	b.AddName("Springfield", ids[5], 55)
	b.AddName("Springfield", ids[6], 55) // exact tie: order must fall to id
	b.AddName("Kashmir", ids[7], 70)
	b.AddName("MJ", ids[2], 30)
	b.AddName("MJ", ids[10], 30)
	for _, id := range ids {
		b.AddKeyphrase(id, "shared context phrase")
	}
	return b.Build()
}

// FuzzCandidates checks the dictionary lookup invariants on every Store
// implementation for arbitrary surfaces: priors form a probability
// distribution over the candidate set (sum ≈ 1), the list is sorted by
// descending prior with ties by ascending id, every entity id is in range,
// lookups are deterministic, and the sharded routers agree with the
// unsharded KB byte for byte.
func FuzzCandidates(f *testing.F) {
	k := fuzzStores()[0]
	for _, name := range k.Names() {
		f.Add(name)
	}
	f.Add("jordan")
	f.Add("JORDAN")
	f.Add("no such name")
	f.Add("")
	f.Fuzz(func(t *testing.T, surface string) {
		stores := fuzzStores()
		ref := stores[0].Candidates(surface)
		for _, s := range stores {
			got := s.Candidates(surface)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("Candidates(%q) diverge at %d shards:\n got %+v\nwant %+v",
					surface, s.NumShards(), got, ref)
			}
			if again := s.Candidates(surface); !reflect.DeepEqual(again, got) {
				t.Fatalf("Candidates(%q) not deterministic at %d shards", surface, s.NumShards())
			}
			if len(got) == 0 {
				if got != nil {
					t.Fatalf("empty candidate list must be nil, got %#v", got)
				}
				continue
			}
			if !s.HasName(NormalizeName(surface)) {
				t.Fatalf("Candidates(%q) non-empty but HasName false", surface)
			}
			sum := 0.0
			for i, c := range got {
				sum += c.Prior
				if c.Entity < 0 || int(c.Entity) >= s.NumEntities() {
					t.Fatalf("candidate entity %d out of range", c.Entity)
				}
				if c.Prior < 0 || c.Prior > 1 {
					t.Fatalf("prior %v outside [0,1]", c.Prior)
				}
				if c.Count <= 0 {
					t.Fatalf("candidate count %d not positive", c.Count)
				}
				if i > 0 {
					prev := got[i-1]
					if c.Prior > prev.Prior {
						t.Fatalf("Candidates(%q) not sorted by prior: %v after %v", surface, c.Prior, prev.Prior)
					}
					if c.Prior == prev.Prior && c.Entity <= prev.Entity {
						t.Fatalf("Candidates(%q) tie not broken by ascending id", surface)
					}
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Candidates(%q) priors sum to %v, want 1", surface, sum)
			}
		}
	})
}
