package kb

import (
	"fmt"
	"reflect"
	"testing"
)

// buildShardKB assembles a KB with ambiguous names, links and keyphrases —
// enough structure that every Store method has non-trivial answers.
func buildShardKB(t testing.TB) *KB {
	t.Helper()
	b := NewBuilder()
	type spec struct {
		name, domain, typ string
		aliases           map[string]int
		phrases           []string
	}
	specs := []spec{
		{"Jordan Henderson", "sports", "person", map[string]int{"Jordan": 40, "Henderson": 25}, []string{"english midfielder", "premier league captain"}},
		{"Jordan (country)", "geography", "location", map[string]int{"Jordan": 90}, []string{"middle east kingdom", "amman capital"}},
		{"Michael Jordan", "sports", "person", map[string]int{"Jordan": 160, "MJ": 30}, []string{"chicago bulls guard", "six championships"}},
		{"Paris", "geography", "location", map[string]int{}, []string{"french capital", "seine river city"}},
		{"Paris Hilton", "entertainment", "person", map[string]int{"Paris": 35, "Hilton": 20}, []string{"reality television star", "hotel heiress"}},
		{"Springfield (Illinois)", "geography", "location", map[string]int{"Springfield": 55}, []string{"illinois state capital"}},
		{"Springfield (Massachusetts)", "geography", "location", map[string]int{"Springfield": 45}, []string{"basketball hall of fame city"}},
		{"Kashmir (song)", "music", "work", map[string]int{"Kashmir": 70}, []string{"led zeppelin song", "physical graffiti track"}},
		{"Kashmir", "geography", "location", map[string]int{}, []string{"himalayan region", "disputed territory"}},
		{"Led Zeppelin", "music", "team", map[string]int{"Zeppelin": 30}, []string{"english rock band", "physical graffiti album"}},
	}
	ids := make([]EntityID, len(specs))
	for i, s := range specs {
		ids[i] = b.AddEntity(s.name, s.domain, s.typ)
		for alias, count := range s.aliases {
			b.AddName(alias, ids[i], count)
		}
		for _, p := range s.phrases {
			b.AddKeyphrase(ids[i], p)
		}
	}
	// Links inside topical groups plus a cross-domain edge.
	b.AddLink(ids[0], ids[2])
	b.AddLink(ids[2], ids[0])
	b.AddLink(ids[7], ids[9])
	b.AddLink(ids[9], ids[7])
	b.AddLink(ids[3], ids[4])
	b.AddLink(ids[5], ids[6])
	b.AddLink(ids[6], ids[5])
	b.AddLink(ids[8], ids[7])
	return b.Build()
}

// shardCounts are the shard widths every conformance check runs at,
// including counts that do not divide the entity count and one larger than
// it (empty shards must be harmless).
var shardCounts = []int{1, 2, 3, 4, 8, 16}

func TestShardedConformance(t *testing.T) {
	k := buildShardKB(t)
	names := k.Names()
	if len(names) == 0 {
		t.Fatal("test KB has no dictionary names")
	}
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
			s := Shard(k, n)
			if got := s.NumShards(); got != n {
				t.Fatalf("NumShards = %d, want %d", got, n)
			}
			if got := s.NumEntities(); got != k.NumEntities() {
				t.Fatalf("NumEntities = %d, want %d", got, k.NumEntities())
			}
			if got := s.Names(); !reflect.DeepEqual(got, names) {
				t.Fatalf("Names diverge:\n got %v\nwant %v", got, names)
			}
			for _, name := range names {
				want := k.Candidates(name)
				got := s.Candidates(name)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Candidates(%q) diverge:\n got %+v\nwant %+v", name, got, want)
				}
				if k.HasName(name) != s.HasName(name) {
					t.Fatalf("HasName(%q) diverges", name)
				}
				for _, c := range want {
					if g, w := s.Prior(name, c.Entity), k.Prior(name, c.Entity); g != w {
						t.Fatalf("Prior(%q, %d) = %v, want %v", name, c.Entity, g, w)
					}
				}
			}
			if s.HasName(NormalizeName("No Such Surface")) {
				t.Fatal("HasName true for unknown surface")
			}
			if got := s.Candidates("No Such Surface"); got != nil {
				t.Fatalf("Candidates for unknown surface = %v, want nil", got)
			}
			for id := 0; id < k.NumEntities(); id++ {
				want := k.Entity(EntityID(id))
				got := s.Entity(EntityID(id))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Entity(%d) diverges:\n got %+v\nwant %+v", id, got, want)
				}
				if byName, ok := s.EntityByName(want.Name); !ok || byName != want.ID {
					t.Fatalf("EntityByName(%q) = (%d, %v), want (%d, true)", want.Name, byName, ok, want.ID)
				}
				for _, kp := range want.Keyphrases {
					if g, w := s.PhraseIDF(kp.Phrase), k.PhraseIDF(kp.Phrase); g != w {
						t.Fatalf("PhraseIDF(%q) = %v, want %v", kp.Phrase, g, w)
					}
					for _, word := range kp.Words {
						if g, w := s.WordIDF(word), k.WordIDF(word); g != w {
							t.Fatalf("WordIDF(%q) = %v, want %v", word, g, w)
						}
						if g, w := s.KeywordWeight(want.ID, word), k.KeywordWeight(want.ID, word); g != w {
							t.Fatalf("KeywordWeight(%d, %q) = %v, want %v", want.ID, word, g, w)
						}
					}
				}
			}
			if _, ok := s.EntityByName("No Such Entity"); ok {
				t.Fatal("EntityByName found a nonexistent entity")
			}
		})
	}
}

func TestShardSizesPartition(t *testing.T) {
	k := buildShardKB(t)
	for _, n := range shardCounts {
		s := Shard(k, n)
		ents, names := s.ShardSizes()
		if len(ents) != n || len(names) != n {
			t.Fatalf("ShardSizes lengths = (%d, %d), want %d", len(ents), len(names), n)
		}
		sumE, sumN := 0, 0
		for i := 0; i < n; i++ {
			sumE += ents[i]
			sumN += names[i]
		}
		if sumE != k.NumEntities() {
			t.Fatalf("entity shard sizes sum to %d, want %d", sumE, k.NumEntities())
		}
		if sumN != len(k.Names()) {
			t.Fatalf("name shard sizes sum to %d, want %d", sumN, len(k.Names()))
		}
	}
}

// TestShardRoutingPinned pins the placement functions: a fleet's data
// layout depends on them, so an accidental change must fail loudly.
func TestShardRoutingPinned(t *testing.T) {
	for id := EntityID(0); id < 40; id++ {
		for _, n := range shardCounts {
			if got := EntityShard(id, n); got != int(id)%n {
				t.Fatalf("EntityShard(%d, %d) = %d, want %d", id, n, got, int(id)%n)
			}
		}
	}
	// FNV-1a reference values (computed independently); NormalizeName
	// upper-cases keys > 3 runes, so dictionary keys look like these.
	pinned := map[string]uint64{
		"BERLIN": 3459164084063858993,
		"PARIS":  9994186868775441952,
		"MJ":     654838372290610742,
	}
	for key, h := range pinned {
		for _, n := range shardCounts {
			if got, want := NameShard(key, n), int(h%uint64(n)); got != want {
				t.Fatalf("NameShard(%q, %d) = %d, want %d", key, n, got, want)
			}
		}
	}
}

func TestShardedEntityPanics(t *testing.T) {
	k := buildShardKB(t)
	s := Shard(k, 4)
	for _, id := range []EntityID{NoEntity, EntityID(k.NumEntities())} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Entity(%d) did not panic", id)
				}
			}()
			s.Entity(id)
		}()
	}
}

func TestShardInvalidCountPanics(t *testing.T) {
	k := buildShardKB(t)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(k, %d) did not panic", n)
				}
			}()
			Shard(k, n)
		}()
	}
}
