package kb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// musicDelta is a hand-written delta over buildMusicKB: one new entity
// (reusing base vocabulary plus one fresh phrase with its IDF entries),
// a row re-weighting the ambiguous "Page" surface, and links in both
// directions between the new entity and existing ones.
func musicDelta(k *KB) *Delta {
	base := EntityID(k.NumEntities())
	return &Delta{
		BaseEntities: k.NumEntities(),
		Entities: []NewEntity{{
			Name:   "Coverdale Page",
			Domain: "music",
			Types:  []string{"album"},
			Keyphrases: []Keyphrase{
				{Phrase: "hard rock", Words: PhraseWords("hard rock"), MI: 0.8, IDF: k.PhraseIDF("hard rock")},
				{Phrase: "blues supergroup", Words: PhraseWords("blues supergroup"), MI: 0.6, IDF: 1.5},
			},
			KeywordNPMI: map[string]float64{"rock": 0.4, "supergroup": 0.9},
		}},
		Rows: []RowAddition{
			{Surface: "Page", Entity: base, Count: 25},
			{Surface: "Coverdale", Entity: base, Count: 5},
		},
		Links: []LinkAddition{
			{Src: base, Dst: 0}, // Coverdale Page -> Jimmy Page
			{Src: 0, Dst: base},
			{Src: base, Dst: 4}, // -> Led Zeppelin
		},
		PhraseIDF: map[string]float64{"blues supergroup": 1.5},
		WordIDF:   map[string]float64{"supergroup": 1.5, "blues": 1.5},
	}
}

func TestDeltaValidate(t *testing.T) {
	k := buildMusicKB()
	good := musicDelta(k)
	if err := good.Validate(k); err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Delta)
	}{
		{"generation mismatch", func(d *Delta) { d.BaseEntities++ }},
		{"empty name", func(d *Delta) { d.Entities[0].Name = "" }},
		{"duplicate of base name", func(d *Delta) { d.Entities[0].Name = "Jimmy Page" }},
		{"duplicate within delta", func(d *Delta) { d.Entities = append(d.Entities, d.Entities[0]) }},
		{"empty row surface", func(d *Delta) { d.Rows[0].Surface = "  " }},
		{"non-positive row count", func(d *Delta) { d.Rows[0].Count = 0 }},
		{"row entity out of range", func(d *Delta) { d.Rows[0].Entity = 99 }},
		{"self link", func(d *Delta) { d.Links[0].Dst = d.Links[0].Src }},
		{"link out of range", func(d *Delta) { d.Links[0].Dst = -2 }},
		{"IDF rewrite of base weight", func(d *Delta) { d.PhraseIDF["hard rock"] = 2 }},
		{"non-positive IDF", func(d *Delta) { d.WordIDF["supergroup"] = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := musicDelta(k)
			tc.mutate(d)
			if err := d.Validate(k); err == nil {
				t.Fatal("invalid delta passed validation")
			}
		})
	}
}

func TestOverlayMatchesRebuild(t *testing.T) {
	k := buildMusicKB()
	d := musicDelta(k)
	ov, err := NewOverlay(k, d)
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	full, err := Rebuild(k, d)
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	assertStoresEqual(t, ov, full)
	if ov.Fingerprint() == k.Fingerprint() {
		t.Error("content-changing delta left the fingerprint unchanged")
	}
	// The base is untouched: old reads still see the old generation.
	if k.NumEntities() != d.BaseEntities {
		t.Error("base entity count changed")
	}
	if _, ok := k.EntityByName("Coverdale Page"); ok {
		t.Error("base resolves the overlay-only entity")
	}
	if len(k.Entity(0).InLinks) != len(full.Entity(0).InLinks)-1 {
		t.Error("base link set mutated by the merge")
	}
}

func TestOverlayStacks(t *testing.T) {
	k := buildMusicKB()
	ov1, err := NewOverlay(k, musicDelta(k))
	if err != nil {
		t.Fatalf("overlay 1: %v", err)
	}
	d2 := &Delta{
		BaseEntities: ov1.NumEntities(),
		Entities:     []NewEntity{{Name: "Whitesnake", Domain: "music"}},
		Links:        []LinkAddition{{Src: EntityID(ov1.NumEntities()), Dst: 6}},
		Rows:         []RowAddition{{Surface: "Page", Entity: 6, Count: 10}},
	}
	ov2, err := NewOverlay(ov1, d2)
	if err != nil {
		t.Fatalf("overlay 2: %v", err)
	}
	// The equivalent flat rebuild: both deltas baked into fresh KBs.
	full1, err := Rebuild(k, musicDelta(k))
	if err != nil {
		t.Fatalf("rebuild 1: %v", err)
	}
	full2, err := Rebuild(full1, d2)
	if err != nil {
		t.Fatalf("rebuild 2: %v", err)
	}
	assertStoresEqual(t, ov2, full2)
	// The intermediate generation still serves its own content.
	if _, ok := ov1.EntityByName("Whitesnake"); ok {
		t.Error("generation 1 sees a generation-2 entity")
	}
}

func TestEmptyDeltaKeepsFingerprint(t *testing.T) {
	k := buildMusicKB()
	ov, err := NewOverlay(k, &Delta{BaseEntities: k.NumEntities()})
	if err != nil {
		t.Fatalf("NewOverlay: %v", err)
	}
	if ov.Fingerprint() != k.Fingerprint() {
		t.Error("empty delta changed the fingerprint")
	}
}

// assertStoresEqual deep-compares the full read surface of two stores.
func assertStoresEqual(t *testing.T, a, b Store) {
	t.Helper()
	if a.NumEntities() != b.NumEntities() {
		t.Fatalf("NumEntities %d != %d", a.NumEntities(), b.NumEntities())
	}
	for id := EntityID(0); id < EntityID(a.NumEntities()); id++ {
		ea, eb := a.Entity(id), b.Entity(id)
		if !reflect.DeepEqual(ea, eb) {
			t.Errorf("entity %d differs:\n  overlay: %+v\n  rebuild: %+v", id, ea, eb)
		}
	}
	na, nb := a.Names(), b.Names()
	if !reflect.DeepEqual(na, nb) {
		t.Fatalf("Names differ:\n  overlay: %v\n  rebuild: %v", na, nb)
	}
	for _, name := range na {
		ca, cb := a.Candidates(name), b.Candidates(name)
		if !reflect.DeepEqual(ca, cb) {
			t.Errorf("Candidates(%q) differ:\n  overlay: %+v\n  rebuild: %+v", name, ca, cb)
		}
		for _, c := range ca {
			if pa, pb := a.Prior(name, c.Entity), b.Prior(name, c.Entity); pa != pb {
				t.Errorf("Prior(%q, %d): %g != %g", name, c.Entity, pa, pb)
			}
		}
		if !a.HasName(name) || !b.HasName(name) {
			t.Errorf("HasName(%q) false on a store that lists it", name)
		}
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ: %016x != %016x", fa, fb)
	}
}

// FuzzDeltaApply generates random (but always valid) deltas over the music
// KB and checks the core invariants on the overlay: it matches a full
// rebuild bit for bit, its fingerprint changes exactly when the delta has
// content, candidate lists stay sorted with priors summing to 1, and every
// reference stays in range.
func FuzzDeltaApply(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(20130610))
	f.Fuzz(func(t *testing.T, seed int64) {
		k := buildMusicKB()
		d := randomDelta(k, seed)
		ov, err := NewOverlay(k, d)
		if err != nil {
			t.Fatalf("generated delta rejected: %v (delta %+v)", err, d)
		}
		full, err := Rebuild(k, d)
		if err != nil {
			t.Fatalf("Rebuild: %v", err)
		}
		assertStoresEqual(t, ov, full)

		contentful := len(d.Entities) > 0 || len(d.Rows) > 0 || addsNewLink(k, d)
		changed := ov.Fingerprint() != k.Fingerprint()
		if changed != contentful {
			t.Errorf("fingerprint changed=%v but delta contentful=%v (%+v)", changed, contentful, d)
		}

		for _, name := range ov.Names() {
			cands := ov.Candidates(name)
			if len(cands) == 0 {
				t.Errorf("listed name %q has no candidates", name)
				continue
			}
			sum := 0.0
			for i, c := range cands {
				sum += c.Prior
				if c.Count <= 0 {
					t.Errorf("Candidates(%q)[%d] has count %d", name, i, c.Count)
				}
				if c.Entity < 0 || int(c.Entity) >= ov.NumEntities() {
					t.Errorf("Candidates(%q)[%d] references entity %d out of range", name, i, c.Entity)
				}
				if i > 0 {
					prev := cands[i-1]
					if c.Prior > prev.Prior || (c.Prior == prev.Prior && c.Entity <= prev.Entity) {
						t.Errorf("Candidates(%q) not sorted at %d", name, i)
					}
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("Candidates(%q) priors sum to %g", name, sum)
			}
		}
	})
}

// addsNewLink reports whether the delta contains a link edge the base does
// not already have (a duplicate edge is a no-op and must not change the
// fingerprint).
func addsNewLink(k *KB, d *Delta) bool {
	for _, l := range d.Links {
		if int(l.Src) >= k.NumEntities() || int(l.Dst) >= k.NumEntities() {
			return true
		}
		found := false
		for _, dst := range k.Entity(l.Src).OutLinks {
			if dst == l.Dst {
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	return false
}

// randomDelta builds a seed-deterministic valid delta: a random subset of
// new entities (vocabulary drawn from the base plus fresh phrases with
// matching IDF entries), row additions over base surfaces and new names,
// and random link edges.
func randomDelta(k *KB, seed int64) *Delta {
	rng := rand.New(rand.NewSource(seed))
	baseN := k.NumEntities()
	d := &Delta{BaseEntities: baseN}
	basePhrases := []string{"hard rock", "search engine", "Himalaya mountains"}
	newEntities := rng.Intn(3)
	for i := 0; i < newEntities; i++ {
		ne := NewEntity{
			Name:   "EE-" + string(rune('a'+rng.Intn(26))) + "-" + string(rune('0'+i)),
			Domain: "emerging",
			Types:  []string{"emerging"},
		}
		for p := 0; p < rng.Intn(3); p++ {
			if rng.Intn(2) == 0 {
				ph := basePhrases[rng.Intn(len(basePhrases))]
				ne.Keyphrases = append(ne.Keyphrases, Keyphrase{
					Phrase: ph, Words: PhraseWords(ph), MI: rng.Float64(), IDF: k.PhraseIDF(ph),
				})
			} else {
				ph := "zzz phrase " + string(rune('a'+rng.Intn(4)))
				ne.Keyphrases = append(ne.Keyphrases, Keyphrase{
					Phrase: ph, Words: PhraseWords(ph), MI: rng.Float64(), IDF: 2.5,
				})
				if d.PhraseIDF == nil {
					d.PhraseIDF = map[string]float64{}
					d.WordIDF = map[string]float64{}
				}
				d.PhraseIDF[ph] = 2.5
				for _, w := range PhraseWords(ph) {
					if k.WordIDF(w) == 0 {
						d.WordIDF[w] = 2.5
					}
				}
			}
		}
		if rng.Intn(2) == 0 {
			ne.KeywordNPMI = map[string]float64{"rock": rng.Float64()}
		}
		d.Entities = append(d.Entities, ne)
	}
	total := baseN + len(d.Entities)
	names := k.Names()
	for r := 0; r < rng.Intn(4); r++ {
		d.Rows = append(d.Rows, RowAddition{
			Surface: names[rng.Intn(len(names))],
			Entity:  EntityID(rng.Intn(total)),
			Count:   1 + rng.Intn(50),
		})
	}
	for l := 0; l < rng.Intn(4); l++ {
		src := EntityID(rng.Intn(total))
		dst := EntityID(rng.Intn(total))
		if src == dst {
			continue
		}
		d.Links = append(d.Links, LinkAddition{Src: src, Dst: dst})
	}
	return d
}
