package kb

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestPersistRoundTrip pins that Save → Load reproduces the KB exactly:
// identical Candidates (priors included), entities, dictionary membership
// and IDF tables — and that a loaded KB shards into the same routed
// answers, which is what lets a fleet load one snapshot per process and
// serve only its shard.
func TestPersistRoundTrip(t *testing.T) {
	k := buildShardKB(t)
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got, want := loaded.NumEntities(), k.NumEntities(); got != want {
		t.Fatalf("NumEntities = %d, want %d", got, want)
	}
	if got, want := loaded.Names(), k.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names diverge after round-trip:\n got %v\nwant %v", got, want)
	}
	for _, name := range k.Names() {
		if got, want := loaded.Candidates(name), k.Candidates(name); !reflect.DeepEqual(got, want) {
			t.Fatalf("Candidates(%q) diverge after round-trip:\n got %+v\nwant %+v", name, got, want)
		}
	}
	for id := 0; id < k.NumEntities(); id++ {
		want := k.Entity(EntityID(id))
		got := loaded.Entity(EntityID(id))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Entity(%d) diverges after round-trip:\n got %+v\nwant %+v", id, got, want)
		}
		if byName, ok := loaded.EntityByName(want.Name); !ok || byName != want.ID {
			t.Fatalf("EntityByName(%q) = (%d, %v) after round-trip", want.Name, byName, ok)
		}
		for _, kp := range want.Keyphrases {
			if g, w := loaded.PhraseIDF(kp.Phrase), k.PhraseIDF(kp.Phrase); g != w {
				t.Fatalf("PhraseIDF(%q) = %v, want %v", kp.Phrase, g, w)
			}
			for _, word := range kp.Words {
				if g, w := loaded.WordIDF(word), k.WordIDF(word); g != w {
					t.Fatalf("WordIDF(%q) = %v, want %v", word, g, w)
				}
			}
		}
	}
	// A loaded snapshot must shard identically to the in-memory build.
	for _, n := range []int{2, 4} {
		fromLoaded, fromBuilt := Shard(loaded, n), Shard(k, n)
		for _, name := range k.Names() {
			if got, want := fromLoaded.Candidates(name), fromBuilt.Candidates(name); !reflect.DeepEqual(got, want) {
				t.Fatalf("sharded Candidates(%q) diverge after round-trip at %d shards", name, n)
			}
		}
	}
}

// TestLoadErrors covers the persistence error paths: truncated streams,
// corrupt payloads and empty input must surface as errors, never as a
// half-initialized KB.
func TestLoadErrors(t *testing.T) {
	k := buildShardKB(t)
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"garbage":     []byte("not a gob stream at all"),
		"truncated":   full[:len(full)/3],
		"single-byte": full[:1],
	}
	for name, data := range cases {
		if kb, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("Load(%s) = %v, want error", name, kb)
		}
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("Load from empty reader succeeded, want error")
	}
}

// TestSaveToFailingWriter covers the Save error path.
func TestSaveToFailingWriter(t *testing.T) {
	k := buildShardKB(t)
	if err := k.Save(failingWriter{}); err == nil {
		t.Fatal("Save to failing writer succeeded, want error")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, errWriteRefused
}

var errWriteRefused = &writeRefusedError{}

type writeRefusedError struct{}

func (*writeRefusedError) Error() string { return "write refused" }
