package kb

import (
	"encoding/gob"
	"io"
)

// snapshot is the serialized form of a KB. All derived statistics are
// persisted so a loaded KB is byte-for-byte equivalent to the built one.
type snapshot struct {
	Entities  []Entity
	Dict      map[string][]nameEntry
	PhraseIDF map[string]float64
	WordIDF   map[string]float64
}

// Save writes the KB to w in gob format.
func (k *KB) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshot{
		Entities:  k.entities,
		Dict:      k.dict,
		PhraseIDF: k.phraseIDF,
		WordIDF:   k.wordIDF,
	})
}

// Load reads a KB previously written with Save.
func Load(r io.Reader) (*KB, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	k := &KB{
		entities:  s.Entities,
		dict:      s.Dict,
		phraseIDF: s.PhraseIDF,
		wordIDF:   s.WordIDF,
		byName:    make(map[string]EntityID, len(s.Entities)),
	}
	for i := range k.entities {
		k.byName[k.entities[i].Name] = k.entities[i].ID
	}
	k.cands = precomputeCandidates(k.dict)
	return k, nil
}
