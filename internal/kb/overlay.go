package kb

import (
	"sort"
	"strings"
	"sync"
)

// Overlay is a copy-on-write Store: a base Store plus one applied Delta.
// Reads for untouched entities and rows go straight to the base (no
// copies); added entities, link-touched entities and shadowed dictionary
// rows are served from the overlay's own materialized state. An Overlay
// is immutable after construction — like every Store — so a serving
// System installs one by atomic pointer swap and in-flight documents keep
// reading the generation they started on.
//
// The conformance contract (pinned by internal/kbtest and FuzzDeltaApply):
// an Overlay is indistinguishable through the Store read surface from
// Rebuild(base, delta) — same fingerprint, same candidate bytes, same
// annotations — because shadowed rows are rematerialized through the same
// candidatesFrom path a build uses.
//
// Overlays stack: the base may itself be an Overlay, so repeated
// ApplyDelta calls form a chain. Each layer adds one map lookup to
// shadowed reads; processes applying many deltas over a long life should
// periodically compact with Rebuild and swap the fresh KB in.
type Overlay struct {
	base  Store
	baseN int

	// added are the delta's new entities (ids baseN, baseN+1, …), with
	// their merged link sets.
	added       []Entity
	addedByName map[string]EntityID
	// touched are copy-on-write snapshots of pre-existing entities whose
	// link sets the delta changed; everything else in them is shared with
	// the base entity.
	touched map[EntityID]*Entity
	// rows are the shadowed dictionary rows: every normalized surface the
	// delta added counts for, rematerialized over the merged counts.
	rows map[string][]Candidate
	// phraseIDF / wordIDF extend the base tables (consulted only when the
	// base lookup yields 0; keys are stored lower-cased).
	phraseIDF map[string]float64
	wordIDF   map[string]float64

	// touchedIDs are the sorted pre-existing entity ids with changed link
	// sets — the scorer-invalidation set of this generation.
	touchedIDs []EntityID

	fp        fingerprintOnce
	namesOnce sync.Once
	names     []string
}

// Compile-time conformance: an Overlay is a full bulk-capable Store.
var (
	_ Store              = (*Overlay)(nil)
	_ BulkCandidateStore = (*Overlay)(nil)
)

// NewOverlay validates the delta against the base and materializes the
// copy-on-write view. The base is never mutated; the delta must not be
// mutated afterwards (its slices are aliased).
func NewOverlay(base Store, d *Delta) (*Overlay, error) {
	if err := d.Validate(base); err != nil {
		return nil, err
	}
	o := &Overlay{
		base:        base,
		baseN:       base.NumEntities(),
		added:       make([]Entity, len(d.Entities)),
		addedByName: make(map[string]EntityID, len(d.Entities)),
		touched:     make(map[EntityID]*Entity),
		rows:        make(map[string][]Candidate),
		phraseIDF:   lowerKeyed(d.PhraseIDF),
		wordIDF:     lowerKeyed(d.WordIDF),
	}
	for i := range d.Entities {
		o.added[i] = d.newEntityValue(i)
		o.addedByName[o.added[i].Name] = o.added[i].ID
	}
	// Link merges. mut returns the overlay-owned copy of an entity,
	// snapshotting a base entity on first touch; merged link slices are
	// always fresh, so shared base state is never written.
	mut := func(id EntityID) *Entity {
		if int(id) >= o.baseN {
			return &o.added[int(id)-o.baseN]
		}
		if e, ok := o.touched[id]; ok {
			return e
		}
		cp := *base.Entity(id)
		o.touched[id] = &cp
		return &cp
	}
	outAdd, inAdd := d.linkAdds()
	for src, dsts := range outAdd {
		e := mut(src)
		e.OutLinks = mergeLinks(e.OutLinks, dsts)
	}
	for dst, srcs := range inAdd {
		e := mut(dst)
		e.InLinks = mergeLinks(e.InLinks, srcs)
	}
	for id := range o.touched {
		o.touchedIDs = append(o.touchedIDs, id)
	}
	sort.Slice(o.touchedIDs, func(i, j int) bool { return o.touchedIDs[i] < o.touchedIDs[j] })
	// Shadowed dictionary rows: merge the base's materialized candidates
	// with the additions and recompute priors through candidatesFrom.
	for key, adds := range d.rowAdds() {
		o.rows[key] = mergeRows(base.Candidates(key), adds)
	}
	return o, nil
}

func lowerKeyed(m map[string]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		// Lower-case keys to match lowerIDF's lookup lowering.
		out[strings.ToLower(k)] = v
	}
	return out
}

// Base returns the store this overlay was applied over.
func (o *Overlay) Base() Store { return o.base }

// Added returns how many entities this overlay layer adds.
func (o *Overlay) Added() int { return len(o.added) }

// Touched returns the sorted ids of pre-existing entities whose link sets
// this overlay changes — the set whose derived scoring state (profiles,
// memoized pairs) a serving engine must invalidate on apply.
func (o *Overlay) Touched() []EntityID { return o.touchedIDs }

// ShadowedRows returns how many dictionary rows this layer rematerializes.
func (o *Overlay) ShadowedRows() int { return len(o.rows) }

// NumEntities implements Store.
func (o *Overlay) NumEntities() int { return o.baseN + len(o.added) }

// Entity implements Store: added entities from the overlay, link-touched
// entities from their copy-on-write snapshot, everything else straight
// from the base.
func (o *Overlay) Entity(id EntityID) *Entity {
	if int(id) >= o.baseN {
		return &o.added[int(id)-o.baseN]
	}
	if e, ok := o.touched[id]; ok {
		return e
	}
	return o.base.Entity(id)
}

// EntityByName implements Store.
func (o *Overlay) EntityByName(name string) (EntityID, bool) {
	if id, ok := o.base.EntityByName(name); ok {
		return id, ok
	}
	id, ok := o.addedByName[name]
	return id, ok
}

// HasName implements Store (and ner.Lexicon): a surface is known if either
// layer has a row for it, so a freshly graduated entity is recognizable in
// the very next request.
func (o *Overlay) HasName(normalized string) bool {
	if _, ok := o.rows[normalized]; ok {
		return true
	}
	return o.base.HasName(normalized)
}

// Candidates implements Store. Shadowed rows carry the merged counts with
// priors recomputed over the full entry set; unshadowed rows are the
// base's shared slices.
func (o *Overlay) Candidates(surface string) []Candidate {
	key := NormalizeName(surface)
	if cands, ok := o.rows[key]; ok {
		return cands
	}
	return o.base.Candidates(key)
}

// CandidatesBulk implements BulkCandidateStore: the base's bulk path (one
// batched fetch per shard for remote stores) does the heavy lifting, then
// shadowed rows are patched in positionally.
func (o *Overlay) CandidatesBulk(surfaces []string) [][]Candidate {
	var out [][]Candidate
	if bulk, ok := o.base.(BulkCandidateStore); ok {
		out = bulk.CandidatesBulk(surfaces)
	} else {
		out = make([][]Candidate, len(surfaces))
		for i, s := range surfaces {
			out[i] = o.base.Candidates(s)
		}
	}
	for i, s := range surfaces {
		if cands, ok := o.rows[NormalizeName(s)]; ok {
			out[i] = cands
		}
	}
	return out
}

// Prior implements Store.
func (o *Overlay) Prior(surface string, e EntityID) float64 {
	for _, c := range o.Candidates(surface) {
		if c.Entity == e {
			return c.Prior
		}
	}
	return 0
}

// Names implements Store: the base's keys plus any delta-introduced keys,
// sorted. Memoized — the overlay is immutable, and fingerprinting walks
// the list anyway.
func (o *Overlay) Names() []string {
	o.namesOnce.Do(func() {
		base := o.base.Names()
		fresh := make([]string, 0, len(o.rows))
		for key := range o.rows {
			if !o.base.HasName(key) {
				fresh = append(fresh, key)
			}
		}
		o.names = make([]string, 0, len(base)+len(fresh))
		o.names = append(o.names, base...)
		o.names = append(o.names, fresh...)
		sort.Strings(o.names)
	})
	return o.names
}

// PhraseIDF implements Store: base first, delta additions where the base
// has no weight.
func (o *Overlay) PhraseIDF(phrase string) float64 {
	if v := o.base.PhraseIDF(phrase); v != 0 {
		return v
	}
	return lowerIDF(o.phraseIDF, phrase)
}

// WordIDF implements Store: base first, delta additions where the base has
// no weight.
func (o *Overlay) WordIDF(word string) float64 {
	if v := o.base.WordIDF(word); v != 0 {
		return v
	}
	return lowerIDF(o.wordIDF, word)
}

// KeywordWeight implements Store. Link touches never change keyword
// weights, so pre-existing entities defer to the base.
func (o *Overlay) KeywordWeight(e EntityID, word string) float64 {
	if int(e) >= o.baseN {
		if w, ok := o.added[int(e)-o.baseN].KeywordNPMI[word]; ok {
			return w
		}
		return 0
	}
	return o.base.KeywordWeight(e, word)
}

// NumShards implements Store: the overlay preserves the base's shard
// geometry (added entities fall into shard id % NumShards like any other).
func (o *Overlay) NumShards() int { return o.base.NumShards() }

// Fingerprint implements Store: the canonical content walk over the merged
// view, memoized per overlay. Applying a delta therefore bumps the
// fingerprint exactly when it changes logical content, which is what makes
// stale engine snapshots and remote-fleet responses fail safely.
func (o *Overlay) Fingerprint() uint64 { return o.fp.of(o) }
