package kb

import (
	"fmt"
	"sort"
)

// Sharding splits the immutable KB into N self-contained shards so a
// process can host only hot shards while a fleet hosts the rest:
//
//   - entities are assigned round-robin by id: entity e lives on shard
//     EntityShard(e, N) = e mod N, stored densely at position e/N;
//   - dictionary rows are assigned by normalized-surface hash: the whole
//     row for a surface lives on shard NameShard(surface, N), so one
//     lookup owns all anchor counts for that name.
//
// The ShardedKB router fans Candidates/Entity/HasName lookups to the
// owning shard and merges results deterministically: candidate priors are
// recomputed over the merged entry set with the exact arithmetic of the
// unsharded KB (ties broken by ascending id), so annotation output is
// byte-identical at any shard count. internal/kbtest pins this with a
// golden corpus.

// EntityShard returns the shard owning entity id under n shards. id must
// be a repository id (≥ 0).
func EntityShard(id EntityID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(id) % n
}

// NameShard returns the shard owning the dictionary row of a normalized
// surface under n shards (FNV-1a over the key bytes).
func NameShard(normalized string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(normalized); i++ {
		h ^= uint64(normalized[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// shard is one self-contained slice of the repository: the entities it
// owns (dense, round-robin layout) plus the dictionary rows hashed to it.
type shard struct {
	// entities[i] is the entity with global id i*n + index-of-this-shard.
	entities []Entity
	// byName maps the canonical names of this shard's entities to their
	// global ids.
	byName map[string]EntityID
	// dict holds the full rows of the normalized surfaces this shard owns
	// (rows are shared with the source KB; both sides are immutable).
	dict map[string][]nameEntry
	// cands holds the precomputed candidate slices for those rows, shared
	// with the source KB — the same backing arrays the unsharded KB serves,
	// so router results are byte-identical by construction.
	cands map[string][]Candidate
}

// ShardedKB is a knowledge base split into N shards behind a routing
// layer. It satisfies Store with results byte-identical to the unsharded
// KB it was built from; global corpus statistics (IDF tables) are
// replicated at the router, mirroring how a fleet would distribute them
// as static side data. Immutable and safe for concurrent use.
type ShardedKB struct {
	n      int
	shards []shard
	total  int

	phraseIDF map[string]float64
	wordIDF   map[string]float64

	fp fingerprintOnce // lazily computed content hash
}

// Shard splits a built KB into n shards. n must be ≥ 1; n = 1 yields a
// single-shard router useful for conformance testing.
func Shard(k *KB, n int) *ShardedKB {
	if n < 1 {
		panic(fmt.Sprintf("kb: invalid shard count %d", n))
	}
	s := &ShardedKB{
		n:         n,
		shards:    make([]shard, n),
		total:     len(k.entities),
		phraseIDF: k.phraseIDF,
		wordIDF:   k.wordIDF,
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.entities = make([]Entity, 0, (s.total+n-1)/n)
		sh.byName = make(map[string]EntityID)
		sh.dict = make(map[string][]nameEntry)
		sh.cands = make(map[string][]Candidate)
	}
	for id := range k.entities {
		sh := &s.shards[EntityShard(EntityID(id), n)]
		sh.entities = append(sh.entities, k.entities[id])
		sh.byName[k.entities[id].Name] = EntityID(id)
	}
	for key, entries := range k.dict {
		sh := &s.shards[NameShard(key, n)]
		sh.dict[key] = entries
		sh.cands[key] = k.cands[key]
	}
	return s
}

// NumShards returns the shard count N.
func (s *ShardedKB) NumShards() int { return s.n }

// NumEntities returns |E| across all shards.
func (s *ShardedKB) NumEntities() int { return s.total }

// ShardSizes reports per-shard (entities, dictionary rows) counts, for
// observability and placement planning.
func (s *ShardedKB) ShardSizes() (entities, names []int) {
	entities = make([]int, s.n)
	names = make([]int, s.n)
	for i := range s.shards {
		entities[i] = len(s.shards[i].entities)
		names[i] = len(s.shards[i].dict)
	}
	return entities, names
}

// Entity routes the lookup to the owning shard. It panics on ids outside
// the repository, matching (*KB).Entity.
func (s *ShardedKB) Entity(id EntityID) *Entity {
	if id < 0 || int(id) >= s.total {
		panic(fmt.Sprintf("kb: entity id %d out of range [0,%d)", id, s.total))
	}
	return &s.shards[EntityShard(id, s.n)].entities[int(id)/s.n]
}

// EntityByName fans the canonical-name lookup across shards in shard
// order (canonical names are globally unique, so at most one shard
// answers).
func (s *ShardedKB) EntityByName(name string) (EntityID, bool) {
	for i := range s.shards {
		if id, ok := s.shards[i].byName[name]; ok {
			return id, true
		}
	}
	return 0, false
}

// HasName routes the dictionary membership test to the owning shard.
func (s *ShardedKB) HasName(normalized string) bool {
	_, ok := s.shards[NameShard(normalized, s.n)].dict[normalized]
	return ok
}

// Candidates routes the surface lookup to the shard owning its dictionary
// row and returns its precomputed candidate slice — the very backing array
// the unsharded KB serves (shards share the source KB's materialized
// candidates), so router results are byte-identical to (*KB).Candidates.
// The returned slice is shared and must not be modified.
func (s *ShardedKB) Candidates(surface string) []Candidate {
	key := NormalizeName(surface)
	return s.shards[NameShard(key, s.n)].cands[key]
}

// Prior returns P(entity|surface), or 0 when the pair is unknown.
func (s *ShardedKB) Prior(surface string, e EntityID) float64 {
	for _, c := range s.Candidates(surface) {
		if c.Entity == e {
			return c.Prior
		}
	}
	return 0
}

// Names merges the dictionary keys of all shards, sorted — the same set,
// in the same order, as the unsharded KB.
func (s *ShardedKB) Names() []string {
	var total int
	for i := range s.shards {
		total += len(s.shards[i].dict)
	}
	out := make([]string, 0, total)
	for i := range s.shards {
		for n := range s.shards[i].dict {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// PhraseIDF returns the global IDF of a keyphrase (router-replicated).
func (s *ShardedKB) PhraseIDF(phrase string) float64 {
	return lowerIDF(s.phraseIDF, phrase)
}

// WordIDF returns the global IDF of a keyword (router-replicated).
func (s *ShardedKB) WordIDF(word string) float64 {
	return lowerIDF(s.wordIDF, word)
}

// KeywordWeight returns the NPMI weight of word for entity e, routed to
// the owning shard.
func (s *ShardedKB) KeywordWeight(e EntityID, word string) float64 {
	if w, ok := s.Entity(e).KeywordNPMI[word]; ok {
		return w
	}
	return 0
}
