package kb

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"
)

// Live-update deltas (ROADMAP item 1, grounded by "Occurrence Statistics of
// Entities, Relations and Types on the Web"): a Delta is a batch of new
// facts — entities with their keyphrase features, dictionary-row count
// additions, link edges, and IDF entries for vocabulary the base has never
// seen — that can be applied to any serving Store without a rebuild. The
// two consumers are NewOverlay (copy-on-write view, the serving path) and
// Rebuild (a fresh *KB with the facts baked in, the conformance baseline);
// the contract pinned by the conformance suite is that both yield the same
// fingerprint and byte-identical annotations.
//
// A Delta carries precomputed feature weights as facts rather than
// re-deriving the global statistics: re-running the Builder would change N
// and with it every IDF/NPMI weight in the repository, turning a
// three-entity update into a full invalidation. Incremental maintenance
// instead freezes the existing statistics and extends the tables only
// where the base has no value.

// Delta is one batch of knowledge-base additions. The JSON tags define the
// wire form of POST /v1/admin/kb/delta; the gob form is what the delta
// journal persists. A Delta is immutable once applied — the overlay aliases
// its slices.
type Delta struct {
	// BaseEntities is NumEntities() of the store the delta was computed
	// against. Validation rejects a mismatch, which makes journal replay
	// chain-safe: each delta only applies on top of the generation it was
	// built from. New entities get ids BaseEntities, BaseEntities+1, … in
	// Entities order, so Rows and Links may reference them.
	BaseEntities int `json:"base_entities"`
	// Entities are the new entities, appended in order.
	Entities []NewEntity `json:"entities,omitempty"`
	// Rows are dictionary-row count additions (existing rows accumulate,
	// unknown surface/entity pairs are created).
	Rows []RowAddition `json:"rows,omitempty"`
	// Links are directed link edges; duplicates of existing edges are
	// no-ops (link sets stay deduplicated).
	Links []LinkAddition `json:"links,omitempty"`
	// PhraseIDF and WordIDF extend the global IDF tables for vocabulary
	// unknown to the base (lookups yielding 0). Keys are matched
	// lower-cased; entries whose base lookup is non-zero are rejected —
	// a delta must never rewrite existing global statistics.
	PhraseIDF map[string]float64 `json:"phrase_idf,omitempty"`
	WordIDF   map[string]float64 `json:"word_idf,omitempty"`
}

// NewEntity is one entity added by a delta, with its feature weights
// precomputed (MI, IDF, NPMI) — the delta carries facts, not raw text. Its
// canonical name also becomes a dictionary row with count 1, mirroring
// Builder.AddEntity.
type NewEntity struct {
	Name       string      `json:"name"`
	Domain     string      `json:"domain,omitempty"`
	Types      []string    `json:"types,omitempty"`
	Keyphrases []Keyphrase `json:"keyphrases,omitempty"`
	// KeywordNPMI holds the entity-specific keyword weights (Eq. 3.1
	// scale; for graduated emerging entities these are the normalized
	// harvest weights of BuildEEModel).
	KeywordNPMI map[string]float64 `json:"keyword_npmi,omitempty"`
}

// RowAddition adds count anchor occurrences to the dictionary row
// surface → entity. Priors of every candidate of the surface are
// recomputed from the merged counts (through candidatesFrom, so they are
// byte-identical to a full rebuild).
type RowAddition struct {
	Surface string   `json:"surface"`
	Entity  EntityID `json:"entity"`
	Count   int      `json:"count"`
}

// LinkAddition is one directed link edge src → dst.
type LinkAddition struct {
	Src EntityID `json:"src"`
	Dst EntityID `json:"dst"`
}

// IsEmpty reports whether the delta carries no additions at all.
func (d *Delta) IsEmpty() bool {
	return len(d.Entities) == 0 && len(d.Rows) == 0 && len(d.Links) == 0 &&
		len(d.PhraseIDF) == 0 && len(d.WordIDF) == 0
}

// Validate checks the delta against the base store it is about to be
// applied to: the generation must match, new names must be absent from the
// base and unique, row and link references must be in range (including the
// delta's own new entities), and IDF entries must cover only vocabulary
// the base does not weight.
func (d *Delta) Validate(base Store) error {
	if got := base.NumEntities(); d.BaseEntities != got {
		return fmt.Errorf("kb: delta built against %d entities, store has %d", d.BaseEntities, got)
	}
	total := EntityID(d.BaseEntities + len(d.Entities))
	seen := make(map[string]bool, len(d.Entities))
	for i := range d.Entities {
		ne := &d.Entities[i]
		if ne.Name == "" {
			return fmt.Errorf("kb: delta entity %d has no name", i)
		}
		if _, dup := base.EntityByName(ne.Name); dup {
			return fmt.Errorf("kb: delta entity %q already exists in the base", ne.Name)
		}
		if seen[ne.Name] {
			return fmt.Errorf("kb: delta entity %q appears twice", ne.Name)
		}
		seen[ne.Name] = true
	}
	for i, r := range d.Rows {
		if strings.TrimSpace(NormalizeName(r.Surface)) == "" {
			return fmt.Errorf("kb: delta row %d has an empty surface", i)
		}
		if r.Count <= 0 {
			return fmt.Errorf("kb: delta row %d (%q) has non-positive count %d", i, r.Surface, r.Count)
		}
		if r.Entity < 0 || r.Entity >= total {
			return fmt.Errorf("kb: delta row %d (%q) references entity %d out of range [0,%d)", i, r.Surface, r.Entity, total)
		}
	}
	for i, l := range d.Links {
		if l.Src == l.Dst {
			return fmt.Errorf("kb: delta link %d is a self-link (%d)", i, l.Src)
		}
		if l.Src < 0 || l.Src >= total || l.Dst < 0 || l.Dst >= total {
			return fmt.Errorf("kb: delta link %d (%d→%d) out of range [0,%d)", i, l.Src, l.Dst, total)
		}
	}
	for p, v := range d.PhraseIDF {
		if p == "" || v <= 0 {
			return fmt.Errorf("kb: delta phrase IDF entry %q=%g is not a positive weight", p, v)
		}
		if base.PhraseIDF(p) != 0 {
			return fmt.Errorf("kb: delta phrase IDF entry %q would rewrite an existing base weight", p)
		}
	}
	for w, v := range d.WordIDF {
		if w == "" || v <= 0 {
			return fmt.Errorf("kb: delta word IDF entry %q=%g is not a positive weight", w, v)
		}
		if base.WordIDF(w) != 0 {
			return fmt.Errorf("kb: delta word IDF entry %q would rewrite an existing base weight", w)
		}
	}
	return nil
}

// newEntityValue materializes the Entity struct of delta entity i (links
// still empty; the caller merges those).
func (d *Delta) newEntityValue(i int) Entity {
	ne := &d.Entities[i]
	return Entity{
		ID:          EntityID(d.BaseEntities + i),
		Name:        ne.Name,
		Domain:      ne.Domain,
		Types:       slices.Clone(ne.Types),
		Keyphrases:  slices.Clone(ne.Keyphrases),
		KeywordNPMI: maps.Clone(ne.KeywordNPMI),
	}
}

// linkAdds groups the delta's link additions by endpoint: out-edges by
// source and in-edges by destination.
func (d *Delta) linkAdds() (out, in map[EntityID][]EntityID) {
	out = make(map[EntityID][]EntityID)
	in = make(map[EntityID][]EntityID)
	for _, l := range d.Links {
		out[l.Src] = append(out[l.Src], l.Dst)
		in[l.Dst] = append(in[l.Dst], l.Src)
	}
	return out, in
}

// rowAdds folds the delta's dictionary additions — explicit rows plus the
// implicit count-1 canonical-name row of every new entity (mirroring
// Builder.AddEntity) — into normalized-surface → per-entity count form.
func (d *Delta) rowAdds() map[string]map[EntityID]int {
	adds := make(map[string]map[EntityID]int, len(d.Rows)+len(d.Entities))
	bump := func(surface string, e EntityID, count int) {
		key := NormalizeName(surface)
		m := adds[key]
		if m == nil {
			m = make(map[EntityID]int)
			adds[key] = m
		}
		m[e] += count
	}
	for i := range d.Entities {
		bump(d.Entities[i].Name, EntityID(d.BaseEntities+i), 1)
	}
	for _, r := range d.Rows {
		bump(r.Surface, r.Entity, r.Count)
	}
	return adds
}

// mergeLinks returns the deduplicated sorted union of an existing link set
// and additions, never mutating the existing slice (it may be shared with
// a live base entity).
func mergeLinks(existing, adds []EntityID) []EntityID {
	merged := make([]EntityID, 0, len(existing)+len(adds))
	merged = append(merged, existing...)
	merged = append(merged, adds...)
	return dedupIDs(merged)
}

// mergeRows folds per-entity count additions into an existing candidate
// row (from the base's read surface) and rematerializes the candidates
// through candidatesFrom — the same entry order (ascending entity id) and
// the same float divisions as a full build, so the priors are
// byte-identical to Rebuild's.
func mergeRows(existing []Candidate, adds map[EntityID]int) []Candidate {
	merged := make(map[EntityID]int, len(existing)+len(adds))
	for _, c := range existing {
		merged[c.Entity] = c.Count
	}
	for e, c := range adds {
		merged[e] += c
	}
	entries := make([]nameEntry, 0, len(merged))
	for e, c := range merged {
		entries = append(entries, nameEntry{Entity: e, Count: c})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Entity < entries[j].Entity })
	return candidatesFrom(entries)
}

// Rebuild returns a fresh *KB with the delta's facts baked in, as if the
// base had been built with them from the start: entities appended, link
// sets re-merged, dictionary rows merged and priors rematerialized, IDF
// tables extended where the base had no weight. The base is never mutated
// (untouched entities and rows are shared). Rebuild is the conformance
// baseline for NewOverlay: same fingerprint, byte-identical annotations.
func Rebuild(k *KB, d *Delta) (*KB, error) {
	if err := d.Validate(k); err != nil {
		return nil, err
	}
	baseN := len(k.entities)
	nk := &KB{
		entities:  make([]Entity, baseN+len(d.Entities)),
		byName:    maps.Clone(k.byName),
		dict:      maps.Clone(k.dict),
		phraseIDF: maps.Clone(k.phraseIDF),
		wordIDF:   maps.Clone(k.wordIDF),
	}
	copy(nk.entities, k.entities)
	for i := range d.Entities {
		e := d.newEntityValue(i)
		nk.entities[e.ID] = e
		nk.byName[e.Name] = e.ID
	}
	outAdd, inAdd := d.linkAdds()
	for src, dsts := range outAdd {
		e := &nk.entities[src]
		e.OutLinks = mergeLinks(e.OutLinks, dsts)
	}
	for dst, srcs := range inAdd {
		e := &nk.entities[dst]
		e.InLinks = mergeLinks(e.InLinks, srcs)
	}
	for key, adds := range d.rowAdds() {
		merged := make(map[EntityID]int, len(nk.dict[key])+len(adds))
		for _, en := range nk.dict[key] {
			merged[en.Entity] = en.Count
		}
		for e, c := range adds {
			merged[e] += c
		}
		entries := make([]nameEntry, 0, len(merged))
		for e, c := range merged {
			entries = append(entries, nameEntry{Entity: e, Count: c})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Entity < entries[j].Entity })
		nk.dict[key] = entries
	}
	nk.cands = precomputeCandidates(nk.dict)
	// A delta IDF entry takes effect wherever the base lookup yields 0:
	// overwrite stored zeros too, so the rebuilt table agrees with the
	// overlay's base-then-delta lookup chain bit for bit.
	for p, v := range d.PhraseIDF {
		lp := strings.ToLower(p)
		if nk.phraseIDF[lp] == 0 {
			nk.phraseIDF[lp] = v
		}
	}
	for w, v := range d.WordIDF {
		lw := strings.ToLower(w)
		if nk.wordIDF[lw] == 0 {
			nk.wordIDF[lw] = v
		}
	}
	return nk, nil
}
