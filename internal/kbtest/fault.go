package kbtest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"aida/internal/kb"
)

// Faults configures the misbehavior a FaultStore injects into the shard
// host serving it. The zero value injects nothing.
type Faults struct {
	// Latency delays every operation (the host blocks before serving, so
	// hedged routers race a replica after their threshold).
	Latency time.Duration
	// Hang blocks every operation for the full duration — a stuck replica.
	// Unlike Latency it is meant to exceed any reasonable hedge threshold.
	Hang time.Duration
	// FailNext makes the next N operations fail with a transient error.
	FailNext int
	// ErrorEvery makes every Nth operation fail with a transient error
	// (0 disables).
	ErrorEvery int
	// StaleFingerprint makes the store report a perturbed content hash, as
	// a replica restarted onto different KB content would: every response
	// the host serves carries the wrong fingerprint header, which routers
	// must treat as a replica failure.
	StaleFingerprint bool
}

// errInjected is the transient error FaultStore injects.
var errInjected = errors.New("kbtest: injected transient fault")

// FaultStore wraps a kb.Store with configurable fault injection for
// conformance tests of the remote-store failover machinery. It implements
// the kb.HostFaulter hook a kb.StoreHost consults before serving each
// operation, so a fleet of real HTTP shard hosts misbehaves on demand —
// latency, hangs, transient errors, stale fingerprints — without a second
// HTTP stack. Reconfigure live with Set; Ops and Injected count what the
// host actually saw. All methods are safe for concurrent use.
type FaultStore struct {
	inner kb.Store
	idf   kb.IDFTabler

	mu sync.Mutex
	f  Faults

	ops      atomic.Int64
	injected atomic.Int64
}

// NewFaultStore wraps a store (which must expose IDF tables, as both
// in-process stores do) with no faults armed.
func NewFaultStore(s kb.Store) *FaultStore {
	idf, ok := s.(kb.IDFTabler)
	if !ok {
		panic("kbtest: FaultStore requires a store with IDF tables")
	}
	return &FaultStore{inner: s, idf: idf}
}

// Set replaces the armed faults (Faults{} disarms everything).
func (s *FaultStore) Set(f Faults) {
	s.mu.Lock()
	s.f = f
	s.mu.Unlock()
}

// Ops reports how many store operations reached this replica.
func (s *FaultStore) Ops() int64 { return s.ops.Load() }

// Injected reports how many operations failed with an injected error.
func (s *FaultStore) Injected() int64 { return s.injected.Load() }

// HostFault implements kb.HostFaulter: it delays and/or fails the
// operation according to the armed faults.
func (s *FaultStore) HostFault(ctx context.Context, op string) error {
	n := s.ops.Add(1)
	s.mu.Lock()
	f := s.f
	if f.FailNext > 0 {
		s.f.FailNext--
	}
	s.mu.Unlock()
	for _, d := range []time.Duration{f.Latency, f.Hang} {
		if d <= 0 {
			continue
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.FailNext > 0 || (f.ErrorEvery > 0 && n%int64(f.ErrorEvery) == 0) {
		s.injected.Add(1)
		return errInjected
	}
	return nil
}

// Fingerprint reports the wrapped store's content hash, perturbed while
// StaleFingerprint is armed (the host stamps it on every response, so
// routers see the staleness immediately).
func (s *FaultStore) Fingerprint() uint64 {
	fp := s.inner.Fingerprint()
	s.mu.Lock()
	stale := s.f.StaleFingerprint
	s.mu.Unlock()
	if stale {
		fp ^= 0xdeadbeefdeadbeef
	}
	return fp
}

// IDFTables implements kb.IDFTabler by delegation (interface embedding
// would not expose the extension).
func (s *FaultStore) IDFTables() (phrase, word map[string]float64) { return s.idf.IDFTables() }

// The rest of the kb.Store read surface delegates untouched: FaultStore
// never corrupts data, it only delays or refuses to serve it.

func (s *FaultStore) NumEntities() int                          { return s.inner.NumEntities() }
func (s *FaultStore) Entity(id kb.EntityID) *kb.Entity          { return s.inner.Entity(id) }
func (s *FaultStore) EntityByName(n string) (kb.EntityID, bool) { return s.inner.EntityByName(n) }
func (s *FaultStore) HasName(n string) bool                     { return s.inner.HasName(n) }
func (s *FaultStore) Candidates(n string) []kb.Candidate        { return s.inner.Candidates(n) }
func (s *FaultStore) Prior(n string, e kb.EntityID) float64     { return s.inner.Prior(n, e) }
func (s *FaultStore) Names() []string                           { return s.inner.Names() }
func (s *FaultStore) PhraseIDF(p string) float64                { return s.inner.PhraseIDF(p) }
func (s *FaultStore) WordIDF(w string) float64                  { return s.inner.WordIDF(w) }
func (s *FaultStore) KeywordWeight(e kb.EntityID, w string) float64 {
	return s.inner.KeywordWeight(e, w)
}
func (s *FaultStore) NumShards() int { return s.inner.NumShards() }

// Compile-time conformance: a FaultStore can stand in for any Store and be
// served by a StoreHost with fault hooks attached.
var (
	_ kb.Store       = (*FaultStore)(nil)
	_ kb.IDFTabler   = (*FaultStore)(nil)
	_ kb.HostFaulter = (*FaultStore)(nil)
)
