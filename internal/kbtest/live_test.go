package kbtest

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"aida"
	"aida/internal/kb"
)

// TestGoldenCorpusOverlay is the live-update conformance gate: an Overlay
// over the golden KB plus GoldenDelta must be indistinguishable — same
// fingerprint, byte-identical pipeline output on every golden document —
// from a full Rebuild containing the same facts, at 1 and 4 shards.
func TestGoldenCorpusOverlay(t *testing.T) {
	docs := Docs(t)
	delta := GoldenDelta()
	full, err := kb.Rebuild(GoldenKB(), delta)
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
			var base, rebuilt kb.Store = GoldenKB(), full
			if n > 1 {
				base = kb.Shard(GoldenKB(), n)
				rebuilt = kb.Shard(full, n)
			}
			ov, err := kb.NewOverlay(base, delta)
			if err != nil {
				t.Fatalf("NewOverlay: %v", err)
			}
			if got, want := ov.Fingerprint(), rebuilt.Fingerprint(); got != want {
				t.Fatalf("overlay fingerprint %016x != rebuild fingerprint %016x", got, want)
			}
			sysOv, sysRe := NewSystem(ov), NewSystem(rebuilt)
			for _, d := range docs {
				got := AnnotateJSON(t, sysOv, d.Text)
				want := AnnotateJSON(t, sysRe, d.Text)
				if !bytes.Equal(got, want) {
					t.Errorf("doc %s: overlay output differs from rebuild output", d.Name)
				}
			}
		})
	}
}

// TestApplyDeltaConcurrent drives annotation traffic through a System
// while ApplyDelta races it and asserts the no-torn-reads contract: every
// document's output matches exactly the pre-apply generation or the
// post-apply generation, never a mixture — and after the apply settles,
// everything is on the new generation, with the added entity linkable by
// name in the very next request. Run with -race, this also proves the
// generation swap is data-race free.
func TestApplyDeltaConcurrent(t *testing.T) {
	docs := Docs(t)
	delta := GoldenDelta()

	// The two legal outputs per document: generation 0 (golden KB) and
	// generation 1 (delta applied), computed on separate pristine systems.
	expect0 := make(map[string][]byte, len(docs))
	expect1 := make(map[string][]byte, len(docs))
	sys0 := NewSystem(GoldenKB())
	full, err := kb.Rebuild(GoldenKB(), delta)
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	sys1 := NewSystem(full)
	for _, d := range docs {
		expect0[d.Name] = AnnotateJSON(t, sys0, d.Text)
		expect1[d.Name] = AnnotateJSON(t, sys1, d.Text)
	}
	changed := 0
	for _, d := range docs {
		if !bytes.Equal(expect0[d.Name], expect1[d.Name]) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("GoldenDelta changes no golden document output; the torn-read check would be vacuous")
	}

	sys := NewSystem(GoldenKB())
	ctx := context.Background()
	const readers = 8
	const rounds = 6
	errc := make(chan error, readers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				d := docs[(r+i)%len(docs)]
				doc, err := sys.AnnotateDoc(ctx, d.Text, ConformanceOptions()...)
				if err != nil {
					errc <- fmt.Errorf("reader %d doc %s: %v", r, d.Name, err)
					return
				}
				got, err := MarshalDoc(doc)
				if err != nil {
					errc <- fmt.Errorf("reader %d doc %s: marshal: %v", r, d.Name, err)
					return
				}
				if !bytes.Equal(got, expect0[d.Name]) && !bytes.Equal(got, expect1[d.Name]) {
					errc <- fmt.Errorf("reader %d doc %s: torn read — output matches neither generation", r, d.Name)
					return
				}
			}
			errc <- nil
		}(r)
	}
	close(start)
	receipt, err := sys.ApplyDelta(delta)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if receipt.Generation != 1 || receipt.Entities != 2 {
		t.Fatalf("unexpected receipt: %+v", receipt)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}

	// Applying the same delta again must be rejected (it was built against
	// generation 0) and change nothing.
	if _, err := sys.ApplyDelta(delta); err == nil {
		t.Error("re-applying a generation-0 delta against generation 1 should fail validation")
	}
	if got := sys.Generation(); got != 1 {
		t.Fatalf("generation after rejected re-apply = %d, want 1", got)
	}

	// After the apply settles, every document is on generation 1 …
	for _, d := range docs {
		if got := AnnotateJSON(t, sys, d.Text); !bytes.Equal(got, expect1[d.Name]) {
			t.Errorf("doc %s: post-apply output does not match the new generation", d.Name)
		}
	}
	// … and the graduated entity is linkable by name immediately.
	wantID, ok := sys.Store().EntityByName(GoldenDeltaEntityA)
	if !ok {
		t.Fatalf("entity %q not resolvable after apply", GoldenDeltaEntityA)
	}
	doc, err := sys.AnnotateDoc(ctx, "Quarterly reports about "+GoldenDeltaEntityA+" circulated widely today.")
	if err != nil {
		t.Fatalf("AnnotateDoc: %v", err)
	}
	linked := false
	for _, a := range doc.Annotations {
		if strings.Contains(a.Mention.Text, GoldenDeltaEntityA) && a.Entity == wantID {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("added entity %q (id %d) not linked in the next request; annotations: %+v",
			GoldenDeltaEntityA, wantID, doc.Annotations)
	}
}

// TestOverlayCallersSeeOneGeneration pins the Live() snapshot contract:
// the pair returned before an apply stays internally consistent (old
// store, old engine) while the System serves the new generation.
func TestOverlayCallersSeeOneGeneration(t *testing.T) {
	sys := NewSystem(GoldenKB())
	before := sys.Live()
	if before.Stats.Generation != 0 {
		t.Fatalf("fresh system at generation %d", before.Stats.Generation)
	}
	if _, err := sys.ApplyDelta(GoldenDelta()); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	after := sys.Live()
	if after.Stats.Generation != 1 {
		t.Fatalf("generation = %d, want 1", after.Stats.Generation)
	}
	if before.Store.NumEntities() == after.Store.NumEntities() {
		t.Fatal("apply did not grow the serving store")
	}
	if before.Store.NumEntities() != GoldenKB().NumEntities() {
		t.Fatal("pre-apply snapshot was mutated by the apply")
	}
	if before.Engine == after.Engine {
		t.Fatal("engine was not swapped with the store")
	}
	var _ aida.Store = after.Store // the snapshot exposes the public Store surface
}
