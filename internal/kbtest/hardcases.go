package kbtest

import (
	"context"
	"fmt"

	"aida"
	"aida/internal/eval"
	"aida/internal/kb"
	"aida/internal/ner"
)

// Hard-ambiguity corpus generators (the Namesakes regime): documents
// whose one mention surface names a whole family of same-surface entities
// and whose gold sense is deliberately NOT the popularity-prior favorite,
// in texts too short for coherence to help. The prior-driven baseline is
// structurally wrong on them; the request context prior (each doc carries
// the gold entity's own discriminating keyphrases) and a per-domain
// dictionary layer (re-weighting each surface toward its gold sense) are
// the two mechanisms under measurement. Everything here is a pure,
// deterministic function of the store — Names() is sorted — so the
// corpora are stable across runs and shard layouts.

// hardFiller is the lowercase padding around the mention. Lowercase
// tokens can never become mentions (recognition only fires on
// capitalized/uppercase tokens), and eligibility rejects any surface
// whose candidate family carries one of these words in a keyphrase, so
// the filler adds exactly zero evidence for any candidate.
var hardFiller = []string{
	"meanwhile", "reportedly", "observers", "remarked", "yesterday",
	"proceedings", "continued", "elsewhere", "quietly", "afterwards",
}

// hardCase is one eligible same-surface family: the dictionary key, its
// candidate family, the designated gold sense and the gold's
// discriminating keyphrases.
type hardCase struct {
	surface string
	gold    kb.EntityID
	context []string
}

// ShortTextCorpus builds the short-text workload over a store: one
// mention per document, minimal lowercase padding, gold = the family's
// second sense (beaten by the head sense on prior alone). max ≤ 0 means
// no limit.
func ShortTextCorpus(store kb.Store, max int) []eval.HardDoc {
	cases := hardCases(store, max, func(cands []kb.Candidate) int { return 1 })
	docs := make([]eval.HardDoc, 0, len(cases))
	for i, c := range cases {
		text := fmt.Sprintf("%s %s %s.", c.surface, hardFiller[i%len(hardFiller)], hardFiller[(i+3)%len(hardFiller)])
		docs = append(docs, hardDoc(store, fmt.Sprintf("short-%03d", i), text, c))
	}
	return docs
}

// HardAmbiguityCorpus builds the Namesakes-style workload: same-surface
// entity families where gold = the least popular family member — the
// hardest case for a prior-driven system — padded with two filler
// sentences. max ≤ 0 means no limit.
func HardAmbiguityCorpus(store kb.Store, max int) []eval.HardDoc {
	cases := hardCases(store, max, func(cands []kb.Candidate) int { return len(cands) - 1 })
	docs := make([]eval.HardDoc, 0, len(cases))
	for i, c := range cases {
		// All-lowercase padding on purpose: a capitalized filler word
		// could be shape-recognized as a spurious mention.
		text := fmt.Sprintf("%s %s %s, %s %s %s.",
			c.surface, hardFiller[i%len(hardFiller)], hardFiller[(i+1)%len(hardFiller)],
			hardFiller[(i+5)%len(hardFiller)], hardFiller[(i+7)%len(hardFiller)], hardFiller[(i+2)%len(hardFiller)])
		docs = append(docs, hardDoc(store, fmt.Sprintf("hard-%03d", i), text, c))
	}
	return docs
}

// hardDoc assembles the eval doc for one case, verifying recognition of
// the final text reproduces exactly the one expected mention.
func hardDoc(store kb.Store, name, text string, c hardCase) eval.HardDoc {
	return eval.HardDoc{
		Name:            name,
		Text:            text,
		Surfaces:        []string{c.surface},
		Gold:            []kb.EntityID{c.gold},
		Context:         c.context,
		ContextEntities: []kb.EntityID{c.gold},
	}
}

// hardCases scans the store's dictionary (sorted keys → deterministic
// output) for eligible same-surface families and designates the gold
// sense with pick (an index into the prior-sorted candidate list).
func hardCases(store kb.Store, max int, pick func([]kb.Candidate) int) []hardCase {
	rec := &ner.Recognizer{Lexicon: store}
	var out []hardCase
	for _, key := range store.Names() {
		cands := store.Candidates(key)
		// A real family, fully within the conformance candidate cap so
		// the gold sense is always materialized.
		if len(cands) < 3 || len(cands) > MaxCandidates {
			continue
		}
		gi := pick(cands)
		if gi <= 0 || gi >= len(cands) {
			continue
		}
		// The head sense must dominate the gold on prior, so a
		// prior-driven baseline is confidently wrong.
		if cands[0].Prior < 2*cands[gi].Prior {
			continue
		}
		gold := cands[gi].Entity
		ctx := discriminatingKeyphrases(store, gold, cands)
		if len(ctx) < 2 {
			continue
		}
		if !recognizableAlone(rec, key) {
			continue
		}
		if familyUsesFiller(store, cands) {
			continue
		}
		out = append(out, hardCase{surface: key, gold: gold, context: ctx})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// discriminatingKeyphrases returns the gold entity's keyphrases that
// share no content word with ANY rival candidate's keyphrases — context
// evidence that can only support the gold sense. The synthetic world
// guarantees at least two entity-unique jargon phrases per entity, so
// eligible families always have some.
func discriminatingKeyphrases(store kb.Store, gold kb.EntityID, cands []kb.Candidate) []string {
	rivalWords := make(map[string]bool)
	for _, c := range cands {
		if c.Entity == gold {
			continue
		}
		for _, kp := range store.Entity(c.Entity).Keyphrases {
			for _, w := range kp.Words {
				rivalWords[w] = true
			}
		}
	}
	var out []string
	seen := make(map[string]bool)
	for _, kp := range store.Entity(gold).Keyphrases {
		if len(kp.Words) == 0 || seen[kp.Phrase] {
			continue
		}
		disjoint := true
		for _, w := range kp.Words {
			if rivalWords[w] {
				disjoint = false
				break
			}
		}
		if disjoint {
			seen[kp.Phrase] = true
			out = append(out, kp.Phrase)
		}
	}
	return out
}

// recognizableAlone reports whether the surface, placed in running text,
// is recognized back as exactly one mention with that surface (filters
// out keys with parenthesized disambiguators, lowercase short aliases and
// anything else the recognizer's shape rules reject).
func recognizableAlone(rec *ner.Recognizer, surface string) bool {
	text := surface + " " + hardFiller[0] + "."
	ms := rec.Recognize(text)
	return len(ms) == 1 && ms[0].Text == surface
}

// familyUsesFiller reports whether any candidate of the family carries a
// filler word in its keyphrase model, which would let the padding leak
// evidence toward a candidate.
func familyUsesFiller(store kb.Store, cands []kb.Candidate) bool {
	for _, c := range cands {
		for _, kp := range store.Entity(c.Entity).Keyphrases {
			for _, w := range kp.Words {
				for _, f := range hardFiller {
					if w == f {
						return true
					}
				}
			}
		}
	}
	return false
}

// annotateFunc adapts a System with per-document options into the eval
// harness's aida-free AnnotateFunc shape.
func annotateFunc(sys *aida.System, opts func(d eval.HardDoc) []aida.AnnotateOption) eval.AnnotateFunc {
	return func(ctx context.Context, d eval.HardDoc) ([]eval.Annotated, error) {
		doc, err := sys.AnnotateDoc(ctx, d.Text, opts(d)...)
		if err != nil {
			return nil, err
		}
		out := make([]eval.Annotated, len(doc.Annotations))
		for i, a := range doc.Annotations {
			out[i] = eval.Annotated{Surface: a.Mention.Text, Entity: a.Entity}
		}
		return out, nil
	}
}

// RunHardWorkload measures a hard-ambiguity corpus under the standard
// variant triple of one System: the plain pipeline (baseline), the
// pipeline with each document's request context blended in
// (aida.WithContext + aida.WithContextEntities), and the pipeline routed
// through the named registered domain layer (aida.WithDomain; skipped when
// domain is empty). The System's method and candidate cap apply to all
// three runs, so the deltas isolate the request-context machinery.
func RunHardWorkload(ctx context.Context, sys *aida.System, corpus string, docs []eval.HardDoc, domain string) (eval.HardWorkloadReport, error) {
	baseline := annotateFunc(sys, func(eval.HardDoc) []aida.AnnotateOption { return nil })
	contextPrior := annotateFunc(sys, func(d eval.HardDoc) []aida.AnnotateOption {
		return []aida.AnnotateOption{
			aida.WithContext(d.Context...),
			aida.WithContextEntities(d.ContextEntities...),
		}
	})
	var domainLayer eval.AnnotateFunc
	if domain != "" {
		domainLayer = annotateFunc(sys, func(eval.HardDoc) []aida.AnnotateOption {
			return []aida.AnnotateOption{aida.WithDomain(domain)}
		})
	}
	return eval.RunHardWorkload(ctx, corpus, docs, baseline, contextPrior, domainLayer)
}

// DomainDictionaryFor builds the per-domain dictionary that makes each
// workload document's gold sense the dominant sense of its surface: one
// row per distinct surface, targeting the gold entity by canonical name
// with 5× the surface's total anchor mass. Registering it as a domain
// layer flips the prior baseline's answer to the gold sense without
// touching the base KB.
func DomainDictionaryFor(store kb.Store, name string, docs []eval.HardDoc) kb.DomainDictionary {
	dict := kb.DomainDictionary{Name: name}
	seen := make(map[string]bool)
	for _, d := range docs {
		for i, s := range d.Surfaces {
			if seen[s] {
				continue
			}
			seen[s] = true
			total := 0
			for _, c := range store.Candidates(s) {
				total += c.Count
			}
			dict.Rows = append(dict.Rows, kb.DomainRow{
				Surface: s,
				Entity:  store.Entity(d.Gold[i]).Name,
				Count:   5*total + 1,
			})
		}
	}
	return dict
}
