package kbtest

import (
	"bytes"
	"os"
	"testing"

	"aida"
	"aida/internal/kb"
)

// evictionBudget is the deliberately tiny MaxProfileBytes the evicting
// engine mode runs under: far below the working set, so profiles (and
// their dependent memoized pairs) churn constantly while the pinned output
// must not move by a byte.
const evictionBudget = 4096

// engineStores are the Store implementations the engine-mode suite runs:
// the acceptance matrix is 1 and 4 KB shards.
func engineStores() []NamedStore {
	k := GoldenKB()
	return []NamedStore{
		{Name: "unsharded", Store: k},
		{Name: shardName(4), Store: kb.Shard(k, 4)},
	}
}

// warmKORE drives KORE relatedness over a deterministic entity sample so
// the engine interns keyphrase profiles. The golden pipeline's default AIDA
// method scores coherence with MW (pair cache only), so this is what puts
// profile state — the part the eviction budget governs — into play without
// touching annotation output.
func warmKORE(sys *aida.System, entities int) {
	n := sys.KB.NumEntities()
	if entities > n {
		entities = n
	}
	for i := 0; i < entities; i++ {
		for j := i + 1; j < entities; j++ {
			sys.Relatedness(aida.KORE, aida.EntityID(i), aida.EntityID(j))
		}
	}
}

// readExpected loads the committed golden bytes for a document.
func readExpected(t *testing.T, name string) []byte {
	t.Helper()
	want, err := os.ReadFile(ExpectedPath(name))
	if err != nil {
		t.Fatalf("missing expected output for %s: %v (run with -update)", name, err)
	}
	return want
}

// assertGolden runs the full pipeline over the corpus on sys and compares
// every document against the committed expectation byte for byte.
func assertGolden(t *testing.T, sys *aida.System, docs []Doc, mode string) {
	t.Helper()
	for _, d := range docs {
		got := AnnotateJSON(t, sys, d.Text)
		if !bytes.Equal(got, readExpected(t, d.Name)) {
			t.Errorf("%s (%s engine): output diverges from golden expectation\n got: %s",
				d.Name, mode, firstDiff(got, readExpected(t, d.Name)))
		}
	}
}

// TestGoldenCorpusEngineModes is the engine-lifecycle conformance suite:
// the golden corpus must come out byte-identical in all three engine modes
// — cold (fresh caches), warm-started from a snapshot written by a donor
// process, and evicting under a tiny MaxProfileBytes budget — at 1 and 4
// KB shards. Warm start and eviction change only work counters (hits,
// misses, evictions), never a single output byte; this is what lets a
// fleet snapshot/restore engines and cap their memory without any output
// drift.
func TestGoldenCorpusEngineModes(t *testing.T) {
	docs := Docs(t)
	for _, ns := range engineStores() {
		t.Run(ns.Name, func(t *testing.T) {
			t.Run("cold", func(t *testing.T) {
				assertGolden(t, NewSystem(ns.Store), docs, "cold")
			})

			t.Run("warm", func(t *testing.T) {
				// A donor process annotates the corpus (filling the pair
				// cache) and serves KORE traffic (interning profiles), then
				// persists its warm engine.
				donor := NewSystem(ns.Store)
				for _, d := range docs {
					AnnotateJSON(t, donor, d.Text)
				}
				warmKORE(donor, 40)
				var snap bytes.Buffer
				if err := donor.SaveEngine(&snap); err != nil {
					t.Fatalf("SaveEngine: %v", err)
				}
				// A fresh process warm-starts from the snapshot: its engine
				// is hot before the first request...
				sys := NewSystem(ns.Store)
				if err := sys.LoadEngine(bytes.NewReader(snap.Bytes())); err != nil {
					t.Fatalf("LoadEngine: %v", err)
				}
				st := sys.Scorer().Stats()
				if st.Profiles == 0 || st.Pairs == 0 {
					t.Fatalf("warm-started engine is cold: %+v", st)
				}
				// ...and every output byte matches the cold expectation.
				assertGolden(t, sys, docs, "warm")
			})

			t.Run("evicting", func(t *testing.T) {
				sys := NewSystem(ns.Store)
				sys.Scorer().SetMaxProfileBytes(evictionBudget)
				// KORE traffic churns profiles through the tiny budget
				// while the corpus is annotated; output must not move.
				warmKORE(sys, 40)
				assertGolden(t, sys, docs, "evicting")
				st := sys.Scorer().Stats()
				if st.Evictions == 0 {
					t.Errorf("budget of %d bytes triggered no evictions over the corpus: %+v", evictionBudget, st)
				}
				if st.ProfileBytes > evictionBudget {
					t.Errorf("accounted profile bytes %d exceed the %d budget", st.ProfileBytes, evictionBudget)
				}
			})
		})
	}
}

// TestGoldenCorpusWarmStartAcrossShardLayouts pins snapshot portability at
// the system level: a snapshot written over the unsharded KB warm-starts a
// 4-shard router (the fingerprint covers content, not layout) and still
// reproduces the golden bytes.
func TestGoldenCorpusWarmStartAcrossShardLayouts(t *testing.T) {
	docs := Docs(t)
	donor := NewSystem(GoldenKB())
	for _, d := range docs {
		AnnotateJSON(t, donor, d.Text)
	}
	warmKORE(donor, 40)
	var snap bytes.Buffer
	if err := donor.SaveEngine(&snap); err != nil {
		t.Fatalf("SaveEngine: %v", err)
	}
	sys := NewSystem(kb.Shard(GoldenKB(), 4))
	if err := sys.LoadEngine(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("LoadEngine onto 4-shard router: %v", err)
	}
	if st := sys.Scorer().Stats(); st.Profiles == 0 {
		t.Fatalf("cross-layout warm start interned nothing: %+v", st)
	}
	assertGolden(t, sys, docs, "warm-cross-shard")
}
