//go:build race

package kbtest

// raceEnabled reports whether this binary was built with the race
// detector; timing-sensitive tests skip themselves under it.
const raceEnabled = true
