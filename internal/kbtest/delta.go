package kbtest

import (
	"maps"
	"slices"

	"aida/internal/kb"
)

// GoldenDeltaEntityA and GoldenDeltaEntityB are the canonical names of the
// two entities GoldenDelta adds. They are guaranteed absent from the
// golden world, so tests can assert they become linkable after an apply.
const (
	GoldenDeltaEntityA = "Zorvex Dynamics"
	GoldenDeltaEntityB = "Quellon Harbor"
)

// GoldenDelta returns the deterministic live-update delta of the
// conformance suite: two new entities (their keyphrase features derived
// from existing golden entities, so all vocabulary already carries base
// IDF weights), link edges in both directions between new and existing
// entities, new dictionary rows for the new names, and a count addition
// that re-weights the golden world's first ambiguous surface — the update
// therefore changes served priors, not just unseen names.
//
// The delta is a pure function of the golden KB; every call returns an
// equal value.
func GoldenDelta() *kb.Delta {
	k := GoldenKB()
	derive := func(name string, src kb.EntityID) kb.NewEntity {
		e := k.Entity(src)
		ne := kb.NewEntity{Name: name, Domain: "emerging", Types: []string{"emerging"}}
		n := min(len(e.Keyphrases), 4)
		ne.Keyphrases = slices.Clone(e.Keyphrases[:n])
		keys := slices.Sorted(maps.Keys(e.KeywordNPMI))
		if len(keys) > 6 {
			keys = keys[:6]
		}
		ne.KeywordNPMI = make(map[string]float64, len(keys))
		for _, w := range keys {
			ne.KeywordNPMI[w] = e.KeywordNPMI[w]
		}
		return ne
	}
	base := kb.EntityID(k.NumEntities())
	d := &kb.Delta{
		BaseEntities: k.NumEntities(),
		Entities: []kb.NewEntity{
			derive(GoldenDeltaEntityA, 5),
			derive(GoldenDeltaEntityB, 17),
		},
		Links: []kb.LinkAddition{
			{Src: base, Dst: 5},
			{Src: 5, Dst: base},
			{Src: base + 1, Dst: 17},
			{Src: 17, Dst: base + 1},
			{Src: base, Dst: base + 1},
		},
		Rows: []kb.RowAddition{
			{Surface: GoldenDeltaEntityA, Entity: base, Count: 3},
			{Surface: GoldenDeltaEntityB, Entity: base + 1, Count: 2},
		},
	}
	// Re-weight the first ambiguous dictionary row (sorted name order, so
	// the pick is deterministic): enough extra count to flip the surface's
	// top candidate, which is what makes the post-apply annotations of the
	// golden corpus observably different from the pre-apply ones.
	for _, name := range k.Names() {
		cands := k.Candidates(name)
		if len(cands) >= 2 {
			d.Rows = append(d.Rows, kb.RowAddition{
				Surface: name,
				Entity:  cands[1].Entity,
				Count:   cands[0].Count + 1,
			})
			break
		}
	}
	return d
}
