// Command gen regenerates the committed golden corpus
// (internal/kbtest/testdata/golden/docs.json) from the deterministic
// synthetic world. The corpus mixes CoNLL-geometry news documents with
// KORE50-style hard documents (very short contexts, maximally ambiguous
// surfaces) — the documents where sharding bugs would first surface as
// silently different disambiguations.
//
// Run from the repository root:
//
//	go run ./internal/kbtest/gen
//	go test ./internal/kbtest -update
//
// and commit both docs.json and the refreshed expected outputs.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aida/internal/kbtest"
	"aida/internal/wiki"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kbtest/gen: ")
	world := wiki.Generate(wiki.Config{Seed: kbtest.Seed, Entities: kbtest.Entities})

	var docs []kbtest.Doc
	for i, d := range world.GenerateCorpus(wiki.CoNLLSpec(8, kbtest.Seed+1)) {
		docs = append(docs, kbtest.Doc{Name: fmt.Sprintf("conll-%d", i), Text: d.Text})
	}
	for i, d := range world.GenerateCorpus(wiki.HardSpec(4, kbtest.Seed+2)) {
		docs = append(docs, kbtest.Doc{Name: fmt.Sprintf("hard-%d", i), Text: d.Text})
	}

	data, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("internal", "kbtest", kbtest.DocsPath)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d documents)", path, len(docs))
}
