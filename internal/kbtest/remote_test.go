package kbtest

import (
	"bytes"
	"context"
	"crypto/tls"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"aida"
	"aida/internal/kb"
)

// readExpectedDoc loads the committed golden expectation of one document.
func readExpectedDoc(t testing.TB, name string) []byte {
	t.Helper()
	want, err := os.ReadFile(ExpectedPath(name))
	if err != nil {
		t.Fatalf("missing expected output for %s: %v (run with -update)", name, err)
	}
	return want
}

// TestGoldenCorpusRemote is the cross-process conformance gate of the
// shard fleet: the full pipeline over real HTTP shard hosts must produce
// the committed golden bytes at 1, 2 and 4 remote shards — the same
// contract the in-process router is pinned to, now across process (and
// wire-protocol) boundaries.
func TestGoldenCorpusRemote(t *testing.T) {
	docs := Docs(t)
	k := GoldenKB()
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("remote-%d", shards), func(t *testing.T) {
			fleet := StartFleet(t, k, shards, 1)
			sys := NewSystem(fleet.Dial(t, kb.RemoteOptions{}))
			for _, d := range docs {
				got := AnnotateJSON(t, sys, d.Text)
				if want := readExpectedDoc(t, d.Name); !bytes.Equal(got, want) {
					t.Errorf("%s: remote output diverges from golden expectation\n got: %s",
						d.Name, firstDiff(got, want))
				}
			}
		})
	}
}

// TestGoldenCorpusRemoteParallel runs the conformance corpus through the
// concurrent corpus API against a remote fleet: document fan-out over a
// shared RemoteStore (concurrent cache fills, scatter-gather in flight on
// many goroutines) must not change a byte. Under -race this is the remote
// store's concurrency test.
func TestGoldenCorpusRemoteParallel(t *testing.T) {
	docs := Docs(t)
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	fleet := StartFleet(t, GoldenKB(), 4, 2)
	sys := NewSystem(fleet.Dial(t, kb.RemoteOptions{}))
	out, err := sys.AnnotateCorpus(context.Background(), texts, append(ConformanceOptions(), aida.WithParallelism(4))...)
	if err != nil {
		t.Fatalf("AnnotateCorpus: %v", err)
	}
	for i, d := range docs {
		got, err := MarshalDoc(out[i])
		if err != nil {
			t.Fatalf("marshal %s: %v", d.Name, err)
		}
		if want := readExpectedDoc(t, d.Name); !bytes.Equal(got, want) {
			t.Errorf("%s: parallel remote output diverges\n got: %s", d.Name, firstDiff(got, want))
		}
	}
}

// protoCounter counts responses per HTTP protocol major version.
type protoCounter struct {
	rt http.RoundTripper
	h2 atomic.Int64
	h1 atomic.Int64
}

func (p *protoCounter) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := p.rt.RoundTrip(req)
	if err == nil {
		if resp.ProtoMajor == 2 {
			p.h2.Add(1)
		} else {
			p.h1.Add(1)
		}
	}
	return resp, err
}

// TestGoldenCorpusRemoteHTTP2 pins the HTTP/2 transport path: every store
// request is served over a multiplexed h2 connection, and the golden bytes
// are unchanged.
func TestGoldenCorpusRemoteHTTP2(t *testing.T) {
	docs := Docs(t)
	fleet := StartFleetHTTP2(t, GoldenKB(), 2, 1)

	base := &http.Transport{
		TLSClientConfig:   &tls.Config{InsecureSkipVerify: true},
		ForceAttemptHTTP2: true,
	}
	counter := &protoCounter{rt: base}
	sys := NewSystem(fleet.Dial(t, kb.RemoteOptions{Client: &http.Client{Transport: counter}}))
	for _, d := range docs[:4] {
		got := AnnotateJSON(t, sys, d.Text)
		if want := readExpectedDoc(t, d.Name); !bytes.Equal(got, want) {
			t.Errorf("%s: HTTP/2 remote output diverges\n got: %s", d.Name, firstDiff(got, want))
		}
	}
	if counter.h2.Load() == 0 {
		t.Fatal("no store request was served over HTTP/2")
	}
	if n := counter.h1.Load(); n != 0 {
		t.Fatalf("%d store requests fell back to HTTP/1.x", n)
	}
}

// TestRemoteFaultMasking is the failover conformance table: any single
// replica of any shard may be slow, hung, flaky or serving a stale
// fingerprint, and the fleet's golden-corpus bytes must not change —
// hedging and failover mask the fault, and the matching counters prove the
// masking machinery (not luck) did it.
func TestRemoteFaultMasking(t *testing.T) {
	docs := Docs(t)
	k := GoldenKB()
	cases := []struct {
		name   string
		faults Faults
		opts   kb.RemoteOptions
		moved  func(s kb.RemoteStats) bool
	}{
		{
			name:   "slow-primary-hedged",
			faults: Faults{Latency: 80 * time.Millisecond},
			opts:   kb.RemoteOptions{HedgeAfter: 2 * time.Millisecond},
			moved:  func(s kb.RemoteStats) bool { return s.Hedges >= 1 },
		},
		{
			name:   "hung-primary-hedged",
			faults: Faults{Hang: 5 * time.Second},
			opts:   kb.RemoteOptions{HedgeAfter: 2 * time.Millisecond},
			moved:  func(s kb.RemoteStats) bool { return s.Hedges >= 1 },
		},
		{
			name:   "flaky-primary-retries",
			faults: Faults{ErrorEvery: 2},
			moved:  func(s kb.RemoteStats) bool { return s.Retries >= 1 && s.Failovers >= 1 },
		},
		{
			name:   "dead-primary-failover",
			faults: Faults{ErrorEvery: 1},
			moved:  func(s kb.RemoteStats) bool { return s.Retries >= 1 && s.Failovers >= 1 },
		},
		{
			name:   "stale-fingerprint-primary",
			faults: Faults{StaleFingerprint: true},
			moved:  func(s kb.RemoteStats) bool { return s.Retries >= 1 && s.Failovers >= 1 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fleet := StartFleet(t, k, 2, 2)
			r := fleet.Dial(t, tc.opts)
			// Fault every shard's primary after a clean dial: the fleet keeps
			// serving from the replicas.
			fleet.SetAll(func(shard, rep int) bool { return rep == 0 }, tc.faults)
			sys := NewSystem(r)
			for _, d := range docs[:6] {
				got := AnnotateJSON(t, sys, d.Text)
				if want := readExpectedDoc(t, d.Name); !bytes.Equal(got, want) {
					t.Errorf("%s: output diverges under %s\n got: %s", d.Name, tc.name, firstDiff(got, want))
				}
			}
			if st := r.Stats(); !tc.moved(st) {
				t.Fatalf("fault %s was not masked by the failover machinery: stats %+v", tc.name, st)
			}
		})
	}
}

// TestFleetFaultSmoke is the CI fault-injection smoke (enable with
// AIDA_FLEET_SMOKE=1): ~10 seconds of continuous golden annotation against
// a 2×2 fleet whose replicas randomly flap between healthy, slow, flaky
// and stale states. Every produced document must still match the golden
// bytes — at most one replica per shard misbehaves at a time, which the
// fleet is contracted to mask.
func TestFleetFaultSmoke(t *testing.T) {
	if os.Getenv("AIDA_FLEET_SMOKE") == "" {
		t.Skip("set AIDA_FLEET_SMOKE=1 to run the 10s fault-injection smoke")
	}
	docs := Docs(t)
	fleet := StartFleet(t, GoldenKB(), 2, 2)
	rng := rand.New(rand.NewSource(20130610))
	menu := []Faults{
		{},
		{Latency: 30 * time.Millisecond},
		{Hang: 5 * time.Second},
		{ErrorEvery: 2},
		{ErrorEvery: 1},
		{StaleFingerprint: true},
	}

	// Each round dials a fresh store against a healthy fleet (a RemoteStore
	// caches forever, so a long-lived one would stop exercising the wire
	// after warmup), then arms a random fault on one random replica index
	// and annotates: every round hits the network under a live fault.
	deadline := time.Now().Add(10 * time.Second)
	rounds := 0
	var total kb.RemoteStats
	for time.Now().Before(deadline) {
		fleet.ClearFaults()
		r := fleet.Dial(t, kb.RemoteOptions{HedgeAfter: 5 * time.Millisecond})
		sys := NewSystem(r)
		rep := rng.Intn(2)
		f := menu[rng.Intn(len(menu))]
		fleet.SetAll(func(_, replica int) bool { return replica == rep }, f)
		for i := 0; i < 2; i++ {
			d := docs[rng.Intn(len(docs))]
			got := AnnotateJSON(t, sys, d.Text)
			if want := readExpectedDoc(t, d.Name); !bytes.Equal(got, want) {
				t.Fatalf("round %d: %s diverged under fault %+v on replica %d\n got: %s",
					rounds, d.Name, f, rep, firstDiff(got, want))
			}
		}
		st := r.Stats()
		total.Requests += st.Requests
		total.Hedges += st.Hedges
		total.Retries += st.Retries
		total.Failovers += st.Failovers
		rounds++
	}
	t.Logf("smoke: %d rounds, cumulative stats %+v", rounds, total)
	if rounds == 0 {
		t.Fatal("smoke made no progress")
	}
	if total.Hedges == 0 || total.Retries == 0 || total.Failovers == 0 {
		t.Fatalf("smoke never exercised the masking machinery: %+v", total)
	}
}
