package kbtest

import (
	"bytes"
	"context"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"aida"
	"aida/internal/kb"
)

// TestGoldenCorpusPooledStateDeterminism is the leak detector for the hot
// path's pooled scratch buffers (tokenizer runes, NER token slices,
// candidate arenas, coherence caches): the golden corpus is annotated at
// workers=NumCPU twice in one process through the same System, and every
// document of both passes must match the committed golden bytes exactly.
// Any state that survives a pool Put and bleeds into the next document —
// a half-reset buffer, a stale stamp, a shared slice written in place —
// shows up as a byte diff in the second pass, and under -race (CI runs
// this suite with the detector on) as a data race.
func TestGoldenCorpusPooledStateDeterminism(t *testing.T) {
	docs := Docs(t)
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // still contend on the pools even on a single-CPU host
	}
	for _, ns := range []NamedStore{
		{Name: "unsharded", Store: GoldenKB()},
		{Name: shardName(4), Store: kb.Shard(GoldenKB(), 4)},
	} {
		t.Run(ns.Name, func(t *testing.T) {
			sys := NewSystem(ns.Store)
			for pass := 1; pass <= 2; pass++ {
				got := annotateConcurrently(t, sys, docs, workers)
				for i, d := range docs {
					want, err := os.ReadFile(ExpectedPath(d.Name))
					if err != nil {
						t.Fatalf("missing expected output for %s: %v (run with -update)", d.Name, err)
					}
					if !bytes.Equal(got[i], want) {
						t.Errorf("pass %d: %s diverges from golden bytes under workers=%d (pooled state leak?)",
							pass, d.Name, workers)
					}
				}
			}
		})
	}
}

// annotateConcurrently runs the conformance pipeline over every document
// with the given number of worker goroutines sharing one System, and
// marshals each result on the main goroutine.
func annotateConcurrently(t *testing.T, sys *aida.System, docs []Doc, workers int) [][]byte {
	t.Helper()
	type result struct {
		doc *aida.Document
		err error
	}
	results := make([]result, len(docs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, d := range docs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			doc, err := sys.AnnotateDoc(context.Background(), d.Text, ConformanceOptions()...)
			results[i] = result{doc, err}
		}()
	}
	wg.Wait()
	out := make([][]byte, len(docs))
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("AnnotateDoc(%s): %v", docs[i].Name, r.err)
		}
		data, err := MarshalDoc(r.doc)
		if err != nil {
			t.Fatalf("marshal %s: %v", docs[i].Name, err)
		}
		out[i] = data
	}
	return out
}

// TestWarmParallelNotSlowerThanSequential pins the fix for the warm-engine
// scaling regression: with hot caches, fanning the golden corpus out over
// all CPUs must never lose to annotating it sequentially. Before the
// hot-path allocation overhaul, per-document garbage (~29 MB/op) made GC
// assists serialize the workers and warm parallel ran *slower* than warm
// workers=1; this test keeps that from coming back. Timing-based, so it
// skips under -short, under the race detector, and on single-CPU hosts
// where there is no parallelism to measure.
func TestWarmParallelNotSlowerThanSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing test; race detector skews scheduling")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("needs GOMAXPROCS ≥ 2 to measure parallel speedup")
	}
	docs := Docs(t)
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	sys := NewSystem(GoldenKB())
	ctx := context.Background()
	warm := func(par int) {
		if _, err := sys.AnnotateCorpus(ctx, texts, aida.WithParallelism(par)); err != nil {
			t.Fatalf("AnnotateCorpus: %v", err)
		}
	}
	warm(workers) // fill the engine caches before timing anything
	// Best-of-3 on each side absorbs scheduler noise; the bar is "not
	// slower" with a small tolerance, not a speedup target — the ≥2×
	// scaling claim lives in BenchmarkAnnotateBatch where it belongs.
	best := func(par int) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for range 3 {
			start := time.Now()
			warm(par)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	seq := best(1)
	par := best(workers)
	const tolerance = 1.15
	if float64(par) > float64(seq)*tolerance {
		t.Errorf("warm parallel regressed: workers=%d took %v, workers=1 took %v (>%.0f%% slower)",
			workers, par, seq, (tolerance-1)*100)
	}
	t.Logf("warm corpus: workers=1 %v, workers=%d %v", seq, workers, par)
}
