// Package kbtest is the golden-corpus conformance harness for kb.Store
// implementations: it runs the full annotation pipeline (recognition,
// candidate materialization, AIDA disambiguation, CONF confidence) over a
// committed corpus of ambiguous-mention documents and pins the output —
// annotations, per-candidate priors and scores, confidence, work counters
// — byte for byte.
//
// The committed fixtures live in testdata/golden/: docs.json holds the
// documents (regenerate with the checked-in generator in ./gen), and
// expected/<name>.json holds the expected wire output of the unsharded
// KB. TestGoldenCorpus asserts that every Store implementation — the
// plain *kb.KB and ShardedKB routers at 2, 4 and 8 shards — reproduces
// those bytes exactly, which is the contract that lets a sharded fleet
// replace a single process without any output drift ("Namesakes"-style
// silent regressions on ambiguous names are exactly what this pins).
//
// Run `go test ./internal/kbtest -update` to regenerate the expected
// outputs after an intentional pipeline change.
package kbtest

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"aida"
	"aida/internal/kb"
	"aida/internal/wiki"
)

// Update rewrites the expected golden outputs from the unsharded KB's
// current behavior instead of asserting against them.
var Update = flag.Bool("update", false, "rewrite testdata/golden/expected from current unsharded output")

// Golden-world parameters. Changing any of these invalidates the
// committed fixtures; regenerate docs.json (./gen) and the expected
// outputs (-update) together.
const (
	// Seed fixes the synthetic world behind the golden corpus.
	Seed = 20130610
	// Entities is the golden world's repository size.
	Entities = 300
	// MaxCandidates is the candidate cap of the conformance systems.
	MaxCandidates = 20
	// ConfIterations / ConfSeed parameterize the pinned CONF confidence
	// scores (entity perturbation is seeded, so they are deterministic).
	ConfIterations = 4
	ConfSeed       = 7
)

// ShardCounts are the router widths the conformance suite runs at, in
// addition to the unsharded KB.
var ShardCounts = []int{1, 2, 4, 8}

// goldenKB builds the golden world's KB once per process.
var goldenKB = sync.OnceValue(func() *kb.KB {
	return wiki.Generate(wiki.Config{Seed: Seed, Entities: Entities}).KB
})

// GoldenKB returns the deterministic knowledge base behind the golden
// corpus (shared across calls; the KB is immutable).
func GoldenKB() *kb.KB { return goldenKB() }

// NamedStore is one Store implementation under conformance test.
type NamedStore struct {
	Name  string
	Store kb.Store
}

// Stores returns every Store implementation the suite pins: the unsharded
// KB and ShardedKB routers at each of ShardCounts.
func Stores() []NamedStore {
	k := GoldenKB()
	out := []NamedStore{{Name: "unsharded", Store: k}}
	for _, n := range ShardCounts {
		out = append(out, NamedStore{Name: shardName(n), Store: kb.Shard(k, n)})
	}
	return out
}

func shardName(n int) string {
	return "sharded-" + strconv.Itoa(n)
}

// Doc is one committed golden-corpus document.
type Doc struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// DocsPath is the committed corpus file, relative to this package.
const DocsPath = "testdata/golden/docs.json"

// Docs loads the committed golden corpus.
func Docs(t testing.TB) []Doc {
	t.Helper()
	data, err := os.ReadFile(DocsPath)
	if err != nil {
		t.Fatalf("read golden corpus: %v (regenerate with go run ./internal/kbtest/gen)", err)
	}
	var docs []Doc
	if err := json.Unmarshal(data, &docs); err != nil {
		t.Fatalf("parse golden corpus: %v", err)
	}
	if len(docs) == 0 {
		t.Fatal("golden corpus is empty")
	}
	return docs
}

// ExpectedPath returns the committed expected-output file for a document.
func ExpectedPath(name string) string {
	return filepath.Join("testdata", "golden", "expected", name+".json")
}

// NewSystem builds the conformance pipeline over a store: full AIDA
// method, fixed candidate cap — the same configuration for every Store so
// outputs are comparable.
func NewSystem(s kb.Store) *aida.System {
	return aida.New(s, aida.WithMaxCandidates(MaxCandidates))
}

// Wire shapes of the pinned output. Field order is fixed by these structs,
// so the marshaled bytes are stable.

type wireAnnotation struct {
	Text   string      `json:"text"`
	Start  int         `json:"start"`
	End    int         `json:"end"`
	Entity kb.EntityID `json:"entity"`
	Label  string      `json:"label"`
	Score  float64     `json:"score"`
}

type wireCandidate struct {
	Entity kb.EntityID `json:"entity"`
	Label  string      `json:"label"`
	Prior  float64     `json:"prior"`
	Score  float64     `json:"score"`
}

type wireStats struct {
	Comparisons   int `json:"comparisons"`
	GraphEntities int `json:"graph_entities"`
}

type wireDoc struct {
	Annotations []wireAnnotation  `json:"annotations"`
	Candidates  [][]wireCandidate `json:"candidates"`
	Confidence  []float64         `json:"confidence"`
	Stats       wireStats         `json:"stats"`
}

// ConformanceOptions are the AnnotateDoc options of the pinned pipeline
// run: candidates, seeded CONF confidence and work counters all included,
// so every field of the wire shape is populated.
func ConformanceOptions() []aida.AnnotateOption {
	return []aida.AnnotateOption{
		aida.IncludeCandidates(),
		aida.IncludeConfidence(ConfIterations, ConfSeed),
		aida.IncludeStats(),
	}
}

// AnnotateJSON runs the full pipeline on one document and returns the
// canonical JSON the conformance suite compares byte for byte: the
// annotations, the per-mention candidate lists with priors and final
// scores, the seeded CONF confidence vector and the work counters.
func AnnotateJSON(t testing.TB, sys *aida.System, text string) []byte {
	t.Helper()
	doc, err := sys.AnnotateDoc(context.Background(), text, ConformanceOptions()...)
	if err != nil {
		t.Fatalf("AnnotateDoc: %v", err)
	}
	data, err := MarshalDoc(doc)
	if err != nil {
		t.Fatalf("marshal golden output: %v", err)
	}
	return data
}

// MarshalDoc renders an annotated document in the suite's canonical JSON
// form. The document must come from a run with ConformanceOptions.
func MarshalDoc(doc *aida.Document) ([]byte, error) {
	out := wireDoc{
		Annotations: make([]wireAnnotation, len(doc.Annotations)),
		Candidates:  make([][]wireCandidate, len(doc.Candidates)),
		Confidence:  doc.Confidence,
	}
	for i, a := range doc.Annotations {
		out.Annotations[i] = wireAnnotation{
			Text: a.Mention.Text, Start: a.Mention.Start, End: a.Mention.End,
			Entity: a.Entity, Label: a.Label, Score: a.Score,
		}
	}
	for i, cands := range doc.Candidates {
		wc := make([]wireCandidate, len(cands))
		for j, c := range cands {
			wc[j] = wireCandidate{Entity: c.Entity, Label: c.Label, Prior: c.Prior, Score: c.Score}
		}
		out.Candidates[i] = wc
	}
	if doc.Stats != nil {
		out.Stats = wireStats{Comparisons: doc.Stats.Comparisons, GraphEntities: doc.Stats.GraphEntities}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
