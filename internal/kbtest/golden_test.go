package kbtest

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"aida"
)

// TestGoldenCorpus is the conformance suite of the sharded knowledge
// base: the full annotate pipeline over the committed golden corpus must
// produce byte-identical output — annotations, candidate priors and
// scores, confidence, work counters — on every kb.Store implementation
// (the unsharded KB and routers at 2, 4 and 8 shards), and that output
// must match the committed expectation. Run with -update to regenerate
// the expectations from the unsharded KB.
func TestGoldenCorpus(t *testing.T) {
	docs := Docs(t)
	if *Update {
		sys := NewSystem(GoldenKB())
		if err := os.MkdirAll(filepath.Join("testdata", "golden", "expected"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			if err := os.WriteFile(ExpectedPath(d.Name), AnnotateJSON(t, sys, d.Text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("regenerated expected outputs; re-run without -update to verify")
	}
	for _, ns := range Stores() {
		t.Run(ns.Name, func(t *testing.T) {
			sys := NewSystem(ns.Store)
			for _, d := range docs {
				want, err := os.ReadFile(ExpectedPath(d.Name))
				if err != nil {
					t.Fatalf("missing expected output for %s: %v (run with -update)", d.Name, err)
				}
				got := AnnotateJSON(t, sys, d.Text)
				if !bytes.Equal(got, want) {
					t.Errorf("%s: output diverges from golden expectation\n got: %s\nwant: %s",
						d.Name, firstDiff(got, want), d.Name+".json")
				}
			}
		})
	}
}

// TestGoldenCorpusParallel re-runs the conformance corpus through the
// concurrent corpus API on every store: fan-out must not change a single
// byte, and under -race this doubles as the sharded router's concurrency
// test (many goroutines hitting the same shards and intern tables).
func TestGoldenCorpusParallel(t *testing.T) {
	docs := Docs(t)
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	for _, ns := range Stores() {
		t.Run(ns.Name, func(t *testing.T) {
			sys := NewSystem(ns.Store)
			out, err := sys.AnnotateCorpus(context.Background(), texts, aida.WithParallelism(4))
			if err != nil {
				t.Fatalf("AnnotateCorpus: %v", err)
			}
			// Compare against the sequential single-document path of the
			// same store (already pinned to the golden bytes above).
			for i, d := range docs {
				seq, err := sys.AnnotateDoc(context.Background(), d.Text)
				if err != nil {
					t.Fatalf("AnnotateDoc: %v", err)
				}
				if len(out[i].Annotations) != len(seq.Annotations) {
					t.Fatalf("%s: parallel/sequential annotation counts diverge", d.Name)
				}
				for j := range seq.Annotations {
					if out[i].Annotations[j] != seq.Annotations[j] {
						t.Fatalf("%s: annotation %d diverges under parallelism:\n got %+v\nwant %+v",
							d.Name, j, out[i].Annotations[j], seq.Annotations[j])
					}
				}
			}
		})
	}
}

// TestStoresAgreeOnFullDictionary sweeps every dictionary surface of the
// golden world through every store: candidate lists (priors included)
// must be identical at all shard counts. This is the exhaustive router
// check behind the per-document golden suite.
func TestStoresAgreeOnFullDictionary(t *testing.T) {
	k := GoldenKB()
	stores := Stores()
	for _, name := range k.Names() {
		want := k.Candidates(name)
		for _, ns := range stores[1:] {
			got := ns.Store.Candidates(name)
			if len(got) != len(want) {
				t.Fatalf("%s: Candidates(%q) length %d, want %d", ns.Name, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Candidates(%q)[%d] = %+v, want %+v", ns.Name, name, i, got[i], want[i])
				}
			}
		}
	}
}

// firstDiff renders the neighborhood of the first diverging byte, so a
// conformance failure points at the field instead of dumping whole files.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hi := i + 80
	if hi > len(got) {
		hi = len(got)
	}
	return "...at byte " + strconv.Itoa(i) + ": " + string(got[lo:hi]) + "..."
}
