package kbtest

import (
	"context"
	"crypto/tls"
	"net/http"
	"net/http/httptest"
	"testing"

	"aida/internal/kb"
)

// Fleet is a real multi-process-shaped shard fleet for conformance tests:
// one httptest server per shard×replica, each serving the golden store
// through a kb.StoreHost over real HTTP, each backed by its own FaultStore
// so tests can misbehave any single replica. Servers close with the test.
type Fleet struct {
	// Map is the fleet topology (primary first per shard), ready to dial.
	Map kb.ShardMap
	// Replicas[shard][replica] is the fault injector of one endpoint
	// (replica 0 is the primary).
	Replicas [][]*FaultStore

	http2 bool
}

// StartFleet boots a shards×replicas fleet of HTTP/1.1 keep-alive shard
// hosts over the store.
func StartFleet(t testing.TB, s kb.Store, shards, replicas int) *Fleet {
	return startFleet(t, s, shards, replicas, false)
}

// StartFleetHTTP2 is StartFleet over HTTP/2 (TLS with test certificates;
// Dial wires the matching client).
func StartFleetHTTP2(t testing.TB, s kb.Store, shards, replicas int) *Fleet {
	return startFleet(t, s, shards, replicas, true)
}

func startFleet(t testing.TB, s kb.Store, shards, replicas int, http2 bool) *Fleet {
	t.Helper()
	f := &Fleet{http2: http2}
	for shard := 0; shard < shards; shard++ {
		var eps kb.ShardEndpoints
		var faults []*FaultStore
		for rep := 0; rep < replicas; rep++ {
			fs := NewFaultStore(s)
			host, err := kb.NewStoreHost(fs, shard, shards)
			if err != nil {
				t.Fatalf("NewStoreHost(%d/%d): %v", shard, shards, err)
			}
			srv := httptest.NewUnstartedServer(host.Handler())
			if http2 {
				srv.EnableHTTP2 = true
				srv.StartTLS()
			} else {
				srv.Start()
			}
			t.Cleanup(srv.Close)
			faults = append(faults, fs)
			if rep == 0 {
				eps.Primary = srv.URL
			} else {
				eps.Replicas = append(eps.Replicas, srv.URL)
			}
		}
		f.Map.Shards = append(f.Map.Shards, eps)
		f.Replicas = append(f.Replicas, faults)
	}
	return f
}

// Dial connects a RemoteStore to the fleet. Unset options get
// test-friendly defaults: hedging and retry backoff disabled, so tests
// that want them opt in explicitly and everything else stays deterministic
// and fast.
func (f *Fleet) Dial(t testing.TB, opts kb.RemoteOptions) *kb.RemoteStore {
	t.Helper()
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = -1
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = -1
	}
	if f.http2 && opts.Client == nil {
		// httptest's HTTP/2 certificates are self-signed; a custom
		// TLSClientConfig disables the transport's automatic HTTP/2, so it
		// is forced back on explicitly.
		opts.Client = &http.Client{Transport: &http.Transport{
			TLSClientConfig:   &tls.Config{InsecureSkipVerify: true},
			ForceAttemptHTTP2: true,
		}}
	}
	r, err := kb.DialFleet(context.Background(), f.Map, opts)
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	return r
}

// SetAll arms the same faults on every replica the predicate selects.
func (f *Fleet) SetAll(pred func(shard, replica int) bool, faults Faults) {
	for shard, reps := range f.Replicas {
		for rep, fs := range reps {
			if pred(shard, rep) {
				fs.Set(faults)
			}
		}
	}
}

// ClearFaults disarms every replica.
func (f *Fleet) ClearFaults() {
	f.SetAll(func(int, int) bool { return true }, Faults{})
}
