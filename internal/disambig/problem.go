// Package disambig implements AIDA, the dissertation's named-entity
// disambiguation framework (Chapter 3): the popularity prior, the
// keyphrase-based mention–entity similarity sim-k, the entity–entity
// coherence graph, the prior and coherence robustness tests, and the
// baseline methods it is evaluated against (prior-only, Cucerzan, Kulkarni
// s/sp/CI, a TagMe-style linker and an Illinois-Wikifier-style linker).
//
// A disambiguation instance is a Problem: a document context plus mentions
// with materialized candidate lists. Candidates carry their own features
// (prior, keyphrases, link sets), so out-of-KB placeholder entities
// (Chapter 5) participate in exactly the same machinery as KB entities.
package disambig

import (
	"context"

	"aida/internal/kb"
	"aida/internal/relatedness"
	"aida/internal/textstat"
	"aida/internal/tokenizer"
)

// Candidate is one disambiguation target for a mention, with all features
// the methods consume. For knowledge-base entities the fields mirror the KB
// entry; for emerging-entity placeholders Entity is kb.NoEntity and the
// keyphrase model is supplied by the caller.
type Candidate struct {
	Entity      kb.EntityID
	Label       string // canonical name, or "<name>_EE" for placeholders
	Prior       float64
	Types       []string // semantic types (for NEC-style filtering)
	Keyphrases  []kb.Keyphrase
	KeywordNPMI map[string]float64
	InLinks     []kb.EntityID
	// EdgeScale scales this candidate's edge weights (γ_EE balancing of
	// Sec. 5.6 for placeholder candidates; 1 for KB entities).
	EdgeScale float64
}

func (c *Candidate) edgeScale() float64 {
	if c.EdgeScale <= 0 {
		return 1
	}
	return c.EdgeScale
}

// Mention is one name occurrence to disambiguate.
type Mention struct {
	Surface    string
	Candidates []Candidate
}

// Problem is a self-contained disambiguation instance.
type Problem struct {
	// ContextWords are the lower-cased, stopword-filtered tokens of the
	// whole input text (the mention context of Sec. 3.3.4).
	ContextWords []string
	Mentions     []Mention
	// WordIDF is the collection-wide keyword IDF used as the fallback
	// weight in cover scoring (Eq. 3.4) and as the KORE keyword weight.
	WordIDF func(string) float64
	// TotalEntities is |E| of the underlying KB (for the MW measure).
	TotalEntities int
	// Scorer optionally shares a long-lived relatedness engine across
	// problems: coherence scoring of candidates whose features are
	// untouched KB features is delegated to it, memoizing pair values
	// across documents. Setting it requires WordIDF to be the engine KB's
	// WordIDF (true for problems built by NewProblem); candidates with
	// modified features (enriched or placeholder) are always scored
	// per-problem. Nil disables cross-document sharing.
	Scorer *relatedness.Scorer
	// CoherenceWorkers, when > 0, overrides the method's coherence-edge
	// worker pool for this problem. Batch annotation sets it to 1 so that
	// document-level fan-out is not compounded by per-document pools
	// (results are identical at any setting; only scheduling changes).
	CoherenceWorkers int
	// Context carries per-request cancellation into the method. Methods
	// with expensive phases (coherence-edge scoring) observe it and stop
	// promptly, returning an incomplete Output the caller must discard
	// after checking Context.Err(). Nil means never canceled.
	Context context.Context
	// ContextModel is the per-request interest model blended into
	// mention–entity scoring (the short-text context prior). Nil — the
	// default — changes nothing: output is byte-identical to a problem
	// without the field.
	ContextModel *ContextModel

	matcher *textstat.Matcher
}

// Ctx is the nil-safe accessor for Problem.Context.
func (p *Problem) Ctx() context.Context {
	if p.Context == nil {
		return context.Background()
	}
	return p.Context
}

// Matcher returns the lazily built cover matcher over the context words.
func (p *Problem) Matcher() *textstat.Matcher {
	if p.matcher == nil {
		p.matcher = textstat.NewMatcher(p.ContextWords)
	}
	return p.matcher
}

// wordIDF is the nil-safe accessor for Problem.WordIDF.
func (p *Problem) wordIDF(w string) float64 {
	if p.WordIDF == nil {
		return 1
	}
	if v := p.WordIDF(w); v > 0 {
		return v
	}
	return 0.1 // unknown words carry minimal evidence
}

// NewProblem builds a Problem from raw text and pre-recognized mention
// surfaces, materializing up to maxCandidates candidates per mention from
// the KB dictionary (sorted by prior). maxCandidates ≤ 0 means no limit.
// The store may be a single KB or a sharded router; candidate lists are
// byte-identical either way.
func NewProblem(k kb.Store, text string, surfaces []string, maxCandidates int) *Problem {
	return NewProblemFromWords(k, tokenizer.ContentWords(text), surfaces, maxCandidates)
}

// NewProblemFromWords is NewProblem on pre-tokenized context words.
//
// All mentions' candidate structs live in one arena allocation (each
// mention's slice is a full-capacity view into it, so appending to one can
// never clobber a neighbor): per-mention materialization was a measurable
// slice of the per-document allocation volume.
func NewProblemFromWords(k kb.Store, contextWords, surfaces []string, maxCandidates int) *Problem {
	p := &Problem{
		ContextWords:  contextWords,
		Mentions:      make([]Mention, 0, len(surfaces)),
		WordIDF:       k.WordIDF,
		TotalEntities: k.NumEntities(),
	}
	var lists [][]kb.Candidate
	if bs, ok := k.(kb.BulkCandidateStore); ok {
		// Remote stores batch all dictionary rows (and the candidate
		// entities fillCandidates will need) in one scatter-gather per
		// shard; the lists are byte-identical to per-surface lookups.
		lists = bs.CandidatesBulk(surfaces)
	} else {
		lists = make([][]kb.Candidate, len(surfaces))
		for i, s := range surfaces {
			lists[i] = k.Candidates(s)
		}
	}
	total := 0
	for i := range lists {
		if maxCandidates > 0 && len(lists[i]) > maxCandidates {
			lists[i] = lists[i][:maxCandidates]
		}
		total += len(lists[i])
	}
	arena := make([]Candidate, total)
	off := 0
	for i, s := range surfaces {
		dst := arena[off : off+len(lists[i]) : off+len(lists[i])]
		off += len(lists[i])
		fillCandidates(k, lists[i], dst)
		p.Mentions = append(p.Mentions, Mention{Surface: s, Candidates: dst})
	}
	return p
}

// MaterializeCandidates looks up a surface form in the KB dictionary and
// returns candidate structs with all features attached. Entity features
// are fetched from the shard owning each candidate when k is sharded.
func MaterializeCandidates(k kb.Store, surface string, maxCandidates int) []Candidate {
	cands := k.Candidates(surface)
	if maxCandidates > 0 && len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	out := make([]Candidate, len(cands))
	fillCandidates(k, cands, out)
	return out
}

// fillCandidates materializes candidate structs into dst (len(cands) long),
// attaching the owning entity's features.
func fillCandidates(k kb.Store, cands []kb.Candidate, dst []Candidate) {
	for i, c := range cands {
		ent := k.Entity(c.Entity)
		dst[i] = Candidate{
			Entity:      c.Entity,
			Label:       ent.Name,
			Prior:       c.Prior,
			Types:       ent.Types,
			Keyphrases:  ent.Keyphrases,
			KeywordNPMI: ent.KeywordNPMI,
			InLinks:     ent.InLinks,
		}
	}
}

// Clone returns a deep-enough copy of the problem for perturbation: the
// mention slice and candidate slices are fresh, while the immutable
// candidate features are shared.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		ContextWords:     p.ContextWords,
		Mentions:         make([]Mention, len(p.Mentions)),
		WordIDF:          p.WordIDF,
		TotalEntities:    p.TotalEntities,
		Scorer:           p.Scorer,
		CoherenceWorkers: p.CoherenceWorkers,
		Context:          p.Context,
		ContextModel:     p.ContextModel,
		matcher:          p.matcher,
	}
	for i, m := range p.Mentions {
		q.Mentions[i] = Mention{
			Surface:    m.Surface,
			Candidates: append([]Candidate(nil), m.Candidates...),
		}
	}
	return q
}

// Result is the outcome for one mention.
type Result struct {
	MentionIndex   int
	Surface        string
	CandidateIndex int // -1 when no candidate was chosen (OOE or empty)
	Entity         kb.EntityID
	Label          string
	Score          float64
	// Scores holds the method's final per-candidate scores, aligned with
	// Mentions[MentionIndex].Candidates; used by the confidence assessors
	// of Chapter 5. May be nil for methods without a score vector.
	Scores []float64
}

// Stats reports work counters of one disambiguation run.
type Stats struct {
	// Comparisons is the number of pairwise entity relatedness
	// computations performed (the quantity of Fig. 4.5/Table 4.4).
	Comparisons int
	// GraphEntities is the number of candidate entities in the graph.
	GraphEntities int
	// RequestID labels the run with the caller's trace id (the HTTP
	// server's X-Request-ID, via aida.WithRequestID); empty outside traced
	// requests. Work counters and trace label travel together so a slow
	// disambiguation is attributable to its request end to end.
	RequestID string `json:",omitempty"`
}

// Output is a full disambiguation result.
type Output struct {
	Results []Result
	Stats   Stats
}

// Assignment returns the chosen entity per mention (kb.NoEntity when none).
func (o *Output) Assignment() []kb.EntityID {
	out := make([]kb.EntityID, len(o.Results))
	for i, r := range o.Results {
		out[i] = r.Entity
	}
	return out
}

// Method is a disambiguation algorithm.
type Method interface {
	Name() string
	Disambiguate(p *Problem) *Output
}

// emptyResult builds the abstain result for a mention.
func emptyResult(i int, m *Mention) Result {
	return Result{MentionIndex: i, Surface: m.Surface, CandidateIndex: -1, Entity: kb.NoEntity, Label: ""}
}

// pickResult builds the result for choosing candidate c of mention i.
func pickResult(i int, m *Mention, c int, score float64, scores []float64) Result {
	if c < 0 || c >= len(m.Candidates) {
		r := emptyResult(i, m)
		r.Scores = scores
		return r
	}
	return Result{
		MentionIndex:   i,
		Surface:        m.Surface,
		CandidateIndex: c,
		Entity:         m.Candidates[c].Entity,
		Label:          m.Candidates[c].Label,
		Score:          score,
		Scores:         scores,
	}
}

// argmax returns the index of the maximal score, -1 for empty input.
// Ties break toward the lower index (candidates are prior-sorted, so ties
// fall back to popularity).
func argmax(scores []float64) int {
	best := -1
	bestV := 0.0
	for i, v := range scores {
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// normalizeSum scales a non-negative vector to sum 1 (in place copy).
func normalizeSum(v []float64) []float64 {
	out := make([]float64, len(v))
	var sum float64
	for _, x := range v {
		if x > 0 {
			sum += x
		}
	}
	if sum <= 0 {
		return out
	}
	for i, x := range v {
		if x > 0 {
			out[i] = x / sum
		}
	}
	return out
}
