package disambig

import (
	"sync"

	"aida/internal/kb"
	"aida/internal/textstat"
)

// DefaultContextWeight is the blend weight used when a context model does
// not set one: strong enough to overturn a dominant prior when the context
// clearly favors another sense, weak enough that document evidence still
// dominates when the context is silent on a mention.
const DefaultContextWeight = 0.35

// ContextModel is a per-request interest model — the RESLVE-style signal
// for short text, where the coherence graph has too few mentions to vote.
// It carries the content words of request-supplied context keyphrases (a
// user profile, the enclosing page, an editing history) and/or a set of
// interest entities, plus the blend weight. A nil model changes nothing:
// every consumer gates on it, so output without a context is byte-identical
// to builds that predate the field.
//
// A ContextModel is immutable after construction and safe for concurrent
// use: one request's model is shared across the documents of a corpus
// fan-out and across CONF perturbation clones.
type ContextModel struct {
	// Words are the lower-cased content words of the request's context
	// keyphrases (tokenized by the caller).
	Words []string
	// Entities is the request's interest entity set; candidates in it (or
	// linked from it) get entity-affinity mass.
	Entities map[kb.EntityID]bool
	// Weight is the blend weight in (0,1]; 0 means DefaultContextWeight.
	Weight float64

	matcherOnce sync.Once
	matcher     *textstat.Matcher
}

// weight resolves the effective blend weight.
func (cm *ContextModel) weight() float64 {
	if cm.Weight <= 0 {
		return DefaultContextWeight
	}
	return cm.Weight
}

// contextMatcher lazily builds the cover matcher over the context words,
// once per request (the model is shared across a corpus fan-out's worker
// goroutines, hence the sync.Once).
func (cm *ContextModel) contextMatcher() *textstat.Matcher {
	cm.matcherOnce.Do(func() {
		cm.matcher = textstat.NewMatcher(cm.Words)
	})
	return cm.matcher
}

// scores computes the per-candidate context affinity for one mention, in
// [0,1]: the keyphrase part scores each candidate's keyphrases against the
// context words with the same cover machinery as sim-k (Eq. 3.6) and
// normalizes per mention; the entity part is direct membership in the
// interest set (1.0) or a link into it (0.5). When both signals are
// present they average, so neither can drown the other.
func (cm *ContextModel) scores(p *Problem, m *Mention) []float64 {
	useWords := len(cm.Words) > 0
	useEnts := len(cm.Entities) > 0
	var sim []float64
	if useWords {
		matcher := cm.contextMatcher()
		raw := make([]float64, len(m.Candidates))
		for j := range m.Candidates {
			raw[j] = candidateSim(matcher, &m.Candidates[j], p.wordIDF)
		}
		sim = normalizeSum(raw)
	}
	out := make([]float64, len(m.Candidates))
	for j := range m.Candidates {
		var aff float64
		if useEnts {
			c := &m.Candidates[j]
			if cm.Entities[c.Entity] {
				aff = 1
			} else {
				for _, in := range c.InLinks {
					if cm.Entities[in] {
						aff = 0.5
						break
					}
				}
			}
		}
		switch {
		case useWords && useEnts:
			out[j] = (sim[j] + aff) / 2
		case useWords:
			out[j] = sim[j]
		default:
			out[j] = aff
		}
	}
	return out
}

// Blend folds the context affinity into a mention's local score vector in
// place: w[j] ← (1−cw)·w[j] + cw·ctx[j], with cw the model's weight. It is
// called by the methods that rank candidates by mention–entity evidence
// (the AIDA family and the prior baseline); coherence-only machinery is
// untouched. Callers must gate on a nil model.
func (cm *ContextModel) Blend(p *Problem, i int, w []float64) {
	m := &p.Mentions[i]
	ctx := cm.scores(p, m)
	cw := cm.weight()
	for j := range w {
		w[j] = (1-cw)*w[j] + cw*ctx[j]
	}
}
