package disambig

import (
	"context"
	"sync"

	"aida/internal/kb"
	"aida/internal/pool"
	"aida/internal/relatedness"
)

// cohScorer computes pairwise coherence between the distinct candidates of
// a problem under a relatedness kind. For the LSH variants it applies the
// two-stage hashing filter of Sec. 4.4.2 so that only pairs sharing a
// stage-two bucket are ever scored; all other pairs have coherence 0.
//
// Coherence works on Candidate features (keyphrases, in-links) rather than
// KB ids so that emerging-entity placeholders participate transparently.
// When the problem carries a shared relatedness engine, pairs of candidates
// whose features are untouched KB features are delegated to it, so their
// values are memoized across documents; candidates with per-problem
// features (placeholders, enriched entities) keep the local path.
//
// score and scoreAll are safe for concurrent use; Stats.Comparisons counts
// each distinct allowed pair of the problem exactly once, so counts and
// scores are identical at any parallelism and any engine-cache temperature.
type cohScorer struct {
	kind  relatedness.Kind
	cands []*Candidate // distinct candidates, indexed by cid
	byKey map[string]int
	n     int // |E| for MW

	// engine is the shared cross-document scorer (nil = per-problem only);
	// engineID[cid] is the delegable KB id, or kb.NoEntity for candidates
	// that must be scored locally.
	engine   *relatedness.Scorer
	engineID []kb.EntityID

	weight relatedness.Weighter

	allowed map[[2]int]bool // LSH-filtered pairs; nil = all allowed

	pmu      sync.Mutex
	profiles []*relatedness.Profile

	mu sync.Mutex
	// The pair cache is a dense upper-triangle array over the candidates
	// interned at construction time (nc of them): one allocation per
	// problem instead of a per-pair-growing map, which was the single
	// largest per-document heap cost. pairIdx maps (lo,hi) to a slot.
	nc   int
	vals []float64
	have []bool
	// comparisons counts exact pairwise relatedness computations: one per
	// distinct allowed pair requested in this problem (engine cache hits
	// included, so the count matches the engine-free path).
	comparisons int
}

// newCohScorer registers all distinct candidates of the problem.
func newCohScorer(kind relatedness.Kind, p *Problem) *cohScorer {
	s := &cohScorer{
		kind:   kind,
		byKey:  make(map[string]int),
		n:      p.TotalEntities,
		engine: p.Scorer,
		weight: func(w string) float64 {
			return p.wordIDF(w)
		},
	}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		for j := range m.Candidates {
			s.cid(&m.Candidates[j])
		}
	}
	s.nc = len(s.cands)
	npairs := s.nc * (s.nc - 1) / 2
	s.vals = make([]float64, npairs)
	s.have = make([]bool, npairs)
	if kind.IsLSH() {
		s.buildFilter()
	}
	return s
}

// pairIdx maps an unordered interned pair (lo < hi, both < nc) to its
// upper-triangle cache slot.
func (s *cohScorer) pairIdx(lo, hi int) int {
	return lo*s.nc - lo*(lo+1)/2 + (hi - lo - 1)
}

// cid interns a candidate and returns its dense id. All candidates are
// interned during construction — score is only ever called with candidates
// of the problem the scorer was built from, so ids stay below nc and the
// dense pair cache covers every pair; concurrent score calls only take the
// read-only fast path.
func (s *cohScorer) cid(c *Candidate) int {
	if id, ok := s.byKey[c.Label]; ok {
		return id
	}
	id := len(s.cands)
	s.byKey[c.Label] = id
	s.cands = append(s.cands, c)
	s.profiles = append(s.profiles, nil)
	s.engineID = append(s.engineID, s.delegableID(c))
	return id
}

// delegableID returns the KB entity id the shared engine may score this
// candidate under, or kb.NoEntity when the candidate carries per-problem
// features. Delegation requires the candidate's keyphrase and in-link
// slices to be the KB entity's own (enrichment and placeholder modeling
// replace them, which this identity check detects); EdgeScale needs no
// check because it is applied on top of the raw engine value.
func (s *cohScorer) delegableID(c *Candidate) kb.EntityID {
	if s.engine == nil || c.Entity == kb.NoEntity {
		return kb.NoEntity
	}
	k := s.engine.KB()
	if int(c.Entity) >= k.NumEntities() {
		return kb.NoEntity
	}
	ent := k.Entity(c.Entity)
	if !sameFeatureSlice(c.Keyphrases, ent.Keyphrases) || !sameIDSlice(c.InLinks, ent.InLinks) {
		return kb.NoEntity
	}
	return c.Entity
}

func sameFeatureSlice(a, b []kb.Keyphrase) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func sameIDSlice(a, b []kb.EntityID) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func (s *cohScorer) profile(id int) *relatedness.Profile {
	s.pmu.Lock()
	p := s.profiles[id]
	s.pmu.Unlock()
	if p != nil {
		return p
	}
	// Build outside the lock so concurrent workers construct different
	// profiles in parallel; first writer wins (duplicates are identical
	// and immutable).
	built := relatedness.NewProfile(s.cands[id].Keyphrases, s.weight)
	s.pmu.Lock()
	if s.profiles[id] == nil {
		s.profiles[id] = built
	}
	p = s.profiles[id]
	s.pmu.Unlock()
	return p
}

// buildFilter runs the two-stage hashing over all registered candidates.
func (s *cohScorer) buildFilter() {
	variant := relatedness.KindKORELSHG
	if s.kind == relatedness.KindKORELSHF {
		variant = relatedness.KindKORELSHF
	}
	sets := make([][]kb.Keyphrase, len(s.cands))
	for i, c := range s.cands {
		sets[i] = c.Keyphrases
	}
	f := newStandaloneFilter(variant)
	s.allowed = make(map[[2]int]bool)
	for _, pr := range f.PairsOfSets(sets) {
		s.allowed[pr] = true
	}
}

// newStandaloneFilter builds an LSH filter that is not bound to a KB (the
// candidates carry their own keyphrases).
func newStandaloneFilter(kind relatedness.Kind) *relatedness.LSHFilter {
	return relatedness.NewLSHFilter(nil, kind)
}

// score returns the coherence between two candidates, caching pair values
// and honoring the LSH filter. Safe for concurrent use.
func (s *cohScorer) score(a, b *Candidate) float64 {
	ia, ib := s.cid(a), s.cid(b)
	if ia == ib {
		return 0 // mutually exclusive candidates of the same entity
	}
	lo, hi := ia, ib
	if lo > hi {
		lo, hi = hi, lo
	}
	idx := s.pairIdx(lo, hi)
	s.mu.Lock()
	if s.have[idx] {
		v := s.vals[idx]
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	if s.allowed != nil && !s.allowed[[2]int{lo, hi}] {
		s.mu.Lock()
		s.vals[idx] = 0
		s.have[idx] = true
		s.mu.Unlock()
		return 0
	}
	v := s.relatedness(ia, ib, a, b) * a.edgeScale() * b.edgeScale()
	// First writer wins: the value is a pure function of the pair, so
	// concurrent computations agree; the counter advances once per pair.
	s.mu.Lock()
	if s.have[idx] {
		v = s.vals[idx]
	} else {
		s.vals[idx] = v
		s.have[idx] = true
		s.comparisons++
	}
	s.mu.Unlock()
	return v
}

// relatedness computes the raw measure value for an interned pair,
// delegating to the shared engine when both sides are untouched KB
// entities.
func (s *cohScorer) relatedness(ia, ib int, a, b *Candidate) float64 {
	if ea, eb := s.engineID[ia], s.engineID[ib]; ea != kb.NoEntity && eb != kb.NoEntity {
		return s.engine.Relatedness(s.kind, ea, eb)
	}
	switch s.kind {
	case relatedness.KindMW:
		return relatedness.MW(a.InLinks, b.InLinks, s.n)
	case relatedness.KindKWCS:
		return relatedness.KeywordCosine(a.Keyphrases, b.Keyphrases, s.weight)
	case relatedness.KindKPCS:
		return relatedness.KeyphraseCosine(a.Keyphrases, b.Keyphrases)
	default:
		return relatedness.KOREProfiles(s.profile(ia), s.profile(ib))
	}
}

// minParallelPairs is the smallest pair batch worth fanning out; below it
// the goroutine overhead exceeds the scoring work.
const minParallelPairs = 32

// scoreAll warms the pair cache for the given candidate pairs with up to
// workers goroutines. Because score memoizes pure per-pair values and the
// comparison counter advances once per distinct pair, the resulting cache
// and stats are identical to evaluating the pairs sequentially. When ctx
// is canceled the workers stop handing out pairs promptly and ctx.Err()
// is returned; the partially warmed cache is still consistent.
func (s *cohScorer) scoreAll(ctx context.Context, pairs [][2]*Candidate, workers int) error {
	if len(pairs) < minParallelPairs {
		workers = 1
	}
	return pool.ForEachCtx(ctx, len(pairs), workers, func(i int) error {
		s.score(pairs[i][0], pairs[i][1])
		return nil
	})
}
