package disambig

import (
	"aida/internal/kb"
	"aida/internal/relatedness"
)

// cohScorer computes pairwise coherence between the distinct candidates of
// a problem under a relatedness kind. For the LSH variants it applies the
// two-stage hashing filter of Sec. 4.4.2 so that only pairs sharing a
// stage-two bucket are ever scored; all other pairs have coherence 0.
//
// Coherence works on Candidate features (keyphrases, in-links) rather than
// KB ids so that emerging-entity placeholders participate transparently.
type cohScorer struct {
	kind  relatedness.Kind
	cands []*Candidate // distinct candidates, indexed by cid
	byKey map[string]int
	n     int // |E| for MW

	profiles []*relatedness.Profile
	weight   relatedness.Weighter

	allowed map[[2]int]bool // LSH-filtered pairs; nil = all allowed
	cache   map[[2]int]float64
	// comparisons counts exact pairwise relatedness computations.
	comparisons int
}

// newCohScorer registers all distinct candidates of the problem.
func newCohScorer(kind relatedness.Kind, p *Problem) *cohScorer {
	s := &cohScorer{
		kind:  kind,
		byKey: make(map[string]int),
		n:     p.TotalEntities,
		cache: make(map[[2]int]float64),
		weight: func(w string) float64 {
			return p.wordIDF(w)
		},
	}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		for j := range m.Candidates {
			s.cid(&m.Candidates[j])
		}
	}
	if kind.IsLSH() {
		s.buildFilter()
	}
	return s
}

// cid interns a candidate and returns its dense id.
func (s *cohScorer) cid(c *Candidate) int {
	if id, ok := s.byKey[c.Label]; ok {
		return id
	}
	id := len(s.cands)
	s.byKey[c.Label] = id
	s.cands = append(s.cands, c)
	s.profiles = append(s.profiles, nil)
	return id
}

func (s *cohScorer) profile(id int) *relatedness.Profile {
	if s.profiles[id] == nil {
		s.profiles[id] = relatedness.NewProfile(s.cands[id].Keyphrases, s.weight)
	}
	return s.profiles[id]
}

// buildFilter runs the two-stage hashing over all registered candidates.
func (s *cohScorer) buildFilter() {
	variant := relatedness.KindKORELSHG
	if s.kind == relatedness.KindKORELSHF {
		variant = relatedness.KindKORELSHF
	}
	sets := make([][]kb.Keyphrase, len(s.cands))
	for i, c := range s.cands {
		sets[i] = c.Keyphrases
	}
	f := newStandaloneFilter(variant)
	s.allowed = make(map[[2]int]bool)
	for _, pr := range f.PairsOfSets(sets) {
		s.allowed[pr] = true
	}
}

// newStandaloneFilter builds an LSH filter that is not bound to a KB (the
// candidates carry their own keyphrases).
func newStandaloneFilter(kind relatedness.Kind) *relatedness.LSHFilter {
	return relatedness.NewLSHFilter(nil, kind)
}

// score returns the coherence between two candidates, caching pair values
// and honoring the LSH filter.
func (s *cohScorer) score(a, b *Candidate) float64 {
	ia, ib := s.cid(a), s.cid(b)
	if ia == ib {
		return 0 // mutually exclusive candidates of the same entity
	}
	key := [2]int{ia, ib}
	if ia > ib {
		key = [2]int{ib, ia}
	}
	if v, ok := s.cache[key]; ok {
		return v
	}
	if s.allowed != nil && !s.allowed[key] {
		s.cache[key] = 0
		return 0
	}
	s.comparisons++
	var v float64
	switch s.kind {
	case relatedness.KindMW:
		v = relatedness.MW(a.InLinks, b.InLinks, s.n)
	case relatedness.KindKWCS:
		v = relatedness.KeywordCosine(a.Keyphrases, b.Keyphrases, s.weight)
	case relatedness.KindKPCS:
		v = relatedness.KeyphraseCosine(a.Keyphrases, b.Keyphrases)
	default:
		v = relatedness.KOREProfiles(s.profile(ia), s.profile(ib))
	}
	v *= a.edgeScale() * b.edgeScale()
	s.cache[key] = v
	return v
}
