package disambig

import "aida/internal/textstat"

// RawSimScores exposes the unnormalized keyphrase similarity mass per
// candidate (Eq. 3.6). Unlike the per-mention normalized scores used for
// ranking, the raw mass carries evidence *magnitude*: the keyphrase
// harvester of Chapter 5 gates on it so that mentions matching only
// scattered words never count as high-confidence disambiguations.
func RawSimScores(p *Problem) [][]float64 {
	return simScores(p)
}

// BestPhraseCover returns the best single-keyphrase cover score (Eq. 3.4)
// of a candidate against the document context: 1 means at least one of the
// candidate's keyphrases occurs fully and contiguously. A genuine mention
// of the entity almost always realizes one of its keyphrases verbatim;
// scattered word-level matches never reach a high cover score, which makes
// this the precision gate for keyphrase harvesting (Sec. 5.5.1).
func BestPhraseCover(p *Problem, c *Candidate) float64 {
	matcher := p.Matcher()
	weight := func(w string) float64 {
		if npmi, ok := c.KeywordNPMI[w]; ok && npmi > 0 {
			return npmi
		}
		return p.wordIDF(w)
	}
	best := 0.0
	for _, kp := range c.Keyphrases {
		if len(kp.Words) == 0 {
			continue
		}
		if s := matcher.ScorePhrase(kp.Words, weight); s > best {
			best = s
		}
	}
	return best
}

// simScores computes the keyphrase-based mention–entity similarity sim-k
// (Sec. 3.3.4, Eq. 3.6) for every candidate of every mention: the sum over
// the entity's keyphrases of the partial-match cover score Eq. 3.4 against
// the document context, with keyword weights NPMI (entity-specific) falling
// back to collection IDF.
func simScores(p *Problem) [][]float64 {
	matcher := p.Matcher()
	out := make([][]float64, len(p.Mentions))
	// Cache per unique candidate label: candidates repeat across mentions
	// ("Page" twice in a document) and their sim depends only on the
	// document, not the mention.
	cache := make(map[string]float64)
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := make([]float64, len(m.Candidates))
		for j := range m.Candidates {
			c := &m.Candidates[j]
			if v, ok := cache[c.Label]; ok {
				scores[j] = v
				continue
			}
			v := candidateSim(matcher, c, p.wordIDF)
			cache[c.Label] = v
			scores[j] = v
		}
		out[i] = scores
	}
	return out
}

// candidateSim scores one candidate against the document matcher.
func candidateSim(matcher *textstat.Matcher, c *Candidate, idf func(string) float64) float64 {
	weight := func(w string) float64 {
		if npmi, ok := c.KeywordNPMI[w]; ok && npmi > 0 {
			return npmi
		}
		return idf(w)
	}
	var total float64
	for _, kp := range c.Keyphrases {
		if len(kp.Words) == 0 {
			continue
		}
		// Quick reject: skip phrases with no word in the document.
		any := false
		for _, w := range kp.Words {
			if matcher.Contains(w) {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		total += matcher.ScorePhrase(kp.Words, weight)
	}
	return total
}

// priorVector extracts the candidates' priors of one mention.
func priorVector(m *Mention) []float64 {
	out := make([]float64, len(m.Candidates))
	for i := range m.Candidates {
		out[i] = m.Candidates[i].Prior
	}
	return out
}

// l1Distance computes Σ|a_i - b_i| over two equal-length vectors; the
// coherence robustness test (Sec. 3.5.2) applies it to the prior and the
// normalized similarity distributions.
func l1Distance(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}
