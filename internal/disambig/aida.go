package disambig

import (
	"fmt"
	"math/bits"
	"runtime"

	"aida/internal/graph"
	"aida/internal/kb"
	"aida/internal/relatedness"
)

// Config parameterizes the AIDA framework (Sec. 3.6.1 defaults).
type Config struct {
	// UsePrior enables the popularity prior in mention–entity weights.
	UsePrior bool
	// PriorTest applies the prior robustness test (Sec. 3.5.1): the prior
	// is only combined with similarity when the best candidate's prior is
	// at least Rho; otherwise similarity alone is used.
	PriorTest bool
	Rho       float64 // prior test threshold ρ (default 0.9)

	// UseCoherence enables joint inference over the coherence graph.
	UseCoherence bool
	// CoherenceTest applies the coherence robustness test (Sec. 3.5.2):
	// mentions whose prior and similarity distributions agree (L1 < λ)
	// are fixed to their local best before running the graph algorithm.
	CoherenceTest bool
	Lambda        float64 // coherence test threshold λ (default 0.9)

	// Measure selects the coherence relatedness measure (default MW).
	Measure relatedness.Kind

	// Feature combination weights (Sec. 3.6.1): when the prior test
	// passes, the mention–entity weight is PriorWeight·prior +
	// (1−PriorWeight)·sim; edges are then balanced with Gamma:
	// entity–entity · Gamma, mention–entity · (1−Gamma).
	PriorWeight float64 // default 0.566
	Gamma       float64 // default 0.40

	// Workers bounds the worker pool that scores coherence edges
	// (0 = GOMAXPROCS, 1 = sequential). Scores, assignments and
	// Stats.Comparisons are identical at every setting.
	Workers int

	Graph graph.Options
}

func (c Config) rho() float64 {
	if c.Rho <= 0 {
		return 0.9
	}
	return c.Rho
}

func (c Config) lambda() float64 {
	if c.Lambda <= 0 {
		return 0.9
	}
	return c.Lambda
}

func (c Config) priorWeight() float64 {
	if c.PriorWeight <= 0 {
		return 0.566
	}
	return c.PriorWeight
}

func (c Config) gamma() float64 {
	if c.Gamma <= 0 {
		return 0.40
	}
	return c.Gamma
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// AIDA is the dissertation's disambiguation method. Depending on the
// configuration it covers the sim-k, prior·sim-k, r-prior·sim-k, +coh and
// +r-coh variants of Table 3.2.
type AIDA struct {
	Config Config
	name   string
}

// NewAIDA returns the full method with robustness tests and MW coherence —
// the "r-prior sim-k r-coh" configuration that wins Table 3.2.
func NewAIDA() *AIDA {
	return &AIDA{Config: Config{
		UsePrior: true, PriorTest: true,
		UseCoherence: true, CoherenceTest: true,
		Measure: relatedness.KindMW,
	}}
}

// NewAIDAVariant builds a named configuration.
func NewAIDAVariant(name string, cfg Config) *AIDA {
	return &AIDA{Config: cfg, name: name}
}

// Name implements Method.
func (a *AIDA) Name() string {
	if a.name != "" {
		return a.name
	}
	n := "sim-k"
	if a.Config.UsePrior {
		if a.Config.PriorTest {
			n = "r-prior " + n
		} else {
			n = "prior " + n
		}
	}
	if a.Config.UseCoherence {
		if a.Config.CoherenceTest {
			n += " r-coh"
		} else {
			n += " coh"
		}
		n += fmt.Sprintf(" (%s)", a.Config.Measure)
	}
	return n
}

// localWeights computes the mention–entity edge weights with the prior
// robustness test applied: w = pw·prior + (1−pw)·sim when the mention's
// best prior passes ρ (or the test is disabled), else w = sim.
// The returned sims are per-mention sum-normalized similarity distributions.
func (a *AIDA) localWeights(p *Problem) (weights, sims [][]float64) {
	raw := simScores(p)
	weights = make([][]float64, len(p.Mentions))
	sims = make([][]float64, len(p.Mentions))
	pw := a.Config.priorWeight()
	for i := range p.Mentions {
		m := &p.Mentions[i]
		sim := normalizeSum(raw[i])
		sims[i] = sim
		w := make([]float64, len(m.Candidates))
		usePrior := a.Config.UsePrior
		if usePrior && a.Config.PriorTest {
			maxPrior := 0.0
			for _, c := range m.Candidates {
				if c.Prior > maxPrior {
					maxPrior = c.Prior
				}
			}
			usePrior = maxPrior >= a.Config.rho()
		}
		for j := range m.Candidates {
			// Placeholder (out-of-KB) candidates have no meaningful
			// prior; their weight is pure similarity evidence, balanced
			// only by the γ_EE edge scale (Sec. 5.6).
			if usePrior && m.Candidates[j].Entity != kb.NoEntity {
				w[j] = pw*m.Candidates[j].Prior + (1-pw)*sim[j]
			} else {
				w[j] = sim[j]
			}
			w[j] *= m.Candidates[j].edgeScale()
		}
		// Short-text context prior: blend the request's interest model
		// into the mention–entity weights. Nil (the default) leaves the
		// weights — and hence every downstream byte — untouched.
		if p.ContextModel != nil {
			p.ContextModel.Blend(p, i, w)
		}
		weights[i] = w
	}
	return weights, sims
}

// Disambiguate implements Method.
func (a *AIDA) Disambiguate(p *Problem) *Output {
	weights, sims := a.localWeights(p)
	out := &Output{Results: make([]Result, len(p.Mentions))}

	if !a.Config.UseCoherence {
		for i := range p.Mentions {
			m := &p.Mentions[i]
			best := argmax(weights[i])
			score := 0.0
			if best >= 0 {
				score = weights[i][best]
			}
			out.Results[i] = pickResult(i, m, best, score, weights[i])
		}
		return out
	}

	// Coherence robustness test: fix mentions whose prior and similarity
	// distributions agree.
	fixed := make([]int, len(p.Mentions)) // candidate index or -1
	for i := range fixed {
		fixed[i] = -1
	}
	if a.Config.CoherenceTest {
		for i := range p.Mentions {
			m := &p.Mentions[i]
			if len(m.Candidates) <= 1 {
				continue
			}
			if l1Distance(priorVector(m), sims[i]) < a.Config.lambda() {
				fixed[i] = argmax(weights[i])
			}
		}
	}

	// abstainFrom fills the not-yet-decided tail of the results with
	// well-formed abstain entries (CandidateIndex -1, NoEntity), so that a
	// cancellation-truncated output never carries zero values a reader
	// could mistake for "candidate 0 chosen".
	abstainFrom := func(start int) {
		for i := start; i < len(p.Mentions); i++ {
			out.Results[i] = emptyResult(i, &p.Mentions[i])
		}
	}

	scorer := newCohScorer(a.Config.Measure, p)
	g, candOf := a.buildGraph(p, weights, fixed, scorer)
	if p.Ctx().Err() != nil {
		// Canceled while scoring coherence edges: stop promptly. The
		// output is incomplete and the caller must discard it after
		// checking the context's error.
		abstainFrom(0)
		out.Stats.Comparisons = scorer.comparisons
		return out
	}
	res := graph.Solve(g, a.Config.Graph)

	out.Stats.Comparisons = scorer.comparisons
	out.Stats.GraphEntities = g.Entities()

	gamma := a.Config.gamma()
	for i := range p.Mentions {
		if p.Ctx().Err() != nil {
			abstainFrom(i)
			return out
		}
		m := &p.Mentions[i]
		chosen := -1
		if res.Assignment[i] >= 0 {
			chosen = candOf[i][res.Assignment[i]]
		}
		// Per-candidate final scores: the weighted degree the candidate
		// would have in the solution (Sec. 5.4.1 "weighted-degree" score).
		scores := make([]float64, len(m.Candidates))
		for j := range m.Candidates {
			s := (1 - gamma) * weights[i][j]
			for i2 := range p.Mentions {
				if i2 == i || res.Assignment[i2] < 0 {
					continue
				}
				other := &p.Mentions[i2].Candidates[candOf[i2][res.Assignment[i2]]]
				s += gamma * scorer.score(&m.Candidates[j], other)
			}
			scores[j] = s
		}
		score := 0.0
		if chosen >= 0 {
			score = scores[chosen]
		}
		out.Results[i] = pickResult(i, m, chosen, score, scores)
	}
	return out
}

// buildGraph constructs the weighted mention–entity graph (Sec. 3.4.1):
// mention–entity weights scaled by (1−γ), entity–entity coherence weights
// rescaled so their average matches the mention-edge average and then
// scaled by γ. It returns the graph and, per mention, the mapping from
// graph entity index back to candidate index.
func (a *AIDA) buildGraph(p *Problem, weights [][]float64, fixed []int, scorer *cohScorer) (*graph.Graph, [][]int) {
	// Graph entity nodes = distinct candidates (shared across mentions).
	total := 0
	for i := range p.Mentions {
		total += len(p.Mentions[i].Candidates)
	}
	nodeOf := make(map[string]int, total)
	nodeCand := make([]*Candidate, 0, total)
	candOf := make([][]int, len(p.Mentions)) // graph node → candidate index per mention
	type meEdge struct{ m, node, cand int }
	meEdges := make([]meEdge, 0, total)
	// meStart[i] marks where mention i's edges begin in meEdges (the outer
	// loop visits mentions in order, so edges are already grouped).
	meStart := make([]int, len(p.Mentions)+1)
	for i := range p.Mentions {
		meStart[i] = len(meEdges)
		m := &p.Mentions[i]
		for j := range m.Candidates {
			if fixed[i] >= 0 && j != fixed[i] {
				continue
			}
			c := &m.Candidates[j]
			node, ok := nodeOf[c.Label]
			if !ok {
				node = len(nodeCand)
				nodeOf[c.Label] = node
				nodeCand = append(nodeCand, c)
			}
			meEdges = append(meEdges, meEdge{m: i, node: node, cand: j})
		}
	}
	meStart[len(p.Mentions)] = len(meEdges)
	nNodes := len(nodeCand)
	// candOf rows share one flat backing array (full-capacity sub-slices,
	// so a row can never grow into its neighbor).
	flat := make([]int, len(p.Mentions)*nNodes)
	for i := range flat {
		flat[i] = -1
	}
	for i := range candOf {
		candOf[i] = flat[i*nNodes : (i+1)*nNodes : (i+1)*nNodes]
	}

	g := graph.New(len(p.Mentions), nNodes)
	var meSum float64
	var meCount int
	for _, e := range meEdges {
		w := weights[e.m][e.cand]
		meSum += w
		meCount++
		candOf[e.m][e.node] = e.cand
	}
	meAvg := 0.0
	if meCount > 0 {
		meAvg = meSum / float64(meCount)
	}

	// Coherence edges between candidates of different mentions only
	// (candidates sharing a single mention are mutually exclusive). The
	// needed-pair set is a bitset over node pairs — index lo*nNodes+hi —
	// instead of a map, so the quadratic mark phase allocates nothing and
	// reading the set bits in index order IS ascending (lo,hi) order: the
	// sorted enumeration the bit-for-bit-reproducible rescaling below
	// requires, with no sort at all.
	pairBits := make([]uint64, (nNodes*nNodes+63)/64)
	npairs := 0
	for i := 0; i < len(p.Mentions); i++ {
		for j := i + 1; j < len(p.Mentions); j++ {
			for _, ei := range meEdges[meStart[i]:meStart[i+1]] {
				for _, ej := range meEdges[meStart[j]:meStart[j+1]] {
					if ei.node == ej.node {
						continue
					}
					lo, hi := ei.node, ej.node
					if lo > hi {
						lo, hi = hi, lo
					}
					idx := lo*nNodes + hi
					w, mask := idx>>6, uint64(1)<<(idx&63)
					if pairBits[w]&mask == 0 {
						pairBits[w] |= mask
						npairs++
					}
				}
			}
		}
	}
	pairs := make([][2]int, 0, npairs)
	for w, word := range pairBits {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << bit
			idx := w<<6 + bit
			pairs = append(pairs, [2]int{idx / nNodes, idx % nNodes})
		}
	}
	candPairs := make([][2]*Candidate, len(pairs))
	for i, k := range pairs {
		candPairs[i] = [2]*Candidate{nodeCand[k[0]], nodeCand[k[1]]}
	}
	workers := a.Config.workers()
	if p.CoherenceWorkers > 0 {
		workers = p.CoherenceWorkers
	}
	if err := scorer.scoreAll(p.Ctx(), candPairs, workers); err != nil {
		// Canceled: return the graph without entity edges instead of
		// recomputing the missing pairs sequentially below. The caller
		// (Disambiguate) bails out before solving.
		return g, candOf
	}
	var eeSum float64
	var eeCount int
	type eeEdge struct {
		a, b int
		w    float64
	}
	eeEdges := make([]eeEdge, 0, len(pairs))
	for _, k := range pairs {
		w := scorer.score(nodeCand[k[0]], nodeCand[k[1]])
		if w <= 0 {
			continue
		}
		eeEdges = append(eeEdges, eeEdge{a: k[0], b: k[1], w: w})
		eeSum += w
		eeCount++
	}
	// Rescale coherence so its average matches the mention-edge average,
	// then apply the γ balance.
	scale := 1.0
	if eeCount > 0 && eeSum > 0 && meAvg > 0 {
		scale = meAvg / (eeSum / float64(eeCount))
	}
	gamma := a.Config.gamma()
	for _, e := range eeEdges {
		g.AddEntityEdge(e.a, e.b, gamma*scale*e.w)
	}
	for i := range p.Mentions {
		g.ReserveMentionEdges(i, meStart[i+1]-meStart[i])
	}
	for _, e := range meEdges {
		g.AddMentionEdge(e.m, e.node, (1-gamma)*weights[e.m][e.cand])
	}
	return g, candOf
}
