package disambig

import (
	"reflect"
	"testing"

	"aida/internal/kb"
)

func expandKB() *kb.KB {
	b := kb.NewBuilder()
	rubin := b.AddEntity("Rubin Carter", "sports", "person")
	jimmy := b.AddEntity("Jimmy Carter", "politics", "person")
	b.AddName("Carter", rubin, 5)
	b.AddName("Carter", jimmy, 95)
	return b.Build()
}

func TestExpandSurfacesBasic(t *testing.T) {
	k := expandKB()
	got := ExpandSurfaces(k, []string{"Rubin Carter", "Carter", "Desire"})
	want := []string{"Rubin Carter", "Rubin Carter", "Desire"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExpandSurfacesAmbiguousExpansion(t *testing.T) {
	k := expandKB()
	// Two different long forms containing "Carter": do not guess.
	got := ExpandSurfaces(k, []string{"Rubin Carter", "Jimmy Carter", "Carter"})
	if got[2] != "Carter" {
		t.Fatalf("ambiguous expansion must be left alone, got %q", got[2])
	}
}

func TestExpandSurfacesCaseInsensitive(t *testing.T) {
	k := expandKB()
	got := ExpandSurfaces(k, []string{"Rubin Carter", "CARTER"})
	if got[1] != "Rubin Carter" {
		t.Fatalf("case-insensitive match failed: %q", got[1])
	}
}

func TestExpandSurfacesUnknownLongForm(t *testing.T) {
	k := expandKB()
	// "Marcello Cuttitta" is not in the dictionary: expanding "Cuttitta"
	// would strand the mention, so it stays.
	got := ExpandSurfaces(k, []string{"Marcello Cuttitta", "Cuttitta"})
	if got[1] != "Cuttitta" {
		t.Fatalf("expansion to unknown surface must be skipped, got %q", got[1])
	}
}

func TestExpandSurfacesNilKB(t *testing.T) {
	got := ExpandSurfaces(nil, []string{"Rubin Carter", "Carter"})
	if got[1] != "Rubin Carter" {
		t.Fatalf("nil KB should expand unconditionally, got %q", got[1])
	}
}

func TestExpandSurfacesImprovesDisambiguation(t *testing.T) {
	k := expandKB()
	text := "Rubin Carter fought. Carter won the bout."
	raw := []string{"Rubin Carter", "Carter"}
	// Without expansion the prior pulls "Carter" to Jimmy Carter.
	p := NewProblem(k, text, raw, 0)
	out := PriorOnly{}.Disambiguate(p)
	if out.Results[1].Label != "Jimmy Carter" {
		t.Skip("prior no longer misleads; test premise gone")
	}
	p2 := NewProblem(k, text, ExpandSurfaces(k, raw), 0)
	out2 := PriorOnly{}.Disambiguate(p2)
	if out2.Results[1].Label != "Rubin Carter" {
		t.Fatalf("expansion should resolve Carter to Rubin Carter, got %q", out2.Results[1].Label)
	}
}
