package disambig

import (
	"reflect"
	"testing"

	"aida/internal/kb"
	"aida/internal/relatedness"
)

// outputsEqual compares two disambiguation outputs bit-for-bit, including
// the per-candidate score vectors and work stats.
func outputsEqual(a, b *Output) bool {
	return reflect.DeepEqual(a, b)
}

// TestCoherenceEngineMatchesLocal pins the shared-engine coherence path to
// the engine-free per-problem path: same assignments, same scores, same
// Stats.Comparisons, for every coherence measure.
func TestCoherenceEngineMatchesLocal(t *testing.T) {
	k := buildTestKB()
	engine := relatedness.NewScorer(k)
	kinds := []relatedness.Kind{
		relatedness.KindMW, relatedness.KindKWCS, relatedness.KindKPCS,
		relatedness.KindKORE, relatedness.KindKORELSHG, relatedness.KindKORELSHF,
	}
	for _, kind := range kinds {
		m := NewAIDAVariant("t", Config{
			UsePrior: true, PriorTest: true, UseCoherence: true, Measure: kind,
		})
		local := m.Disambiguate(NewProblem(k, exampleText, exampleMentions, 0))

		p := NewProblem(k, exampleText, exampleMentions, 0)
		p.Scorer = engine
		shared := m.Disambiguate(p)
		if !outputsEqual(local, shared) {
			t.Errorf("%v: shared-engine output diverges from local output\nlocal:  %+v\nshared: %+v", kind, local, shared)
		}
		// Warm engine cache must not change anything either.
		p2 := NewProblem(k, exampleText, exampleMentions, 0)
		p2.Scorer = engine
		warm := m.Disambiguate(p2)
		if !outputsEqual(local, warm) {
			t.Errorf("%v: warm-engine output diverges from local output", kind)
		}
	}
}

// TestCoherenceWorkersDeterministic pins the parallel coherence-edge pool
// to the sequential path at several worker counts.
func TestCoherenceWorkersDeterministic(t *testing.T) {
	k := buildTestKB()
	engine := relatedness.NewScorer(k)
	base := Config{UsePrior: true, PriorTest: true, UseCoherence: true, Measure: relatedness.KindKORE, Workers: 1}
	seq := NewAIDAVariant("seq", base).Disambiguate(NewProblem(k, exampleText, exampleMentions, 0))
	for _, workers := range []int{2, 4, 8, 0} {
		cfg := base
		cfg.Workers = workers
		for _, withEngine := range []bool{false, true} {
			p := NewProblem(k, exampleText, exampleMentions, 0)
			if withEngine {
				p.Scorer = engine
			}
			got := NewAIDAVariant("par", cfg).Disambiguate(p)
			if !outputsEqual(seq, got) {
				t.Errorf("workers=%d engine=%v: output diverges from sequential", workers, withEngine)
			}
		}
	}
}

// TestCohScorerSkipsModifiedCandidates checks that enrichment-style feature
// replacement routes a candidate back to per-problem scoring rather than
// the (stale) engine value.
func TestCohScorerSkipsModifiedCandidates(t *testing.T) {
	k := buildTestKB()
	engine := relatedness.NewScorer(k)
	p := NewProblem(k, exampleText, exampleMentions, 0)
	p.Scorer = engine
	// Simulate enrichment: give the first candidate of the first mention a
	// fresh keyphrase slice (same content, different backing array).
	c := &p.Mentions[0].Candidates[0]
	c.Keyphrases = append([]kb.Keyphrase(nil), c.Keyphrases...)
	s := newCohScorer(relatedness.KindKORE, p)
	if id := s.engineID[s.cid(c)]; id != kb.NoEntity {
		t.Fatalf("modified candidate should not be delegable, got engine id %d", id)
	}
	// An untouched candidate of the same problem stays delegable.
	other := &p.Mentions[1].Candidates[0]
	if id := s.engineID[s.cid(other)]; id != other.Entity {
		t.Fatalf("untouched candidate should delegate as %d, got %d", other.Entity, id)
	}
	// Placeholders (out-of-KB) are never delegated.
	ee := &Candidate{Entity: kb.NoEntity, Label: "X_EE"}
	if id := s.engineID[s.cid(ee)]; id != kb.NoEntity {
		t.Fatal("placeholder must not be delegable")
	}
}

// TestComparisonsStableAcrossEngineTemperature: the comparison counter is a
// per-problem quantity (Table 4.4) and must not shrink when the engine has
// already seen the pairs.
func TestComparisonsStableAcrossEngineTemperature(t *testing.T) {
	k := buildTestKB()
	engine := relatedness.NewScorer(k)
	m := NewAIDAVariant("t", Config{UsePrior: true, UseCoherence: true, Measure: relatedness.KindKORE})
	var counts []int
	for i := 0; i < 3; i++ {
		p := NewProblem(k, exampleText, exampleMentions, 0)
		p.Scorer = engine
		counts = append(counts, m.Disambiguate(p).Stats.Comparisons)
	}
	if counts[0] == 0 {
		t.Fatal("expected nonzero comparisons")
	}
	if counts[1] != counts[0] || counts[2] != counts[0] {
		t.Fatalf("comparisons drift across engine temperature: %v", counts)
	}
}
