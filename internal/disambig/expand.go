package disambig

import (
	"strings"

	"aida/internal/kb"
)

// ExpandSurfaces applies the within-document coreference heuristic the AIDA
// system ships with (Sec. 2.4.3 situates it; news-wire convention is to
// introduce "Rubin Carter" once and then write "Carter"): every mention
// that is a single word of a longer mention in the same document is
// expanded to the longer surface, provided the longer surface is known to
// the dictionary. Expansion sharply reduces artificial ambiguity for
// person names.
//
// The input order is preserved; the returned slice has the same length.
func ExpandSurfaces(k kb.Store, surfaces []string) []string {
	out := make([]string, len(surfaces))
	copy(out, surfaces)
	// Collect multi-word surfaces as expansion targets.
	type target struct {
		surface string
		words   map[string]bool
	}
	var targets []target
	for _, s := range surfaces {
		fields := strings.Fields(s)
		if len(fields) < 2 {
			continue
		}
		words := make(map[string]bool, len(fields))
		for _, f := range fields {
			words[strings.ToLower(f)] = true
		}
		targets = append(targets, target{surface: s, words: words})
	}
	for i, s := range out {
		if strings.ContainsRune(s, ' ') {
			continue
		}
		lower := strings.ToLower(s)
		var expansion string
		unique := true
		for _, t := range targets {
			if !t.words[lower] || t.surface == s {
				continue
			}
			if expansion != "" && expansion != t.surface {
				unique = false // ambiguous expansion: leave as is
				break
			}
			expansion = t.surface
		}
		if expansion == "" || !unique {
			continue
		}
		// Only expand when the longer surface resolves through the
		// dictionary (otherwise the expansion would strand the mention).
		if k == nil || k.HasName(kb.NormalizeName(expansion)) {
			out[i] = expansion
		}
	}
	return out
}
