package disambig

import (
	"testing"

	"aida/internal/kb"
	"aida/internal/relatedness"
)

// buildTestKB constructs the dissertation's running example (Sec. 3.1):
// "They performed Kashmir, written by Page and Plant. Page played unusual
// chords on his Gibson." — a coherent music cluster against popular
// geographic confusers.
func buildTestKB() *kb.KB {
	b := kb.NewBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person", "musician")
	larry := b.AddEntity("Larry Page", "tech", "person")
	song := b.AddEntity("Kashmir (song)", "music", "song")
	region := b.AddEntity("Kashmir", "geography", "region")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person", "musician")
	lespaul := b.AddEntity("Gibson Les Paul", "music", "instrument")
	gibsonMO := b.AddEntity("Gibson, Missouri", "geography", "town")
	pageAZ := b.AddEntity("Page, Arizona", "geography", "town")
	himalaya := b.AddEntity("Himalayas", "geography", "mountains")

	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Page", pageAZ, 10)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)
	b.AddName("Gibson", lespaul, 50)
	b.AddName("Gibson", gibsonMO, 50)

	// Dense links inside the music cluster give it MW coherence.
	music := []kb.EntityID{jimmy, song, zep, plant, lespaul}
	for _, a := range music {
		for _, b2 := range music {
			if a != b2 {
				b.AddLink(a, b2)
			}
		}
	}
	// Sparse geography links.
	b.AddLink(region, himalaya)
	b.AddLink(himalaya, region)

	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "Led Zeppelin")
	b.AddKeyphrase(jimmy, "unusual chords")
	b.AddKeyphrase(jimmy, "Gibson guitar")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(larry, "Stanford University")
	b.AddKeyphrase(larry, "internet company")
	b.AddKeyphrase(song, "Led Zeppelin")
	b.AddKeyphrase(song, "performed live")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(region, "Himalaya mountains")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(region, "India Pakistan border")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(zep, "hard rock")
	b.AddKeyphrase(plant, "English rock singer")
	b.AddKeyphrase(plant, "Led Zeppelin")
	b.AddKeyphrase(lespaul, "electric guitar")
	b.AddKeyphrase(lespaul, "Gibson guitar")
	b.AddKeyphrase(lespaul, "rock guitarist")
	b.AddKeyphrase(gibsonMO, "Missouri town")
	b.AddKeyphrase(gibsonMO, "rural community")
	b.AddKeyphrase(pageAZ, "Arizona city")
	b.AddKeyphrase(pageAZ, "Colorado river")
	b.AddKeyphrase(himalaya, "Himalaya mountains")
	return b.Build()
}

const exampleText = "They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson."

var exampleMentions = []string{"Kashmir", "Page", "Plant", "Gibson"}

func exampleProblem(k *kb.KB) *Problem {
	return NewProblem(k, exampleText, exampleMentions, 0)
}

func labelOf(t *testing.T, k *kb.KB, out *Output, mention int) string {
	t.Helper()
	r := out.Results[mention]
	if r.CandidateIndex < 0 {
		return ""
	}
	return r.Label
}

func TestPriorOnlyPicksPopular(t *testing.T) {
	k := buildTestKB()
	out := PriorOnly{}.Disambiguate(exampleProblem(k))
	if got := labelOf(t, k, out, 0); got != "Kashmir" {
		t.Errorf("prior should pick the region for Kashmir, got %q", got)
	}
	if got := labelOf(t, k, out, 1); got != "Larry Page" {
		t.Errorf("prior should pick Larry Page, got %q", got)
	}
}

func TestSimOnlyUsesContext(t *testing.T) {
	k := buildTestKB()
	method := NewAIDAVariant("sim-k", Config{})
	out := method.Disambiguate(exampleProblem(k))
	if got := labelOf(t, k, out, 1); got != "Jimmy Page" {
		t.Errorf("sim-k should pick Jimmy Page from context, got %q", got)
	}
	if got := labelOf(t, k, out, 3); got != "Gibson Les Paul" {
		t.Errorf("sim-k should pick the guitar, got %q", got)
	}
}

func TestAIDAFullResolvesCoherentCluster(t *testing.T) {
	k := buildTestKB()
	out := NewAIDA().Disambiguate(exampleProblem(k))
	want := []string{"Kashmir (song)", "Jimmy Page", "Robert Plant", "Gibson Les Paul"}
	for i, w := range want {
		if got := labelOf(t, k, out, i); got != w {
			t.Errorf("mention %d (%s): got %q want %q", i, exampleMentions[i], got, w)
		}
	}
	if out.Stats.Comparisons == 0 {
		t.Error("coherence method should perform relatedness comparisons")
	}
	if out.Stats.GraphEntities == 0 {
		t.Error("graph should contain entities")
	}
}

func TestAIDAPriorTestKeepsStrongPrior(t *testing.T) {
	k := buildTestKB()
	// A context-free doc: with the prior robustness test, Kashmir's 90%
	// prior passes ρ and the region must win in the absence of any other
	// evidence.
	p := NewProblem(k, "Kashmir was mentioned.", []string{"Kashmir"}, 0)
	out := NewAIDAVariant("r-prior sim-k", Config{UsePrior: true, PriorTest: true}).Disambiguate(p)
	if got := labelOf(t, k, out, 0); got != "Kashmir" {
		t.Errorf("strong prior should win without context, got %q", got)
	}
}

func TestAIDAPriorDisabledBelowThreshold(t *testing.T) {
	k := buildTestKB()
	// "Page" has max prior 0.6 < ρ: the prior must be disregarded and
	// context-poor input falls back to the first candidate by similarity.
	p := NewProblem(k, "Page spoke about the search engine at Stanford University.", []string{"Page"}, 0)
	out := NewAIDAVariant("r-prior sim-k", Config{UsePrior: true, PriorTest: true}).Disambiguate(p)
	if got := labelOf(t, k, out, 0); got != "Larry Page" {
		t.Errorf("similarity should pick Larry Page in tech context, got %q", got)
	}
}

func TestAIDAEmptyCandidates(t *testing.T) {
	k := buildTestKB()
	p := NewProblem(k, "Snowden revealed the program.", []string{"Snowden"}, 0)
	out := NewAIDA().Disambiguate(p)
	r := out.Results[0]
	if r.CandidateIndex != -1 || r.Entity != kb.NoEntity {
		t.Errorf("unknown mention must map to OOE, got %+v", r)
	}
}

func TestAIDAScoresAlignWithCandidates(t *testing.T) {
	k := buildTestKB()
	p := exampleProblem(k)
	out := NewAIDA().Disambiguate(p)
	for i, r := range out.Results {
		if len(r.Scores) != len(p.Mentions[i].Candidates) {
			t.Fatalf("mention %d: %d scores for %d candidates", i, len(r.Scores), len(p.Mentions[i].Candidates))
		}
	}
}

func TestAIDADeterministic(t *testing.T) {
	k := buildTestKB()
	a1 := NewAIDA().Disambiguate(exampleProblem(k))
	a2 := NewAIDA().Disambiguate(exampleProblem(k))
	for i := range a1.Results {
		if a1.Results[i].Entity != a2.Results[i].Entity {
			t.Fatal("AIDA must be deterministic")
		}
	}
}

func TestAIDAWithKORECoherence(t *testing.T) {
	k := buildTestKB()
	cfg := Config{UsePrior: true, PriorTest: true, UseCoherence: true, CoherenceTest: true,
		Measure: relatedness.KindKORE}
	out := NewAIDAVariant("aida-kore", cfg).Disambiguate(exampleProblem(k))
	if got := labelOf(t, k, out, 1); got != "Jimmy Page" {
		t.Errorf("KORE coherence should still pick Jimmy Page, got %q", got)
	}
}

func TestAIDAWithLSHCoherence(t *testing.T) {
	k := buildTestKB()
	for _, kind := range []relatedness.Kind{relatedness.KindKORELSHG, relatedness.KindKORELSHF} {
		cfg := Config{UsePrior: true, PriorTest: true, UseCoherence: true, Measure: kind}
		out := NewAIDAVariant("aida-lsh", cfg).Disambiguate(exampleProblem(k))
		for _, r := range out.Results {
			if r.CandidateIndex < 0 {
				t.Errorf("%v: mention %q unassigned", kind, r.Surface)
			}
		}
	}
}

func TestLSHReducesComparisons(t *testing.T) {
	k := buildTestKB()
	exact := NewAIDAVariant("exact", Config{UseCoherence: true, Measure: relatedness.KindKORE})
	fast := NewAIDAVariant("fast", Config{UseCoherence: true, Measure: relatedness.KindKORELSHF})
	ce := exact.Disambiguate(exampleProblem(k)).Stats.Comparisons
	cf := fast.Disambiguate(exampleProblem(k)).Stats.Comparisons
	if cf > ce {
		t.Errorf("LSH-F should not do more comparisons: exact=%d lsh=%d", ce, cf)
	}
}

func TestEEPlaceholderCandidateCanWin(t *testing.T) {
	k := buildTestKB()
	p := NewProblem(k, "Kashmir is a disputed territory in the Himalaya mountains between India and Pakistan.",
		[]string{"Kashmir"}, 0)
	// Inject a placeholder whose keyphrases match nothing: the region must
	// still win.
	ee := Candidate{
		Entity:     kb.NoEntity,
		Label:      "Kashmir_EE",
		Keyphrases: []kb.Keyphrase{{Phrase: "new rock single", Words: []string{"new", "rock", "single"}, MI: 0.5}},
	}
	p.Mentions[0].Candidates = append(p.Mentions[0].Candidates, ee)
	out := NewAIDAVariant("sim-k", Config{}).Disambiguate(p)
	if got := out.Results[0].Label; got != "Kashmir" {
		t.Errorf("region should win on matching context, got %q", got)
	}

	// Now a document that matches the placeholder's model best.
	p2 := NewProblem(k, "The new rock single Kashmir debuted this week.", []string{"Kashmir"}, 0)
	ee2 := ee
	ee2.Keyphrases = []kb.Keyphrase{
		{Phrase: "rock single", Words: []string{"rock", "single"}, MI: 0.5},
		{Phrase: "debuted this week", Words: []string{"debuted", "week"}, MI: 0.5},
	}
	ee2.KeywordNPMI = map[string]float64{"rock": 0.9, "single": 0.9, "debuted": 0.9, "week": 0.9}
	p2.Mentions[0].Candidates = append(p2.Mentions[0].Candidates, ee2)
	out2 := NewAIDAVariant("sim-k", Config{}).Disambiguate(p2)
	if got := out2.Results[0].Label; got != "Kashmir_EE" {
		t.Errorf("placeholder should win on its own evidence, got %q", got)
	}
}

func TestBaselinesProduceValidOutput(t *testing.T) {
	k := buildTestKB()
	p := exampleProblem(k)
	for _, m := range Methods() {
		out := m.Disambiguate(p)
		if len(out.Results) != len(p.Mentions) {
			t.Fatalf("%s: %d results for %d mentions", m.Name(), len(out.Results), len(p.Mentions))
		}
		for i, r := range out.Results {
			if r.MentionIndex != i {
				t.Errorf("%s: result %d has index %d", m.Name(), i, r.MentionIndex)
			}
			if r.CandidateIndex >= len(p.Mentions[i].Candidates) {
				t.Errorf("%s: invalid candidate index", m.Name())
			}
		}
	}
}

func TestKulkarniCIUsesCoherence(t *testing.T) {
	k := buildTestKB()
	ci := &Kulkarni{UsePrior: true, UseCoherence: true}
	out := ci.Disambiguate(exampleProblem(k))
	if out.Stats.Comparisons == 0 {
		t.Error("Kul CI should compute relatedness")
	}
	if got := out.Results[2].Label; got != "Robert Plant" {
		t.Errorf("unambiguous mention wrong: %q", got)
	}
}

func TestMethodNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range Methods() {
		if m.Name() == "" {
			t.Fatal("empty method name")
		}
		if names[m.Name()] {
			t.Fatalf("duplicate method name %q", m.Name())
		}
		names[m.Name()] = true
	}
	if (&Kulkarni{UsePrior: true, UseCoherence: true}).Name() != "Kul CI" {
		t.Error("Kul CI name wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	k := buildTestKB()
	p := exampleProblem(k)
	q := p.Clone()
	q.Mentions = q.Mentions[:1]
	q.Mentions[0].Candidates = q.Mentions[0].Candidates[:1]
	if len(p.Mentions) != 4 {
		t.Fatal("clone mutation leaked into original mentions")
	}
	if len(p.Mentions[0].Candidates) != 2 {
		t.Fatal("clone mutation leaked into original candidates")
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	k := buildTestKB()
	p := NewProblem(k, exampleText, []string{"Page"}, 2)
	if len(p.Mentions[0].Candidates) != 2 {
		t.Fatalf("cap ignored: %d candidates", len(p.Mentions[0].Candidates))
	}
	// Capping keeps the highest-prior candidates.
	if p.Mentions[0].Candidates[0].Label != "Larry Page" {
		t.Errorf("first candidate should be most popular")
	}
}

func BenchmarkAIDAFull(b *testing.B) {
	k := buildTestKB()
	p := exampleProblem(k)
	m := NewAIDA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Disambiguate(p)
	}
}

func BenchmarkSimScores(b *testing.B) {
	k := buildTestKB()
	p := exampleProblem(k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		simScores(p)
	}
}
