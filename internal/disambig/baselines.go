package disambig

import (
	"math"
	"math/rand"
	"sort"

	"aida/internal/relatedness"
)

// PriorOnly is the popularity-prior baseline (Sec. 3.1): each mention maps
// to its most popular candidate.
type PriorOnly struct{}

// Name implements Method.
func (PriorOnly) Name() string { return "prior" }

// Disambiguate implements Method.
func (PriorOnly) Disambiguate(p *Problem) *Output {
	out := &Output{Results: make([]Result, len(p.Mentions))}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := priorVector(m)
		if p.ContextModel != nil {
			p.ContextModel.Blend(p, i, scores)
		}
		best := argmax(scores)
		score := 0.0
		if best >= 0 {
			score = scores[best]
		}
		out.Results[i] = pickResult(i, m, best, score, scores)
	}
	return out
}

// contextCosine scores candidates by the cosine similarity between the
// document's bag of words and the entity's keyphrase-word bag — the
// token-level context similarity family used by Kulkarni et al. and
// Cucerzan (no partial phrase matching).
func contextCosine(p *Problem, c *Candidate) float64 {
	docVec := map[string]float64{}
	var docWords []string
	for _, w := range p.ContextWords {
		if docVec[w] == 0 {
			docWords = append(docWords, w)
		}
		docVec[w]++
	}
	sort.Strings(docWords) // deterministic summation order
	var dot, entNorm, docNorm float64
	seen := map[string]bool{}
	for _, kp := range c.Keyphrases {
		for _, w := range kp.Words {
			if seen[w] {
				continue
			}
			seen[w] = true
			wgt := p.wordIDF(w)
			entNorm += wgt * wgt
			if tf, ok := docVec[w]; ok {
				dot += wgt * tf * p.wordIDF(w)
			}
		}
	}
	for _, w := range docWords {
		v := docVec[w] * p.wordIDF(w)
		docNorm += v * v
	}
	if entNorm == 0 || docNorm == 0 {
		return 0
	}
	return dot / (math.Sqrt(entNorm) * math.Sqrt(docNorm))
}

// Cucerzan re-implements the disambiguation of Cucerzan [Cuc07]
// (Sec. 2.2.2): mentions are resolved one by one against an expanded
// document context that includes the keyphrases of every candidate of every
// mention — approximating joint disambiguation without performing it.
type Cucerzan struct{}

// Name implements Method.
func (Cucerzan) Name() string { return "Cuc" }

// Disambiguate implements Method.
func (Cucerzan) Disambiguate(p *Problem) *Output {
	// Expanded context: document words plus all candidate keyphrase words
	// (the category/context expansion of the original method).
	expanded := append([]string(nil), p.ContextWords...)
	wordSeen := map[string]bool{}
	for i := range p.Mentions {
		for j := range p.Mentions[i].Candidates {
			for _, kp := range p.Mentions[i].Candidates[j].Keyphrases {
				for _, w := range kp.Words {
					if !wordSeen[w] {
						wordSeen[w] = true
						expanded = append(expanded, w)
					}
				}
			}
		}
	}
	q := &Problem{ContextWords: expanded, WordIDF: p.WordIDF, TotalEntities: p.TotalEntities}
	out := &Output{Results: make([]Result, len(p.Mentions))}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := make([]float64, len(m.Candidates))
		for j := range m.Candidates {
			scores[j] = contextCosine(q, &m.Candidates[j])
		}
		best := argmax(scores)
		score := 0.0
		if best >= 0 {
			score = scores[best]
		}
		out.Results[i] = pickResult(i, m, best, score, scores)
	}
	return out
}

// Kulkarni re-implements the collective-inference method of Kulkarni et al.
// [KSRC09] in its three configurations of Table 3.2: the learned context
// similarity alone (Kul s), combined with the prior (Kul sp), and with
// pairwise MW coherence solved by hill climbing (Kul CI) — the relaxation
// heuristic the original work falls back to.
type Kulkarni struct {
	UsePrior     bool
	UseCoherence bool
	// Iters is the hill-climbing budget for the CI variant (default 400).
	Iters int
	Seed  int64
}

// Name implements Method.
func (k *Kulkarni) Name() string {
	switch {
	case k.UseCoherence:
		return "Kul CI"
	case k.UsePrior:
		return "Kul sp"
	default:
		return "Kul s"
	}
}

func (k *Kulkarni) iters() int {
	if k.Iters <= 0 {
		return 400
	}
	return k.Iters
}

// localScores computes the per-candidate scores of the sp stage.
func (k *Kulkarni) localScores(p *Problem) [][]float64 {
	out := make([][]float64, len(p.Mentions))
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := make([]float64, len(m.Candidates))
		for j := range m.Candidates {
			s := contextCosine(p, &m.Candidates[j])
			if k.UsePrior {
				s = 0.5*s + 0.5*m.Candidates[j].Prior
			}
			scores[j] = s
		}
		out[i] = scores
	}
	return out
}

// Disambiguate implements Method.
func (k *Kulkarni) Disambiguate(p *Problem) *Output {
	local := k.localScores(p)
	out := &Output{Results: make([]Result, len(p.Mentions))}
	if !k.UseCoherence {
		for i := range p.Mentions {
			m := &p.Mentions[i]
			best := argmax(local[i])
			score := 0.0
			if best >= 0 {
				score = local[i][best]
			}
			out.Results[i] = pickResult(i, m, best, score, local[i])
		}
		return out
	}

	scorer := newCohScorer(relatedness.KindMW, p)
	assign := make([]int, len(p.Mentions))
	for i := range p.Mentions {
		assign[i] = argmax(local[i])
	}
	objective := func(a []int) float64 {
		total := 0.0
		for i, c := range a {
			if c < 0 {
				continue
			}
			total += local[i][c]
			for j := i + 1; j < len(a); j++ {
				if a[j] < 0 {
					continue
				}
				total += scorer.score(&p.Mentions[i].Candidates[c], &p.Mentions[j].Candidates[a[j]])
			}
		}
		return total
	}
	rng := rand.New(rand.NewSource(k.Seed + 11))
	cur := objective(assign)
	for it := 0; it < k.iters(); it++ {
		i := rng.Intn(len(p.Mentions))
		if len(p.Mentions[i].Candidates) < 2 {
			continue
		}
		old := assign[i]
		assign[i] = rng.Intn(len(p.Mentions[i].Candidates))
		if next := objective(assign); next > cur {
			cur = next
		} else {
			assign[i] = old
		}
	}
	out.Stats.Comparisons = scorer.comparisons
	for i := range p.Mentions {
		m := &p.Mentions[i]
		score := 0.0
		if assign[i] >= 0 {
			score = local[i][assign[i]]
		}
		out.Results[i] = pickResult(i, m, assign[i], score, local[i])
	}
	return out
}

// TagMe re-implements the light-weight linker of Ferragina & Scaiella
// [FS12]: each candidate is scored by the prior-weighted average
// relatedness vote of all other mentions' candidates; no context words are
// used.
type TagMe struct{}

// Name implements Method.
func (TagMe) Name() string { return "TagMe" }

// Disambiguate implements Method.
func (t TagMe) Disambiguate(p *Problem) *Output {
	scorer := newCohScorer(relatedness.KindMW, p)
	out := &Output{Results: make([]Result, len(p.Mentions))}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := make([]float64, len(m.Candidates))
		for j := range m.Candidates {
			c := &m.Candidates[j]
			var vote float64
			var votes int
			for i2 := range p.Mentions {
				if i2 == i {
					continue
				}
				best := 0.0
				for j2 := range p.Mentions[i2].Candidates {
					c2 := &p.Mentions[i2].Candidates[j2]
					v := scorer.score(c, c2) * c2.Prior
					if v > best {
						best = v
					}
				}
				vote += best
				votes++
			}
			avg := 0.0
			if votes > 0 {
				avg = vote / float64(votes)
			}
			scores[j] = 0.5*c.Prior + 0.5*avg
		}
		best := argmax(scores)
		score := 0.0
		if best >= 0 {
			score = scores[best]
		}
		out.Results[i] = pickResult(i, m, best, score, scores)
	}
	out.Stats.Comparisons = scorer.comparisons
	return out
}

// Wikifier re-implements the Illinois Wikifier (Ratinov et al. [RRDA11])
// baseline used in Chapter 5: per-mention independent ranking by prior and
// context similarity, refined by relatedness to the other mentions'
// top-prior candidates ("all-candidates relatedness"), with a linker score
// suitable for thresholding out-of-KB mentions.
type Wikifier struct{}

// Name implements Method.
func (Wikifier) Name() string { return "IW" }

// Disambiguate implements Method.
func (Wikifier) Disambiguate(p *Problem) *Output {
	scorer := newCohScorer(relatedness.KindMW, p)
	// Stage 1: local disambiguation by prior + context similarity.
	sims := simScores(p)
	tops := make([]*Candidate, 0, len(p.Mentions))
	for i := range p.Mentions {
		m := &p.Mentions[i]
		if len(m.Candidates) == 0 {
			continue
		}
		local := make([]float64, len(m.Candidates))
		norm := normalizeSum(sims[i])
		for j := range m.Candidates {
			local[j] = 0.5*m.Candidates[j].Prior + 0.5*norm[j]
		}
		tops = append(tops, &m.Candidates[argmax(local)])
	}
	// Stage 2: re-rank with relatedness to the other mentions' top picks.
	out := &Output{Results: make([]Result, len(p.Mentions))}
	for i := range p.Mentions {
		m := &p.Mentions[i]
		scores := make([]float64, len(m.Candidates))
		norm := normalizeSum(sims[i])
		for j := range m.Candidates {
			c := &m.Candidates[j]
			var coh float64
			for _, t := range tops {
				if t.Label == c.Label {
					continue
				}
				coh += scorer.score(c, t)
			}
			if len(tops) > 1 {
				coh /= float64(len(tops) - 1)
			}
			scores[j] = 0.4*c.Prior + 0.3*norm[j] + 0.3*coh
		}
		best := argmax(scores)
		score := 0.0
		if best >= 0 {
			score = scores[best]
		}
		out.Results[i] = pickResult(i, m, best, score, scores)
	}
	out.Stats.Comparisons = scorer.comparisons
	return out
}

// Methods returns the full method suite of Table 3.2 plus the Chapter 5
// baselines, in presentation order.
func Methods() []Method {
	return []Method{
		NewAIDAVariant("sim-k", Config{}),
		NewAIDAVariant("prior sim-k", Config{UsePrior: true}),
		NewAIDAVariant("r-prior sim-k", Config{UsePrior: true, PriorTest: true}),
		NewAIDAVariant("r-prior sim-k coh", Config{UsePrior: true, PriorTest: true, UseCoherence: true, Measure: relatedness.KindMW}),
		NewAIDAVariant("r-prior sim-k r-coh", Config{UsePrior: true, PriorTest: true, UseCoherence: true, CoherenceTest: true, Measure: relatedness.KindMW}),
		PriorOnly{},
		Cucerzan{},
		&Kulkarni{},
		&Kulkarni{UsePrior: true},
		&Kulkarni{UsePrior: true, UseCoherence: true},
	}
}

// SortResultsByScore orders results descending by score (used by the
// confidence-ranked evaluation of Sec. 5.7.1).
func SortResultsByScore(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })
}
