package eval

import (
	"math"
	"sort"
)

// Spearman computes the Spearman rank correlation coefficient between two
// equal-length score vectors, with average ranks for ties — the measure of
// Table 4.2 comparing automatic relatedness rankings with the crowd gold.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

// SpearmanFromOrder correlates a gold ordering (indices, best first) with a
// score vector (higher = ranked earlier).
func SpearmanFromOrder(goldOrder []int, scores []float64) float64 {
	n := len(goldOrder)
	if n != len(scores) || n < 2 {
		return 0
	}
	goldScore := make([]float64, n)
	for rank, idx := range goldOrder {
		goldScore[idx] = float64(n - rank) // earlier = higher
	}
	return Spearman(goldScore, scores)
}

// ranks assigns average ranks to values (1 = smallest).
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// PairedTTest computes the paired two-tailed t-test between two equal-
// length samples (e.g. per-document accuracies of two methods). It returns
// the t statistic and the p-value. Degenerate inputs yield p = 1.
func PairedTTest(a, b []float64) (t, p float64) {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0, 1
	}
	diffs := make([]float64, n)
	var mean float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i]
	}
	mean /= float64(n)
	var varSum float64
	for _, d := range diffs {
		varSum += (d - mean) * (d - mean)
	}
	if varSum == 0 {
		if mean == 0 {
			return 0, 1
		}
		return math.Inf(sign(mean)), 0
	}
	sd := math.Sqrt(varSum / float64(n-1))
	t = mean / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p = studentTwoTailed(t, df)
	return t, p
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTwoTailed computes the two-tailed p-value of Student's t
// distribution via the regularized incomplete beta function.
func studentTwoTailed(t, df float64) float64 {
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Stddev returns the sample standard deviation.
func Stddev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// Quantile returns the q-quantile (0..1) of the values (nearest rank).
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
