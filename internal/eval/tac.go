package eval

import "aida/internal/kb"

// TAC-KBP-style evaluation (Sec. 2.2.4): one query mention per document,
// judged for linking accuracy overall and separately for in-KB and NIL
// (out-of-KB) queries — the B-cubed-free subset of the TAC entity-linking
// metrics that applies to single-mention queries.

// TACQuery is one entity-linking query with its gold answer and prediction.
type TACQuery struct {
	Gold kb.EntityID // kb.NoEntity for NIL queries
	Pred kb.EntityID
}

// TACMetrics aggregates TAC entity-linking accuracy.
type TACMetrics struct {
	// Overall is the fraction of correctly answered queries.
	Overall float64
	// InKB is accuracy over queries whose gold entity is in the KB.
	InKB float64
	// NIL is accuracy over gold-NIL queries (predicting NoEntity).
	NIL float64
	// Queries / InKBQueries / NILQueries are the denominators.
	Queries, InKBQueries, NILQueries int
}

// TACAccuracy scores a query set.
func TACAccuracy(queries []TACQuery) TACMetrics {
	var m TACMetrics
	var correct, inKBCorrect, nilCorrect int
	for _, q := range queries {
		m.Queries++
		ok := q.Gold == q.Pred
		if ok {
			correct++
		}
		if q.Gold == kb.NoEntity {
			m.NILQueries++
			if ok {
				nilCorrect++
			}
		} else {
			m.InKBQueries++
			if ok {
				inKBCorrect++
			}
		}
	}
	if m.Queries > 0 {
		m.Overall = float64(correct) / float64(m.Queries)
	}
	if m.InKBQueries > 0 {
		m.InKB = float64(inKBCorrect) / float64(m.InKBQueries)
	}
	if m.NILQueries > 0 {
		m.NIL = float64(nilCorrect) / float64(m.NILQueries)
	}
	return m
}

// NILClusters evaluates TAC-style NIL clustering: gold and predicted
// cluster labels for NIL queries (e.g. the OOE identity vs the placeholder
// label). It returns pairwise precision/recall/F1 over same-cluster query
// pairs, the standard clustering-agreement measure.
func NILClusters(gold, pred []string) (precision, recall, f1 float64) {
	if len(gold) != len(pred) || len(gold) < 2 {
		return 0, 0, 0
	}
	var tp, fp, fn int
	for i := 0; i < len(gold); i++ {
		for j := i + 1; j < len(gold); j++ {
			sameGold := gold[i] == gold[j]
			samePred := pred[i] == pred[j]
			switch {
			case sameGold && samePred:
				tp++
			case !sameGold && samePred:
				fp++
			case sameGold && !samePred:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
