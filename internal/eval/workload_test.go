package eval_test

import (
	"context"
	"testing"

	"aida/internal/eval"
	"aida/internal/kbtest"
)

// The hard-ambiguity gates. Both corpora are deterministic functions of
// the golden KB, so the three measured accuracies are exact and stable;
// the assertions below pin generous floors under the measured values
// (short: base=0.000 ctx=0.865 dom=0.892 over 37 docs; hard: base=0.021
// ctx=0.894 dom=0.936 over 47 docs) so the gate survives small KB-world
// adjustments while still failing loudly if the context prior or domain
// layers stop working. The ISSUE acceptance bar — context-prior strictly
// beats the coherence-only baseline on the short-text corpus — is
// asserted directly, not via floors.

func runWorkload(t *testing.T, corpus string, docs []eval.HardDoc) eval.HardWorkloadReport {
	t.Helper()
	store := kbtest.GoldenKB()
	sys := kbtest.NewSystem(store)
	domain := corpus + "-gold"
	if err := sys.RegisterDomain(kbtest.DomainDictionaryFor(store, domain, docs)); err != nil {
		t.Fatalf("RegisterDomain(%s): %v", domain, err)
	}
	rep, err := kbtest.RunHardWorkload(context.Background(), sys, corpus, docs, domain)
	if err != nil {
		t.Fatalf("RunHardWorkload(%s): %v", corpus, err)
	}
	t.Logf("%s: docs=%d mentions=%d baseline=%.4f context=%.4f domain=%.4f",
		corpus, rep.Docs, rep.Mentions,
		rep.Baseline.Accuracy, rep.ContextPrior.Accuracy, rep.DomainLayer.Accuracy)
	return rep
}

func checkRuns(t *testing.T, rep eval.HardWorkloadReport, minDocs int, maxBase, minCtx, minDom float64) {
	t.Helper()
	if rep.Docs < minDocs {
		t.Fatalf("%s corpus too small: %d docs, want >= %d", rep.Corpus, rep.Docs, minDocs)
	}
	if rep.Mentions != rep.Docs {
		t.Errorf("%s: mentions = %d, want one per doc (%d)", rep.Corpus, rep.Mentions, rep.Docs)
	}
	for _, run := range []eval.WorkloadRun{rep.Baseline, rep.ContextPrior, rep.DomainLayer} {
		if run.Total != rep.Mentions {
			t.Errorf("%s %s: scored %d mentions, want %d", rep.Corpus, run.Name, run.Total, rep.Mentions)
		}
	}
	// The acceptance bar: request context must strictly improve on the
	// coherence-only baseline.
	if rep.ContextPrior.Accuracy <= rep.Baseline.Accuracy {
		t.Errorf("%s: context-prior accuracy %.4f does not beat baseline %.4f",
			rep.Corpus, rep.ContextPrior.Accuracy, rep.Baseline.Accuracy)
	}
	// The corpora are prior-hostile by construction: a baseline scoring
	// well means generation stopped producing hard cases.
	if rep.Baseline.Accuracy > maxBase {
		t.Errorf("%s: baseline accuracy %.4f > %.2f — corpus is no longer prior-hostile",
			rep.Corpus, rep.Baseline.Accuracy, maxBase)
	}
	if rep.ContextPrior.Accuracy < minCtx {
		t.Errorf("%s: context-prior accuracy %.4f below floor %.2f",
			rep.Corpus, rep.ContextPrior.Accuracy, minCtx)
	}
	if rep.DomainLayer.Accuracy < minDom {
		t.Errorf("%s: domain-layer accuracy %.4f below floor %.2f",
			rep.Corpus, rep.DomainLayer.Accuracy, minDom)
	}
}

func TestShortTextWorkloadGate(t *testing.T) {
	docs := kbtest.ShortTextCorpus(kbtest.GoldenKB(), 0)
	rep := runWorkload(t, "short", docs)
	checkRuns(t, rep, 20, 0.20, 0.80, 0.85)
}

func TestHardAmbiguityWorkloadGate(t *testing.T) {
	docs := kbtest.HardAmbiguityCorpus(kbtest.GoldenKB(), 0)
	rep := runWorkload(t, "hard", docs)
	checkRuns(t, rep, 20, 0.20, 0.85, 0.90)
}

// TestWorkloadSkipsDomainWhenUnnamed pins the domain == "" contract: the
// domain-layer run is skipped and left zero-valued.
func TestWorkloadSkipsDomainWhenUnnamed(t *testing.T) {
	store := kbtest.GoldenKB()
	sys := kbtest.NewSystem(store)
	docs := kbtest.ShortTextCorpus(store, 3)
	rep, err := kbtest.RunHardWorkload(context.Background(), sys, "short", docs, "")
	if err != nil {
		t.Fatalf("RunHardWorkload: %v", err)
	}
	if rep.DomainLayer != (eval.WorkloadRun{}) {
		t.Errorf("domain-layer run not skipped: %+v", rep.DomainLayer)
	}
	if rep.Baseline.Total != 3 {
		t.Errorf("baseline total = %d, want 3", rep.Baseline.Total)
	}
}

// TestWorkloadPenalizesMisalignedRecognition pins the scoring rule: a
// document whose expected surfaces disagree with recognition contributes
// its mentions to Total but never to Correct.
func TestWorkloadPenalizesMisalignedRecognition(t *testing.T) {
	store := kbtest.GoldenKB()
	sys := kbtest.NewSystem(store)
	docs := kbtest.ShortTextCorpus(store, 1)
	docs[0].Surfaces = []string{"No Such Surface"}
	rep, err := kbtest.RunHardWorkload(context.Background(), sys, "short", docs, "")
	if err != nil {
		t.Fatalf("RunHardWorkload: %v", err)
	}
	if rep.Baseline.Total != 1 || rep.Baseline.Correct != 0 {
		t.Errorf("baseline = %+v, want Total=1 Correct=0", rep.Baseline)
	}
	if rep.ContextPrior.Correct != 0 {
		t.Errorf("context-prior = %+v, want Correct=0", rep.ContextPrior)
	}
}

// TestDomainDictionaryForTargetsGold sanity-checks the generated
// dictionary: one row per distinct surface, each resolving to the doc's
// gold entity with enough mass to dominate the family.
func TestDomainDictionaryForTargetsGold(t *testing.T) {
	store := kbtest.GoldenKB()
	docs := kbtest.ShortTextCorpus(store, 5)
	dict := kbtest.DomainDictionaryFor(store, "gate", docs)
	if dict.Name != "gate" {
		t.Fatalf("dict name = %q", dict.Name)
	}
	if len(dict.Rows) != len(docs) {
		t.Fatalf("rows = %d, want %d (one per distinct surface)", len(dict.Rows), len(docs))
	}
	for i, row := range dict.Rows {
		want := store.Entity(docs[i].Gold[0]).Name
		if row.Entity != want {
			t.Errorf("row %d: entity %q, want gold %q", i, row.Entity, want)
		}
		total := 0
		for _, c := range store.Candidates(row.Surface) {
			total += c.Count
		}
		if row.Count <= 4*total {
			t.Errorf("row %d: count %d does not dominate family mass %d", i, row.Count, total)
		}
	}
}
