package eval

import (
	"math"
	"testing"
	"testing/quick"

	"aida/internal/kb"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMicroMacroAccuracy(t *testing.T) {
	docs := [][]Label{
		{{Gold: 1, Pred: 1}, {Gold: 2, Pred: 3}},           // 1/2
		{{Gold: 4, Pred: 4}, {Gold: 5, Pred: 5}},           // 2/2
		{{Gold: kb.NoEntity, Pred: 9}, {Gold: 6, Pred: 6}}, // 1/1 in InKBOnly
	}
	if got := MicroAccuracy(docs, InKBOnly); !almost(got, 4.0/5.0) {
		t.Errorf("micro = %v, want 0.8", got)
	}
	if got := MacroAccuracy(docs, InKBOnly); !almost(got, (0.5+1+1)/3) {
		t.Errorf("macro = %v", got)
	}
}

func TestAccuracyWithEE(t *testing.T) {
	docs := [][]Label{{
		{Gold: kb.NoEntity, Pred: kb.NoEntity}, // correct EE
		{Gold: kb.NoEntity, Pred: 3},           // missed EE
		{Gold: 1, Pred: 1},
	}}
	if got := MicroAccuracy(docs, WithEE); !almost(got, 2.0/3.0) {
		t.Errorf("micro with EE = %v, want 2/3", got)
	}
	if got := MicroAccuracy(docs, InKBOnly); !almost(got, 1) {
		t.Errorf("micro in-KB = %v, want 1", got)
	}
}

func TestEmptyDocsSkippedInMacro(t *testing.T) {
	docs := [][]Label{
		{{Gold: kb.NoEntity, Pred: kb.NoEntity}}, // no in-KB mentions
		{{Gold: 1, Pred: 1}},
	}
	if got := MacroAccuracy(docs, InKBOnly); !almost(got, 1) {
		t.Errorf("macro should skip empty docs, got %v", got)
	}
}

func TestEEQuality(t *testing.T) {
	docs := [][]Label{{
		{Gold: kb.NoEntity, Pred: kb.NoEntity}, // tp
		{Gold: kb.NoEntity, Pred: 1},           // fn
		{Gold: 2, Pred: kb.NoEntity},           // fp
		{Gold: 3, Pred: 3},
	}}
	m := EEQuality(docs)
	if !almost(m.Precision, 0.5) {
		t.Errorf("precision = %v, want 0.5", m.Precision)
	}
	if !almost(m.Recall, 0.5) {
		t.Errorf("recall = %v, want 0.5", m.Recall)
	}
	if !almost(m.F1, 0.5) {
		t.Errorf("f1 = %v, want 0.5", m.F1)
	}
}

func TestEEQualityNoPredictions(t *testing.T) {
	docs := [][]Label{{{Gold: kb.NoEntity, Pred: 1}}}
	m := EEQuality(docs)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("all-zero expected, got %+v", m)
	}
}

func TestMAPPerfectRanking(t *testing.T) {
	items := []Ranked{
		{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false},
	}
	// Prefix precisions 1, 1, 2/3, 1/2 → interpolated mean.
	want := (1.0 + 1.0 + 2.0/3.0 + 0.5) / 4
	if got := MAP(items); !almost(got, want) {
		t.Errorf("perfect ranking MAP = %v, want %v", got, want)
	}
}

func TestMAPWorstRanking(t *testing.T) {
	items := []Ranked{
		{0.9, false}, {0.8, false}, {0.2, true}, {0.1, true},
	}
	good := MAP([]Ranked{{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}})
	bad := MAP(items)
	if bad >= good {
		t.Errorf("bad ranking %v should be below good ranking %v", bad, good)
	}
}

func TestMAPBounds(t *testing.T) {
	f := func(confs []float64, correct []bool) bool {
		n := len(confs)
		if len(correct) < n {
			n = len(correct)
		}
		items := make([]Ranked, n)
		for i := 0; i < n; i++ {
			items[i] = Ranked{confs[i], correct[i]}
		}
		m := MAP(items)
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionAtConfidence(t *testing.T) {
	items := []Ranked{
		{0.99, true}, {0.97, true}, {0.96, false}, {0.5, false},
	}
	p, n := PrecisionAtConfidence(items, 0.95)
	if n != 3 || !almost(p, 2.0/3.0) {
		t.Errorf("p=%v n=%d, want 2/3 and 3", p, n)
	}
	p, n = PrecisionAtConfidence(items, 1.1)
	if n != 0 || p != 0 {
		t.Errorf("empty threshold bucket: p=%v n=%d", p, n)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	items := []Ranked{
		{0.9, true}, {0.8, true}, {0.7, false}, {0.6, true}, {0.5, false},
	}
	curve := PRCurve(items, 5)
	if len(curve) != 5 {
		t.Fatalf("want 5 points, got %d", len(curve))
	}
	if !almost(curve[4].Recall, 1) {
		t.Errorf("last point recall = %v", curve[4].Recall)
	}
	if curve[0].Precision < curve[4].Precision {
		t.Errorf("confidence-ranked curve should not increase: %v", curve)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if got := Spearman(a, b); !almost(got, 1) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{50, 40, 30, 20, 10}
	if got := Spearman(a, c); !almost(got, -1) {
		t.Errorf("perfect anti-correlation = %v", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 2, 3}
	if got := Spearman(a, b); !almost(got, 1) {
		t.Errorf("tied identical vectors = %v, want 1", got)
	}
}

func TestSpearmanFromOrder(t *testing.T) {
	// gold: candidate 2 best, then 0, then 1.
	gold := []int{2, 0, 1}
	perfect := []float64{0.5, 0.1, 0.9}
	if got := SpearmanFromOrder(gold, perfect); !almost(got, 1) {
		t.Errorf("perfect order = %v", got)
	}
	inverted := []float64{0.5, 0.9, 0.1}
	if got := SpearmanFromOrder(gold, inverted); got >= 0 {
		t.Errorf("inverted order should be negative, got %v", got)
	}
}

func TestSpearmanRange(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		v := Spearman(a[:n], b[:n])
		return v >= -1-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPairedTTest(t *testing.T) {
	a := []float64{0.8, 0.82, 0.85, 0.81, 0.83, 0.84, 0.8, 0.82}
	b := []float64{0.7, 0.72, 0.74, 0.71, 0.73, 0.75, 0.7, 0.71}
	tStat, p := PairedTTest(a, b)
	if tStat <= 0 {
		t.Errorf("a > b should give positive t, got %v", tStat)
	}
	if p > 0.01 {
		t.Errorf("clearly separated samples should be significant, p=%v", p)
	}
	_, pSame := PairedTTest(a, a)
	if pSame < 0.99 {
		t.Errorf("identical samples p = %v, want ~1", pSame)
	}
}

func TestPairedTTestPValueRange(t *testing.T) {
	f := func(seed []float64) bool {
		if len(seed) < 4 {
			return true
		}
		a := seed[:len(seed)/2]
		b := seed[len(seed)/2 : len(seed)/2*2]
		for _, x := range seed {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		_, p := PairedTTest(a, b)
		return p >= 0 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddevQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if !almost(Mean(v), 3) {
		t.Errorf("mean = %v", Mean(v))
	}
	if math.Abs(Stddev(v)-1.5811388) > 1e-6 {
		t.Errorf("stddev = %v", Stddev(v))
	}
	if got := Quantile(v, 0.9); got != 5 {
		t.Errorf("0.9-quantile = %v", got)
	}
	if got := Quantile(v, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
}

func BenchmarkMAP(b *testing.B) {
	items := make([]Ranked, 1000)
	for i := range items {
		items[i] = Ranked{Confidence: float64(i%97) / 97, Correct: i%3 == 0}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MAP(items)
	}
}
