package eval

import (
	"context"
	"fmt"

	"aida/internal/kb"
)

// This file is the hard-ambiguity workload harness: it runs a corpus of
// deliberately prior-hostile documents (same-surface entity families where
// the gold sense is NOT the popular one, in short texts where coherence
// has nothing to vote with) through three annotation configurations —
// coherence-only baseline, with the request context prior, and through a
// per-domain dictionary layer — and reports the accuracy of each run. The
// corpora come from internal/kbtest's generators; the CI hard-ambiguity
// job gates on the context-prior run strictly beating the baseline.
//
// The harness is deliberately decoupled from the aida package (which this
// package must not import — aida's own tests import eval): each variant is
// an AnnotateFunc closure, and internal/kbtest provides the standard
// System-backed triple (kbtest.RunHardWorkload).

// HardDoc is one document of a hard-ambiguity workload: the text, the
// mention surfaces expected to be recognized (in text order) with their
// gold entities, and the request context that discriminates the gold
// senses (interest keyphrases unique to the gold entities, plus the gold
// ids themselves as an interest set).
type HardDoc struct {
	Name string
	Text string
	// Surfaces are the expected recognized mention surfaces, in text
	// order, aligned with Gold. A run whose recognition disagrees counts
	// every mention of the document as wrong — recognition drift must
	// show up as lost accuracy, not as silently skipped documents.
	Surfaces []string
	Gold     []kb.EntityID
	// Context are the interest keyphrases of the context-prior run
	// (aida.WithContext); ContextEntities the interest entity set
	// (aida.WithContextEntities).
	Context         []string
	ContextEntities []kb.EntityID
}

// Annotated is one linked mention as a variant reports it back to the
// harness: the recognized surface and the chosen entity.
type Annotated struct {
	Surface string
	Entity  kb.EntityID
}

// AnnotateFunc runs one workload document under one configuration and
// returns the linked mentions in text order.
type AnnotateFunc func(ctx context.Context, d HardDoc) ([]Annotated, error)

// WorkloadRun is the measured outcome of one variant over a workload.
type WorkloadRun struct {
	Name     string  `json:"name"`
	Correct  int     `json:"correct"`
	Total    int     `json:"total"`
	Accuracy float64 `json:"accuracy"`
}

// HardWorkloadReport is the full result of RunHardWorkload: the same
// corpus measured under the baseline, context-prior and domain-layer
// configurations.
type HardWorkloadReport struct {
	Corpus       string      `json:"corpus"`
	Docs         int         `json:"docs"`
	Mentions     int         `json:"mentions"`
	Baseline     WorkloadRun `json:"baseline"`
	ContextPrior WorkloadRun `json:"context_prior"`
	DomainLayer  WorkloadRun `json:"domain_layer"`
}

// RunHardWorkload measures a hard-ambiguity corpus under three
// configurations: the plain pipeline (baseline), the pipeline with each
// document's request context blended in (contextPrior), and the pipeline
// routed through a per-domain dictionary layer (domainLayer; skipped when
// nil). All three run the same corpus, so the deltas isolate the
// request-context machinery.
func RunHardWorkload(ctx context.Context, corpus string, docs []HardDoc, baseline, contextPrior, domainLayer AnnotateFunc) (HardWorkloadReport, error) {
	rep := HardWorkloadReport{Corpus: corpus, Docs: len(docs)}
	for _, d := range docs {
		rep.Mentions += len(d.Gold)
	}
	var err error
	rep.Baseline, err = runVariant(ctx, "baseline", docs, baseline)
	if err != nil {
		return rep, err
	}
	rep.ContextPrior, err = runVariant(ctx, "context-prior", docs, contextPrior)
	if err != nil {
		return rep, err
	}
	if domainLayer != nil {
		rep.DomainLayer, err = runVariant(ctx, "domain-layer", docs, domainLayer)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runVariant annotates every document with the variant's function and
// scores the mentions against gold. Misaligned recognition (wrong mention
// count or surfaces) scores the whole document as wrong.
func runVariant(ctx context.Context, name string, docs []HardDoc, annotate AnnotateFunc) (WorkloadRun, error) {
	run := WorkloadRun{Name: name}
	for _, d := range docs {
		anns, err := annotate(ctx, d)
		if err != nil {
			return run, fmt.Errorf("workload %s, doc %s: %w", name, d.Name, err)
		}
		run.Total += len(d.Gold)
		if !aligned(anns, d.Surfaces) {
			continue
		}
		for i, a := range anns {
			if a.Entity == d.Gold[i] {
				run.Correct++
			}
		}
	}
	if run.Total > 0 {
		run.Accuracy = float64(run.Correct) / float64(run.Total)
	}
	return run, nil
}

// aligned reports whether recognition produced exactly the expected
// surfaces, in order.
func aligned(anns []Annotated, surfaces []string) bool {
	if len(anns) != len(surfaces) {
		return false
	}
	for i, a := range anns {
		if a.Surface != surfaces[i] {
			return false
		}
	}
	return true
}
