// Package eval implements the evaluation measures of the dissertation:
// micro/macro-averaged accuracy (Sec. 3.6.1), interpolated MAP and
// precision@confidence over confidence-ranked mentions (Sec. 5.7.1), the
// emerging-entity precision/recall/F1 (Sec. 5.7.2), Spearman rank
// correlation for the relatedness study (Sec. 4.5.2), and a paired t-test
// for significance reporting.
package eval

import (
	"math"
	"sort"

	"aida/internal/kb"
)

// Label pairs a gold annotation with a prediction for one mention.
// kb.NoEntity denotes an out-of-KB (emerging) entity on either side.
type Label struct {
	Gold kb.EntityID
	Pred kb.EntityID
}

// Correct reports whether the prediction matches the gold annotation.
func (l Label) Correct() bool { return l.Gold == l.Pred }

// Mode selects which mentions participate in accuracy computation.
type Mode int

const (
	// InKBOnly ignores mentions whose gold entity is out-of-KB — the
	// Chapter 3 evaluation regime ("we consider only mention-entity pairs
	// where the ground-truth gives a known entity").
	InKBOnly Mode = iota
	// WithEE includes out-of-KB mentions; predicting kb.NoEntity for them
	// is correct — the Chapter 5 regime.
	WithEE
)

func (m Mode) keep(l Label) bool { return m == WithEE || l.Gold != kb.NoEntity }

// MicroAccuracy is the fraction of correctly disambiguated mentions over
// the whole collection.
func MicroAccuracy(docs [][]Label, mode Mode) float64 {
	correct, total := 0, 0
	for _, doc := range docs {
		for _, l := range doc {
			if !mode.keep(l) {
				continue
			}
			total++
			if l.Correct() {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// DocumentAccuracy is the fraction of correct mentions in one document.
func DocumentAccuracy(doc []Label, mode Mode) (float64, bool) {
	correct, total := 0, 0
	for _, l := range doc {
		if !mode.keep(l) {
			continue
		}
		total++
		if l.Correct() {
			correct++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(correct) / float64(total), true
}

// MacroAccuracy is the document-averaged accuracy.
func MacroAccuracy(docs [][]Label, mode Mode) float64 {
	var sum float64
	var n int
	for _, doc := range docs {
		if acc, ok := DocumentAccuracy(doc, mode); ok {
			sum += acc
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EEMetrics holds the per-document-averaged emerging-entity measures of
// Sec. 5.7.2.
type EEMetrics struct {
	Precision float64
	Recall    float64
	F1        float64
}

// EEQuality computes EE precision, recall and F1, each averaged over
// documents that have the respective denominator (predicted EEs for
// precision, gold EEs for recall; F1 is averaged over documents with
// either).
func EEQuality(docs [][]Label) EEMetrics {
	var pSum, rSum, fSum float64
	var pN, rN, fN int
	for _, doc := range docs {
		var goldEE, predEE, both int
		for _, l := range doc {
			g := l.Gold == kb.NoEntity
			p := l.Pred == kb.NoEntity
			if g {
				goldEE++
			}
			if p {
				predEE++
			}
			if g && p {
				both++
			}
		}
		var prec, rec float64
		if predEE > 0 {
			prec = float64(both) / float64(predEE)
			pSum += prec
			pN++
		}
		if goldEE > 0 {
			rec = float64(both) / float64(goldEE)
			rSum += rec
			rN++
		}
		if goldEE > 0 || predEE > 0 {
			if prec+rec > 0 {
				fSum += 2 * prec * rec / (prec + rec)
			}
			fN++
		}
	}
	var m EEMetrics
	if pN > 0 {
		m.Precision = pSum / float64(pN)
	}
	if rN > 0 {
		m.Recall = rSum / float64(rN)
	}
	if fN > 0 {
		m.F1 = fSum / float64(fN)
	}
	return m
}

// Ranked is one confidence-ranked prediction.
type Ranked struct {
	Confidence float64
	Correct    bool
}

// MAP computes the interpolated mean average precision of Eq. 5.1: the mean
// of interpolated precision at recall levels i/m over the confidence-
// descending ranking (equivalently, the area under the precision-recall
// curve).
func MAP(items []Ranked) float64 {
	if len(items) == 0 {
		return 0
	}
	sorted := append([]Ranked(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	m := len(sorted)
	// precision at each prefix
	prec := make([]float64, m)
	correct := 0
	for i, it := range sorted {
		if it.Correct {
			correct++
		}
		prec[i] = float64(correct) / float64(i+1)
	}
	// Interpolate: precision at recall level i/m is the max precision at
	// any prefix ≥ that recall.
	interp := make([]float64, m)
	maxSoFar := 0.0
	for i := m - 1; i >= 0; i-- {
		if prec[i] > maxSoFar {
			maxSoFar = prec[i]
		}
		interp[i] = maxSoFar
	}
	var sum float64
	for _, p := range interp {
		sum += p
	}
	return sum / float64(m)
}

// PrecisionAtConfidence returns the precision among predictions with
// confidence ≥ threshold, and how many there are (the Prec@conf /
// #Men@conf rows of Table 5.1).
func PrecisionAtConfidence(items []Ranked, threshold float64) (precision float64, count int) {
	correct := 0
	for _, it := range items {
		if it.Confidence >= threshold {
			count++
			if it.Correct {
				correct++
			}
		}
	}
	if count == 0 {
		return 0, 0
	}
	return float64(correct) / float64(count), count
}

// PRPoint is one precision-recall curve point.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// PRCurve computes the precision-recall curve over the confidence-ranked
// predictions (Fig. 5.3): recall x means the x-fraction of mentions with
// the highest confidence.
func PRCurve(items []Ranked, points int) []PRPoint {
	if len(items) == 0 || points <= 0 {
		return nil
	}
	sorted := append([]Ranked(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	out := make([]PRPoint, 0, points)
	for p := 1; p <= points; p++ {
		recall := float64(p) / float64(points)
		n := int(math.Round(recall * float64(len(sorted))))
		if n == 0 {
			n = 1
		}
		correct := 0
		for i := 0; i < n; i++ {
			if sorted[i].Correct {
				correct++
			}
		}
		out = append(out, PRPoint{Recall: recall, Precision: float64(correct) / float64(n)})
	}
	return out
}
