package eval

import (
	"math"
	"testing"

	"aida/internal/kb"
)

func TestTACAccuracy(t *testing.T) {
	queries := []TACQuery{
		{Gold: 1, Pred: 1},                     // in-KB correct
		{Gold: 2, Pred: 3},                     // in-KB wrong
		{Gold: kb.NoEntity, Pred: kb.NoEntity}, // NIL correct
		{Gold: kb.NoEntity, Pred: 4},           // NIL missed
	}
	m := TACAccuracy(queries)
	if !almost(m.Overall, 0.5) {
		t.Errorf("overall = %v", m.Overall)
	}
	if !almost(m.InKB, 0.5) {
		t.Errorf("in-KB = %v", m.InKB)
	}
	if !almost(m.NIL, 0.5) {
		t.Errorf("NIL = %v", m.NIL)
	}
	if m.Queries != 4 || m.InKBQueries != 2 || m.NILQueries != 2 {
		t.Errorf("denominators wrong: %+v", m)
	}
}

func TestTACAccuracyEmpty(t *testing.T) {
	m := TACAccuracy(nil)
	if m.Overall != 0 || m.Queries != 0 {
		t.Errorf("empty query set: %+v", m)
	}
}

func TestNILClustersPerfect(t *testing.T) {
	gold := []string{"a", "a", "b", "b"}
	p, r, f1 := NILClusters(gold, gold)
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect clustering: p=%v r=%v f1=%v", p, r, f1)
	}
}

func TestNILClustersOverMerged(t *testing.T) {
	gold := []string{"a", "a", "b", "b"}
	pred := []string{"x", "x", "x", "x"} // everything merged
	p, r, _ := NILClusters(gold, pred)
	if r != 1 {
		t.Errorf("over-merging keeps recall 1, got %v", r)
	}
	if math.Abs(p-2.0/6.0) > 1e-9 {
		t.Errorf("precision = %v, want 1/3", p)
	}
}

func TestNILClustersOverSplit(t *testing.T) {
	gold := []string{"a", "a", "a"}
	pred := []string{"x", "y", "z"} // everything split
	p, r, f1 := NILClusters(gold, pred)
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("full split should zero out: p=%v r=%v f1=%v", p, r, f1)
	}
}
