package eval

import (
	"math"
	"testing"

	"aida/internal/kb"
)

// Error-path and degenerate-input coverage: every measure must return its
// documented fallback (not NaN, not a panic) on empty, mismatched or
// constant inputs — the shapes evaluation drivers actually produce on
// empty corpora, all-OOE documents, or single-method runs.

func TestAccuracyDegenerateInputs(t *testing.T) {
	if got := MicroAccuracy(nil, InKBOnly); got != 0 {
		t.Errorf("MicroAccuracy(nil) = %v, want 0", got)
	}
	if got := MacroAccuracy(nil, WithEE); got != 0 {
		t.Errorf("MacroAccuracy(nil) = %v, want 0", got)
	}
	// A corpus of only out-of-KB gold mentions contributes nothing under
	// InKBOnly: the accuracy must be the 0 fallback, not NaN.
	ooeOnly := [][]Label{{{Gold: kb.NoEntity, Pred: kb.NoEntity}}}
	if got := MicroAccuracy(ooeOnly, InKBOnly); got != 0 {
		t.Errorf("MicroAccuracy(all-OOE, InKBOnly) = %v, want 0", got)
	}
	if got := MacroAccuracy(ooeOnly, InKBOnly); got != 0 {
		t.Errorf("MacroAccuracy(all-OOE, InKBOnly) = %v, want 0", got)
	}
	if acc, ok := DocumentAccuracy(ooeOnly[0], InKBOnly); ok || acc != 0 {
		t.Errorf("DocumentAccuracy(all-OOE, InKBOnly) = (%v, %v), want (0, false)", acc, ok)
	}
	// The same document under WithEE counts the correct NIL prediction.
	if acc, ok := DocumentAccuracy(ooeOnly[0], WithEE); !ok || acc != 1 {
		t.Errorf("DocumentAccuracy(all-OOE, WithEE) = (%v, %v), want (1, true)", acc, ok)
	}
}

func TestEEQualityDegenerateInputs(t *testing.T) {
	if m := EEQuality(nil); m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("EEQuality(nil) = %+v, want zeros", m)
	}
	// No EE on either side: all denominators stay empty.
	docs := [][]Label{{{Gold: 1, Pred: 1}, {Gold: 2, Pred: 3}}}
	if m := EEQuality(docs); m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("EEQuality(no-EE) = %+v, want zeros", m)
	}
	// Predicted EE but no gold EE: precision 0 is averaged, recall has no
	// denominator, F1 is averaged as 0 for that document.
	docs = [][]Label{{{Gold: 1, Pred: kb.NoEntity}}}
	m := EEQuality(docs)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("EEQuality(pred-only-EE) = %+v, want zeros", m)
	}
}

func TestTACAccuracyDegenerateInputs(t *testing.T) {
	m := TACAccuracy(nil)
	if m.Overall != 0 || m.InKB != 0 || m.NIL != 0 || m.Queries != 0 {
		t.Errorf("TACAccuracy(nil) = %+v, want zeros", m)
	}
	// All-NIL query sets must not divide by the empty in-KB denominator.
	m = TACAccuracy([]TACQuery{{Gold: kb.NoEntity, Pred: kb.NoEntity}})
	if m.InKBQueries != 0 || m.InKB != 0 || m.NIL != 1 || m.Overall != 1 {
		t.Errorf("TACAccuracy(all-NIL) = %+v", m)
	}
}

func TestNILClustersErrorPaths(t *testing.T) {
	// Mismatched lengths are a caller error: the documented fallback is
	// all-zero, never a panic or partial pairing.
	if p, r, f := NILClusters([]string{"a", "b"}, []string{"a"}); p != 0 || r != 0 || f != 0 {
		t.Errorf("NILClusters(mismatched) = (%v, %v, %v), want zeros", p, r, f)
	}
	// Fewer than two queries have no pairs to agree on.
	if p, r, f := NILClusters([]string{"a"}, []string{"a"}); p != 0 || r != 0 || f != 0 {
		t.Errorf("NILClusters(single) = (%v, %v, %v), want zeros", p, r, f)
	}
	if p, r, f := NILClusters(nil, nil); p != 0 || r != 0 || f != 0 {
		t.Errorf("NILClusters(nil) = (%v, %v, %v), want zeros", p, r, f)
	}
	// No same-cluster pairs anywhere: both denominators empty.
	if p, r, f := NILClusters([]string{"a", "b"}, []string{"c", "d"}); p != 0 || r != 0 || f != 0 {
		t.Errorf("NILClusters(all-singleton) = (%v, %v, %v), want zeros", p, r, f)
	}
}

func TestRankedMeasureDegenerateInputs(t *testing.T) {
	if got := MAP(nil); got != 0 {
		t.Errorf("MAP(nil) = %v, want 0", got)
	}
	if p, n := PrecisionAtConfidence(nil, 0.5); p != 0 || n != 0 {
		t.Errorf("PrecisionAtConfidence(nil) = (%v, %d), want (0, 0)", p, n)
	}
	// Threshold above every confidence: count 0, precision 0 (not NaN).
	items := []Ranked{{Confidence: 0.2, Correct: true}}
	if p, n := PrecisionAtConfidence(items, 0.9); p != 0 || n != 0 {
		t.Errorf("PrecisionAtConfidence(none-above) = (%v, %d), want (0, 0)", p, n)
	}
	if got := PRCurve(nil, 10); got != nil {
		t.Errorf("PRCurve(nil) = %v, want nil", got)
	}
	if got := PRCurve(items, 0); got != nil {
		t.Errorf("PRCurve(points=0) = %v, want nil", got)
	}
}

func TestSpearmanDegenerateInputs(t *testing.T) {
	if got := Spearman([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("Spearman(mismatched) = %v, want 0", got)
	}
	if got := Spearman([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("Spearman(single) = %v, want 0", got)
	}
	// A constant vector has zero rank variance: correlation falls back to
	// 0 instead of dividing by zero.
	if got := Spearman([]float64{3, 3, 3}, []float64{1, 2, 3}); got != 0 || math.IsNaN(got) {
		t.Errorf("Spearman(constant) = %v, want 0", got)
	}
	if got := SpearmanFromOrder([]int{0, 1}, []float64{1}); got != 0 {
		t.Errorf("SpearmanFromOrder(mismatched) = %v, want 0", got)
	}
}

func TestPairedTTestDegenerateInputs(t *testing.T) {
	if tt, p := PairedTTest([]float64{1}, []float64{1, 2}); tt != 0 || p != 1 {
		t.Errorf("PairedTTest(mismatched) = (%v, %v), want (0, 1)", tt, p)
	}
	if tt, p := PairedTTest([]float64{1}, []float64{1}); tt != 0 || p != 1 {
		t.Errorf("PairedTTest(single) = (%v, %v), want (0, 1)", tt, p)
	}
	// Identical samples: zero variance, zero mean difference → no effect.
	if tt, p := PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3}); tt != 0 || p != 1 {
		t.Errorf("PairedTTest(identical) = (%v, %v), want (0, 1)", tt, p)
	}
	// Constant non-zero difference: infinite t, p = 0 (maximally
	// significant), with the sign of the difference.
	tt, p := PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3})
	if !math.IsInf(tt, 1) || p != 0 {
		t.Errorf("PairedTTest(constant+diff) = (%v, %v), want (+Inf, 0)", tt, p)
	}
	tt, _ = PairedTTest([]float64{1, 2, 3}, []float64{2, 3, 4})
	if !math.IsInf(tt, -1) {
		t.Errorf("PairedTTest(constant-diff) t = %v, want -Inf", tt)
	}
}

func TestSummaryStatsDegenerateInputs(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Stddev([]float64{5}); got != 0 {
		t.Errorf("Stddev(single) = %v, want 0", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
	// Quantile clamps out-of-range q instead of indexing out of bounds.
	if got := Quantile([]float64{1, 2, 3}, 0); got != 1 {
		t.Errorf("Quantile(q=0) = %v, want 1", got)
	}
	if got := Quantile([]float64{1, 2, 3}, 2); got != 3 {
		t.Errorf("Quantile(q=2) = %v, want 3", got)
	}
}
