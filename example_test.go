package aida_test

import (
	"context"
	"fmt"
	"slices"

	"aida"
)

// exampleKB builds the dissertation's running example world: two Pages,
// two Kashmirs, and a densely linked music cluster.
func exampleKB() *aida.KB {
	b := aida.NewKBBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person")
	larry := b.AddEntity("Larry Page", "tech", "person")
	song := b.AddEntity("Kashmir (song)", "music", "work")
	region := b.AddEntity("Kashmir", "geography", "location")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person")

	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)

	music := []aida.EntityID{jimmy, song, zep, plant}
	for _, x := range music {
		for _, y := range music {
			if x != y {
				b.AddLink(x, y)
			}
		}
	}
	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "unusual chords")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(song, "performed live")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(plant, "English rock singer")
	return b.Build()
}

// ExampleSystem_Relatedness compares entity pairs under two measures: the
// link-based Milne–Witten (MW) and the keyphrase-overlap KORE, which needs
// no link structure. Values are memoized by the system's shared engine, so
// repeated queries (and coherence scoring over the same entities) are free.
func ExampleSystem_Relatedness() {
	k := exampleKB()
	sys := aida.New(k)
	jimmy, _ := k.EntityByName("Jimmy Page")
	larry, _ := k.EntityByName("Larry Page")
	zep, _ := k.EntityByName("Led Zeppelin")

	fmt.Printf("MW  (Jimmy Page, Led Zeppelin) = %.3f\n", sys.Relatedness(aida.MW, jimmy, zep))
	fmt.Printf("MW  (Larry Page, Led Zeppelin) = %.3f\n", sys.Relatedness(aida.MW, larry, zep))
	fmt.Printf("KORE(Jimmy Page, Led Zeppelin) = %.3f\n", sys.Relatedness(aida.KORE, jimmy, zep))
	fmt.Printf("KORE(Larry Page, Led Zeppelin) = %.3f\n", sys.Relatedness(aida.KORE, larry, zep))

	hits, misses := sys.Scorer().CacheStats()
	fmt.Printf("engine: %d hits, %d misses\n", hits, misses)
	// Output:
	// MW  (Jimmy Page, Led Zeppelin) = 0.415
	// MW  (Larry Page, Led Zeppelin) = 0.000
	// KORE(Jimmy Page, Led Zeppelin) = 0.018
	// KORE(Larry Page, Led Zeppelin) = 0.000
	// engine: 0 hits, 4 misses
}

// ExampleSystem_AnnotateDoc annotates one document through the
// context-aware request API, selecting the prior-only baseline and the
// disambiguation work counters for this request only.
func ExampleSystem_AnnotateDoc() {
	sys := aida.New(exampleKB())
	text := "They performed Kashmir, written by Page and Plant."

	doc, err := sys.AnnotateDoc(context.Background(), text)
	if err != nil {
		fmt.Println("annotate:", err)
		return
	}
	for _, a := range doc.Annotations {
		fmt.Printf("aida : %-7s → %s\n", a.Mention.Text, a.Label)
	}

	// Per-request options never touch the System: the same warm engine
	// serves a different method on the next call.
	prior, err := sys.AnnotateDoc(context.Background(), text, aida.UseMethodNamed("prior"))
	if err != nil {
		fmt.Println("annotate:", err)
		return
	}
	for _, a := range prior.Annotations {
		fmt.Printf("prior: %-7s → %s\n", a.Mention.Text, a.Label)
	}
	// Output:
	// aida : Kashmir → Kashmir (song)
	// aida : Page    → Jimmy Page
	// aida : Plant   → Robert Plant
	// prior: Kashmir → Kashmir
	// prior: Page    → Larry Page
	// prior: Plant   → Robert Plant
}

// ExampleSystem_AnnotateStream streams a document sequence through the
// concurrent annotator: documents are processed by two workers, yet
// results arrive strictly in input order and are byte-identical to a
// sequential AnnotateDoc loop. Canceling the context would end the stream
// with ctx.Err() instead of annotating the remaining documents.
func ExampleSystem_AnnotateStream() {
	sys := aida.New(exampleKB())
	docs := []string{
		"They performed Kashmir, written by Page and Plant.",
		"Page played unusual chords with Led Zeppelin.",
		"Kashmir remains a disputed territory.",
	}
	for doc, err := range sys.AnnotateStream(context.Background(), slices.Values(docs), aida.WithParallelism(2)) {
		if err != nil {
			fmt.Println("stream:", err)
			return
		}
		for _, a := range doc.Annotations {
			fmt.Printf("doc %d: %-12s → %s\n", doc.Index, a.Mention.Text, a.Label)
		}
	}
	// Output:
	// doc 0: Kashmir      → Kashmir (song)
	// doc 0: Page         → Jimmy Page
	// doc 0: Plant        → Robert Plant
	// doc 1: Page         → Jimmy Page
	// doc 1: Led Zeppelin → Led Zeppelin
	// doc 2: Kashmir      → Kashmir
}
