// Command batch demonstrates concurrent multi-document annotation over the
// shared scoring engine: AnnotateBatch for in-memory corpora and the
// streaming AnnotateAll for indefinite feeds. Both produce exactly the
// annotations a sequential Annotate loop would, while KB-entity pair
// relatedness is computed once across the whole run.
package main

import (
	"fmt"
	"runtime"
	"slices"

	"aida"
)

func main() {
	b := aida.NewKBBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person")
	larry := b.AddEntity("Larry Page", "tech", "person")
	song := b.AddEntity("Kashmir (song)", "music", "work")
	region := b.AddEntity("Kashmir", "geography", "location")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person")

	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)

	music := []aida.EntityID{jimmy, song, zep, plant}
	for _, x := range music {
		for _, y := range music {
			if x != y {
				b.AddLink(x, y)
			}
		}
	}
	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "unusual chords")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(plant, "English rock singer")

	sys := aida.New(b.Build())

	docs := []string{
		"They performed Kashmir, written by Page and Plant.",
		"Page played unusual chords with Led Zeppelin.",
		"The Kashmir region remains a disputed territory.",
		"Plant sang while Page played.",
	}

	// Fixed corpus: fan out across all cores, results in input order.
	fmt.Println("== AnnotateBatch ==")
	for i, anns := range sys.AnnotateBatch(docs, runtime.GOMAXPROCS(0)) {
		for _, a := range anns {
			fmt.Printf("doc %d: %-10s → %s\n", i, a.Mention.Text, a.Label)
		}
	}

	// Streaming: documents are annotated concurrently but yielded in
	// order, each as soon as it and its predecessors are ready. Any
	// iter.Seq[string] works (a channel drain, a file scanner, ...).
	fmt.Println("== AnnotateAll ==")
	for i, anns := range sys.AnnotateAll(slices.Values(docs), 2) {
		fmt.Printf("doc %d: %d mentions\n", i, len(anns))
	}

	// The engine kept every cross-document pair computation.
	hits, misses := sys.Scorer().CacheStats()
	fmt.Printf("engine pair cache: %d hits, %d misses\n", hits, misses)
}
