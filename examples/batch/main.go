// Command batch demonstrates concurrent multi-document annotation over the
// shared scoring engine: AnnotateCorpus for in-memory corpora and the
// streaming AnnotateStream for indefinite feeds. Both are cancellable via
// context and produce exactly the annotations a sequential AnnotateDoc
// loop would, while KB-entity pair relatedness is computed once across the
// whole run.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"slices"

	"aida"
)

func main() {
	b := aida.NewKBBuilder()
	jimmy := b.AddEntity("Jimmy Page", "music", "person")
	larry := b.AddEntity("Larry Page", "tech", "person")
	song := b.AddEntity("Kashmir (song)", "music", "work")
	region := b.AddEntity("Kashmir", "geography", "location")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person")

	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)

	music := []aida.EntityID{jimmy, song, zep, plant}
	for _, x := range music {
		for _, y := range music {
			if x != y {
				b.AddLink(x, y)
			}
		}
	}
	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "unusual chords")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(plant, "English rock singer")

	sys := aida.New(b.Build())

	docs := []string{
		"They performed Kashmir, written by Page and Plant.",
		"Page played unusual chords with Led Zeppelin.",
		"The Kashmir region remains a disputed territory.",
		"Plant sang while Page played.",
	}

	// A context bounds every request; cancel it (timeout, Ctrl-C, client
	// disconnect) and in-flight scoring stops promptly with ctx.Err().
	ctx := context.Background()

	// Fixed corpus: fan out across all cores, results in input order.
	fmt.Println("== AnnotateCorpus ==")
	corpus, err := sys.AnnotateCorpus(ctx, docs, aida.WithParallelism(runtime.GOMAXPROCS(0)))
	if err != nil {
		log.Fatal(err)
	}
	for _, doc := range corpus {
		for _, a := range doc.Annotations {
			fmt.Printf("doc %d: %-10s → %s\n", doc.Index, a.Mention.Text, a.Label)
		}
	}

	// Streaming: documents are annotated concurrently but yielded in
	// order, each as soon as it and its predecessors are ready. Any
	// iter.Seq[string] works (a channel drain, a file scanner, ...).
	// Per-request options ride along: here the prior-only baseline plus
	// the disambiguation work counters.
	fmt.Println("== AnnotateStream ==")
	for doc, err := range sys.AnnotateStream(ctx, slices.Values(docs),
		aida.WithParallelism(2), aida.UseMethodNamed("prior"), aida.IncludeStats()) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("doc %d: %d mentions (%d comparisons)\n",
			doc.Index, len(doc.Annotations), doc.Stats.Comparisons)
	}

	// The engine kept every cross-document pair computation.
	hits, misses := sys.Scorer().CacheStats()
	fmt.Printf("engine pair cache: %d hits, %d misses\n", hits, misses)
}
