// Entitysearch: the "strings, things, and cats" application of Chapter 6.
// A corpus is disambiguated with AIDA, indexed with words + entities +
// types, and queried across all three dimensions; a news analytics pass
// reports trending entities.
package main

import (
	"fmt"

	"aida"
	"aida/internal/analytics"
	"aida/internal/search"
	"aida/internal/wiki"
)

func main() {
	world := wiki.Generate(wiki.Config{Seed: 31, Entities: 600})
	sys := aida.New(world.KB, aida.WithMaxCandidates(10))

	stream := world.NewsStream(wiki.DefaultNewsSpec(5, 10, 7))
	ix := search.NewIndex(world.KB)
	stats := analytics.New()

	// Disambiguate and index the stream.
	for _, doc := range stream {
		out := sys.Disambiguate(doc.Text, doc.Surfaces())
		var anns []search.Annotation
		var ents []aida.EntityID
		for _, r := range out.Results {
			if r.Entity == aida.NoEntity {
				continue
			}
			anns = append(anns, search.Annotation{Entity: r.Entity, Surface: r.Surface})
			ents = append(ents, r.Entity)
		}
		ix.AddDocument(doc.ID, doc.Text, anns)
		stats.AddDoc(doc.Day, ents)
	}
	fmt.Printf("indexed %d documents over %d entities\n\n", ix.NumDocs(), world.KB.NumEntities())

	// Thing query: the most mentioned entity.
	top := stats.TopEntities(1, 5, 3)
	if len(top) > 0 {
		e := top[0].Entity
		fmt.Printf("entity query %q → top documents:\n", world.KB.Entity(e).Name)
		for _, hit := range ix.Search(search.Query{Entities: []aida.EntityID{e}}, 3) {
			fmt.Printf("  %-14s score %.3f\n", hit.DocID, hit.Score)
		}
		fmt.Println()

		// Auto-completion over the entity names.
		prefix := world.KB.Entity(e).Name[:1]
		comp := ix.Complete(prefix, 3)
		fmt.Printf("completion %q →", prefix)
		for _, id := range comp {
			fmt.Printf(" %q", world.KB.Entity(id).Name)
		}
		fmt.Println()
		fmt.Println()
	}

	// Cat query: all persons.
	hits := ix.Search(search.Query{Types: []string{"person"}}, 3)
	fmt.Println("type query \"person\" → top documents:")
	for _, hit := range hits {
		fmt.Printf("  %-14s score %.3f\n", hit.DocID, hit.Score)
	}
	fmt.Println()

	// Analytics: trending entities on the last day.
	fmt.Println("trending on day 5 (burst factor):")
	for _, tr := range stats.Trending(5, 3, 5) {
		fmt.Printf("  %-34s %.2f\n", world.KB.Entity(tr.Entity).Name, tr.Score)
	}

	// Co-occurrence for the top entity.
	if len(top) > 0 {
		fmt.Printf("\nentities co-occurring with %q:\n", world.KB.Entity(top[0].Entity).Name)
		for _, co := range stats.CoOccurring(top[0].Entity, 5) {
			fmt.Printf("  %-34s %d docs\n", world.KB.Entity(co.Entity).Name, co.Count)
		}
	}
}
