// Quickstart: build a small knowledge base by hand and disambiguate the
// dissertation's running example sentence end to end (recognition +
// disambiguation), using only the public aida API.
package main

import (
	"context"
	"fmt"
	"log"

	"aida"
)

func main() {
	b := aida.NewKBBuilder()

	// Entities with their canonical names and domains.
	jimmy := b.AddEntity("Jimmy Page", "music", "person", "musician")
	larry := b.AddEntity("Larry Page", "tech", "person", "businessperson")
	song := b.AddEntity("Kashmir (song)", "music", "work")
	region := b.AddEntity("Kashmir", "geography", "location")
	zep := b.AddEntity("Led Zeppelin", "music", "band")
	plant := b.AddEntity("Robert Plant", "music", "person", "musician")
	gibson := b.AddEntity("Gibson Les Paul", "music", "instrument")

	// Dictionary entries with anchor counts: "Page" mostly refers to
	// Larry Page on the (simulated) web, "Kashmir" mostly to the region.
	b.AddName("Page", larry, 60)
	b.AddName("Page", jimmy, 30)
	b.AddName("Kashmir", region, 90)
	b.AddName("Kashmir", song, 10)
	b.AddName("Plant", plant, 10)
	b.AddName("Gibson", gibson, 10)

	// Wikipedia-style links: the music cluster is densely interlinked,
	// which gives it Milne-Witten coherence.
	music := []aida.EntityID{jimmy, song, zep, plant, gibson}
	for _, a := range music {
		for _, c := range music {
			if a != c {
				b.AddLink(a, c)
			}
		}
	}

	// Keyphrases: the evidence the similarity measure matches against.
	b.AddKeyphrase(jimmy, "English rock guitarist")
	b.AddKeyphrase(jimmy, "unusual chords")
	b.AddKeyphrase(jimmy, "Gibson guitar")
	b.AddKeyphrase(larry, "search engine")
	b.AddKeyphrase(larry, "internet company")
	b.AddKeyphrase(song, "hard rock")
	b.AddKeyphrase(song, "performed live")
	b.AddKeyphrase(region, "disputed territory")
	b.AddKeyphrase(region, "Himalaya mountains")
	b.AddKeyphrase(zep, "English rock band")
	b.AddKeyphrase(plant, "English rock singer")
	b.AddKeyphrase(gibson, "electric guitar")

	sys := aida.New(b.Build())

	text := "They performed Kashmir, written by Page and Plant. Page played unusual chords on his Gibson."
	fmt.Println(text)
	fmt.Println()
	ctx := context.Background()
	doc, err := sys.AnnotateDoc(ctx, text)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range doc.Annotations {
		label := a.Label
		if a.Entity == aida.NoEntity {
			label = "<out-of-KB>"
		}
		fmt.Printf("  %-10s → %s\n", a.Mention.Text, label)
	}

	// The popularity prior alone would have chosen differently — selected
	// per request, no second System needed:
	fmt.Println("\nprior-only baseline for comparison:")
	priorDoc, err := sys.AnnotateDoc(ctx, text, aida.UseMethodNamed("prior"))
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range priorDoc.Annotations {
		fmt.Printf("  %-10s → %s\n", a.Mention.Text, a.Label)
	}
}
