// Newsstream: emerging-entity discovery over a simulated news stream
// (Chapter 5). A synthetic world provides a knowledge base and day-stamped
// articles in which new, out-of-KB entities appear under ambiguous names;
// the pipeline harvests keyphrases from the preceding days, enriches
// existing entities with high-confidence evidence, builds placeholder
// models by model difference, and separates emerging entities from the KB
// entities sharing their names.
package main

import (
	"context"
	"fmt"

	"aida"
	"aida/internal/wiki"
)

func main() {
	world := wiki.Generate(wiki.Config{Seed: 11, Entities: 600})

	pl := &aida.EEPipeline{
		KB: world.KB,
		// A canceled Context stops the pipeline's harvesting and
		// enrichment fan-outs promptly (a real stream consumer would pass
		// a signal-aware context here).
		Context:       context.Background(),
		MaxCandidates: 12,
		HarvestWindow: -1, // evidence is sentence-local in the generator
		Model: aida.EEModelConfig{
			MaxKeyphrases: 25,
			MinCount:      2,
		},
	}

	stream := world.NewsStream(wiki.DefaultNewsSpec(4, 8, 3))

	// Harvest chunk: all articles of days 1-3; evaluate on day 4.
	var chunk []aida.ChunkDoc
	var today []wiki.Document
	for _, d := range stream {
		if d.Day < 4 {
			chunk = append(chunk, aida.ChunkDoc{
				Text:     d.Text,
				Surfaces: dictSurfaces(world.KB, &d),
			})
		} else {
			today = append(today, d)
		}
	}
	enricher := pl.BuildEnricher(chunk)
	fmt.Printf("knowledge base: %d entities; chunk: %d articles; day 4: %d articles\n",
		world.KB.NumEntities(), len(chunk), len(today))
	fmt.Printf("keyphrases harvested for %d existing entities\n\n", enricher.Size())

	var found, goldEE, correctEE int
	for _, doc := range today {
		// Keep mentions that are ambiguous w.r.t. the dictionary — the
		// hard case where an emerging entity hides behind a known name.
		var surfaces []string
		var gold []wiki.GoldMention
		for _, gm := range doc.Mentions {
			if len(world.KB.Candidates(gm.Surface)) > 0 {
				surfaces = append(surfaces, gm.Surface)
				gold = append(gold, gm)
			}
		}
		if len(surfaces) == 0 {
			continue
		}
		disc := pl.Run(doc.Text, surfaces, chunk, enricher)
		for i, gm := range gold {
			if gm.Entity == aida.NoEntity {
				goldEE++
			}
			if disc.Emerging[i] {
				found++
				if gm.Entity == aida.NoEntity {
					correctEE++
					if correctEE <= 5 {
						fmt.Printf("  discovered emerging entity %q (truth: %s)\n",
							gm.Surface, gm.OOEName)
					}
				}
			}
		}
	}
	fmt.Printf("\nemerging entities: %d gold, %d predicted, %d correct\n", goldEE, found, correctEE)
	if found > 0 && goldEE > 0 {
		fmt.Printf("EE precision: %.1f%%  EE recall: %.1f%%\n",
			100*float64(correctEE)/float64(found),
			100*float64(correctEE)/float64(goldEE))
	}
}

func dictSurfaces(k *aida.KB, d *wiki.Document) []string {
	var out []string
	for _, gm := range d.Mentions {
		if len(k.Candidates(gm.Surface)) > 0 {
			out = append(out, gm.Surface)
		}
	}
	return out
}
