// Relatedness: compare the link-based Milne-Witten measure with the
// keyphrase-based KORE measure (Chapter 4) on a synthetic world, showing
// KORE's advantage on link-poor (long-tail) entities.
package main

import (
	"fmt"
	"sort"

	"aida"
	"aida/internal/wiki"
)

func main() {
	world := wiki.Generate(wiki.Config{Seed: 21, Entities: 800})
	sys := aida.New(world.KB)

	// Seed: the most popular music entity; candidates: its domain peers.
	seeds := world.PopularEntities("music", 1)
	if len(seeds) == 0 {
		fmt.Println("no music entities in world")
		return
	}
	seed := seeds[0]
	cands := world.PopularEntities("music", 12)[1:]
	cands = append(cands, world.PopularEntities("geography", 4)...)

	fmt.Printf("seed entity: %s\n\n", world.KB.Entity(seed).Name)
	type row struct {
		name     string
		links    int
		mw, kore float64
		truth    float64
	}
	var rows []row
	for _, c := range cands {
		rows = append(rows, row{
			name:  world.KB.Entity(c).Name,
			links: len(world.KB.Entity(c).InLinks),
			mw:    sys.Relatedness(aida.MW, seed, c),
			kore:  sys.Relatedness(aida.KORE, seed, c),
			truth: world.TrueRelatedness(seed, c),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].truth > rows[j].truth })
	fmt.Printf("%-34s %7s %8s %8s %8s\n", "candidate", "inlinks", "truth", "MW", "KORE")
	for _, r := range rows {
		fmt.Printf("%-34s %7d %8.3f %8.3f %8.3f\n", r.name, r.links, r.truth, r.mw, r.kore)
	}

	fmt.Println("\nNote how MW collapses to 0 for link-poor candidates while")
	fmt.Println("KORE still separates related from unrelated entities.")
}
